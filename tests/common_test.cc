#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "src/common/bit_util.h"
#include "src/common/random.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "tests/test_util.h"

namespace gpudb {
namespace {

TEST(StatusTest, OkByDefault) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kOk);
  EXPECT_EQ(st.message(), "");
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status st = Status::InvalidArgument("bad input");
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(st.message(), "bad input");
  EXPECT_EQ(st.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::NotImplemented("x").IsNotImplemented());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
}

TEST(StatusTest, CopyIsCheapAndEqualSemantics) {
  Status a = Status::Internal("boom");
  Status b = a;  // shared state
  EXPECT_EQ(b.message(), "boom");
  EXPECT_TRUE(b.IsInternal());
}

TEST(StatusTest, CodeNames) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kNotImplemented),
            "NotImplemented");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.ValueOrDie(), 42);
  EXPECT_TRUE(r.status().ok());
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::OutOfRange("too big"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsOutOfRange());
  EXPECT_EQ(r.ValueOr(-1), -1);
}

Result<int> Doubled(Result<int> in) {
  GPUDB_ASSIGN_OR_RETURN(int v, in);
  return v * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubled(21).ValueOrDie(), 42);
  Result<int> err = Doubled(Status::Internal("nope"));
  ASSERT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsInternal());
}

TEST(BitUtilTest, BitWidth) {
  EXPECT_EQ(bit_util::BitWidth(0), 0);
  EXPECT_EQ(bit_util::BitWidth(1), 1);
  EXPECT_EQ(bit_util::BitWidth(2), 2);
  EXPECT_EQ(bit_util::BitWidth(3), 2);
  EXPECT_EQ(bit_util::BitWidth(255), 8);
  EXPECT_EQ(bit_util::BitWidth(256), 9);
  EXPECT_EQ(bit_util::BitWidth((1u << 19) - 1), 19);
  EXPECT_EQ(bit_util::BitWidth(1u << 19), 20);
}

TEST(BitUtilTest, TestBit) {
  EXPECT_TRUE(bit_util::TestBit(0b1010, 1));
  EXPECT_FALSE(bit_util::TestBit(0b1010, 0));
  EXPECT_TRUE(bit_util::TestBit(0b1010, 3));
  EXPECT_FALSE(bit_util::TestBit(0b1010, 4));
}

TEST(BitUtilTest, CeilDivAndRoundUp) {
  EXPECT_EQ(bit_util::CeilDiv(10, 3), 4u);
  EXPECT_EQ(bit_util::CeilDiv(9, 3), 3u);
  EXPECT_EQ(bit_util::RoundUp(10, 4), 12u);
  EXPECT_EQ(bit_util::RoundUp(12, 4), 12u);
}

TEST(RandomTest, DeterministicForEqualSeeds) {
  Random a(7);
  Random b(7);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Random a(1);
  Random b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RandomTest, BoundedValuesInRange) {
  Random rng(99);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextUint64(17), 17u);
  }
}

TEST(RandomTest, DoubleInUnitInterval) {
  Random rng(3);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, GaussianMomentsRoughlyStandard) {
  Random rng(4);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.NextGaussian();
    sum += g;
    sum2 += g * g;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(RandomTest, LognormalPositive) {
  Random rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.NextLognormal(2.0, 1.0), 0.0);
  }
}

TEST(RandomTest, BoundedCoversDomain) {
  Random rng(6);
  std::set<uint64_t> seen;
  for (int i = 0; i < 200; ++i) seen.insert(rng.NextUint64(8));
  EXPECT_EQ(seen.size(), 8u);
}

}  // namespace
}  // namespace gpudb
