#include <vector>

#include <gtest/gtest.h>

#include "src/common/profile.h"
#include "src/gpu/device.h"
#include "src/gpu/fragment_program.h"
#include "src/gpu/perf_model.h"
#include "tests/test_util.h"

namespace gpudb {
namespace gpu {
namespace {

using testing_util::ToFloats;

TEST(DepthQuantizationTest, ExactAtBoundaries) {
  EXPECT_EQ(QuantizeDepth(0.0f), 0u);
  EXPECT_EQ(QuantizeDepth(1.0f), kDepthMax);
  EXPECT_EQ(QuantizeDepth(-0.5f), 0u);
  EXPECT_EQ(QuantizeDepth(2.0f), kDepthMax);
}

TEST(DepthQuantizationTest, IntegerIdentityUnderExactEncoding) {
  // v / (2^24 - 1) must quantize back to v for every 24-bit integer.
  for (uint32_t v :
       {0u, 1u, 2u, 255u, 65535u, (1u << 23), (1u << 24) - 2, kDepthMax}) {
    const float d = static_cast<float>(v) / static_cast<float>(kDepthMax);
    EXPECT_EQ(QuantizeDepth(d), v) << "v=" << v;
  }
}

TEST(DepthPrecisionTest, ConfigurableDepthBits) {
  gpu::FrameBuffer fb16(4, 4, 16);
  EXPECT_EQ(fb16.depth_bits(), 16);
  EXPECT_EQ(fb16.depth_max(), (1u << 16) - 1);
  EXPECT_EQ(fb16.depth(0), (1u << 16) - 1);  // cleared to far plane
  // Quantization respects the narrower precision.
  EXPECT_EQ(fb16.Quantize(1.0f), (1u << 16) - 1);
  EXPECT_EQ(fb16.Quantize(0.0f), 0u);
}

TEST(DepthPrecisionTest, SixteenBitBufferExactForSixteenBitData) {
  // Integers within the buffer's precision still round-trip exactly.
  const uint32_t max16 = (1u << 16) - 1;
  gpu::FrameBuffer fb16(1, 1, 16);
  for (uint32_t v : {0u, 1u, 255u, 32768u, max16}) {
    const float d = static_cast<float>(v) / static_cast<float>(max16);
    EXPECT_EQ(fb16.Quantize(d), v) << v;
  }
}

TEST(DepthPrecisionTest, NarrowBufferCollidesWideValues) {
  // Two distinct 19-bit values that share a 16-bit depth code: a strict
  // comparison between them is no longer representable -- the Section 6.1
  // precision issue in miniature.
  gpu::FrameBuffer fb16(1, 1, 16);
  const double scale = 1.0 / ((1u << 19) - 1);  // 19-bit exact encoding
  const uint32_t a = 100000;
  const uint32_t b = 100001;
  const uint32_t qa = fb16.Quantize(static_cast<float>(a * scale));
  const uint32_t qb = fb16.Quantize(static_cast<float>(b * scale));
  EXPECT_EQ(qa, qb);  // collision
  gpu::FrameBuffer fb24(1, 1, 24);
  EXPECT_NE(fb24.Quantize(static_cast<float>(a * scale)),
            fb24.Quantize(static_cast<float>(b * scale)));
}

TEST(DeviceTest, ClearsAffectAllPlanes) {
  Device dev(4, 4);
  dev.ClearDepth(0.5f);
  dev.ClearStencil(3);
  dev.ClearColor(0.1f, 0.2f, 0.3f, 0.4f);
  const FrameBuffer& fb = dev.framebuffer();
  for (uint64_t i = 0; i < fb.pixel_count(); ++i) {
    EXPECT_EQ(fb.depth(i), QuantizeDepth(0.5f));
    EXPECT_EQ(fb.stencil(i), 3);
    EXPECT_FLOAT_EQ(fb.color(i)[3], 0.4f);
  }
}

TEST(DeviceTest, RenderQuadDepthTestLess) {
  Device dev(2, 2);
  dev.ClearDepth(0.5f);
  dev.SetDepthTest(true, CompareOp::kLess);
  dev.SetDepthWriteMask(true);
  ASSERT_OK(dev.BeginOcclusionQuery());
  ASSERT_OK(dev.RenderQuad(0.25f));  // 0.25 < 0.5 everywhere -> 4 pass
  ASSERT_OK_AND_ASSIGN(uint64_t count, dev.EndOcclusionQuery());
  EXPECT_EQ(count, 4u);
  // Depth written on pass.
  EXPECT_EQ(dev.framebuffer().depth(0), QuantizeDepth(0.25f));
}

TEST(DeviceTest, DepthWriteRequiresDepthTestEnabled) {
  Device dev(2, 2);
  dev.ClearDepth(1.0f);
  dev.SetDepthTest(false, CompareOp::kAlways);
  dev.SetDepthWriteMask(true);
  ASSERT_OK(dev.RenderQuad(0.25f));
  // OpenGL semantics: depth test disabled bypasses depth update.
  EXPECT_EQ(dev.framebuffer().depth(0), kDepthMax);
}

TEST(DeviceTest, DepthWriteMaskBlocksWrites) {
  Device dev(2, 2);
  dev.ClearDepth(1.0f);
  dev.SetDepthTest(true, CompareOp::kAlways);
  dev.SetDepthWriteMask(false);
  ASSERT_OK(dev.RenderQuad(0.25f));
  EXPECT_EQ(dev.framebuffer().depth(0), kDepthMax);
}

TEST(DeviceTest, StencilThreeOutcomeOps) {
  // Exercise Op1 (stencil fail), Op2 (depth fail), Op3 (pass) in one pass:
  // pixel stencil values 0,1 and depth values arranged to split outcomes.
  Device dev(3, 1);
  ASSERT_OK(dev.SetViewport(3));
  dev.ClearDepth(0.5f);
  // Pixel 0: stencil 0 -> fails stencil test (ref 1 EQUAL) -> Op1 INVERT.
  // Pixel 1: stencil 1, depth test LESS fails (0.75 !< 0.5) -> Op2 ZERO...
  //          use DECR to see 1 -> 0.
  // Pixel 2: stencil 1, make stored depth 1.0 so 0.75 < 1.0 -> Op3 INCR.
  dev.framebuffer().set_stencil(0, 0);
  dev.framebuffer().set_stencil(1, 1);
  dev.framebuffer().set_stencil(2, 1);
  dev.framebuffer().set_depth(2, kDepthMax);
  dev.SetStencilTest(true, CompareOp::kEqual, 1);
  dev.SetStencilOp(StencilOp::kInvert, StencilOp::kDecr, StencilOp::kIncr);
  dev.SetDepthTest(true, CompareOp::kLess);
  dev.SetDepthWriteMask(false);
  ASSERT_OK(dev.RenderQuad(0.75f));
  EXPECT_EQ(dev.framebuffer().stencil(0), 0xff);  // INVERT of 0
  EXPECT_EQ(dev.framebuffer().stencil(1), 0);     // DECR of 1
  EXPECT_EQ(dev.framebuffer().stencil(2), 2);     // INCR of 1
}

TEST(DeviceTest, StencilIncrDecrSaturate) {
  EXPECT_EQ(ApplyStencilOp(StencilOp::kIncr, 0xff, 0), 0xff);
  EXPECT_EQ(ApplyStencilOp(StencilOp::kDecr, 0, 0), 0);
  EXPECT_EQ(ApplyStencilOp(StencilOp::kIncr, 7, 0), 8);
  EXPECT_EQ(ApplyStencilOp(StencilOp::kDecr, 7, 0), 6);
  EXPECT_EQ(ApplyStencilOp(StencilOp::kReplace, 7, 5), 5);
  EXPECT_EQ(ApplyStencilOp(StencilOp::kZero, 7, 5), 0);
  EXPECT_EQ(ApplyStencilOp(StencilOp::kKeep, 7, 5), 7);
}

TEST(DeviceTest, StencilValueMaskAppliesToComparison) {
  Device dev(1, 1);
  dev.framebuffer().set_stencil(0, 0b1010);
  // Compare only the low two bits: (ref & 0b11) == (stored & 0b11) ->
  // (0b10 & 0b11)=2 vs (0b1010 & 0b11)=2 -> pass.
  dev.SetStencilTest(true, CompareOp::kEqual, 0b10, /*value_mask=*/0b11);
  dev.SetStencilOp(StencilOp::kKeep, StencilOp::kKeep, StencilOp::kKeep);
  ASSERT_OK(dev.BeginOcclusionQuery());
  ASSERT_OK(dev.RenderQuad(0.0f));
  ASSERT_OK_AND_ASSIGN(uint64_t count, dev.EndOcclusionQuery());
  EXPECT_EQ(count, 1u);
}

TEST(DeviceTest, AlphaTestFailureSkipsStencilUpdate) {
  // Alpha test runs before the stencil stage; failing fragments must not
  // trigger any stencil op.
  Device dev(2, 1);
  ASSERT_OK(dev.SetViewport(2));
  std::vector<float> vals = {0.0f, 1.0f};
  ASSERT_OK_AND_ASSIGN(Texture tex, Texture::FromColumns({&vals}, 2));
  ASSERT_OK_AND_ASSIGN(TextureId id, dev.UploadTexture(std::move(tex)));
  ASSERT_OK(dev.BindTexture(id));
  // TestBit(bit 0): alpha = frac(v/2) -> 0.0 for v=0, 0.5 for v=1.
  TestBitProgram program(0, 0);
  dev.UseProgram(&program);
  dev.SetAlphaTest(true, CompareOp::kGreaterEqual, 0.5f);
  dev.ClearStencil(0);
  dev.SetStencilTest(true, CompareOp::kAlways, 1);
  dev.SetStencilOp(StencilOp::kReplace, StencilOp::kReplace,
                   StencilOp::kReplace);
  ASSERT_OK(dev.RenderTexturedQuad());
  EXPECT_EQ(dev.framebuffer().stencil(0), 0);  // alpha-failed: untouched
  EXPECT_EQ(dev.framebuffer().stencil(1), 1);  // passed: Op3
}

TEST(DeviceTest, DepthBoundsTestChecksStoredDepth) {
  // GL_EXT_depth_bounds_test semantics: the stored framebuffer depth is
  // tested, not the incoming fragment depth.
  Device dev(3, 1);
  ASSERT_OK(dev.SetViewport(3));
  dev.framebuffer().set_depth(0, QuantizeDepth(0.1f));
  dev.framebuffer().set_depth(1, QuantizeDepth(0.5f));
  dev.framebuffer().set_depth(2, QuantizeDepth(0.9f));
  dev.SetDepthBoundsTest(true, 0.4f, 0.6f);
  dev.SetDepthTest(false, CompareOp::kAlways);
  ASSERT_OK(dev.BeginOcclusionQuery());
  // Fragment depth 0.99 is irrelevant to the bounds test.
  ASSERT_OK(dev.RenderQuad(0.99f));
  ASSERT_OK_AND_ASSIGN(uint64_t count, dev.EndOcclusionQuery());
  EXPECT_EQ(count, 1u);  // only the pixel storing 0.5
}

TEST(DeviceTest, DepthBoundsFailureTriggersZFailOp) {
  Device dev(1, 1);
  dev.framebuffer().set_depth(0, QuantizeDepth(0.9f));
  dev.ClearStencil(1);
  dev.SetDepthBoundsTest(true, 0.0f, 0.5f);
  dev.SetStencilTest(true, CompareOp::kAlways, 0);
  dev.SetStencilOp(StencilOp::kKeep, StencilOp::kZero, StencilOp::kKeep);
  ASSERT_OK(dev.RenderQuad(0.0f));
  EXPECT_EQ(dev.framebuffer().stencil(0), 0);  // Op2 fired
}

TEST(DeviceTest, ViewportLimitsFragmentGeneration) {
  Device dev(10, 10);
  ASSERT_OK(dev.SetViewport(37));
  dev.SetDepthTest(false, CompareOp::kAlways);
  ASSERT_OK(dev.BeginOcclusionQuery());
  ASSERT_OK(dev.RenderQuad(0.0f));
  ASSERT_OK_AND_ASSIGN(uint64_t count, dev.EndOcclusionQuery());
  EXPECT_EQ(count, 37u);
  EXPECT_FALSE(dev.SetViewport(0).ok());
  EXPECT_FALSE(dev.SetViewport(101).ok());
}

TEST(DeviceTest, OcclusionQueryErrors) {
  Device dev(2, 2);
  EXPECT_FALSE(dev.EndOcclusionQuery().ok());  // none active
  ASSERT_OK(dev.BeginOcclusionQuery());
  EXPECT_FALSE(dev.BeginOcclusionQuery().ok());  // already active
  ASSERT_OK_AND_ASSIGN(uint64_t count, dev.EndOcclusionQuery());
  EXPECT_EQ(count, 0u);  // nothing rendered
}

TEST(DeviceTest, BindTextureValidatesId) {
  Device dev(2, 2);
  EXPECT_FALSE(dev.BindTexture(0).ok());
  EXPECT_FALSE(dev.RenderTexturedQuad().ok());  // nothing bound
}

TEST(DeviceTest, CountersTrackWork) {
  Device dev(4, 4);
  dev.SetDepthTest(true, CompareOp::kAlways);
  ASSERT_OK(dev.RenderQuad(0.5f));
  ASSERT_OK(dev.RenderQuad(0.5f));
  const DeviceCounters& c = dev.counters();
  EXPECT_EQ(c.passes, 2u);
  EXPECT_EQ(c.fragments_generated, 32u);
  EXPECT_EQ(c.fragments_passed, 32u);
  EXPECT_EQ(c.depth_writes, 32u);
  ASSERT_EQ(c.pass_log.size(), 2u);
  EXPECT_EQ(c.pass_log[0].fragments, 16u);
  dev.ResetCounters();
  EXPECT_EQ(dev.counters().passes, 0u);
}

TEST(DeviceTest, UploadChargesBusBytes) {
  Device dev(4, 4);
  ASSERT_OK_AND_ASSIGN(Texture tex, Texture::Make(4, 4, 2));
  const uint64_t bytes = tex.byte_size();
  ASSERT_OK_AND_ASSIGN(TextureId id, dev.UploadTexture(std::move(tex)));
  EXPECT_GE(id, 0);
  EXPECT_EQ(dev.counters().bytes_uploaded, bytes);
}

TEST(DeviceTest, ReadbacksChargeBytes) {
  Device dev(4, 4);
  (void)dev.ReadStencil();
  EXPECT_EQ(dev.counters().bytes_read_back, 16u);
  (void)dev.ReadDepth();
  EXPECT_EQ(dev.counters().bytes_read_back, 16u + 64u);
}

TEST(DeviceTest, FragmentProgramKillSkipsEverything) {
  Device dev(2, 1);
  ASSERT_OK(dev.SetViewport(2));
  std::vector<float> a = {1.0f, -1.0f};
  ASSERT_OK_AND_ASSIGN(Texture tex, Texture::FromColumns({&a}, 2));
  ASSERT_OK_AND_ASSIGN(TextureId id, dev.UploadTexture(std::move(tex)));
  ASSERT_OK(dev.BindTexture(id));
  // Keep fragments with value >= 0.
  SemilinearProgram program({1, 0, 0, 0}, CompareOp::kGreaterEqual, 0.0f);
  dev.UseProgram(&program);
  dev.ClearStencil(0);
  dev.SetStencilTest(true, CompareOp::kAlways, 1);
  dev.SetStencilOp(StencilOp::kReplace, StencilOp::kReplace,
                   StencilOp::kReplace);
  ASSERT_OK(dev.BeginOcclusionQuery());
  ASSERT_OK(dev.RenderTexturedQuad());
  ASSERT_OK_AND_ASSIGN(uint64_t count, dev.EndOcclusionQuery());
  EXPECT_EQ(count, 1u);
  EXPECT_EQ(dev.framebuffer().stencil(0), 1);
  EXPECT_EQ(dev.framebuffer().stencil(1), 0);  // killed: no stencil op
}

// Turns the global deep profiler on for one test and restores it (flag and
// label aggregates) on the way out, so profiled device tests do not leak
// state into each other.
class ProfilerOnGuard {
 public:
  ProfilerOnGuard() : was_(Profiler::Global().enabled()) {
    Profiler::Global().set_enabled(true);
  }
  ~ProfilerOnGuard() {
    Profiler::Global().set_enabled(was_);
    Profiler::Global().ResetForTesting();
  }

 private:
  bool was_;
};

TEST(DeviceTest, ProfiledQuadPassComputesDeepCountersAndPlaneTraffic) {
  ProfilerOnGuard profiling;
  Device dev(2, 2);
  dev.ClearDepth(0.5f);
  dev.SetDepthTest(true, CompareOp::kLess);
  dev.SetDepthWriteMask(true);
  ASSERT_OK(dev.BeginOcclusionQuery());
  ASSERT_OK(dev.RenderQuad(0.25f));  // all 4 fragments pass and write depth
  ASSERT_OK(dev.RenderQuad(0.75f));  // all 4 fail the kLess test
  ASSERT_OK_AND_ASSIGN(uint64_t count, dev.EndOcclusionQuery());
  EXPECT_EQ(count, 4u);

  const DeviceCounters& c = dev.counters();
  ASSERT_EQ(c.pass_log.size(), 2u);
  const PassRecord& hit = c.pass_log[0];
  EXPECT_TRUE(hit.profiled);
  EXPECT_EQ(hit.prof.alpha_killed, 0u);
  EXPECT_EQ(hit.prof.stencil_killed, 0u);
  EXPECT_EQ(hit.prof.depth_tested, 4u);
  EXPECT_EQ(hit.prof.depth_killed, 0u);
  EXPECT_EQ(hit.prof.occlusion_samples, 4u);
  // Bandwidth model: stencil test off, so reads are the 4-byte stored
  // depth per tested fragment; writes are 4-byte depth updates plus the
  // 16-byte color writes of the passing fragments.
  EXPECT_EQ(hit.prof.plane_bytes_read, 4u * 4);
  EXPECT_EQ(hit.prof.plane_bytes_written, 4u * 4 + 4u * 16);

  const PassRecord& miss = c.pass_log[1];
  EXPECT_TRUE(miss.profiled);
  EXPECT_EQ(miss.prof.depth_tested, 4u);
  EXPECT_EQ(miss.prof.depth_killed, 4u);
  EXPECT_EQ(miss.prof.occlusion_samples, 0u);
  EXPECT_EQ(miss.prof.plane_bytes_read, 4u * 4);
  EXPECT_EQ(miss.prof.plane_bytes_written, 0u);

  // Cumulative device counters sum both passes, and the global aggregate
  // grouped them under the fixed-function label.
  EXPECT_EQ(c.prof.depth_tested, 8u);
  EXPECT_EQ(c.prof.depth_killed, 4u);
  EXPECT_EQ(c.prof.plane_bytes_written, 4u * 4 + 4u * 16);
  const auto groups = Profiler::Global().Snapshot();
  ASSERT_EQ(groups.size(), 1u);
  EXPECT_EQ(groups[0].label, "fixed-function");
  EXPECT_EQ(groups[0].passes, 2u);
  EXPECT_EQ(groups[0].fragments, 8u);
  EXPECT_EQ(groups[0].prof.depth_killed, 4u);
}

TEST(DeviceTest, ProfiledKillAttributionSplitsAlphaAndStencil) {
  ProfilerOnGuard profiling;
  Device dev(2, 1);
  ASSERT_OK(dev.SetViewport(2));
  std::vector<float> a = {1.0f, -1.0f};
  ASSERT_OK_AND_ASSIGN(Texture tex, Texture::FromColumns({&a}, 2));
  ASSERT_OK_AND_ASSIGN(TextureId id, dev.UploadTexture(std::move(tex)));
  ASSERT_OK(dev.BindTexture(id));
  SemilinearProgram program({1, 0, 0, 0}, CompareOp::kGreaterEqual, 0.0f);
  dev.UseProgram(&program);
  dev.ClearStencil(0);
  dev.SetStencilTest(true, CompareOp::kAlways, 1);
  dev.SetStencilOp(StencilOp::kReplace, StencilOp::kReplace,
                   StencilOp::kReplace);
  ASSERT_OK(dev.BeginOcclusionQuery());
  ASSERT_OK(dev.RenderTexturedQuad());
  ASSERT_OK_AND_ASSIGN(uint64_t count, dev.EndOcclusionQuery());
  EXPECT_EQ(count, 1u);

  const DeviceCounters& c = dev.counters();
  ASSERT_EQ(c.pass_log.size(), 1u);
  const PassRecord& pass = c.pass_log.back();
  ASSERT_TRUE(pass.profiled);
  // The program KIL on the negative value is an alpha-stage kill; the
  // always-true stencil test kills nothing, so one fragment reaches the
  // (disabled) depth stage and passes.
  EXPECT_EQ(pass.prof.alpha_killed, 1u);
  EXPECT_EQ(pass.prof.stencil_killed, 0u);
  EXPECT_EQ(pass.prof.depth_tested, 1u);
  EXPECT_EQ(pass.prof.depth_killed, 0u);
  EXPECT_EQ(pass.prof.occlusion_samples, 1u);
  // Stencil enabled, depth off: 1 byte read for the surviving fragment,
  // 1 stencil byte + 16 color bytes written.
  EXPECT_EQ(pass.prof.plane_bytes_read, 1u);
  EXPECT_EQ(pass.prof.plane_bytes_written, 1u + 16u);
}

TEST(DeviceTest, UnprofiledPassLeavesDeepCountersZero) {
  ASSERT_FALSE(Profiler::Global().enabled());
  Device dev(2, 2);
  dev.SetDepthTest(true, CompareOp::kAlways);
  ASSERT_OK(dev.RenderQuad(0.5f));
  const DeviceCounters& c = dev.counters();
  ASSERT_EQ(c.pass_log.size(), 1u);
  EXPECT_FALSE(c.pass_log[0].profiled);
  EXPECT_EQ(c.pass_log[0].prof, PassProfile{});
  EXPECT_EQ(c.prof, PassProfile{});
}

TEST(VideoMemoryTest, UploadWithinBudgetStaysResident) {
  Device dev(8, 8);
  ASSERT_OK(dev.SetVideoMemoryBudget(4096));
  std::vector<float> vals(64, 1.0f);
  auto tex = Texture::FromColumns({&vals}, 8);  // 64 * 4 = 256 bytes
  ASSERT_OK_AND_ASSIGN(TextureId id,
                       dev.UploadTexture(std::move(tex).ValueOrDie()));
  (void)id;
  EXPECT_EQ(dev.video_memory_used(), 256u);
  EXPECT_EQ(dev.counters().texture_swap_ins, 0u);
  EXPECT_EQ(dev.counters().bytes_swapped, 0u);
}

TEST(VideoMemoryTest, ExceedingBudgetEvictsLruAndChargesSwaps) {
  Device dev(8, 8);
  // Budget fits exactly two 256-byte textures.
  ASSERT_OK(dev.SetVideoMemoryBudget(512));
  std::vector<float> vals(64, 1.0f);
  TextureId ids[3];
  for (auto& id : ids) {
    auto tex = Texture::FromColumns({&vals}, 8);
    ASSERT_OK_AND_ASSIGN(id, dev.UploadTexture(std::move(tex).ValueOrDie()));
  }
  // Uploading the third evicted the first (LRU).
  EXPECT_EQ(dev.video_memory_used(), 512u);
  ASSERT_OK(dev.SetViewport(64));
  dev.SetDepthTest(false, CompareOp::kAlways);
  // Touching the evicted texture swaps it back in (and evicts another).
  ASSERT_OK(dev.BindTexture(ids[0]));
  ASSERT_OK(dev.RenderTexturedQuad());
  EXPECT_EQ(dev.counters().texture_swap_ins, 1u);
  EXPECT_EQ(dev.counters().bytes_swapped, 256u);
  // Re-touching while resident costs nothing more.
  ASSERT_OK(dev.RenderTexturedQuad());
  EXPECT_EQ(dev.counters().texture_swap_ins, 1u);
}

TEST(VideoMemoryTest, TextureLargerThanBudgetRejected) {
  Device dev(8, 8);
  ASSERT_OK(dev.SetVideoMemoryBudget(100));
  std::vector<float> vals(64, 1.0f);
  auto tex = Texture::FromColumns({&vals}, 8);
  auto id = dev.UploadTexture(std::move(tex).ValueOrDie());
  ASSERT_FALSE(id.ok());
  EXPECT_EQ(id.status().code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(dev.SetVideoMemoryBudget(0).ok());
}

TEST(VideoMemoryTest, SwapTimeChargedByPerfModel) {
  Device dev(8, 8);
  ASSERT_OK(dev.SetVideoMemoryBudget(512));
  std::vector<float> vals(64, 1.0f);
  TextureId ids[3];
  for (auto& id : ids) {
    auto tex = Texture::FromColumns({&vals}, 8);
    ASSERT_OK_AND_ASSIGN(id, dev.UploadTexture(std::move(tex).ValueOrDie()));
  }
  ASSERT_OK(dev.SetViewport(64));
  dev.ResetCounters();
  ASSERT_OK(dev.BindTexture(ids[0]));  // evicted: will swap on use
  ASSERT_OK(dev.RenderTexturedQuad());
  PerfModel model;
  const GpuTimeBreakdown b = model.Estimate(dev.counters());
  EXPECT_GT(b.swap_ms, 0.0);
  EXPECT_GT(b.TotalMs(), b.ComputeMs());
}

TEST(TextureUnitTest, BindAndUnbindUnits) {
  Device dev(4, 4);
  std::vector<float> vals(16, 2.0f);
  auto tex = Texture::FromColumns({&vals}, 4);
  ASSERT_OK_AND_ASSIGN(TextureId id,
                       dev.UploadTexture(std::move(tex).ValueOrDie()));
  ASSERT_OK(dev.BindTextureUnit(1, id));
  ASSERT_OK(dev.UnbindTextureUnit(1));
  EXPECT_FALSE(dev.BindTextureUnit(4, id).ok());
  EXPECT_FALSE(dev.BindTextureUnit(-1, id).ok());
  EXPECT_FALSE(dev.BindTextureUnit(0, 99).ok());
  EXPECT_FALSE(dev.UnbindTextureUnit(7).ok());
}

TEST(TextureUnitTest, WideSemilinearReadsTwoUnits) {
  Device dev(4, 4);
  std::vector<float> a = {1, 2, 3, 4};
  std::vector<float> b = {10, 20, 30, 40};
  auto ta = Texture::FromColumns({&a}, 4);
  auto tb = Texture::FromColumns({&b}, 4);
  ASSERT_OK_AND_ASSIGN(TextureId ia,
                       dev.UploadTexture(std::move(ta).ValueOrDie()));
  ASSERT_OK_AND_ASSIGN(TextureId ib,
                       dev.UploadTexture(std::move(tb).ValueOrDie()));
  ASSERT_OK(dev.SetViewport(4));
  ASSERT_OK(dev.BindTextureUnit(0, ia));
  ASSERT_OK(dev.BindTextureUnit(1, ib));
  // dot = a + b: {11, 22, 33, 44}; keep > 25.
  WideSemilinearProgram program({1, 0, 0, 0, 1, 0, 0, 0},
                                CompareOp::kGreater, 25.0f);
  dev.UseProgram(&program);
  dev.SetDepthTest(false, CompareOp::kAlways);
  ASSERT_OK(dev.BeginOcclusionQuery());
  ASSERT_OK(dev.RenderTexturedQuad());
  ASSERT_OK_AND_ASSIGN(uint64_t count, dev.EndOcclusionQuery());
  EXPECT_EQ(count, 2u);
}

TEST(CompareOpTest, EvalCompareAllOps) {
  EXPECT_TRUE(EvalCompare(CompareOp::kLess, 1, 2));
  EXPECT_FALSE(EvalCompare(CompareOp::kLess, 2, 2));
  EXPECT_TRUE(EvalCompare(CompareOp::kLessEqual, 2, 2));
  EXPECT_TRUE(EvalCompare(CompareOp::kEqual, 2, 2));
  EXPECT_TRUE(EvalCompare(CompareOp::kGreaterEqual, 2, 2));
  EXPECT_TRUE(EvalCompare(CompareOp::kGreater, 3, 2));
  EXPECT_TRUE(EvalCompare(CompareOp::kNotEqual, 3, 2));
  EXPECT_FALSE(EvalCompare(CompareOp::kNever, 1, 1));
  EXPECT_TRUE(EvalCompare(CompareOp::kAlways, 1, 1));
}

TEST(CompareOpTest, InvertIsLogicalNegation) {
  const int values[] = {-1, 0, 1};
  for (CompareOp op :
       {CompareOp::kNever, CompareOp::kLess, CompareOp::kLessEqual,
        CompareOp::kEqual, CompareOp::kGreaterEqual, CompareOp::kGreater,
        CompareOp::kNotEqual, CompareOp::kAlways}) {
    for (int a : values) {
      for (int b : values) {
        EXPECT_EQ(EvalCompare(Invert(op), a, b), !EvalCompare(op, a, b))
            << ToString(op) << " a=" << a << " b=" << b;
      }
    }
  }
}

TEST(DeviceTest, ResetCountersClearsPassLog) {
  Device dev(4, 4);
  ASSERT_OK(dev.RenderQuad(0.5f));
  ASSERT_OK(dev.RenderQuad(0.5f));
  ASSERT_EQ(dev.counters().pass_log.size(), 2u);
  dev.ResetCounters();
  EXPECT_TRUE(dev.counters().pass_log.empty());
  EXPECT_EQ(dev.counters().fragments_generated, 0u);
  // The log starts fresh: new passes are not appended after stale entries.
  ASSERT_OK(dev.RenderQuad(0.5f));
  ASSERT_EQ(dev.counters().pass_log.size(), 1u);
}

TEST(DeviceTest, PassLogEntriesSatisfyInvariants) {
  Device dev(4, 4);
  // A mix of pass shapes: plain quad, depth-tested, stencil-writing,
  // fragment-program with kills.
  ASSERT_OK(dev.RenderQuad(0.5f));
  dev.SetDepthTest(true, CompareOp::kLess);
  ASSERT_OK(dev.RenderQuad(0.25f));
  dev.SetStencilTest(true, CompareOp::kAlways, 1);
  dev.SetStencilOp(StencilOp::kKeep, StencilOp::kKeep, StencilOp::kReplace);
  ASSERT_OK(dev.RenderQuad(0.1f));
  for (const PassRecord& pass : dev.counters().pass_log) {
    EXPECT_TRUE(pass.Valid())
        << pass.label << ": passed=" << pass.fragments_passed
        << " generated=" << pass.fragments
        << " depth_writes=" << pass.depth_writes;
  }
}

TEST(DeviceTest, DeltaSinceIsolatesTheWindow) {
  Device dev(4, 4);
  ASSERT_OK(dev.RenderQuad(0.5f));
  const DeviceCounters before = dev.counters();
  dev.SetDepthTest(true, CompareOp::kAlways);
  ASSERT_OK(dev.RenderQuad(0.5f));
  (void)dev.ReadStencil();
  const DeviceCounters delta = DeltaSince(before, dev.counters());
  EXPECT_EQ(delta.passes, 1u);
  EXPECT_EQ(delta.fragments_generated, 16u);
  EXPECT_EQ(delta.bytes_read_back, 16u);
  ASSERT_EQ(delta.pass_log.size(), 1u);
  EXPECT_EQ(delta.pass_log[0].depth_writes, 16u);
}

TEST(VideoMemoryTest, FirstUploadIsNotChargedAsSwap) {
  Device dev(8, 8);
  std::vector<float> vals(64, 1.0f);
  auto tex = Texture::FromColumns({&vals}, 8);
  ASSERT_OK_AND_ASSIGN(TextureId id,
                       dev.UploadTexture(std::move(tex).ValueOrDie()));
  ASSERT_OK(dev.BindTexture(id));  // resident: no swap either
  EXPECT_EQ(dev.counters().texture_swap_ins, 0u);
  EXPECT_EQ(dev.counters().bytes_swapped, 0u);
  EXPECT_EQ(dev.counters().bytes_uploaded, 256u);
}

TEST(CompareOpTest, MirrorSwapsOperands) {
  const int values[] = {-1, 0, 1};
  for (CompareOp op :
       {CompareOp::kNever, CompareOp::kLess, CompareOp::kLessEqual,
        CompareOp::kEqual, CompareOp::kGreaterEqual, CompareOp::kGreater,
        CompareOp::kNotEqual, CompareOp::kAlways}) {
    for (int a : values) {
      for (int b : values) {
        EXPECT_EQ(EvalCompare(Mirror(op), b, a), EvalCompare(op, a, b))
            << ToString(op) << " a=" << a << " b=" << b;
      }
    }
  }
}

}  // namespace
}  // namespace gpu
}  // namespace gpudb
