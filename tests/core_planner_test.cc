#include <gtest/gtest.h>

#include "src/core/planner.h"
#include "tests/test_util.h"

namespace gpudb {
namespace core {
namespace {

TEST(PlannerTest, SelectionQueriesRouteToGpuAtScale) {
  // Section 6.2.1: selection and semi-linear queries are the high-gain
  // class; at a million records the GPU must win.
  Planner planner;
  for (OperationKind op :
       {OperationKind::kPredicateSelect, OperationKind::kRangeSelect,
        OperationKind::kSemilinearSelect}) {
    const PlanDecision d = planner.Choose(op, 1'000'000);
    EXPECT_EQ(d.backend, Backend::kGpu) << ToString(op);
    EXPECT_GT(d.cpu_ms / d.gpu_ms, 2.0) << ToString(op);
  }
}

TEST(PlannerTest, MultiAttributeRoutesToGpu) {
  Planner planner;
  const PlanDecision d =
      planner.Choose(OperationKind::kMultiAttributeSelect, 1'000'000,
                     /*detail=*/4);
  EXPECT_EQ(d.backend, Backend::kGpu);
  // Figure 5: "nearly 2 times faster".
  EXPECT_GT(d.cpu_ms / d.gpu_ms, 1.5);
  EXPECT_LT(d.cpu_ms / d.gpu_ms, 4.0);
}

TEST(PlannerTest, KthLargestRoutesToGpuWithMediumGain) {
  Planner planner;
  const PlanDecision d =
      planner.Choose(OperationKind::kKthLargest, 250'000, /*detail=*/19);
  EXPECT_EQ(d.backend, Backend::kGpu);
  // Figure 7: about twice as fast.
  EXPECT_GT(d.cpu_ms / d.gpu_ms, 1.3);
  EXPECT_LT(d.cpu_ms / d.gpu_ms, 4.0);
}

TEST(PlannerTest, SumRoutesToCpu) {
  // Section 6.2.3 / Figure 10: the Accumulator is ~20x slower than the
  // CPU's SIMD sum.
  Planner planner;
  const PlanDecision d =
      planner.Choose(OperationKind::kSum, 1'000'000, /*detail=*/19);
  EXPECT_EQ(d.backend, Backend::kCpu);
  EXPECT_GT(d.gpu_ms / d.cpu_ms, 10.0);
  EXPECT_NE(d.rationale.find("20x"), std::string_view::npos);
}

TEST(PlannerTest, TinyInputsPreferCpu) {
  // Fixed per-pass setup + readback latency dominates at small n, so the
  // crossover pushes small selections back to the CPU.
  Planner planner;
  const PlanDecision d = planner.Choose(OperationKind::kPredicateSelect, 500);
  EXPECT_EQ(d.backend, Backend::kCpu);
}

TEST(PlannerTest, CrossoverExistsForPredicates) {
  Planner planner;
  const double small_gpu = planner.GpuMs(OperationKind::kPredicateSelect, 100);
  const double small_cpu = planner.CpuMs(OperationKind::kPredicateSelect, 100);
  EXPECT_GT(small_gpu, small_cpu);
  const double big_gpu =
      planner.GpuMs(OperationKind::kPredicateSelect, 1'000'000);
  const double big_cpu =
      planner.CpuMs(OperationKind::kPredicateSelect, 1'000'000);
  EXPECT_LT(big_gpu, big_cpu);
}

TEST(PlannerTest, ModelMatchesPaperHeadlineRatios) {
  Planner planner;
  const uint64_t n = 1'000'000;
  // Figure 3: overall ~3x for single predicates.
  EXPECT_NEAR(planner.CpuMs(OperationKind::kPredicateSelect, n) /
                  planner.GpuMs(OperationKind::kPredicateSelect, n),
              3.0, 0.5);
  // Figure 4: overall ~5.5x for range queries.
  EXPECT_NEAR(planner.CpuMs(OperationKind::kRangeSelect, n) /
                  planner.GpuMs(OperationKind::kRangeSelect, n),
              5.5, 0.8);
  // Figure 6: ~9x for semi-linear queries.
  EXPECT_NEAR(planner.CpuMs(OperationKind::kSemilinearSelect, n) /
                  planner.GpuMs(OperationKind::kSemilinearSelect, n),
              9.0, 1.5);
}

TEST(PlannerTest, CountIsCheapOnGpu) {
  Planner planner;
  const double ms = planner.GpuMs(OperationKind::kCount, 1'000'000);
  // Section 5.11: counts over a 1000x1000 buffer within 0.25 ms plus the
  // rendering pass.
  EXPECT_LT(ms, 0.5);
  const PlanDecision d = planner.Choose(OperationKind::kCount, 1'000'000);
  EXPECT_EQ(d.backend, Backend::kGpu);
}

TEST(PlannerTest, RationaleAlwaysProvided) {
  Planner planner;
  for (OperationKind op :
       {OperationKind::kPredicateSelect, OperationKind::kRangeSelect,
        OperationKind::kMultiAttributeSelect, OperationKind::kSemilinearSelect,
        OperationKind::kKthLargest, OperationKind::kSum,
        OperationKind::kCount}) {
    EXPECT_FALSE(planner.Choose(op, 1'000'000, 8).rationale.empty())
        << ToString(op);
  }
}

TEST(PlannerTest, OperationNamesRoundTrip) {
  EXPECT_EQ(ToString(OperationKind::kSum), "sum");
  EXPECT_EQ(ToString(Backend::kGpu), "GPU");
  EXPECT_EQ(ToString(Backend::kCpu), "CPU");
}

}  // namespace
}  // namespace core
}  // namespace gpudb
