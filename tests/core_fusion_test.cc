// Planner pass fusion + depth-plane caching (DESIGN.md §14): the rewritten
// plans must be bit-exact with the reference pass sequences -- same counts,
// same stencil masks -- while issuing fewer passes (fusion) or skipping
// attribute copies (cache). Also unit-tests PlanSelectionPasses and the
// gpu::PlaneCache container itself (LRU, invalidation, budget priority).

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/compare.h"
#include "src/core/eval_cnf.h"
#include "src/core/planner.h"
#include "src/gpu/device.h"
#include "src/gpu/plane_cache.h"
#include "tests/test_util.h"

namespace gpudb {
namespace core {
namespace {

using gpu::CompareOp;
using testing_util::RandomInts;
using testing_util::UploadIntAttribute;

constexpr int kBitWidth = 16;
constexpr size_t kRecords = 2500;

GpuPredicate Depth(const AttributeBinding& attr, CompareOp op, double c) {
  return GpuPredicate::DepthCompare(attr, op, c);
}

/// Boolean selection mask from the current stencil contents.
std::vector<bool> SelectionMask(gpu::Device* device, uint8_t valid,
                                size_t n) {
  auto stencil = device->ReadStencil();
  EXPECT_TRUE(stencil.ok());
  std::vector<bool> mask(n);
  for (size_t i = 0; i < n; ++i) {
    mask[i] = stencil.ValueOrDie()[i] == valid;
  }
  return mask;
}

// ---------------------------------------------------------------------------
// PlanSelectionPasses units.

TEST(PlanSelectionPassesTest, SingletonCnfCollapsesToCountedChain) {
  AttributeBinding attr;
  const std::vector<GpuClause> clauses = {
      {Depth(attr, CompareOp::kGreater, 10)},
      {Depth(attr, CompareOp::kLess, 90)},
      {Depth(attr, CompareOp::kNotEqual, 50)}};
  const PassPlan plan = PlanSelectionPasses(clauses, /*fusion_enabled=*/true,
                                            /*cache_enabled=*/false);
  EXPECT_TRUE(plan.chain);
  EXPECT_TRUE(plan.fused_count);
  EXPECT_EQ(plan.fused_compares, 3);
  EXPECT_TRUE(plan.Rewritten());
  // Reference: 3 copies + 3 compares + 3 cleanups + 1 count = 10.
  EXPECT_EQ(plan.unfused_passes, 10);
  // Rewritten: 3 fused compare passes, count carried by the last one.
  EXPECT_EQ(plan.planned_passes, 3);
}

TEST(PlanSelectionPassesTest, MultiPredicateClauseKeepsTheCnfSkeleton) {
  AttributeBinding attr;
  const std::vector<GpuClause> clauses = {
      {Depth(attr, CompareOp::kLess, 10), Depth(attr, CompareOp::kGreater, 90)},
      {Depth(attr, CompareOp::kNotEqual, 0)}};
  const PassPlan plan = PlanSelectionPasses(clauses, true, false);
  EXPECT_FALSE(plan.chain);
  EXPECT_FALSE(plan.fused_count);
  EXPECT_EQ(plan.fused_compares, 3);
  // Reference: 3 copies + 3 compares + 2 cleanups + 1 count = 9.
  EXPECT_EQ(plan.unfused_passes, 9);
  // Rewritten: 3 fused + 2 cleanups + 1 count = 6.
  EXPECT_EQ(plan.planned_passes, 6);
}

TEST(PlanSelectionPassesTest, FusionDisabledPlansTheReferenceSequence) {
  AttributeBinding attr;
  const std::vector<GpuClause> clauses = {{Depth(attr, CompareOp::kLess, 5)}};
  const PassPlan plan = PlanSelectionPasses(clauses, false, false);
  EXPECT_FALSE(plan.Rewritten());
  EXPECT_EQ(plan.planned_passes, plan.unfused_passes);
}

TEST(PlanSelectionPassesTest, CacheDisablesCompareFusionButKeepsTheChain) {
  AttributeBinding attr;
  const std::vector<GpuClause> clauses = {
      {Depth(attr, CompareOp::kGreater, 10)},
      {Depth(attr, CompareOp::kLess, 90)}};
  const PassPlan plan = PlanSelectionPasses(clauses, true, true);
  EXPECT_TRUE(plan.chain);
  EXPECT_TRUE(plan.fused_count);
  // Cacheable predicates keep the copy separate so the depth plane can be
  // snapshotted and restored across queries.
  EXPECT_EQ(plan.fused_compares, 0);
  // 2 copies + 2 compares, count carried by the final compare.
  EXPECT_EQ(plan.planned_passes, 4);
}

// ---------------------------------------------------------------------------
// Fused copy+compare: bit-exact with the reference pair for every operator.

TEST(FusedCompareTest, MatchesUnfusedForEveryOperatorAndConstant) {
  const std::vector<uint32_t> ints = RandomInts(kRecords, kBitWidth, 42);
  const double present = static_cast<double>(ints[7]);  // boundary stress
  for (const CompareOp op :
       {CompareOp::kLess, CompareOp::kLessEqual, CompareOp::kEqual,
        CompareOp::kGreaterEqual, CompareOp::kGreater, CompareOp::kNotEqual}) {
    for (const double constant : {present, 0.0, 40000.0}) {
      gpu::Device device(64, 64);
      AttributeBinding attr = UploadIntAttribute(&device, ints, 64);
      const std::vector<GpuClause> clauses = {{Depth(attr, op, constant)}};

      auto ref = EvalCnf(&device, clauses);
      ASSERT_TRUE(ref.ok()) << ref.status().ToString();
      const std::vector<bool> ref_mask =
          SelectionMask(&device, ref.ValueOrDie().valid_value, kRecords);

      SelectionExecOptions opts;
      opts.plan = PlanSelectionPasses(clauses, true, false);
      const uint64_t passes_before = device.counters().passes;
      auto fused = EvalCnfPlanned(&device, clauses, &opts);
      ASSERT_TRUE(fused.ok()) << fused.status().ToString();
      const std::string what = std::string(gpu::ToString(op)) + " " +
                               std::to_string(constant);
      EXPECT_EQ(fused.ValueOrDie().count, ref.ValueOrDie().count) << what;
      EXPECT_EQ(SelectionMask(&device, fused.ValueOrDie().valid_value,
                              kRecords),
                ref_mask)
          << what;
      EXPECT_EQ(opts.fused_passes, 1) << what;
      // The whole selection ran in one pass (count via the same pass).
      EXPECT_EQ(device.counters().passes - passes_before, 1u) << what;
    }
  }
}

// ---------------------------------------------------------------------------
// Planned evaluators vs. the legacy ones.

class PlannedEvalTest : public ::testing::Test {
 protected:
  PlannedEvalTest() : device_(64, 64) {
    ints_ = RandomInts(kRecords, kBitWidth, 20260806);
    attr_ = UploadIntAttribute(&device_, ints_, 64);
  }

  gpu::Device device_;
  std::vector<uint32_t> ints_;
  AttributeBinding attr_;
};

TEST_F(PlannedEvalTest, GeneralCnfMatchesLegacyWithFewerPasses) {
  const std::vector<GpuClause> clauses = {
      {Depth(attr_, CompareOp::kLess, 16000),
       Depth(attr_, CompareOp::kGreaterEqual, 48000)},
      {Depth(attr_, CompareOp::kNotEqual, 0)}};

  const uint64_t before_ref = device_.counters().passes;
  auto ref = EvalCnf(&device_, clauses);
  ASSERT_TRUE(ref.ok());
  const uint64_t ref_passes = device_.counters().passes - before_ref;
  const std::vector<bool> ref_mask =
      SelectionMask(&device_, ref.ValueOrDie().valid_value, kRecords);

  SelectionExecOptions opts;
  opts.plan = PlanSelectionPasses(clauses, true, false);
  const uint64_t before = device_.counters().passes;
  auto planned = EvalCnfPlanned(&device_, clauses, &opts);
  ASSERT_TRUE(planned.ok());
  const uint64_t planned_passes = device_.counters().passes - before;

  EXPECT_EQ(planned.ValueOrDie().count, ref.ValueOrDie().count);
  EXPECT_EQ(planned.ValueOrDie().valid_value, ref.ValueOrDie().valid_value);
  EXPECT_EQ(
      SelectionMask(&device_, planned.ValueOrDie().valid_value, kRecords),
      ref_mask);
  EXPECT_EQ(opts.fused_passes, 3);
  EXPECT_LT(planned_passes, ref_passes);
  EXPECT_EQ(device_.counters().fused_passes, 3u);
}

TEST_F(PlannedEvalTest, SingletonChainMatchesLegacyCount) {
  const std::vector<GpuClause> clauses = {
      {Depth(attr_, CompareOp::kGreater, 8000)},
      {Depth(attr_, CompareOp::kLess, 56000)},
      {Depth(attr_, CompareOp::kNotEqual, 12345)}};

  auto ref = EvalCnf(&device_, clauses);
  ASSERT_TRUE(ref.ok());
  const std::vector<bool> ref_mask =
      SelectionMask(&device_, ref.ValueOrDie().valid_value, kRecords);

  SelectionExecOptions opts;
  opts.plan = PlanSelectionPasses(clauses, true, false);
  ASSERT_TRUE(opts.plan.chain);
  const uint64_t before = device_.counters().passes;
  auto planned = EvalCnfPlanned(&device_, clauses, &opts);
  ASSERT_TRUE(planned.ok());

  // Chain + fused count: one pass per predicate, nothing else.
  EXPECT_EQ(device_.counters().passes - before, clauses.size());
  EXPECT_EQ(planned.ValueOrDie().count, ref.ValueOrDie().count);
  // The chain walks the stencil up to k+1 instead of parity-flipping
  // between 1 and 2, so the valid *value* differs; the selected *set*
  // must not.
  EXPECT_EQ(planned.ValueOrDie().valid_value, clauses.size() + 1);
  EXPECT_EQ(
      SelectionMask(&device_, planned.ValueOrDie().valid_value, kRecords),
      ref_mask);
}

TEST_F(PlannedEvalTest, DnfMatchesLegacy) {
  const std::vector<GpuTerm> terms = {
      {Depth(attr_, CompareOp::kLess, 10000),
       Depth(attr_, CompareOp::kGreater, 2000)},
      {Depth(attr_, CompareOp::kGreaterEqual, 60000)}};

  auto ref = EvalDnf(&device_, terms);
  ASSERT_TRUE(ref.ok());
  const std::vector<bool> ref_mask =
      SelectionMask(&device_, ref.ValueOrDie().valid_value, kRecords);

  SelectionExecOptions opts;
  opts.plan = PlanSelectionPasses(terms, true, false);
  opts.plan.chain = false;  // executor clears the chain rules for DNF
  opts.plan.fused_count = false;
  auto planned = EvalDnfPlanned(&device_, terms, &opts);
  ASSERT_TRUE(planned.ok());

  EXPECT_EQ(planned.ValueOrDie().count, ref.ValueOrDie().count);
  EXPECT_EQ(planned.ValueOrDie().valid_value, ref.ValueOrDie().valid_value);
  EXPECT_EQ(
      SelectionMask(&device_, planned.ValueOrDie().valid_value, kRecords),
      ref_mask);
  EXPECT_EQ(opts.fused_passes, 3);
}

// ---------------------------------------------------------------------------
// Depth-plane cache: hit/miss behaviour, bit-exactness, invalidation, LRU.

class PlaneCacheExecTest : public ::testing::Test {
 protected:
  PlaneCacheExecTest() : device_(64, 64) {
    ints_ = RandomInts(kRecords, kBitWidth, 7);
    attr_ = UploadIntAttribute(&device_, ints_, 64);
    attr_.column = 0;
  }

  SelectionExecOptions CachedOpts(const std::vector<GpuClause>& clauses,
                                  uint64_t version = 1) {
    SelectionExecOptions opts;
    opts.plan = PlanSelectionPasses(clauses, true, true);
    opts.use_cache = true;
    opts.table = "t";
    opts.table_version = version;
    return opts;
  }

  gpu::Device device_;
  std::vector<uint32_t> ints_;
  AttributeBinding attr_;
};

TEST_F(PlaneCacheExecTest, MissThenHitStaysBitExactAndSkipsTheCopy) {
  const std::vector<GpuClause> clauses = {
      {Depth(attr_, CompareOp::kGreater, 30000)}};

  auto ref = EvalCnf(&device_, clauses);
  ASSERT_TRUE(ref.ok());

  SelectionExecOptions cold = CachedOpts(clauses);
  auto first = EvalCnfPlanned(&device_, clauses, &cold);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(cold.cache_misses, 1);
  EXPECT_EQ(cold.cache_hits, 0);
  EXPECT_EQ(cold.fused_passes, 0);  // cacheable predicates are not fused
  EXPECT_EQ(first.ValueOrDie().count, ref.ValueOrDie().count);

  SelectionExecOptions warm = CachedOpts(clauses);
  auto second = EvalCnfPlanned(&device_, clauses, &warm);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(warm.cache_hits, 1);
  EXPECT_EQ(warm.cache_misses, 0);
  EXPECT_EQ(second.ValueOrDie().count, ref.ValueOrDie().count);

  EXPECT_EQ(device_.counters().plane_cache_hits, 1u);
  EXPECT_EQ(device_.counters().plane_cache_misses, 1u);
  // The warm query ran no CopyToDepth: its pass log is restore + compare,
  // and the restore is flagged as a cache hit.
  const auto& log = device_.counters().pass_log;
  ASSERT_GE(log.size(), 2u);
  const auto& restore = log[log.size() - 2];
  EXPECT_EQ(restore.label, "plane-restore");
  EXPECT_TRUE(restore.cache_hit);
}

TEST_F(PlaneCacheExecTest, RestoredPlaneIsBitExact) {
  const std::vector<GpuClause> clauses = {
      {Depth(attr_, CompareOp::kLessEqual, 20000)}};
  SelectionExecOptions cold = CachedOpts(clauses);
  ASSERT_TRUE(EvalCnfPlanned(&device_, clauses, &cold).ok());
  auto after_copy = device_.ReadDepth();
  ASSERT_TRUE(after_copy.ok());

  device_.ClearDepth(0.0f);  // scribble over the plane
  SelectionExecOptions warm = CachedOpts(clauses);
  ASSERT_TRUE(EvalCnfPlanned(&device_, clauses, &warm).ok());
  ASSERT_EQ(warm.cache_hits, 1);
  auto after_restore = device_.ReadDepth();
  ASSERT_TRUE(after_restore.ok());
  // The cache covers the viewport's texels; the framebuffer tail beyond
  // them is scratch.
  const std::vector<uint32_t> copied(after_copy.ValueOrDie().begin(),
                                     after_copy.ValueOrDie().begin() + kRecords);
  const std::vector<uint32_t> restored(
      after_restore.ValueOrDie().begin(),
      after_restore.ValueOrDie().begin() + kRecords);
  EXPECT_EQ(copied, restored);
}

TEST_F(PlaneCacheExecTest, TableInvalidationAndVersionChangeBothMiss) {
  const std::vector<GpuClause> clauses = {
      {Depth(attr_, CompareOp::kGreater, 100)}};
  SelectionExecOptions cold = CachedOpts(clauses);
  ASSERT_TRUE(EvalCnfPlanned(&device_, clauses, &cold).ok());
  ASSERT_EQ(cold.cache_misses, 1);

  // Version bump: the old plane is still resident but its key no longer
  // matches, so the query misses (and re-caches under the new version).
  SelectionExecOptions v2 = CachedOpts(clauses, /*version=*/2);
  ASSERT_TRUE(EvalCnfPlanned(&device_, clauses, &v2).ok());
  EXPECT_EQ(v2.cache_misses, 1);
  EXPECT_EQ(v2.cache_hits, 0);

  // Eager invalidation: planes for the table are dropped outright.
  device_.InvalidateCachedPlanes("t");
  EXPECT_EQ(device_.plane_cache().size(), 0u);
  SelectionExecOptions after = CachedOpts(clauses, /*version=*/2);
  ASSERT_TRUE(EvalCnfPlanned(&device_, clauses, &after).ok());
  EXPECT_EQ(after.cache_misses, 1);
}

TEST_F(PlaneCacheExecTest, PredicateWithoutColumnIdentityIsNotCached) {
  AttributeBinding anon = attr_;
  anon.column = -1;
  const std::vector<GpuClause> clauses = {
      {Depth(anon, CompareOp::kGreater, 30000)}};
  SelectionExecOptions opts = CachedOpts(clauses);
  auto sel = EvalCnfPlanned(&device_, clauses, &opts);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(opts.cache_hits + opts.cache_misses, 0);
  EXPECT_EQ(device_.plane_cache().size(), 0u);
}

// ---------------------------------------------------------------------------
// gpu::PlaneCache container semantics.

TEST(PlaneCacheTest, LruEvictionAndInvalidation) {
  gpu::PlaneCache cache;
  gpu::PlaneKey a{"t", 1, 0, 1.0, 0.0, 4};
  gpu::PlaneKey b{"t", 1, 1, 1.0, 0.0, 4};
  gpu::PlaneKey c{"u", 1, 0, 1.0, 0.0, 4};
  cache.Insert(a, {1, 2, 3, 4});
  cache.Insert(b, {5, 6, 7, 8});
  cache.Insert(c, {9, 10, 11, 12});
  EXPECT_EQ(cache.size(), 3u);
  EXPECT_EQ(cache.bytes(), 3u * 4u * sizeof(uint32_t));

  // Touch `a` so `b` is the least recently used.
  ASSERT_NE(cache.Lookup(a), nullptr);
  ASSERT_TRUE(cache.EvictLru());
  EXPECT_EQ(cache.Lookup(b), nullptr);
  EXPECT_NE(cache.Lookup(a), nullptr);

  // Table invalidation drops only that table's planes.
  EXPECT_EQ(cache.InvalidateTable("t"), 1u);
  EXPECT_EQ(cache.Lookup(a), nullptr);
  EXPECT_NE(cache.Lookup(c), nullptr);

  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_FALSE(cache.EvictLru());
}

TEST(PlaneCacheTest, KeyDiscriminatesEveryField) {
  gpu::PlaneCache cache;
  const gpu::PlaneKey base{"t", 1, 0, 1.0, 0.0, 8};
  cache.Insert(base, std::vector<uint32_t>(8, 7));
  for (gpu::PlaneKey k :
       {gpu::PlaneKey{"u", 1, 0, 1.0, 0.0, 8},   // table
        gpu::PlaneKey{"t", 2, 0, 1.0, 0.0, 8},   // version
        gpu::PlaneKey{"t", 1, 1, 1.0, 0.0, 8},   // column
        gpu::PlaneKey{"t", 1, 0, 2.0, 0.0, 8},   // scale
        gpu::PlaneKey{"t", 1, 0, 1.0, 1.0, 8},   // offset
        gpu::PlaneKey{"t", 1, 0, 1.0, 0.0, 4}}) {  // viewport
    EXPECT_EQ(cache.Lookup(k), nullptr);
  }
  EXPECT_NE(cache.Lookup(base), nullptr);
}

TEST(PlaneCacheBudgetTest, PlanesNeverDisplaceTexturesAndEvictLruFirst) {
  const std::vector<uint32_t> ints = RandomInts(kRecords, kBitWidth, 99);
  gpu::Device device(64, 64);
  AttributeBinding attr = UploadIntAttribute(&device, ints, 64);
  attr.column = 0;
  const uint64_t texture_bytes = device.video_memory_used();
  ASSERT_GT(texture_bytes, 0u);
  const uint64_t plane_bytes = device.viewport_pixels() * sizeof(uint32_t);

  // Budget with room for the texture plus exactly one cached plane.
  ASSERT_TRUE(
      device.SetVideoMemoryBudget(texture_bytes + plane_bytes).ok());

  gpu::PlaneKey k0{"t", 1, 0, attr.encoding.scale, attr.encoding.offset,
                   device.viewport_pixels()};
  gpu::PlaneKey k1 = k0;
  k1.column = 1;
  ASSERT_TRUE(CopyToDepth(&device, attr).ok());
  ASSERT_TRUE(device.CacheDepthPlane(k0).ok());
  EXPECT_EQ(device.plane_cache().size(), 1u);

  // A second plane exceeds the budget: the LRU plane is evicted and the
  // texture stays resident (planes are strictly lower priority).
  ASSERT_TRUE(device.CacheDepthPlane(k1).ok());
  EXPECT_EQ(device.plane_cache().size(), 1u);
  EXPECT_TRUE(device.plane_cache().Contains(k1));
  EXPECT_EQ(device.video_memory_used(), texture_bytes);
  EXPECT_LE(device.video_memory_used() + device.plane_cache().bytes(),
            texture_bytes + plane_bytes);

  // Shrinking the budget to texture-only drains the plane cache before
  // touching any texture.
  ASSERT_TRUE(device.SetVideoMemoryBudget(texture_bytes).ok());
  EXPECT_EQ(device.plane_cache().size(), 0u);
  EXPECT_EQ(device.video_memory_used(), texture_bytes);

  // With no headroom at all, caching silently skips (the query already has
  // its answer; the cache is an optimization, never an error).
  ASSERT_TRUE(device.CacheDepthPlane(k0).ok());
  EXPECT_EQ(device.plane_cache().size(), 0u);
}

}  // namespace
}  // namespace core
}  // namespace gpudb
