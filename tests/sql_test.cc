#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/executor.h"
#include "src/db/datagen.h"
#include "src/gpu/device.h"
#include "src/sql/lexer.h"
#include "src/sql/parser.h"
#include "tests/test_util.h"

namespace gpudb {
namespace sql {
namespace {

using core::AggregateKind;

TEST(LexerTest, TokenizesAllKinds) {
  ASSERT_OK_AND_ASSIGN(
      std::vector<Token> tokens,
      Tokenize("SELECT COUNT(*) FROM t WHERE a >= 1.5 AND b <> c;"));
  std::vector<TokenKind> kinds;
  for (const Token& t : tokens) kinds.push_back(t.kind);
  const std::vector<TokenKind> expected = {
      TokenKind::kSelect, TokenKind::kCount,  TokenKind::kLParen,
      TokenKind::kStar,   TokenKind::kRParen, TokenKind::kFrom,
      TokenKind::kIdentifier, TokenKind::kWhere, TokenKind::kIdentifier,
      TokenKind::kGe,     TokenKind::kNumber, TokenKind::kAnd,
      TokenKind::kIdentifier, TokenKind::kNe, TokenKind::kIdentifier,
      TokenKind::kSemicolon, TokenKind::kEnd};
  EXPECT_EQ(kinds, expected);
}

TEST(LexerTest, KeywordsAreCaseInsensitive) {
  ASSERT_OK_AND_ASSIGN(std::vector<Token> tokens,
                       Tokenize("select Sum(x) from T where NOT a < 2"));
  EXPECT_EQ(tokens[0].kind, TokenKind::kSelect);
  EXPECT_EQ(tokens[1].kind, TokenKind::kSum);
  // select(0) Sum(1) "("(2) x(3) ")"(4) from(5) T(6) where(7) NOT(8)
  EXPECT_EQ(tokens[7].kind, TokenKind::kWhere);
  EXPECT_EQ(tokens[8].kind, TokenKind::kNot);
}

TEST(LexerTest, NumbersParse) {
  ASSERT_OK_AND_ASSIGN(std::vector<Token> tokens, Tokenize("3.25 100 .5"));
  EXPECT_DOUBLE_EQ(tokens[0].number, 3.25);
  EXPECT_DOUBLE_EQ(tokens[1].number, 100.0);
  EXPECT_DOUBLE_EQ(tokens[2].number, 0.5);
}

TEST(LexerTest, RejectsGarbage) {
  EXPECT_FALSE(Tokenize("SELECT @ FROM t").ok());
  EXPECT_FALSE(Tokenize("a ! b").ok());
}

class ParserTest : public ::testing::Test {
 protected:
  ParserTest() {
    auto t = db::MakeUniformTable(500, 8, 3, /*seed=*/51);
    EXPECT_TRUE(t.ok());
    table_ = std::move(t).ValueOrDie();
    // Columns are named u0, u1, u2.
  }
  db::Table table_;
};

TEST_F(ParserTest, CountStar) {
  ASSERT_OK_AND_ASSIGN(Query q,
                       ParseQuery("SELECT COUNT(*) FROM flows", table_));
  EXPECT_EQ(q.kind, Query::Kind::kCount);
  EXPECT_EQ(q.table_name, "flows");
  EXPECT_EQ(q.where, nullptr);
}

TEST_F(ParserTest, AggregateWithWhere) {
  ASSERT_OK_AND_ASSIGN(
      Query q,
      ParseQuery("SELECT AVG(u0) FROM t WHERE u1 >= 10 AND u2 < 200",
                 table_));
  EXPECT_EQ(q.kind, Query::Kind::kAggregate);
  EXPECT_EQ(q.aggregate, AggregateKind::kAvg);
  EXPECT_EQ(q.column, "u0");
  ASSERT_NE(q.where, nullptr);
  EXPECT_EQ(q.where->kind(), predicate::Expr::Kind::kAnd);
}

TEST_F(ParserTest, KthLargest) {
  ASSERT_OK_AND_ASSIGN(
      Query q, ParseQuery("SELECT KTH_LARGEST(u0, 42) FROM t", table_));
  EXPECT_EQ(q.kind, Query::Kind::kKthLargest);
  EXPECT_EQ(q.k, 42u);
  EXPECT_FALSE(
      ParseQuery("SELECT KTH_LARGEST(u0, 1.5) FROM t", table_).ok());
  EXPECT_FALSE(ParseQuery("SELECT KTH_LARGEST(u0, 0) FROM t", table_).ok());
}

TEST_F(ParserTest, PrecedenceAndOverOr) {
  // a OR b AND c parses as a OR (b AND c).
  ASSERT_OK_AND_ASSIGN(
      Query q,
      ParseQuery("SELECT COUNT(*) FROM t WHERE u0 < 1 OR u1 < 2 AND u2 < 3",
                 table_));
  ASSERT_EQ(q.where->kind(), predicate::Expr::Kind::kOr);
  EXPECT_EQ(q.where->children()[1]->kind(), predicate::Expr::Kind::kAnd);
}

TEST_F(ParserTest, ParenthesesOverridePrecedence) {
  ASSERT_OK_AND_ASSIGN(
      Query q,
      ParseQuery(
          "SELECT COUNT(*) FROM t WHERE (u0 < 1 OR u1 < 2) AND u2 < 3",
          table_));
  ASSERT_EQ(q.where->kind(), predicate::Expr::Kind::kAnd);
  EXPECT_EQ(q.where->children()[0]->kind(), predicate::Expr::Kind::kOr);
}

TEST_F(ParserTest, BetweenAndReversedComparison) {
  ASSERT_OK_AND_ASSIGN(
      Query q,
      ParseQuery("SELECT COUNT(*) FROM t WHERE u0 BETWEEN 10 AND 20",
                 table_));
  // BETWEEN expands to the two-sided AND.
  EXPECT_EQ(q.where->kind(), predicate::Expr::Kind::kAnd);
  // number op column mirrors correctly: 5 < u0  ==  u0 > 5.
  ASSERT_OK_AND_ASSIGN(
      Query q2,
      ParseQuery("SELECT COUNT(*) FROM t WHERE 5 < u0", table_));
  EXPECT_EQ(q2.where->pred().op, gpu::CompareOp::kGreater);
  EXPECT_EQ(q2.where->pred().constant, 5.0f);
}

TEST_F(ParserTest, AttrAttrComparison) {
  ASSERT_OK_AND_ASSIGN(
      Query q,
      ParseQuery("SELECT COUNT(*) FROM t WHERE u0 >= u1", table_));
  EXPECT_TRUE(q.where->pred().rhs_is_attr);
  EXPECT_EQ(q.where->pred().rhs_attr, 1u);
}

TEST_F(ParserTest, ErrorsCarryPosition) {
  auto r = ParseQuery("SELECT COUNT(*) FROM t WHERE nope > 1", table_);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("unknown column 'nope'"),
            std::string::npos);
  EXPECT_FALSE(ParseQuery("SELECT FROM t", table_).ok());
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) t", table_).ok());
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) FROM t WHERE", table_).ok());
  EXPECT_FALSE(
      ParseQuery("SELECT COUNT(*) FROM t WHERE u0 >", table_).ok());
  EXPECT_FALSE(
      ParseQuery("SELECT COUNT(*) FROM t trailing", table_).ok());
}

class SqlEndToEndTest : public ::testing::Test {
 protected:
  SqlEndToEndTest() : device_(64, 64) {
    auto t = db::MakeUniformTable(2000, 8, 3, /*seed=*/52);
    EXPECT_TRUE(t.ok());
    table_ = std::move(t).ValueOrDie();
    auto exec = core::Executor::Make(&device_, &table_);
    EXPECT_TRUE(exec.ok());
    executor_ = std::move(exec).ValueOrDie();
  }

  gpu::Device device_;
  db::Table table_;
  std::unique_ptr<core::Executor> executor_;
};

TEST_F(SqlEndToEndTest, CountMatchesDirectEvaluation) {
  ASSERT_OK_AND_ASSIGN(
      QueryResult r,
      ExecuteSql(executor_.get(),
                 "SELECT COUNT(*) FROM t WHERE u0 >= 100 AND NOT u1 = 7"));
  uint64_t expected = 0;
  for (size_t row = 0; row < table_.num_rows(); ++row) {
    expected += (table_.column(0).value(row) >= 100.0f &&
                 table_.column(1).value(row) != 7.0f)
                    ? 1
                    : 0;
  }
  EXPECT_EQ(r.count, expected);
  EXPECT_NE(r.ToString().find("count"), std::string::npos);
}

TEST_F(SqlEndToEndTest, AggregatesRun) {
  ASSERT_OK_AND_ASSIGN(QueryResult sum,
                       ExecuteSql(executor_.get(),
                                  "SELECT SUM(u0) FROM t WHERE u1 < 128"));
  uint64_t expected = 0;
  for (size_t row = 0; row < table_.num_rows(); ++row) {
    if (table_.column(1).value(row) < 128.0f) {
      expected += static_cast<uint64_t>(table_.column(0).value(row));
    }
  }
  EXPECT_DOUBLE_EQ(sum.scalar, static_cast<double>(expected));

  ASSERT_OK_AND_ASSIGN(QueryResult max_r,
                       ExecuteSql(executor_.get(), "SELECT MAX(u2) FROM t"));
  EXPECT_DOUBLE_EQ(max_r.scalar,
                   static_cast<double>(table_.column(2).max()));
}

TEST_F(SqlEndToEndTest, SelectRowsAndKth) {
  ASSERT_OK_AND_ASSIGN(
      QueryResult rows,
      ExecuteSql(executor_.get(), "SELECT * FROM t WHERE u0 BETWEEN 0 AND 9"));
  for (uint32_t row : rows.row_ids) {
    EXPECT_LE(table_.column(0).value(row), 9.0f);
  }
  ASSERT_OK_AND_ASSIGN(
      QueryResult kth,
      ExecuteSql(executor_.get(), "SELECT KTH_LARGEST(u0, 1) FROM t"));
  EXPECT_DOUBLE_EQ(kth.scalar, static_cast<double>(table_.column(0).max()));
}

TEST_F(ParserTest, GroupByParses) {
  ASSERT_OK_AND_ASSIGN(
      Query q, ParseQuery("SELECT SUM(u0) FROM t GROUP BY u1", table_));
  EXPECT_EQ(q.kind, Query::Kind::kGroupBy);
  EXPECT_EQ(q.column, "u0");
  EXPECT_EQ(q.group_by_column, "u1");
  EXPECT_EQ(q.aggregate, core::AggregateKind::kSum);
  // GROUP BY without an aggregate, with WHERE, or with bad syntax fails.
  EXPECT_FALSE(ParseQuery("SELECT * FROM t GROUP BY u1", table_).ok());
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) FROM t GROUP BY u1", table_).ok());
  EXPECT_FALSE(
      ParseQuery("SELECT SUM(u0) FROM t WHERE u0 > 1 GROUP BY u1", table_)
          .ok());
  EXPECT_FALSE(ParseQuery("SELECT SUM(u0) FROM t GROUP u1", table_).ok());
  EXPECT_FALSE(ParseQuery("SELECT SUM(u0) FROM t GROUP BY 5", table_).ok());
}

TEST_F(ParserTest, OrderByAndLimitParse) {
  ASSERT_OK_AND_ASSIGN(
      Query q,
      ParseQuery("SELECT * FROM t ORDER BY u0 DESC LIMIT 10", table_));
  EXPECT_EQ(q.kind, Query::Kind::kSelectRows);
  EXPECT_EQ(q.order_by_column, "u0");
  EXPECT_TRUE(q.order_descending);
  EXPECT_EQ(q.limit, 10u);
  ASSERT_OK_AND_ASSIGN(Query asc,
                       ParseQuery("SELECT * FROM t ORDER BY u1 ASC", table_));
  EXPECT_FALSE(asc.order_descending);
  EXPECT_EQ(asc.limit, 0u);
  // Restrictions and syntax errors.
  EXPECT_FALSE(ParseQuery("SELECT COUNT(*) FROM t ORDER BY u0", table_).ok());
  EXPECT_FALSE(
      ParseQuery("SELECT * FROM t WHERE u0 > 1 ORDER BY u0", table_).ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t ORDER u0", table_).ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t LIMIT 0", table_).ok());
  EXPECT_FALSE(ParseQuery("SELECT * FROM t LIMIT 2.5", table_).ok());
  EXPECT_FALSE(ParseQuery("SELECT SUM(u0) FROM t LIMIT 3", table_).ok());
}

TEST_F(SqlEndToEndTest, OrderByLimitExecutes) {
  ASSERT_OK_AND_ASSIGN(
      QueryResult r,
      ExecuteSql(executor_.get(),
                 "SELECT * FROM t ORDER BY u0 DESC LIMIT 5"));
  ASSERT_EQ(r.row_ids.size(), 5u);
  const auto& vals = table_.column(0).values();
  for (size_t i = 1; i < r.row_ids.size(); ++i) {
    EXPECT_GE(vals[r.row_ids[i - 1]], vals[r.row_ids[i]]);
  }
  EXPECT_EQ(vals[r.row_ids[0]], table_.column(0).max());
  // WHERE + LIMIT without ORDER BY trims the selection.
  ASSERT_OK_AND_ASSIGN(
      QueryResult limited,
      ExecuteSql(executor_.get(),
                 "SELECT * FROM t WHERE u0 >= 0 LIMIT 7"));
  EXPECT_EQ(limited.row_ids.size(), 7u);
}

TEST_F(SqlEndToEndTest, GroupByExecutes) {
  // Group u0 sums by the low-cardinality derived key... use a small table
  // with a 2-bit key column instead.
  auto small = db::MakeUniformTable(500, 2, 2, /*seed=*/53);
  ASSERT_TRUE(small.ok());
  gpu::Device device(32, 32);
  auto exec = core::Executor::Make(&device, &small.ValueOrDie());
  ASSERT_TRUE(exec.ok());
  ASSERT_OK_AND_ASSIGN(
      QueryResult r,
      ExecuteSql(exec.ValueOrDie().get(),
                 "SELECT SUM(u1) FROM t GROUP BY u0"));
  EXPECT_EQ(r.kind, Query::Kind::kGroupBy);
  std::map<uint32_t, uint64_t> expected;
  const db::Table& t = small.ValueOrDie();
  for (size_t row = 0; row < t.num_rows(); ++row) {
    expected[t.column(0).int_value(row)] += t.column(1).int_value(row);
  }
  ASSERT_EQ(r.groups.size(), expected.size());
  for (const core::GroupByRow& g : r.groups) {
    EXPECT_DOUBLE_EQ(g.aggregate, static_cast<double>(expected[g.key]));
  }
  EXPECT_NE(r.ToString().find("group(s)"), std::string::npos);
}

TEST_F(SqlEndToEndTest, ScriptRunsStatementsInOrder) {
  ASSERT_OK_AND_ASSIGN(
      std::vector<QueryResult> results,
      ExecuteScript(executor_.get(),
                    "SELECT COUNT(*) FROM t;\n"
                    "SELECT MAX(u0) FROM t;\n"
                    "  ;\n"  // blank statement skipped
                    "SELECT COUNT(*) FROM t WHERE u1 < 100"));
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(results[0].count, table_.num_rows());
  EXPECT_DOUBLE_EQ(results[1].scalar,
                   static_cast<double>(table_.column(0).max()));
  // Errors stop the script.
  EXPECT_FALSE(ExecuteScript(executor_.get(),
                             "SELECT COUNT(*) FROM t; SELECT NOPE(u0) FROM t")
                   .ok());
  EXPECT_FALSE(ExecuteScript(executor_.get(), " ;; ").ok());
}

TEST_F(SqlEndToEndTest, NullExecutorRejected) {
  EXPECT_FALSE(ExecuteSql(nullptr, "SELECT COUNT(*) FROM t").ok());
}

}  // namespace
}  // namespace sql
}  // namespace gpudb
