// gpuprof unit tests: PassProfile arithmetic, Profiler aggregation and
// determinism guarantees, band-timing instruments, and the EXPLAIN PROFILE
// table renderer. The bit-stability of the counters themselves (same values
// at any worker-thread count) is covered end to end in gpu_parallel_test.

#include <algorithm>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/metrics.h"
#include "src/common/profile.h"
#include "src/common/trace.h"

namespace gpudb {
namespace {

/// Restores the global profiler/tracer state a test toggles.
class ProfilerGuard {
 public:
  ProfilerGuard()
      : profiler_was_on_(Profiler::Global().enabled()),
        tracer_was_on_(Tracer::Global().enabled()) {}
  ~ProfilerGuard() {
    Profiler::Global().set_enabled(profiler_was_on_);
    Profiler::Global().ResetForTesting();
    Tracer::Global().set_enabled(tracer_was_on_);
  }

 private:
  bool profiler_was_on_;
  bool tracer_was_on_;
};

PassProfile MakeProfile(uint64_t base) {
  PassProfile p;
  p.alpha_killed = base + 1;
  p.stencil_killed = base + 2;
  p.depth_tested = base + 3;
  p.depth_killed = base + 4;
  p.occlusion_samples = base + 5;
  p.plane_bytes_read = base + 6;
  p.plane_bytes_written = base + 7;
  return p;
}

TEST(PassProfileTest, MergeSumsEveryField) {
  PassProfile a = MakeProfile(10);
  const PassProfile b = MakeProfile(100);
  a.Merge(b);
  EXPECT_EQ(a.alpha_killed, 112u);
  EXPECT_EQ(a.stencil_killed, 114u);
  EXPECT_EQ(a.depth_tested, 116u);
  EXPECT_EQ(a.depth_killed, 118u);
  EXPECT_EQ(a.occlusion_samples, 120u);
  EXPECT_EQ(a.plane_bytes_read, 122u);
  EXPECT_EQ(a.plane_bytes_written, 124u);
}

TEST(PassProfileTest, EqualityComparesEveryField) {
  EXPECT_EQ(MakeProfile(3), MakeProfile(3));
  PassProfile changed = MakeProfile(3);
  changed.plane_bytes_written += 1;
  EXPECT_NE(MakeProfile(3), changed);
}

TEST(ProfilerTest, DisabledByDefault) {
  // The global switch must default off so the hot paths stay no-ops.
  ProfilerGuard guard;
  Profiler profiler;
  EXPECT_FALSE(profiler.enabled());
}

TEST(ProfilerTest, RecordPassAggregatesByLabelSorted) {
  ProfilerGuard guard;
  Profiler& profiler = Profiler::Global();
  profiler.ResetForTesting();
  profiler.RecordPass("zeta", 100, 60, MakeProfile(0));
  profiler.RecordPass("alpha", 10, 5, MakeProfile(10));
  profiler.RecordPass("zeta", 200, 120, MakeProfile(0));

  const std::vector<PassProfileGroup> groups = profiler.Snapshot();
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0].label, "alpha");
  EXPECT_EQ(groups[0].passes, 1u);
  EXPECT_EQ(groups[0].fragments, 10u);
  EXPECT_EQ(groups[0].fragments_passed, 5u);
  EXPECT_EQ(groups[0].prof, MakeProfile(10));
  EXPECT_EQ(groups[1].label, "zeta");
  EXPECT_EQ(groups[1].passes, 2u);
  EXPECT_EQ(groups[1].fragments, 300u);
  EXPECT_EQ(groups[1].fragments_passed, 180u);
  PassProfile doubled = MakeProfile(0);
  doubled.Merge(MakeProfile(0));
  EXPECT_EQ(groups[1].prof, doubled);
}

TEST(ProfilerTest, ResetForTestingDropsGroupsKeepsFlag) {
  ProfilerGuard guard;
  Profiler& profiler = Profiler::Global();
  profiler.set_enabled(true);
  profiler.RecordPass("compare", 10, 10, MakeProfile(0));
  profiler.ResetForTesting();
  EXPECT_TRUE(profiler.Snapshot().empty());
  EXPECT_TRUE(profiler.enabled());
}

TEST(ProfilerTest, BandTimingsFeedHistogramGaugeAndTracer) {
  ProfilerGuard guard;
  MetricsRegistry& registry = MetricsRegistry::Global();
  const uint64_t hist_before = registry.histogram("gpu.band_ms").count();

  Tracer& tracer = Tracer::Global();
  tracer.set_enabled(true);
  const size_t counter_mark = tracer.CounterCount();

  // max 3.0 over mean 2.0 -> imbalance 1.5.
  Profiler::Global().RecordBandTimings({1.0, 2.0, 3.0});

  EXPECT_EQ(registry.histogram("gpu.band_ms").count(), hist_before + 3);
  EXPECT_DOUBLE_EQ(registry.gauge("gpu.band_imbalance").value(), 1.5);
  const std::vector<CounterSample> samples =
      tracer.CounterSamplesSince(counter_mark);
  ASSERT_EQ(samples.size(), 3u);
  for (const CounterSample& s : samples) {
    EXPECT_EQ(s.name, "gpu.band_ms");
  }
  EXPECT_DOUBLE_EQ(samples[0].value, 1.0);
  EXPECT_DOUBLE_EQ(samples[2].value, 3.0);
}

TEST(ProfilerTest, BandTimingsWithoutTracerEmitNoSamples) {
  ProfilerGuard guard;
  Tracer& tracer = Tracer::Global();
  tracer.set_enabled(false);
  const size_t counter_mark = tracer.CounterCount();
  Profiler::Global().RecordBandTimings({0.5, 0.5});
  EXPECT_EQ(tracer.CounterCount(), counter_mark);
}

TEST(FormatPassProfileTableTest, EmptyGroupsRenderEmpty) {
  EXPECT_EQ(FormatPassProfileTable({}), "");
}

TEST(FormatPassProfileTableTest, RendersHeaderAndOneRowPerGroup) {
  PassProfileGroup g;
  g.label = "compare";
  g.passes = 3;
  g.fragments = 3000;
  g.fragments_passed = 1800;
  g.prof.alpha_killed = 100;
  g.prof.stencil_killed = 200;
  g.prof.depth_tested = 2700;
  g.prof.depth_killed = 900;
  g.prof.occlusion_samples = 1800;
  g.prof.plane_bytes_read = 11100;
  g.prof.plane_bytes_written = 4096;
  const std::string table = FormatPassProfileTable({g});

  // One header line + one row.
  EXPECT_EQ(std::count(table.begin(), table.end(), '\n'), 2);
  EXPECT_NE(table.find("pass"), std::string::npos);
  EXPECT_NE(table.find("depth_kill"), std::string::npos);
  EXPECT_NE(table.find("plane_wr_B"), std::string::npos);
  EXPECT_NE(table.find("compare"), std::string::npos);
  EXPECT_NE(table.find("2700"), std::string::npos);
  EXPECT_NE(table.find("11100"), std::string::npos);
}

TEST(FormatPassProfileTableTest, DeterministicForSameGroups) {
  PassProfileGroup g;
  g.label = "stencil_reduce";
  g.passes = 1;
  g.fragments = 42;
  g.prof = MakeProfile(1);
  EXPECT_EQ(FormatPassProfileTable({g}), FormatPassProfileTable({g}));
}

}  // namespace
}  // namespace gpudb
