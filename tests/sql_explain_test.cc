#include <cmath>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/json.h"
#include "src/common/profile.h"
#include "src/common/trace.h"
#include "src/core/executor.h"
#include "src/db/datagen.h"
#include "src/gpu/device.h"
#include "src/gpu/perf_model.h"
#include "src/sql/explain.h"
#include "src/sql/parser.h"
#include "tests/test_util.h"

namespace gpudb {
namespace sql {
namespace {

class ExplainAnalyzeTest : public ::testing::Test {
 protected:
  ExplainAnalyzeTest() : device_(100, 100) {
    auto t = db::MakeUniformTable(5000, 10, 3, /*seed=*/7);
    EXPECT_TRUE(t.ok());
    table_ = std::move(t).ValueOrDie();  // columns u0, u1, u2
    auto e = core::Executor::Make(&device_, &table_);
    EXPECT_TRUE(e.ok());
    executor_ = std::move(e).ValueOrDie();
  }

  ~ExplainAnalyzeTest() override {
    // EXPLAIN ANALYZE restores the tracer state it found; tests run with
    // tracing off, so leave no spans behind for other suites. EXPLAIN
    // PROFILE likewise restores the profiler flag but leaves label
    // aggregates in the global Profiler; drop those too.
    Tracer::Global().Clear();
    Profiler::Global().ResetForTesting();
  }

  gpu::Device device_;
  db::Table table_;
  std::unique_ptr<core::Executor> executor_;
};

TEST_F(ExplainAnalyzeTest, ParserAcceptsAndFlagsExplainAnalyze) {
  ASSERT_OK_AND_ASSIGN(
      Query q,
      ParseQuery("EXPLAIN ANALYZE SELECT COUNT(*) FROM t WHERE u0 >= 100",
                 table_));
  EXPECT_TRUE(q.explain_analyze);
  EXPECT_EQ(q.kind, Query::Kind::kCount);

  ASSERT_OK_AND_ASSIGN(Query plain,
                       ParseQuery("SELECT COUNT(*) FROM t", table_));
  EXPECT_FALSE(plain.explain_analyze);

  // EXPLAIN without ANALYZE is not part of the fragment.
  EXPECT_FALSE(ParseQuery("EXPLAIN SELECT COUNT(*) FROM t", table_).ok());
}

TEST_F(ExplainAnalyzeTest, MatchesPlainExecutionResult) {
  ASSERT_OK_AND_ASSIGN(QueryResult plain,
                       ExecuteSql(executor_.get(),
                                  "SELECT COUNT(*) FROM t WHERE u0 >= 100"));
  ASSERT_OK_AND_ASSIGN(
      QueryResult analyzed,
      ExecuteSql(executor_.get(),
                 "EXPLAIN ANALYZE SELECT COUNT(*) FROM t WHERE u0 >= 100"));
  EXPECT_FALSE(plain.analyzed);
  EXPECT_TRUE(analyzed.analyzed);
  EXPECT_EQ(analyzed.count, plain.count);
  EXPECT_FALSE(analyzed.explain.empty());
  EXPECT_FALSE(analyzed.spans.empty());
  EXPECT_GT(analyzed.simulated_total_ms, 0.0);
  // Tracing was off before the query and is off again after.
  EXPECT_FALSE(Tracer::Global().enabled());
}

TEST_F(ExplainAnalyzeTest, SelfMsSumsToPerfModelTotal) {
  // The acceptance criterion of the observability layer: per-operator
  // simulated self-time telescopes to the PerfModel total of the query's
  // full counter delta.
  const gpu::DeviceCounters before = device_.counters();
  ASSERT_OK_AND_ASSIGN(
      QueryResult r,
      ExecuteSql(executor_.get(),
                 "EXPLAIN ANALYZE SELECT COUNT(*) FROM t WHERE u0 >= 100 "
                 "AND u1 < 5"));
  const gpu::DeviceCounters delta =
      gpu::DeltaSince(before, device_.counters());
  const double expected_total = gpu::PerfModel().Estimate(delta).TotalMs();
  EXPECT_NEAR(r.simulated_total_ms, expected_total, 1e-9);

  // Recompute each span's self time (total minus direct children totals)
  // and check the telescoped sum equals the root total.
  std::map<uint64_t, double> children_total;
  for (const FinishedSpan& s : r.spans) {
    children_total[s.parent_id] += s.NumberTag("total_ms", 0.0);
  }
  double self_sum = 0.0;
  double root_total = -1.0;
  for (const FinishedSpan& s : r.spans) {
    const double total = s.NumberTag("total_ms", 0.0);
    self_sum += total - children_total[s.id];
    if (s.name == "query") root_total = total;
  }
  ASSERT_GE(root_total, 0.0) << "no root query span";
  EXPECT_NEAR(self_sum, root_total, 1e-9);
  EXPECT_NEAR(root_total, expected_total, 1e-9);
}

TEST_F(ExplainAnalyzeTest, TreeShowsOperatorsCostsAndFragments) {
  ASSERT_OK_AND_ASSIGN(
      QueryResult r,
      ExecuteSql(executor_.get(),
                 "EXPLAIN ANALYZE SELECT COUNT(*) FROM t WHERE u0 >= 100 "
                 "AND u1 < 5"));
  // Operator spans with their simulated cost split.
  EXPECT_NE(r.explain.find("query"), std::string::npos);
  EXPECT_NE(r.explain.find("Count"), std::string::npos);
  EXPECT_NE(r.explain.find("Where"), std::string::npos);
  EXPECT_NE(r.explain.find("EvalCnf"), std::string::npos);
  EXPECT_NE(r.explain.find("total="), std::string::npos);
  EXPECT_NE(r.explain.find("self="), std::string::npos);
  EXPECT_NE(r.explain.find("fill "), std::string::npos);
  EXPECT_NE(r.explain.find("setup "), std::string::npos);
  // Operator tags and the device rollup: fragments generated vs passed and
  // bytes moved.
  EXPECT_NE(r.explain.find("selectivity="), std::string::npos);
  EXPECT_NE(r.explain.find("normal_form=cnf"), std::string::npos);
  EXPECT_NE(r.explain.find("passes:"), std::string::npos);
  EXPECT_NE(r.explain.find("fragments ->"), std::string::npos);
  EXPECT_NE(r.explain.find("B uploaded"), std::string::npos);
  // The span forest renders children indented under the root.
  EXPECT_EQ(r.explain.rfind("query", 0), 0u) << "root first:\n" << r.explain;
  EXPECT_NE(r.explain.find("\n  Count"), std::string::npos) << r.explain;
}

TEST_F(ExplainAnalyzeTest, SpansExportAsValidChromeTrace) {
  ASSERT_OK_AND_ASSIGN(
      QueryResult r,
      ExecuteSql(executor_.get(),
                 "EXPLAIN ANALYZE SELECT KTH_LARGEST(u0, 10) FROM t"));
  auto parsed = json::Parse(Tracer::ToChromeTrace(r.spans));
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* events = parsed.ValueOrDie().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->as_array().size(), r.spans.size());
}

TEST_F(ExplainAnalyzeTest, WorksForEveryQueryKind) {
  for (const char* query : {
           "EXPLAIN ANALYZE SELECT * FROM t WHERE u0 < 100",
           "EXPLAIN ANALYZE SELECT SUM(u1) FROM t WHERE u0 >= 512",
           "EXPLAIN ANALYZE SELECT MAX(u2) FROM t",
           "EXPLAIN ANALYZE SELECT KTH_LARGEST(u0, 3) FROM t",
       }) {
    auto r = ExecuteSql(executor_.get(), query);
    ASSERT_TRUE(r.ok()) << query << ": " << r.status().ToString();
    EXPECT_TRUE(r.ValueOrDie().analyzed) << query;
    EXPECT_FALSE(r.ValueOrDie().explain.empty()) << query;
    EXPECT_GT(r.ValueOrDie().simulated_total_ms, 0.0) << query;
  }
}

TEST_F(ExplainAnalyzeTest, ParserAcceptsExplainProfile) {
  ASSERT_OK_AND_ASSIGN(
      Query q,
      ParseQuery("EXPLAIN PROFILE SELECT COUNT(*) FROM t WHERE u0 >= 100",
                 table_));
  EXPECT_TRUE(q.explain_profile);
  EXPECT_TRUE(q.explain_analyze);  // PROFILE implies ANALYZE

  ASSERT_OK_AND_ASSIGN(
      Query analyze,
      ParseQuery("EXPLAIN ANALYZE SELECT COUNT(*) FROM t", table_));
  EXPECT_FALSE(analyze.explain_profile);
}

TEST_F(ExplainAnalyzeTest, ExplainProfileCarriesCounterGroups) {
  ASSERT_OK_AND_ASSIGN(QueryResult plain,
                       ExecuteSql(executor_.get(),
                                  "SELECT COUNT(*) FROM t WHERE u0 >= 100"));
  ASSERT_OK_AND_ASSIGN(
      QueryResult profiled,
      ExecuteSql(executor_.get(),
                 "EXPLAIN PROFILE SELECT COUNT(*) FROM t WHERE u0 >= 100"));
  // Same answer, same analyze fields, plus the deep-counter table.
  EXPECT_EQ(profiled.count, plain.count);
  EXPECT_TRUE(profiled.analyzed);
  EXPECT_TRUE(profiled.profiled);
  ASSERT_FALSE(profiled.profile_groups.empty());
  ASSERT_FALSE(profiled.profile.empty());
  uint64_t fragments = 0;
  uint64_t depth_tested = 0;
  uint64_t plane_bytes = 0;
  for (const PassProfileGroup& g : profiled.profile_groups) {
    EXPECT_FALSE(g.label.empty());
    EXPECT_GT(g.passes, 0u);
    fragments += g.fragments;
    depth_tested += g.prof.depth_tested;
    plane_bytes += g.prof.plane_bytes_read + g.prof.plane_bytes_written;
  }
  EXPECT_GT(fragments, 0u);
  EXPECT_GT(depth_tested, 0u);
  EXPECT_GT(plane_bytes, 0u);
  EXPECT_NE(profiled.profile.find("depth_test"), std::string::npos);
  EXPECT_NE(profiled.profile.find("plane_rd_B"), std::string::npos);
  // The query-scoped enable restored the global off state.
  EXPECT_FALSE(Profiler::Global().enabled());
  // ToString appends the table under the tree.
  EXPECT_NE(profiled.ToString().find("pass profile:"), std::string::npos);

  // Plain EXPLAIN ANALYZE does not profile.
  ASSERT_OK_AND_ASSIGN(
      QueryResult analyzed,
      ExecuteSql(executor_.get(),
                 "EXPLAIN ANALYZE SELECT COUNT(*) FROM t WHERE u0 >= 100"));
  EXPECT_FALSE(analyzed.profiled);
  EXPECT_TRUE(analyzed.profile.empty());
}

TEST_F(ExplainAnalyzeTest, ProfileTableByteIdenticalAcrossThreadCounts) {
  // The EXPLAIN PROFILE acceptance check: the rendered counter table for the
  // same query must be byte-identical at 1 and 8 worker threads.
  const char* query =
      "EXPLAIN PROFILE SELECT COUNT(*) FROM t WHERE u0 >= 100 AND u1 < 5";
  std::string first;
  for (int threads : {1, 8}) {
    gpu::Device device(100, 100);
    ASSERT_OK(device.SetWorkerThreads(threads));
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<core::Executor> executor,
                         core::Executor::Make(&device, &table_));
    ASSERT_OK_AND_ASSIGN(QueryResult r, ExecuteSql(executor.get(), query));
    ASSERT_TRUE(r.profiled);
    ASSERT_FALSE(r.profile.empty());
    if (first.empty()) {
      first = r.profile;
    } else {
      EXPECT_EQ(r.profile, first) << "threads=" << threads;
    }
  }
}

TEST_F(ExplainAnalyzeTest, ToStringAppendsTree) {
  ASSERT_OK_AND_ASSIGN(
      QueryResult r,
      ExecuteSql(executor_.get(), "EXPLAIN ANALYZE SELECT COUNT(*) FROM t"));
  const std::string text = r.ToString();
  EXPECT_EQ(text.rfind("count = ", 0), 0u);
  EXPECT_NE(text.find("query"), std::string::npos);
}

}  // namespace
}  // namespace sql
}  // namespace gpudb
