#include <vector>

#include <gtest/gtest.h>

#include "src/core/histogram.h"
#include "src/db/datagen.h"
#include "src/gpu/device.h"
#include "tests/test_util.h"

namespace gpudb {
namespace core {
namespace {

using testing_util::RandomInts;
using testing_util::ToFloats;
using testing_util::UploadIntAttribute;

class HistogramTest : public ::testing::Test {
 protected:
  HistogramTest() : device_(64, 64) {}
  gpu::Device device_;
};

TEST_F(HistogramTest, GpuMatchesCpuOnIntegerAlignedEdges) {
  const std::vector<uint32_t> ints = RandomInts(3000, 10, 211);
  const std::vector<float> floats = ToFloats(ints);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  // [0, 1024) in 16 buckets: every edge is an integer -> exact.
  ASSERT_OK_AND_ASSIGN(Histogram gpu_hist,
                       GpuHistogram(&device_, attr, 0, 1024, 16));
  ASSERT_OK_AND_ASSIGN(Histogram cpu_hist,
                       CpuHistogram(floats, 0, 1024, 16));
  ASSERT_EQ(gpu_hist.buckets(), 16);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(gpu_hist.counts[i], cpu_hist.counts[i]) << "bucket " << i;
  }
  EXPECT_EQ(gpu_hist.total(), 3000u);
}

TEST_F(HistogramTest, SubrangeExcludesOutOfRangeValues) {
  const std::vector<uint32_t> ints = {5, 10, 15, 20, 25, 30, 35, 40};
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  // [10, 30] in 2 buckets: [10,20) and [20,30].
  ASSERT_OK_AND_ASSIGN(Histogram hist,
                       GpuHistogram(&device_, attr, 10, 30, 2));
  EXPECT_EQ(hist.counts[0], 2u);  // 10, 15
  EXPECT_EQ(hist.counts[1], 3u);  // 20, 25, 30
  EXPECT_EQ(hist.total(), 5u);    // 5, 35, 40 excluded
}

TEST_F(HistogramTest, SingleBucketCountsWholeRange) {
  const std::vector<uint32_t> ints = RandomInts(500, 8, 212);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  ASSERT_OK_AND_ASSIGN(Histogram hist,
                       GpuHistogram(&device_, attr, 0, 256, 1));
  EXPECT_EQ(hist.counts[0], 500u);
}

TEST_F(HistogramTest, PassCountIsBucketsPlusOnePlusCopy) {
  const std::vector<uint32_t> ints = RandomInts(200, 8, 213);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  device_.ResetCounters();
  ASSERT_OK(GpuHistogram(&device_, attr, 0, 256, 8).status());
  // 1 copy + 9 edge-count passes.
  EXPECT_EQ(device_.counters().passes, 1u + 9u);
  EXPECT_EQ(device_.counters().occlusion_readbacks, 9u);
}

TEST_F(HistogramTest, ValidatesArguments) {
  const std::vector<uint32_t> ints = {1, 2};
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  EXPECT_FALSE(GpuHistogram(&device_, attr, 10, 10, 4).ok());
  EXPECT_FALSE(GpuHistogram(&device_, attr, 10, 5, 4).ok());
  EXPECT_FALSE(GpuHistogram(&device_, attr, 0, 10, 0).ok());
  EXPECT_FALSE(GpuHistogram(&device_, attr, 0, 10, 5000).ok());
  EXPECT_FALSE(CpuHistogram({1.0f}, 0, 10, 0).ok());
}

TEST_F(HistogramTest, ZipfSkewLandsInFirstBuckets) {
  ASSERT_OK_AND_ASSIGN(db::Table zipf, db::MakeZipfTable(4000, 1024, 1.2));
  std::vector<uint32_t> ints(zipf.num_rows());
  for (size_t i = 0; i < ints.size(); ++i) {
    ints[i] = zipf.column(0).int_value(i);
  }
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  ASSERT_OK_AND_ASSIGN(Histogram hist,
                       GpuHistogram(&device_, attr, 0, 1024, 8));
  // Heavy skew: the first bucket dominates.
  EXPECT_GT(hist.counts[0], hist.total() / 2);
  EXPECT_EQ(hist.total(), 4000u);
}

TEST_F(HistogramTest, QuantilesMatchSortedReference) {
  const std::vector<uint32_t> ints = RandomInts(2000, 12, 216);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  std::vector<uint32_t> sorted = ints;
  std::sort(sorted.begin(), sorted.end());
  for (int q : {1, 2, 4, 10}) {
    ASSERT_OK_AND_ASSIGN(std::vector<uint32_t> quantiles,
                         GpuQuantiles(&device_, attr, 12, q));
    ASSERT_EQ(quantiles.size(), static_cast<size_t>(q));
    for (int i = 0; i < q; ++i) {
      const size_t rank =
          (static_cast<size_t>(i + 1) * ints.size() + q - 1) / q;
      EXPECT_EQ(quantiles[i], sorted[rank - 1]) << "q=" << q << " i=" << i;
    }
    // The top quantile is always the maximum.
    EXPECT_EQ(quantiles.back(), sorted.back());
  }
}

TEST_F(HistogramTest, QuantilesShareOneCopyPass) {
  const std::vector<uint32_t> ints = RandomInts(500, 10, 217);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  device_.ResetCounters();
  ASSERT_OK(GpuQuantiles(&device_, attr, 10, 4).status());
  EXPECT_EQ(device_.counters().passes, 1u + 4u * 10u);
  EXPECT_FALSE(GpuQuantiles(&device_, attr, 10, 0).ok());
  EXPECT_FALSE(GpuQuantiles(&device_, attr, 10, 5000).ok());
}

TEST(JoinEstimateTest, ExactForUniformDisjointBuckets) {
  // Two relations concentrated in single distinct values per bucket.
  Histogram a, b;
  a.low = b.low = 0;
  a.high = b.high = 4;
  a.counts = {10, 0, 6, 0};
  b.counts = {5, 0, 2, 0};
  // width 1 -> estimate = 10*5 + 6*2 = 62 joined pairs.
  ASSERT_OK_AND_ASSIGN(double size, EstimateEquiJoinSize(a, b));
  EXPECT_DOUBLE_EQ(size, 62.0);
  ASSERT_OK_AND_ASSIGN(double sel, EstimateEquiJoinSelectivity(a, b));
  EXPECT_DOUBLE_EQ(sel, 62.0 / (16.0 * 7.0));
}

TEST(JoinEstimateTest, RequiresMatchingBucketing) {
  Histogram a, b;
  a.low = 0;
  a.high = 4;
  a.counts = {1, 1};
  b = a;
  b.high = 8;
  EXPECT_FALSE(EstimateEquiJoinSize(a, b).ok());
  b = a;
  b.counts = {1, 1, 1};
  EXPECT_FALSE(EstimateEquiJoinSize(a, b).ok());
}

TEST(JoinEstimateTest, GpuHistogramsDriveSaneJoinEstimate) {
  // Build two overlapping uniform relations and check the estimate against
  // the exact join size within a loose factor (it is an estimate).
  gpu::Device device(64, 64);
  const std::vector<uint32_t> a_ints = RandomInts(2000, 8, 214);
  const std::vector<uint32_t> b_ints = RandomInts(1500, 8, 215);
  AttributeBinding a_attr = UploadIntAttribute(&device, a_ints);
  ASSERT_OK_AND_ASSIGN(Histogram ha, GpuHistogram(&device, a_attr, 0, 256, 16));
  AttributeBinding b_attr = UploadIntAttribute(&device, b_ints);
  ASSERT_OK_AND_ASSIGN(Histogram hb, GpuHistogram(&device, b_attr, 0, 256, 16));

  uint64_t exact = 0;
  std::vector<uint64_t> freq(256, 0);
  for (uint32_t v : a_ints) ++freq[v];
  for (uint32_t v : b_ints) exact += freq[v];

  ASSERT_OK_AND_ASSIGN(double estimate, EstimateEquiJoinSize(ha, hb));
  EXPECT_GT(estimate, 0.5 * static_cast<double>(exact));
  EXPECT_LT(estimate, 2.0 * static_cast<double>(exact));
}

}  // namespace
}  // namespace core
}  // namespace gpudb
