#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/group_by.h"
#include "src/gpu/device.h"
#include "tests/test_util.h"

namespace gpudb {
namespace core {
namespace {

using testing_util::RandomInts;
using testing_util::UploadIntAttribute;

class GroupByTest : public ::testing::Test {
 protected:
  GroupByTest() : device_(64, 64) {}

  /// Uploads keys and values as two single-channel textures; the viewport
  /// follows the key upload.
  void Upload(const std::vector<uint32_t>& keys,
              const std::vector<uint32_t>& values) {
    value_attr_ = UploadIntAttribute(&device_, values);
    key_attr_ = UploadIntAttribute(&device_, keys);
  }

  gpu::Device device_;
  AttributeBinding key_attr_;
  AttributeBinding value_attr_;
};

TEST_F(GroupByTest, DistinctValuesAscending) {
  const std::vector<uint32_t> keys = {5, 3, 9, 3, 5, 5, 0, 9, 3};
  AttributeBinding attr = UploadIntAttribute(&device_, keys);
  ASSERT_OK_AND_ASSIGN(std::vector<uint32_t> distinct,
                       DistinctValues(&device_, attr, 4));
  EXPECT_EQ(distinct, (std::vector<uint32_t>{0, 3, 5, 9}));
}

TEST_F(GroupByTest, DistinctValuesSingleValue) {
  const std::vector<uint32_t> keys(20, 7);
  AttributeBinding attr = UploadIntAttribute(&device_, keys);
  ASSERT_OK_AND_ASSIGN(std::vector<uint32_t> distinct,
                       DistinctValues(&device_, attr, 3));
  EXPECT_EQ(distinct, (std::vector<uint32_t>{7}));
}

TEST_F(GroupByTest, DistinctValuesCardinalityGuard) {
  std::vector<uint32_t> keys(200);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = static_cast<uint32_t>(i);
  AttributeBinding attr = UploadIntAttribute(&device_, keys);
  auto result = DistinctValues(&device_, attr, 8, /*max_values=*/50);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(GroupByTest, SumPerGroupMatchesMapReference) {
  const std::vector<uint32_t> keys = RandomInts(3000, 3, 241);  // 8 groups
  const std::vector<uint32_t> values = RandomInts(3000, 10, 242);
  Upload(keys, values);
  ASSERT_OK_AND_ASSIGN(
      std::vector<GroupByRow> rows,
      GroupByAggregate(&device_, key_attr_, 3, value_attr_, 10,
                       AggregateKind::kSum));
  std::map<uint32_t, std::pair<uint64_t, uint64_t>> expected;  // count, sum
  for (size_t i = 0; i < keys.size(); ++i) {
    expected[keys[i]].first += 1;
    expected[keys[i]].second += values[i];
  }
  ASSERT_EQ(rows.size(), expected.size());
  for (const GroupByRow& row : rows) {
    ASSERT_TRUE(expected.count(row.key)) << row.key;
    EXPECT_EQ(row.count, expected[row.key].first) << "key " << row.key;
    EXPECT_DOUBLE_EQ(row.aggregate,
                     static_cast<double>(expected[row.key].second))
        << "key " << row.key;
  }
}

TEST_F(GroupByTest, MaxAndMedianPerGroup) {
  const std::vector<uint32_t> keys = {1, 1, 1, 2, 2, 2, 2};
  const std::vector<uint32_t> values = {10, 30, 20, 5, 8, 1, 9};
  Upload(keys, values);
  ASSERT_OK_AND_ASSIGN(
      std::vector<GroupByRow> max_rows,
      GroupByAggregate(&device_, key_attr_, 2, value_attr_, 5,
                       AggregateKind::kMax));
  ASSERT_EQ(max_rows.size(), 2u);
  EXPECT_EQ(max_rows[0].key, 1u);
  EXPECT_DOUBLE_EQ(max_rows[0].aggregate, 30.0);
  EXPECT_EQ(max_rows[1].key, 2u);
  EXPECT_DOUBLE_EQ(max_rows[1].aggregate, 9.0);

  ASSERT_OK_AND_ASSIGN(
      std::vector<GroupByRow> med_rows,
      GroupByAggregate(&device_, key_attr_, 2, value_attr_, 5,
                       AggregateKind::kMedian));
  EXPECT_DOUBLE_EQ(med_rows[0].aggregate, 20.0);  // {10,20,30}
  EXPECT_DOUBLE_EQ(med_rows[1].aggregate, 5.0);   // {1,5,8,9} -> 2nd smallest
}

TEST_F(GroupByTest, CountAggregateEqualsGroupSizes) {
  const std::vector<uint32_t> keys = {0, 1, 0, 1, 1};
  const std::vector<uint32_t> values = {7, 7, 7, 7, 7};
  Upload(keys, values);
  ASSERT_OK_AND_ASSIGN(
      std::vector<GroupByRow> rows,
      GroupByAggregate(&device_, key_attr_, 1, value_attr_, 3,
                       AggregateKind::kCount));
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].count, 2u);
  EXPECT_DOUBLE_EQ(rows[0].aggregate, 2.0);
  EXPECT_EQ(rows[1].count, 3u);
  EXPECT_DOUBLE_EQ(rows[1].aggregate, 3.0);
}

TEST_F(GroupByTest, GroupCapEnforced) {
  std::vector<uint32_t> keys(100);
  for (size_t i = 0; i < keys.size(); ++i) keys[i] = static_cast<uint32_t>(i);
  Upload(keys, keys);
  auto result = GroupByAggregate(&device_, key_attr_, 7, value_attr_, 7,
                                 AggregateKind::kSum, /*max_groups=*/10);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace core
}  // namespace gpudb
