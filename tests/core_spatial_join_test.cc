#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/spatial_join.h"
#include "src/gpu/device.h"
#include "tests/test_util.h"

namespace gpudb {
namespace core {
namespace {

Polygon2D Rect(float x0, float y0, float x1, float y1) {
  // Counter-clockwise in the y-down window convention used throughout:
  // (x0,y0) -> (x1,y0) -> (x1,y1) -> (x0,y1) has positive orientation.
  return Polygon2D{{{x0, y0}, {x1, y0}, {x1, y1}, {x0, y1}}};
}

class SpatialJoinTest : public ::testing::Test {
 protected:
  SpatialJoinTest() : device_(128, 128) {}
  gpu::Device device_;
};

TEST_F(SpatialJoinTest, SatReferenceBasics) {
  EXPECT_TRUE(ConvexPolygonsIntersect(Rect(0, 0, 10, 10), Rect(5, 5, 15, 15)));
  EXPECT_FALSE(
      ConvexPolygonsIntersect(Rect(0, 0, 10, 10), Rect(20, 20, 30, 30)));
  // Containment counts as intersection.
  EXPECT_TRUE(ConvexPolygonsIntersect(Rect(0, 0, 20, 20), Rect(5, 5, 8, 8)));
  // Shared edge (touching) counts.
  EXPECT_TRUE(
      ConvexPolygonsIntersect(Rect(0, 0, 10, 10), Rect(10, 0, 20, 10)));
}

TEST_F(SpatialJoinTest, ClearOverlapsAndGapsMatchReference) {
  const Polygon2D a = Rect(10, 10, 50, 50);
  ASSERT_OK_AND_ASSIGN(bool hit,
                       PolygonsOverlapScreenSpace(&device_, a,
                                                  Rect(30, 30, 70, 70)));
  EXPECT_TRUE(hit);
  ASSERT_OK_AND_ASSIGN(bool miss,
                       PolygonsOverlapScreenSpace(&device_, a,
                                                  Rect(60, 60, 100, 100)));
  EXPECT_FALSE(miss);
  // Containment.
  ASSERT_OK_AND_ASSIGN(bool inside,
                       PolygonsOverlapScreenSpace(&device_, a,
                                                  Rect(20, 20, 30, 30)));
  EXPECT_TRUE(inside);
}

TEST_F(SpatialJoinTest, DiagonalNeighborsBboxPruneIsNotEnough) {
  // Two triangles whose bounding boxes overlap heavily but whose areas
  // don't: the screen-space test must reject what the bbox prune cannot.
  const Polygon2D lower = Polygon2D{{{10, 10}, {90, 10}, {10, 90}}};
  const Polygon2D upper = Polygon2D{{{95, 20}, {95, 95}, {20, 95}}};
  EXPECT_FALSE(ConvexPolygonsIntersect(lower, upper));
  ASSERT_OK_AND_ASSIGN(bool hit,
                       PolygonsOverlapScreenSpace(&device_, lower, upper));
  EXPECT_FALSE(hit);
}

TEST_F(SpatialJoinTest, JoinMatchesSatOnRandomLayers) {
  // Random axis-aligned rectangles. Layer B's grid is offset by 2 pixels
  // from layer A's 4-aligned grid so edges can never coincide: every SAT
  // intersection then has >= 2px of interior overlap and every miss >= 2px
  // of gap, which pixel discretization cannot flip (touching boundaries --
  // where SAT says "intersect" but rasterized footprints share no pixel --
  // are exactly the conservativeness the header documents).
  Random rng(881);
  auto random_layer = [&](size_t count, float offset) {
    std::vector<Polygon2D> layer;
    for (size_t i = 0; i < count; ++i) {
      const float x = offset + static_cast<float>(4 * rng.NextUint64(24));
      const float y = offset + static_cast<float>(4 * rng.NextUint64(24));
      const float w = static_cast<float>(4 + 4 * rng.NextUint64(6));
      const float h = static_cast<float>(4 + 4 * rng.NextUint64(6));
      layer.push_back(Rect(x, y, std::min(x + w, 126.0f),
                           std::min(y + h, 126.0f)));
    }
    return layer;
  };
  const std::vector<Polygon2D> layer_a = random_layer(12, 0.0f);
  const std::vector<Polygon2D> layer_b = random_layer(15, 2.0f);
  ASSERT_OK_AND_ASSIGN(auto pairs,
                       SpatialOverlapJoin(&device_, layer_a, layer_b));
  std::vector<std::pair<uint32_t, uint32_t>> expected;
  for (uint32_t i = 0; i < layer_a.size(); ++i) {
    for (uint32_t j = 0; j < layer_b.size(); ++j) {
      if (ConvexPolygonsIntersect(layer_a[i], layer_b[j])) {
        expected.emplace_back(i, j);
      }
    }
  }
  EXPECT_EQ(pairs, expected);
}

TEST_F(SpatialJoinTest, ValidatesInput) {
  const Polygon2D ok = Rect(0, 0, 10, 10);
  EXPECT_FALSE(PolygonsOverlapScreenSpace(nullptr, ok, ok).ok());
  // Too few vertices.
  Polygon2D degenerate{{{0, 0}, {1, 1}}};
  EXPECT_FALSE(PolygonsOverlapScreenSpace(&device_, degenerate, ok).ok());
  // Clockwise (negative orientation).
  Polygon2D cw{{{0, 0}, {0, 10}, {10, 10}, {10, 0}}};
  EXPECT_FALSE(PolygonsOverlapScreenSpace(&device_, cw, ok).ok());
  // Out of the window.
  Polygon2D outside = Rect(100, 100, 200, 200);
  EXPECT_FALSE(PolygonsOverlapScreenSpace(&device_, outside, ok).ok());
  EXPECT_FALSE(SpatialOverlapJoin(&device_, {ok}, {outside}).ok());
}

TEST_F(SpatialJoinTest, WorksUnderAndRestoresUserTransform) {
  // A user-set vertex transform must neither distort the join's own
  // window-space geometry nor be clobbered by it.
  device_.SetTransform(gpu::Mat4::Scale(0.01f, 0.01f, 1.0f));
  const Polygon2D a = Rect(10, 10, 50, 50);
  ASSERT_OK_AND_ASSIGN(bool hit,
                       PolygonsOverlapScreenSpace(&device_, a,
                                                  Rect(30, 30, 70, 70)));
  EXPECT_TRUE(hit);
  ASSERT_OK_AND_ASSIGN(bool miss,
                       PolygonsOverlapScreenSpace(&device_, a,
                                                  Rect(60, 60, 100, 100)));
  EXPECT_FALSE(miss);
  EXPECT_FALSE(device_.window_space_vertices());  // transform restored
  EXPECT_FLOAT_EQ(device_.transform().at(0, 0), 0.01f);
  device_.ResetTransform();
}

TEST_F(SpatialJoinTest, ScissorLimitsWorkToOverlapRegion) {
  // The pair's overlap region is 8x8 pixels; the two passes must generate
  // on the order of that many fragments, not the polygons' full areas.
  const Polygon2D a = Rect(0, 0, 64, 64);
  const Polygon2D b = Rect(56, 56, 120, 120);
  device_.ResetCounters();
  ASSERT_OK_AND_ASSIGN(bool hit, PolygonsOverlapScreenSpace(&device_, a, b));
  EXPECT_TRUE(hit);
  EXPECT_LE(device_.counters().fragments_generated, 2u * 8u * 8u);
}

}  // namespace
}  // namespace core
}  // namespace gpudb
