#include <vector>

#include <gtest/gtest.h>

#include "src/core/accumulator.h"
#include "src/core/compare.h"
#include "src/cpu/aggregate.h"
#include "src/cpu/scan.h"
#include "src/gpu/device.h"
#include "tests/test_util.h"

namespace gpudb {
namespace core {
namespace {

using testing_util::RandomInts;
using testing_util::ToFloats;
using testing_util::UploadIntAttribute;

class AccumulatorTest : public ::testing::Test {
 protected:
  AccumulatorTest() : device_(64, 64) {}
  gpu::Device device_;
};

TEST_F(AccumulatorTest, SumExactOnRandomData) {
  const std::vector<uint32_t> ints = RandomInts(4000, 16, 91);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  uint64_t expected = 0;
  for (uint32_t v : ints) expected += v;
  ASSERT_OK_AND_ASSIGN(uint64_t sum,
                       Accumulate(&device_, attr.texture, 0, 16));
  EXPECT_EQ(sum, expected);
}

TEST_F(AccumulatorTest, SumExactAtFull24Bits) {
  const std::vector<uint32_t> ints = {(1u << 24) - 1, (1u << 24) - 1, 0, 1};
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  ASSERT_OK_AND_ASSIGN(uint64_t sum,
                       Accumulate(&device_, attr.texture, 0, 24));
  EXPECT_EQ(sum, 2ull * ((1u << 24) - 1) + 1);
}

TEST_F(AccumulatorTest, OnePassPerBit) {
  const std::vector<uint32_t> ints = RandomInts(100, 13, 92);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  device_.ResetCounters();
  ASSERT_OK(Accumulate(&device_, attr.texture, 0, 13).status());
  EXPECT_EQ(device_.counters().passes, 13u);
  EXPECT_EQ(device_.counters().occlusion_readbacks, 13u);
  // Every pass runs the paper's 5-instruction TestBit program.
  for (const auto& pass : device_.counters().pass_log) {
    EXPECT_EQ(pass.fp_instructions, 5);
  }
}

TEST_F(AccumulatorTest, MaskedSumMatchesCpu) {
  const std::vector<uint32_t> ints = RandomInts(2000, 12, 93);
  const std::vector<float> floats = ToFloats(ints);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  // Select values < 1000 on the GPU.
  ASSERT_OK_AND_ASSIGN(
      uint64_t selected,
      CompareSelect(&device_, attr, gpu::CompareOp::kLess, 1000.0));
  std::vector<uint8_t> cpu_mask;
  cpu::PredicateScan(floats, gpu::CompareOp::kLess, 1000.0f, &cpu_mask);

  AccumulatorOptions options;
  options.selection = StencilSelection{1, selected};
  ASSERT_OK_AND_ASSIGN(
      uint64_t sum, Accumulate(&device_, attr.texture, 0, 12, options));
  EXPECT_EQ(sum, cpu::MaskedSumInt(floats, cpu_mask));
}

TEST_F(AccumulatorTest, KillVariantMatchesAlphaVariant) {
  const std::vector<uint32_t> ints = RandomInts(1500, 10, 94);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  ASSERT_OK_AND_ASSIGN(uint64_t alpha_sum,
                       Accumulate(&device_, attr.texture, 0, 10));
  AccumulatorOptions kill;
  kill.use_alpha_test = false;
  ASSERT_OK_AND_ASSIGN(uint64_t kill_sum,
                       Accumulate(&device_, attr.texture, 0, 10, kill));
  EXPECT_EQ(alpha_sum, kill_sum);
}

TEST_F(AccumulatorTest, KillVariantCostsMoreInstructions) {
  const std::vector<uint32_t> ints = RandomInts(100, 8, 95);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  device_.ResetCounters();
  ASSERT_OK(Accumulate(&device_, attr.texture, 0, 8).status());
  const uint64_t alpha_instr = device_.counters().fp_instructions_executed;
  device_.ResetCounters();
  AccumulatorOptions kill;
  kill.use_alpha_test = false;
  ASSERT_OK(Accumulate(&device_, attr.texture, 0, 8, kill).status());
  EXPECT_GT(device_.counters().fp_instructions_executed, alpha_instr);
}

TEST_F(AccumulatorTest, AverageDividesByCount) {
  const std::vector<uint32_t> ints = {10, 20, 30, 40};
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  ASSERT_OK_AND_ASSIGN(double avg, Average(&device_, attr.texture, 0, 6));
  EXPECT_DOUBLE_EQ(avg, 25.0);
}

TEST_F(AccumulatorTest, MaskedAverage) {
  const std::vector<uint32_t> ints = {10, 20, 30, 40};
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  ASSERT_OK_AND_ASSIGN(
      uint64_t selected,
      CompareSelect(&device_, attr, gpu::CompareOp::kGreaterEqual, 30.0));
  AccumulatorOptions options;
  options.selection = StencilSelection{1, selected};
  ASSERT_OK_AND_ASSIGN(double avg,
                       Average(&device_, attr.texture, 0, 6, options));
  EXPECT_DOUBLE_EQ(avg, 35.0);
}

TEST_F(AccumulatorTest, ZeroDataSumsToZero) {
  const std::vector<uint32_t> ints(64, 0);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  ASSERT_OK_AND_ASSIGN(uint64_t sum,
                       Accumulate(&device_, attr.texture, 0, 1));
  EXPECT_EQ(sum, 0u);
}

TEST_F(AccumulatorTest, ValidatesBitWidth) {
  const std::vector<uint32_t> ints = {1};
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  EXPECT_FALSE(Accumulate(&device_, attr.texture, 0, 0).ok());
  EXPECT_FALSE(Accumulate(&device_, attr.texture, 0, 25).ok());
}

TEST_F(AccumulatorTest, EmptySelectionAverageFails) {
  const std::vector<uint32_t> ints = {1, 2};
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  AccumulatorOptions options;
  options.selection = StencilSelection{1, 0};
  EXPECT_FALSE(Average(&device_, attr.texture, 0, 2, options).ok());
}

}  // namespace
}  // namespace core
}  // namespace gpudb
