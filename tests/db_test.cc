#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "src/db/column.h"
#include "src/db/datagen.h"
#include "src/db/table.h"
#include "tests/test_util.h"

namespace gpudb {
namespace db {
namespace {

TEST(ColumnTest, MakeInt24Validates) {
  EXPECT_FALSE(Column::MakeInt24("c", {}).ok());
  EXPECT_FALSE(Column::MakeInt24("c", {1u << 24}).ok());
  ASSERT_OK_AND_ASSIGN(Column c, Column::MakeInt24("c", {(1u << 24) - 1}));
  EXPECT_EQ(c.int_value(0), (1u << 24) - 1);
}

TEST(ColumnTest, MakeFloatRejectsNonFinite) {
  EXPECT_FALSE(Column::MakeFloat("f", {1.0f, NAN}).ok());
  EXPECT_FALSE(Column::MakeFloat("f", {INFINITY}).ok());
  EXPECT_TRUE(Column::MakeFloat("f", {1.0f, -2.5f}).ok());
}

TEST(ColumnTest, MinMaxAndBitWidth) {
  ASSERT_OK_AND_ASSIGN(Column c, Column::MakeInt24("c", {5, 1, 300, 2}));
  EXPECT_EQ(c.min(), 1.0f);
  EXPECT_EQ(c.max(), 300.0f);
  EXPECT_EQ(c.bit_width(), 9);  // 300 needs 9 bits
}

TEST(ColumnTest, BitWidthOfZeroColumnIsOne) {
  ASSERT_OK_AND_ASSIGN(Column c, Column::MakeInt24("c", {0, 0}));
  EXPECT_EQ(c.bit_width(), 1);
}

TEST(ColumnTest, FloatColumnsHaveNoBitWidth) {
  ASSERT_OK_AND_ASSIGN(Column c, Column::MakeFloat("f", {1.5f}));
  EXPECT_EQ(c.bit_width(), 0);
}

TEST(ColumnTest, PercentileMatchesSortedRank) {
  ASSERT_OK_AND_ASSIGN(Column c,
                       Column::MakeInt24("c", {10, 20, 30, 40, 50, 60, 70,
                                               80, 90, 100}));
  EXPECT_EQ(c.Percentile(0.0), 10.0f);
  EXPECT_EQ(c.Percentile(0.1), 10.0f);
  EXPECT_EQ(c.Percentile(0.5), 50.0f);
  EXPECT_EQ(c.Percentile(1.0), 100.0f);
  // 60% selectivity for x >= Percentile(0.4): 6 of 10 values are >= 50...
  // Percentile(0.4) = 40, and #{x >= 41..} -- check the intended use:
  const float p40 = c.Percentile(0.4);
  int selected = 0;
  for (float v : c.values()) selected += v > p40 ? 1 : 0;
  EXPECT_EQ(selected, 6);  // strictly-greater leaves 60%
}

TEST(TableTest, AddColumnValidatesLengthAndNames) {
  Table t;
  ASSERT_OK_AND_ASSIGN(Column a, Column::MakeInt24("a", {1, 2, 3}));
  ASSERT_OK_AND_ASSIGN(Column b, Column::MakeInt24("b", {4, 5, 6}));
  ASSERT_OK_AND_ASSIGN(Column bad, Column::MakeInt24("c", {7}));
  ASSERT_OK_AND_ASSIGN(Column dup, Column::MakeInt24("a", {7, 8, 9}));
  ASSERT_OK(t.AddColumn(std::move(a)));
  ASSERT_OK(t.AddColumn(std::move(b)));
  EXPECT_FALSE(t.AddColumn(std::move(bad)).ok());
  EXPECT_FALSE(t.AddColumn(std::move(dup)).ok());
  EXPECT_EQ(t.num_rows(), 3u);
  EXPECT_EQ(t.num_columns(), 2u);
}

TEST(TableTest, ColumnLookup) {
  Table t;
  ASSERT_OK_AND_ASSIGN(Column a, Column::MakeInt24("alpha", {1}));
  ASSERT_OK(t.AddColumn(std::move(a)));
  ASSERT_OK_AND_ASSIGN(const Column* c, t.ColumnByName("alpha"));
  EXPECT_EQ(c->name(), "alpha");
  EXPECT_FALSE(t.ColumnByName("beta").ok());
  ASSERT_OK_AND_ASSIGN(size_t idx, t.ColumnIndex("alpha"));
  EXPECT_EQ(idx, 0u);
  EXPECT_FALSE(t.ColumnIndex("beta").ok());
}

TEST(TableTest, ToTexturePacksChannels) {
  Table t;
  ASSERT_OK_AND_ASSIGN(Column a, Column::MakeInt24("a", {1, 2, 3, 4, 5}));
  ASSERT_OK_AND_ASSIGN(Column b, Column::MakeInt24("b", {9, 8, 7, 6, 5}));
  ASSERT_OK(t.AddColumn(std::move(a)));
  ASSERT_OK(t.AddColumn(std::move(b)));
  ASSERT_OK_AND_ASSIGN(gpu::Texture tex, t.ToTexture({1, 0}, 3));
  EXPECT_EQ(tex.channels(), 2);
  EXPECT_EQ(tex.At(0, 0), 9.0f);  // channel 0 = column 1
  EXPECT_EQ(tex.At(0, 1), 1.0f);
  EXPECT_FALSE(t.ToTexture({5}, 3).ok());
  EXPECT_FALSE(t.ToTexture({}, 3).ok());
}

TEST(TableTest, GatherRowsPreservesSchemaAndValues) {
  Table t;
  ASSERT_OK_AND_ASSIGN(Column a, Column::MakeInt24("a", {10, 20, 30, 40}));
  ASSERT_OK_AND_ASSIGN(Column b,
                       Column::MakeFloat("b", {1.5f, 2.5f, 3.5f, 4.5f}));
  ASSERT_OK(t.AddColumn(std::move(a)));
  ASSERT_OK(t.AddColumn(std::move(b)));
  ASSERT_OK_AND_ASSIGN(Table gathered, t.GatherRows({3, 1, 1}));
  ASSERT_EQ(gathered.num_rows(), 3u);
  EXPECT_EQ(gathered.column(0).int_value(0), 40u);
  EXPECT_EQ(gathered.column(0).int_value(1), 20u);
  EXPECT_EQ(gathered.column(0).int_value(2), 20u);  // duplicates allowed
  EXPECT_FLOAT_EQ(gathered.column(1).value(0), 4.5f);
  EXPECT_EQ(gathered.column(1).type(), ColumnType::kFloat32);
  EXPECT_FALSE(t.GatherRows({}).ok());
  EXPECT_FALSE(t.GatherRows({9}).ok());
}

TEST(DatagenTest, TcpIpShapeMatchesPaper) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeTcpIpTable(10000));
  EXPECT_EQ(t.num_rows(), 10000u);
  EXPECT_EQ(t.num_columns(), 4u);
  ASSERT_OK_AND_ASSIGN(const Column* dc, t.ColumnByName("data_count"));
  // Paper Section 5.9: data_count needs 19 bits and has high variance.
  EXPECT_EQ(dc->bit_width(), 19);
  double mean = 0, m2 = 0;
  for (float v : dc->values()) mean += v;
  mean /= dc->size();
  for (float v : dc->values()) m2 += (v - mean) * (v - mean);
  const double stddev = std::sqrt(m2 / dc->size());
  EXPECT_GT(stddev, mean * 0.5);  // high variance
  EXPECT_TRUE(t.ColumnByName("data_loss").ok());
  EXPECT_TRUE(t.ColumnByName("flow_rate").ok());
  EXPECT_TRUE(t.ColumnByName("retransmissions").ok());
}

TEST(DatagenTest, TcpIpDeterministic) {
  ASSERT_OK_AND_ASSIGN(Table a, MakeTcpIpTable(100, /*seed=*/7));
  ASSERT_OK_AND_ASSIGN(Table b, MakeTcpIpTable(100, /*seed=*/7));
  for (size_t i = 0; i < 100; ++i) {
    EXPECT_EQ(a.column(0).value(i), b.column(0).value(i));
  }
}

TEST(DatagenTest, CensusShape) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeCensusTable(5000));
  EXPECT_EQ(t.num_rows(), 5000u);
  ASSERT_OK_AND_ASSIGN(const Column* age, t.ColumnByName("age"));
  EXPECT_GE(age->min(), 16.0f);
  EXPECT_LE(age->max(), 91.0f);
  ASSERT_OK_AND_ASSIGN(const Column* inc, t.ColumnByName("monthly_income"));
  EXPECT_LE(inc->bit_width(), 18);
}

TEST(DatagenTest, ZipfIsSkewedAndBounded) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeZipfTable(5000, 1000, 1.1));
  EXPECT_EQ(t.num_rows(), 5000u);
  const Column& c = t.column(0);
  EXPECT_LT(c.max(), 1000.0f);
  // Zipf: value 0 is the most frequent by a wide margin.
  size_t zeros = 0;
  for (float v : c.values()) zeros += v == 0.0f ? 1 : 0;
  EXPECT_GT(zeros, t.num_rows() / 20);
  EXPECT_FALSE(MakeZipfTable(0, 10).ok());
  EXPECT_FALSE(MakeZipfTable(10, 0).ok());
  EXPECT_FALSE(MakeZipfTable(10, 10, -1.0).ok());
  EXPECT_FALSE(MakeZipfTable(10, 1u << 24).ok());
}

TEST(DatagenTest, UniformRespectsBits) {
  ASSERT_OK_AND_ASSIGN(Table t, MakeUniformTable(1000, 8, 2));
  EXPECT_EQ(t.num_columns(), 2u);
  EXPECT_LT(t.column(0).max(), 256.0f);
  EXPECT_FALSE(MakeUniformTable(10, 25).ok());
  EXPECT_FALSE(MakeUniformTable(0, 8).ok());
  EXPECT_FALSE(MakeUniformTable(10, 8, 5).ok());
}

}  // namespace
}  // namespace db
}  // namespace gpudb
