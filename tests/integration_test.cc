#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/executor.h"
#include "src/core/planner.h"
#include "src/cpu/aggregate.h"
#include "src/cpu/quickselect.h"
#include "src/cpu/scan.h"
#include "src/db/csv.h"
#include "src/db/datagen.h"
#include "src/gpu/perf_model.h"
#include "src/sql/parser.h"
#include "tests/test_util.h"

namespace gpudb {
namespace {

using core::AggregateKind;
using core::Executor;
using gpu::CompareOp;
using predicate::Expr;
using predicate::ExprPtr;

/// End-to-end sessions mixing selections and aggregations on one device,
/// cross-checked against the CPU reference throughout.
class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() : device_(120, 120) {}
  gpu::Device device_;
};

TEST_F(IntegrationTest, CensusWorkloadSession) {
  ASSERT_OK_AND_ASSIGN(db::Table census, db::MakeCensusTable(10000));
  ASSERT_OK_AND_ASSIGN(auto exec, Executor::Make(&device_, &census));

  // "How many working-age respondents with income above the median?"
  ASSERT_OK_AND_ASSIGN(
      double median_d, exec->Aggregate(AggregateKind::kMedian,
                                       "monthly_income"));
  const float median = static_cast<float>(median_d);
  ExprPtr working_age = Expr::Between(1, 25.0f, 65.0f);  // age column
  ExprPtr q = Expr::And(working_age,
                        Expr::Pred(0, CompareOp::kGreater, median));
  ASSERT_OK_AND_ASSIGN(uint64_t n, exec->Count(q));
  uint64_t expected = 0;
  for (size_t row = 0; row < census.num_rows(); ++row) {
    expected += q->EvaluateRow(census, row) ? 1 : 0;
  }
  EXPECT_EQ(n, expected);

  // Average income over that selection.
  ASSERT_OK_AND_ASSIGN(double avg, exec->Aggregate(AggregateKind::kAvg,
                                                   "monthly_income", q));
  std::vector<uint8_t> mask(census.num_rows());
  for (size_t row = 0; row < census.num_rows(); ++row) {
    mask[row] = q->EvaluateRow(census, row) ? 1 : 0;
  }
  ASSERT_OK_AND_ASSIGN(
      double cpu_avg,
      cpu::MaskedAvgInt(census.column(0).values(), mask));
  EXPECT_DOUBLE_EQ(avg, cpu_avg);
}

TEST_F(IntegrationTest, RepeatedQueriesShareResidentTextures) {
  ASSERT_OK_AND_ASSIGN(db::Table t, db::MakeTcpIpTable(8000));
  ASSERT_OK_AND_ASSIGN(auto exec, Executor::Make(&device_, &t));
  ASSERT_OK(exec->Count(Expr::Pred(0, CompareOp::kGreater, 100.0f)).status());
  ASSERT_OK(exec->Count(Expr::Pred(1, CompareOp::kGreater, 1.0f)).status());
  const uint64_t uploaded = device_.counters().bytes_uploaded;
  // Ten more queries over the same two columns: no further uploads.
  for (int i = 0; i < 10; ++i) {
    ASSERT_OK(exec->Count(Expr::And(
                              Expr::Pred(0, CompareOp::kGreater, float(i)),
                              Expr::Pred(1, CompareOp::kLessEqual, 100.0f)))
                  .status());
  }
  EXPECT_EQ(device_.counters().bytes_uploaded, uploaded);
}

TEST_F(IntegrationTest, RandomQueryFuzzAgainstCpu) {
  ASSERT_OK_AND_ASSIGN(db::Table t, db::MakeUniformTable(5000, 10, 4, 333));
  ASSERT_OK_AND_ASSIGN(auto exec, Executor::Make(&device_, &t));
  Random rng(999);
  for (int trial = 0; trial < 25; ++trial) {
    // Random conjunction/disjunction of 2-4 predicates.
    ExprPtr e;
    const int preds = 2 + static_cast<int>(rng.NextUint64(3));
    for (int i = 0; i < preds; ++i) {
      const auto attr = static_cast<size_t>(rng.NextUint64(4));
      const auto op = static_cast<CompareOp>(1 + rng.NextUint64(6));
      ExprPtr p =
          Expr::Pred(attr, op, static_cast<float>(rng.NextUint64(1024)));
      if (rng.NextUint64(3) == 0) p = Expr::Not(p);
      e = (e == nullptr) ? p
          : (rng.NextUint64(2) == 0 ? Expr::And(e, p) : Expr::Or(e, p));
    }
    ASSERT_OK_AND_ASSIGN(uint64_t n, exec->Count(e));
    uint64_t expected = 0;
    for (size_t row = 0; row < t.num_rows(); ++row) {
      expected += e->EvaluateRow(t, row) ? 1 : 0;
    }
    ASSERT_EQ(n, expected) << "trial " << trial << ": " << e->ToString(&t);
  }
}

TEST_F(IntegrationTest, SelectionThenOrderStatisticsPipeline) {
  ASSERT_OK_AND_ASSIGN(db::Table t, db::MakeTcpIpTable(6000));
  ASSERT_OK_AND_ASSIGN(auto exec, Executor::Make(&device_, &t));
  // Top-5 data_count among flows with retransmissions.
  ExprPtr retx = Expr::Pred(3, CompareOp::kGreater, 0.0f);
  std::vector<uint8_t> mask(t.num_rows());
  for (size_t row = 0; row < t.num_rows(); ++row) {
    mask[row] = retx->EvaluateRow(t, row) ? 1 : 0;
  }
  for (uint64_t k = 1; k <= 5; ++k) {
    ASSERT_OK_AND_ASSIGN(uint32_t gpu_v,
                         exec->KthLargest("data_count", k, retx));
    ASSERT_OK_AND_ASSIGN(
        float cpu_v,
        cpu::MaskedQuickSelectLargest(t.column(0).values(), mask, k));
    EXPECT_EQ(gpu_v, static_cast<uint32_t>(cpu_v)) << "k=" << k;
  }
}

TEST_F(IntegrationTest, ModeledTimesConsistentWithPlannerFormulas) {
  // The planner's closed-form GPU estimate should match what PerfModel
  // reports for the actually executed operation (same pass structure).
  ASSERT_OK_AND_ASSIGN(db::Table t, db::MakeTcpIpTable(10000));
  ASSERT_OK_AND_ASSIGN(auto exec, Executor::Make(&device_, &t));
  ASSERT_OK_AND_ASSIGN(core::AttributeBinding attr, exec->BindingFor(0));
  device_.ResetCounters();
  ASSERT_OK(
      core::CompareSelect(&device_, attr, CompareOp::kGreater, 100.0).status());
  gpu::PerfModel model;
  const double measured_model_ms = model.EstimateMs(device_.counters());
  core::Planner planner;
  const double planner_ms =
      planner.GpuMs(core::OperationKind::kPredicateSelect, t.num_rows());
  EXPECT_NEAR(measured_model_ms, planner_ms, planner_ms * 0.05);
}

TEST_F(IntegrationTest, FullAnalyticsSessionAcrossSubsystems) {
  // CSV -> table -> SQL -> selection materialization -> re-query -> TopK:
  // the adoption path a downstream user would actually walk.
  ASSERT_OK_AND_ASSIGN(db::Table source, db::MakeTcpIpTable(4000));
  const std::string csv = db::WriteCsv(source);
  ASSERT_OK_AND_ASSIGN(db::Table table, db::ReadCsv(csv));
  ASSERT_OK_AND_ASSIGN(auto exec, Executor::Make(&device_, &table));

  // SQL count, cross-checked.
  ASSERT_OK_AND_ASSIGN(
      sql::QueryResult counted,
      sql::ExecuteSql(exec.get(),
                      "SELECT COUNT(*) FROM flows WHERE data_loss > 0 AND "
                      "data_count >= 1000"));
  uint64_t expected = 0;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    expected += (table.column(1).value(row) > 0.0f &&
                 table.column(0).value(row) >= 1000.0f)
                    ? 1
                    : 0;
  }
  EXPECT_EQ(counted.count, expected);

  // Materialize the lossy flows and re-run analytics on the result table.
  ExprPtr lossy = Expr::Pred(1, CompareOp::kGreater, 0.0f);
  ASSERT_OK_AND_ASSIGN(db::Table lossy_table, exec->SelectTable(lossy));
  gpu::Device device2(100, 100);
  ASSERT_OK_AND_ASSIGN(auto exec2, Executor::Make(&device2, &lossy_table));
  ASSERT_OK_AND_ASSIGN(
      double lossy_median,
      exec2->Aggregate(AggregateKind::kMedian, "data_count"));
  std::vector<float> lossy_counts = lossy_table.column(0).values();
  ASSERT_OK_AND_ASSIGN(float cpu_median, cpu::Median(lossy_counts));
  EXPECT_DOUBLE_EQ(lossy_median, static_cast<double>(cpu_median));

  // Top-5 by data_count on the derived table.
  ASSERT_OK_AND_ASSIGN(auto top, exec2->TopK("data_count", 5));
  ASSERT_EQ(top.size(), 5u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].second, top[i].second);
  }
  ASSERT_OK_AND_ASSIGN(float true_max, cpu::MaxValue(lossy_counts));
  EXPECT_EQ(top[0].second, static_cast<uint32_t>(true_max));
}

TEST_F(IntegrationTest, PaperHeadlineWorkloadSmoke) {
  // A miniature of the paper's Section 5 suite on one table: predicate,
  // range, multi-attribute, semi-linear, kth, sum -- all cross-checked.
  ASSERT_OK_AND_ASSIGN(db::Table t, db::MakeTcpIpTable(10000));
  ASSERT_OK_AND_ASSIGN(auto exec, Executor::Make(&device_, &t));
  const auto& dc = t.column(0).values();

  const float p40 = t.column(0).Percentile(0.4);
  ExprPtr predicate = Expr::Pred(0, CompareOp::kGreater, p40);
  ASSERT_OK_AND_ASSIGN(uint64_t n_pred, exec->Count(predicate));
  std::vector<uint8_t> mask;
  EXPECT_EQ(n_pred, cpu::PredicateScan(dc, CompareOp::kGreater, p40, &mask));

  const float p20 = t.column(0).Percentile(0.2);
  const float p80 = t.column(0).Percentile(0.8);
  ASSERT_OK_AND_ASSIGN(uint64_t n_range,
                       exec->RangeCount("data_count", p20, p80));
  EXPECT_EQ(n_range, cpu::RangeScan(dc, p20, p80, &mask));

  ExprPtr multi = Expr::And(
      Expr::And(Expr::Pred(0, CompareOp::kGreater, p40),
                Expr::Pred(1, CompareOp::kLessEqual, 100.0f)),
      Expr::Pred(2, CompareOp::kGreater, 10.0f));
  ASSERT_OK_AND_ASSIGN(uint64_t n_multi, exec->Count(multi));
  uint64_t expected_multi = 0;
  for (size_t row = 0; row < t.num_rows(); ++row) {
    expected_multi += multi->EvaluateRow(t, row) ? 1 : 0;
  }
  EXPECT_EQ(n_multi, expected_multi);

  ASSERT_OK_AND_ASSIGN(double gpu_sum,
                       exec->Aggregate(AggregateKind::kSum, "data_count"));
  EXPECT_DOUBLE_EQ(gpu_sum, static_cast<double>(cpu::SumInt(dc)));

  ASSERT_OK_AND_ASSIGN(uint32_t kth, exec->KthLargest("data_count", 100));
  ASSERT_OK_AND_ASSIGN(float cpu_kth, cpu::QuickSelectLargest(dc, 100));
  EXPECT_EQ(kth, static_cast<uint32_t>(cpu_kth));
}

}  // namespace
}  // namespace gpudb
