#include <vector>

#include <gtest/gtest.h>

#include "src/core/range.h"
#include "src/cpu/scan.h"
#include "src/gpu/device.h"
#include "tests/test_util.h"

namespace gpudb {
namespace core {
namespace {

using testing_util::RandomInts;
using testing_util::ToFloats;
using testing_util::UploadIntAttribute;

class RangeTest : public ::testing::Test {
 protected:
  RangeTest() : device_(100, 100) {}
  gpu::Device device_;
};

TEST_F(RangeTest, CountMatchesCpu) {
  const std::vector<uint32_t> ints = RandomInts(4000, 12, 61);
  const std::vector<float> floats = ToFloats(ints);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  std::vector<uint8_t> cpu_mask;
  const uint64_t expected = cpu::RangeScan(floats, 500.0f, 3000.0f, &cpu_mask);
  ASSERT_OK_AND_ASSIGN(uint64_t count,
                       RangeSelect(&device_, attr, 500.0, 3000.0));
  EXPECT_EQ(count, expected);
  const std::vector<uint8_t> stencil = device_.ReadStencil().ValueOrDie();
  for (size_t i = 0; i < ints.size(); ++i) {
    EXPECT_EQ(stencil[i], cpu_mask[i]) << "record " << i;
  }
}

TEST_F(RangeTest, BoundsAreInclusive) {
  const std::vector<uint32_t> ints = {5, 10, 15, 20, 25};
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  ASSERT_OK_AND_ASSIGN(uint64_t count, RangeSelect(&device_, attr, 10, 20));
  EXPECT_EQ(count, 3u);  // 10, 15, 20
}

TEST_F(RangeTest, DegenerateSingleValueRange) {
  const std::vector<uint32_t> ints = {5, 10, 10, 20};
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  ASSERT_OK_AND_ASSIGN(uint64_t count, RangeSelect(&device_, attr, 10, 10));
  EXPECT_EQ(count, 2u);
}

TEST_F(RangeTest, RejectsInvertedRange) {
  const std::vector<uint32_t> ints = {1, 2, 3};
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  EXPECT_FALSE(RangeSelect(&device_, attr, 20, 10).ok());
  EXPECT_FALSE(RangeSelectTwoPass(&device_, attr, 20, 10).ok());
}

TEST_F(RangeTest, TwoPassBaselineAgrees) {
  const std::vector<uint32_t> ints = RandomInts(2000, 10, 62);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  ASSERT_OK_AND_ASSIGN(uint64_t bounds_count,
                       RangeSelect(&device_, attr, 200.0, 800.0));
  ASSERT_OK_AND_ASSIGN(uint64_t two_pass_count,
                       RangeSelectTwoPass(&device_, attr, 200.0, 800.0));
  EXPECT_EQ(bounds_count, two_pass_count);
}

TEST_F(RangeTest, TwoPassNormalizesStencilToBinary) {
  const std::vector<uint32_t> ints = RandomInts(500, 8, 63);
  const std::vector<float> floats = ToFloats(ints);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  std::vector<uint8_t> cpu_mask;
  cpu::RangeScan(floats, 64.0f, 192.0f, &cpu_mask);
  ASSERT_OK(RangeSelectTwoPass(&device_, attr, 64.0, 192.0).status());
  const std::vector<uint8_t> stencil = device_.ReadStencil().ValueOrDie();
  for (size_t i = 0; i < ints.size(); ++i) {
    EXPECT_EQ(stencil[i], cpu_mask[i]) << "record " << i;
  }
}

TEST_F(RangeTest, DepthBoundsPathUsesFewerComparisonPasses) {
  // The point of Routine 4.4: the depth-bounds range costs like a single
  // predicate, while the CNF formulation needs two comparison passes plus
  // normalization.
  const std::vector<uint32_t> ints = RandomInts(500, 8, 64);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  device_.ResetCounters();
  ASSERT_OK(RangeSelect(&device_, attr, 10, 200).status());
  const uint64_t bounds_passes = device_.counters().passes;
  device_.ResetCounters();
  ASSERT_OK(RangeSelectTwoPass(&device_, attr, 10, 200).status());
  const uint64_t two_pass_passes = device_.counters().passes;
  EXPECT_LT(bounds_passes, two_pass_passes);
  EXPECT_EQ(bounds_passes, 2u);  // copy + one bounds-tested quad
}

TEST_F(RangeTest, FullDomainRangeSelectsEverything) {
  const std::vector<uint32_t> ints = RandomInts(300, 8, 65);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  ASSERT_OK_AND_ASSIGN(uint64_t count, RangeSelect(&device_, attr, 0, 255));
  EXPECT_EQ(count, 300u);
}

TEST_F(RangeTest, EmptyRangeBelowDomain) {
  const std::vector<uint32_t> ints = {10, 20, 30};
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  ASSERT_OK_AND_ASSIGN(uint64_t count, RangeSelect(&device_, attr, 1, 5));
  EXPECT_EQ(count, 0u);
}

}  // namespace
}  // namespace core
}  // namespace gpudb
