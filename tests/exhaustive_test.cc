// Bounded-exhaustive verification on tiny domains: for 3-bit values and a
// handful of records, EVERY comparison (all operators x all constants), every
// range, every two-clause CNF over a fixed predicate pool, and every k of the
// order statistic is checked against brute-force evaluation. Small enough to
// enumerate completely, strong enough to pin the exact semantics of the
// depth/stencil machinery.

#include <vector>

#include <gtest/gtest.h>

#include "src/core/accumulator.h"
#include "src/core/compare.h"
#include "src/core/eval_cnf.h"
#include "src/core/kth_largest.h"
#include "src/core/range.h"
#include "src/gpu/device.h"
#include "tests/test_util.h"

namespace gpudb {
namespace core {
namespace {

using gpu::CompareOp;
using testing_util::RandomInts;
using testing_util::UploadIntAttribute;

constexpr int kBits = 3;          // domain [0, 8)
constexpr size_t kRecords = 37;   // covers full + partial texture rows

const std::vector<CompareOp> kAllOps = {
    CompareOp::kLess,    CompareOp::kLessEqual,    CompareOp::kEqual,
    CompareOp::kGreater, CompareOp::kGreaterEqual, CompareOp::kNotEqual,
    CompareOp::kAlways,  CompareOp::kNever};

class ExhaustiveSmallDomain : public ::testing::Test {
 protected:
  ExhaustiveSmallDomain() : device_(8, 8) {
    values_ = RandomInts(kRecords, kBits, /*seed=*/271);
    attr_ = UploadIntAttribute(&device_, values_, /*width=*/8);
  }

  uint64_t BruteCount(CompareOp op, uint32_t c) const {
    uint64_t n = 0;
    for (uint32_t v : values_) n += gpu::EvalCompare(op, v, c) ? 1 : 0;
    return n;
  }

  gpu::Device device_;
  std::vector<uint32_t> values_;
  AttributeBinding attr_;
};

TEST_F(ExhaustiveSmallDomain, EveryComparison) {
  for (CompareOp op : kAllOps) {
    for (uint32_t c = 0; c < (1u << kBits); ++c) {
      auto count = Compare(&device_, attr_, op, static_cast<double>(c));
      ASSERT_TRUE(count.ok());
      ASSERT_EQ(count.ValueOrDie(), BruteCount(op, c))
          << gpu::ToString(op) << " " << c;
    }
  }
}

TEST_F(ExhaustiveSmallDomain, EveryRange) {
  for (uint32_t lo = 0; lo < (1u << kBits); ++lo) {
    for (uint32_t hi = lo; hi < (1u << kBits); ++hi) {
      auto count = RangeSelect(&device_, attr_, lo, hi);
      ASSERT_TRUE(count.ok());
      uint64_t expected = 0;
      for (uint32_t v : values_) expected += (v >= lo && v <= hi) ? 1 : 0;
      ASSERT_EQ(count.ValueOrDie(), expected) << "[" << lo << "," << hi << "]";
    }
  }
}

TEST_F(ExhaustiveSmallDomain, EveryOrderStatistic) {
  std::vector<uint32_t> sorted = values_;
  std::sort(sorted.begin(), sorted.end(), std::greater<uint32_t>());
  for (uint64_t k = 1; k <= kRecords; ++k) {
    auto v = KthLargest(&device_, attr_, kBits, k);
    ASSERT_TRUE(v.ok());
    ASSERT_EQ(v.ValueOrDie(), sorted[k - 1]) << "k=" << k;
  }
}

TEST_F(ExhaustiveSmallDomain, EveryTwoClauseCnf) {
  // Predicate pool: {<, >=} x constants {2, 5}; all (p, q) clause pairs
  // (p AND q) and all single-clause disjunctions (p OR q).
  struct P {
    CompareOp op;
    uint32_t c;
  };
  std::vector<P> pool;
  for (CompareOp op : {CompareOp::kLess, CompareOp::kGreaterEqual,
                       CompareOp::kEqual, CompareOp::kNotEqual}) {
    for (uint32_t c : {2u, 5u}) pool.push_back({op, c});
  }
  auto lower = [&](const P& p) {
    return GpuPredicate::DepthCompare(attr_, p.op, p.c);
  };
  for (const P& p : pool) {
    for (const P& q : pool) {
      // Conjunction p AND q.
      {
        auto sel = EvalCnf(&device_, {{lower(p)}, {lower(q)}});
        ASSERT_TRUE(sel.ok());
        uint64_t expected = 0;
        for (uint32_t v : values_) {
          expected += (gpu::EvalCompare(p.op, v, p.c) &&
                       gpu::EvalCompare(q.op, v, q.c))
                          ? 1
                          : 0;
        }
        ASSERT_EQ(sel.ValueOrDie().count, expected)
            << gpu::ToString(p.op) << p.c << " AND " << gpu::ToString(q.op)
            << q.c;
      }
      // Disjunction p OR q.
      {
        auto sel = EvalCnf(&device_, {{lower(p), lower(q)}});
        ASSERT_TRUE(sel.ok());
        uint64_t expected = 0;
        for (uint32_t v : values_) {
          expected += (gpu::EvalCompare(p.op, v, p.c) ||
                       gpu::EvalCompare(q.op, v, q.c))
                          ? 1
                          : 0;
        }
        ASSERT_EQ(sel.ValueOrDie().count, expected)
            << gpu::ToString(p.op) << p.c << " OR " << gpu::ToString(q.op)
            << q.c;
      }
      // The same pair through the DNF path: (p) OR (q) as two terms.
      {
        auto sel = EvalDnf(&device_, {{lower(p)}, {lower(q)}});
        ASSERT_TRUE(sel.ok());
        uint64_t expected = 0;
        for (uint32_t v : values_) {
          expected += (gpu::EvalCompare(p.op, v, p.c) ||
                       gpu::EvalCompare(q.op, v, q.c))
                          ? 1
                          : 0;
        }
        ASSERT_EQ(sel.ValueOrDie().count, expected) << "DNF";
      }
    }
  }
}

TEST_F(ExhaustiveSmallDomain, AccumulatorOverEverySelection) {
  // Masked SUM under every single-predicate selection.
  for (CompareOp op : {CompareOp::kLess, CompareOp::kGreaterEqual}) {
    for (uint32_t c = 0; c < (1u << kBits); ++c) {
      auto selected = CompareSelect(&device_, attr_, op,
                                    static_cast<double>(c));
      ASSERT_TRUE(selected.ok());
      AccumulatorOptions options;
      options.selection = StencilSelection{1, selected.ValueOrDie()};
      auto sum = Accumulate(&device_, attr_.texture, 0, kBits, options);
      ASSERT_TRUE(sum.ok());
      uint64_t expected = 0;
      for (uint32_t v : values_) {
        if (gpu::EvalCompare(op, v, c)) expected += v;
      }
      ASSERT_EQ(sum.ValueOrDie(), expected)
          << gpu::ToString(op) << " " << c;
    }
  }
}

}  // namespace
}  // namespace core
}  // namespace gpudb
