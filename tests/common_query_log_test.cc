#include "src/common/query_log.h"

#include <string>

#include <gtest/gtest.h>

#include "src/common/metrics.h"

namespace gpudb {
namespace {

QueryLogEntry MakeEntry(const std::string& sql, double wall_ms) {
  QueryLogEntry e;
  e.sql = sql;
  e.kind = "count";
  e.wall_ms = wall_ms;
  return e;
}

TEST(QueryLogTest, AssignsSequentialIdsAndKeepsOrder) {
  QueryLog log(8);
  EXPECT_EQ(log.Add(MakeEntry("q1", 1.0)), 1u);
  EXPECT_EQ(log.Add(MakeEntry("q2", 1.0)), 2u);
  EXPECT_EQ(log.Add(MakeEntry("q3", 1.0)), 3u);
  const auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0].sql, "q1");
  EXPECT_EQ(entries[2].sql, "q3");
  EXPECT_EQ(log.total_recorded(), 3u);
}

TEST(QueryLogTest, RingEvictsOldestBeyondCapacity) {
  QueryLog log(3);
  for (int i = 0; i < 5; ++i) {
    log.Add(MakeEntry("q" + std::to_string(i), 1.0));
  }
  const auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 3u);
  // q0 and q1 were evicted; ids keep counting past the eviction.
  EXPECT_EQ(entries[0].sql, "q2");
  EXPECT_EQ(entries[0].id, 3u);
  EXPECT_EQ(entries[2].sql, "q4");
  EXPECT_EQ(entries[2].id, 5u);
  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.total_recorded(), 5u);
}

TEST(QueryLogTest, SlowThresholdFlagsAtOrAbove) {
  QueryLog log(8);
  log.set_echo_slow_to_stderr(false);
  log.set_slow_threshold_ms(10.0);
  log.Add(MakeEntry("fast", 9.99));
  log.Add(MakeEntry("exactly", 10.0));
  log.Add(MakeEntry("slow", 250.0));
  const auto slow = log.SlowEntries();
  ASSERT_EQ(slow.size(), 2u);
  EXPECT_EQ(slow[0].sql, "exactly");
  EXPECT_EQ(slow[1].sql, "slow");
  EXPECT_FALSE(log.Entries()[0].slow);
}

TEST(QueryLogTest, ZeroThresholdDisablesSlowDetection) {
  QueryLog log(8);
  log.set_echo_slow_to_stderr(false);
  log.set_slow_threshold_ms(0.0);
  log.Add(MakeEntry("glacial", 1e6));
  EXPECT_TRUE(log.SlowEntries().empty());
}

TEST(QueryLogTest, AddFeedsMetricsRegistry) {
  const uint64_t queries_before =
      MetricsRegistry::Global().counter("sql.queries").value();
  QueryLog log(4);
  log.set_echo_slow_to_stderr(false);
  log.Add(MakeEntry("q", 1.0));
  log.Add(MakeEntry("q", 2.0));
  EXPECT_EQ(MetricsRegistry::Global().counter("sql.queries").value(),
            queries_before + 2);
}

TEST(QueryLogTest, AddRecordsQueueAndExecSplit) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const uint64_t queue_before = registry.histogram("sql.queue_wait_ms").count();
  const double queue_sum_before = registry.histogram("sql.queue_wait_ms").sum();
  const uint64_t exec_before = registry.histogram("sql.exec_ms").count();
  const double exec_sum_before = registry.histogram("sql.exec_ms").sum();

  QueryLog log(4);
  log.set_echo_slow_to_stderr(false);
  QueryLogEntry e = MakeEntry("split", 5.0);
  e.queue_ms = 2.0;
  e.exec_ms = 3.0;
  log.Add(e);

  // The entry keeps the split, and both histograms saw one sample each.
  const auto entries = log.Entries();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_DOUBLE_EQ(entries[0].queue_ms, 2.0);
  EXPECT_DOUBLE_EQ(entries[0].exec_ms, 3.0);
  EXPECT_EQ(registry.histogram("sql.queue_wait_ms").count(), queue_before + 1);
  EXPECT_DOUBLE_EQ(registry.histogram("sql.queue_wait_ms").sum(),
                   queue_sum_before + 2.0);
  EXPECT_EQ(registry.histogram("sql.exec_ms").count(), exec_before + 1);
  EXPECT_DOUBLE_EQ(registry.histogram("sql.exec_ms").sum(),
                   exec_sum_before + 3.0);
}

TEST(QueryLogTest, ClearKeepsIdSequence) {
  QueryLog log(4);
  log.Add(MakeEntry("a", 1.0));
  log.Clear();
  EXPECT_EQ(log.size(), 0u);
  EXPECT_EQ(log.Add(MakeEntry("b", 1.0)), 2u);
}

}  // namespace
}  // namespace gpudb
