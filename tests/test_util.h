#ifndef GPUDB_TESTS_TEST_UTIL_H_
#define GPUDB_TESTS_TEST_UTIL_H_

#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/common/result.h"
#include "src/common/status.h"
#include "src/core/compare.h"
#include "src/gpu/device.h"

namespace gpudb {
namespace testing_util {

#define ASSERT_OK(expr)                                         \
  do {                                                          \
    const auto& _st = (expr);                                   \
    ASSERT_TRUE(_st.ok()) << "status: " << _st.ToString();      \
  } while (0)

#define EXPECT_OK(expr)                                         \
  do {                                                          \
    const auto& _st = (expr);                                   \
    EXPECT_TRUE(_st.ok()) << "status: " << _st.ToString();      \
  } while (0)

#define ASSERT_OK_AND_ASSIGN(lhs, expr)                               \
  ASSERT_OK_AND_ASSIGN_IMPL(                                          \
      GPUDB_ASSIGN_OR_RETURN_NAME(_assert_result_, __COUNTER__), lhs, \
      expr)

#define ASSERT_OK_AND_ASSIGN_IMPL(tmp, lhs, expr)                     \
  auto tmp = (expr);                                                  \
  ASSERT_TRUE(tmp.ok()) << "status: " << tmp.status().ToString();    \
  lhs = std::move(tmp).ValueOrDie();

/// Random integer values in [0, 2^bits).
inline std::vector<uint32_t> RandomInts(size_t n, int bits, uint64_t seed) {
  Random rng(seed);
  std::vector<uint32_t> out(n);
  for (auto& v : out) {
    v = static_cast<uint32_t>(rng.NextUint64(uint64_t{1} << bits));
  }
  return out;
}

inline std::vector<float> ToFloats(const std::vector<uint32_t>& ints) {
  std::vector<float> out(ints.size());
  for (size_t i = 0; i < ints.size(); ++i) {
    out[i] = static_cast<float>(ints[i]);
  }
  return out;
}

/// Uploads a single-channel texture of `values` sized width x ceil(n/width)
/// and returns an exactly-encoded attribute binding for it. Sets the device
/// viewport to n.
inline core::AttributeBinding UploadIntAttribute(
    gpu::Device* device, const std::vector<uint32_t>& values,
    uint32_t width = 100) {
  const std::vector<float> floats = ToFloats(values);
  auto tex = gpu::Texture::FromColumns({&floats}, width);
  EXPECT_TRUE(tex.ok()) << tex.status().ToString();
  auto id = device->UploadTexture(std::move(tex).ValueOrDie());
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_TRUE(device->SetViewport(values.size()).ok());
  core::AttributeBinding binding;
  binding.texture = id.ValueOrDie();
  binding.channel = 0;
  binding.encoding = core::DepthEncoding::ExactInt24();
  return binding;
}

}  // namespace testing_util
}  // namespace gpudb

#endif  // GPUDB_TESTS_TEST_UTIL_H_
