#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/db/datagen.h"
#include "src/predicate/cnf.h"
#include "src/predicate/expr.h"
#include "tests/test_util.h"

namespace gpudb {
namespace predicate {
namespace {

using gpu::CompareOp;

db::Table SmallTable() {
  auto t = db::MakeUniformTable(200, 8, 3, /*seed=*/11);
  EXPECT_TRUE(t.ok());
  return std::move(t).ValueOrDie();
}

TEST(ExprTest, SimplePredicateEvaluation) {
  db::Table t = SmallTable();
  ExprPtr e = Expr::Pred(0, CompareOp::kGreaterEqual, 128.0f);
  for (size_t row = 0; row < t.num_rows(); ++row) {
    EXPECT_EQ(e->EvaluateRow(t, row), t.column(0).value(row) >= 128.0f);
  }
}

TEST(ExprTest, AttrAttrPredicateEvaluation) {
  db::Table t = SmallTable();
  ExprPtr e = Expr::PredAttr(0, CompareOp::kLess, 1);
  for (size_t row = 0; row < t.num_rows(); ++row) {
    EXPECT_EQ(e->EvaluateRow(t, row),
              t.column(0).value(row) < t.column(1).value(row));
  }
}

TEST(ExprTest, BooleanCombinations) {
  db::Table t = SmallTable();
  ExprPtr a = Expr::Pred(0, CompareOp::kLess, 100.0f);
  ExprPtr b = Expr::Pred(1, CompareOp::kGreater, 50.0f);
  ExprPtr and_e = Expr::And(a, b);
  ExprPtr or_e = Expr::Or(a, b);
  ExprPtr not_e = Expr::Not(a);
  for (size_t row = 0; row < t.num_rows(); ++row) {
    const bool va = a->EvaluateRow(t, row);
    const bool vb = b->EvaluateRow(t, row);
    EXPECT_EQ(and_e->EvaluateRow(t, row), va && vb);
    EXPECT_EQ(or_e->EvaluateRow(t, row), va || vb);
    EXPECT_EQ(not_e->EvaluateRow(t, row), !va);
  }
}

TEST(ExprTest, BetweenIsInclusiveRange) {
  db::Table t = SmallTable();
  ExprPtr e = Expr::Between(0, 50.0f, 150.0f);
  for (size_t row = 0; row < t.num_rows(); ++row) {
    const float v = t.column(0).value(row);
    EXPECT_EQ(e->EvaluateRow(t, row), v >= 50.0f && v <= 150.0f);
  }
}

TEST(ExprTest, ValidateChecksColumnIndices) {
  db::Table t = SmallTable();
  EXPECT_OK(Expr::Pred(2, CompareOp::kEqual, 1.0f)->Validate(t));
  EXPECT_FALSE(Expr::Pred(3, CompareOp::kEqual, 1.0f)->Validate(t).ok());
  EXPECT_FALSE(Expr::PredAttr(0, CompareOp::kEqual, 9)->Validate(t).ok());
  EXPECT_FALSE(
      Expr::Not(Expr::Pred(7, CompareOp::kEqual, 1.0f))->Validate(t).ok());
}

TEST(ExprTest, ToStringUsesColumnNames) {
  db::Table t = SmallTable();
  ExprPtr e = Expr::And(Expr::Pred(0, CompareOp::kGreaterEqual, 10.0f),
                        Expr::Not(Expr::PredAttr(1, CompareOp::kLess, 2)));
  const std::string s = e->ToString(&t);
  EXPECT_NE(s.find("u0"), std::string::npos);
  EXPECT_NE(s.find("AND"), std::string::npos);
  EXPECT_NE(s.find("NOT"), std::string::npos);
}

TEST(CnfTest, SimplePredicatePassesThrough) {
  ExprPtr e = Expr::Pred(0, CompareOp::kLess, 5.0f);
  ASSERT_OK_AND_ASSIGN(Cnf cnf, ToCnf(e));
  ASSERT_EQ(cnf.clauses.size(), 1u);
  ASSERT_EQ(cnf.clauses[0].size(), 1u);
  EXPECT_EQ(cnf.clauses[0][0].op, CompareOp::kLess);
}

TEST(CnfTest, NotEliminationInvertsLeafComparison) {
  // NOT (a < 5) -> a >= 5 (Section 4.2).
  ExprPtr e = Expr::Not(Expr::Pred(0, CompareOp::kLess, 5.0f));
  ASSERT_OK_AND_ASSIGN(Cnf cnf, ToCnf(e));
  ASSERT_EQ(cnf.clauses.size(), 1u);
  EXPECT_EQ(cnf.clauses[0][0].op, CompareOp::kGreaterEqual);
}

TEST(CnfTest, DeMorganOnNegatedAnd) {
  // NOT (a AND b) -> (NOT a) OR (NOT b): one clause with two predicates.
  ExprPtr e = Expr::Not(Expr::And(Expr::Pred(0, CompareOp::kLess, 1.0f),
                                  Expr::Pred(1, CompareOp::kGreater, 2.0f)));
  ASSERT_OK_AND_ASSIGN(Cnf cnf, ToCnf(e));
  ASSERT_EQ(cnf.clauses.size(), 1u);
  ASSERT_EQ(cnf.clauses[0].size(), 2u);
  EXPECT_EQ(cnf.clauses[0][0].op, CompareOp::kGreaterEqual);
  EXPECT_EQ(cnf.clauses[0][1].op, CompareOp::kLessEqual);
}

TEST(CnfTest, OrDistributesOverAnd) {
  // (a AND b) OR c  ->  (a OR c) AND (b OR c).
  ExprPtr a = Expr::Pred(0, CompareOp::kLess, 1.0f);
  ExprPtr b = Expr::Pred(1, CompareOp::kLess, 2.0f);
  ExprPtr c = Expr::Pred(2, CompareOp::kLess, 3.0f);
  ASSERT_OK_AND_ASSIGN(Cnf cnf, ToCnf(Expr::Or(Expr::And(a, b), c)));
  ASSERT_EQ(cnf.clauses.size(), 2u);
  EXPECT_EQ(cnf.clauses[0].size(), 2u);
  EXPECT_EQ(cnf.clauses[1].size(), 2u);
}

TEST(CnfTest, NullExpressionRejected) {
  EXPECT_FALSE(ToCnf(nullptr).ok());
}

TEST(CnfTest, DoubleNegationCancels) {
  ExprPtr e = Expr::Not(Expr::Not(Expr::Pred(0, CompareOp::kEqual, 7.0f)));
  ASSERT_OK_AND_ASSIGN(Cnf cnf, ToCnf(e));
  EXPECT_EQ(cnf.clauses[0][0].op, CompareOp::kEqual);
}

/// Builds a random expression tree of the given depth.
ExprPtr RandomExpr(Random* rng, int depth) {
  if (depth == 0 || rng->NextUint64(4) == 0) {
    const auto attr = static_cast<size_t>(rng->NextUint64(3));
    const auto op = static_cast<CompareOp>(1 + rng->NextUint64(6));
    if (rng->NextUint64(4) == 0) {
      return Expr::PredAttr(attr, op, (attr + 1) % 3);
    }
    return Expr::Pred(attr, op,
                      static_cast<float>(rng->NextUint64(256)));
  }
  switch (rng->NextUint64(3)) {
    case 0:
      return Expr::And(RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
    case 1:
      return Expr::Or(RandomExpr(rng, depth - 1), RandomExpr(rng, depth - 1));
    default:
      return Expr::Not(RandomExpr(rng, depth - 1));
  }
}

TEST(CnfTest, RandomExpressionsPreserveSemantics) {
  // Property: for random expression trees, the CNF conversion evaluates
  // identically to the original tree on every row.
  db::Table t = SmallTable();
  Random rng(2024);
  for (int trial = 0; trial < 60; ++trial) {
    ExprPtr e = RandomExpr(&rng, 4);
    auto cnf = ToCnf(e);
    ASSERT_TRUE(cnf.ok()) << e->ToString();
    for (size_t row = 0; row < t.num_rows(); ++row) {
      ASSERT_EQ(cnf.ValueOrDie().EvaluateRow(t, row), e->EvaluateRow(t, row))
          << "trial " << trial << " row " << row << ": " << e->ToString();
    }
  }
}

TEST(DnfTest, AndDistributesOverOr) {
  // a AND (b OR c)  ->  (a AND b) OR (a AND c).
  ExprPtr a = Expr::Pred(0, CompareOp::kLess, 1.0f);
  ExprPtr b = Expr::Pred(1, CompareOp::kLess, 2.0f);
  ExprPtr c = Expr::Pred(2, CompareOp::kLess, 3.0f);
  ASSERT_OK_AND_ASSIGN(Dnf dnf, ToDnf(Expr::And(a, Expr::Or(b, c))));
  ASSERT_EQ(dnf.terms.size(), 2u);
  EXPECT_EQ(dnf.terms[0].size(), 2u);
  EXPECT_EQ(dnf.terms[1].size(), 2u);
  EXPECT_EQ(dnf.predicate_count(), 4u);
}

TEST(DnfTest, NaturalDnfPassesThrough) {
  // (a AND b) OR c stays two terms -- no distribution needed.
  ExprPtr e = Expr::Or(Expr::And(Expr::Pred(0, CompareOp::kLess, 1.0f),
                                 Expr::Pred(1, CompareOp::kLess, 2.0f)),
                       Expr::Pred(2, CompareOp::kLess, 3.0f));
  ASSERT_OK_AND_ASSIGN(Dnf dnf, ToDnf(e));
  ASSERT_EQ(dnf.terms.size(), 2u);
  EXPECT_EQ(dnf.terms[0].size(), 2u);
  EXPECT_EQ(dnf.terms[1].size(), 1u);
  EXPECT_NE(dnf.ToString().find("OR"), std::string::npos);
}

TEST(DnfTest, RandomExpressionsPreserveSemantics) {
  db::Table t = SmallTable();
  Random rng(4048);
  for (int trial = 0; trial < 60; ++trial) {
    ExprPtr e = RandomExpr(&rng, 4);
    auto dnf = ToDnf(e);
    ASSERT_TRUE(dnf.ok()) << e->ToString();
    for (size_t row = 0; row < t.num_rows(); ++row) {
      ASSERT_EQ(dnf.ValueOrDie().EvaluateRow(t, row), e->EvaluateRow(t, row))
          << "trial " << trial << " row " << row << ": " << e->ToString();
    }
  }
}

TEST(DnfTest, DualBlowupGuard) {
  // AND of many ORs explodes under DNF distribution.
  ExprPtr e = Expr::Or(Expr::Pred(0, CompareOp::kLess, 0.0f),
                       Expr::Pred(0, CompareOp::kLess, 1.0f));
  for (int i = 0; i < 16; ++i) {
    e = Expr::And(e, Expr::Or(Expr::Pred(0, CompareOp::kLess, float(i)),
                              Expr::Pred(0, CompareOp::kLess, float(i + 1))));
  }
  auto dnf = ToDnf(e);
  EXPECT_FALSE(dnf.ok());
  EXPECT_EQ(dnf.status().code(), StatusCode::kResourceExhausted);
  EXPECT_FALSE(ToDnf(nullptr).ok());
}

TEST(CnfTest, PredicateCountSumsClauses) {
  ExprPtr e = Expr::And(Expr::Or(Expr::Pred(0, CompareOp::kLess, 1.0f),
                                 Expr::Pred(1, CompareOp::kLess, 2.0f)),
                        Expr::Pred(2, CompareOp::kLess, 3.0f));
  ASSERT_OK_AND_ASSIGN(Cnf cnf, ToCnf(e));
  EXPECT_EQ(cnf.predicate_count(), 3u);
}

TEST(CnfTest, ToStringShowsStructure) {
  ExprPtr e = Expr::Or(Expr::Pred(0, CompareOp::kLess, 1.0f),
                       Expr::Pred(1, CompareOp::kGreater, 2.0f));
  ASSERT_OK_AND_ASSIGN(Cnf cnf, ToCnf(e));
  const std::string s = cnf.ToString();
  EXPECT_NE(s.find("OR"), std::string::npos);
}

TEST(CnfTest, ExponentialBlowupGuard) {
  // Build OR of many ANDs: CNF size multiplies and must hit the cap.
  Random rng(1);
  ExprPtr e = Expr::And(Expr::Pred(0, CompareOp::kLess, 0.0f),
                        Expr::Pred(0, CompareOp::kLess, 1.0f));
  for (int i = 0; i < 16; ++i) {
    e = Expr::Or(e, Expr::And(Expr::Pred(0, CompareOp::kLess, float(i)),
                              Expr::Pred(0, CompareOp::kLess, float(i + 1))));
  }
  auto cnf = ToCnf(e);
  EXPECT_FALSE(cnf.ok());
  EXPECT_EQ(cnf.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace predicate
}  // namespace gpudb
