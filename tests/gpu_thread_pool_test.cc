// ThreadPool degradation behaviour: thread counts below 1 clamp instead of
// asserting, and nested / concurrent ParallelFor calls run serially on the
// calling thread instead of corrupting the in-flight job.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/gpu/thread_pool.h"

namespace gpudb {
namespace gpu {
namespace {

TEST(ThreadPool, ClampsNonPositiveThreadCounts) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.size(), 1);
  ThreadPool negative(-7);
  EXPECT_EQ(negative.size(), 1);

  std::atomic<int> runs{0};
  zero.ParallelFor(16, [&](int) { runs.fetch_add(1); });
  EXPECT_EQ(runs.load(), 16);
}

TEST(ThreadPool, SizeCountsCallerAsAnEngine) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4);
}

TEST(ThreadPool, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.ParallelFor(static_cast<int>(hits.size()),
                   [&](int i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPool, NestedParallelForRunsSeriallyInsteadOfDeadlocking) {
  ThreadPool pool(4);
  std::atomic<int> outer{0};
  std::atomic<int> inner{0};
  pool.ParallelFor(8, [&](int) {
    outer.fetch_add(1);
    // Re-entering from a worker (or the caller) must not touch the active
    // job; the nested region runs inline on this thread.
    pool.ParallelFor(4, [&](int) { inner.fetch_add(1); });
  });
  EXPECT_EQ(outer.load(), 8);
  EXPECT_EQ(inner.load(), 8 * 4);
}

TEST(ThreadPool, ConcurrentParallelForFromAnotherThreadCompletes) {
  ThreadPool pool(4);
  std::atomic<int> first{0};
  std::atomic<int> second{0};
  std::atomic<bool> release{false};

  std::thread other([&] {
    // Occupy the pool with a job whose tasks wait until the main thread has
    // issued (and serially completed) its own region.
    pool.ParallelFor(4, [&](int) {
      first.fetch_add(1);
      while (!release.load()) std::this_thread::yield();
    });
  });
  while (first.load() == 0) std::this_thread::yield();
  // The pool is busy: this call must fall back to a serial loop and return.
  pool.ParallelFor(64, [&](int) { second.fetch_add(1); });
  EXPECT_EQ(second.load(), 64);
  release.store(true);
  other.join();
  EXPECT_EQ(first.load(), 4);
}

}  // namespace
}  // namespace gpu
}  // namespace gpudb
