// Fixture tests for gpulint (tools/gpulint): small positive/negative source
// snippets per rule R1-R5, the suppression-file parser, inline
// gpulint-allow markers, and an end-to-end RunLint pass over a temporary
// tree with a committed suppression file.

#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/metric_names.h"
#include "tools/gpulint/gpulint.h"
#include "tools/gpulint/rules.h"
#include "tools/gpulint/source_model.h"

namespace gpulint {
namespace {

/// Owns the SourceModels a Program references and finalizes the call-graph
/// closures once every fixture file is added.
class Corpus {
 public:
  void Add(std::string path, std::string_view source) {
    models_.push_back(
        std::make_unique<SourceModel>(std::move(path), source));
    program_.AddFile(models_.back().get());
  }
  Program& Finalize() {
    program_.Finalize();
    return program_;
  }
  Program& program() { return program_; }

 private:
  std::vector<std::unique_ptr<SourceModel>> models_;
  Program program_;
};

std::vector<std::string> Rules(const std::vector<Diagnostic>& diags) {
  std::vector<std::string> out;
  for (const Diagnostic& d : diags) out.push_back(d.rule);
  return out;
}

// ---------------------------------------------------------------------------
// R1: [[nodiscard]] coverage and discarded fallible calls.

TEST(GpulintR1, FlagsUnannotatedFallibleDeclInApiHeader) {
  Corpus c;
  c.Add("src/core/api.h",
        "Status DoThing();\n"
        "[[nodiscard]] Status Annotated();\n"
        "[[nodiscard]] Result<int> Count();\n");
  const auto diags = RunR1(c.Finalize());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "R1");
  EXPECT_EQ(diags[0].line, 1);
  EXPECT_NE(diags[0].message.find("DoThing"), std::string::npos);
}

TEST(GpulintR1, IgnoresHeadersOutsideTheAnnotatedLayers) {
  Corpus c;
  c.Add("src/db/catalog.h", "Status SetStats();\n");  // db/ is not in scope
  EXPECT_TRUE(RunR1(c.Finalize()).empty());
}

TEST(GpulintR1, FlagsDiscardedAndVoidCastCalls) {
  Corpus c;
  c.Add("src/core/api.h", "[[nodiscard]] Status DoThing();\n");
  c.Add("src/core/use.cc",
        "void Caller() {\n"
        "  DoThing();\n"          // bare drop
        "  (void)DoThing();\n"    // cast drop: must go through DropStatus
        "  Status s = DoThing();\n"  // consumed: fine
        "}\n");
  const auto diags = RunR1(c.Finalize());
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_EQ(diags[1].line, 3);
  EXPECT_NE(diags[1].message.find("DropStatus"), std::string::npos);
}

TEST(GpulintR1, InfallibleCallsAreNotFlagged) {
  Corpus c;
  c.Add("src/core/use.cc",
        "void Caller() {\n"
        "  Log();\n"
        "}\n");
  EXPECT_TRUE(RunR1(c.Finalize()).empty());
}

// ---------------------------------------------------------------------------
// R2: pass-issuing loops must check interrupts.

constexpr std::string_view kLoopNoCheck =
    "Status Run(gpu::Device* device) {\n"
    "  for (int i = 0; i < 4; ++i) {\n"
    "    GPUDB_RETURN_NOT_OK(device->RenderQuad(0.0f));\n"
    "  }\n"
    "  return Status::OK();\n"
    "}\n";

TEST(GpulintR2, FlagsPassLoopWithoutInterruptCheck) {
  Corpus c;
  c.Add("src/core/op.cc", kLoopNoCheck);
  const auto diags = RunR2(c.Finalize());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "R2");
  EXPECT_EQ(diags[0].line, 2);
}

TEST(GpulintR2, InterruptCheckInLoopBodySatisfiesTheRule) {
  Corpus c;
  c.Add("src/core/op.cc",
        "Status Run(gpu::Device* device) {\n"
        "  for (int i = 0; i < 4; ++i) {\n"
        "    GPUDB_RETURN_NOT_OK(device->CheckInterrupt());\n"
        "    GPUDB_RETURN_NOT_OK(device->RenderQuad(0.0f));\n"
        "  }\n"
        "  return Status::OK();\n"
        "}\n");
  EXPECT_TRUE(RunR2(c.Finalize()).empty());
}

TEST(GpulintR2, PassIssuingHelperIsCaughtTransitively) {
  Corpus c;
  c.Add("src/core/op.cc",
        "Status Step(gpu::Device* device) {\n"
        "  return device->RenderTexturedQuad();\n"
        "}\n"
        "Status Run(gpu::Device* device) {\n"
        "  for (int i = 0; i < 4; ++i) {\n"
        "    GPUDB_RETURN_NOT_OK(Step(device));\n"
        "  }\n"
        "  return Status::OK();\n"
        "}\n");
  const auto diags = RunR2(c.Finalize());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 5);
}

TEST(GpulintR2, DeviceInternalChecksDoNotAbsolveOperatorLoops) {
  // Pump() lives under src/gpu and calls CheckInterrupt, but gpu-defined
  // functions are barred from carrying "checks interrupts" to callers: the
  // operator loop still needs its own check (EXTENDING.md).
  Corpus c;
  c.Add("src/gpu/pump.cc",
        "Status Pump() {\n"
        "  return CheckInterrupt();\n"
        "}\n");
  c.Add("src/core/op.cc",
        "Status Run(gpu::Device* device) {\n"
        "  for (int i = 0; i < 4; ++i) {\n"
        "    GPUDB_RETURN_NOT_OK(Pump());\n"
        "    GPUDB_RETURN_NOT_OK(device->RenderQuad(0.0f));\n"
        "  }\n"
        "  return Status::OK();\n"
        "}\n");
  EXPECT_EQ(Rules(RunR2(c.Finalize())), std::vector<std::string>{"R2"});
}

TEST(GpulintR2, NonGpuHelperThatChecksInterruptsAbsolvesTheLoop) {
  Corpus c;
  c.Add("src/core/op.cc",
        "Status Poll(gpu::Device* device) {\n"
        "  return device->CheckInterrupt();\n"
        "}\n"
        "Status Run(gpu::Device* device) {\n"
        "  for (int i = 0; i < 4; ++i) {\n"
        "    GPUDB_RETURN_NOT_OK(Poll(device));\n"
        "    GPUDB_RETURN_NOT_OK(device->RenderQuad(0.0f));\n"
        "  }\n"
        "  return Status::OK();\n"
        "}\n");
  EXPECT_TRUE(RunR2(c.Finalize()).empty());
}

TEST(GpulintR2, PathsOutsideDeviceLayersAreOutOfScope) {
  Corpus c;
  c.Add("src/sql/driver.cc", std::string(kLoopNoCheck));
  EXPECT_TRUE(RunR2(c.Finalize()).empty());
}

// ---------------------------------------------------------------------------
// R3: no assert()/abort() on device paths.

TEST(GpulintR3, FlagsAssertAndAbortUnderGpuAndCore) {
  Corpus c;
  c.Add("src/gpu/dev.cc",
        "void F(int x) {\n"
        "  assert(x > 0);\n"
        "}\n");
  c.Add("src/core/op.cc",
        "void G() {\n"
        "  abort();\n"
        "}\n");
  const auto diags = RunR3(c.Finalize());
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_EQ(diags[1].line, 2);
}

TEST(GpulintR3, HostOnlyLayersMayAssert) {
  Corpus c;
  c.Add("src/common/result.h",
        "void F(int x) {\n"
        "  assert(x > 0);\n"
        "}\n");
  EXPECT_TRUE(RunR3(c.Finalize()).empty());
}

// ---------------------------------------------------------------------------
// R4: ParallelFor bodies must not re-enter the pool or the render path.

TEST(GpulintR4, FlagsPoolReentryAndRenderCallsInWorkerBodies) {
  Corpus c;
  c.Add("src/gpu/kernel.cc",
        "void F(ThreadPool* pool, gpu::Device* device) {\n"
        "  pool->ParallelFor(0, 8, [&](size_t i) {\n"
        "    pool->ParallelFor(0, 2, [&](size_t j) {});\n"
        "  });\n"
        "  pool->ParallelFor(0, 8, [&](size_t i) {\n"
        "    device->RenderQuad(0.0f);\n"
        "  });\n"
        "}\n");
  const auto diags = RunR4(c.Finalize());
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].rule, "R4");
}

TEST(GpulintR4, PureComputeBodiesAreFine) {
  Corpus c;
  c.Add("src/gpu/kernel.cc",
        "void F(ThreadPool* pool) {\n"
        "  pool->ParallelFor(0, 8, [&](size_t i) {\n"
        "    Accumulate(i);\n"
        "  });\n"
        "}\n");
  EXPECT_TRUE(RunR4(c.Finalize()).empty());
}

// ---------------------------------------------------------------------------
// R5: metric names must be registered.

constexpr std::string_view kRegistry =
    "inline constexpr std::string_view kAll[] = {\n"
    "    \"executor.*\",\n"
    "    \"queries.total\",\n"
    "};\n";

TEST(GpulintR5, FlagsUnregisteredLiteralNames) {
  Corpus c;
  c.Add("src/core/op.cc",
        "void F(MetricsRegistry& registry) {\n"
        "  registry.counter(\"queries.total\").Increment();\n"
        "  registry.counter(\"queries.bogus\").Increment();\n"
        "  registry.histogram(\"executor.scan_ms\").Record(1.0);\n"
        "}\n");
  Program& p = c.program();
  p.LoadMetricRegistry(kRegistry);
  p.Finalize();
  const auto diags = RunR5(p);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 3);
  EXPECT_NE(diags[0].message.find("queries.bogus"), std::string::npos);
}

TEST(GpulintR5, DynamicSuffixesRequireAWildcardEntry) {
  Corpus c;
  c.Add("src/core/op.cc",
        "void F(MetricsRegistry& registry, const std::string& op) {\n"
        "  registry.counter(\"executor.\" + op).Increment();\n"
        "  registry.counter(\"queries.\" + op).Increment();\n"
        "}\n");
  Program& p = c.program();
  p.LoadMetricRegistry(kRegistry);
  p.Finalize();
  const auto diags = RunR5(p);
  ASSERT_EQ(diags.size(), 1u);  // "queries." has no wildcard
  EXPECT_EQ(diags[0].line, 3);
}

TEST(GpulintR5, TracerCounterTracksFaceTheSameRegistry) {
  Corpus c;
  c.Add("src/gpu/profiler.cc",
        "void F(Tracer& tracer) {\n"
        "  tracer.Counter(\"queries.total\", 1.0);\n"
        "  tracer.Counter(\"band.unregistered\", 2.0);\n"
        "}\n");
  Program& p = c.program();
  p.LoadMetricRegistry(kRegistry);
  p.Finalize();
  const auto diags = RunR5(p);
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 3);
  EXPECT_NE(diags[0].message.find("band.unregistered"), std::string::npos);
}

TEST(GpulintR5, FailureDomainMetricsAreCoveredByTheRealRegistry) {
  // The device pool and admission controller emit these names; every one
  // must stay in the real metric_names.h table (ISSUE: shard pool PR) or
  // the lint gate on src/ would flag their call sites.
  for (std::string_view name :
       {"pool.device_state", "pool.failovers", "admission.rejected",
        "admission.queue_depth", "tenant.throttled"}) {
    EXPECT_TRUE(gpudb::metric_names::IsRegistered(name)) << name;
  }
  // And the fixture path agrees: a source file emitting them lints clean
  // against a registry that carries the entries, and is flagged without.
  constexpr std::string_view kPoolSource =
      "void F(MetricsRegistry& registry) {\n"
      "  registry.gauge(\"pool.device_state\").Set(1.0);\n"
      "  registry.counter(\"pool.failovers\").Increment();\n"
      "  registry.counter(\"admission.rejected\").Increment();\n"
      "  registry.gauge(\"admission.queue_depth\").Set(0.0);\n"
      "  registry.counter(\"tenant.throttled\").Increment();\n"
      "}\n";
  Corpus with;
  with.Add("src/gpu/device_pool.cc", std::string(kPoolSource));
  Program& registered = with.program();
  registered.LoadMetricRegistry(
      "inline constexpr std::string_view kAll[] = {\n"
      "    \"admission.queue_depth\",\n"
      "    \"admission.rejected\",\n"
      "    \"pool.device_state\",\n"
      "    \"pool.failovers\",\n"
      "    \"tenant.throttled\",\n"
      "};\n");
  registered.Finalize();
  EXPECT_TRUE(RunR5(registered).empty());

  Corpus without;
  without.Add("src/gpu/device_pool.cc", std::string(kPoolSource));
  Program& missing = without.program();
  missing.LoadMetricRegistry(kRegistry);
  missing.Finalize();
  EXPECT_EQ(RunR5(missing).size(), 5u);
}

TEST(GpulintR5, DisabledWithoutARegistry) {
  Corpus c;
  c.Add("src/core/op.cc",
        "void F(MetricsRegistry& registry) {\n"
        "  registry.counter(\"anything.goes\").Increment();\n"
        "}\n");
  EXPECT_TRUE(RunR5(c.Finalize()).empty());
}

// ---------------------------------------------------------------------------
// R6: backing-store mutations bump the catalog table version.

TEST(GpulintR6, FlagsSetStatsWithoutVersionBump) {
  Corpus c;
  c.Add("src/sql/session.cc",
        "Status RunAnalyze(Catalog* catalog) {\n"
        "  return catalog->SetStats(name, stats);\n"
        "}\n");
  const auto diags = RunR6(c.Finalize());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "R6");
  EXPECT_EQ(diags[0].line, 1);
  EXPECT_NE(diags[0].message.find("BumpTableVersion"), std::string::npos);
}

TEST(GpulintR6, DirectBumpInTheSameFunctionSatisfiesTheRule) {
  Corpus c;
  c.Add("src/sql/session.cc",
        "Status RunAnalyze(Catalog* catalog) {\n"
        "  GPUDB_RETURN_NOT_OK(catalog->SetStats(name, stats));\n"
        "  return catalog->BumpTableVersion(name);\n"
        "}\n");
  EXPECT_TRUE(RunR6(c.Finalize()).empty());
}

TEST(GpulintR6, BumpThroughAHelperSatisfiesTheRule) {
  Corpus c;
  c.Add("src/sql/session.cc",
        "Status RefreshTable(Catalog* catalog) {\n"
        "  return catalog->BumpTableVersion(name);\n"
        "}\n"
        "Status RunAnalyze(Catalog* catalog) {\n"
        "  GPUDB_RETURN_NOT_OK(catalog->SetStats(name, stats));\n"
        "  return RefreshTable(catalog);\n"
        "}\n");
  EXPECT_TRUE(RunR6(c.Finalize()).empty());
}

TEST(GpulintR6, CatalogInternalsAreOutOfScope) {
  Corpus c;
  // The catalog implements the hook; its own stats plumbing is exempt.
  c.Add("src/db/catalog.cc",
        "Status SetStatsImpl(Catalog* c) {\n"
        "  return c->SetStats(name, stats);\n"
        "}\n");
  EXPECT_TRUE(RunR6(c.Finalize()).empty());
}

// ---------------------------------------------------------------------------
// R7: guard coverage in mutex-owning classes, no naked lock()/unlock().

TEST(GpulintR7, FlagsUnguardedFieldOfMutexOwningClass) {
  Corpus c;
  c.Add("src/gpu/pool.h",
        "class Pool {\n"
        " private:\n"
        "  Mutex mu_;\n"
        "  int hits_;\n"
        "  int safe_ GUARDED_BY(mu_);\n"
        "};\n");
  const auto diags = RunR7(c.Finalize());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "R7");
  EXPECT_EQ(diags[0].line, 4);
  EXPECT_NE(diags[0].message.find("hits_"), std::string::npos);
}

TEST(GpulintR7, GuardedMarkedConstAndSyncFieldsAreClean) {
  Corpus c;
  c.Add("src/gpu/pool.h",
        "class Pool {\n"
        " private:\n"
        "  mutable Mutex mu_;\n"
        "  CondVar cv_;\n"
        "  std::map<std::string, int> index_ GUARDED_BY(mu_);\n"
        "  std::atomic<int> fast_{0};  // lint: lock-free (relaxed atomic)\n"
        "  // lint: lock-free (written once in the constructor, const\n"
        "  // thereafter)\n"
        "  std::vector<int> shape_;\n"
        "  static constexpr int kMax = 4;\n"
        "  const int width_ = 0;\n"
        "};\n");
  EXPECT_TRUE(RunR7(c.Finalize()).empty());
}

TEST(GpulintR7, ClassWithoutAMutexIsOutOfScope) {
  Corpus c;
  // unique_ptr<std::mutex> does not make the class a capability owner
  // (DevicePool::Slot: the lock identity lives with the Lease).
  c.Add("src/gpu/slot.h",
        "struct Slot {\n"
        "  std::unique_ptr<std::mutex> exec_mu;\n"
        "  int generation;\n"
        "};\n");
  EXPECT_TRUE(RunR7(c.Finalize()).empty());
}

TEST(GpulintR7, FlagsNakedLockAndAllowsScopedHolderRelease) {
  Corpus c;
  c.Add("src/gpu/pool.cc",
        "void Pool::Poke() {\n"
        "  mu_.lock();\n"
        "  mu_.unlock();\n"
        "  execute_lock.unlock();\n"  // a scoped holder released early
        "}\n");
  const auto diags = RunR7(c.Finalize());
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_EQ(diags[0].line, 2);
  EXPECT_EQ(diags[1].line, 3);
}

TEST(GpulintR7, TheMutexWrapperItselfIsExempt) {
  Corpus c;
  c.Add("src/common/mutex.h",
        "class Mutex {\n"
        " public:\n"
        "  void Lock() { mu_.lock(); }\n"
        "  void Unlock() { mu_.unlock(); }\n"
        " private:\n"
        "  std::mutex mu_;\n"
        "};\n");
  EXPECT_TRUE(RunR7(c.Finalize()).empty());
}

// ---------------------------------------------------------------------------
// R8: declared lock order, same-subsystem nesting, listeners under a lock.

TEST(GpulintR8, FlagsOutOfOrderAcquisitionThroughAHelper) {
  Corpus c;
  // catalog (level 2) is acquired by LookupEntry; the pool (level 4) must
  // not call it while holding its own lock -- 4 -> 2 inverts the order.
  c.Add("src/db/catalog.cc",
        "int Catalog::LookupEntry() {\n"
        "  MutexLock lock(&mu_);\n"
        "  return 1;\n"
        "}\n");
  c.Add("src/gpu/device_pool.cc",
        "void DevicePool::Probe() {\n"
        "  MutexLock lock(&mu_);\n"
        "  LookupEntry();\n"
        "}\n");
  const auto diags = RunR8(c.Finalize());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "R8");
  EXPECT_EQ(diags[0].file, "src/gpu/device_pool.cc");
  EXPECT_NE(diags[0].message.find("LookupEntry"), std::string::npos);
}

TEST(GpulintR8, ForwardOrderAcquisitionIsClean) {
  Corpus c;
  // session (1) calling into the catalog (2) walks the order forwards.
  c.Add("src/db/catalog.cc",
        "int Catalog::LookupEntry() {\n"
        "  MutexLock lock(&mu_);\n"
        "  return 1;\n"
        "}\n");
  c.Add("src/sql/session.cc",
        "void Session::Run() {\n"
        "  MutexLock lock(&execute_mu_);\n"
        "  LookupEntry();\n"
        "}\n");
  EXPECT_TRUE(RunR8(c.Finalize()).empty());
}

TEST(GpulintR8, FlagsLexicallyNestedScopedLocks) {
  Corpus c;
  c.Add("src/db/catalog.cc",
        "void Catalog::Swap() {\n"
        "  MutexLock a(&mu_);\n"
        "  MutexLock b(&other_mu_);\n"
        "}\n");
  const auto diags = RunR8(c.Finalize());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].line, 3);
  EXPECT_NE(diags[0].message.find("still held"), std::string::npos);
}

TEST(GpulintR8, SequentialScopedBlocksDoNotNest) {
  Corpus c;
  // thread_pool's claim/complete shape: two scoped blocks, never held
  // together.
  c.Add("src/gpu/thread_pool.cc",
        "void ThreadPool::Pump() {\n"
        "  {\n"
        "    MutexLock lock(&mu_);\n"
        "  }\n"
        "  {\n"
        "    MutexLock lock(&mu_);\n"
        "  }\n"
        "}\n");
  EXPECT_TRUE(RunR8(c.Finalize()).empty());
}

TEST(GpulintR8, FlagsListenerInvocationUnderALock) {
  Corpus c;
  c.Add("src/db/catalog.cc",
        "void Catalog::Bump() {\n"
        "  MutexLock lock(&mu_);\n"
        "  FireVersionListener(name);\n"
        "}\n");
  const auto diags = RunR8(c.Finalize());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("after release"), std::string::npos);
}

TEST(GpulintR8, ListenerRegistrationAndSnapshotAfterReleaseAreClean) {
  Corpus c;
  // The shipped BumpTableVersion shape: copy under the lock, fire outside.
  c.Add("src/db/catalog.cc",
        "void Catalog::Bump() {\n"
        "  std::vector<Listener> snapshot;\n"
        "  {\n"
        "    MutexLock lock(&mu_);\n"
        "    snapshot = version_listeners_;\n"
        "  }\n"
        "  for (const auto& fire : snapshot) fire(name);\n"
        "}\n"
        "void Catalog::AddVersionListener(Listener fn) {\n"
        "  MutexLock lock(&mu_);\n"
        "  version_listeners_.push_back(std::move(fn));\n"
        "}\n");
  EXPECT_TRUE(RunR8(c.Finalize()).empty());
}

TEST(GpulintR8, AdoptLockSitesAreNotAcquisitions) {
  Corpus c;
  c.Add("src/db/catalog.cc",
        "void Catalog::Resume() {\n"
        "  std::unique_lock<std::mutex> held(mu_.native(), "
        "std::adopt_lock);\n"
        "  std::unique_lock<std::mutex> fresh(other_);\n"
        "}\n");
  // The adopt site wraps an existing hold: only the fresh acquisition
  // exists, and nothing nests inside it.
  EXPECT_TRUE(RunR8(c.Finalize()).empty());
}

TEST(GpulintR8, AmbiguousNamesNeverPoisonTheOrder) {
  Corpus c;
  // Two unrelated Execute definitions: the session one locks admission
  // (level 0); the shader one is pure compute. A catalog region calling
  // the *shader* Execute must not inherit the session's acquisitions.
  c.Add("src/sql/admission.cc",
        "Ticket AdmissionController::Admit() {\n"
        "  MutexLock lock(&mu_);\n"
        "  return Ticket(this);\n"
        "}\n");
  c.Add("src/sql/session.cc",
        "Result<QueryResult> Session::Execute() {\n"
        "  return admission_->Admit();\n"
        "}\n");
  c.Add("src/gpu/device.cc",
        "FragmentOutput FragmentProgram::Execute(const Fragment& f) {\n"
        "  return Shade(f);\n"
        "}\n");
  c.Add("src/db/catalog.cc",
        "void Catalog::Materialize() {\n"
        "  MutexLock lock(&mu_);\n"
        "  program.Execute(fragment);\n"
        "}\n");
  EXPECT_TRUE(RunR8(c.Finalize()).empty());
}

TEST(GpulintR8, LockOrderRegistryRoundTrip) {
  // Every tier of the declared order (DESIGN.md §12), in one corpus: each
  // level acquires its own lock and calls one level forward — clean — and
  // a single backward edge at the end is the only diagnostic.
  Corpus c;
  c.Add("src/sql/admission.cc",
        "void AdmissionController::Enter() {\n"
        "  MutexLock lock(&mu_);\n"
        "  SessionStep();\n"
        "}\n");
  c.Add("src/sql/session.cc",
        "void Session::SessionStep() {\n"
        "  MutexLock lock(&execute_mu_);\n"
        "  CatalogStep();\n"
        "}\n");
  c.Add("src/db/catalog.cc",
        "void Catalog::CatalogStep() {\n"
        "  MutexLock lock(&mu_);\n"
        "  DeviceStep();\n"
        "}\n");
  c.Add("src/gpu/thread_pool.cc",
        "void ThreadPool::DeviceStep() {\n"
        "  MutexLock lock(&mu_);\n"
        "  PoolStep();\n"
        "}\n");
  c.Add("src/gpu/device_pool.cc",
        "void DevicePool::PoolStep() {\n"
        "  MutexLock lock(&mu_);\n"
        "  TelemetryStep();\n"
        "}\n");
  c.Add("src/common/metrics.cc",
        "void MetricsRegistry::TelemetryStep() {\n"
        "  MutexLock lock(&mu_);\n"
        "  counters_.clear();\n"
        "}\n"
        "void MetricsRegistry::Backwards() {\n"
        "  MutexLock lock(&mu_);\n"
        "  Enter();\n"  // telemetry (5) back into admission (0)
        "}\n");
  const auto diags = RunR8(c.Finalize());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].file, "src/common/metrics.cc");
  EXPECT_NE(diags[0].message.find("level-0"), std::string::npos);
}

// ---------------------------------------------------------------------------
// R9: band-parallel kernels never touch GUARDED_BY fields.

TEST(GpulintR9, FlagsGuardedFieldInInlineParallelForBody) {
  Corpus c;
  c.Add("src/gpu/thread_pool.h",
        "class ThreadPool {\n"
        "  Mutex mu_;\n"
        "  int remaining_ GUARDED_BY(mu_);\n"
        "};\n");
  c.Add("src/gpu/op.cc",
        "void Op::Run() {\n"
        "  pool->ParallelFor(bands, [&](int b) { remaining_ -= b; });\n"
        "}\n");
  const auto diags = RunR9(c.Finalize());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_EQ(diags[0].rule, "R9");
  EXPECT_NE(diags[0].message.find("remaining_"), std::string::npos);
}

TEST(GpulintR9, ResolvesWorkerLambdasPassedByName) {
  Corpus c;
  c.Add("src/db/catalog.h",
        "class Catalog {\n"
        "  Mutex mu_;\n"
        "  std::map<std::string, Table> tables_ GUARDED_BY(mu_);\n"
        "};\n");
  c.Add("src/gpu/op.cc",
        "void Op::Run() {\n"
        "  auto run_band = [&](int b) { Touch(tables_); };\n"
        "  pool->ParallelFor(bands, run_band);\n"
        "}\n");
  const auto diags = RunR9(c.Finalize());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("run_band"), std::string::npos);
}

TEST(GpulintR9, QuadRowKernelBodiesAreScanned) {
  Corpus c;
  c.Add("src/gpu/thread_pool.h",
        "class ThreadPool {\n"
        "  Mutex mu_;\n"
        "  int job_size_ GUARDED_BY(mu_);\n"
        "};\n");
  c.Add("src/gpu/device.cc",
        "void QuadRowKernel(FrameBuffer* fb) {\n"
        "  fb->Write(job_size_);\n"
        "}\n");
  const auto diags = RunR9(c.Finalize());
  ASSERT_EQ(diags.size(), 1u);
  EXPECT_NE(diags[0].message.find("QuadRowKernel"), std::string::npos);
}

TEST(GpulintR9, SameNameUnguardedFieldInTheFilePairShadows) {
  Corpus c;
  // Tracer::counters_ is guarded; Device::counters_ is the device's own
  // unguarded ledger. A kernel in device.cc touching counters_ means the
  // device one — no diagnostic.
  c.Add("src/common/trace.h",
        "class Tracer {\n"
        "  Mutex mu_;\n"
        "  std::map<std::string, double> counters_ GUARDED_BY(mu_);\n"
        "};\n");
  c.Add("src/gpu/device.h",
        "class Device {\n"
        "  DeviceCounters counters_;\n"
        "};\n");
  c.Add("src/gpu/device.cc",
        "void QuadRowKernel(Device* d) {\n"
        "  d->counters_.fragments += 1;\n"
        "}\n");
  EXPECT_TRUE(RunR9(c.Finalize()).empty());
}

TEST(GpulintR9, PureComputeKernelsAreClean) {
  Corpus c;
  c.Add("src/db/catalog.h",
        "class Catalog {\n"
        "  Mutex mu_;\n"
        "  std::map<std::string, Table> tables_ GUARDED_BY(mu_);\n"
        "};\n");
  c.Add("src/gpu/op.cc",
        "void Op::Run() {\n"
        "  pool->ParallelFor(bands, [&](int b) { out[b] = in[b] * 2; });\n"
        "}\n");
  EXPECT_TRUE(RunR9(c.Finalize()).empty());
}

// ---------------------------------------------------------------------------
// Suppressions: inline markers and the committed file.

TEST(GpulintSuppressions, InlineAllowCoversSameLineAndLineAbove) {
  SourceModel model("src/core/op.cc",
                    "void F() {\n"
                    "  // gpulint-allow(R3)\n"
                    "  assert(1);\n"
                    "  assert(2);  // gpulint-allow(R3,R1)\n"
                    "\n"
                    "  assert(3);\n"
                    "}\n");
  EXPECT_TRUE(model.IsInlineSuppressed("R3", 3));   // line above
  EXPECT_TRUE(model.IsInlineSuppressed("R3", 4));   // same line, list form
  EXPECT_TRUE(model.IsInlineSuppressed("R1", 4));
  EXPECT_FALSE(model.IsInlineSuppressed("R3", 6));
  EXPECT_FALSE(model.IsInlineSuppressed("R2", 3));  // other rule
}

TEST(GpulintSuppressions, ParserHandlesCommentsLinesAndMalformedEntries) {
  std::vector<std::string> warnings;
  const auto entries = ParseSuppressions(
      "# comment\n"
      "\n"
      "R1 src/gpu/device.cc:395 Execute name collision\n"
      "R2 src/gpu/device.cc reason text here\n"
      "bogus-line-without-path\n",
      &warnings);
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].rule, "R1");
  EXPECT_EQ(entries[0].path, "src/gpu/device.cc");
  EXPECT_EQ(entries[0].line, 395);
  EXPECT_EQ(entries[1].line, 0);  // any line
  EXPECT_NE(entries[1].reason.find("reason"), std::string::npos);
  ASSERT_EQ(warnings.size(), 1u);
}

// ---------------------------------------------------------------------------
// End to end: RunLint over a real tree with a suppression file.

class GpulintRunTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = std::filesystem::path(::testing::TempDir()) / "gpulint_fixture";
    std::filesystem::remove_all(root_);
    std::filesystem::create_directories(root_ / "src/gpu");
  }
  void WriteFile(const std::string& rel, std::string_view text) {
    std::ofstream out(root_ / rel, std::ios::binary);
    out << text;
  }
  std::filesystem::path root_;
};

TEST_F(GpulintRunTest, SuppressionFileSilencesVettedFindings) {
  WriteFile("src/gpu/dev.cc",
            "void F(int x) {\n"
            "  assert(x);\n"
            "}\n");
  WriteFile("lint.suppressions",
            "R3 src/gpu/dev.cc vetted fixture violation\n"
            "R1 src/gone.cc stale entry\n");
  LintOptions options;
  options.root = root_.string();
  options.suppressions_path = "lint.suppressions";
  const LintResult result = RunLint(options);
  EXPECT_TRUE(result.active.empty());
  ASSERT_EQ(result.suppressed.size(), 1u);
  EXPECT_EQ(result.suppressed[0].rule, "R3");
  // The entry that matched nothing is reported for pruning.
  ASSERT_EQ(result.unused_suppressions.size(), 1u);
  EXPECT_EQ(result.unused_suppressions[0].path, "src/gone.cc");
  EXPECT_EQ(result.files_scanned, 1);
}

TEST_F(GpulintRunTest, ActiveDiagnosticsSurviveWithoutSuppression) {
  WriteFile("src/gpu/dev.cc",
            "void F(int x) {\n"
            "  assert(x);\n"
            "}\n");
  LintOptions options;
  options.root = root_.string();
  const LintResult result = RunLint(options);
  ASSERT_EQ(result.active.size(), 1u);
  EXPECT_EQ(result.active[0].rule, "R3");
  EXPECT_EQ(result.active[0].file, "src/gpu/dev.cc");  // root-relative
  EXPECT_EQ(FormatText(result.active[0]).rfind("src/gpu/dev.cc:2: [R3]", 0),
            0u);
  const std::string json = ReportJson(result);
  EXPECT_NE(json.find("\"diagnostics\""), std::string::npos);
  EXPECT_NE(json.find("\"ok\": false"), std::string::npos);
}

TEST_F(GpulintRunTest, InlineAllowSilencesThroughRunLint) {
  WriteFile("src/gpu/dev.cc",
            "void F(int x) {\n"
            "  assert(x);  // gpulint-allow(R3)\n"
            "}\n");
  LintOptions options;
  options.root = root_.string();
  const LintResult result = RunLint(options);
  EXPECT_TRUE(result.active.empty());
  EXPECT_EQ(result.suppressed.size(), 1u);
}

}  // namespace
}  // namespace gpulint
