#include <cctype>
#include <cmath>
#include <limits>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/common/json.h"
#include "src/common/metrics.h"

namespace gpudb {
namespace {

TEST(MetricCounterTest, AddAndReset) {
  MetricsRegistry registry;
  MetricCounter& c = registry.counter("test.counter");
  EXPECT_EQ(c.value(), 0u);
  c.Increment();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  // Same name returns the same instrument.
  EXPECT_EQ(&registry.counter("test.counter"), &c);
  registry.ResetForTesting();
  EXPECT_EQ(c.value(), 0u);
}

TEST(MetricGaugeTest, LastValueWins) {
  MetricsRegistry registry;
  MetricGauge& g = registry.gauge("test.gauge");
  g.Set(3.5);
  g.Set(-2.0);
  EXPECT_DOUBLE_EQ(g.value(), -2.0);
}

TEST(MetricHistogramTest, BucketBoundaries) {
  // Bucket i covers (2^(i-1+kMinExp), 2^(i+kMinExp)]; values at the upper
  // bound land in the bucket, values just above spill into the next.
  const int one_bucket = MetricHistogram::BucketFor(1.0);  // 2^0
  EXPECT_DOUBLE_EQ(MetricHistogram::BucketUpperBound(one_bucket), 1.0);
  EXPECT_EQ(MetricHistogram::BucketFor(1.0001), one_bucket + 1);
  EXPECT_EQ(MetricHistogram::BucketFor(2.0), one_bucket + 1);
  EXPECT_EQ(MetricHistogram::BucketFor(0.5), one_bucket - 1);
  // Non-positive and tiny values clamp into bucket 0.
  EXPECT_EQ(MetricHistogram::BucketFor(0.0), 0);
  EXPECT_EQ(MetricHistogram::BucketFor(-5.0), 0);
  EXPECT_EQ(MetricHistogram::BucketFor(1e-12), 0);
  // Huge values clamp into the last bucket.
  EXPECT_EQ(MetricHistogram::BucketFor(1e30), MetricHistogram::kBuckets - 1);
}

TEST(MetricHistogramTest, RecordsCountSumMinMax) {
  MetricsRegistry registry;
  MetricHistogram& h = registry.histogram("test.latency");
  h.Record(1.0);
  h.Record(4.0);
  h.Record(0.25);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_DOUBLE_EQ(h.sum(), 5.25);
  EXPECT_DOUBLE_EQ(h.min(), 0.25);
  EXPECT_DOUBLE_EQ(h.max(), 4.0);
  EXPECT_EQ(h.bucket_count(MetricHistogram::BucketFor(1.0)), 1u);
  EXPECT_EQ(h.bucket_count(MetricHistogram::BucketFor(4.0)), 1u);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.0);
}

TEST(MetricHistogramTest, QuantileUsesBucketUpperBounds) {
  MetricsRegistry registry;
  MetricHistogram& h = registry.histogram("test.quantile");
  for (int i = 0; i < 99; ++i) h.Record(1.0);
  h.Record(1024.0);
  // The 50th percentile is in the 1.0 bucket, the 100th in the 1024 bucket.
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 1.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 1024.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 1.0);
}

TEST(MetricHistogramTest, QuantileEdgeCases) {
  MetricsRegistry registry;
  MetricHistogram& h = registry.histogram("test.quantile_edge");
  // Empty histogram: every quantile is 0 (no observations).
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 0.0);
  // Single bucket: every quantile lands on that bucket's upper bound.
  h.Record(3.0);
  const double only = MetricHistogram::BucketUpperBound(
      MetricHistogram::BucketFor(3.0));
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), only);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), only);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), only);
  // Out-of-range and NaN arguments clamp instead of reading out of bounds.
  EXPECT_DOUBLE_EQ(h.Quantile(-1.0), only);
  EXPECT_DOUBLE_EQ(h.Quantile(2.0), only);
  EXPECT_DOUBLE_EQ(h.Quantile(std::nan("")), only);
}

TEST(MetricsRegistryTest, SnapshotCopiesAllInstruments) {
  MetricsRegistry registry;
  registry.counter("snap.counter").Add(7);
  registry.gauge("snap.gauge").Set(-1.25);
  MetricHistogram& h = registry.histogram("snap.hist");
  h.Record(1.0);
  h.Record(8.0);
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.counters[0].name, "snap.counter");
  EXPECT_EQ(snap.counters[0].value, 7u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].value, -1.25);
  ASSERT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 2u);
  EXPECT_DOUBLE_EQ(snap.histograms[0].sum, 9.0);
  EXPECT_DOUBLE_EQ(snap.histograms[0].min, 1.0);
  EXPECT_DOUBLE_EQ(snap.histograms[0].max, 8.0);
  ASSERT_EQ(snap.histograms[0].buckets.size(), 2u);
}

TEST(MetricsRegistryTest, DumpPrometheusTextExposition) {
  MetricsRegistry registry;
  registry.counter("sql.queries").Add(5);
  registry.gauge("cache.bytes").Set(2048.0);
  MetricHistogram& h = registry.histogram("query.wall_ms");
  h.Record(1.0);
  h.Record(1.0);
  h.Record(512.0);
  const std::string text = registry.DumpPrometheus();
  // Names are prefixed and sanitized for Prometheus.
  EXPECT_NE(text.find("# TYPE gpudb_sql_queries counter"), std::string::npos);
  // Each metric gets a HELP line carrying the original dotted name, and
  // promtool wants it before the TYPE line.
  const size_t help_pos = text.find("# HELP gpudb_sql_queries ");
  const size_t type_pos = text.find("# TYPE gpudb_sql_queries ");
  ASSERT_NE(help_pos, std::string::npos);
  ASSERT_NE(type_pos, std::string::npos);
  EXPECT_LT(help_pos, type_pos);
  EXPECT_NE(text.find("sql.queries"), std::string::npos);
  EXPECT_NE(text.find("gpudb_sql_queries 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE gpudb_cache_bytes gauge"), std::string::npos);
  EXPECT_NE(text.find("gpudb_cache_bytes 2048"), std::string::npos);
  // Histograms emit cumulative buckets, +Inf, _sum and _count.
  EXPECT_NE(text.find("# TYPE gpudb_query_wall_ms histogram"),
            std::string::npos);
  EXPECT_NE(text.find("gpudb_query_wall_ms_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("gpudb_query_wall_ms_sum 514"), std::string::npos);
  EXPECT_NE(text.find("gpudb_query_wall_ms_count 3"), std::string::npos);
  // Cumulative: the bucket holding 1.0 reports 2, later buckets at least 2.
  EXPECT_NE(text.find("le=\"1\"} 2"), std::string::npos);
}

TEST(MetricsRegistryTest, DumpPrometheusEscapesAndSpecialValues) {
  MetricsRegistry registry;
  // A metric name with every character class the sanitizer must fold, whose
  // HELP line must escape the backslash it contains.
  registry.counter("weird\\name with spaces").Add(1);
  registry.gauge("gauge.nan").Set(std::nan(""));
  registry.gauge("gauge.posinf").Set(std::numeric_limits<double>::infinity());
  registry.gauge("gauge.neginf").Set(-std::numeric_limits<double>::infinity());
  const std::string text = registry.DumpPrometheus();

  // Sanitized sample line: every non-alphanumeric folded to '_'.
  EXPECT_NE(text.find("gpudb_weird_name_with_spaces 1"), std::string::npos);
  // HELP escape: the raw backslash in the dotted name becomes "\\".
  EXPECT_NE(text.find("weird\\\\name with spaces"), std::string::npos);
  // Non-finite values spell out the Prometheus forms, never printf's "nan".
  EXPECT_NE(text.find("gpudb_gauge_nan NaN"), std::string::npos);
  EXPECT_NE(text.find("gpudb_gauge_posinf +Inf"), std::string::npos);
  EXPECT_NE(text.find("gpudb_gauge_neginf -Inf"), std::string::npos);
  EXPECT_EQ(text.find(" nan"), std::string::npos);
  EXPECT_EQ(text.find(" inf"), std::string::npos);
  EXPECT_EQ(text.find(" -inf"), std::string::npos);

  // promtool-style structural check: every non-comment line is
  // "<name>[{labels}] <value>"; every series has HELP+TYPE above it.
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << line;
      continue;
    }
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    const std::string name = line.substr(0, line.find_first_of(" {"));
    for (char c : name) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_')
          << line;
    }
  }
}

TEST(MetricsRegistryTest, DumpTextListsEveryInstrument) {
  MetricsRegistry registry;
  registry.counter("z.counter").Add(3);
  registry.gauge("a.gauge").Set(1.5);
  registry.histogram("m.hist").Record(2.0);
  const std::string text = registry.DumpText();
  EXPECT_NE(text.find("z.counter"), std::string::npos);
  EXPECT_NE(text.find("a.gauge"), std::string::npos);
  EXPECT_NE(text.find("m.hist"), std::string::npos);
}

TEST(MetricsRegistryTest, DumpJsonParsesAndCarriesValues) {
  MetricsRegistry registry;
  registry.counter("queries.total").Add(17);
  registry.gauge("memory.resident_bytes").Set(4096.0);
  MetricHistogram& h = registry.histogram("query.latency_ms");
  h.Record(0.5);
  h.Record(2.0);

  auto parsed = json::Parse(registry.DumpJson());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value& doc = parsed.ValueOrDie();

  const json::Value* counters = doc.Find("counters");
  ASSERT_NE(counters, nullptr);
  const json::Value* total = counters->Find("queries.total");
  ASSERT_NE(total, nullptr);
  EXPECT_DOUBLE_EQ(total->as_number(), 17.0);

  const json::Value* gauges = doc.Find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_DOUBLE_EQ(gauges->Find("memory.resident_bytes")->as_number(), 4096.0);

  const json::Value* histograms = doc.Find("histograms");
  ASSERT_NE(histograms, nullptr);
  const json::Value* hist = histograms->Find("query.latency_ms");
  ASSERT_NE(hist, nullptr);
  EXPECT_DOUBLE_EQ(hist->Find("count")->as_number(), 2.0);
  EXPECT_DOUBLE_EQ(hist->Find("sum")->as_number(), 2.5);
  const json::Value* buckets = hist->Find("buckets");
  ASSERT_NE(buckets, nullptr);
  ASSERT_TRUE(buckets->is_array());
  // Only non-empty buckets are emitted; each carries {le, count}.
  ASSERT_EQ(buckets->as_array().size(), 2u);
  double bucket_total = 0;
  for (const json::Value& b : buckets->as_array()) {
    ASSERT_NE(b.Find("le"), nullptr);
    ASSERT_NE(b.Find("count"), nullptr);
    bucket_total += b.Find("count")->as_number();
  }
  EXPECT_DOUBLE_EQ(bucket_total, 2.0);
}

TEST(MetricsRegistryTest, GlobalIsSingleton) {
  EXPECT_EQ(&MetricsRegistry::Global(), &MetricsRegistry::Global());
}

}  // namespace
}  // namespace gpudb
