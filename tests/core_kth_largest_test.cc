#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/bit_util.h"
#include "src/core/compare.h"
#include "src/core/eval_cnf.h"
#include "src/core/kth_largest.h"
#include "src/cpu/quickselect.h"
#include "src/cpu/scan.h"
#include "src/gpu/device.h"
#include "tests/test_util.h"

namespace gpudb {
namespace core {
namespace {

using testing_util::RandomInts;
using testing_util::ToFloats;
using testing_util::UploadIntAttribute;

class KthLargestTest : public ::testing::Test {
 protected:
  KthLargestTest() : device_(64, 64) {}
  gpu::Device device_;
};

TEST_F(KthLargestTest, MatchesQuickSelectAcrossK) {
  const std::vector<uint32_t> ints = RandomInts(3000, 12, 81);
  const std::vector<float> floats = ToFloats(ints);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  for (uint64_t k : {uint64_t{1}, uint64_t{7}, uint64_t{100}, uint64_t{1500},
                     uint64_t{2999}, uint64_t{3000}}) {
    ASSERT_OK_AND_ASSIGN(uint32_t gpu_v, KthLargest(&device_, attr, 12, k));
    ASSERT_OK_AND_ASSIGN(float cpu_v, cpu::QuickSelectLargest(floats, k));
    EXPECT_EQ(gpu_v, static_cast<uint32_t>(cpu_v)) << "k=" << k;
  }
}

TEST_F(KthLargestTest, PassCountIsBitWidthIndependentOfK) {
  // Figure 7's flat curve: time is constant in k -- always one copy plus
  // bit_width comparison passes.
  const std::vector<uint32_t> ints = RandomInts(1000, 10, 82);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  uint64_t passes_for_k1 = 0;
  for (uint64_t k : {uint64_t{1}, uint64_t{500}, uint64_t{1000}}) {
    device_.ResetCounters();
    ASSERT_OK(KthLargest(&device_, attr, 10, k).status());
    const uint64_t passes = device_.counters().passes;
    EXPECT_EQ(passes, 1u + 10u) << "k=" << k;
    if (k == 1) passes_for_k1 = passes;
    EXPECT_EQ(passes, passes_for_k1);
    EXPECT_EQ(device_.counters().occlusion_readbacks, 10u);
  }
}

TEST_F(KthLargestTest, DuplicateHeavyData) {
  std::vector<uint32_t> ints(1000, 42);
  for (size_t i = 0; i < 250; ++i) ints[i] = 17;
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  ASSERT_OK_AND_ASSIGN(uint32_t top, KthLargest(&device_, attr, 6, 1));
  EXPECT_EQ(top, 42u);
  ASSERT_OK_AND_ASSIGN(uint32_t mid, KthLargest(&device_, attr, 6, 750));
  EXPECT_EQ(mid, 42u);
  ASSERT_OK_AND_ASSIGN(uint32_t low, KthLargest(&device_, attr, 6, 751));
  EXPECT_EQ(low, 17u);
}

TEST_F(KthLargestTest, KthSmallestMirrorsKthLargest) {
  const std::vector<uint32_t> ints = RandomInts(800, 10, 83);
  const std::vector<float> floats = ToFloats(ints);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  for (uint64_t k : {uint64_t{1}, uint64_t{400}, uint64_t{800}}) {
    ASSERT_OK_AND_ASSIGN(uint32_t gpu_v, KthSmallest(&device_, attr, 10, k));
    ASSERT_OK_AND_ASSIGN(float cpu_v, cpu::QuickSelectSmallest(floats, k));
    EXPECT_EQ(gpu_v, static_cast<uint32_t>(cpu_v)) << "k=" << k;
  }
}

TEST_F(KthLargestTest, MinMaxMedianWrappers) {
  const std::vector<uint32_t> ints = RandomInts(999, 11, 84);
  const std::vector<float> floats = ToFloats(ints);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  ASSERT_OK_AND_ASSIGN(uint32_t max_v, MaxValue(&device_, attr, 11));
  EXPECT_EQ(max_v, static_cast<uint32_t>(
                       *std::max_element(floats.begin(), floats.end())));
  ASSERT_OK_AND_ASSIGN(uint32_t min_v, MinValue(&device_, attr, 11));
  EXPECT_EQ(min_v, static_cast<uint32_t>(
                       *std::min_element(floats.begin(), floats.end())));
  ASSERT_OK_AND_ASSIGN(uint32_t med_v, MedianValue(&device_, attr, 11));
  ASSERT_OK_AND_ASSIGN(float cpu_med, cpu::Median(floats));
  EXPECT_EQ(med_v, static_cast<uint32_t>(cpu_med));
}

TEST_F(KthLargestTest, MaskedSelectionMatchesCpu) {
  // Figure 9's experiment: median over an 80%-selectivity subset.
  const std::vector<uint32_t> ints = RandomInts(2000, 12, 85);
  const std::vector<float> floats = ToFloats(ints);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);

  // Select records with value >= p20 via a GPU selection.
  std::vector<float> sorted = floats;
  std::sort(sorted.begin(), sorted.end());
  const float p20 = sorted[sorted.size() / 5];
  ASSERT_OK_AND_ASSIGN(
      uint64_t selected,
      CompareSelect(&device_, attr, gpu::CompareOp::kGreaterEqual, p20));
  StencilSelection sel;
  sel.valid_value = 1;
  sel.count = selected;

  std::vector<uint8_t> cpu_mask;
  cpu::PredicateScan(floats, gpu::CompareOp::kGreaterEqual, p20, &cpu_mask);

  KthOptions options;
  options.selection = sel;
  const uint64_t k = selected / 2;
  ASSERT_OK_AND_ASSIGN(uint32_t gpu_v,
                       KthLargest(&device_, attr, 12, k, options));
  ASSERT_OK_AND_ASSIGN(float cpu_v,
                       cpu::MaskedQuickSelectLargest(floats, cpu_mask, k));
  EXPECT_EQ(gpu_v, static_cast<uint32_t>(cpu_v));
}

TEST_F(KthLargestTest, MaskedRunsSamePassCountAsUnmasked) {
  // The paper's Section 5.9 Test 3 observation: selectivity does not change
  // the GPU cost.
  const std::vector<uint32_t> ints = RandomInts(1000, 10, 86);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  device_.ResetCounters();
  ASSERT_OK(KthLargest(&device_, attr, 10, 500).status());
  const uint64_t unmasked_passes = device_.counters().passes;

  ASSERT_OK_AND_ASSIGN(
      uint64_t selected,
      CompareSelect(&device_, attr, gpu::CompareOp::kGreaterEqual, 100.0));
  ASSERT_GT(selected, 0u);
  StencilSelection sel{1, selected};
  KthOptions options;
  options.selection = sel;
  device_.ResetCounters();
  ASSERT_OK(KthLargest(&device_, attr, 10, selected / 2 + 1, options).status());
  EXPECT_EQ(device_.counters().passes, unmasked_passes);
}

TEST_F(KthLargestTest, ValidatesArguments) {
  const std::vector<uint32_t> ints = {1, 2, 3};
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  EXPECT_FALSE(KthLargest(&device_, attr, 0, 1).ok());
  EXPECT_FALSE(KthLargest(&device_, attr, 25, 1).ok());
  EXPECT_FALSE(KthLargest(&device_, attr, 4, 0).ok());
  EXPECT_FALSE(KthLargest(&device_, attr, 4, 4).ok());  // k > n
  EXPECT_FALSE(MedianValue(&device_, attr, 0).ok());
}

TEST_F(KthLargestTest, BatchMatchesIndividualQueries) {
  const std::vector<uint32_t> ints = RandomInts(2000, 12, 87);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  const std::vector<uint64_t> ks = {1, 500, 1000, 1500, 2000};
  ASSERT_OK_AND_ASSIGN(std::vector<uint32_t> batch,
                       KthLargestBatch(&device_, attr, 12, ks));
  ASSERT_EQ(batch.size(), ks.size());
  for (size_t i = 0; i < ks.size(); ++i) {
    ASSERT_OK_AND_ASSIGN(uint32_t single,
                         KthLargest(&device_, attr, 12, ks[i]));
    EXPECT_EQ(batch[i], single) << "k=" << ks[i];
  }
}

TEST_F(KthLargestTest, BatchSharesTheCopyPass) {
  const std::vector<uint32_t> ints = RandomInts(500, 10, 88);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  const std::vector<uint64_t> ks = {1, 100, 250, 400};
  device_.ResetCounters();
  ASSERT_OK(KthLargestBatch(&device_, attr, 10, ks).status());
  // 1 shared copy + |ks| * bit_width comparison passes.
  EXPECT_EQ(device_.counters().passes, 1u + ks.size() * 10u);

  device_.ResetCounters();
  for (uint64_t k : ks) {
    ASSERT_OK(KthLargest(&device_, attr, 10, k).status());
  }
  EXPECT_EQ(device_.counters().passes, ks.size() * (1u + 10u));
}

TEST_F(KthLargestTest, BatchValidatesEveryK) {
  const std::vector<uint32_t> ints = {1, 2, 3};
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  EXPECT_FALSE(KthLargestBatch(&device_, attr, 4, {}).ok());
  EXPECT_FALSE(KthLargestBatch(&device_, attr, 4, {1, 0}).ok());
  EXPECT_FALSE(KthLargestBatch(&device_, attr, 4, {1, 4}).ok());
}

TEST_F(KthLargestTest, ExtremeBitWidths) {
  // 1-bit data.
  std::vector<uint32_t> bits = {0, 1, 1, 0, 1};
  AttributeBinding attr1 = UploadIntAttribute(&device_, bits);
  ASSERT_OK_AND_ASSIGN(uint32_t v1, KthLargest(&device_, attr1, 1, 2));
  EXPECT_EQ(v1, 1u);
  ASSERT_OK_AND_ASSIGN(uint32_t v4, KthLargest(&device_, attr1, 1, 4));
  EXPECT_EQ(v4, 0u);
  // Full 24-bit data.
  std::vector<uint32_t> big = {(1u << 24) - 1, 12345, 0, (1u << 23)};
  AttributeBinding attr2 = UploadIntAttribute(&device_, big);
  ASSERT_OK_AND_ASSIGN(uint32_t top, KthLargest(&device_, attr2, 24, 1));
  EXPECT_EQ(top, (1u << 24) - 1);
  ASSERT_OK_AND_ASSIGN(uint32_t second, KthLargest(&device_, attr2, 24, 2));
  EXPECT_EQ(second, 1u << 23);
}

}  // namespace
}  // namespace core
}  // namespace gpudb
