#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/spatial.h"
#include "src/gpu/device.h"
#include "tests/test_util.h"

namespace gpudb {
namespace core {
namespace {

class SpatialTest : public ::testing::Test {
 protected:
  SpatialTest() : device_(64, 64) {}

  /// Uploads a grid of points covering [-range, range]^2.
  gpu::TextureId UploadGrid(int range) {
    xs_.clear();
    ys_.clear();
    for (int i = -range; i <= range; ++i) {
      for (int j = -range; j <= range; ++j) {
        xs_.push_back(static_cast<float>(i));
        ys_.push_back(static_cast<float>(j));
      }
    }
    auto tex = gpu::Texture::FromColumns({&xs_, &ys_}, 64);
    EXPECT_TRUE(tex.ok());
    auto id = device_.UploadTexture(std::move(tex).ValueOrDie());
    EXPECT_TRUE(id.ok());
    EXPECT_TRUE(device_.SetViewport(xs_.size()).ok());
    return id.ValueOrDie();
  }

  uint64_t CpuCount(const std::vector<HalfPlane>& planes) const {
    uint64_t n = 0;
    for (size_t i = 0; i < xs_.size(); ++i) {
      n += PointInHalfPlanes(xs_[i], ys_[i], planes) ? 1 : 0;
    }
    return n;
  }

  gpu::Device device_;
  std::vector<float> xs_, ys_;
};

TEST_F(SpatialTest, PolygonToHalfPlanesValidation) {
  // Too few vertices.
  EXPECT_FALSE(ConvexPolygonToHalfPlanes({{0, 0}, {1, 0}}).ok());
  // Clockwise square.
  EXPECT_FALSE(
      ConvexPolygonToHalfPlanes({{0, 0}, {0, 1}, {1, 1}, {1, 0}}).ok());
  // Non-convex (dart).
  EXPECT_FALSE(
      ConvexPolygonToHalfPlanes({{0, 0}, {4, 0}, {1, 1}, {0, 4}}).ok());
  // Proper CCW triangle.
  EXPECT_TRUE(ConvexPolygonToHalfPlanes({{0, 0}, {2, 0}, {1, 2}}).ok());
}

TEST_F(SpatialTest, HalfPlanesContainPolygonInterior) {
  ASSERT_OK_AND_ASSIGN(
      std::vector<HalfPlane> planes,
      ConvexPolygonToHalfPlanes({{-2, -2}, {2, -2}, {2, 2}, {-2, 2}}));
  EXPECT_TRUE(PointInHalfPlanes(0, 0, planes));
  EXPECT_TRUE(PointInHalfPlanes(2, 2, planes));  // boundary inclusive
  EXPECT_FALSE(PointInHalfPlanes(3, 0, planes));
  EXPECT_FALSE(PointInHalfPlanes(0, -2.5f, planes));
}

TEST_F(SpatialTest, SquareSelectionExactCount) {
  const gpu::TextureId grid = UploadGrid(10);  // 21x21 = 441 points
  ASSERT_OK_AND_ASSIGN(
      StencilSelection sel,
      SelectPointsInConvexPolygon(&device_, grid,
                                  {{-3, -3}, {3, -3}, {3, 3}, {-3, 3}}));
  // Inclusive 7x7 lattice.
  EXPECT_EQ(sel.count, 49u);
}

TEST_F(SpatialTest, TriangleSelectionMatchesCpu) {
  const gpu::TextureId grid = UploadGrid(12);
  ASSERT_OK_AND_ASSIGN(
      std::vector<HalfPlane> planes,
      ConvexPolygonToHalfPlanes({{-10, -5}, {8, -2}, {-1, 9}}));
  ASSERT_OK_AND_ASSIGN(StencilSelection sel,
                       SelectPointsInConvexRegion(&device_, grid, planes));
  EXPECT_EQ(sel.count, CpuCount(planes));
  EXPECT_GT(sel.count, 0u);
}

TEST_F(SpatialTest, HexagonSelectionMatchesCpuAndStencil) {
  const gpu::TextureId grid = UploadGrid(12);
  const std::vector<std::pair<float, float>> hexagon = {
      {6, 0}, {3, 5}, {-3, 5}, {-6, 0}, {-3, -5}, {3, -5}};
  ASSERT_OK_AND_ASSIGN(std::vector<HalfPlane> planes,
                       ConvexPolygonToHalfPlanes(hexagon));
  ASSERT_OK_AND_ASSIGN(StencilSelection sel,
                       SelectPointsInConvexPolygon(&device_, grid, hexagon));
  EXPECT_EQ(sel.count, CpuCount(planes));
  // Per-point stencil check.
  const std::vector<uint8_t> stencil = device_.ReadStencil().ValueOrDie();
  for (size_t i = 0; i < xs_.size(); ++i) {
    EXPECT_EQ(stencil[i] == sel.valid_value,
              PointInHalfPlanes(xs_[i], ys_[i], planes))
        << "point (" << xs_[i] << "," << ys_[i] << ")";
  }
}

TEST_F(SpatialTest, UnboundedIntersectionOfTwoHalfPlanes) {
  const gpu::TextureId grid = UploadGrid(10);
  // x >= 0 AND y >= x  (as a*x + b*y <= c forms).
  const std::vector<HalfPlane> planes = {{-1, 0, 0}, {1, -1, 0}};
  ASSERT_OK_AND_ASSIGN(StencilSelection sel,
                       SelectPointsInConvexRegion(&device_, grid, planes));
  EXPECT_EQ(sel.count, CpuCount(planes));
  EXPECT_FALSE(SelectPointsInConvexRegion(&device_, grid, {}).ok());
}

TEST_F(SpatialTest, EmptyIntersection) {
  const gpu::TextureId grid = UploadGrid(5);
  // x <= -1 AND x >= 1: contradiction.
  const std::vector<HalfPlane> planes = {{1, 0, -1}, {-1, 0, -1}};
  ASSERT_OK_AND_ASSIGN(StencilSelection sel,
                       SelectPointsInConvexRegion(&device_, grid, planes));
  EXPECT_EQ(sel.count, 0u);
}

}  // namespace
}  // namespace core
}  // namespace gpudb
