#include <vector>

#include <gtest/gtest.h>

#include "src/core/eval_cnf.h"
#include "src/cpu/scan.h"
#include "src/db/datagen.h"
#include "src/gpu/device.h"
#include "tests/test_util.h"

namespace gpudb {
namespace core {
namespace {

using gpu::CompareOp;

/// Fixture holding a small table uploaded column-by-column.
class EvalCnfTest : public ::testing::Test {
 protected:
  EvalCnfTest() : device_(64, 64) {
    auto t = db::MakeUniformTable(1500, 8, 3, /*seed=*/71);
    EXPECT_TRUE(t.ok());
    table_ = std::move(t).ValueOrDie();
    for (size_t c = 0; c < table_.num_columns(); ++c) {
      auto tex = table_.ColumnTexture(c, 64);
      EXPECT_TRUE(tex.ok());
      auto id = device_.UploadTexture(std::move(tex).ValueOrDie());
      EXPECT_TRUE(id.ok());
      AttributeBinding b;
      b.texture = id.ValueOrDie();
      b.channel = 0;
      b.encoding = DepthEncoding::ExactInt24();
      bindings_.push_back(b);
    }
    EXPECT_TRUE(device_.SetViewport(table_.num_rows()).ok());
  }

  GpuPredicate Depth(size_t col, CompareOp op, double c) {
    return GpuPredicate::DepthCompare(bindings_[col], op, c);
  }

  /// Cross-checks an EvalCnf result (count + stencil mask) against the CPU
  /// reference for the equivalent predicate::Cnf.
  void CheckAgainstCpu(const std::vector<GpuClause>& gpu_clauses,
                       const predicate::Cnf& cnf) {
    std::vector<uint8_t> cpu_mask;
    auto cpu_count = cpu::CnfScan(table_, cnf, &cpu_mask);
    ASSERT_TRUE(cpu_count.ok());
    auto sel = EvalCnf(&device_, gpu_clauses);
    ASSERT_TRUE(sel.ok()) << sel.status().ToString();
    EXPECT_EQ(sel.ValueOrDie().count, cpu_count.ValueOrDie());
    const std::vector<uint8_t> stencil = device_.ReadStencil().ValueOrDie();
    for (size_t i = 0; i < table_.num_rows(); ++i) {
      EXPECT_EQ(stencil[i] == sel.ValueOrDie().valid_value, cpu_mask[i] == 1)
          << "record " << i;
    }
  }

  predicate::SimplePredicate Simple(size_t col, CompareOp op, float c) {
    predicate::SimplePredicate p;
    p.attr = col;
    p.op = op;
    p.constant = c;
    return p;
  }

  gpu::Device device_;
  db::Table table_;
  std::vector<AttributeBinding> bindings_;
};

TEST_F(EvalCnfTest, SingleClauseSinglePredicate) {
  predicate::Cnf cnf;
  cnf.clauses = {{Simple(0, CompareOp::kGreaterEqual, 100)}};
  CheckAgainstCpu({{Depth(0, CompareOp::kGreaterEqual, 100)}}, cnf);
}

TEST_F(EvalCnfTest, PureConjunctionOddClauses) {
  predicate::Cnf cnf;
  cnf.clauses = {{Simple(0, CompareOp::kGreaterEqual, 64)},
                 {Simple(1, CompareOp::kLess, 192)},
                 {Simple(2, CompareOp::kNotEqual, 7)}};
  std::vector<GpuClause> clauses = {
      {Depth(0, CompareOp::kGreaterEqual, 64)},
      {Depth(1, CompareOp::kLess, 192)},
      {Depth(2, CompareOp::kNotEqual, 7)}};
  CheckAgainstCpu(clauses, cnf);
  // Odd clause count -> valid stencil value 2 (Routine 4.3).
  auto sel = EvalCnf(&device_, clauses);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.ValueOrDie().valid_value, 2);
}

TEST_F(EvalCnfTest, PureConjunctionEvenClauses) {
  predicate::Cnf cnf;
  cnf.clauses = {{Simple(0, CompareOp::kGreaterEqual, 64)},
                 {Simple(1, CompareOp::kLess, 192)}};
  std::vector<GpuClause> clauses = {{Depth(0, CompareOp::kGreaterEqual, 64)},
                                    {Depth(1, CompareOp::kLess, 192)}};
  CheckAgainstCpu(clauses, cnf);
  auto sel = EvalCnf(&device_, clauses);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.ValueOrDie().valid_value, 1);
}

TEST_F(EvalCnfTest, DisjunctionWithinClause) {
  predicate::Cnf cnf;
  cnf.clauses = {{Simple(0, CompareOp::kLess, 50),
                  Simple(0, CompareOp::kGreaterEqual, 200),
                  Simple(1, CompareOp::kEqual, 128)}};
  CheckAgainstCpu({{Depth(0, CompareOp::kLess, 50),
                    Depth(0, CompareOp::kGreaterEqual, 200),
                    Depth(1, CompareOp::kEqual, 128)}},
                  cnf);
}

TEST_F(EvalCnfTest, OverlappingDisjunctsNotDoubleCounted) {
  // Both disjuncts true for most records; the stencil alternation must not
  // bump a record twice within one clause.
  predicate::Cnf cnf;
  cnf.clauses = {{Simple(0, CompareOp::kGreaterEqual, 0),
                  Simple(0, CompareOp::kLess, 255)}};
  CheckAgainstCpu({{Depth(0, CompareOp::kGreaterEqual, 0),
                    Depth(0, CompareOp::kLess, 255)}},
                  cnf);
}

TEST_F(EvalCnfTest, MixedCnfFourClauses) {
  predicate::Cnf cnf;
  cnf.clauses = {
      {Simple(0, CompareOp::kGreaterEqual, 32),
       Simple(1, CompareOp::kLess, 32)},
      {Simple(1, CompareOp::kLessEqual, 224)},
      {Simple(2, CompareOp::kGreater, 16),
       Simple(0, CompareOp::kEqual, 77)},
      {Simple(2, CompareOp::kLess, 240)}};
  std::vector<GpuClause> clauses = {
      {Depth(0, CompareOp::kGreaterEqual, 32), Depth(1, CompareOp::kLess, 32)},
      {Depth(1, CompareOp::kLessEqual, 224)},
      {Depth(2, CompareOp::kGreater, 16), Depth(0, CompareOp::kEqual, 77)},
      {Depth(2, CompareOp::kLess, 240)}};
  CheckAgainstCpu(clauses, cnf);
}

TEST_F(EvalCnfTest, SemilinearPredicateInsideClause) {
  // Clause mixing a depth comparison with an attribute-attribute predicate
  // (a0 < a1 rewritten as semi-linear).
  auto pair_tex = table_.ToTexture({0, 1}, 64);
  ASSERT_TRUE(pair_tex.ok());
  auto pair_id = device_.UploadTexture(std::move(pair_tex).ValueOrDie());
  ASSERT_TRUE(pair_id.ok());

  predicate::SimplePredicate attr_pred;
  attr_pred.attr = 0;
  attr_pred.op = CompareOp::kLess;
  attr_pred.rhs_is_attr = true;
  attr_pred.rhs_attr = 1;

  predicate::Cnf cnf;
  cnf.clauses = {{Simple(0, CompareOp::kGreaterEqual, 10)},
                 {attr_pred, Simple(2, CompareOp::kLess, 8)}};

  std::vector<GpuClause> clauses = {
      {Depth(0, CompareOp::kGreaterEqual, 10)},
      {GpuPredicate::Semilinear(
           pair_id.ValueOrDie(),
           SemilinearQuery::AttrCompare(0, CompareOp::kLess, 1)),
       Depth(2, CompareOp::kLess, 8)}};
  CheckAgainstCpu(clauses, cnf);
}

TEST_F(EvalCnfTest, DnfSingleTermConjunction) {
  predicate::Cnf cnf;
  cnf.clauses = {{Simple(0, CompareOp::kGreaterEqual, 64)},
                 {Simple(1, CompareOp::kLess, 192)}};
  std::vector<uint8_t> cpu_mask;
  auto cpu_count = cpu::CnfScan(table_, cnf, &cpu_mask);
  ASSERT_TRUE(cpu_count.ok());
  // Same query as one DNF term: (a AND b).
  std::vector<GpuTerm> terms = {{Depth(0, CompareOp::kGreaterEqual, 64),
                                 Depth(1, CompareOp::kLess, 192)}};
  auto sel = EvalDnf(&device_, terms);
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  EXPECT_EQ(sel.ValueOrDie().valid_value, 0);
  EXPECT_EQ(sel.ValueOrDie().count, cpu_count.ValueOrDie());
  const std::vector<uint8_t> stencil = device_.ReadStencil().ValueOrDie();
  for (size_t i = 0; i < table_.num_rows(); ++i) {
    EXPECT_EQ(stencil[i] == 0, cpu_mask[i] == 1) << "record " << i;
  }
}

TEST_F(EvalCnfTest, DnfDisjunctionOfConjunctions) {
  // (a >= 200 AND b < 64) OR (c > 128 AND a < 32) OR b = 7
  predicate::Dnf dnf;
  dnf.terms = {{Simple(0, CompareOp::kGreaterEqual, 200),
                Simple(1, CompareOp::kLess, 64)},
               {Simple(2, CompareOp::kGreater, 128),
                Simple(0, CompareOp::kLess, 32)},
               {Simple(1, CompareOp::kEqual, 7)}};
  std::vector<GpuTerm> terms = {
      {Depth(0, CompareOp::kGreaterEqual, 200), Depth(1, CompareOp::kLess, 64)},
      {Depth(2, CompareOp::kGreater, 128), Depth(0, CompareOp::kLess, 32)},
      {Depth(1, CompareOp::kEqual, 7)}};
  auto sel = EvalDnf(&device_, terms);
  ASSERT_TRUE(sel.ok()) << sel.status().ToString();
  uint64_t expected = 0;
  const std::vector<uint8_t> stencil = device_.ReadStencil().ValueOrDie();
  for (size_t row = 0; row < table_.num_rows(); ++row) {
    const bool want = dnf.EvaluateRow(table_, row);
    expected += want ? 1 : 0;
    EXPECT_EQ(stencil[row] == 0, want) << "record " << row;
  }
  EXPECT_EQ(sel.ValueOrDie().count, expected);
}

TEST_F(EvalCnfTest, DnfOverlappingTermsNotDoubleCounted) {
  // Terms overlap heavily; already-selected records must stay at 0.
  std::vector<GpuTerm> terms = {
      {Depth(0, CompareOp::kGreaterEqual, 0)},   // everything
      {Depth(0, CompareOp::kGreaterEqual, 128)}  // subset
  };
  auto sel = EvalDnf(&device_, terms);
  ASSERT_TRUE(sel.ok());
  EXPECT_EQ(sel.ValueOrDie().count, table_.num_rows());
}

TEST_F(EvalCnfTest, DnfAgreesWithCnfOnConvertedExpression) {
  // Same boolean function through both normal forms.
  using predicate::Expr;
  auto e = Expr::Or(
      Expr::And(Expr::Pred(0, CompareOp::kGreaterEqual, 100.0f),
                Expr::Pred(1, CompareOp::kLess, 200.0f)),
      Expr::And(Expr::Pred(2, CompareOp::kGreater, 50.0f),
                Expr::Not(Expr::Pred(0, CompareOp::kEqual, 77.0f))));
  ASSERT_OK_AND_ASSIGN(predicate::Cnf cnf, predicate::ToCnf(e));
  ASSERT_OK_AND_ASSIGN(predicate::Dnf dnf, predicate::ToDnf(e));

  auto lower = [&](const predicate::SimplePredicate& p) {
    return Depth(p.attr, p.op, p.constant);
  };
  std::vector<GpuClause> clauses;
  for (const auto& clause : cnf.clauses) {
    GpuClause c;
    for (const auto& p : clause) c.push_back(lower(p));
    clauses.push_back(c);
  }
  std::vector<GpuTerm> terms;
  for (const auto& term : dnf.terms) {
    GpuTerm t;
    for (const auto& p : term) t.push_back(lower(p));
    terms.push_back(t);
  }
  auto cnf_sel = EvalCnf(&device_, clauses);
  ASSERT_TRUE(cnf_sel.ok());
  auto dnf_sel = EvalDnf(&device_, terms);
  ASSERT_TRUE(dnf_sel.ok());
  EXPECT_EQ(cnf_sel.ValueOrDie().count, dnf_sel.ValueOrDie().count);
}

TEST_F(EvalCnfTest, DnfRejectsBadInput) {
  EXPECT_FALSE(EvalDnf(&device_, {}).ok());
  EXPECT_FALSE(EvalDnf(&device_, {GpuTerm{}}).ok());
  std::vector<GpuPredicate> huge(255, Depth(0, CompareOp::kAlways, 0));
  EXPECT_FALSE(EvalDnf(&device_, {huge}).ok());
}

TEST_F(EvalCnfTest, RejectsEmptyInput) {
  EXPECT_FALSE(EvalCnf(&device_, {}).ok());
  EXPECT_FALSE(EvalCnf(&device_, {GpuClause{}}).ok());
}

TEST_F(EvalCnfTest, ConjunctionFastPathMatchesGeneralPath) {
  std::vector<GpuPredicate> conjuncts = {
      Depth(0, CompareOp::kGreaterEqual, 64),
      Depth(1, CompareOp::kLess, 192),
      Depth(2, CompareOp::kNotEqual, 7)};
  std::vector<GpuClause> clauses;
  for (const auto& p : conjuncts) clauses.push_back({p});

  auto general = EvalCnf(&device_, clauses);
  ASSERT_TRUE(general.ok());
  auto fast = EvalConjunction(&device_, conjuncts);
  ASSERT_TRUE(fast.ok());
  EXPECT_EQ(fast.ValueOrDie().count, general.ValueOrDie().count);
}

TEST_F(EvalCnfTest, ConjunctionFastPathUsesFewerPasses) {
  std::vector<GpuPredicate> conjuncts = {
      Depth(0, CompareOp::kGreaterEqual, 64),
      Depth(1, CompareOp::kLess, 192)};
  std::vector<GpuClause> clauses = {{conjuncts[0]}, {conjuncts[1]}};

  device_.ResetCounters();
  ASSERT_TRUE(EvalCnf(&device_, clauses).ok());
  const uint64_t general_passes = device_.counters().passes;
  device_.ResetCounters();
  ASSERT_TRUE(EvalConjunction(&device_, conjuncts).ok());
  const uint64_t fast_passes = device_.counters().passes;
  EXPECT_LT(fast_passes, general_passes);
}

TEST_F(EvalCnfTest, ConjunctionRejectsTooManyConjuncts) {
  std::vector<GpuPredicate> many(255,
                                 Depth(0, CompareOp::kGreaterEqual, 0));
  EXPECT_FALSE(EvalConjunction(&device_, many).ok());
  EXPECT_FALSE(EvalConjunction(&device_, {}).ok());
}

}  // namespace
}  // namespace core
}  // namespace gpudb
