#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/cpu/aggregate.h"
#include "src/cpu/quickselect.h"
#include "src/cpu/scan.h"
#include "src/cpu/xeon_model.h"
#include "src/db/datagen.h"
#include "tests/test_util.h"

namespace gpudb {
namespace cpu {
namespace {

using gpu::CompareOp;
using testing_util::RandomInts;
using testing_util::ToFloats;

TEST(PredicateScanTest, AllOperatorsMatchNaive) {
  const std::vector<float> values = ToFloats(RandomInts(500, 8, 3));
  const float c = 100.0f;
  for (CompareOp op : {CompareOp::kLess, CompareOp::kLessEqual,
                       CompareOp::kEqual, CompareOp::kGreaterEqual,
                       CompareOp::kGreater, CompareOp::kNotEqual,
                       CompareOp::kAlways, CompareOp::kNever}) {
    std::vector<uint8_t> mask;
    const uint64_t count = PredicateScan(values, op, c, &mask);
    uint64_t expected = 0;
    for (size_t i = 0; i < values.size(); ++i) {
      const bool want = gpu::EvalCompare(op, values[i], c);
      EXPECT_EQ(mask[i], want ? 1 : 0);
      expected += want;
    }
    EXPECT_EQ(count, expected) << gpu::ToString(op);
  }
}

TEST(RangeScanTest, InclusiveBounds) {
  const std::vector<float> values = {1, 5, 10, 15, 20};
  std::vector<uint8_t> mask;
  const uint64_t count = RangeScan(values, 5.0f, 15.0f, &mask);
  EXPECT_EQ(count, 3u);
  EXPECT_EQ(mask[0], 0);
  EXPECT_EQ(mask[1], 1);
  EXPECT_EQ(mask[4], 0);
}

TEST(AttrCompareScanTest, MatchesPerRow) {
  const std::vector<float> a = ToFloats(RandomInts(300, 8, 5));
  const std::vector<float> b = ToFloats(RandomInts(300, 8, 6));
  std::vector<uint8_t> mask;
  const uint64_t count = AttrCompareScan(a, b, CompareOp::kGreater, &mask);
  uint64_t expected = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(mask[i], a[i] > b[i] ? 1 : 0);
    expected += a[i] > b[i];
  }
  EXPECT_EQ(count, expected);
}

TEST(SemilinearScanTest, DotProductPredicate) {
  const std::vector<float> a = ToFloats(RandomInts(200, 8, 7));
  const std::vector<float> b = ToFloats(RandomInts(200, 8, 8));
  std::vector<uint8_t> mask;
  const uint64_t count = SemilinearScan({&a, &b}, {2.0f, -1.0f, 0, 0},
                                        CompareOp::kGreaterEqual, 50.0f,
                                        &mask);
  uint64_t expected = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    const bool want = 2.0f * a[i] - b[i] >= 50.0f;
    EXPECT_EQ(mask[i], want ? 1 : 0);
    expected += want;
  }
  EXPECT_EQ(count, expected);
}

TEST(CnfScanTest, MatchesExpressionEvaluation) {
  ASSERT_OK_AND_ASSIGN(db::Table t, db::MakeUniformTable(300, 8, 3, 17));
  using predicate::Expr;
  auto e = Expr::And(
      Expr::Or(Expr::Pred(0, CompareOp::kLess, 100.0f),
               Expr::Pred(1, CompareOp::kGreaterEqual, 200.0f)),
      Expr::PredAttr(1, CompareOp::kLessEqual, 2));
  ASSERT_OK_AND_ASSIGN(predicate::Cnf cnf, predicate::ToCnf(e));
  std::vector<uint8_t> mask;
  ASSERT_OK_AND_ASSIGN(uint64_t count, CnfScan(t, cnf, &mask));
  uint64_t expected = 0;
  for (size_t row = 0; row < t.num_rows(); ++row) {
    const bool want = e->EvaluateRow(t, row);
    EXPECT_EQ(mask[row], want ? 1 : 0) << "row " << row;
    expected += want;
  }
  EXPECT_EQ(count, expected);
}

TEST(CnfScanTest, RejectsBadCnf) {
  ASSERT_OK_AND_ASSIGN(db::Table t, db::MakeUniformTable(10, 8, 1, 1));
  predicate::Cnf empty_clause;
  empty_clause.clauses.push_back({});
  std::vector<uint8_t> mask;
  EXPECT_FALSE(CnfScan(t, empty_clause, &mask).ok());

  predicate::Cnf bad_column;
  predicate::SimplePredicate p;
  p.attr = 9;
  bad_column.clauses.push_back({p});
  EXPECT_FALSE(CnfScan(t, bad_column, &mask).ok());
}

TEST(QuickSelectTest, MatchesSortedOrder) {
  const std::vector<float> values = ToFloats(RandomInts(1000, 12, 21));
  std::vector<float> sorted = values;
  std::sort(sorted.begin(), sorted.end(), std::greater<float>());
  for (uint64_t k : {uint64_t{1}, uint64_t{2}, uint64_t{10}, uint64_t{500},
                     uint64_t{999}, uint64_t{1000}}) {
    ASSERT_OK_AND_ASSIGN(float v, QuickSelectLargest(values, k));
    EXPECT_EQ(v, sorted[k - 1]) << "k=" << k;
  }
}

TEST(QuickSelectTest, SmallestMatchesSortedOrder) {
  const std::vector<float> values = ToFloats(RandomInts(1000, 12, 22));
  std::vector<float> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  for (uint64_t k : {uint64_t{1}, uint64_t{3}, uint64_t{500}, uint64_t{1000}}) {
    ASSERT_OK_AND_ASSIGN(float v, QuickSelectSmallest(values, k));
    EXPECT_EQ(v, sorted[k - 1]) << "k=" << k;
  }
}

TEST(QuickSelectTest, HandlesDuplicateHeavyInput) {
  std::vector<float> values(500, 7.0f);
  for (size_t i = 0; i < 100; ++i) values[i] = 3.0f;
  // 400 sevens then 100 threes in descending order.
  ASSERT_OK_AND_ASSIGN(float v400, QuickSelectLargest(values, 400));
  EXPECT_EQ(v400, 7.0f);
  ASSERT_OK_AND_ASSIGN(float v401, QuickSelectLargest(values, 401));
  EXPECT_EQ(v401, 3.0f);
  ASSERT_OK_AND_ASSIGN(float w, QuickSelectSmallest(values, 50));
  EXPECT_EQ(w, 3.0f);
}

TEST(QuickSelectTest, ValidatesArguments) {
  EXPECT_FALSE(QuickSelectLargest({}, 1).ok());
  EXPECT_FALSE(QuickSelectLargest({1.0f}, 0).ok());
  EXPECT_FALSE(QuickSelectLargest({1.0f}, 2).ok());
}

TEST(MedianTest, OddAndEvenLengths) {
  EXPECT_EQ(Median({3, 1, 2}).ValueOrDie(), 2.0f);
  // Even length: (n+1)/2 = 2nd smallest.
  EXPECT_EQ(Median({4, 1, 3, 2}).ValueOrDie(), 2.0f);
  EXPECT_FALSE(Median({}).ok());
}

TEST(MaskedQuickSelectTest, SelectsOnlyMaskedValues) {
  const std::vector<float> values = {10, 20, 30, 40, 50};
  const std::vector<uint8_t> mask = {1, 0, 1, 0, 1};  // {10, 30, 50}
  EXPECT_EQ(MaskedQuickSelectLargest(values, mask, 1).ValueOrDie(), 50.0f);
  EXPECT_EQ(MaskedQuickSelectLargest(values, mask, 2).ValueOrDie(), 30.0f);
  EXPECT_EQ(MaskedQuickSelectLargest(values, mask, 3).ValueOrDie(), 10.0f);
  EXPECT_FALSE(MaskedQuickSelectLargest(values, mask, 4).ok());
  EXPECT_FALSE(MaskedQuickSelectLargest(values, {1, 0}, 1).ok());
  EXPECT_FALSE(
      MaskedQuickSelectLargest(values, {0, 0, 0, 0, 0}, 1).ok());
}

TEST(AggregateTest, SumIntExact) {
  const std::vector<uint32_t> ints = RandomInts(10000, 16, 31);
  const std::vector<float> values = ToFloats(ints);
  uint64_t expected = 0;
  for (uint32_t v : ints) expected += v;
  EXPECT_EQ(SumInt(values), expected);
}

TEST(AggregateTest, MaskedSumAndAvg) {
  const std::vector<float> values = {1, 2, 3, 4};
  const std::vector<uint8_t> mask = {1, 0, 1, 0};
  EXPECT_EQ(MaskedSumInt(values, mask), 4u);
  EXPECT_EQ(CountMask(mask), 2u);
  EXPECT_DOUBLE_EQ(MaskedAvgInt(values, mask).ValueOrDie(), 2.0);
  EXPECT_FALSE(MaskedAvgInt(values, {0, 0, 0, 0}).ok());
  EXPECT_FALSE(MaskedAvgInt(values, {1, 0}).ok());
}

TEST(AggregateTest, MinMax) {
  EXPECT_EQ(MinValue({3, 1, 2}).ValueOrDie(), 1.0f);
  EXPECT_EQ(MaxValue({3, 1, 2}).ValueOrDie(), 3.0f);
  EXPECT_FALSE(MinValue({}).ok());
  EXPECT_FALSE(MaxValue({}).ok());
}

TEST(XeonModelTest, CalibratedCostsMatchDesignDoc) {
  XeonModel model;
  // DESIGN.md section 6: ~6.0 ms per million-record predicate scan, etc.
  EXPECT_NEAR(model.PredicateScanMs(1000000), 6.0, 0.1);
  EXPECT_NEAR(model.RangeScanMs(1000000), 11.1, 0.2);
  EXPECT_NEAR(model.SemilinearScanMs(1000000), 10.0, 0.2);
  EXPECT_NEAR(model.SumMs(1000000), 1.39, 0.05);
  EXPECT_NEAR(model.QuickSelectMs(250000), 6.25, 0.2);
}

TEST(XeonModelTest, SortIsNLogN) {
  XeonModel model;
  EXPECT_EQ(model.SortMs(1), 0.0);
  // 1M floats at 5 cycles per element per level: ~35.7 ms.
  EXPECT_NEAR(model.SortMs(1'000'000), 35.7, 0.5);
  // Doubling n slightly more than doubles the time.
  EXPECT_GT(model.SortMs(2'000'000), 2.0 * model.SortMs(1'000'000));
}

TEST(XeonModelTest, MultiAttributeScalesLinearly) {
  XeonModel model;
  const double one = model.MultiAttributeScanMs(1000000, 1);
  EXPECT_NEAR(model.MultiAttributeScanMs(1000000, 4), 4 * one, 1e-9);
}

TEST(XeonModelTest, MaskedQuickSelectClosesToFull) {
  // Paper Section 5.9 Test 3: the masked CPU baseline costs about the same
  // as the full run (copy + select over survivors).
  XeonModel model;
  const double full = model.QuickSelectMs(250000);
  const double masked = model.MaskedQuickSelectMs(250000, 200000);
  EXPECT_GT(masked, 0.8 * full);
  EXPECT_LT(masked, 1.2 * full);
}

}  // namespace
}  // namespace cpu
}  // namespace gpudb
