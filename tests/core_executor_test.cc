#include <vector>

#include <gtest/gtest.h>

#include "src/core/executor.h"
#include "src/cpu/aggregate.h"
#include "src/cpu/quickselect.h"
#include "src/cpu/scan.h"
#include "src/db/datagen.h"
#include "src/gpu/device.h"
#include "tests/test_util.h"

namespace gpudb {
namespace core {
namespace {

using gpu::CompareOp;
using predicate::Expr;
using predicate::ExprPtr;

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() : device_(100, 100) {
    auto t = db::MakeTcpIpTable(5000, /*seed=*/101);
    EXPECT_TRUE(t.ok());
    table_ = std::move(t).ValueOrDie();
    auto exec = Executor::Make(&device_, &table_);
    EXPECT_TRUE(exec.ok());
    executor_ = std::move(exec).ValueOrDie();
  }

  /// CPU reference count for an expression.
  uint64_t CpuCount(const ExprPtr& e) {
    uint64_t n = 0;
    for (size_t row = 0; row < table_.num_rows(); ++row) {
      n += e->EvaluateRow(table_, row) ? 1 : 0;
    }
    return n;
  }

  gpu::Device device_;
  db::Table table_;
  std::unique_ptr<Executor> executor_;
};

TEST_F(ExecutorTest, MakeValidatesInputs) {
  EXPECT_FALSE(Executor::Make(nullptr, &table_).ok());
  EXPECT_FALSE(Executor::Make(&device_, nullptr).ok());
  db::Table empty;
  EXPECT_FALSE(Executor::Make(&device_, &empty).ok());
  gpu::Device tiny(10, 10);
  auto r = Executor::Make(&tiny, &table_);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ExecutorTest, CountWithNullWhereIsAllRows) {
  ASSERT_OK_AND_ASSIGN(uint64_t n, executor_->Count(nullptr));
  EXPECT_EQ(n, table_.num_rows());
}

TEST_F(ExecutorTest, SinglePredicateCount) {
  const float p40 = table_.column(0).Percentile(0.4);
  ExprPtr e = Expr::Pred(0, CompareOp::kGreater, p40);
  ASSERT_OK_AND_ASSIGN(uint64_t n, executor_->Count(e));
  EXPECT_EQ(n, CpuCount(e));
}

TEST_F(ExecutorTest, ComplexBooleanCount) {
  ExprPtr e = Expr::And(
      Expr::Or(Expr::Pred(0, CompareOp::kGreaterEqual, 10000.0f),
               Expr::Not(Expr::Pred(1, CompareOp::kEqual, 0.0f))),
      Expr::Pred(2, CompareOp::kLess, 50000.0f));
  ASSERT_OK_AND_ASSIGN(uint64_t n, executor_->Count(e));
  EXPECT_EQ(n, CpuCount(e));
}

TEST_F(ExecutorTest, AttrAttrPredicateCount) {
  // data_loss < retransmissions -- a cross-attribute comparison lowered to
  // a semi-linear query.
  ExprPtr e = Expr::PredAttr(1, CompareOp::kLess, 3);
  ASSERT_OK_AND_ASSIGN(uint64_t n, executor_->Count(e));
  EXPECT_EQ(n, CpuCount(e));
}

TEST_F(ExecutorTest, SelectBitmapMatchesRowEvaluation) {
  ExprPtr e = Expr::Between(0, 5000.0f, 200000.0f);
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> bitmap, executor_->SelectBitmap(e));
  ASSERT_EQ(bitmap.size(), table_.num_rows());
  for (size_t row = 0; row < table_.num_rows(); ++row) {
    EXPECT_EQ(bitmap[row] == 1, e->EvaluateRow(table_, row)) << row;
  }
}

TEST_F(ExecutorTest, SelectRowIdsSortedAndCorrect) {
  ExprPtr e = Expr::Pred(3, CompareOp::kGreater, 5.0f);
  ASSERT_OK_AND_ASSIGN(std::vector<uint32_t> rows, executor_->SelectRowIds(e));
  uint32_t prev = 0;
  bool first = true;
  for (uint32_t row : rows) {
    EXPECT_TRUE(e->EvaluateRow(table_, row));
    if (!first) {
      EXPECT_GT(row, prev);
    }
    prev = row;
    first = false;
  }
  EXPECT_EQ(rows.size(), CpuCount(e));
}

TEST_F(ExecutorTest, AggregatesWithoutWhere) {
  const auto& values = table_.column(0).values();
  ASSERT_OK_AND_ASSIGN(double sum,
                       executor_->Aggregate(AggregateKind::kSum, "data_count"));
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(cpu::SumInt(values)));
  ASSERT_OK_AND_ASSIGN(double max_v,
                       executor_->Aggregate(AggregateKind::kMax, "data_count"));
  EXPECT_DOUBLE_EQ(max_v, table_.column(0).max());
  ASSERT_OK_AND_ASSIGN(double min_v,
                       executor_->Aggregate(AggregateKind::kMin, "data_count"));
  EXPECT_DOUBLE_EQ(min_v, table_.column(0).min());
  ASSERT_OK_AND_ASSIGN(
      double count, executor_->Aggregate(AggregateKind::kCount, "data_count"));
  EXPECT_DOUBLE_EQ(count, static_cast<double>(table_.num_rows()));
  ASSERT_OK_AND_ASSIGN(double med,
                       executor_->Aggregate(AggregateKind::kMedian,
                                            "data_count"));
  ASSERT_OK_AND_ASSIGN(float cpu_med, cpu::Median(values));
  EXPECT_DOUBLE_EQ(med, static_cast<double>(cpu_med));
}

TEST_F(ExecutorTest, AggregateWithWhere) {
  ExprPtr e = Expr::Pred(1, CompareOp::kGreater, 0.0f);  // lossy flows
  std::vector<uint8_t> mask(table_.num_rows());
  for (size_t row = 0; row < table_.num_rows(); ++row) {
    mask[row] = e->EvaluateRow(table_, row) ? 1 : 0;
  }
  ASSERT_OK_AND_ASSIGN(
      double sum, executor_->Aggregate(AggregateKind::kSum, "data_count", e));
  EXPECT_DOUBLE_EQ(sum, static_cast<double>(cpu::MaskedSumInt(
                            table_.column(0).values(), mask)));
  ASSERT_OK_AND_ASSIGN(
      double avg, executor_->Aggregate(AggregateKind::kAvg, "data_count", e));
  ASSERT_OK_AND_ASSIGN(double cpu_avg, cpu::MaskedAvgInt(
                           table_.column(0).values(), mask));
  EXPECT_DOUBLE_EQ(avg, cpu_avg);
}

TEST_F(ExecutorTest, KthLargestWithAndWithoutWhere) {
  const auto& values = table_.column(0).values();
  ASSERT_OK_AND_ASSIGN(uint32_t top10, executor_->KthLargest("data_count", 10));
  ASSERT_OK_AND_ASSIGN(float cpu_top10, cpu::QuickSelectLargest(values, 10));
  EXPECT_EQ(top10, static_cast<uint32_t>(cpu_top10));

  ExprPtr e = Expr::Pred(2, CompareOp::kGreaterEqual, 1000.0f);
  std::vector<uint8_t> mask(table_.num_rows());
  for (size_t row = 0; row < table_.num_rows(); ++row) {
    mask[row] = e->EvaluateRow(table_, row) ? 1 : 0;
  }
  ASSERT_OK_AND_ASSIGN(uint32_t masked,
                       executor_->KthLargest("data_count", 25, e));
  ASSERT_OK_AND_ASSIGN(float cpu_masked,
                       cpu::MaskedQuickSelectLargest(values, mask, 25));
  EXPECT_EQ(masked, static_cast<uint32_t>(cpu_masked));
}

TEST_F(ExecutorTest, RangeCountMatchesBetween) {
  ASSERT_OK_AND_ASSIGN(uint64_t fast,
                       executor_->RangeCount("data_count", 1000.0, 100000.0));
  ExprPtr e = Expr::Between(0, 1000.0f, 100000.0f);
  EXPECT_EQ(fast, CpuCount(e));
}

TEST_F(ExecutorTest, SemilinearCountMatchesCpu) {
  std::vector<std::pair<std::string, float>> weighted = {
      {"data_count", 0.001f},
      {"data_loss", -1.0f},
      {"flow_rate", 0.0005f},
      {"retransmissions", 2.0f}};
  ASSERT_OK_AND_ASSIGN(
      uint64_t n,
      executor_->SemilinearCount(weighted, CompareOp::kGreater, 50.0f));
  std::vector<uint8_t> mask;
  const uint64_t expected = cpu::SemilinearScan(
      {&table_.column(0).values(), &table_.column(1).values(),
       &table_.column(2).values(), &table_.column(3).values()},
      {0.001f, -1.0f, 0.0005f, 2.0f}, CompareOp::kGreater, 50.0f, &mask);
  EXPECT_EQ(n, expected);
}

TEST_F(ExecutorTest, WideSemilinearCountAcrossTwoTextures) {
  // Six weighted terms (columns repeat with different weights): split
  // across texture units 0 and 1 (paper Section 4.1.2's long vectors).
  const std::vector<std::pair<std::string, float>> weighted = {
      {"data_count", 0.001f},  {"data_loss", -2.0f},
      {"flow_rate", 0.0005f},  {"retransmissions", 3.0f},
      {"data_loss", 1.5f},     {"retransmissions", -1.0f}};
  ASSERT_OK_AND_ASSIGN(
      uint64_t n,
      executor_->SemilinearCount(weighted, CompareOp::kGreater, 40.0f));
  uint64_t expected = 0;
  for (size_t row = 0; row < table_.num_rows(); ++row) {
    const float dot = 0.001f * table_.column(0).value(row) -
                      2.0f * table_.column(1).value(row) +
                      0.0005f * table_.column(2).value(row) +
                      3.0f * table_.column(3).value(row) +
                      1.5f * table_.column(1).value(row) -
                      1.0f * table_.column(3).value(row);
    expected += dot > 40.0f ? 1 : 0;
  }
  EXPECT_EQ(n, expected);
}

TEST_F(ExecutorTest, ErrorPaths) {
  EXPECT_FALSE(executor_->Aggregate(AggregateKind::kSum, "no_such").ok());
  EXPECT_FALSE(executor_->KthLargest("no_such", 1).ok());
  EXPECT_FALSE(executor_->RangeCount("no_such", 0, 1).ok());
  EXPECT_FALSE(executor_->SemilinearCount({}, CompareOp::kLess, 0).ok());
  // Nine weighted columns exceed the two-texture-unit limit.
  EXPECT_FALSE(
      executor_
          ->SemilinearCount({{"data_count", 1.0f},
                             {"data_loss", 1.0f},
                             {"flow_rate", 1.0f},
                             {"retransmissions", 1.0f},
                             {"data_count", 1.0f},
                             {"data_loss", 1.0f},
                             {"flow_rate", 1.0f},
                             {"retransmissions", 1.0f},
                             {"data_count", 1.0f}},
                            CompareOp::kLess, 0)
          .ok());
  // Invalid column index in the expression.
  EXPECT_FALSE(
      executor_->Count(Expr::Pred(9, CompareOp::kEqual, 0.0f)).ok());
}

TEST_F(ExecutorTest, SelectTableMaterializesMatchingRows) {
  ExprPtr e = Expr::Pred(1, CompareOp::kGreater, 0.0f);  // lossy flows
  ASSERT_OK_AND_ASSIGN(db::Table result, executor_->SelectTable(e));
  ASSERT_OK_AND_ASSIGN(std::vector<uint32_t> rows, executor_->SelectRowIds(e));
  ASSERT_EQ(result.num_rows(), rows.size());
  ASSERT_EQ(result.num_columns(), table_.num_columns());
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t c = 0; c < table_.num_columns(); ++c) {
      EXPECT_EQ(result.column(c).value(i), table_.column(c).value(rows[i]))
          << "row " << i << " col " << c;
    }
  }
  // The materialized table is itself queryable.
  gpu::Device device2(100, 100);
  ASSERT_OK_AND_ASSIGN(auto exec2, Executor::Make(&device2, &result));
  ASSERT_OK_AND_ASSIGN(uint64_t still_lossy,
                       exec2->Count(Expr::Pred(1, CompareOp::kGreater, 0.0f)));
  EXPECT_EQ(still_lossy, result.num_rows());
}

TEST_F(ExecutorTest, TopKMatchesSortedReference) {
  const auto& values = table_.column(0).values();
  std::vector<std::pair<uint32_t, uint32_t>> reference;
  for (uint32_t row = 0; row < values.size(); ++row) {
    reference.emplace_back(row, static_cast<uint32_t>(values[row]));
  }
  std::sort(reference.begin(), reference.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second > b.second
                                          : a.first < b.first;
            });
  for (uint64_t k : {uint64_t{1}, uint64_t{10}, uint64_t{100}}) {
    ASSERT_OK_AND_ASSIGN(auto top, executor_->TopK("data_count", k));
    ASSERT_EQ(top.size(), k);
    for (size_t i = 0; i < k; ++i) {
      EXPECT_EQ(top[i].first, reference[i].first) << "k=" << k << " i=" << i;
      EXPECT_EQ(top[i].second, reference[i].second);
    }
  }
  EXPECT_FALSE(executor_->TopK("data_count", 0).ok());
  EXPECT_FALSE(executor_->TopK("no_such", 5).ok());
}

TEST_F(ExecutorTest, OrderByRowIdsMatchesStableSort) {
  ASSERT_OK_AND_ASSIGN(std::vector<uint32_t> asc,
                       executor_->OrderByRowIds("data_count"));
  ASSERT_EQ(asc.size(), table_.num_rows());
  // Reference: sort row ids by (value, row) ascending -- the executor's
  // documented tie-break.
  std::vector<uint32_t> expected(table_.num_rows());
  for (uint32_t i = 0; i < expected.size(); ++i) expected[i] = i;
  const auto& vals = table_.column(0).values();
  std::sort(expected.begin(), expected.end(),
            [&](uint32_t a, uint32_t b) {
              return vals[a] != vals[b] ? vals[a] < vals[b] : a < b;
            });
  EXPECT_EQ(asc, expected);

  ASSERT_OK_AND_ASSIGN(std::vector<uint32_t> desc,
                       executor_->OrderByRowIds("data_count", false));
  std::reverse(expected.begin(), expected.end());
  EXPECT_EQ(desc, expected);
  EXPECT_FALSE(executor_->OrderByRowIds("no_such").ok());
}

TEST_F(ExecutorTest, GroupByRollup) {
  // retransmissions has a small domain; roll up average data_count per
  // retransmission count.
  std::map<uint32_t, std::pair<uint64_t, uint64_t>> expected;
  for (size_t row = 0; row < table_.num_rows(); ++row) {
    const auto key = static_cast<uint32_t>(table_.column(3).value(row));
    expected[key].first += 1;
    expected[key].second += static_cast<uint64_t>(table_.column(0).value(row));
  }
  ASSERT_OK_AND_ASSIGN(
      std::vector<GroupByRow> rows,
      executor_->GroupBy("retransmissions", "data_count",
                         AggregateKind::kAvg));
  ASSERT_EQ(rows.size(), expected.size());
  for (const GroupByRow& row : rows) {
    ASSERT_TRUE(expected.count(row.key));
    EXPECT_EQ(row.count, expected[row.key].first);
    EXPECT_DOUBLE_EQ(row.aggregate,
                     static_cast<double>(expected[row.key].second) /
                         static_cast<double>(expected[row.key].first));
  }
  EXPECT_FALSE(executor_->GroupBy("no_such", "data_count",
                                  AggregateKind::kSum).ok());
}

TEST_F(ExecutorTest, QuantilesMatchSortedColumn) {
  std::vector<float> sorted = table_.column(0).values();
  std::sort(sorted.begin(), sorted.end());
  ASSERT_OK_AND_ASSIGN(std::vector<uint32_t> quartiles,
                       executor_->Quantiles("data_count", 4));
  ASSERT_EQ(quartiles.size(), 4u);
  const size_t n = sorted.size();
  for (int i = 0; i < 4; ++i) {
    const size_t rank = ((i + 1) * n + 3) / 4;
    EXPECT_EQ(quartiles[i], static_cast<uint32_t>(sorted[rank - 1]))
        << "quartile " << i;
  }
  EXPECT_FALSE(executor_->Quantiles("no_such", 4).ok());
}

TEST_F(ExecutorTest, DisjunctiveQuerySurvivesCnfBlowupViaDnf) {
  // An OR of 14 two-predicate conjunctions: CNF distribution would need
  // 2^14 = 16384 clauses (beyond the 4096-clause guard), so the executor's
  // normal-form planner must route it through EvalDnf -- and still match
  // brute-force evaluation.
  ExprPtr e;
  for (int i = 0; i < 14; ++i) {
    const auto a = static_cast<size_t>(i % 4);
    const auto b = static_cast<size_t>((i + 1) % 4);
    ExprPtr pattern =
        Expr::And(Expr::Pred(a, CompareOp::kGreater, float(100 * i)),
                  Expr::Pred(b, CompareOp::kLessEqual, float(50 * i + 25)));
    e = e == nullptr ? pattern : Expr::Or(e, pattern);
  }
  ASSERT_FALSE(predicate::ToCnf(e).ok());  // CNF path is impossible
  ASSERT_OK_AND_ASSIGN(uint64_t n, executor_->Count(e));
  EXPECT_EQ(n, CpuCount(e));
}

TEST_F(ExecutorTest, ConjunctiveQuerySurvivesDnfBlowupViaCnf) {
  // The dual: an AND of 14 two-predicate disjunctions only converts to CNF.
  ExprPtr e;
  for (int i = 0; i < 14; ++i) {
    const auto a = static_cast<size_t>(i % 4);
    const auto b = static_cast<size_t>((i + 1) % 4);
    ExprPtr pattern =
        Expr::Or(Expr::Pred(a, CompareOp::kGreater, float(100 * i)),
                 Expr::Pred(b, CompareOp::kLessEqual, float(50 * i + 25)));
    e = e == nullptr ? pattern : Expr::And(e, pattern);
  }
  ASSERT_FALSE(predicate::ToDnf(e).ok());
  ASSERT_OK_AND_ASSIGN(uint64_t n, executor_->Count(e));
  EXPECT_EQ(n, CpuCount(e));
}

TEST_F(ExecutorTest, ColumnTexturesUploadedOnce) {
  ExprPtr e = Expr::Pred(0, CompareOp::kGreater, 100.0f);
  ASSERT_OK(executor_->Count(e).status());
  const uint64_t after_first = device_.counters().bytes_uploaded;
  ASSERT_OK(executor_->Count(e).status());
  EXPECT_EQ(device_.counters().bytes_uploaded, after_first);
}

}  // namespace
}  // namespace core
}  // namespace gpudb
