#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "src/db/binary_io.h"
#include "src/db/datagen.h"
#include "tests/test_util.h"

namespace gpudb {
namespace db {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(BinaryIoTest, RoundTripsMixedTypes) {
  Table original;
  ASSERT_OK_AND_ASSIGN(Column ints,
                       Column::MakeInt24("counts", {0, 1, 12345, (1u << 24) - 1}));
  ASSERT_OK_AND_ASSIGN(Column floats,
                       Column::MakeFloat("scores", {-1.5f, 0.0f, 3.25f, 1e6f}));
  ASSERT_OK(original.AddColumn(std::move(ints)));
  ASSERT_OK(original.AddColumn(std::move(floats)));

  const std::string path = TempPath("gpudb_binary_roundtrip.gpdb");
  ASSERT_OK(WriteBinary(original, path));
  ASSERT_OK_AND_ASSIGN(Table reloaded, ReadBinary(path));
  ASSERT_EQ(reloaded.num_rows(), original.num_rows());
  ASSERT_EQ(reloaded.num_columns(), original.num_columns());
  for (size_t c = 0; c < original.num_columns(); ++c) {
    EXPECT_EQ(reloaded.column(c).name(), original.column(c).name());
    EXPECT_EQ(reloaded.column(c).type(), original.column(c).type());
    for (size_t row = 0; row < original.num_rows(); ++row) {
      EXPECT_EQ(reloaded.column(c).value(row), original.column(c).value(row));
    }
  }
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RoundTripsGeneratedWorkload) {
  ASSERT_OK_AND_ASSIGN(Table table, MakeTcpIpTable(5000));
  const std::string path = TempPath("gpudb_binary_tcpip.gpdb");
  ASSERT_OK(WriteBinary(table, path));
  ASSERT_OK_AND_ASSIGN(Table reloaded, ReadBinary(path));
  EXPECT_EQ(reloaded.num_rows(), 5000u);
  EXPECT_EQ(reloaded.column(0).bit_width(), table.column(0).bit_width());
  EXPECT_EQ(reloaded.column(2).value(4321), table.column(2).value(4321));
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RejectsCorruptInput) {
  EXPECT_FALSE(ReadBinary("/no/such/file.gpdb").ok());
  const std::string path = TempPath("gpudb_binary_corrupt.gpdb");
  {
    std::ofstream out(path, std::ios::binary);
    out << "NOPE this is not a table";
  }
  EXPECT_FALSE(ReadBinary(path).ok());
  {
    // Valid magic, truncated header.
    std::ofstream out(path, std::ios::binary);
    out << "GPDB";
  }
  EXPECT_FALSE(ReadBinary(path).ok());
  std::remove(path.c_str());

  Table empty;
  EXPECT_FALSE(WriteBinary(empty, TempPath("x.gpdb")).ok());
}

TEST(BinaryIoTest, RejectsTruncatedColumnData) {
  ASSERT_OK_AND_ASSIGN(Table table, MakeUniformTable(100, 8, 2));
  const std::string path = TempPath("gpudb_binary_truncated.gpdb");
  ASSERT_OK(WriteBinary(table, path));
  // Chop the file short.
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const auto size = static_cast<size_t>(in.tellg());
  in.seekg(0);
  std::string bytes(size, '\0');
  in.read(bytes.data(), static_cast<std::streamsize>(size));
  in.close();
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(size / 2));
  }
  EXPECT_FALSE(ReadBinary(path).ok());
  std::remove(path.c_str());
}

TEST(TableFormatTest, FormatRowsAlignsAndTruncates) {
  Table t;
  ASSERT_OK_AND_ASSIGN(Column a, Column::MakeInt24("id", {7, 42, 100000}));
  ASSERT_OK_AND_ASSIGN(Column b, Column::MakeFloat("score", {1.5f, -2.0f, 0.25f}));
  ASSERT_OK(t.AddColumn(std::move(a)));
  ASSERT_OK(t.AddColumn(std::move(b)));
  const std::string text = t.FormatRows({2, 0}, /*max_rows=*/10);
  EXPECT_NE(text.find("id"), std::string::npos);
  EXPECT_NE(text.find("100000"), std::string::npos);
  EXPECT_NE(text.find("1.5"), std::string::npos);
  EXPECT_EQ(text.find("42"), std::string::npos);  // row 1 not requested
  const std::string truncated = t.FormatRows({0, 1, 2}, /*max_rows=*/2);
  EXPECT_NE(truncated.find("(1 more)"), std::string::npos);
}

}  // namespace
}  // namespace db
}  // namespace gpudb
