#include <cmath>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/kmeans.h"
#include "src/gpu/device.h"
#include "tests/test_util.h"

namespace gpudb {
namespace core {
namespace {

/// Generates `per_blob` integer points around each center (well separated so
/// boundary rounding cannot flip any assignment between GPU half-plane and
/// CPU distance evaluation).
struct Blobs {
  std::vector<float> xs_f, ys_f;
  std::vector<uint32_t> xs, ys;
};

Blobs MakeBlobs(const std::vector<std::pair<float, float>>& centers,
                size_t per_blob, double sigma, uint64_t seed) {
  Random rng(seed);
  Blobs out;
  for (const auto& [cx, cy] : centers) {
    for (size_t i = 0; i < per_blob; ++i) {
      const double x = std::clamp(cx + sigma * rng.NextGaussian(), 0.0, 1023.0);
      const double y = std::clamp(cy + sigma * rng.NextGaussian(), 0.0, 1023.0);
      out.xs.push_back(static_cast<uint32_t>(x));
      out.ys.push_back(static_cast<uint32_t>(y));
      out.xs_f.push_back(static_cast<float>(out.xs.back()));
      out.ys_f.push_back(static_cast<float>(out.ys.back()));
    }
  }
  return out;
}

class KMeansTest : public ::testing::Test {
 protected:
  KMeansTest() : device_(64, 64) {}

  gpu::TextureId Upload(const Blobs& blobs) {
    auto tex = gpu::Texture::FromColumns({&blobs.xs_f, &blobs.ys_f}, 64);
    EXPECT_TRUE(tex.ok());
    auto id = device_.UploadTexture(std::move(tex).ValueOrDie());
    EXPECT_TRUE(id.ok());
    EXPECT_TRUE(device_.SetViewport(blobs.xs.size()).ok());
    return id.ValueOrDie();
  }

  gpu::Device device_;
};

TEST_F(KMeansTest, RecoversWellSeparatedClusters) {
  const std::vector<std::pair<float, float>> truth = {
      {150, 150}, {800, 200}, {400, 850}};
  const Blobs blobs = MakeBlobs(truth, 400, 30.0, 311);
  const gpu::TextureId tex = Upload(blobs);
  const std::vector<std::pair<float, float>> init = {
      {100, 100}, {900, 100}, {500, 900}};
  ASSERT_OK_AND_ASSIGN(KMeansResult r,
                       KMeans2D(&device_, tex, 10, init, 20));
  EXPECT_TRUE(r.converged);
  ASSERT_EQ(r.centroids.size(), 3u);
  for (size_t j = 0; j < 3; ++j) {
    EXPECT_NEAR(r.centroids[j].first, truth[j].first, 10.0) << j;
    EXPECT_NEAR(r.centroids[j].second, truth[j].second, 10.0) << j;
    EXPECT_EQ(r.cluster_sizes[j], 400u);
  }
}

TEST_F(KMeansTest, MatchesCpuReferenceExactly) {
  const std::vector<std::pair<float, float>> truth = {{200, 300}, {700, 600}};
  const Blobs blobs = MakeBlobs(truth, 500, 40.0, 312);
  const gpu::TextureId tex = Upload(blobs);
  const std::vector<std::pair<float, float>> init = {{100, 100}, {900, 900}};
  ASSERT_OK_AND_ASSIGN(KMeansResult gpu_r,
                       KMeans2D(&device_, tex, 10, init, 15));
  const KMeansResult cpu_r = CpuKMeans2D(blobs.xs, blobs.ys, init, 15);
  EXPECT_EQ(gpu_r.converged, cpu_r.converged);
  EXPECT_EQ(gpu_r.iterations_run, cpu_r.iterations_run);
  ASSERT_EQ(gpu_r.centroids.size(), cpu_r.centroids.size());
  for (size_t j = 0; j < gpu_r.centroids.size(); ++j) {
    EXPECT_EQ(gpu_r.cluster_sizes[j], cpu_r.cluster_sizes[j]) << j;
    EXPECT_NEAR(gpu_r.centroids[j].first, cpu_r.centroids[j].first, 1e-3) << j;
    EXPECT_NEAR(gpu_r.centroids[j].second, cpu_r.centroids[j].second, 1e-3)
        << j;
  }
}

TEST_F(KMeansTest, AssignmentIsAPartition) {
  // Cluster sizes must sum to the point count every run, even with awkward
  // centroids (the asymmetric tie rule guarantees a partition).
  const Blobs blobs = MakeBlobs({{300, 300}, {320, 300}, {310, 320}}, 300,
                                60.0, 313);
  const gpu::TextureId tex = Upload(blobs);
  const std::vector<std::pair<float, float>> init = {
      {300, 300}, {320, 300}, {310, 320}};
  ASSERT_OK_AND_ASSIGN(KMeansResult r, KMeans2D(&device_, tex, 10, init, 3));
  uint64_t total = 0;
  for (uint64_t size : r.cluster_sizes) total += size;
  EXPECT_EQ(total, blobs.xs.size());
}

TEST_F(KMeansTest, EmptyClusterKeepsCentroid) {
  const Blobs blobs = MakeBlobs({{100, 100}}, 200, 10.0, 314);
  const gpu::TextureId tex = Upload(blobs);
  // Second centroid far from all data: its cell stays empty.
  const std::vector<std::pair<float, float>> init = {{100, 100}, {1000, 1000}};
  ASSERT_OK_AND_ASSIGN(KMeansResult r, KMeans2D(&device_, tex, 10, init, 5));
  EXPECT_EQ(r.cluster_sizes[1], 0u);
  EXPECT_FLOAT_EQ(r.centroids[1].first, 1000.0f);
  EXPECT_FLOAT_EQ(r.centroids[1].second, 1000.0f);
  EXPECT_GT(r.cluster_sizes[0], 0u);
}

TEST_F(KMeansTest, ValidatesArguments) {
  const Blobs blobs = MakeBlobs({{100, 100}}, 10, 5.0, 315);
  const gpu::TextureId tex = Upload(blobs);
  EXPECT_FALSE(KMeans2D(&device_, tex, 10, {{1, 1}}, 5).ok());       // k < 2
  EXPECT_FALSE(KMeans2D(&device_, tex, 0, {{1, 1}, {2, 2}}, 5).ok());
  EXPECT_FALSE(KMeans2D(&device_, tex, 25, {{1, 1}, {2, 2}}, 5).ok());
  EXPECT_FALSE(KMeans2D(&device_, tex, 10, {{1, 1}, {2, 2}}, 0).ok());
}

}  // namespace
}  // namespace core
}  // namespace gpudb
