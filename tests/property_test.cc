#include <algorithm>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/accumulator.h"
#include "src/core/compare.h"
#include "src/core/depth_encoding.h"
#include "src/core/kth_largest.h"
#include "src/core/range.h"
#include "src/cpu/quickselect.h"
#include "src/cpu/scan.h"
#include "src/gpu/device.h"
#include "tests/test_util.h"

namespace gpudb {
namespace core {
namespace {

using testing_util::RandomInts;
using testing_util::ToFloats;
using testing_util::UploadIntAttribute;

// ---------------------------------------------------------------------------
// Property: KthLargest equals the sorted-order reference for every (bits, n,
// k-fraction) combination.
// ---------------------------------------------------------------------------

using KthParam = std::tuple<int /*bits*/, int /*n*/, double /*k_fraction*/>;

class KthLargestProperty : public ::testing::TestWithParam<KthParam> {};

TEST_P(KthLargestProperty, MatchesSortedReference) {
  const auto [bits, n, k_fraction] = GetParam();
  const std::vector<uint32_t> ints =
      RandomInts(n, bits, /*seed=*/1000 + bits * 7 + n);
  gpu::Device device(64, 64);
  AttributeBinding attr = UploadIntAttribute(&device, ints);

  std::vector<uint32_t> sorted = ints;
  std::sort(sorted.begin(), sorted.end(), std::greater<uint32_t>());
  const uint64_t k = std::max<uint64_t>(
      1, static_cast<uint64_t>(k_fraction * static_cast<double>(n)));

  auto result = KthLargest(&device, attr, bits, k);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.ValueOrDie(), sorted[k - 1])
      << "bits=" << bits << " n=" << n << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, KthLargestProperty,
    ::testing::Combine(::testing::Values(1, 4, 8, 12, 19, 24),
                       ::testing::Values(100, 999, 2500),
                       ::testing::Values(0.001, 0.25, 0.5, 0.75, 1.0)));

TEST_P(KthLargestProperty, DirectKthSmallestAgreesWithIdentityForm) {
  // The paper's "inverted comparison" k-th smallest (Section 4.3.2) must
  // agree with the (n-k+1)-th-largest identity across the same sweep.
  const auto [bits, n, k_fraction] = GetParam();
  const std::vector<uint32_t> ints =
      RandomInts(n, bits, /*seed=*/5000 + bits * 3 + n);
  gpu::Device device(64, 64);
  AttributeBinding attr = UploadIntAttribute(&device, ints);
  const uint64_t k = std::max<uint64_t>(
      1, static_cast<uint64_t>(k_fraction * static_cast<double>(n)));
  auto direct = KthSmallestDirect(&device, attr, bits, k);
  auto identity = KthSmallest(&device, attr, bits, k);
  ASSERT_TRUE(direct.ok()) << direct.status().ToString();
  ASSERT_TRUE(identity.ok()) << identity.status().ToString();
  EXPECT_EQ(direct.ValueOrDie(), identity.ValueOrDie())
      << "bits=" << bits << " n=" << n << " k=" << k;
}

// ---------------------------------------------------------------------------
// Property: Accumulator computes the exact sum for every bit width.
// ---------------------------------------------------------------------------

class AccumulatorProperty : public ::testing::TestWithParam<int> {};

TEST_P(AccumulatorProperty, ExactSumAtEveryBitWidth) {
  const int bits = GetParam();
  const std::vector<uint32_t> ints = RandomInts(2000, bits, 2000 + bits);
  gpu::Device device(64, 64);
  AttributeBinding attr = UploadIntAttribute(&device, ints);
  uint64_t expected = 0;
  for (uint32_t v : ints) expected += v;
  auto sum = Accumulate(&device, attr.texture, 0, bits);
  ASSERT_TRUE(sum.ok()) << sum.status().ToString();
  EXPECT_EQ(sum.ValueOrDie(), expected) << "bits=" << bits;
}

INSTANTIATE_TEST_SUITE_P(Sweep, AccumulatorProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 16, 20, 24));

// ---------------------------------------------------------------------------
// Property: predicate counts match the CPU scan for every operator and
// selectivity target.
// ---------------------------------------------------------------------------

using PredParam = std::tuple<gpu::CompareOp, double /*percentile*/>;

class PredicateProperty : public ::testing::TestWithParam<PredParam> {};

TEST_P(PredicateProperty, CountMatchesCpuAtTargetSelectivity) {
  const auto [op, percentile] = GetParam();
  const std::vector<uint32_t> ints = RandomInts(3000, 12, 77);
  const std::vector<float> floats = ToFloats(ints);
  std::vector<float> sorted = floats;
  std::sort(sorted.begin(), sorted.end());
  const float threshold =
      sorted[static_cast<size_t>(percentile * (sorted.size() - 1))];

  gpu::Device device(64, 64);
  AttributeBinding attr = UploadIntAttribute(&device, ints);
  std::vector<uint8_t> mask;
  const uint64_t expected = cpu::PredicateScan(floats, op, threshold, &mask);
  auto count = Compare(&device, attr, op, threshold);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count.ValueOrDie(), expected)
      << gpu::ToString(op) << " @p" << percentile;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PredicateProperty,
    ::testing::Combine(::testing::Values(gpu::CompareOp::kLess,
                                         gpu::CompareOp::kLessEqual,
                                         gpu::CompareOp::kEqual,
                                         gpu::CompareOp::kGreaterEqual,
                                         gpu::CompareOp::kGreater,
                                         gpu::CompareOp::kNotEqual),
                       ::testing::Values(0.0, 0.2, 0.5, 0.8, 1.0)));

// ---------------------------------------------------------------------------
// Property: range counts match the CPU scan for every percentile window.
// ---------------------------------------------------------------------------

using RangeParam = std::tuple<double /*lo_pct*/, double /*hi_pct*/>;

class RangeProperty : public ::testing::TestWithParam<RangeParam> {};

TEST_P(RangeProperty, CountMatchesCpuScan) {
  const auto [lo_pct, hi_pct] = GetParam();
  if (lo_pct > hi_pct) GTEST_SKIP();
  const std::vector<uint32_t> ints = RandomInts(3000, 14, 88);
  const std::vector<float> floats = ToFloats(ints);
  std::vector<float> sorted = floats;
  std::sort(sorted.begin(), sorted.end());
  const float lo = sorted[static_cast<size_t>(lo_pct * (sorted.size() - 1))];
  const float hi = sorted[static_cast<size_t>(hi_pct * (sorted.size() - 1))];

  gpu::Device device(64, 64);
  AttributeBinding attr = UploadIntAttribute(&device, ints);
  std::vector<uint8_t> mask;
  const uint64_t expected = cpu::RangeScan(floats, lo, hi, &mask);
  auto count = RangeSelect(&device, attr, lo, hi);
  ASSERT_TRUE(count.ok()) << count.status().ToString();
  EXPECT_EQ(count.ValueOrDie(), expected)
      << "window [p" << lo_pct << ", p" << hi_pct << "]";
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RangeProperty,
    ::testing::Combine(::testing::Values(0.0, 0.2, 0.5),
                       ::testing::Values(0.5, 0.8, 1.0)));

// ---------------------------------------------------------------------------
// Property: the exact integer depth encoding round-trips every boundary and
// random 24-bit value through quantization.
// ---------------------------------------------------------------------------

class DepthEncodingProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(DepthEncodingProperty, QuantizedIdentity) {
  const uint32_t v = GetParam();
  const DepthEncoding enc = DepthEncoding::ExactInt24();
  EXPECT_EQ(enc.EncodeQuantized(v), v);
}

INSTANTIATE_TEST_SUITE_P(Boundaries, DepthEncodingProperty,
                         ::testing::Values(0u, 1u, 2u, 255u, 256u, 65535u,
                                           65536u, (1u << 20), (1u << 23) - 1,
                                           (1u << 23), (1u << 23) + 1,
                                           (1u << 24) - 2, (1u << 24) - 1));

TEST(DepthEncodingRandomProperty, QuantizedIdentityRandomSample) {
  const DepthEncoding enc = DepthEncoding::ExactInt24();
  Random rng(55);
  for (int i = 0; i < 20000; ++i) {
    const auto v = static_cast<uint32_t>(rng.NextUint64(1u << 24));
    ASSERT_EQ(enc.EncodeQuantized(v), v) << v;
  }
}

// ---------------------------------------------------------------------------
// Property: GPU and CPU order statistics agree on adversarial distributions.
// ---------------------------------------------------------------------------

TEST(KthLargestAdversarial, AllEqualValues) {
  const std::vector<uint32_t> ints(500, 12345);
  gpu::Device device(64, 64);
  AttributeBinding attr = UploadIntAttribute(&device, ints);
  for (uint64_t k : {uint64_t{1}, uint64_t{250}, uint64_t{500}}) {
    ASSERT_OK_AND_ASSIGN(uint32_t v, KthLargest(&device, attr, 14, k));
    EXPECT_EQ(v, 12345u);
  }
}

TEST(KthLargestAdversarial, StrictlyIncreasingSequence) {
  std::vector<uint32_t> ints(1000);
  for (size_t i = 0; i < ints.size(); ++i) ints[i] = static_cast<uint32_t>(i);
  gpu::Device device(64, 64);
  AttributeBinding attr = UploadIntAttribute(&device, ints);
  for (uint64_t k : {uint64_t{1}, uint64_t{10}, uint64_t{999}}) {
    ASSERT_OK_AND_ASSIGN(uint32_t v, KthLargest(&device, attr, 10, k));
    EXPECT_EQ(v, 1000 - k);
  }
}

TEST(KthLargestAdversarial, PowerOfTwoClusters) {
  // Values sitting exactly on bit boundaries stress the MSB-first search.
  std::vector<uint32_t> ints;
  for (int bit = 0; bit < 16; ++bit) {
    for (int rep = 0; rep < 10; ++rep) {
      ints.push_back(1u << bit);
      ints.push_back((1u << bit) - 1);
    }
  }
  gpu::Device device(64, 64);
  AttributeBinding attr = UploadIntAttribute(&device, ints);
  std::vector<uint32_t> sorted = ints;
  std::sort(sorted.begin(), sorted.end(), std::greater<uint32_t>());
  for (uint64_t k = 1; k <= sorted.size(); k += 37) {
    ASSERT_OK_AND_ASSIGN(uint32_t v, KthLargest(&device, attr, 16, k));
    EXPECT_EQ(v, sorted[k - 1]) << "k=" << k;
  }
}

}  // namespace
}  // namespace core
}  // namespace gpudb
