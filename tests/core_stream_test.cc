#include <algorithm>
#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/stream.h"
#include "src/cpu/quickselect.h"
#include "src/gpu/device.h"
#include "tests/test_util.h"

namespace gpudb {
namespace core {
namespace {

using testing_util::RandomInts;

class StreamWindowTest : public ::testing::Test {
 protected:
  StreamWindowTest() : device_(32, 32) {}
  gpu::Device device_;
};

TEST_F(StreamWindowTest, MakeValidatesArguments) {
  EXPECT_FALSE(StreamWindow::Make(nullptr, 10, 8).ok());
  EXPECT_FALSE(StreamWindow::Make(&device_, 0, 8).ok());
  EXPECT_FALSE(StreamWindow::Make(&device_, 2000, 8).ok());  // > 1024 pixels
  EXPECT_FALSE(StreamWindow::Make(&device_, 10, 0).ok());
  EXPECT_FALSE(StreamWindow::Make(&device_, 10, 25).ok());
  EXPECT_TRUE(StreamWindow::Make(&device_, 1024, 8).ok());
}

TEST_F(StreamWindowTest, FillsThenSlides) {
  ASSERT_OK_AND_ASSIGN(StreamWindow window,
                       StreamWindow::Make(&device_, 100, 10));
  EXPECT_EQ(window.size(), 0u);
  EXPECT_FALSE(window.Sum().ok());  // empty window

  ASSERT_OK(window.Push({1, 2, 3}));
  EXPECT_EQ(window.size(), 3u);
  ASSERT_OK_AND_ASSIGN(uint64_t sum, window.Sum());
  EXPECT_EQ(sum, 6u);

  // Fill to capacity and beyond; the oldest records must be evicted.
  std::vector<uint32_t> batch(97, 10);
  ASSERT_OK(window.Push(batch));
  EXPECT_EQ(window.size(), 100u);
  ASSERT_OK_AND_ASSIGN(uint64_t full_sum, window.Sum());
  EXPECT_EQ(full_sum, 6u + 97u * 10u);

  // Push 5 more: evicts {1,2,3} and two 10s.
  ASSERT_OK(window.Push({100, 100, 100, 100, 100}));
  EXPECT_EQ(window.size(), 100u);
  ASSERT_OK_AND_ASSIGN(uint64_t slid_sum, window.Sum());
  EXPECT_EQ(slid_sum, 95u * 10u + 5u * 100u);
}

TEST_F(StreamWindowTest, MatchesDequeReferenceUnderRandomTraffic) {
  constexpr uint64_t kCapacity = 200;
  ASSERT_OK_AND_ASSIGN(StreamWindow window,
                       StreamWindow::Make(&device_, kCapacity, 12));
  std::deque<uint32_t> reference;
  Random rng(251);
  for (int round = 0; round < 20; ++round) {
    const size_t batch_size = 1 + rng.NextUint64(80);
    std::vector<uint32_t> batch(batch_size);
    for (auto& v : batch) {
      v = static_cast<uint32_t>(rng.NextUint64(1u << 12));
    }
    ASSERT_OK(window.Push(batch));
    for (uint32_t v : batch) {
      reference.push_back(v);
      if (reference.size() > kCapacity) reference.pop_front();
    }
    ASSERT_EQ(window.size(), reference.size());

    uint64_t expected_sum = 0;
    for (uint32_t v : reference) expected_sum += v;
    ASSERT_OK_AND_ASSIGN(uint64_t sum, window.Sum());
    ASSERT_EQ(sum, expected_sum) << "round " << round;

    const std::vector<float> ref_floats(reference.begin(), reference.end());
    ASSERT_OK_AND_ASSIGN(uint32_t med, window.Median());
    ASSERT_OK_AND_ASSIGN(float expected_med, cpu::Median(ref_floats));
    ASSERT_EQ(med, static_cast<uint32_t>(expected_med)) << "round " << round;
  }
}

TEST_F(StreamWindowTest, CountAndKthOverWindow) {
  ASSERT_OK_AND_ASSIGN(StreamWindow window,
                       StreamWindow::Make(&device_, 50, 8));
  std::vector<uint32_t> values(50);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<uint32_t>(i);  // 0..49
  }
  ASSERT_OK(window.Push(values));
  ASSERT_OK_AND_ASSIGN(uint64_t count,
                       window.Count(gpu::CompareOp::kGreaterEqual, 40.0));
  EXPECT_EQ(count, 10u);
  ASSERT_OK_AND_ASSIGN(uint32_t top3, window.KthLargest(3));
  EXPECT_EQ(top3, 47u);
}

TEST_F(StreamWindowTest, OversizedBatchKeepsSuffix) {
  ASSERT_OK_AND_ASSIGN(StreamWindow window,
                       StreamWindow::Make(&device_, 10, 8));
  std::vector<uint32_t> batch(25);
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i] = static_cast<uint32_t>(i);  // 0..24
  }
  ASSERT_OK(window.Push(batch));
  EXPECT_EQ(window.size(), 10u);
  // Window must hold 15..24.
  ASSERT_OK_AND_ASSIGN(uint64_t sum, window.Sum());
  uint64_t expected = 0;
  for (uint32_t v = 15; v <= 24; ++v) expected += v;
  EXPECT_EQ(sum, expected);
}

TEST_F(StreamWindowTest, RejectsOutOfDomainValues) {
  ASSERT_OK_AND_ASSIGN(StreamWindow window,
                       StreamWindow::Make(&device_, 10, 4));
  EXPECT_FALSE(window.Push({16}).ok());  // 4-bit domain is [0, 16)
  EXPECT_TRUE(window.Push({15}).ok());
}

TEST_F(StreamWindowTest, IncrementalUploadsOnlyNewRecords) {
  ASSERT_OK_AND_ASSIGN(StreamWindow window,
                       StreamWindow::Make(&device_, 500, 8));
  ASSERT_OK(window.Push(RandomInts(500, 8, 252)));
  device_.ResetCounters();
  ASSERT_OK(window.Push(RandomInts(20, 8, 253)));
  // Only the 20 new records (80 bytes) cross the bus.
  EXPECT_EQ(device_.counters().bytes_uploaded, 20u * 4u);
}

}  // namespace
}  // namespace core
}  // namespace gpudb
