#include <vector>

#include <gtest/gtest.h>

#include "src/core/compare.h"
#include "src/cpu/scan.h"
#include "src/db/column.h"
#include "src/gpu/device.h"
#include "tests/test_util.h"

namespace gpudb {
namespace core {
namespace {

using gpu::CompareOp;
using testing_util::RandomInts;
using testing_util::ToFloats;
using testing_util::UploadIntAttribute;

class CompareTest : public ::testing::Test {
 protected:
  CompareTest() : device_(100, 100) {}
  gpu::Device device_;
};

TEST_F(CompareTest, CopyToDepthStoresExactQuantizedValues) {
  const std::vector<uint32_t> ints = RandomInts(500, 16, 41);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  ASSERT_OK(CopyToDepth(&device_, attr));
  for (size_t i = 0; i < ints.size(); ++i) {
    // Exact encoding: quantized depth == the integer attribute value.
    EXPECT_EQ(device_.framebuffer().depth(i), ints[i]) << "record " << i;
  }
}

TEST_F(CompareTest, CopyToDepthRestoresState) {
  const std::vector<uint32_t> ints = RandomInts(10, 8, 42);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  device_.SetStencilTest(true, CompareOp::kEqual, 7);
  device_.SetDepthTest(true, CompareOp::kLess);
  ASSERT_OK(CopyToDepth(&device_, attr));
  EXPECT_TRUE(device_.state().stencil_test_enabled);
  EXPECT_EQ(device_.state().stencil_ref, 7);
  EXPECT_EQ(device_.state().depth_func, CompareOp::kLess);
  EXPECT_EQ(device_.program(), nullptr);
}

TEST_F(CompareTest, CountsMatchCpuForAllOperators) {
  const std::vector<uint32_t> ints = RandomInts(3000, 10, 43);
  const std::vector<float> floats = ToFloats(ints);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  const double c = 512.0;
  for (CompareOp op : {CompareOp::kLess, CompareOp::kLessEqual,
                       CompareOp::kEqual, CompareOp::kGreaterEqual,
                       CompareOp::kGreater, CompareOp::kNotEqual}) {
    std::vector<uint8_t> mask;
    const uint64_t expected =
        cpu::PredicateScan(floats, op, static_cast<float>(c), &mask);
    ASSERT_OK_AND_ASSIGN(uint64_t count, Compare(&device_, attr, op, c));
    EXPECT_EQ(count, expected) << gpu::ToString(op);
  }
}

TEST_F(CompareTest, SelectMaskMatchesCpuMask) {
  const std::vector<uint32_t> ints = RandomInts(2000, 12, 44);
  const std::vector<float> floats = ToFloats(ints);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  std::vector<uint8_t> cpu_mask;
  const uint64_t expected = cpu::PredicateScan(
      floats, CompareOp::kGreaterEqual, 1000.0f, &cpu_mask);
  ASSERT_OK_AND_ASSIGN(
      uint64_t count,
      CompareSelect(&device_, attr, CompareOp::kGreaterEqual, 1000.0));
  EXPECT_EQ(count, expected);
  const std::vector<uint8_t> stencil = device_.ReadStencil().ValueOrDie();
  for (size_t i = 0; i < ints.size(); ++i) {
    EXPECT_EQ(stencil[i] == 1, cpu_mask[i] == 1) << "record " << i;
  }
}

TEST_F(CompareTest, BoundaryValuesExact) {
  // 0 and 2^24-1 are the depth buffer's extreme codes; comparisons at the
  // boundary must be exact (paper Section 6.1 precision discussion).
  const std::vector<uint32_t> ints = {0, 1, (1u << 24) - 2, (1u << 24) - 1};
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  ASSERT_OK_AND_ASSIGN(uint64_t ge_max,
                       Compare(&device_, attr, CompareOp::kGreaterEqual,
                               (1u << 24) - 1));
  EXPECT_EQ(ge_max, 1u);
  ASSERT_OK_AND_ASSIGN(uint64_t le_zero,
                       Compare(&device_, attr, CompareOp::kLessEqual, 0.0));
  EXPECT_EQ(le_zero, 1u);
  ASSERT_OK_AND_ASSIGN(uint64_t eq_one,
                       Compare(&device_, attr, CompareOp::kEqual, 1.0));
  EXPECT_EQ(eq_one, 1u);
}

TEST_F(CompareTest, CompareLeavesAttributeInDepthBuffer) {
  // KthLargest depends on the comparison passes not disturbing the copied
  // attribute (depth writes are masked off).
  const std::vector<uint32_t> ints = RandomInts(100, 8, 45);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  ASSERT_OK(CopyToDepth(&device_, attr));
  ASSERT_OK_AND_ASSIGN(
      uint64_t c1,
      CompareCount(&device_, CompareOp::kGreaterEqual, 100.0, attr.encoding));
  ASSERT_OK_AND_ASSIGN(
      uint64_t c2,
      CompareCount(&device_, CompareOp::kGreaterEqual, 100.0, attr.encoding));
  EXPECT_EQ(c1, c2);
  for (size_t i = 0; i < ints.size(); ++i) {
    EXPECT_EQ(device_.framebuffer().depth(i), ints[i]);
  }
}

TEST_F(CompareTest, CompareCountHonorsStencilMask) {
  // Masked counting: only records whose stencil equals the mask value are
  // counted (the mechanism behind Figure 9).
  const std::vector<uint32_t> ints = {10, 20, 30, 40};
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  ASSERT_OK(CopyToDepth(&device_, attr));
  // Mark records 0 and 2 as selected.
  device_.ClearStencil(0);
  device_.framebuffer().set_stencil(0, 1);
  device_.framebuffer().set_stencil(2, 1);
  device_.SetStencilTest(true, CompareOp::kEqual, 1);
  device_.SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                       gpu::StencilOp::kKeep);
  ASSERT_OK_AND_ASSIGN(
      uint64_t count,
      CompareCount(&device_, CompareOp::kGreaterEqual, 15.0, attr.encoding));
  EXPECT_EQ(count, 1u);  // only record 2 (30) is selected AND >= 15
}

TEST_F(CompareTest, FloatEncodingApproximatesWithinQuantum) {
  // Float columns: comparisons are exact to one depth quantum of the
  // column's [min,max] span.
  std::vector<float> floats = {0.0f, 0.25f, 0.5f, 0.75f, 1.0f};
  auto tex = gpu::Texture::FromColumns({&floats}, 5);
  ASSERT_OK(tex.status());
  ASSERT_OK_AND_ASSIGN(gpu::TextureId id,
                       device_.UploadTexture(std::move(tex).ValueOrDie()));
  ASSERT_OK(device_.SetViewport(5));
  AttributeBinding attr;
  attr.texture = id;
  attr.channel = 0;
  attr.encoding = DepthEncoding{1.0, 0.0};  // [0,1] identity
  ASSERT_OK_AND_ASSIGN(
      uint64_t count,
      Compare(&device_, attr, CompareOp::kGreaterEqual, 0.5));
  EXPECT_EQ(count, 3u);
}

TEST_F(CompareTest, SingleValuedFloatColumnComparesCorrectly) {
  // min == max makes the affine [min,max]->[0,1] map degenerate. The
  // encoding must still order the value against out-of-domain constants:
  // a zero scale would encode value and constant to the same depth and
  // e.g. "1 > 0" would select nothing (system tables hit this whenever
  // every counter holds the same value).
  std::vector<float> floats = {1.0f, 1.0f, 1.0f};
  ASSERT_OK_AND_ASSIGN(db::Column column,
                       db::Column::MakeFloat("c", floats));
  const DepthEncoding enc = DepthEncoding::ForColumn(column);
  auto tex = gpu::Texture::FromColumns({&floats}, 3);
  ASSERT_OK(tex.status());
  ASSERT_OK_AND_ASSIGN(gpu::TextureId id,
                       device_.UploadTexture(std::move(tex).ValueOrDie()));
  ASSERT_OK(device_.SetViewport(3));
  AttributeBinding attr;
  attr.texture = id;
  attr.channel = 0;
  attr.encoding = enc;
  const struct {
    CompareOp op;
    double constant;
    uint64_t want;
  } cases[] = {
      {CompareOp::kGreater, 0.0, 3},  {CompareOp::kGreater, 1.0, 0},
      {CompareOp::kGreater, 2.0, 0},  {CompareOp::kLess, 2.0, 3},
      {CompareOp::kEqual, 1.0, 3},    {CompareOp::kEqual, 0.0, 0},
      {CompareOp::kEqual, 5.0, 0},    {CompareOp::kGreaterEqual, 1.0, 3},
  };
  for (const auto& c : cases) {
    ASSERT_OK_AND_ASSIGN(uint64_t count,
                         Compare(&device_, attr, c.op, c.constant));
    EXPECT_EQ(count, c.want)
        << "op=" << static_cast<int>(c.op) << " constant=" << c.constant;
  }
}

TEST_F(CompareTest, PassStructureMatchesPaper) {
  // Routine 4.1 is exactly two passes: the copy and the comparison quad.
  const std::vector<uint32_t> ints = RandomInts(100, 8, 46);
  AttributeBinding attr = UploadIntAttribute(&device_, ints);
  device_.ResetCounters();
  ASSERT_OK_AND_ASSIGN(uint64_t count,
                       Compare(&device_, attr, CompareOp::kLess, 100.0));
  (void)count;
  EXPECT_EQ(device_.counters().passes, 2u);
  EXPECT_EQ(device_.counters().occlusion_readbacks, 1u);
  // The copy runs the 3-instruction program on every fragment.
  EXPECT_EQ(device_.counters().pass_log[0].fp_instructions, 3);
  EXPECT_EQ(device_.counters().pass_log[1].fp_instructions, 0);
}

}  // namespace
}  // namespace core
}  // namespace gpudb
