// Tests for the introspection subsystem: catalog registration, dictionary
// columns, system-table queries through the normal Executor path, ANALYZE
// statistics round-trips, estimated-vs-actual EXPLAIN output, and the
// session-driven query log.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/metrics.h"
#include "src/common/profile.h"
#include "src/common/query_log.h"
#include "src/core/analyze.h"
#include "src/db/catalog.h"
#include "src/db/datagen.h"
#include "src/db/stats.h"
#include "src/gpu/device.h"
#include "src/sql/session.h"
#include "tests/test_util.h"

namespace gpudb {
namespace {

class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    QueryLog::Global().set_echo_slow_to_stderr(false);
    auto table = db::MakeUniformTable(2000, 10, /*num_columns=*/2, 7);
    ASSERT_OK(table.status());
    table_ = std::make_unique<db::Table>(std::move(table).ValueOrDie());
    device_ = std::make_unique<gpu::Device>(1000, 1000);
    catalog_ = std::make_unique<db::Catalog>();
    ASSERT_OK(catalog_->Register("t", table_.get()));
    session_ = std::make_unique<sql::Session>(device_.get(), catalog_.get());
  }

  std::unique_ptr<db::Table> table_;
  std::unique_ptr<gpu::Device> device_;
  std::unique_ptr<db::Catalog> catalog_;
  std::unique_ptr<sql::Session> session_;
};

TEST(CatalogTest, RegistrationRules) {
  db::Catalog catalog;
  auto table = db::MakeUniformTable(16, 4);
  ASSERT_OK(table.status());
  EXPECT_OK(catalog.Register("users", &table.ValueOrDie()));
  // Duplicate and reserved names are rejected.
  EXPECT_FALSE(catalog.Register("users", &table.ValueOrDie()).ok());
  EXPECT_FALSE(catalog.Register("gpudb_metrics", &table.ValueOrDie()).ok());
  EXPECT_FALSE(catalog.Register("", &table.ValueOrDie()).ok());
  EXPECT_FALSE(catalog.Register("null_table", nullptr).ok());
  // Lookup distinguishes missing tables with NotFound.
  EXPECT_OK(catalog.Lookup("users").status());
  EXPECT_EQ(catalog.Lookup("nope").status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(db::Catalog::IsSystemTable("gpudb_queries"));
  EXPECT_FALSE(db::Catalog::IsSystemTable("users"));
}

TEST(CatalogTest, DictionaryColumnRoundTrip) {
  auto col = db::Column::MakeDictionary(
      "name", {"gamma", "alpha", "beta", "alpha"});
  ASSERT_OK(col.status());
  const db::Column& c = col.ValueOrDie();
  EXPECT_TRUE(c.has_dictionary());
  EXPECT_EQ(c.type(), db::ColumnType::kInt24);
  ASSERT_EQ(c.dictionary().size(), 3u);  // sorted, deduplicated
  EXPECT_EQ(c.dict_value(0), "gamma");
  EXPECT_EQ(c.dict_value(1), "alpha");
  EXPECT_EQ(c.dict_value(3), "alpha");
  // Codes are order-preserving within the sorted dictionary.
  ASSERT_OK(c.DictCode("beta").status());
  EXPECT_LT(c.DictCode("alpha").ValueOrDie(), c.DictCode("beta").ValueOrDie());
  EXPECT_FALSE(c.DictCode("delta").ok());
}

TEST_F(SessionTest, SystemTableScanWithWhereRunsOnGpu) {
  // Generate some telemetry first, then query it through SQL.
  ASSERT_OK(session_->Execute("SELECT COUNT(*) FROM t").status());
  auto result = session_->Execute("SELECT * FROM gpudb_counters WHERE "
                                  "value > 0");
  ASSERT_OK(result.status());
  const sql::QueryResult& r = result.ValueOrDie();
  ASSERT_NE(r.table_view, nullptr);
  ASSERT_FALSE(r.row_ids.empty());
  // Every selected row satisfies the predicate against the snapshot.
  auto value_col = r.table_view->ColumnByName("value");
  ASSERT_OK(value_col.status());
  for (uint32_t row : r.row_ids) {
    EXPECT_GT(value_col.ValueOrDie()->value(row), 0.0f);
  }
  // The name column renders as strings through the dictionary.
  auto name_col = r.table_view->ColumnByName("name");
  ASSERT_OK(name_col.status());
  EXPECT_TRUE(name_col.ValueOrDie()->has_dictionary());
  const std::string rendered = r.table_view->FormatRows(r.row_ids, 100);
  EXPECT_NE(rendered.find("executor.count"), std::string::npos);
}

TEST_F(SessionTest, SystemTableAggregateAndMetricsKinds) {
  ASSERT_OK(session_->Execute("SELECT COUNT(*) FROM t").status());
  auto count = session_->Execute(
      "SELECT COUNT(*) FROM gpudb_metrics WHERE value > 0");
  ASSERT_OK(count.status());
  EXPECT_GT(count.ValueOrDie().count, 0u);
  // gpudb_tables lists the registered user table with its live row count.
  auto tables = session_->Execute("SELECT * FROM gpudb_tables");
  ASSERT_OK(tables.status());
  const sql::QueryResult& r = tables.ValueOrDie();
  ASSERT_NE(r.table_view, nullptr);
  const std::string rendered = r.table_view->FormatRows(r.row_ids, 10);
  EXPECT_NE(rendered.find("t"), std::string::npos);
  EXPECT_NE(rendered.find("2000"), std::string::npos);
}

TEST_F(SessionTest, EmptyQueriesTableReportsNotFound) {
  QueryLog::Global().Clear();
  auto result = session_->Execute("SELECT * FROM gpudb_queries");
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  // The failed statement itself was recorded.
  EXPECT_EQ(QueryLog::Global().size(), 1u);
}

TEST_F(SessionTest, ScriptRunsPastFailedStatementsAndCountsDrops) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  const uint64_t dropped_before =
      registry.counter("queries.dropped_status").value();
  QueryLog::Global().Clear();
  auto result = session_->ExecuteScript(
      "SELECT COUNT(*) FROM t WHERE u0 > 10;"
      "SELECT nonsense FROM t;"
      "SELECT MAX(u1) FROM t");
  // The script reports its first failure...
  EXPECT_FALSE(result.ok());
  // ...but the statements after it still ran (all three are logged), and
  // the swallowed per-statement failure hit queries.dropped_status.
  EXPECT_EQ(QueryLog::Global().size(), 3u);
  EXPECT_EQ(registry.counter("queries.dropped_status").value(),
            dropped_before + 1);
}

TEST_F(SessionTest, QueriesTableRecordsHistory) {
  QueryLog::Global().Clear();
  ASSERT_OK(session_->Execute("SELECT COUNT(*) FROM t WHERE u0 > 10")
                .status());
  ASSERT_OK(session_->Execute("SELECT MAX(u1) FROM t").status());
  auto result = session_->Execute("SELECT * FROM gpudb_queries");
  ASSERT_OK(result.status());
  const sql::QueryResult& r = result.ValueOrDie();
  ASSERT_NE(r.table_view, nullptr);
  EXPECT_EQ(r.row_ids.size(), 2u);  // snapshot taken before self is logged
  const std::string rendered = r.table_view->FormatRows(r.row_ids, 10);
  EXPECT_NE(rendered.find("SELECT MAX(u1) FROM t"), std::string::npos);
  EXPECT_NE(rendered.find("count"), std::string::npos);
  EXPECT_NE(rendered.find("aggregate"), std::string::npos);
  // Device work was attributed: the scans issued rendering passes.
  auto passes_col = r.table_view->ColumnByName("passes");
  ASSERT_OK(passes_col.status());
  EXPECT_GT(passes_col.ValueOrDie()->value(0), 0.0f);
  // The planner-rewrite columns are attributed too: the WHERE scan ran as
  // a fused chain (fusion defaults on), the MAX did not.
  auto fused_col = r.table_view->ColumnByName("fused_passes");
  ASSERT_OK(fused_col.status());
  EXPECT_GT(fused_col.ValueOrDie()->value(0), 0.0f);
  auto hits_col = r.table_view->ColumnByName("cache_hits");
  ASSERT_OK(hits_col.status());
  EXPECT_EQ(hits_col.ValueOrDie()->value(0), 0.0f);  // cache off by default
}

TEST_F(SessionTest, QueriesTableSplitsQueueAndExecTime) {
  QueryLog::Global().Clear();
  ASSERT_OK(session_->Execute("SELECT COUNT(*) FROM t WHERE u0 > 10")
                .status());
  auto result = session_->Execute("SELECT * FROM gpudb_queries");
  ASSERT_OK(result.status());
  const sql::QueryResult& r = result.ValueOrDie();
  ASSERT_NE(r.table_view, nullptr);
  auto queue_col = r.table_view->ColumnByName("queue_ms");
  auto exec_col = r.table_view->ColumnByName("exec_ms");
  auto wall_col = r.table_view->ColumnByName("wall_ms");
  ASSERT_OK(queue_col.status());
  ASSERT_OK(exec_col.status());
  ASSERT_OK(wall_col.status());
  ASSERT_EQ(r.row_ids.size(), 1u);
  const uint32_t row = r.row_ids[0];
  // Uncontended sessions spend essentially all their wall time executing.
  EXPECT_GT(exec_col.ValueOrDie()->value(row), 0.0f);
  EXPECT_GE(queue_col.ValueOrDie()->value(row), 0.0f);
  EXPECT_NEAR(queue_col.ValueOrDie()->value(row) +
                  exec_col.ValueOrDie()->value(row),
              wall_col.ValueOrDie()->value(row), 1e-3);
}

TEST_F(SessionTest, ProfileTableNotFoundUntilSomethingProfiled) {
  Profiler::Global().ResetForTesting();
  auto result = session_->Execute("SELECT * FROM gpudb_profile");
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST_F(SessionTest, ProfileTableListsPassCounters) {
  Profiler::Global().ResetForTesting();
  ASSERT_OK(session_
                ->Execute("EXPLAIN PROFILE SELECT COUNT(*) FROM t "
                          "WHERE u0 > 10")
                .status());
  auto result = session_->Execute("SELECT * FROM gpudb_profile");
  ASSERT_OK(result.status());
  const sql::QueryResult& r = result.ValueOrDie();
  ASSERT_NE(r.table_view, nullptr);
  ASSERT_FALSE(r.row_ids.empty());
  // Every deep counter is a real column; the aggregate saw fragments and
  // depth work from the profiled scan.
  for (const char* name :
       {"label", "passes", "fragments", "alpha_killed", "stencil_killed",
        "depth_tested", "depth_killed", "passed", "occlusion_samples",
        "plane_bytes_read", "plane_bytes_written"}) {
    EXPECT_TRUE(r.table_view->ColumnByName(name).ok()) << name;
  }
  auto fragments_col = r.table_view->ColumnByName("fragments");
  auto depth_col = r.table_view->ColumnByName("depth_tested");
  ASSERT_OK(fragments_col.status());
  ASSERT_OK(depth_col.status());
  double fragments = 0.0;
  double depth_tested = 0.0;
  for (uint32_t row : r.row_ids) {
    fragments += fragments_col.ValueOrDie()->value(row);
    depth_tested += depth_col.ValueOrDie()->value(row);
  }
  EXPECT_GT(fragments, 0.0);
  EXPECT_GT(depth_tested, 0.0);
  // Labels render through the dictionary column; predicate scans run
  // fragment-program passes, whose names all end in "FP".
  const std::string rendered = r.table_view->FormatRows(r.row_ids, 100);
  EXPECT_NE(rendered.find("FP"), std::string::npos);
  Profiler::Global().ResetForTesting();
}

TEST_F(SessionTest, SlowQueryThresholdFlagsStatements) {
  QueryLog::Global().Clear();
  QueryLog::Global().set_slow_threshold_ms(1e-6);  // everything is "slow"
  ASSERT_OK(session_->Execute("SELECT COUNT(*) FROM t").status());
  QueryLog::Global().set_slow_threshold_ms(0.0);
  ASSERT_OK(session_->Execute("SELECT COUNT(*) FROM t").status());
  const auto entries = QueryLog::Global().Entries();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_TRUE(entries[0].slow);
  EXPECT_FALSE(entries[1].slow);
  ASSERT_EQ(QueryLog::Global().SlowEntries().size(), 1u);
}

TEST_F(SessionTest, AnalyzeRoundTrip) {
  EXPECT_EQ(catalog_->Stats("t"), nullptr);
  auto result = session_->Execute("ANALYZE t");
  ASSERT_OK(result.status());
  EXPECT_EQ(result.ValueOrDie().kind, sql::Query::Kind::kAnalyzeTable);
  EXPECT_EQ(result.ValueOrDie().count, 2u);  // two columns analyzed

  const db::TableStats* stats = catalog_->Stats("t");
  ASSERT_NE(stats, nullptr);
  EXPECT_TRUE(stats->analyzed());
  EXPECT_EQ(stats->table_name, "t");
  EXPECT_EQ(stats->row_count, 2000u);
  ASSERT_EQ(stats->columns.size(), 2u);
  const db::ColumnStats& c0 = stats->columns[0];
  EXPECT_EQ(c0.name, "u0");
  EXPECT_GT(c0.distinct, 0u);
  EXPECT_LE(c0.distinct, 1024u);  // 10-bit domain
  // Equi-depth fences: buckets+1 of them, non-decreasing, spanning min..max.
  ASSERT_EQ(c0.fences.size(), static_cast<size_t>(c0.buckets()) + 1);
  EXPECT_TRUE(std::is_sorted(c0.fences.begin(), c0.fences.end()));
  EXPECT_DOUBLE_EQ(c0.fences.front(), c0.min);
  EXPECT_DOUBLE_EQ(c0.fences.back(), c0.max);
  // The histogram's cumulative fraction is sane at the median fence.
  const double mid =
      c0.fences[static_cast<size_t>(c0.buckets()) / 2];
  EXPECT_NEAR(c0.CumulativeFraction(mid), 0.5, 0.1);

  // ANALYZE of a system table is rejected.
  EXPECT_FALSE(session_->Execute("ANALYZE gpudb_metrics").ok());
  // ANALYZE of an unregistered table is NotFound.
  EXPECT_EQ(session_->Execute("ANALYZE ghost").status().code(),
            StatusCode::kNotFound);
}

TEST(CatalogTest, TableVersionsBumpAndNotify) {
  db::Catalog catalog;
  auto table = db::MakeUniformTable(16, 4);
  ASSERT_OK(table.status());
  EXPECT_EQ(catalog.version("users"), 0u);  // unknown => 0, never 1
  ASSERT_OK(catalog.Register("users", &table.ValueOrDie()));
  EXPECT_EQ(catalog.version("users"), 1u);

  std::vector<std::string> bumped;
  catalog.AddVersionListener(
      [&bumped](const std::string& name) { bumped.push_back(name); });
  ASSERT_OK(catalog.BumpTableVersion("users"));
  EXPECT_EQ(catalog.version("users"), 2u);
  EXPECT_EQ(bumped, std::vector<std::string>{"users"});
  // Unknown tables are a NotFound, and listeners stay silent.
  EXPECT_EQ(catalog.BumpTableVersion("ghost").code(), StatusCode::kNotFound);
  EXPECT_EQ(bumped.size(), 1u);
}

// Regression: BumpTableVersion snapshots the listener list and invokes it
// *after* releasing mu_ (catalog.cc). A listener that re-enters the catalog
// -- the Session's plane-cache invalidator reads catalog state, and a
// cascading bump is legal -- would self-deadlock on the non-recursive mutex
// if the notification ran under the lock. This test is the tripwire: it
// hangs (and times out) if the invoke ever moves back inside the critical
// section.
TEST(CatalogTest, VersionListenerMayReenterTheCatalog) {
  db::Catalog catalog;
  auto users = db::MakeUniformTable(16, 4);
  auto orders = db::MakeUniformTable(16, 4);
  ASSERT_OK(users.status());
  ASSERT_OK(orders.status());
  ASSERT_OK(catalog.Register("users", &users.ValueOrDie()));
  ASSERT_OK(catalog.Register("orders", &orders.ValueOrDie()));

  std::vector<std::string> bumped;
  bool cascaded = false;
  catalog.AddVersionListener([&](const std::string& name) {
    bumped.push_back(name);
    // Re-entrant reads under the same mutex the bump just held.
    EXPECT_GE(catalog.version(name), 2u);
    EXPECT_EQ(catalog.TableNames().size(), 2u);
    ASSERT_TRUE(catalog.Lookup(name).ok());
    // One cascading bump of the *other* table, from inside the callback.
    if (!cascaded) {
      cascaded = true;
      ASSERT_OK(catalog.BumpTableVersion(name == "users" ? "orders"
                                                         : "users"));
    }
  });

  ASSERT_OK(catalog.BumpTableVersion("users"));
  EXPECT_EQ(catalog.version("users"), 2u);
  EXPECT_EQ(catalog.version("orders"), 2u);
  EXPECT_EQ(bumped, (std::vector<std::string>{"users", "orders"}));
}

// Satellite invariant (DESIGN.md §14): a catalog version bump -- here via
// ANALYZE, which re-reads the backing store -- must evict the table's
// cached depth planes. The next query misses the cache, re-snapshots under
// the new version, and still returns the bit-exact count.
TEST_F(SessionTest, AnalyzeInvalidatesCachedDepthPlanes) {
  core::PlanOptions plan_options;
  plan_options.plane_cache = true;
  session_->set_plan_options(plan_options);
  const std::string query = "SELECT COUNT(*) FROM t WHERE u0 > 300";

  auto cold = session_->Execute(query);
  ASSERT_OK(cold.status());
  const auto& counters = device_->counters();
  EXPECT_EQ(counters.plane_cache_misses, 1u);
  auto warm = session_->Execute(query);
  ASSERT_OK(warm.status());
  EXPECT_EQ(counters.plane_cache_hits, 1u);
  EXPECT_EQ(warm.ValueOrDie().count, cold.ValueOrDie().count);

  // ANALYZE bumps the version; the listener wired by the Session drops the
  // table's planes eagerly.
  ASSERT_OK(session_->Execute("ANALYZE t").status());
  EXPECT_EQ(catalog_->version("t"), 2u);
  EXPECT_EQ(device_->plane_cache().size(), 0u);

  auto after = session_->Execute(query);
  ASSERT_OK(after.status());
  EXPECT_EQ(counters.plane_cache_misses, 2u);  // stale plane cannot hit
  EXPECT_EQ(after.ValueOrDie().count, cold.ValueOrDie().count);

  // And the re-cached plane (keyed on version 2) hits again.
  auto rewarm = session_->Execute(query);
  ASSERT_OK(rewarm.status());
  EXPECT_EQ(counters.plane_cache_hits, 2u);
  EXPECT_EQ(rewarm.ValueOrDie().count, cold.ValueOrDie().count);
}

TEST_F(SessionTest, ExplainShowsEstimatedVsActualRows) {
  // Without statistics the explain tree has no estimate column.
  auto before = session_->Execute(
      "EXPLAIN ANALYZE SELECT COUNT(*) FROM t WHERE u0 >= 512");
  ASSERT_OK(before.status());
  EXPECT_EQ(before.ValueOrDie().explain.find("rows est="),
            std::string::npos);

  ASSERT_OK(session_->Execute("ANALYZE t").status());
  auto after = session_->Execute(
      "EXPLAIN ANALYZE SELECT COUNT(*) FROM t WHERE u0 >= 512");
  ASSERT_OK(after.status());
  const sql::QueryResult& r = after.ValueOrDie();
  EXPECT_TRUE(r.analyzed);
  const std::string& tree = r.explain;
  const size_t est_pos = tree.find("rows est=");
  ASSERT_NE(est_pos, std::string::npos) << tree;
  ASSERT_NE(tree.find("actual="), std::string::npos) << tree;
  // A uniform 10-bit column selected at >= 512 is ~half the table; the
  // histogram estimate must land in the right ballpark of the actual count.
  const uint64_t actual = std::stoull(
      tree.substr(tree.find("actual=", est_pos) + 7));
  const uint64_t est = std::stoull(tree.substr(est_pos + 9));
  EXPECT_GT(actual, 800u);
  EXPECT_LT(actual, 1200u);
  EXPECT_GT(est, 500u);
  EXPECT_LT(est, 1500u);
}

TEST_F(SessionTest, SelectivityEstimatesComposeOverExpressions) {
  ASSERT_OK(session_->Execute("ANALYZE t").status());
  const db::TableStats* stats = catalog_->Stats("t");
  ASSERT_NE(stats, nullptr);
  using predicate::Expr;
  // u0 >= 512 on a uniform 10-bit column: about half.
  const auto half = Expr::Pred(0, gpu::CompareOp::kGreaterEqual, 512.0f);
  const double s_half = core::EstimateSelectivity(*stats, half);
  EXPECT_NEAR(s_half, 0.5, 0.1);
  // AND multiplies, OR uses inclusion-exclusion, NOT complements.
  const double s_and = core::EstimateSelectivity(*stats, Expr::And(half, half));
  EXPECT_NEAR(s_and, s_half * s_half, 1e-9);
  const double s_or = core::EstimateSelectivity(*stats, Expr::Or(half, half));
  EXPECT_NEAR(s_or, 2 * s_half - s_half * s_half, 1e-9);
  const double s_not = core::EstimateSelectivity(*stats, Expr::Not(half));
  EXPECT_NEAR(s_not, 1.0 - s_half, 1e-9);
  // Attribute-attribute comparisons use the 1/3 heuristic.
  const auto attr = Expr::PredAttr(0, gpu::CompareOp::kLess, 1);
  EXPECT_NEAR(core::EstimateSelectivity(*stats, attr), 1.0 / 3.0, 1e-9);
  // No WHERE = full table.
  EXPECT_DOUBLE_EQ(core::EstimateSelectivity(*stats, nullptr), 1.0);
}

TEST(StatementTableNameTest, ExtractsFromAndAnalyzeTargets) {
  auto from = sql::StatementTableName("SELECT COUNT(*) FROM flows WHERE x>1");
  ASSERT_OK(from.status());
  EXPECT_EQ(from.ValueOrDie(), "flows");
  auto analyze = sql::StatementTableName("ANALYZE flows;");
  ASSERT_OK(analyze.status());
  EXPECT_EQ(analyze.ValueOrDie(), "flows");
  auto explain = sql::StatementTableName(
      "EXPLAIN ANALYZE SELECT * FROM gpudb_metrics");
  ASSERT_OK(explain.status());
  EXPECT_EQ(explain.ValueOrDie(), "gpudb_metrics");
  EXPECT_FALSE(sql::StatementTableName("SELECT 1").ok());
}

TEST(ColumnStatsTest, SelectivityMathIsConsistent) {
  db::ColumnStats stats;
  stats.name = "x";
  stats.row_count = 100;
  stats.min = 0.0;
  stats.max = 100.0;
  stats.distinct = 101;
  stats.fences = {0.0, 25.0, 50.0, 75.0, 100.0};
  EXPECT_NEAR(stats.CumulativeFraction(50.0), 0.5, 1e-9);
  EXPECT_NEAR(stats.CumulativeFraction(-1.0), 0.0, 1e-9);
  EXPECT_NEAR(stats.CumulativeFraction(100.0), 1.0, 1e-9);
  EXPECT_NEAR(stats.SelectivityCompare(gpu::CompareOp::kLessEqual, 50.0),
              0.5, 1e-9);
  EXPECT_NEAR(stats.SelectivityCompare(gpu::CompareOp::kGreater, 50.0),
              0.5, 1e-9);
  EXPECT_NEAR(stats.SelectivityCompare(gpu::CompareOp::kEqual, 50.0),
              1.0 / 101.0, 1e-9);
  EXPECT_DOUBLE_EQ(stats.SelectivityCompare(gpu::CompareOp::kEqual, 500.0),
                   0.0);  // out of range
  EXPECT_NEAR(stats.SelectivityBetween(25.0, 75.0), 0.5 + 1.0 / 101.0, 1e-9);
  EXPECT_DOUBLE_EQ(stats.SelectivityBetween(75.0, 25.0), 0.0);
  // Degenerate: no histogram falls back to the uniform assumption.
  db::ColumnStats flat;
  flat.row_count = 10;
  flat.min = 0.0;
  flat.max = 10.0;
  flat.distinct = 1;
  EXPECT_NEAR(flat.CumulativeFraction(5.0), 0.5, 1e-9);
}

}  // namespace
}  // namespace gpudb
