#include <gtest/gtest.h>

#include "src/gpu/device.h"
#include "src/gpu/perf_model.h"
#include "tests/test_util.h"

namespace gpudb {
namespace gpu {
namespace {

PassRecord SimplePass(uint64_t fragments) {
  PassRecord p;
  p.fragments = fragments;
  p.fp_instructions = 0;
  return p;
}

TEST(PerfModelTest, PaperQuadFillRate) {
  // Section 6.2.2: "we can render a single quad of size 1000x1000 in
  // 0.278 ms" on the FX 5900 (450 MHz, 8 pixels/clock).
  PerfModel model;
  EXPECT_NEAR(model.PassFillMs(SimplePass(1000000)), 0.278, 0.001);
}

TEST(PerfModelTest, FragmentProgramScalesWithInstructions) {
  PerfModel model;
  PassRecord p = SimplePass(1000000);
  p.fp_instructions = 5;
  EXPECT_NEAR(model.PassFillMs(p), 5 * 0.278, 0.01);
}

TEST(PerfModelTest, KthLargestUtilizationMatchesPaper) {
  // 19 single-cycle quads of 1M fragments with one occlusion readback each:
  // ideal 5.28 ms, observed ~6.6 ms -> ~80% utilization (Section 6.2.2).
  DeviceCounters counters;
  for (int i = 0; i < 19; ++i) {
    counters.pass_log.push_back(SimplePass(1000000));
    ++counters.passes;
    ++counters.occlusion_readbacks;
  }
  counters.bytes_read_back = 19 * 4;
  PerfModel model;
  const GpuTimeBreakdown b = model.Estimate(counters);
  EXPECT_NEAR(b.fill_ms, 5.28, 0.1);
  EXPECT_NEAR(b.ComputeMs(), 6.6, 0.4);
  EXPECT_NEAR(model.Utilization(counters), 0.80, 0.03);
}

TEST(PerfModelTest, DepthWritePenaltyCharged) {
  DeviceCounters counters;
  PassRecord copy = SimplePass(1000000);
  copy.fp_instructions = 3;
  copy.depth_writes = 1000000;
  counters.pass_log.push_back(copy);
  ++counters.passes;
  PerfModel model;
  const GpuTimeBreakdown b = model.Estimate(counters);
  // Copy-to-depth per million records: 3-instr fill + 3-cycle write penalty
  // = ~1.67 ms (DESIGN.md section 6).
  EXPECT_NEAR(b.fill_ms + b.depth_write_ms, 1.67, 0.05);
}

TEST(PerfModelTest, UploadAndReadbackCharged) {
  DeviceCounters counters;
  counters.bytes_uploaded = 4'000'000;  // one 1000x1000 float texture
  counters.bytes_read_back = 1'000'000;
  PerfModel model;
  const GpuTimeBreakdown b = model.Estimate(counters);
  EXPECT_GT(b.upload_ms, 1.0);
  EXPECT_GT(b.buffer_readback_ms, 1.0);
  // Upload is excluded from TotalMs (paper keeps data GPU-resident).
  EXPECT_NEAR(b.TotalMs(), b.ComputeMs() + b.buffer_readback_ms, 1e-9);
}

TEST(PerfModelTest, EmptyCountersCostNothing) {
  PerfModel model;
  EXPECT_EQ(model.EstimateMs(DeviceCounters{}), 0.0);
  EXPECT_EQ(model.Utilization(DeviceCounters{}), 1.0);
}

TEST(PerfModelTest, FormatBreakdownMentionsTotal) {
  DeviceCounters counters;
  counters.pass_log.push_back(SimplePass(1000));
  PerfModel model;
  const std::string s = PerfModel::FormatBreakdown(model.Estimate(counters));
  EXPECT_NE(s.find("total="), std::string::npos);
}

TEST(PerfModelTest, DeviceDrivenCountersMatchManual) {
  // Run a real pass through the Device and check the model sees it.
  Device dev(100, 100);
  dev.SetDepthTest(true, CompareOp::kAlways);
  ASSERT_OK(dev.RenderQuad(0.5f));
  PerfModel model;
  const GpuTimeBreakdown b = model.Estimate(dev.counters());
  EXPECT_NEAR(b.fill_ms, 10000.0 / (8 * 450e6) * 1e3, 1e-6);
  EXPECT_GT(b.depth_write_ms, 0.0);
}

}  // namespace
}  // namespace gpu
}  // namespace gpudb
