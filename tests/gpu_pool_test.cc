// Multi-device shard pool (DESIGN.md §15): the per-device health state
// machine, probe-based quarantine recovery, replica failover, and the key
// contract -- scatter/gather answers are bit-identical to single-device
// execution through every rung of the failover ladder -- plus the admission
// controller's deterministic rejection paths.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/metrics.h"
#include "src/common/query_log.h"
#include "src/core/executor.h"
#include "src/core/pool_executor.h"
#include "src/db/catalog.h"
#include "src/db/datagen.h"
#include "src/db/sharding.h"
#include "src/gpu/device_pool.h"
#include "src/predicate/expr.h"
#include "src/sql/admission.h"
#include "src/sql/session.h"
#include "tests/test_util.h"

namespace gpudb {
namespace {

using core::AggregateKind;
using gpu::CompareOp;
using gpu::DeviceHealth;
using gpu::DevicePool;
using gpu::DevicePoolOptions;
using predicate::Expr;
using predicate::ExprPtr;

std::unique_ptr<DevicePool> MakePool(int devices, int worker_threads = 0) {
  DevicePoolOptions options;
  options.devices = devices;
  options.width = 100;
  options.height = 100;
  options.worker_threads = worker_threads;
  auto pool = DevicePool::Make(options);
  EXPECT_TRUE(pool.ok()) << pool.status().ToString();
  return std::move(pool).ValueOrDie();
}

TEST(DevicePool, HealthStateMachine) {
  auto pool = MakePool(2);
  EXPECT_EQ(pool->health(0), DeviceHealth::kHealthy);

  // One fault degrades; a success heals the streak.
  pool->RecordFailure(0);
  EXPECT_EQ(pool->health(0), DeviceHealth::kDegraded);
  pool->RecordSuccess(0);
  EXPECT_EQ(pool->health(0), DeviceHealth::kHealthy);

  // threshold (default 3) consecutive faults quarantine the device.
  for (int i = 0; i < pool->options().quarantine_threshold; ++i) {
    EXPECT_TRUE(pool->AdmitDispatch(0));
    pool->RecordFailure(0);
  }
  EXPECT_EQ(pool->health(0), DeviceHealth::kQuarantined);
  // The other failure domain is untouched.
  EXPECT_EQ(pool->health(1), DeviceHealth::kHealthy);

  // Quarantine refuses dispatches except every probe_interval-th ask.
  int admitted = 0;
  for (int i = 0; i < 2 * pool->options().probe_interval; ++i) {
    if (pool->AdmitDispatch(0)) ++admitted;
  }
  EXPECT_EQ(admitted, 2);

  // One probe success returns the device to healthy.
  pool->RecordSuccess(0);
  EXPECT_EQ(pool->health(0), DeviceHealth::kHealthy);
  EXPECT_TRUE(pool->AdmitDispatch(0));
}

TEST(DevicePool, ForcedLossRefusesEvenProbes) {
  auto pool = MakePool(2);
  pool->ForceDeviceLost(1);
  EXPECT_TRUE(pool->forced_lost(1));
  EXPECT_EQ(pool->health(1), DeviceHealth::kQuarantined);
  for (int i = 0; i < 64; ++i) {
    EXPECT_FALSE(pool->AdmitDispatch(1)) << "ask " << i;
  }
  pool->Revive(1);
  EXPECT_EQ(pool->health(1), DeviceHealth::kHealthy);
  EXPECT_TRUE(pool->AdmitDispatch(1));
}

// Regression for the probe re-admission race: AdmitDispatch's verdict is a
// snapshot, and the card can be force-lost while the dispatcher waits on
// the lease. TryAcquire re-checks under the health lock once the lease is
// held, so the stale admission surfaces as a deterministic kDeviceLost that
// the pool executor converts into failover -- never a dispatch to a yanked
// device.
TEST(DevicePool, TryAcquireRechecksForcedLossAfterAdmission) {
  auto pool = MakePool(2);
  ASSERT_TRUE(pool->AdmitDispatch(1));  // the stale verdict
  pool->ForceDeviceLost(1);             // card pulled before the lease

  auto lease = pool->TryAcquire(1);
  ASSERT_FALSE(lease.ok());
  EXPECT_TRUE(lease.status().IsDeviceLost()) << lease.status().ToString();

  pool->Revive(1);
  auto revived = pool->TryAcquire(1);
  ASSERT_TRUE(revived.ok()) << revived.status().ToString();
  EXPECT_EQ(revived.ValueOrDie().id(), 1);
}

TEST(DevicePool, PerDeviceFailureDomainSeeds) {
  DevicePoolOptions options;
  options.devices = 3;
  options.width = 64;
  options.height = 64;
  options.faults = {/*seed=*/20260805, /*rate=*/0.5};
  ASSERT_OK_AND_ASSIGN(auto pool, DevicePool::Make(options));
  // Each device's injector runs its own stream: same base seed, distinct
  // device_id, so the pass-level fault patterns diverge.
  std::vector<std::vector<bool>> fired(3);
  for (int d = 0; d < 3; ++d) {
    gpu::FaultInjector probe;
    probe.Configure({options.faults.seed, options.faults.rate,
                     /*device_id=*/static_cast<uint32_t>(d)});
    for (int i = 0; i < 128; ++i) fired[d].push_back(!probe.OnPass().ok());
  }
  EXPECT_NE(fired[0], fired[1]);
  EXPECT_NE(fired[1], fired[2]);
}

TEST(Sharding, RangeShardsCoverAndPlaceRoundRobin) {
  ASSERT_OK_AND_ASSIGN(db::Table table, db::MakeTcpIpTable(1000, /*seed=*/3));
  ASSERT_OK_AND_ASSIGN(db::ShardedTable sharded,
                       db::ShardedTable::Make(table, /*num_shards=*/8,
                                              /*num_devices=*/4));
  ASSERT_EQ(sharded.num_shards(), 8u);
  EXPECT_EQ(sharded.num_rows(), table.num_rows());
  uint64_t covered = 0;
  for (size_t i = 0; i < sharded.num_shards(); ++i) {
    const db::Shard& shard = sharded.shard(i);
    EXPECT_EQ(shard.row_begin, covered);
    covered += shard.table.num_rows();
    EXPECT_EQ(shard.placement.primary, static_cast<int>(i % 4));
    EXPECT_EQ(shard.placement.replica, static_cast<int>((i % 4 + 1) % 4));
    EXPECT_TRUE(shard.placement.replicated());
  }
  EXPECT_EQ(covered, table.num_rows());
}

TEST(Sharding, RefusesFloatColumnsAndSingleDeviceCollapsesReplica) {
  db::Table table;
  ASSERT_OK_AND_ASSIGN(db::Column c,
                       db::Column::MakeFloat("f", {1.0f, 2.0f, 3.0f, 4.0f}));
  ASSERT_OK(table.AddColumn(std::move(c)));
  auto refused = db::ShardedTable::Make(table, 2, 2);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsInvalidArgument());

  ASSERT_OK_AND_ASSIGN(db::Table ints, db::MakeTcpIpTable(100, /*seed=*/3));
  ASSERT_OK_AND_ASSIGN(db::ShardedTable solo,
                       db::ShardedTable::Make(ints, 2, /*num_devices=*/1));
  EXPECT_FALSE(solo.shard(0).placement.replicated());
}

/// Shard-pool answers vs. one healthy device, across every failure mode.
class PoolExecutorTest : public ::testing::Test {
 protected:
  static constexpr size_t kRows = 4000;

  PoolExecutorTest() : reference_device_(100, 100) {
    auto t = db::MakeTcpIpTable(kRows, /*seed=*/77);
    EXPECT_TRUE(t.ok());
    table_ = std::move(t).ValueOrDie();
    auto ref = core::Executor::Make(&reference_device_, &table_);
    EXPECT_TRUE(ref.ok());
    reference_ = std::move(ref).ValueOrDie();
  }

  /// Runs the full operator battery on `exec` and expects bit-identical
  /// answers to the single-device reference.
  void ExpectBitExact(core::PoolExecutor& exec) {
    const ExprPtr where = Expr::And(
        Expr::Pred(0, CompareOp::kGreater, 20000.0f),
        Expr::Pred(2, CompareOp::kLess, 250000.0f));
    ASSERT_OK_AND_ASSIGN(const uint64_t want_count, reference_->Count(where));
    ASSERT_OK_AND_ASSIGN(const uint64_t got_count, exec.Count(where));
    EXPECT_EQ(got_count, want_count);

    ASSERT_OK_AND_ASSIGN(const std::vector<uint32_t> want_rows,
                         reference_->SelectRowIds(where));
    ASSERT_OK_AND_ASSIGN(const std::vector<uint32_t> got_rows,
                         exec.SelectRowIds(where));
    EXPECT_EQ(got_rows, want_rows);

    ASSERT_OK_AND_ASSIGN(const std::vector<uint8_t> want_bitmap,
                         reference_->SelectBitmap(where));
    ASSERT_OK_AND_ASSIGN(const std::vector<uint8_t> got_bitmap,
                         exec.SelectBitmap(where));
    EXPECT_EQ(got_bitmap, want_bitmap);

    for (const AggregateKind kind :
         {AggregateKind::kSum, AggregateKind::kAvg, AggregateKind::kMin,
          AggregateKind::kMax}) {
      ASSERT_OK_AND_ASSIGN(const double want,
                           reference_->Aggregate(kind, "data_count", where));
      ASSERT_OK_AND_ASSIGN(const double got,
                           exec.Aggregate(kind, "data_count", where));
      EXPECT_EQ(got, want) << core::ToString(kind);
    }

    ASSERT_OK_AND_ASSIGN(const uint64_t want_range,
                         reference_->RangeCount("flow_rate", 1000.0,
                                                100000.0));
    ASSERT_OK_AND_ASSIGN(const uint64_t got_range,
                         exec.RangeCount("flow_rate", 1000.0, 100000.0));
    EXPECT_EQ(got_range, want_range);
  }

  gpu::Device reference_device_;
  db::Table table_;
  std::unique_ptr<core::Executor> reference_;
};

TEST_F(PoolExecutorTest, HealthyPoolMatchesSingleDeviceAtEveryThreadCount) {
  for (const int threads : {1, 2, 4, 8}) {
    SCOPED_TRACE("worker_threads=" + std::to_string(threads));
    auto pool = MakePool(4, threads);
    ASSERT_OK_AND_ASSIGN(
        db::ShardedTable sharded,
        db::ShardedTable::Make(table_, /*num_shards=*/8, pool->size()));
    ASSERT_OK_AND_ASSIGN(auto exec,
                         core::PoolExecutor::Make(pool.get(), &sharded));
    ExpectBitExact(*exec);
    EXPECT_EQ(pool->failovers(), 0u);
    EXPECT_FALSE(exec->last_stats().cpu_fallback);
  }
}

TEST_F(PoolExecutorTest, LostDeviceFailsOverToReplicaBitExactly) {
  // The ISSUE acceptance sweep: 4 devices, R=2, one forced kDeviceLost --
  // answers stay bit-identical, pool.failovers goes positive, and no device
  // error surfaces to the caller.
  for (const int threads : {1, 2, 4, 8}) {
    SCOPED_TRACE("worker_threads=" + std::to_string(threads));
    auto pool = MakePool(4, threads);
    ASSERT_OK_AND_ASSIGN(
        db::ShardedTable sharded,
        db::ShardedTable::Make(table_, /*num_shards=*/8, pool->size()));
    ASSERT_OK_AND_ASSIGN(auto exec,
                         core::PoolExecutor::Make(pool.get(), &sharded));
    pool->ForceDeviceLost(1);
    ExpectBitExact(*exec);
    EXPECT_GT(pool->failovers(), 0u);
    EXPECT_GT(exec->last_stats().failovers, 0u);
    EXPECT_EQ(exec->last_stats().first_failed_device, 1);
    // Replicas covered every shard; the CPU tier never had to answer.
    EXPECT_FALSE(exec->last_stats().cpu_fallback);
  }
}

TEST_F(PoolExecutorTest, AllPlacementsLostFallsBackToCpuBitExactly) {
  auto pool = MakePool(2);
  ASSERT_OK_AND_ASSIGN(
      db::ShardedTable sharded,
      db::ShardedTable::Make(table_, /*num_shards=*/4, pool->size()));
  ASSERT_OK_AND_ASSIGN(auto exec,
                       core::PoolExecutor::Make(pool.get(), &sharded));
  pool->ForceDeviceLost(0);
  pool->ForceDeviceLost(1);
  ExpectBitExact(*exec);
  EXPECT_TRUE(exec->last_stats().cpu_fallback);
}

TEST_F(PoolExecutorTest, CpuRungCanBeDisabled) {
  auto pool = MakePool(2);
  ASSERT_OK_AND_ASSIGN(
      db::ShardedTable sharded,
      db::ShardedTable::Make(table_, /*num_shards=*/4, pool->size()));
  ASSERT_OK_AND_ASSIGN(auto exec,
                       core::PoolExecutor::Make(pool.get(), &sharded));
  core::FailoverPolicy policy;
  policy.allow_cpu_fallback = false;
  exec->set_failover_policy(policy);
  pool->ForceDeviceLost(0);
  pool->ForceDeviceLost(1);
  auto result = exec->Count(nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeviceLost());
}

TEST_F(PoolExecutorTest, MedianStaysSingleDevice) {
  auto pool = MakePool(2);
  ASSERT_OK_AND_ASSIGN(
      db::ShardedTable sharded,
      db::ShardedTable::Make(table_, /*num_shards=*/4, pool->size()));
  ASSERT_OK_AND_ASSIGN(auto exec,
                       core::PoolExecutor::Make(pool.get(), &sharded));
  EXPECT_FALSE(core::PoolExecutor::ShardableAggregate(AggregateKind::kMedian));
  auto result = exec->Aggregate(AggregateKind::kMedian, "data_count", nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotImplemented());
}

// ---------------------------------------------------------------------------
// Admission control: every rejection path is synchronous and deterministic.

TEST(Admission, QueueOverflowRejectsImmediately) {
  sql::AdmissionOptions options;
  options.max_concurrent = 1;
  options.queue_capacity = 0;
  sql::AdmissionController admission(options);

  ASSERT_OK_AND_ASSIGN(auto ticket, admission.Admit("", 0.0));
  EXPECT_TRUE(ticket.admitted());
  EXPECT_EQ(admission.running(), 1);
  // The slot is held and the queue holds zero: overflow, not a wait.
  auto overflow = admission.Admit("", 0.0);
  ASSERT_FALSE(overflow.ok());
  EXPECT_TRUE(overflow.status().IsResourceExhausted());

  ticket.Release();
  EXPECT_EQ(admission.running(), 0);
  ASSERT_OK_AND_ASSIGN(auto again, admission.Admit("", 0.0));
  EXPECT_TRUE(again.admitted());
}

TEST(Admission, QueueWaitIsBoundedByDeadlineAndValve) {
  sql::AdmissionOptions options;
  options.max_concurrent = 1;
  options.queue_capacity = 4;
  options.max_queue_wait_ms = 20.0;
  sql::AdmissionController admission(options);
  ASSERT_OK_AND_ASSIGN(auto ticket, admission.Admit("", 0.0));
  // The queued statement can never get the held slot; the valve guarantees
  // Admit returns (kResourceExhausted) instead of hanging.
  auto timed_out = admission.Admit("", 0.0);
  ASSERT_FALSE(timed_out.ok());
  EXPECT_TRUE(timed_out.status().IsResourceExhausted());
  EXPECT_EQ(admission.queue_depth(), 0);
}

TEST(Admission, DeadlineCannotCoverP95IsShedUpFront) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  for (int i = 0; i < 64; ++i) {
    registry.histogram("sql.exec_ms").Record(50.0);
  }
  sql::AdmissionOptions options;
  options.min_p95_samples = 32;
  sql::AdmissionController admission(options);
  auto shed = admission.Admit("", /*deadline_ms=*/1.0);
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsResourceExhausted());
  // A deadline above the p95 still admits.
  ASSERT_OK_AND_ASSIGN(auto ticket, admission.Admit("", 500.0));
  EXPECT_TRUE(ticket.admitted());
}

TEST(Admission, TenantTokenBucketRefillsOnTheInjectedClock) {
  double now_ms = 0.0;
  sql::AdmissionOptions options;
  options.tenant_qps = 1.0;
  options.tenant_burst = 2.0;
  options.now_ms = [&now_ms] { return now_ms; };
  sql::AdmissionController admission(options);

  const uint64_t throttled_before =
      MetricsRegistry::Global().counter("tenant.throttled").value();
  {
    ASSERT_OK_AND_ASSIGN(auto t1, admission.Admit("acme", 0.0));
    ASSERT_OK_AND_ASSIGN(auto t2, admission.Admit("acme", 0.0));
  }
  // Burst exhausted at t=0: the third statement is throttled...
  auto throttled = admission.Admit("acme", 0.0);
  ASSERT_FALSE(throttled.ok());
  EXPECT_TRUE(throttled.status().IsResourceExhausted());
  EXPECT_EQ(MetricsRegistry::Global().counter("tenant.throttled").value(),
            throttled_before + 1);
  // ...another tenant is not...
  ASSERT_OK_AND_ASSIGN(auto other, admission.Admit("globex", 0.0));
  other.Release();
  // ...and one second later one token has refilled.
  now_ms = 1000.0;
  ASSERT_OK_AND_ASSIGN(auto refilled, admission.Admit("acme", 0.0));
  EXPECT_TRUE(refilled.admitted());
}

// ---------------------------------------------------------------------------
// Session integration: pooled routing, admission, and log attribution.

TEST(SessionPool, PooledStatementsMatchClassicAndLogFailureDomains) {
  ASSERT_OK_AND_ASSIGN(db::Table table, db::MakeTcpIpTable(3000, /*seed=*/9));
  db::Catalog catalog;
  ASSERT_OK(catalog.Register("traffic", &table));

  gpu::Device classic_device(100, 100);
  db::Catalog classic_catalog;
  ASSERT_OK(classic_catalog.Register("traffic", &table));
  sql::Session classic(&classic_device, &classic_catalog);

  gpu::Device session_device(100, 100);
  sql::Session pooled(&session_device, &catalog);
  auto pool = MakePool(4);
  pooled.SetDevicePool(pool.get());
  pooled.set_tenant("acme");
  pool->ForceDeviceLost(2);

  const char* statements[] = {
      "SELECT COUNT(*) FROM traffic WHERE data_count > 20000",
      "SELECT SUM(data_count) FROM traffic WHERE flow_rate < 250000",
      "SELECT AVG(flow_rate) FROM traffic WHERE data_loss > 2",
      "SELECT MIN(data_count) FROM traffic WHERE data_count > 20000",
      "SELECT MAX(flow_rate) FROM traffic",
      "SELECT * FROM traffic WHERE data_count > 100000 LIMIT 7",
  };
  for (const char* sql : statements) {
    SCOPED_TRACE(sql);
    ASSERT_OK_AND_ASSIGN(sql::QueryResult want, classic.Execute(sql));
    ASSERT_OK_AND_ASSIGN(sql::QueryResult got, pooled.Execute(sql));
    EXPECT_EQ(got.count, want.count);
    EXPECT_EQ(got.scalar, want.scalar);
    EXPECT_EQ(got.row_ids, want.row_ids);
  }
  EXPECT_GT(pool->failovers(), 0u);

  const std::vector<QueryLogEntry> entries = QueryLog::Global().Entries();
  ASSERT_FALSE(entries.empty());
  const QueryLogEntry& last = entries.back();
  EXPECT_EQ(last.tenant, "acme");
  EXPECT_GE(last.device_id, 0);

  // Order statistics stay on the classic single-device path through the
  // same session, and log no failure domain.
  ASSERT_OK_AND_ASSIGN(sql::QueryResult want_med,
                       classic.Execute("SELECT MEDIAN(data_count) FROM traffic"));
  ASSERT_OK_AND_ASSIGN(sql::QueryResult got_med,
                       pooled.Execute("SELECT MEDIAN(data_count) FROM traffic"));
  EXPECT_EQ(got_med.scalar, want_med.scalar);
  EXPECT_EQ(QueryLog::Global().Entries().back().device_id, -1);
}

TEST(SessionPool, AdmissionRejectionSurfacesAndIsLogged) {
  ASSERT_OK_AND_ASSIGN(db::Table table, db::MakeTcpIpTable(500, /*seed=*/5));
  db::Catalog catalog;
  ASSERT_OK(catalog.Register("t", &table));
  gpu::Device device(100, 100);
  sql::Session session(&device, &catalog);
  session.set_tenant("acme");

  sql::AdmissionOptions options;
  options.max_concurrent = 1;
  options.queue_capacity = 0;
  sql::AdmissionController admission(options);
  session.set_admission(&admission);

  // Hold the only slot: the session's statement must be rejected
  // synchronously, never queued behind the held ticket.
  ASSERT_OK_AND_ASSIGN(auto ticket, admission.Admit("other", 0.0));
  auto rejected = session.Execute("SELECT COUNT(*) FROM t");
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsResourceExhausted());
  const QueryLogEntry last = QueryLog::Global().Entries().back();
  EXPECT_FALSE(last.ok);
  EXPECT_EQ(last.tenant, "acme");

  ticket.Release();
  ASSERT_OK_AND_ASSIGN(sql::QueryResult result,
                       session.Execute("SELECT COUNT(*) FROM t"));
  EXPECT_EQ(result.count, table.num_rows());
}

}  // namespace
}  // namespace gpudb
