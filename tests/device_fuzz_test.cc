// State-machine fuzz: drive the Device through long random sequences of API
// calls (valid and invalid) and check that it never crashes, that errors are
// Status values rather than corruption, and that the hardware counters stay
// internally consistent. The simulator is the foundation of every result in
// this repository; this test pins its robustness under arbitrary use.

#include <chrono>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/executor.h"
#include "src/core/resilience.h"
#include "src/db/catalog.h"
#include "src/db/datagen.h"
#include "src/gpu/device.h"
#include "src/gpu/device_pool.h"
#include "src/gpu/fault_injector.h"
#include "src/gpu/fragment_program.h"
#include "src/sql/admission.h"
#include "src/sql/session.h"
#include "tests/test_util.h"

namespace gpudb {
namespace gpu {
namespace {

class DeviceFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeviceFuzz, RandomApiSequencesNeverCorruptState) {
  Random rng(GetParam());
  Device dev(32, 32);
  std::vector<TextureId> ids;
  const TestBitProgram test_bit(0, 2);
  const SemilinearProgram semilinear({1, 0, 0, 0}, CompareOp::kGreater, 8.0f);
  bool query_open = false;

  for (int step = 0; step < 400; ++step) {
    switch (rng.NextUint64(16)) {
      case 0: {  // upload a random texture
        const size_t n = 1 + rng.NextUint64(1024);
        std::vector<float> vals(n);
        for (auto& v : vals) {
          v = static_cast<float>(rng.NextUint64(256));
        }
        auto tex = Texture::FromColumns({&vals}, 32);
        ASSERT_TRUE(tex.ok());
        auto id = dev.UploadTexture(std::move(tex).ValueOrDie());
        if (id.ok()) ids.push_back(id.ValueOrDie());
        break;
      }
      case 1: {  // bind something (possibly invalid)
        const int unit = static_cast<int>(rng.NextUint64(6)) - 1;
        const TextureId id =
            ids.empty() ? static_cast<TextureId>(rng.NextUint64(4))
                        : ids[rng.NextUint64(ids.size())];
        (void)dev.BindTextureUnit(unit, id);  // may legitimately fail
        break;
      }
      case 2:
        (void)dev.SetViewport(rng.NextUint64(1200));  // may exceed fb
        break;
      case 3:
        dev.SetDepthTest(rng.NextUint64(2) == 0,
                         static_cast<CompareOp>(rng.NextUint64(8)));
        break;
      case 4:
        dev.SetStencilTest(rng.NextUint64(2) == 0,
                           static_cast<CompareOp>(rng.NextUint64(8)),
                           static_cast<uint8_t>(rng.NextUint64(256)),
                           static_cast<uint8_t>(rng.NextUint64(256)));
        dev.SetStencilOp(static_cast<StencilOp>(rng.NextUint64(6)),
                         static_cast<StencilOp>(rng.NextUint64(6)),
                         static_cast<StencilOp>(rng.NextUint64(6)));
        break;
      case 5:
        dev.SetAlphaTest(rng.NextUint64(2) == 0,
                         static_cast<CompareOp>(rng.NextUint64(8)),
                         static_cast<float>(rng.NextDouble()));
        break;
      case 6:
        dev.SetDepthBoundsTest(rng.NextUint64(2) == 0,
                               static_cast<float>(rng.NextDouble()),
                               static_cast<float>(rng.NextDouble()));
        break;
      case 7:
        dev.ClearDepth(static_cast<float>(rng.NextDouble()));
        dev.ClearStencil(static_cast<uint8_t>(rng.NextUint64(256)));
        break;
      case 8:
        (void)dev.RenderQuad(static_cast<float>(rng.NextDouble()));
        break;
      case 9: {
        // Randomly install a program (or none) and draw textured.
        const uint64_t pick = rng.NextUint64(3);
        dev.UseProgram(pick == 0   ? &test_bit
                       : pick == 1 ? static_cast<const FragmentProgram*>(
                                         &semilinear)
                                   : nullptr);
        (void)dev.RenderTexturedQuad();  // may fail: unbound / small texture
        dev.UseProgram(nullptr);
        break;
      }
      case 10:
        if (!query_open) {
          query_open = dev.BeginOcclusionQuery().ok();
        }
        break;
      case 11:
        if (query_open) {
          auto r = dev.EndOcclusionQuery();
          ASSERT_TRUE(r.ok());
          query_open = false;
        } else {
          ASSERT_FALSE(dev.EndOcclusionQuery().ok());
        }
        break;
      case 12:
        (void)dev.ReadStencil();
        break;
      case 13:
        if (!ids.empty()) {
          (void)dev.CopyColorToTexture(ids[rng.NextUint64(ids.size())]);
        }
        break;
      case 14:
        if (!ids.empty()) {
          std::vector<float> patch(1 + rng.NextUint64(64), 3.0f);
          (void)dev.UpdateTexture(ids[rng.NextUint64(ids.size())],
                                  rng.NextUint64(1200), patch, 0);
        }
        break;
      case 15:
        (void)dev.SetVideoMemoryBudget(512 + rng.NextUint64(16384));
        break;
    }

    // Invariants after every step.
    const DeviceCounters& c = dev.counters();
    ASSERT_GE(c.fragments_generated, c.fragments_passed);
    ASSERT_EQ(c.passes, c.pass_log.size());
    ASSERT_LE(dev.video_memory_used(), dev.video_memory_budget());
    ASSERT_GE(dev.viewport_pixels(), 1u);
    ASSERT_LE(dev.viewport_pixels(), dev.framebuffer().pixel_count());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeviceFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Fault sweep: run a fixed battery of executor queries against a
// fault-injected device across many seeds and every supported thread count.
// The contract under injected faults is strict:
//   * a query either returns EXACTLY the healthy-path answer (after
//     retry / circuit-breaker / CPU fallback) or a clean non-OK Status --
//     never a crash, never a silently wrong answer;
//   * the same seed produces bit-identical outcomes at 1/2/4/8 worker
//     threads, because every injector draw happens on the issuing thread.
// ---------------------------------------------------------------------------

const db::Table& SweepTable() {
  static const db::Table* table = [] {
    auto t = db::MakeTcpIpTable(1000, /*seed=*/5);
    EXPECT_TRUE(t.ok());
    return new db::Table(std::move(t).ValueOrDie());
  }();
  return *table;
}

/// Runs the query battery and flattens each outcome to a string: the exact
/// value when OK, the full Status (code + message) when not.
std::vector<std::string> RunBattery(Device* dev, bool allow_fallback) {
  std::vector<std::string> out;
  auto exec_or = core::Executor::Make(dev, &SweepTable());
  if (!exec_or.ok()) {
    out.push_back("make:" + exec_or.status().ToString());
    return out;
  }
  std::unique_ptr<core::Executor> exec = std::move(exec_or).ValueOrDie();
  core::ResilienceOptions options;
  options.allow_cpu_fallback = allow_fallback;
  exec->set_resilience_options(options);
  const predicate::ExprPtr where =
      predicate::Expr::Pred(0, CompareOp::kGreater, 5000.0f);

  auto count = exec->Count(where);
  out.push_back(count.ok() ? "count:ok:" + std::to_string(count.ValueOrDie())
                           : "count:" + count.status().ToString());
  auto sum =
      exec->Aggregate(core::AggregateKind::kSum, "data_count", where);
  out.push_back(sum.ok() ? "sum:ok:" + std::to_string(sum.ValueOrDie())
                         : "sum:" + sum.status().ToString());
  auto kth = exec->KthLargest("data_count", 10, where);
  out.push_back(kth.ok() ? "kth:ok:" + std::to_string(kth.ValueOrDie())
                         : "kth:" + kth.status().ToString());
  auto range = exec->RangeCount("data_count", 100.0, 60000.0);
  out.push_back(range.ok() ? "range:ok:" + std::to_string(range.ValueOrDie())
                           : "range:" + range.status().ToString());
  return out;
}

std::vector<std::string> RunSweepConfig(uint64_t seed, double rate,
                                        int threads, bool allow_fallback) {
  Device dev(64, 64);
  EXPECT_TRUE(dev.SetWorkerThreads(threads).ok());
  dev.ConfigureFaults({seed, rate});
  return RunBattery(&dev, allow_fallback);
}

TEST(FaultSweep, QueriesDegradeCleanlyAndDeterministicallyAcrossSeeds) {
  // Healthy reference: what every OK outcome must equal, bit for bit.
  std::vector<std::string> reference;
  {
    Device healthy(64, 64);
    reference = RunBattery(&healthy, /*allow_fallback=*/true);
    for (const std::string& r : reference) {
      ASSERT_NE(r.find(":ok:"), std::string::npos) << r;
    }
  }

  for (uint64_t seed = 1; seed <= 64; ++seed) {
    // Sweep a spread of fault rates: occasional glitches through to a device
    // that faults on most draws.
    const double rate = 0.02 * static_cast<double>(1 + seed % 5);

    // With the full degradation ladder enabled every query must come back
    // with the healthy answer: transient faults retry, persistent faults
    // fall back to the CPU tier which matches the GPU bit for bit.
    const std::vector<std::string> resilient =
        RunSweepConfig(seed, rate, /*threads=*/1, /*allow_fallback=*/true);
    EXPECT_EQ(resilient, reference) << "seed " << seed;

    // Without the CPU tier, a query either matches the healthy answer or
    // fails with a clean Status -- never a silently wrong answer.
    const std::vector<std::string> raw =
        RunSweepConfig(seed, rate, /*threads=*/1, /*allow_fallback=*/false);
    ASSERT_EQ(raw.size(), reference.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i].find(":ok:") != std::string::npos) {
        EXPECT_EQ(raw[i], reference[i]) << "seed " << seed;
      }
    }

    // Same seed => identical outcome at every thread count, in both modes.
    // (Thread-count independence: every injector draw and interrupt check
    // happens on the thread issuing the pass, never inside worker bands.)
    for (int threads : {2, 4, 8}) {
      EXPECT_EQ(RunSweepConfig(seed, rate, threads, true), resilient)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(RunSweepConfig(seed, rate, threads, false), raw)
          << "seed " << seed << " threads " << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Fault sweep over the planner rewrites (DESIGN.md §14): fused chains and
// the depth-plane cache must obey the same contract as the classic pass
// sequences -- healthy answer or clean Status, never silently wrong, and
// identical outcomes whether the rewrite is on or off. The warm (cache-hit)
// path is covered by running each count twice.
// ---------------------------------------------------------------------------

std::vector<std::string> RunPlannedConfig(uint64_t seed, double rate,
                                          int threads,
                                          const core::PlanOptions& plan) {
  Device dev(64, 64);
  EXPECT_TRUE(dev.SetWorkerThreads(threads).ok());
  dev.ConfigureFaults({seed, rate});
  std::vector<std::string> out;
  auto exec_or = core::Executor::Make(&dev, &SweepTable());
  if (!exec_or.ok()) {
    out.push_back("make:" + exec_or.status().ToString());
    return out;
  }
  std::unique_ptr<core::Executor> exec = std::move(exec_or).ValueOrDie();
  core::ResilienceOptions options;
  options.allow_cpu_fallback = true;
  exec->set_resilience_options(options);
  exec->set_plan_options(plan);
  exec->SetTableIdentity("sweep", /*version=*/1);
  const predicate::ExprPtr where =
      predicate::Expr::Pred(0, CompareOp::kGreater, 5000.0f);

  // Twice: the second round takes the cache-hit path when the cache is on.
  for (int round = 0; round < 2; ++round) {
    auto count = exec->Count(where);
    out.push_back(count.ok()
                      ? "count:ok:" + std::to_string(count.ValueOrDie())
                      : "count:" + count.status().ToString());
  }
  return out;
}

TEST(FaultSweep, PlannerRewritesMatchClassicPlansUnderFaults) {
  // Healthy classic reference.
  std::vector<std::string> reference;
  {
    core::PlanOptions off;
    off.fusion = false;
    off.plane_cache = false;
    reference = RunPlannedConfig(/*seed=*/0, /*rate=*/0.0, /*threads=*/1, off);
    for (const std::string& r : reference) {
      ASSERT_NE(r.find(":ok:"), std::string::npos) << r;
    }
  }

  std::vector<core::PlanOptions> configs(3);
  configs[0].fusion = true;
  configs[0].plane_cache = false;
  configs[1].fusion = true;
  configs[1].plane_cache = true;
  configs[2].fusion = false;
  configs[2].plane_cache = true;

  for (uint64_t seed = 1; seed <= 16; ++seed) {
    const double rate = 0.02 * static_cast<double>(1 + seed % 5);
    for (const core::PlanOptions& plan : configs) {
      // With the full degradation ladder, every configuration must come
      // back with the healthy classic answer.
      const std::vector<std::string> serial =
          RunPlannedConfig(seed, rate, /*threads=*/1, plan);
      EXPECT_EQ(serial, reference)
          << "seed " << seed << " fusion=" << plan.fusion
          << " cache=" << plan.plane_cache;
      for (int threads : {4, 8}) {
        EXPECT_EQ(RunPlannedConfig(seed, rate, threads, plan), serial)
            << "seed " << seed << " threads " << threads
            << " fusion=" << plan.fusion << " cache=" << plan.plane_cache;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Pool soak (DESIGN.md §15): 16 concurrent sessions over one shared catalog,
// device pool, and admission controller, sweeping 64 fault seeds split
// across the sessions while a chaos thread hot-unplugs and revives a device.
// The contract is the fault-sweep contract lifted to the multi-device tier:
// every statement must return EXACTLY the healthy single-device answer --
// injected faults are absorbed by replica failover and the CPU rung, so a
// surfaced error or a divergent answer is a bug, not bad luck.
// ---------------------------------------------------------------------------

std::vector<std::string> SoakStatements(uint64_t seed) {
  const uint64_t t = 1000 * (seed % 40);
  const uint64_t f = 10000 * (1 + seed % 20);
  return {
      "SELECT COUNT(*) FROM sweep WHERE data_count > " + std::to_string(t),
      "SELECT SUM(data_count) FROM sweep WHERE flow_rate < " +
          std::to_string(f),
      "SELECT MAX(flow_rate) FROM sweep WHERE data_count > " +
          std::to_string(t),
      "SELECT * FROM sweep WHERE data_count > " + std::to_string(t + 60000) +
          " LIMIT 5",
  };
}

std::string FlattenResult(const Result<sql::QueryResult>& result) {
  if (!result.ok()) return "error:" + result.status().ToString();
  const sql::QueryResult& r = result.ValueOrDie();
  std::string out = "ok:" + std::to_string(r.count) + ":" +
                    std::to_string(r.scalar) + ":rows";
  for (const uint32_t id : r.row_ids) out += "," + std::to_string(id);
  return out;
}

TEST(PoolSoak, SixteenSessionsSixtyFourSeedsZeroWrongAnswers) {
  const db::Table& table = SweepTable();
  constexpr int kSessions = 16;
  constexpr uint64_t kSeeds = 64;

  // Healthy single-device reference, computed serially up front.
  std::map<uint64_t, std::vector<std::string>> reference;
  {
    db::Catalog catalog;
    ASSERT_OK(catalog.Register("sweep", &table));
    Device device(64, 64);
    sql::Session session(&device, &catalog);
    for (uint64_t seed = 1; seed <= kSeeds; ++seed) {
      for (const std::string& sql : SoakStatements(seed)) {
        const std::string flat = FlattenResult(session.Execute(sql));
        ASSERT_EQ(flat.rfind("ok:", 0), 0u) << sql << " -> " << flat;
        reference[seed].push_back(flat);
      }
    }
  }

  // Shared multi-session tier: one catalog, one fault-injected pool, one
  // admission controller. $GPUDB_FAULT_SEED/RATE drive the sweep when set
  // (the check.sh pool stage exports a positive rate); default 5%.
  db::Catalog catalog;
  ASSERT_OK(catalog.Register("sweep", &table));
  DevicePoolOptions pool_options;
  pool_options.devices = 4;
  pool_options.width = 64;
  pool_options.height = 64;
  pool_options.faults = FaultInjector::ConfigFromEnv();
  if (!pool_options.faults.enabled()) {
    pool_options.faults = {/*seed=*/20260805, /*rate=*/0.05};
  }
  ASSERT_OK_AND_ASSIGN(auto pool, DevicePool::Make(pool_options));
  sql::AdmissionOptions admission_options;
  admission_options.max_concurrent = 8;
  admission_options.queue_capacity = kSessions;
  admission_options.max_queue_wait_ms = 60000.0;  // soak must not shed
  sql::AdmissionController admission(admission_options);

  std::vector<std::vector<std::string>> failures(kSessions);
  std::vector<std::thread> threads;
  threads.reserve(kSessions);
  for (int s = 0; s < kSessions; ++s) {
    threads.emplace_back([&, s] {
      // Each session owns its classic device (unused: every soak statement
      // is poolable) and shares the pool, catalog, and admission tier.
      Device session_device(64, 64);
      sql::Session session(&session_device, &catalog);
      session.SetDevicePool(pool.get());
      session.set_admission(&admission);
      session.set_tenant("soak-" + std::to_string(s));
      for (uint64_t seed = 1 + s; seed <= kSeeds; seed += kSessions) {
        const std::vector<std::string>& want = reference[seed];
        const std::vector<std::string> statements = SoakStatements(seed);
        for (size_t i = 0; i < statements.size(); ++i) {
          const std::string got = FlattenResult(session.Execute(statements[i]));
          if (got != want[i]) {
            failures[s].push_back("seed " + std::to_string(seed) + " [" +
                                  statements[i] + "] got " + got +
                                  " want " + want[i]);
          }
        }
      }
    });
  }
  // Chaos: hot-unplug one device mid-soak, then bring it back. Failover and
  // probe recovery must keep every in-flight answer exact.
  pool->ForceDeviceLost(1);
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  pool->Revive(1);
  for (std::thread& t : threads) t.join();

  for (int s = 0; s < kSessions; ++s) {
    for (const std::string& failure : failures[s]) {
      ADD_FAILURE() << "session " << s << ": " << failure;
    }
  }
}

}  // namespace
}  // namespace gpu
}  // namespace gpudb
