// State-machine fuzz: drive the Device through long random sequences of API
// calls (valid and invalid) and check that it never crashes, that errors are
// Status values rather than corruption, and that the hardware counters stay
// internally consistent. The simulator is the foundation of every result in
// this repository; this test pins its robustness under arbitrary use.

#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/gpu/device.h"
#include "src/gpu/fragment_program.h"
#include "tests/test_util.h"

namespace gpudb {
namespace gpu {
namespace {

class DeviceFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeviceFuzz, RandomApiSequencesNeverCorruptState) {
  Random rng(GetParam());
  Device dev(32, 32);
  std::vector<TextureId> ids;
  const TestBitProgram test_bit(0, 2);
  const SemilinearProgram semilinear({1, 0, 0, 0}, CompareOp::kGreater, 8.0f);
  bool query_open = false;

  for (int step = 0; step < 400; ++step) {
    switch (rng.NextUint64(16)) {
      case 0: {  // upload a random texture
        const size_t n = 1 + rng.NextUint64(1024);
        std::vector<float> vals(n);
        for (auto& v : vals) {
          v = static_cast<float>(rng.NextUint64(256));
        }
        auto tex = Texture::FromColumns({&vals}, 32);
        ASSERT_TRUE(tex.ok());
        auto id = dev.UploadTexture(std::move(tex).ValueOrDie());
        if (id.ok()) ids.push_back(id.ValueOrDie());
        break;
      }
      case 1: {  // bind something (possibly invalid)
        const int unit = static_cast<int>(rng.NextUint64(6)) - 1;
        const TextureId id =
            ids.empty() ? static_cast<TextureId>(rng.NextUint64(4))
                        : ids[rng.NextUint64(ids.size())];
        (void)dev.BindTextureUnit(unit, id);  // may legitimately fail
        break;
      }
      case 2:
        (void)dev.SetViewport(rng.NextUint64(1200));  // may exceed fb
        break;
      case 3:
        dev.SetDepthTest(rng.NextUint64(2) == 0,
                         static_cast<CompareOp>(rng.NextUint64(8)));
        break;
      case 4:
        dev.SetStencilTest(rng.NextUint64(2) == 0,
                           static_cast<CompareOp>(rng.NextUint64(8)),
                           static_cast<uint8_t>(rng.NextUint64(256)),
                           static_cast<uint8_t>(rng.NextUint64(256)));
        dev.SetStencilOp(static_cast<StencilOp>(rng.NextUint64(6)),
                         static_cast<StencilOp>(rng.NextUint64(6)),
                         static_cast<StencilOp>(rng.NextUint64(6)));
        break;
      case 5:
        dev.SetAlphaTest(rng.NextUint64(2) == 0,
                         static_cast<CompareOp>(rng.NextUint64(8)),
                         static_cast<float>(rng.NextDouble()));
        break;
      case 6:
        dev.SetDepthBoundsTest(rng.NextUint64(2) == 0,
                               static_cast<float>(rng.NextDouble()),
                               static_cast<float>(rng.NextDouble()));
        break;
      case 7:
        dev.ClearDepth(static_cast<float>(rng.NextDouble()));
        dev.ClearStencil(static_cast<uint8_t>(rng.NextUint64(256)));
        break;
      case 8:
        (void)dev.RenderQuad(static_cast<float>(rng.NextDouble()));
        break;
      case 9: {
        // Randomly install a program (or none) and draw textured.
        const uint64_t pick = rng.NextUint64(3);
        dev.UseProgram(pick == 0   ? &test_bit
                       : pick == 1 ? static_cast<const FragmentProgram*>(
                                         &semilinear)
                                   : nullptr);
        (void)dev.RenderTexturedQuad();  // may fail: unbound / small texture
        dev.UseProgram(nullptr);
        break;
      }
      case 10:
        if (!query_open) {
          query_open = dev.BeginOcclusionQuery().ok();
        }
        break;
      case 11:
        if (query_open) {
          auto r = dev.EndOcclusionQuery();
          ASSERT_TRUE(r.ok());
          query_open = false;
        } else {
          ASSERT_FALSE(dev.EndOcclusionQuery().ok());
        }
        break;
      case 12:
        (void)dev.ReadStencil();
        break;
      case 13:
        if (!ids.empty()) {
          (void)dev.CopyColorToTexture(ids[rng.NextUint64(ids.size())]);
        }
        break;
      case 14:
        if (!ids.empty()) {
          std::vector<float> patch(1 + rng.NextUint64(64), 3.0f);
          (void)dev.UpdateTexture(ids[rng.NextUint64(ids.size())],
                                  rng.NextUint64(1200), patch, 0);
        }
        break;
      case 15:
        (void)dev.SetVideoMemoryBudget(512 + rng.NextUint64(16384));
        break;
    }

    // Invariants after every step.
    const DeviceCounters& c = dev.counters();
    ASSERT_GE(c.fragments_generated, c.fragments_passed);
    ASSERT_EQ(c.passes, c.pass_log.size());
    ASSERT_LE(dev.video_memory_used(), dev.video_memory_budget());
    ASSERT_GE(dev.viewport_pixels(), 1u);
    ASSERT_LE(dev.viewport_pixels(), dev.framebuffer().pixel_count());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeviceFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace gpu
}  // namespace gpudb
