// State-machine fuzz: drive the Device through long random sequences of API
// calls (valid and invalid) and check that it never crashes, that errors are
// Status values rather than corruption, and that the hardware counters stay
// internally consistent. The simulator is the foundation of every result in
// this repository; this test pins its robustness under arbitrary use.

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/executor.h"
#include "src/core/resilience.h"
#include "src/db/datagen.h"
#include "src/gpu/device.h"
#include "src/gpu/fault_injector.h"
#include "src/gpu/fragment_program.h"
#include "tests/test_util.h"

namespace gpudb {
namespace gpu {
namespace {

class DeviceFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DeviceFuzz, RandomApiSequencesNeverCorruptState) {
  Random rng(GetParam());
  Device dev(32, 32);
  std::vector<TextureId> ids;
  const TestBitProgram test_bit(0, 2);
  const SemilinearProgram semilinear({1, 0, 0, 0}, CompareOp::kGreater, 8.0f);
  bool query_open = false;

  for (int step = 0; step < 400; ++step) {
    switch (rng.NextUint64(16)) {
      case 0: {  // upload a random texture
        const size_t n = 1 + rng.NextUint64(1024);
        std::vector<float> vals(n);
        for (auto& v : vals) {
          v = static_cast<float>(rng.NextUint64(256));
        }
        auto tex = Texture::FromColumns({&vals}, 32);
        ASSERT_TRUE(tex.ok());
        auto id = dev.UploadTexture(std::move(tex).ValueOrDie());
        if (id.ok()) ids.push_back(id.ValueOrDie());
        break;
      }
      case 1: {  // bind something (possibly invalid)
        const int unit = static_cast<int>(rng.NextUint64(6)) - 1;
        const TextureId id =
            ids.empty() ? static_cast<TextureId>(rng.NextUint64(4))
                        : ids[rng.NextUint64(ids.size())];
        (void)dev.BindTextureUnit(unit, id);  // may legitimately fail
        break;
      }
      case 2:
        (void)dev.SetViewport(rng.NextUint64(1200));  // may exceed fb
        break;
      case 3:
        dev.SetDepthTest(rng.NextUint64(2) == 0,
                         static_cast<CompareOp>(rng.NextUint64(8)));
        break;
      case 4:
        dev.SetStencilTest(rng.NextUint64(2) == 0,
                           static_cast<CompareOp>(rng.NextUint64(8)),
                           static_cast<uint8_t>(rng.NextUint64(256)),
                           static_cast<uint8_t>(rng.NextUint64(256)));
        dev.SetStencilOp(static_cast<StencilOp>(rng.NextUint64(6)),
                         static_cast<StencilOp>(rng.NextUint64(6)),
                         static_cast<StencilOp>(rng.NextUint64(6)));
        break;
      case 5:
        dev.SetAlphaTest(rng.NextUint64(2) == 0,
                         static_cast<CompareOp>(rng.NextUint64(8)),
                         static_cast<float>(rng.NextDouble()));
        break;
      case 6:
        dev.SetDepthBoundsTest(rng.NextUint64(2) == 0,
                               static_cast<float>(rng.NextDouble()),
                               static_cast<float>(rng.NextDouble()));
        break;
      case 7:
        dev.ClearDepth(static_cast<float>(rng.NextDouble()));
        dev.ClearStencil(static_cast<uint8_t>(rng.NextUint64(256)));
        break;
      case 8:
        (void)dev.RenderQuad(static_cast<float>(rng.NextDouble()));
        break;
      case 9: {
        // Randomly install a program (or none) and draw textured.
        const uint64_t pick = rng.NextUint64(3);
        dev.UseProgram(pick == 0   ? &test_bit
                       : pick == 1 ? static_cast<const FragmentProgram*>(
                                         &semilinear)
                                   : nullptr);
        (void)dev.RenderTexturedQuad();  // may fail: unbound / small texture
        dev.UseProgram(nullptr);
        break;
      }
      case 10:
        if (!query_open) {
          query_open = dev.BeginOcclusionQuery().ok();
        }
        break;
      case 11:
        if (query_open) {
          auto r = dev.EndOcclusionQuery();
          ASSERT_TRUE(r.ok());
          query_open = false;
        } else {
          ASSERT_FALSE(dev.EndOcclusionQuery().ok());
        }
        break;
      case 12:
        (void)dev.ReadStencil();
        break;
      case 13:
        if (!ids.empty()) {
          (void)dev.CopyColorToTexture(ids[rng.NextUint64(ids.size())]);
        }
        break;
      case 14:
        if (!ids.empty()) {
          std::vector<float> patch(1 + rng.NextUint64(64), 3.0f);
          (void)dev.UpdateTexture(ids[rng.NextUint64(ids.size())],
                                  rng.NextUint64(1200), patch, 0);
        }
        break;
      case 15:
        (void)dev.SetVideoMemoryBudget(512 + rng.NextUint64(16384));
        break;
    }

    // Invariants after every step.
    const DeviceCounters& c = dev.counters();
    ASSERT_GE(c.fragments_generated, c.fragments_passed);
    ASSERT_EQ(c.passes, c.pass_log.size());
    ASSERT_LE(dev.video_memory_used(), dev.video_memory_budget());
    ASSERT_GE(dev.viewport_pixels(), 1u);
    ASSERT_LE(dev.viewport_pixels(), dev.framebuffer().pixel_count());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeviceFuzz,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Fault sweep: run a fixed battery of executor queries against a
// fault-injected device across many seeds and every supported thread count.
// The contract under injected faults is strict:
//   * a query either returns EXACTLY the healthy-path answer (after
//     retry / circuit-breaker / CPU fallback) or a clean non-OK Status --
//     never a crash, never a silently wrong answer;
//   * the same seed produces bit-identical outcomes at 1/2/4/8 worker
//     threads, because every injector draw happens on the issuing thread.
// ---------------------------------------------------------------------------

const db::Table& SweepTable() {
  static const db::Table* table = [] {
    auto t = db::MakeTcpIpTable(1000, /*seed=*/5);
    EXPECT_TRUE(t.ok());
    return new db::Table(std::move(t).ValueOrDie());
  }();
  return *table;
}

/// Runs the query battery and flattens each outcome to a string: the exact
/// value when OK, the full Status (code + message) when not.
std::vector<std::string> RunBattery(Device* dev, bool allow_fallback) {
  std::vector<std::string> out;
  auto exec_or = core::Executor::Make(dev, &SweepTable());
  if (!exec_or.ok()) {
    out.push_back("make:" + exec_or.status().ToString());
    return out;
  }
  std::unique_ptr<core::Executor> exec = std::move(exec_or).ValueOrDie();
  core::ResilienceOptions options;
  options.allow_cpu_fallback = allow_fallback;
  exec->set_resilience_options(options);
  const predicate::ExprPtr where =
      predicate::Expr::Pred(0, CompareOp::kGreater, 5000.0f);

  auto count = exec->Count(where);
  out.push_back(count.ok() ? "count:ok:" + std::to_string(count.ValueOrDie())
                           : "count:" + count.status().ToString());
  auto sum =
      exec->Aggregate(core::AggregateKind::kSum, "data_count", where);
  out.push_back(sum.ok() ? "sum:ok:" + std::to_string(sum.ValueOrDie())
                         : "sum:" + sum.status().ToString());
  auto kth = exec->KthLargest("data_count", 10, where);
  out.push_back(kth.ok() ? "kth:ok:" + std::to_string(kth.ValueOrDie())
                         : "kth:" + kth.status().ToString());
  auto range = exec->RangeCount("data_count", 100.0, 60000.0);
  out.push_back(range.ok() ? "range:ok:" + std::to_string(range.ValueOrDie())
                           : "range:" + range.status().ToString());
  return out;
}

std::vector<std::string> RunSweepConfig(uint64_t seed, double rate,
                                        int threads, bool allow_fallback) {
  Device dev(64, 64);
  EXPECT_TRUE(dev.SetWorkerThreads(threads).ok());
  dev.ConfigureFaults({seed, rate});
  return RunBattery(&dev, allow_fallback);
}

TEST(FaultSweep, QueriesDegradeCleanlyAndDeterministicallyAcrossSeeds) {
  // Healthy reference: what every OK outcome must equal, bit for bit.
  std::vector<std::string> reference;
  {
    Device healthy(64, 64);
    reference = RunBattery(&healthy, /*allow_fallback=*/true);
    for (const std::string& r : reference) {
      ASSERT_NE(r.find(":ok:"), std::string::npos) << r;
    }
  }

  for (uint64_t seed = 1; seed <= 64; ++seed) {
    // Sweep a spread of fault rates: occasional glitches through to a device
    // that faults on most draws.
    const double rate = 0.02 * static_cast<double>(1 + seed % 5);

    // With the full degradation ladder enabled every query must come back
    // with the healthy answer: transient faults retry, persistent faults
    // fall back to the CPU tier which matches the GPU bit for bit.
    const std::vector<std::string> resilient =
        RunSweepConfig(seed, rate, /*threads=*/1, /*allow_fallback=*/true);
    EXPECT_EQ(resilient, reference) << "seed " << seed;

    // Without the CPU tier, a query either matches the healthy answer or
    // fails with a clean Status -- never a silently wrong answer.
    const std::vector<std::string> raw =
        RunSweepConfig(seed, rate, /*threads=*/1, /*allow_fallback=*/false);
    ASSERT_EQ(raw.size(), reference.size());
    for (size_t i = 0; i < raw.size(); ++i) {
      if (raw[i].find(":ok:") != std::string::npos) {
        EXPECT_EQ(raw[i], reference[i]) << "seed " << seed;
      }
    }

    // Same seed => identical outcome at every thread count, in both modes.
    // (Thread-count independence: every injector draw and interrupt check
    // happens on the thread issuing the pass, never inside worker bands.)
    for (int threads : {2, 4, 8}) {
      EXPECT_EQ(RunSweepConfig(seed, rate, threads, true), resilient)
          << "seed " << seed << " threads " << threads;
      EXPECT_EQ(RunSweepConfig(seed, rate, threads, false), raw)
          << "seed " << seed << " threads " << threads;
    }
  }
}

// ---------------------------------------------------------------------------
// Fault sweep over the planner rewrites (DESIGN.md §14): fused chains and
// the depth-plane cache must obey the same contract as the classic pass
// sequences -- healthy answer or clean Status, never silently wrong, and
// identical outcomes whether the rewrite is on or off. The warm (cache-hit)
// path is covered by running each count twice.
// ---------------------------------------------------------------------------

std::vector<std::string> RunPlannedConfig(uint64_t seed, double rate,
                                          int threads,
                                          const core::PlanOptions& plan) {
  Device dev(64, 64);
  EXPECT_TRUE(dev.SetWorkerThreads(threads).ok());
  dev.ConfigureFaults({seed, rate});
  std::vector<std::string> out;
  auto exec_or = core::Executor::Make(&dev, &SweepTable());
  if (!exec_or.ok()) {
    out.push_back("make:" + exec_or.status().ToString());
    return out;
  }
  std::unique_ptr<core::Executor> exec = std::move(exec_or).ValueOrDie();
  core::ResilienceOptions options;
  options.allow_cpu_fallback = true;
  exec->set_resilience_options(options);
  exec->set_plan_options(plan);
  exec->SetTableIdentity("sweep", /*version=*/1);
  const predicate::ExprPtr where =
      predicate::Expr::Pred(0, CompareOp::kGreater, 5000.0f);

  // Twice: the second round takes the cache-hit path when the cache is on.
  for (int round = 0; round < 2; ++round) {
    auto count = exec->Count(where);
    out.push_back(count.ok()
                      ? "count:ok:" + std::to_string(count.ValueOrDie())
                      : "count:" + count.status().ToString());
  }
  return out;
}

TEST(FaultSweep, PlannerRewritesMatchClassicPlansUnderFaults) {
  // Healthy classic reference.
  std::vector<std::string> reference;
  {
    core::PlanOptions off;
    off.fusion = false;
    off.plane_cache = false;
    reference = RunPlannedConfig(/*seed=*/0, /*rate=*/0.0, /*threads=*/1, off);
    for (const std::string& r : reference) {
      ASSERT_NE(r.find(":ok:"), std::string::npos) << r;
    }
  }

  std::vector<core::PlanOptions> configs(3);
  configs[0].fusion = true;
  configs[0].plane_cache = false;
  configs[1].fusion = true;
  configs[1].plane_cache = true;
  configs[2].fusion = false;
  configs[2].plane_cache = true;

  for (uint64_t seed = 1; seed <= 16; ++seed) {
    const double rate = 0.02 * static_cast<double>(1 + seed % 5);
    for (const core::PlanOptions& plan : configs) {
      // With the full degradation ladder, every configuration must come
      // back with the healthy classic answer.
      const std::vector<std::string> serial =
          RunPlannedConfig(seed, rate, /*threads=*/1, plan);
      EXPECT_EQ(serial, reference)
          << "seed " << seed << " fusion=" << plan.fusion
          << " cache=" << plan.plane_cache;
      for (int threads : {4, 8}) {
        EXPECT_EQ(RunPlannedConfig(seed, rate, threads, plan), serial)
            << "seed " << seed << " threads " << threads
            << " fusion=" << plan.fusion << " cache=" << plan.plane_cache;
      }
    }
  }
}

}  // namespace
}  // namespace gpu
}  // namespace gpudb
