#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "src/db/csv.h"
#include "src/db/datagen.h"
#include "tests/test_util.h"

namespace gpudb {
namespace db {
namespace {

TEST(CsvTest, ParsesHeaderAndTypes) {
  ASSERT_OK_AND_ASSIGN(Table t, ReadCsv("a,b,c\n"
                                        "1,2.5,3\n"
                                        "4,5.25,6\n"));
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.num_columns(), 3u);
  EXPECT_EQ(t.column(0).type(), ColumnType::kInt24);   // all integral
  EXPECT_EQ(t.column(1).type(), ColumnType::kFloat32); // fractional
  EXPECT_EQ(t.column(2).type(), ColumnType::kInt24);
  EXPECT_EQ(t.column(0).int_value(1), 4u);
  EXPECT_FLOAT_EQ(t.column(1).value(0), 2.5f);
}

TEST(CsvTest, NegativeAndHugeValuesBecomeFloat) {
  ASSERT_OK_AND_ASSIGN(Table t, ReadCsv("x,y\n-1,20000000\n2,1\n"));
  EXPECT_EQ(t.column(0).type(), ColumnType::kFloat32);  // negative
  EXPECT_EQ(t.column(1).type(), ColumnType::kFloat32);  // >= 2^24
}

TEST(CsvTest, HandlesWhitespaceAndCrLf) {
  ASSERT_OK_AND_ASSIGN(Table t, ReadCsv(" a , b \r\n 1 , 2 \r\n 3 , 4 \r\n"));
  EXPECT_EQ(t.column(0).name(), "a");
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.column(1).int_value(1), 4u);
}

TEST(CsvTest, RejectsMalformedInput) {
  EXPECT_FALSE(ReadCsv("").ok());
  EXPECT_FALSE(ReadCsv("a,b\n").ok());              // no data
  EXPECT_FALSE(ReadCsv("a,b\n1\n").ok());           // field count mismatch
  EXPECT_FALSE(ReadCsv("a,b\n1,x\n").ok());         // non-numeric
  EXPECT_FALSE(ReadCsv("a,b\n1,\n").ok());          // empty cell
  EXPECT_FALSE(ReadCsv("a,\n1,2\n").ok());          // empty header name
  EXPECT_FALSE(ReadCsv("a,a\n1,2\n").ok());         // duplicate column
  EXPECT_FALSE(ReadCsv("a,b\n1,2e\n").ok());        // trailing garbage
}

TEST(CsvTest, RoundTripsThroughWrite) {
  ASSERT_OK_AND_ASSIGN(Table original, MakeCensusTable(200));
  const std::string csv = WriteCsv(original);
  ASSERT_OK_AND_ASSIGN(Table reloaded, ReadCsv(csv));
  ASSERT_EQ(reloaded.num_rows(), original.num_rows());
  ASSERT_EQ(reloaded.num_columns(), original.num_columns());
  for (size_t c = 0; c < original.num_columns(); ++c) {
    EXPECT_EQ(reloaded.column(c).name(), original.column(c).name());
    EXPECT_EQ(reloaded.column(c).type(), original.column(c).type());
    for (size_t row = 0; row < original.num_rows(); ++row) {
      EXPECT_EQ(reloaded.column(c).value(row), original.column(c).value(row))
          << "col " << c << " row " << row;
    }
  }
}

TEST(CsvTest, FileRoundTrip) {
  ASSERT_OK_AND_ASSIGN(Table original, MakeTcpIpTable(100));
  const std::string path = ::testing::TempDir() + "/gpudb_csv_test.csv";
  ASSERT_OK(WriteCsvFile(original, path));
  ASSERT_OK_AND_ASSIGN(Table reloaded, ReadCsvFile(path));
  EXPECT_EQ(reloaded.num_rows(), 100u);
  EXPECT_EQ(reloaded.column(0).value(42), original.column(0).value(42));
  std::remove(path.c_str());
  EXPECT_FALSE(ReadCsvFile("/no/such/file.csv").ok());
}

TEST(CsvTest, ScientificNotationFloats) {
  ASSERT_OK_AND_ASSIGN(Table t, ReadCsv("v\n1e3\n2.5e-2\n"));
  EXPECT_EQ(t.column(0).type(), ColumnType::kFloat32);
  EXPECT_FLOAT_EQ(t.column(0).value(0), 1000.0f);
  EXPECT_FLOAT_EQ(t.column(0).value(1), 0.025f);
}

}  // namespace
}  // namespace db
}  // namespace gpudb
