#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/bitonic_sort.h"
#include "src/gpu/device.h"
#include "tests/test_util.h"

namespace gpudb {
namespace core {
namespace {

using testing_util::RandomInts;
using testing_util::ToFloats;

class BitonicSortTest : public ::testing::Test {
 protected:
  BitonicSortTest() : device_(128, 128) {}
  gpu::Device device_;
};

TEST_F(BitonicSortTest, SortsPowerOfTwoInput) {
  const std::vector<float> values = ToFloats(RandomInts(1024, 12, 201));
  std::vector<float> expected = values;
  std::sort(expected.begin(), expected.end());
  ASSERT_OK_AND_ASSIGN(std::vector<float> sorted,
                       BitonicSort(&device_, values));
  EXPECT_EQ(sorted, expected);
}

TEST_F(BitonicSortTest, SortsNonPowerOfTwoInput) {
  // Padding with +inf must not leak into the result.
  const std::vector<float> values = ToFloats(RandomInts(1000, 10, 202));
  std::vector<float> expected = values;
  std::sort(expected.begin(), expected.end());
  ASSERT_OK_AND_ASSIGN(std::vector<float> sorted,
                       BitonicSort(&device_, values));
  ASSERT_EQ(sorted.size(), values.size());
  EXPECT_EQ(sorted, expected);
}

TEST_F(BitonicSortTest, HandlesTinyInputs) {
  ASSERT_OK_AND_ASSIGN(std::vector<float> one, BitonicSort(&device_, {5.0f}));
  EXPECT_EQ(one, std::vector<float>({5.0f}));
  ASSERT_OK_AND_ASSIGN(std::vector<float> two,
                       BitonicSort(&device_, {9.0f, 3.0f}));
  EXPECT_EQ(two, std::vector<float>({3.0f, 9.0f}));
  EXPECT_FALSE(BitonicSort(&device_, {}).ok());
}

TEST_F(BitonicSortTest, SortsDuplicatesAndNegatives) {
  const std::vector<float> values = {3.5f, -1.0f, 3.5f, 0.0f, -7.25f,
                                     3.5f, 0.0f,  100.0f};
  std::vector<float> expected = values;
  std::sort(expected.begin(), expected.end());
  ASSERT_OK_AND_ASSIGN(std::vector<float> sorted,
                       BitonicSort(&device_, values));
  EXPECT_EQ(sorted, expected);
}

TEST_F(BitonicSortTest, AlreadySortedAndReversed) {
  std::vector<float> ascending(512), descending(512);
  for (int i = 0; i < 512; ++i) {
    ascending[i] = static_cast<float>(i);
    descending[i] = static_cast<float>(511 - i);
  }
  ASSERT_OK_AND_ASSIGN(std::vector<float> a, BitonicSort(&device_, ascending));
  EXPECT_EQ(a, ascending);
  ASSERT_OK_AND_ASSIGN(std::vector<float> d,
                       BitonicSort(&device_, descending));
  EXPECT_EQ(d, ascending);
}

TEST_F(BitonicSortTest, StepCountIsLogSquared) {
  EXPECT_EQ(BitonicStepCount(1), 0u);
  EXPECT_EQ(BitonicStepCount(2), 1u);
  EXPECT_EQ(BitonicStepCount(4), 3u);
  EXPECT_EQ(BitonicStepCount(8), 6u);
  EXPECT_EQ(BitonicStepCount(1024), 55u);
  // Non-powers round up to the padded size.
  EXPECT_EQ(BitonicStepCount(1000), 55u);
}

TEST_F(BitonicSortTest, PassCountMatchesNetworkSize) {
  const std::vector<float> values = ToFloats(RandomInts(256, 8, 203));
  device_.ResetCounters();
  ASSERT_OK(BitonicSort(&device_, values).status());
  // Each network step = one render pass + one ping-pong copy pass.
  EXPECT_EQ(device_.counters().passes, 2 * BitonicStepCount(256));
}

TEST_F(BitonicSortTest, RejectsInputLargerThanFramebuffer) {
  gpu::Device tiny(8, 8);
  const std::vector<float> values = ToFloats(RandomInts(100, 8, 204));
  auto result = BitonicSort(&tiny, values);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(BitonicSortTest, RestoresViewport) {
  ASSERT_OK(device_.SetViewport(5000));
  const std::vector<float> values = ToFloats(RandomInts(128, 8, 205));
  ASSERT_OK(BitonicSort(&device_, values).status());
  EXPECT_EQ(device_.viewport_pixels(), 5000u);
}

TEST_F(BitonicSortTest, PairsSortCarriesPayloads) {
  const std::vector<uint32_t> keys_int = RandomInts(1000, 10, 206);
  const std::vector<float> keys = ToFloats(keys_int);
  std::vector<uint32_t> payloads(1000);
  for (uint32_t i = 0; i < payloads.size(); ++i) payloads[i] = i;
  ASSERT_OK_AND_ASSIGN(SortedPairs sorted,
                       BitonicSortPairs(&device_, keys, payloads));
  ASSERT_EQ(sorted.keys.size(), keys.size());
  // Keys ascending; each payload points back at a row with that key; the
  // payload set is the full permutation.
  std::vector<bool> seen(keys.size(), false);
  for (size_t i = 0; i < sorted.keys.size(); ++i) {
    if (i > 0) {
      EXPECT_LE(sorted.keys[i - 1], sorted.keys[i]) << i;
    }
    const uint32_t row = sorted.payloads[i];
    ASSERT_LT(row, keys.size());
    EXPECT_EQ(keys[row], sorted.keys[i]) << i;
    EXPECT_FALSE(seen[row]) << "payload " << row << " duplicated";
    seen[row] = true;
  }
}

TEST_F(BitonicSortTest, PairsTieBreakOnPayload) {
  // All-equal keys: payloads must come out ascending (the deterministic
  // tie-break), making the pair order total.
  const std::vector<float> keys(256, 7.0f);
  std::vector<uint32_t> payloads(256);
  for (uint32_t i = 0; i < payloads.size(); ++i) {
    payloads[i] = 255 - i;  // reversed
  }
  ASSERT_OK_AND_ASSIGN(SortedPairs sorted,
                       BitonicSortPairs(&device_, keys, payloads));
  for (size_t i = 0; i < sorted.payloads.size(); ++i) {
    EXPECT_EQ(sorted.payloads[i], i);
  }
}

TEST_F(BitonicSortTest, PairsValidateInput) {
  EXPECT_FALSE(BitonicSortPairs(&device_, {}, {}).ok());
  EXPECT_FALSE(BitonicSortPairs(&device_, {1.0f}, {1, 2}).ok());
  EXPECT_FALSE(BitonicSortPairs(&device_, {1.0f}, {1u << 24}).ok());
}

class BitonicSortProperty : public ::testing::TestWithParam<int> {};

TEST_P(BitonicSortProperty, MatchesStdSortAtManySizes) {
  const int n = GetParam();
  gpu::Device device(128, 128);
  const std::vector<float> values =
      ToFloats(RandomInts(n, 14, 300 + n));
  std::vector<float> expected = values;
  std::sort(expected.begin(), expected.end());
  auto sorted = BitonicSort(&device, values);
  ASSERT_TRUE(sorted.ok()) << sorted.status().ToString();
  EXPECT_EQ(sorted.ValueOrDie(), expected) << "n=" << n;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BitonicSortProperty,
                         ::testing::Values(1, 2, 3, 5, 7, 16, 100, 255, 256,
                                           257, 1023, 2048, 5000));

}  // namespace
}  // namespace core
}  // namespace gpudb
