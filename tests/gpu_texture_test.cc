#include <vector>

#include <gtest/gtest.h>

#include "src/gpu/texture.h"
#include "tests/test_util.h"

namespace gpudb {
namespace gpu {
namespace {

TEST(TextureTest, MakeValidatesDimensions) {
  EXPECT_FALSE(Texture::Make(0, 10, 1).ok());
  EXPECT_FALSE(Texture::Make(10, 0, 1).ok());
  EXPECT_FALSE(Texture::Make(10, 10, 0).ok());
  EXPECT_FALSE(Texture::Make(10, 10, 5).ok());
  EXPECT_TRUE(Texture::Make(10, 10, 4).ok());
}

TEST(TextureTest, ZeroInitialized) {
  ASSERT_OK_AND_ASSIGN(Texture tex, Texture::Make(4, 4, 2));
  for (uint64_t i = 0; i < tex.total_texels(); ++i) {
    EXPECT_EQ(tex.At(i, 0), 0.0f);
    EXPECT_EQ(tex.At(i, 1), 0.0f);
  }
}

TEST(TextureTest, FromColumnsRowMajorLayout) {
  std::vector<float> a = {1, 2, 3, 4, 5};
  std::vector<float> b = {10, 20, 30, 40, 50};
  ASSERT_OK_AND_ASSIGN(Texture tex, Texture::FromColumns({&a, &b}, 2));
  EXPECT_EQ(tex.width(), 2u);
  EXPECT_EQ(tex.height(), 3u);  // ceil(5/2)
  EXPECT_EQ(tex.channels(), 2);
  EXPECT_EQ(tex.valid_texels(), 5u);
  EXPECT_EQ(tex.total_texels(), 6u);
  // Linear index addressing.
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(tex.At(i, 0), a[i]);
    EXPECT_EQ(tex.At(i, 1), b[i]);
  }
  // Pixel-coordinate addressing: record 3 lives at (x=1, y=1).
  EXPECT_EQ(tex.At(/*x=*/1, /*y=*/1, /*c=*/0), 4.0f);
  // Padding texel stays zero.
  EXPECT_EQ(tex.At(5, 0), 0.0f);
}

TEST(TextureTest, FromColumnsRejectsBadInput) {
  std::vector<float> a = {1, 2, 3};
  std::vector<float> shorter = {1, 2};
  EXPECT_FALSE(Texture::FromColumns({}, 10).ok());
  EXPECT_FALSE(Texture::FromColumns({&a, &shorter}, 10).ok());
  EXPECT_FALSE(Texture::FromColumns({&a}, 0).ok());
  EXPECT_FALSE(Texture::FromColumns({&a, &a, &a, &a, &a}, 10).ok());
  EXPECT_FALSE(Texture::FromColumns({nullptr}, 10).ok());
  std::vector<float> empty;
  EXPECT_FALSE(Texture::FromColumns({&empty}, 10).ok());
}

TEST(TextureTest, ByteSizeCountsAllChannels) {
  ASSERT_OK_AND_ASSIGN(Texture tex, Texture::Make(100, 10, 4));
  EXPECT_EQ(tex.byte_size(), 100u * 10 * 4 * 4);
}

TEST(TextureTest, Int24ValuesExactThroughFloat) {
  // Paper Section 3.3: float textures precisely represent ints up to 24
  // bits. Check boundaries round-trip.
  std::vector<float> vals = {0.0f, 1.0f, static_cast<float>((1u << 24) - 1),
                             static_cast<float>(1u << 23)};
  ASSERT_OK_AND_ASSIGN(Texture tex, Texture::FromColumns({&vals}, 4));
  EXPECT_EQ(static_cast<uint32_t>(tex.At(2, 0)), (1u << 24) - 1);
  EXPECT_EQ(static_cast<uint32_t>(tex.At(3, 0)), 1u << 23);
}

TEST(TextureTest, SetUpdatesValue) {
  ASSERT_OK_AND_ASSIGN(Texture tex, Texture::Make(2, 2, 1));
  tex.Set(3, 0, 7.5f);
  EXPECT_EQ(tex.At(3, 0), 7.5f);
  EXPECT_EQ(tex.At(1, 1, 0), 7.5f);
}

}  // namespace
}  // namespace gpu
}  // namespace gpudb
