// Resilience layer: bounded retry of transient device faults, the circuit
// breaker, and the CPU fallback tier. The key contract is that a query
// answered through any degradation path returns exactly the answer the
// healthy GPU path would have produced.

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/metrics.h"
#include "src/core/executor.h"
#include "src/core/resilience.h"
#include "src/db/datagen.h"
#include "src/gpu/device.h"
#include "src/gpu/fault_injector.h"
#include "tests/test_util.h"

namespace gpudb {
namespace core {
namespace {

using gpu::CompareOp;
using predicate::Expr;
using predicate::ExprPtr;

uint64_t CounterValue(const char* name) {
  return MetricsRegistry::Global().counter(name).value();
}

TEST(RetryPolicy, BackoffIsExponentialAndCapped) {
  RetryPolicy policy;  // base 1ms, x2, cap 64ms
  EXPECT_DOUBLE_EQ(policy.DelayMs(0), 1.0);
  EXPECT_DOUBLE_EQ(policy.DelayMs(1), 2.0);
  EXPECT_DOUBLE_EQ(policy.DelayMs(5), 32.0);
  EXPECT_DOUBLE_EQ(policy.DelayMs(6), 64.0);
  EXPECT_DOUBLE_EQ(policy.DelayMs(20), 64.0);
}

TEST(FaultClassification, TransientAndDeviceFaultSets) {
  EXPECT_TRUE(IsTransientFault(Status::DeviceLost("x")));
  EXPECT_FALSE(IsTransientFault(Status::ResourceExhausted("x")));
  EXPECT_FALSE(IsTransientFault(Status::DeadlineExceeded("x")));

  EXPECT_TRUE(IsDeviceFault(Status::DeviceLost("x")));
  EXPECT_TRUE(IsDeviceFault(Status::ResourceExhausted("x")));
  EXPECT_TRUE(IsDeviceFault(Status::Internal("x")));
  EXPECT_FALSE(IsDeviceFault(Status::InvalidArgument("x")));
  EXPECT_FALSE(IsDeviceFault(Status::DeadlineExceeded("x")));
  EXPECT_FALSE(IsDeviceFault(Status::Cancelled("x")));
}

TEST(CircuitBreaker, OpensAfterThresholdAndProbesPeriodically) {
  CircuitBreaker breaker(/*threshold=*/3, /*probe_interval=*/4);
  EXPECT_FALSE(breaker.open());
  breaker.RecordFailure();
  breaker.RecordFailure();
  EXPECT_FALSE(breaker.open());
  breaker.RecordFailure();
  EXPECT_TRUE(breaker.open());

  // Every probe_interval-th skipped call probes the device path.
  int probes = 0;
  for (int i = 0; i < 8; ++i) {
    if (breaker.AllowProbe()) ++probes;
  }
  EXPECT_EQ(probes, 2);

  breaker.RecordSuccess();
  EXPECT_FALSE(breaker.open());
  EXPECT_EQ(breaker.consecutive_failures(), 0);
}

TEST(FaultInjector, SameSeedSameDrawSequence) {
  gpu::FaultInjector a;
  gpu::FaultInjector b;
  a.Configure({/*seed=*/42, /*rate=*/0.25});
  b.Configure({/*seed=*/42, /*rate=*/0.25});
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(a.OnPass().ok(), b.OnPass().ok()) << "draw " << i;
  }
  EXPECT_EQ(a.faults_injected(), b.faults_injected());
  EXPECT_GT(a.faults_injected(), 0u);  // rate 0.25 over 200 draws
}

class ResilienceTest : public ::testing::Test {
 protected:
  ResilienceTest() : device_(100, 100), reference_device_(100, 100) {
    auto t = db::MakeTcpIpTable(5000, /*seed=*/77);
    EXPECT_TRUE(t.ok());
    table_ = std::move(t).ValueOrDie();
    auto exec = Executor::Make(&device_, &table_);
    EXPECT_TRUE(exec.ok());
    executor_ = std::move(exec).ValueOrDie();
    auto ref = Executor::Make(&reference_device_, &table_);
    EXPECT_TRUE(ref.ok());
    reference_ = std::move(ref).ValueOrDie();
  }

  /// Uploads every column texture while faults are off, so a subsequent
  /// ConfigureFaults starts the draw sequence at the query's first pass.
  void WarmTextures() {
    for (size_t c = 0; c < table_.num_columns(); ++c) {
      EXPECT_TRUE(executor_->BindingFor(c).ok());
    }
  }

  gpu::Device device_;             // fault-injected
  gpu::Device reference_device_;   // always healthy
  db::Table table_;
  std::unique_ptr<Executor> executor_;
  std::unique_ptr<Executor> reference_;
};

TEST_F(ResilienceTest, TransientFaultIsRetriedAndSucceeds) {
  WarmTextures();
  // Find a seed whose first draw faults and whose next 100 draws are all
  // clean: the query's first pass dies, the retry runs start to finish.
  // (P ~ rate * (1-rate)^100 ~ 3e-4 per seed, so the search is quick.)
  const double rate = 0.05;
  uint64_t seed = 0;
  for (uint64_t candidate = 1; candidate < 100000 && seed == 0; ++candidate) {
    gpu::FaultInjector probe;
    probe.Configure({candidate, rate});
    if (probe.OnPass().ok()) continue;
    bool clean = true;
    for (int i = 0; i < 100 && clean; ++i) clean = probe.OnPass().ok();
    if (clean) seed = candidate;
  }
  ASSERT_NE(seed, 0u) << "no suitable seed found";

  // A null predicate short-circuits to a stencil clear with no fault sites;
  // a real comparison forces render passes and an occlusion readback.
  const ExprPtr where = Expr::Pred(0, CompareOp::kGreater, 5000.0f);
  ASSERT_OK_AND_ASSIGN(const uint64_t want, reference_->Count(where));

  const uint64_t retried_before = CounterValue("queries.retried");
  const uint64_t fellback_before = CounterValue("queries.fell_back");
  device_.ConfigureFaults({seed, rate, /*device_id=*/0});
  ASSERT_OK_AND_ASSIGN(uint64_t count, executor_->Count(where));
  EXPECT_EQ(count, want);
  EXPECT_EQ(CounterValue("queries.retried"), retried_before + 1);
  EXPECT_EQ(CounterValue("queries.fell_back"), fellback_before);
  EXPECT_FALSE(executor_->breaker().open());
}

TEST_F(ResilienceTest, PermanentFaultsFallBackToIdenticalCpuAnswers) {
  const ExprPtr where = Expr::And(Expr::Pred(0, CompareOp::kGreater, 5000.0f),
                                  Expr::Pred(1, CompareOp::kLess, 3.0f));

  // Healthy-path expectations first.
  ASSERT_OK_AND_ASSIGN(const uint64_t want_count, reference_->Count(where));
  ASSERT_OK_AND_ASSIGN(const std::vector<uint8_t> want_bitmap,
                       reference_->SelectBitmap(where));
  ASSERT_OK_AND_ASSIGN(const std::vector<uint32_t> want_rows,
                       reference_->SelectRowIds(where));
  ASSERT_OK_AND_ASSIGN(const double want_sum,
                       reference_->Aggregate(AggregateKind::kSum, "data_count",
                                             where));
  ASSERT_OK_AND_ASSIGN(const double want_avg,
                       reference_->Aggregate(AggregateKind::kAvg, "data_count",
                                             where));
  ASSERT_OK_AND_ASSIGN(const double want_min,
                       reference_->Aggregate(AggregateKind::kMin, "data_count",
                                             where));
  ASSERT_OK_AND_ASSIGN(const double want_max,
                       reference_->Aggregate(AggregateKind::kMax, "data_count",
                                             where));
  ASSERT_OK_AND_ASSIGN(const double want_median,
                       reference_->Aggregate(AggregateKind::kMedian,
                                             "data_count", nullptr));
  ASSERT_OK_AND_ASSIGN(const uint32_t want_kth,
                       reference_->KthLargest("data_count", 25, where));
  ASSERT_OK_AND_ASSIGN(const uint64_t want_range,
                       reference_->RangeCount("data_count", 100.0, 60000.0));

  // Every device pass faults: all answers must come from the CPU tier and
  // match the healthy GPU path exactly.
  const uint64_t fellback_before = CounterValue("queries.fell_back");
  device_.ConfigureFaults({/*seed=*/9, /*rate=*/1.0, /*device_id=*/0});

  ASSERT_OK_AND_ASSIGN(uint64_t count, executor_->Count(where));
  EXPECT_EQ(count, want_count);
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> bitmap,
                       executor_->SelectBitmap(where));
  EXPECT_EQ(bitmap, want_bitmap);
  ASSERT_OK_AND_ASSIGN(std::vector<uint32_t> rows,
                       executor_->SelectRowIds(where));
  EXPECT_EQ(rows, want_rows);
  ASSERT_OK_AND_ASSIGN(
      double sum, executor_->Aggregate(AggregateKind::kSum, "data_count",
                                       where));
  EXPECT_EQ(sum, want_sum);
  ASSERT_OK_AND_ASSIGN(
      double avg, executor_->Aggregate(AggregateKind::kAvg, "data_count",
                                       where));
  EXPECT_EQ(avg, want_avg);
  ASSERT_OK_AND_ASSIGN(
      double min, executor_->Aggregate(AggregateKind::kMin, "data_count",
                                       where));
  EXPECT_EQ(min, want_min);
  ASSERT_OK_AND_ASSIGN(
      double max, executor_->Aggregate(AggregateKind::kMax, "data_count",
                                       where));
  EXPECT_EQ(max, want_max);
  ASSERT_OK_AND_ASSIGN(double median,
                       executor_->Aggregate(AggregateKind::kMedian,
                                            "data_count", nullptr));
  EXPECT_EQ(median, want_median);
  ASSERT_OK_AND_ASSIGN(uint32_t kth,
                       executor_->KthLargest("data_count", 25, where));
  EXPECT_EQ(kth, want_kth);
  ASSERT_OK_AND_ASSIGN(uint64_t range,
                       executor_->RangeCount("data_count", 100.0, 60000.0));
  EXPECT_EQ(range, want_range);

  EXPECT_GT(CounterValue("queries.fell_back"), fellback_before);
  // Three consecutive device faults opened the breaker along the way.
  EXPECT_TRUE(executor_->breaker().open());
}

TEST_F(ResilienceTest, NoFallbackMeansCleanDeviceFaultStatus) {
  ResilienceOptions options;
  options.allow_cpu_fallback = false;
  executor_->set_resilience_options(options);
  device_.ConfigureFaults({/*seed=*/3, /*rate=*/1.0, /*device_id=*/0});
  auto result =
      executor_->Count(Expr::Pred(0, CompareOp::kGreater, 5000.0f));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeviceLost()) << result.status().ToString();
}

TEST_F(ResilienceTest, UserErrorsAreNeverRetriedOrDegraded) {
  const uint64_t retried_before = CounterValue("queries.retry_attempts");
  const uint64_t fellback_before = CounterValue("queries.fell_back");
  auto result = executor_->KthLargest("data_count", 0, nullptr);  // k=0
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
  auto missing = executor_->Aggregate(AggregateKind::kSum, "no_such_column",
                                      nullptr);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(CounterValue("queries.retry_attempts"), retried_before);
  EXPECT_EQ(CounterValue("queries.fell_back"), fellback_before);
  EXPECT_FALSE(executor_->breaker().open());
}

TEST_F(ResilienceTest, OpenBreakerSkipsDeviceAndProbesRecovery) {
  const ExprPtr where = Expr::Pred(0, CompareOp::kGreater, 5000.0f);
  ASSERT_OK_AND_ASSIGN(const uint64_t want, reference_->Count(where));

  device_.ConfigureFaults({/*seed=*/5, /*rate=*/1.0, /*device_id=*/0});
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK_AND_ASSIGN(uint64_t got, executor_->Count(where));
    EXPECT_EQ(got, want);
  }
  ASSERT_TRUE(executor_->breaker().open());
  const uint64_t draws_with_open_breaker = device_.fault_injector().draws();

  // While open, calls short-circuit to the CPU tier: the device sees no new
  // work at all (the probe interval is 8, and we issue fewer calls).
  for (int i = 0; i < 4; ++i) {
    ASSERT_OK_AND_ASSIGN(uint64_t got, executor_->Count(where));
    EXPECT_EQ(got, want);
  }
  EXPECT_EQ(device_.fault_injector().draws(), draws_with_open_breaker);

  // Heal the device; the next probe closes the breaker again.
  device_.ConfigureFaults({/*seed=*/5, /*rate=*/0.0, /*device_id=*/0});
  bool closed = false;
  for (int i = 0; i < 16 && !closed; ++i) {
    ASSERT_OK_AND_ASSIGN(uint64_t got, executor_->Count(where));
    EXPECT_EQ(got, want);
    closed = !executor_->breaker().open();
  }
  EXPECT_TRUE(closed);
}

TEST_F(ResilienceTest, VramBudgetExhaustionDegradesToCpu) {
  // A budget too small for any column texture: BindingFor's upload fails
  // with ResourceExhausted, which is a device fault -> CPU fallback.
  ASSERT_TRUE(device_.SetVideoMemoryBudget(1024).ok());
  const ExprPtr where = Expr::Pred(0, CompareOp::kGreater, 5000.0f);
  ASSERT_OK_AND_ASSIGN(const uint64_t want, reference_->Count(where));
  const uint64_t fellback_before = CounterValue("queries.fell_back");
  ASSERT_OK_AND_ASSIGN(uint64_t got, executor_->Count(where));
  EXPECT_EQ(got, want);
  EXPECT_GT(CounterValue("queries.fell_back"), fellback_before);
}

TEST(FaultDomains, PerDeviceSeedsDivergeAndReproduce) {
  // One base seed, distinct device ids: each failure domain draws from its
  // own stream (seed ^ SplitMix64(device_id)), so the same pass sequence
  // faults at different points on different devices -- and identically on
  // re-runs of the same device id.
  const uint64_t seed = 42;
  const double rate = 0.2;
  auto sequence = [&](uint32_t device_id) {
    gpu::FaultInjector injector;
    injector.Configure({seed, rate, device_id});
    std::vector<bool> fired;
    for (int i = 0; i < 256; ++i) fired.push_back(!injector.OnPass().ok());
    return fired;
  };
  const std::vector<bool> dev0 = sequence(0);
  const std::vector<bool> dev1 = sequence(1);
  const std::vector<bool> dev2 = sequence(2);
  EXPECT_EQ(dev0, sequence(0)) << "device 0 stream must be reproducible";
  EXPECT_EQ(dev1, sequence(1)) << "device 1 stream must be reproducible";
  EXPECT_NE(dev0, dev1) << "failure domains must not share one stream";
  EXPECT_NE(dev1, dev2) << "failure domains must not share one stream";
  // The legacy single-device config (device_id defaulted) is domain 0.
  gpu::FaultInjector legacy;
  legacy.Configure({seed, rate});
  std::vector<bool> fired;
  for (int i = 0; i < 256; ++i) fired.push_back(!legacy.OnPass().ok());
  EXPECT_EQ(fired, dev0);
}

TEST_F(ResilienceTest, DisabledResilienceExposesRawFaults) {
  ResilienceOptions options;
  options.enabled = false;
  executor_->set_resilience_options(options);
  device_.ConfigureFaults({/*seed=*/11, /*rate=*/1.0, /*device_id=*/0});
  auto result =
      executor_->Count(Expr::Pred(0, CompareOp::kGreater, 5000.0f));
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeviceLost());
}

}  // namespace
}  // namespace core
}  // namespace gpudb
