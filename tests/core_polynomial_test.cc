#include <vector>

#include <gtest/gtest.h>

#include "src/core/polynomial.h"
#include "src/cpu/scan.h"
#include "src/gpu/device.h"
#include "tests/test_util.h"

namespace gpudb {
namespace core {
namespace {

using gpu::CompareOp;
using testing_util::RandomInts;
using testing_util::ToFloats;

class PolynomialTest : public ::testing::Test {
 protected:
  PolynomialTest() : device_(64, 64) {}

  gpu::TextureId Upload(const std::vector<const std::vector<float>*>& cols) {
    auto tex = gpu::Texture::FromColumns(cols, 64);
    EXPECT_TRUE(tex.ok());
    auto id = device_.UploadTexture(std::move(tex).ValueOrDie());
    EXPECT_TRUE(id.ok());
    EXPECT_TRUE(device_.SetViewport(cols[0]->size()).ok());
    return id.ValueOrDie();
  }

  gpu::Device device_;
};

TEST_F(PolynomialTest, QuadraticMatchesCpu) {
  // x^2 - 10x > 200 over small integers (exact in float).
  const std::vector<float> x = ToFloats(RandomInts(2000, 6, 231));
  const gpu::TextureId tex = Upload({&x, &x});
  PolynomialQuery q;
  q.weights = {1.0f, -10.0f, 0, 0};
  q.exponents = {2, 1, 1, 1};
  q.op = CompareOp::kGreater;
  q.b = 200.0f;
  std::vector<uint8_t> mask;
  const uint64_t expected = cpu::PolynomialScan(
      {&x, &x}, q.weights, q.exponents, q.op, q.b, &mask);
  ASSERT_OK_AND_ASSIGN(uint64_t count, PolynomialSelect(&device_, tex, q));
  EXPECT_EQ(count, expected);
  EXPECT_GT(count, 0u);
  EXPECT_LT(count, x.size());
}

TEST_F(PolynomialTest, DegreeOneReducesToSemilinear) {
  const std::vector<float> a = ToFloats(RandomInts(1000, 8, 232));
  const std::vector<float> b = ToFloats(RandomInts(1000, 8, 233));
  const gpu::TextureId tex = Upload({&a, &b});
  PolynomialQuery q;
  q.weights = {1.0f, -1.0f, 0, 0};
  q.exponents = {1, 1, 1, 1};
  q.op = CompareOp::kGreaterEqual;
  q.b = 0.0f;
  std::vector<uint8_t> mask;
  const uint64_t expected =
      cpu::AttrCompareScan(a, b, CompareOp::kGreaterEqual, &mask);
  ASSERT_OK_AND_ASSIGN(uint64_t count, PolynomialSelect(&device_, tex, q));
  EXPECT_EQ(count, expected);
}

TEST_F(PolynomialTest, EllipseMembershipQuery) {
  // The GIS-flavored use the paper motivates for semi-linear sets, extended
  // to degree 2: points inside x^2/a^2 + y^2/b^2 <= 1 (scaled).
  std::vector<float> x, y;
  for (int i = -20; i <= 20; ++i) {
    for (int j = -20; j <= 20; ++j) {
      x.push_back(static_cast<float>(i));
      y.push_back(static_cast<float>(j));
    }
  }
  const gpu::TextureId tex = Upload({&x, &y});
  PolynomialQuery q;
  q.weights = {1.0f, 4.0f, 0, 0};  // x^2 + 4 y^2 <= 400
  q.exponents = {2, 2, 1, 1};
  q.op = CompareOp::kLessEqual;
  q.b = 400.0f;
  uint64_t expected = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    expected += (x[i] * x[i] + 4.0f * y[i] * y[i] <= 400.0f) ? 1 : 0;
  }
  ASSERT_OK_AND_ASSIGN(uint64_t count, PolynomialSelect(&device_, tex, q));
  EXPECT_EQ(count, expected);
}

TEST_F(PolynomialTest, ZeroExponentGivesConstantTerm) {
  const std::vector<float> a = {1, 2, 3, 4};
  const gpu::TextureId tex = Upload({&a});
  PolynomialQuery q;
  q.weights = {5.0f, 0, 0, 0};
  q.exponents = {0, 1, 1, 1};  // 5 * a^0 == 5 for every record
  q.op = CompareOp::kEqual;
  q.b = 5.0f;
  ASSERT_OK_AND_ASSIGN(uint64_t count, PolynomialSelect(&device_, tex, q));
  EXPECT_EQ(count, 4u);
}

TEST_F(PolynomialTest, InstructionCountGrowsWithDegree) {
  const std::vector<float> a = ToFloats(RandomInts(100, 6, 234));
  const gpu::TextureId tex = Upload({&a});
  PolynomialQuery linear;
  linear.weights = {1.0f, 0, 0, 0};
  linear.exponents = {1, 1, 1, 1};
  linear.op = CompareOp::kGreaterEqual;
  linear.b = 0.0f;
  device_.ResetCounters();
  ASSERT_OK(PolynomialSelect(&device_, tex, linear).status());
  const uint64_t linear_instr = device_.counters().fp_instructions_executed;

  PolynomialQuery cubic = linear;
  cubic.exponents = {3, 1, 1, 1};
  device_.ResetCounters();
  ASSERT_OK(PolynomialSelect(&device_, tex, cubic).status());
  EXPECT_GT(device_.counters().fp_instructions_executed, linear_instr);
}

TEST_F(PolynomialTest, MarksSelectionInStencil) {
  const std::vector<float> a = {1, 5, 9, 2};
  const gpu::TextureId tex = Upload({&a});
  PolynomialQuery q;
  q.weights = {1.0f, 0, 0, 0};
  q.exponents = {2, 1, 1, 1};
  q.op = CompareOp::kGreater;
  q.b = 20.0f;  // a^2 > 20: {5, 9}
  ASSERT_OK_AND_ASSIGN(uint64_t count, PolynomialSelect(&device_, tex, q));
  EXPECT_EQ(count, 2u);
  const std::vector<uint8_t> stencil = device_.ReadStencil().ValueOrDie();
  EXPECT_EQ(stencil[0], 0);
  EXPECT_EQ(stencil[1], 1);
  EXPECT_EQ(stencil[2], 1);
  EXPECT_EQ(stencil[3], 0);
}

TEST_F(PolynomialTest, RejectsBadExponents) {
  const std::vector<float> a = {1};
  const gpu::TextureId tex = Upload({&a});
  PolynomialQuery q;
  q.exponents = {9, 1, 1, 1};
  EXPECT_FALSE(PolynomialSelect(&device_, tex, q).ok());
  q.exponents = {-1, 1, 1, 1};
  EXPECT_FALSE(PolynomialSelect(&device_, tex, q).ok());
}

}  // namespace
}  // namespace core
}  // namespace gpudb
