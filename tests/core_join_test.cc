#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/histogram.h"
#include "src/core/join.h"
#include "src/db/datagen.h"
#include "src/gpu/device.h"
#include "tests/test_util.h"

namespace gpudb {
namespace core {
namespace {

using testing_util::RandomInts;
using testing_util::UploadIntAttribute;

bool operator_less(const JoinPair& a, const JoinPair& b) {
  return a.left_row != b.left_row ? a.left_row < b.left_row
                                  : a.right_row < b.right_row;
}

class EquiJoinTest : public ::testing::Test {
 protected:
  EquiJoinTest() : device_(64, 64) {}

  JoinSide Upload(const std::vector<uint32_t>& keys, int bits) {
    JoinSide side;
    side.key = UploadIntAttribute(&device_, keys);
    side.rows = keys.size();
    side.key_bits = bits;
    return side;
  }

  /// CPU hash-join reference.
  static std::vector<JoinPair> ReferenceJoin(
      const std::vector<uint32_t>& left, const std::vector<uint32_t>& right) {
    std::map<uint32_t, std::vector<uint32_t>> right_index;
    for (uint32_t r = 0; r < right.size(); ++r) {
      right_index[right[r]].push_back(r);
    }
    std::vector<JoinPair> out;
    for (uint32_t l = 0; l < left.size(); ++l) {
      auto it = right_index.find(left[l]);
      if (it == right_index.end()) continue;
      for (uint32_t r : it->second) out.push_back(JoinPair{l, r});
    }
    std::sort(out.begin(), out.end(), operator_less);
    return out;
  }

  gpu::Device device_;
};

TEST_F(EquiJoinTest, SmallHandCheckedJoin) {
  const JoinSide left = Upload({1, 2, 3, 2}, 2);
  const JoinSide right = Upload({2, 2, 9, 1}, 4);
  ASSERT_OK_AND_ASSIGN(std::vector<JoinPair> pairs,
                       EquiJoin(&device_, left, right));
  std::sort(pairs.begin(), pairs.end(), operator_less);
  // left 0 (key 1) x right 3; left 1,3 (key 2) x right 0,1.
  ASSERT_EQ(pairs.size(), 5u);
  EXPECT_EQ(pairs[0].left_row, 0u);
  EXPECT_EQ(pairs[0].right_row, 3u);
  EXPECT_EQ(pairs[1].left_row, 1u);
  EXPECT_EQ(pairs[1].right_row, 0u);
  EXPECT_EQ(pairs[4].left_row, 3u);
  EXPECT_EQ(pairs[4].right_row, 1u);
}

TEST_F(EquiJoinTest, MatchesHashJoinOnRandomData) {
  const std::vector<uint32_t> left = RandomInts(800, 5, 261);   // 32 keys
  const std::vector<uint32_t> right = RandomInts(1200, 5, 262);
  const JoinSide ls = Upload(left, 5);
  const JoinSide rs = Upload(right, 5);
  ASSERT_OK_AND_ASSIGN(std::vector<JoinPair> pairs,
                       EquiJoin(&device_, ls, rs));
  std::sort(pairs.begin(), pairs.end(), operator_less);
  const std::vector<JoinPair> expected = ReferenceJoin(left, right);
  ASSERT_EQ(pairs.size(), expected.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(pairs[i].left_row, expected[i].left_row) << i;
    EXPECT_EQ(pairs[i].right_row, expected[i].right_row) << i;
  }
}

TEST_F(EquiJoinTest, DisjointKeysProduceEmptyJoin) {
  std::vector<uint32_t> left(100, 1);
  std::vector<uint32_t> right(100, 2);
  const JoinSide ls = Upload(left, 2);
  const JoinSide rs = Upload(right, 2);
  ASSERT_OK_AND_ASSIGN(std::vector<JoinPair> pairs,
                       EquiJoin(&device_, ls, rs));
  EXPECT_TRUE(pairs.empty());
}

TEST_F(EquiJoinTest, SizeMatchesMaterializedCount) {
  const std::vector<uint32_t> left = RandomInts(500, 4, 263);
  const std::vector<uint32_t> right = RandomInts(700, 4, 264);
  const JoinSide ls = Upload(left, 4);
  const JoinSide rs = Upload(right, 4);
  ASSERT_OK_AND_ASSIGN(uint64_t size, EquiJoinSize(&device_, ls, rs));
  ASSERT_OK_AND_ASSIGN(std::vector<JoinPair> pairs,
                       EquiJoin(&device_, ls, rs));
  EXPECT_EQ(size, pairs.size());
  EXPECT_EQ(size, ReferenceJoin(left, right).size());
}

TEST_F(EquiJoinTest, HistogramEstimateBracketsExactSize) {
  // Ties the join machinery to the Section 5.11 selectivity-estimation
  // story: the histogram estimate should land near the exact GPU-counted
  // size on uniform data.
  const std::vector<uint32_t> left = RandomInts(2000, 8, 265);
  const std::vector<uint32_t> right = RandomInts(2000, 8, 266);
  const JoinSide ls = Upload(left, 8);
  const JoinSide rs = Upload(right, 8);
  ASSERT_OK_AND_ASSIGN(uint64_t exact, EquiJoinSize(&device_, ls, rs));

  ASSERT_OK(device_.SetViewport(left.size()));
  ASSERT_OK_AND_ASSIGN(Histogram hl,
                       GpuHistogram(&device_, ls.key, 0, 256, 16));
  ASSERT_OK(device_.SetViewport(right.size()));
  ASSERT_OK_AND_ASSIGN(Histogram hr,
                       GpuHistogram(&device_, rs.key, 0, 256, 16));
  ASSERT_OK_AND_ASSIGN(double estimate, EstimateEquiJoinSize(hl, hr));
  EXPECT_GT(estimate, 0.5 * static_cast<double>(exact));
  EXPECT_LT(estimate, 2.0 * static_cast<double>(exact));
}

TEST_F(EquiJoinTest, TableConvenienceWrapper) {
  auto orders = db::MakeUniformTable(600, 4, 1, /*seed=*/267);
  auto customers = db::MakeUniformTable(300, 4, 1, /*seed=*/268);
  ASSERT_TRUE(orders.ok() && customers.ok());
  ASSERT_OK_AND_ASSIGN(
      std::vector<JoinPair> pairs,
      EquiJoinTables(&device_, customers.ValueOrDie(), "u0",
                     orders.ValueOrDie(), "u0"));
  std::vector<uint32_t> left_keys(customers.ValueOrDie().num_rows());
  std::vector<uint32_t> right_keys(orders.ValueOrDie().num_rows());
  for (size_t i = 0; i < left_keys.size(); ++i) {
    left_keys[i] = customers.ValueOrDie().column(0).int_value(i);
  }
  for (size_t i = 0; i < right_keys.size(); ++i) {
    right_keys[i] = orders.ValueOrDie().column(0).int_value(i);
  }
  std::sort(pairs.begin(), pairs.end(), operator_less);
  const std::vector<JoinPair> expected = ReferenceJoin(left_keys, right_keys);
  ASSERT_EQ(pairs.size(), expected.size());
  for (size_t i = 0; i < pairs.size(); ++i) {
    EXPECT_EQ(pairs[i].left_row, expected[i].left_row);
    EXPECT_EQ(pairs[i].right_row, expected[i].right_row);
  }
  // Float key columns are rejected.
  db::Table float_table;
  auto fcol = db::Column::MakeFloat("f", {1.5f, 2.5f});
  ASSERT_TRUE(fcol.ok());
  ASSERT_OK(float_table.AddColumn(std::move(fcol).ValueOrDie()));
  EXPECT_FALSE(EquiJoinTables(&device_, float_table, "f",
                              orders.ValueOrDie(), "u0")
                   .ok());
  EXPECT_FALSE(EquiJoinTables(&device_, float_table, "nope",
                              orders.ValueOrDie(), "u0")
                   .ok());
}

TEST_F(EquiJoinTest, GuardsAndValidation) {
  const JoinSide ls = Upload({1, 2}, 2);
  const JoinSide rs = Upload({1, 2}, 2);
  EXPECT_FALSE(EquiJoin(nullptr, ls, rs).ok());
  JoinSide bad = ls;
  bad.rows = 0;
  EXPECT_FALSE(EquiJoin(&device_, bad, rs).ok());
  bad = ls;
  bad.key_bits = 0;
  EXPECT_FALSE(EquiJoin(&device_, ls, bad).ok());
  // Result-size guard.
  std::vector<uint32_t> ones(200, 1);
  const JoinSide big_l = Upload(ones, 1);
  const JoinSide big_r = Upload(ones, 1);
  EquiJoinOptions options;
  options.max_result_pairs = 100;  // 200*200 pairs would overflow this
  auto r = EquiJoin(&device_, big_l, big_r, options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kResourceExhausted);
  // Key-cardinality guard.
  std::vector<uint32_t> many(300);
  for (size_t i = 0; i < many.size(); ++i) many[i] = static_cast<uint32_t>(i);
  const JoinSide wide = Upload(many, 9);
  EquiJoinOptions few_keys;
  few_keys.max_keys = 10;
  EXPECT_FALSE(EquiJoin(&device_, wide, rs, few_keys).ok());
}

}  // namespace
}  // namespace core
}  // namespace gpudb
