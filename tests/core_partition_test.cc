#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/partition.h"
#include "src/cpu/aggregate.h"
#include "src/cpu/quickselect.h"
#include "src/cpu/scan.h"
#include "src/db/datagen.h"
#include "src/gpu/device.h"
#include "tests/test_util.h"

namespace gpudb {
namespace core {
namespace {

using testing_util::RandomInts;
using testing_util::ToFloats;

/// A deliberately tiny "video memory": 32x32 = 1024 pixels, so a few
/// thousand records force multi-tile execution (paper Section 6.1's
/// out-of-core scenario).
class PartitionTest : public ::testing::Test {
 protected:
  PartitionTest() : device_(32, 32) {}

  db::Column MakeColumn(const std::vector<uint32_t>& ints) {
    auto col = db::Column::MakeInt24("c", ints);
    EXPECT_TRUE(col.ok());
    return std::move(col).ValueOrDie();
  }

  gpu::Device device_;
};

TEST_F(PartitionTest, SplitsIntoExpectedTiles) {
  const db::Column col = MakeColumn(RandomInts(5000, 10, 221));
  ASSERT_OK_AND_ASSIGN(PartitionedColumn part,
                       PartitionedColumn::Make(&device_, col));
  EXPECT_EQ(part.tile_count(), 5u);  // ceil(5000 / 1024)
  EXPECT_EQ(part.total_records(), 5000u);
  EXPECT_EQ(part.bit_width(), col.bit_width());
}

TEST_F(PartitionTest, SingleTileWhenItFits) {
  const db::Column col = MakeColumn(RandomInts(1000, 8, 222));
  ASSERT_OK_AND_ASSIGN(PartitionedColumn part,
                       PartitionedColumn::Make(&device_, col));
  EXPECT_EQ(part.tile_count(), 1u);
}

TEST_F(PartitionTest, CountAcrossTilesMatchesCpu) {
  const std::vector<uint32_t> ints = RandomInts(7777, 12, 223);
  const std::vector<float> floats = ToFloats(ints);
  const db::Column col = MakeColumn(ints);
  ASSERT_OK_AND_ASSIGN(PartitionedColumn part,
                       PartitionedColumn::Make(&device_, col));
  std::vector<uint8_t> mask;
  const uint64_t expected = cpu::PredicateScan(
      floats, gpu::CompareOp::kGreaterEqual, 2000.0f, &mask);
  ASSERT_OK_AND_ASSIGN(
      uint64_t count, part.Count(gpu::CompareOp::kGreaterEqual, 2000.0));
  EXPECT_EQ(count, expected);
}

TEST_F(PartitionTest, SumAcrossTilesExact) {
  const std::vector<uint32_t> ints = RandomInts(6000, 14, 224);
  const db::Column col = MakeColumn(ints);
  ASSERT_OK_AND_ASSIGN(PartitionedColumn part,
                       PartitionedColumn::Make(&device_, col));
  uint64_t expected = 0;
  for (uint32_t v : ints) expected += v;
  ASSERT_OK_AND_ASSIGN(uint64_t sum, part.Sum());
  EXPECT_EQ(sum, expected);
}

TEST_F(PartitionTest, KthLargestAcrossTilesMatchesQuickSelect) {
  const std::vector<uint32_t> ints = RandomInts(5432, 11, 225);
  const std::vector<float> floats = ToFloats(ints);
  const db::Column col = MakeColumn(ints);
  ASSERT_OK_AND_ASSIGN(PartitionedColumn part,
                       PartitionedColumn::Make(&device_, col));
  for (uint64_t k : {uint64_t{1}, uint64_t{100}, uint64_t{2716},
                     uint64_t{5432}}) {
    ASSERT_OK_AND_ASSIGN(uint32_t gpu_v, part.KthLargest(k));
    ASSERT_OK_AND_ASSIGN(float cpu_v, cpu::QuickSelectLargest(floats, k));
    EXPECT_EQ(gpu_v, static_cast<uint32_t>(cpu_v)) << "k=" << k;
  }
  EXPECT_FALSE(part.KthLargest(0).ok());
  EXPECT_FALSE(part.KthLargest(5433).ok());
}

TEST_F(PartitionTest, MedianAcrossTiles) {
  const std::vector<uint32_t> ints = RandomInts(3001, 10, 226);
  const std::vector<float> floats = ToFloats(ints);
  const db::Column col = MakeColumn(ints);
  ASSERT_OK_AND_ASSIGN(PartitionedColumn part,
                       PartitionedColumn::Make(&device_, col));
  ASSERT_OK_AND_ASSIGN(uint32_t gpu_med, part.Median());
  ASSERT_OK_AND_ASSIGN(float cpu_med, cpu::Median(floats));
  EXPECT_EQ(gpu_med, static_cast<uint32_t>(cpu_med));
}

TEST_F(PartitionTest, SelectBitmapSpansAllTiles) {
  const std::vector<uint32_t> ints = RandomInts(4100, 9, 227);
  const std::vector<float> floats = ToFloats(ints);
  const db::Column col = MakeColumn(ints);
  ASSERT_OK_AND_ASSIGN(PartitionedColumn part,
                       PartitionedColumn::Make(&device_, col));
  std::vector<uint8_t> expected;
  cpu::PredicateScan(floats, gpu::CompareOp::kLess, 200.0f, &expected);
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> bitmap,
                       part.SelectBitmap(gpu::CompareOp::kLess, 200.0));
  ASSERT_EQ(bitmap.size(), expected.size());
  EXPECT_EQ(bitmap, expected);
}

TEST_F(PartitionTest, RejectsUnsupportedInputs) {
  auto float_col = db::Column::MakeFloat("f", {1.0f, 2.0f});
  ASSERT_TRUE(float_col.ok());
  auto part =
      PartitionedColumn::Make(&device_, std::move(float_col).ValueOrDie());
  EXPECT_FALSE(part.ok());
  EXPECT_EQ(part.status().code(), StatusCode::kNotImplemented);
  EXPECT_FALSE(PartitionedColumn::Make(nullptr, MakeColumn({1})).ok());
}

TEST_F(PartitionTest, UploadChargedOncePerTile) {
  const db::Column col = MakeColumn(RandomInts(3000, 8, 228));
  device_.ResetCounters();
  ASSERT_OK_AND_ASSIGN(PartitionedColumn part,
                       PartitionedColumn::Make(&device_, col));
  const uint64_t after_make = device_.counters().bytes_uploaded;
  EXPECT_GT(after_make, 0u);
  ASSERT_OK(part.Count(gpu::CompareOp::kGreater, 10.0).status());
  // Counting swaps textures through the depth buffer but uploads nothing new.
  EXPECT_EQ(device_.counters().bytes_uploaded, after_make);
}

TEST_F(PartitionTest, ZoneMapsPruneFullyMatchingAndNonMatchingTiles) {
  // Sorted data gives disjoint per-tile ranges, so any threshold splits the
  // tiles into all/none/one-partial.
  std::vector<uint32_t> ints(4096);
  for (size_t i = 0; i < ints.size(); ++i) ints[i] = static_cast<uint32_t>(i);
  const db::Column col = MakeColumn(ints);
  ASSERT_OK_AND_ASSIGN(PartitionedColumn part,
                       PartitionedColumn::Make(&device_, col));
  ASSERT_EQ(part.tile_count(), 4u);

  device_.ResetCounters();
  // Threshold inside tile 2's range: tiles 0,1 none; tile 3 all; tile 2
  // partial -> only one tile renders.
  ASSERT_OK_AND_ASSIGN(uint64_t count,
                       part.Count(gpu::CompareOp::kGreaterEqual, 2500.0));
  EXPECT_EQ(count, 4096u - 2500u);
  EXPECT_EQ(part.tiles_pruned(), 3u);
  // Only the partial tile's copy + compare ran.
  EXPECT_EQ(device_.counters().passes, 2u);
}

TEST_F(PartitionTest, ZoneMapsCanBeDisabled) {
  std::vector<uint32_t> ints(4096);
  for (size_t i = 0; i < ints.size(); ++i) ints[i] = static_cast<uint32_t>(i);
  const db::Column col = MakeColumn(ints);
  PartitionOptions options;
  options.use_zone_maps = false;
  ASSERT_OK_AND_ASSIGN(PartitionedColumn part,
                       PartitionedColumn::Make(&device_, col, options));
  device_.ResetCounters();
  ASSERT_OK_AND_ASSIGN(uint64_t count,
                       part.Count(gpu::CompareOp::kGreaterEqual, 2500.0));
  EXPECT_EQ(count, 4096u - 2500u);
  EXPECT_EQ(part.tiles_pruned(), 0u);
  EXPECT_EQ(device_.counters().passes, 8u);  // every tile renders
}

TEST_F(PartitionTest, ZoneMapsAccelerateKthLargestOnSortedData) {
  std::vector<uint32_t> ints(4096);
  for (size_t i = 0; i < ints.size(); ++i) ints[i] = static_cast<uint32_t>(i);
  const db::Column col = MakeColumn(ints);
  ASSERT_OK_AND_ASSIGN(PartitionedColumn pruned,
                       PartitionedColumn::Make(&device_, col));
  PartitionOptions off;
  off.use_zone_maps = false;
  ASSERT_OK_AND_ASSIGN(PartitionedColumn unpruned,
                       PartitionedColumn::Make(&device_, col, off));
  device_.ResetCounters();
  ASSERT_OK_AND_ASSIGN(uint32_t v1, pruned.KthLargest(100));
  const uint64_t pruned_passes = device_.counters().passes;
  device_.ResetCounters();
  ASSERT_OK_AND_ASSIGN(uint32_t v2, unpruned.KthLargest(100));
  const uint64_t unpruned_passes = device_.counters().passes;
  EXPECT_EQ(v1, v2);
  EXPECT_EQ(v1, 4096u - 100u);
  EXPECT_LT(pruned_passes, unpruned_passes / 2);
  EXPECT_GT(pruned.tiles_pruned(), 0u);
}

TEST_F(PartitionTest, ZoneMapPruningCorrectOnAllOperators) {
  const std::vector<uint32_t> ints = RandomInts(4000, 8, 230);
  const std::vector<float> floats = ToFloats(ints);
  const db::Column col = MakeColumn(ints);
  ASSERT_OK_AND_ASSIGN(PartitionedColumn part,
                       PartitionedColumn::Make(&device_, col));
  for (gpu::CompareOp op : {gpu::CompareOp::kLess, gpu::CompareOp::kLessEqual,
                            gpu::CompareOp::kEqual,
                            gpu::CompareOp::kGreaterEqual,
                            gpu::CompareOp::kGreater,
                            gpu::CompareOp::kNotEqual}) {
    for (double c : {0.0, 37.0, 128.0, 255.0, 300.0}) {
      std::vector<uint8_t> mask;
      const uint64_t expected = cpu::PredicateScan(
          floats, op, static_cast<float>(c), &mask);
      ASSERT_OK_AND_ASSIGN(uint64_t count, part.Count(op, c));
      ASSERT_EQ(count, expected)
          << gpu::ToString(op) << " c=" << c;
    }
  }
}

TEST_F(PartitionTest, ZoneMapSelectBitmapMatchesScan) {
  std::vector<uint32_t> ints(3000);
  for (size_t i = 0; i < ints.size(); ++i) {
    ints[i] = static_cast<uint32_t>(i % 500);  // repeating ramp
  }
  const std::vector<float> floats = ToFloats(ints);
  const db::Column col = MakeColumn(ints);
  ASSERT_OK_AND_ASSIGN(PartitionedColumn part,
                       PartitionedColumn::Make(&device_, col));
  std::vector<uint8_t> expected;
  cpu::PredicateScan(floats, gpu::CompareOp::kLess, 600.0f, &expected);
  ASSERT_OK_AND_ASSIGN(std::vector<uint8_t> bitmap,
                       part.SelectBitmap(gpu::CompareOp::kLess, 600.0));
  EXPECT_EQ(bitmap, expected);  // every tile fully matches (max 499 < 600)
  EXPECT_EQ(part.tiles_pruned(), part.tile_count());
}

TEST_F(PartitionTest, ResultsIdenticalToUnpartitionedDevice) {
  // The same data on a large single-tile device must give the same answers.
  const std::vector<uint32_t> ints = RandomInts(4000, 10, 229);
  const db::Column col = MakeColumn(ints);
  ASSERT_OK_AND_ASSIGN(PartitionedColumn tiled,
                       PartitionedColumn::Make(&device_, col));
  gpu::Device big(100, 100);
  ASSERT_OK_AND_ASSIGN(PartitionedColumn single,
                       PartitionedColumn::Make(&big, col));
  EXPECT_EQ(single.tile_count(), 1u);
  ASSERT_OK_AND_ASSIGN(uint64_t c1,
                       tiled.Count(gpu::CompareOp::kLessEqual, 500.0));
  ASSERT_OK_AND_ASSIGN(uint64_t c2,
                       single.Count(gpu::CompareOp::kLessEqual, 500.0));
  EXPECT_EQ(c1, c2);
  ASSERT_OK_AND_ASSIGN(uint32_t k1, tiled.KthLargest(123));
  ASSERT_OK_AND_ASSIGN(uint32_t k2, single.KthLargest(123));
  EXPECT_EQ(k1, k2);
}

}  // namespace
}  // namespace core
}  // namespace gpudb
