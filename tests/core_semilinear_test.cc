#include <vector>

#include <gtest/gtest.h>

#include "src/core/semilinear.h"
#include "src/cpu/scan.h"
#include "src/gpu/device.h"
#include "tests/test_util.h"

namespace gpudb {
namespace core {
namespace {

using gpu::CompareOp;
using testing_util::RandomInts;
using testing_util::ToFloats;

class SemilinearTest : public ::testing::Test {
 protected:
  SemilinearTest() : device_(64, 64) {}

  /// Uploads up to four columns as one texture; sets the viewport.
  gpu::TextureId Upload(const std::vector<const std::vector<float>*>& cols) {
    auto tex = gpu::Texture::FromColumns(cols, 64);
    EXPECT_TRUE(tex.ok());
    auto id = device_.UploadTexture(std::move(tex).ValueOrDie());
    EXPECT_TRUE(id.ok());
    EXPECT_TRUE(device_.SetViewport(cols[0]->size()).ok());
    return id.ValueOrDie();
  }

  gpu::Device device_;
};

TEST_F(SemilinearTest, FourAttributeQueryMatchesCpu) {
  const std::vector<float> a = ToFloats(RandomInts(2000, 8, 51));
  const std::vector<float> b = ToFloats(RandomInts(2000, 8, 52));
  const std::vector<float> c = ToFloats(RandomInts(2000, 8, 53));
  const std::vector<float> d = ToFloats(RandomInts(2000, 8, 54));
  const gpu::TextureId tex = Upload({&a, &b, &c, &d});

  SemilinearQuery q;
  q.weights = {0.5f, -1.25f, 2.0f, 0.75f};
  q.op = CompareOp::kGreater;
  q.b = 150.0f;

  std::vector<uint8_t> cpu_mask;
  const uint64_t expected =
      cpu::SemilinearScan({&a, &b, &c, &d}, q.weights, q.op, q.b, &cpu_mask);
  ASSERT_OK_AND_ASSIGN(uint64_t count, SemilinearSelect(&device_, tex, q));
  EXPECT_EQ(count, expected);

  const std::vector<uint8_t> stencil = device_.ReadStencil().ValueOrDie();
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(stencil[i], cpu_mask[i]) << "record " << i;
  }
}

TEST_F(SemilinearTest, AttrCompareSpecialCase) {
  // a op b rewritten as a - b op 0 (paper Section 4.1.1).
  const std::vector<float> a = ToFloats(RandomInts(1000, 10, 55));
  const std::vector<float> b = ToFloats(RandomInts(1000, 10, 56));
  const gpu::TextureId tex = Upload({&a, &b});
  for (CompareOp op : {CompareOp::kLess, CompareOp::kLessEqual,
                       CompareOp::kEqual, CompareOp::kGreaterEqual,
                       CompareOp::kGreater, CompareOp::kNotEqual}) {
    const SemilinearQuery q = SemilinearQuery::AttrCompare(0, op, 1);
    std::vector<uint8_t> cpu_mask;
    const uint64_t expected = cpu::AttrCompareScan(a, b, op, &cpu_mask);
    ASSERT_OK_AND_ASSIGN(uint64_t count, SemilinearSelect(&device_, tex, q));
    EXPECT_EQ(count, expected) << gpu::ToString(op);
  }
}

TEST_F(SemilinearTest, SinglePassNoCopy) {
  // The semi-linear query needs no depth-buffer copy: exactly one pass with
  // the 4-instruction program (the reason for Figure 6's speedup).
  const std::vector<float> a = ToFloats(RandomInts(100, 8, 57));
  const gpu::TextureId tex = Upload({&a});
  device_.ResetCounters();
  SemilinearQuery q;
  q.weights = {1.0f, 0, 0, 0};
  q.op = CompareOp::kGreaterEqual;
  q.b = 100.0f;
  ASSERT_OK(SemilinearSelect(&device_, tex, q).status());
  EXPECT_EQ(device_.counters().passes, 1u);
  EXPECT_EQ(device_.counters().pass_log[0].fp_instructions, 4);
  EXPECT_EQ(device_.counters().depth_writes, 0u);
}

TEST_F(SemilinearTest, EmptyAndFullSelectivity) {
  const std::vector<float> a = ToFloats(RandomInts(500, 8, 58));
  const gpu::TextureId tex = Upload({&a});
  SemilinearQuery none;
  none.weights = {1.0f, 0, 0, 0};
  none.op = CompareOp::kLess;
  none.b = 0.0f;  // nothing is < 0
  ASSERT_OK_AND_ASSIGN(uint64_t zero, SemilinearSelect(&device_, tex, none));
  EXPECT_EQ(zero, 0u);
  SemilinearQuery all = none;
  all.op = CompareOp::kGreaterEqual;  // everything is >= 0
  ASSERT_OK_AND_ASSIGN(uint64_t full, SemilinearSelect(&device_, tex, all));
  EXPECT_EQ(full, 500u);
}

TEST_F(SemilinearTest, NegativeWeightsAndConstant) {
  const std::vector<float> a = {1, 2, 3, 4, 5};
  const gpu::TextureId tex = Upload({&a});
  SemilinearQuery q;
  q.weights = {-1.0f, 0, 0, 0};
  q.op = CompareOp::kGreater;
  q.b = -3.5f;  // -a > -3.5  <=>  a < 3.5  -> {1,2,3}
  ASSERT_OK_AND_ASSIGN(uint64_t count, SemilinearSelect(&device_, tex, q));
  EXPECT_EQ(count, 3u);
}

}  // namespace
}  // namespace core
}  // namespace gpudb
