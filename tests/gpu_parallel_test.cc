// Determinism sweep for the parallel pixel engines: every GPU routine must
// produce bit-identical framebuffer contents, hardware counters, pass logs,
// occlusion counts, and results at any worker-thread count. This is the
// serial-equivalence guarantee of the tile decomposition (DESIGN.md §10):
// bands cover disjoint pixels and per-band counters reduce in fixed band
// order, so threading can never change what a query computes.
//
// Also the TSan target: scripts/check.sh rebuilds this test with
// GPUDB_SANITIZE=thread to prove the row-band dispatch is race-free.

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/profile.h"
#include "src/core/accumulator.h"
#include "src/core/compare.h"
#include "src/core/eval_cnf.h"
#include "src/core/executor.h"
#include "src/core/kth_largest.h"
#include "src/core/range.h"
#include "src/core/resilience.h"
#include "src/db/datagen.h"
#include "src/db/table.h"
#include "src/gpu/device.h"
#include "tests/test_util.h"

namespace gpudb {
namespace core {
namespace {

using gpu::CompareOp;
using testing_util::RandomInts;
using testing_util::UploadIntAttribute;

/// Every observable output of a scenario: the three framebuffer planes,
/// the cumulative hardware counters with their pass log, and the values
/// each routine returned (counts, order statistics, sums).
struct Snapshot {
  std::vector<uint32_t> depth;
  std::vector<uint8_t> stencil;
  std::vector<float> color;
  gpu::DeviceCounters counters;
  std::vector<uint64_t> results;
};

/// Runs the full scenario -- CompareSelect, EvalCnf, RangeSelect,
/// KthLargest, Accumulate -- on a fresh 100x100 device with `threads`
/// pixel-engine workers and captures everything it produced.
Snapshot RunScenario(int threads, const std::vector<uint32_t>& ints,
                     int bit_width) {
  Snapshot snap;
  gpu::Device device(100, 100);
  EXPECT_OK(device.SetWorkerThreads(threads));
  AttributeBinding attr = UploadIntAttribute(&device, ints);
  const auto domain = static_cast<double>(uint64_t{1} << bit_width);

  // Routine 4.1: predicate selection with an occlusion-counted pass.
  auto select =
      CompareSelect(&device, attr, CompareOp::kGreater, domain * 0.4);
  EXPECT_OK(select.status());
  if (select.ok()) snap.results.push_back(select.ValueOrDie());

  // Routine 4.3: CNF with a two-predicate disjunction and a conjunct.
  const std::vector<GpuClause> clauses = {
      {GpuPredicate::DepthCompare(attr, CompareOp::kLess, domain * 0.25),
       GpuPredicate::DepthCompare(attr, CompareOp::kGreaterEqual,
                                  domain * 0.75)},
      {GpuPredicate::DepthCompare(attr, CompareOp::kNotEqual, 0.0)},
  };
  auto cnf = EvalCnf(&device, clauses);
  EXPECT_OK(cnf.status());
  if (cnf.ok()) {
    snap.results.push_back(cnf.ValueOrDie().count);
    snap.results.push_back(cnf.ValueOrDie().valid_value);
  }

  // Routine 4.4: range query via the depth-bounds test.
  auto range = RangeSelect(&device, attr, domain * 0.3, domain * 0.6);
  EXPECT_OK(range.status());
  if (range.ok()) snap.results.push_back(range.ValueOrDie());

  // Routine 4.5: order statistics, one bit per pass.
  for (const uint64_t k :
       {uint64_t{1}, std::max(uint64_t{1}, uint64_t{ints.size() / 2})}) {
    auto kth = KthLargest(&device, attr, bit_width, k);
    EXPECT_OK(kth.status());
    if (kth.ok()) snap.results.push_back(kth.ValueOrDie());
  }

  // Routine 4.6: exact integer sum, one TestBit pass per bit.
  auto sum = Accumulate(&device, attr.texture, attr.channel, bit_width);
  EXPECT_OK(sum.status());
  if (sum.ok()) snap.results.push_back(sum.ValueOrDie());

  const gpu::FrameBuffer& fb = device.framebuffer();
  snap.depth = fb.depth_plane();
  snap.stencil = fb.stencil_plane();
  snap.color.reserve(fb.pixel_count() * 4);
  for (uint64_t i = 0; i < fb.pixel_count(); ++i) {
    const float* rgba = fb.color(i);
    snap.color.insert(snap.color.end(), rgba, rgba + 4);
  }
  snap.counters = device.counters();
  return snap;
}

void ExpectPassLogsEqual(const std::vector<gpu::PassRecord>& serial,
                         const std::vector<gpu::PassRecord>& parallel,
                         const std::string& what) {
  ASSERT_EQ(serial.size(), parallel.size()) << what;
  for (size_t i = 0; i < serial.size(); ++i) {
    const gpu::PassRecord& a = serial[i];
    const gpu::PassRecord& b = parallel[i];
    EXPECT_EQ(a.label, b.label) << what << " pass " << i;
    EXPECT_EQ(a.fragments, b.fragments) << what << " pass " << i;
    EXPECT_EQ(a.fp_instructions, b.fp_instructions) << what << " pass " << i;
    EXPECT_EQ(a.fragments_passed, b.fragments_passed) << what << " pass " << i;
    EXPECT_EQ(a.depth_writes, b.depth_writes) << what << " pass " << i;
    EXPECT_EQ(a.stencil_updates, b.stencil_updates) << what << " pass " << i;
    EXPECT_EQ(a.in_occlusion_query, b.in_occlusion_query)
        << what << " pass " << i;
    // Planner rewrites are thread-independent: the same passes are fused
    // and the same cache lookups hit no matter the worker count.
    EXPECT_EQ(a.fused, b.fused) << what << " pass " << i;
    EXPECT_EQ(a.cache_hit, b.cache_hit) << what << " pass " << i;
    // gpuprof deep counters ride the same band reduction, so they obey the
    // same bit-stability contract (all-zero on both sides when profiling
    // was off).
    EXPECT_EQ(a.profiled, b.profiled) << what << " pass " << i;
    EXPECT_EQ(a.prof.alpha_killed, b.prof.alpha_killed)
        << what << " pass " << i;
    EXPECT_EQ(a.prof.stencil_killed, b.prof.stencil_killed)
        << what << " pass " << i;
    EXPECT_EQ(a.prof.depth_tested, b.prof.depth_tested)
        << what << " pass " << i;
    EXPECT_EQ(a.prof.depth_killed, b.prof.depth_killed)
        << what << " pass " << i;
    EXPECT_EQ(a.prof.occlusion_samples, b.prof.occlusion_samples)
        << what << " pass " << i;
    EXPECT_EQ(a.prof.plane_bytes_read, b.prof.plane_bytes_read)
        << what << " pass " << i;
    EXPECT_EQ(a.prof.plane_bytes_written, b.prof.plane_bytes_written)
        << what << " pass " << i;
  }
}

void ExpectBitIdentical(const Snapshot& serial, const Snapshot& parallel,
                        const std::string& what) {
  // Results first: a mismatch here is the user-visible wrong answer.
  EXPECT_EQ(serial.results, parallel.results) << what;
  // Framebuffer planes must match exactly, pixel for pixel.
  EXPECT_EQ(serial.depth, parallel.depth) << what;
  EXPECT_EQ(serial.stencil, parallel.stencil) << what;
  EXPECT_EQ(serial.color, parallel.color) << what;
  // Hardware counters, including the per-pass log the cost model consumes.
  const gpu::DeviceCounters& a = serial.counters;
  const gpu::DeviceCounters& b = parallel.counters;
  EXPECT_EQ(a.passes, b.passes) << what;
  EXPECT_EQ(a.fragments_generated, b.fragments_generated) << what;
  EXPECT_EQ(a.fragments_passed, b.fragments_passed) << what;
  EXPECT_EQ(a.fp_instructions_executed, b.fp_instructions_executed) << what;
  EXPECT_EQ(a.depth_writes, b.depth_writes) << what;
  EXPECT_EQ(a.stencil_updates, b.stencil_updates) << what;
  EXPECT_EQ(a.occlusion_readbacks, b.occlusion_readbacks) << what;
  EXPECT_EQ(a.bytes_uploaded, b.bytes_uploaded) << what;
  EXPECT_EQ(a.bytes_read_back, b.bytes_read_back) << what;
  EXPECT_EQ(a.fused_passes, b.fused_passes) << what;
  EXPECT_EQ(a.plane_cache_hits, b.plane_cache_hits) << what;
  EXPECT_EQ(a.plane_cache_misses, b.plane_cache_misses) << what;
  EXPECT_EQ(a.prof, b.prof) << what << " (cumulative deep counters)";
  ExpectPassLogsEqual(a.pass_log, b.pass_log, what);
}

constexpr int kBitWidth = 16;
constexpr size_t kRecords = 3000;

std::vector<uint32_t> ZipfInts(size_t n) {
  auto table = db::MakeZipfTable(n, uint32_t{1} << kBitWidth, /*theta=*/1.0);
  EXPECT_OK(table.status());
  std::vector<uint32_t> out(n);
  const db::Column& col = table.ValueOrDie().column(0);
  for (size_t i = 0; i < n; ++i) out[i] = col.int_value(i);
  return out;
}

TEST(ParallelDeterminismTest, UniformDataBitIdenticalAcrossThreadCounts) {
  const std::vector<uint32_t> ints = RandomInts(kRecords, kBitWidth, 20260805);
  const Snapshot serial = RunScenario(1, ints, kBitWidth);
  ASSERT_FALSE(serial.results.empty());
  for (int threads : {2, 4, 8}) {
    ExpectBitIdentical(serial, RunScenario(threads, ints, kBitWidth),
                       "uniform, threads=" + std::to_string(threads));
  }
}

// The gpuprof acceptance check: with deep profiling ON, every per-pass
// counter -- kill counts, derived depth tests, plane traffic -- must still
// be bit-identical at 1/2/4/8 threads, and must actually be nonzero (the
// profiled kernels ran, not the cold instantiation).
TEST(ParallelDeterminismTest, ProfiledCountersBitIdenticalAcrossThreadCounts) {
  const bool was_enabled = Profiler::Global().enabled();
  Profiler::Global().set_enabled(true);
  const std::vector<uint32_t> ints = RandomInts(kRecords, kBitWidth, 20260807);
  const Snapshot serial = RunScenario(1, ints, kBitWidth);
  ASSERT_FALSE(serial.results.empty());
  for (int threads : {2, 4, 8}) {
    ExpectBitIdentical(serial, RunScenario(threads, ints, kBitWidth),
                       "profiled, threads=" + std::to_string(threads));
  }
  Profiler::Global().set_enabled(was_enabled);

  // The scenario must have exercised the deep counters for the equality
  // above to mean anything.
  EXPECT_GT(serial.counters.prof.depth_tested, 0u);
  EXPECT_GT(serial.counters.prof.depth_killed, 0u);
  EXPECT_GT(serial.counters.prof.occlusion_samples, 0u);
  EXPECT_GT(serial.counters.prof.plane_bytes_read, 0u);
  EXPECT_GT(serial.counters.prof.plane_bytes_written, 0u);
  bool any_profiled_pass = false;
  for (const gpu::PassRecord& pass : serial.counters.pass_log) {
    if (pass.profiled) any_profiled_pass = true;
  }
  EXPECT_TRUE(any_profiled_pass);
}

/// Fused/cached scenario: the planner-rewritten selections (DESIGN.md §14)
/// run the same CNF twice -- once fused, then twice through the depth-plane
/// cache (miss, then hit) -- so the sweep covers fused compare passes, the
/// chain collapse, and both cache paths including the synthetic
/// plane-snapshot/plane-restore passes.
Snapshot RunPlannedScenario(int threads, const std::vector<uint32_t>& ints) {
  Snapshot snap;
  gpu::Device device(100, 100);
  EXPECT_OK(device.SetWorkerThreads(threads));
  AttributeBinding attr = UploadIntAttribute(&device, ints);
  attr.column = 0;
  const auto domain = static_cast<double>(uint64_t{1} << kBitWidth);

  const std::vector<GpuClause> clauses = {
      {GpuPredicate::DepthCompare(attr, CompareOp::kGreater, domain * 0.2)},
      {GpuPredicate::DepthCompare(attr, CompareOp::kLess, domain * 0.9)},
  };

  // Fused chain with the count carried by the final pass.
  SelectionExecOptions fused;
  fused.plan = PlanSelectionPasses(clauses, /*fusion_enabled=*/true,
                                   /*cache_enabled=*/false);
  auto sel = EvalCnfPlanned(&device, clauses, &fused);
  EXPECT_OK(sel.status());
  if (sel.ok()) {
    snap.results.push_back(sel.ValueOrDie().count);
    snap.results.push_back(sel.ValueOrDie().valid_value);
  }
  snap.results.push_back(static_cast<uint64_t>(fused.fused_passes));

  // Cached: cold (snapshot) then warm (restore).
  for (int round = 0; round < 2; ++round) {
    SelectionExecOptions cached;
    cached.plan = PlanSelectionPasses(clauses, true, /*cache_enabled=*/true);
    cached.use_cache = true;
    cached.table = "sweep";
    cached.table_version = 1;
    auto cs = EvalCnfPlanned(&device, clauses, &cached);
    EXPECT_OK(cs.status());
    if (cs.ok()) snap.results.push_back(cs.ValueOrDie().count);
    snap.results.push_back(static_cast<uint64_t>(cached.cache_hits));
    snap.results.push_back(static_cast<uint64_t>(cached.cache_misses));
  }

  const gpu::FrameBuffer& fb = device.framebuffer();
  snap.depth = fb.depth_plane();
  snap.stencil = fb.stencil_plane();
  snap.counters = device.counters();
  return snap;
}

TEST(ParallelDeterminismTest, FusedAndCachedPlansBitIdenticalAcrossThreads) {
  const std::vector<uint32_t> ints = RandomInts(kRecords, kBitWidth, 20260808);
  const Snapshot serial = RunPlannedScenario(1, ints);
  ASSERT_FALSE(serial.results.empty());
  // The scenario must actually exercise the rewrites for the sweep to
  // prove anything.
  EXPECT_GT(serial.counters.fused_passes, 0u);
  // Both predicates bind the same column, so only the very first lookup
  // misses; the cold round's second predicate and the whole warm round hit.
  EXPECT_EQ(serial.counters.plane_cache_misses, 1u);
  EXPECT_EQ(serial.counters.plane_cache_hits, 3u);
  for (int threads : {2, 4, 8}) {
    ExpectBitIdentical(serial, RunPlannedScenario(threads, ints),
                       "planned, threads=" + std::to_string(threads));
  }
}

TEST(ParallelDeterminismTest, ZipfDataBitIdenticalAcrossThreadCounts) {
  const std::vector<uint32_t> ints = ZipfInts(kRecords);
  const Snapshot serial = RunScenario(1, ints, kBitWidth);
  ASSERT_FALSE(serial.results.empty());
  for (int threads : {2, 4, 8}) {
    ExpectBitIdentical(serial, RunScenario(threads, ints, kBitWidth),
                       "zipf, threads=" + std::to_string(threads));
  }
}

// The band split must also be exact when the viewport is smaller than one
// row, leaves a partial final row, or has fewer rows than workers.
TEST(ParallelDeterminismTest, AwkwardViewportSizes) {
  for (const size_t n : {size_t{1}, size_t{99}, size_t{100}, size_t{101},
                         size_t{250}, size_t{2501}}) {
    const std::vector<uint32_t> ints = RandomInts(n, 12, 7 + n);
    const Snapshot serial = RunScenario(1, ints, 12);
    ExpectBitIdentical(serial, RunScenario(8, ints, 12),
                       "n=" + std::to_string(n));
  }
}

// A deadline so small it has already expired when the first render pass
// starts must fail with kDeadlineExceeded at every thread count, and with
// the same status every time: the interrupt check runs at pass entry on the
// issuing thread, before any band is dispatched, so worker threads can never
// observe (or race on) the expiry.
TEST(ParallelDeterminismTest, ExpiredDeadlineIsDeterministicAcrossThreads) {
  auto table_or = db::MakeTcpIpTable(2000, /*seed=*/21);
  ASSERT_OK(table_or.status());
  const db::Table table = std::move(table_or).ValueOrDie();
  const predicate::ExprPtr where =
      predicate::Expr::Pred(0, CompareOp::kGreater, 5000.0f);

  std::string first_status;
  for (int threads : {1, 2, 4, 8}) {
    gpu::Device device(100, 100);
    ASSERT_OK(device.SetWorkerThreads(threads));
    ASSERT_OK_AND_ASSIGN(std::unique_ptr<Executor> executor,
                         Executor::Make(&device, &table));
    ResilienceOptions options;
    options.deadline_ms = 1e-7;  // expired before the first pass begins
    executor->set_resilience_options(options);

    auto result = executor->Count(where);
    ASSERT_FALSE(result.ok()) << "threads=" << threads;
    EXPECT_TRUE(result.status().IsDeadlineExceeded())
        << "threads=" << threads << ": " << result.status().ToString();
    if (first_status.empty()) {
      first_status = result.status().ToString();
    } else {
      EXPECT_EQ(result.status().ToString(), first_status)
          << "threads=" << threads;
    }

    // The DeadlineScope must disarm on exit: with the deadline lifted the
    // same executor answers normally (CheckInterrupt cleared the flag).
    EXPECT_FALSE(device.deadline_armed());
    executor->set_resilience_options(ResilienceOptions{});
    ASSERT_OK_AND_ASSIGN(uint64_t count, executor->Count(where));
    EXPECT_GT(count, 0u);
  }
}

// The same guarantee at the routine level, driving the device directly.
TEST(ParallelDeterminismTest, ArmedDeviceDeadlineFailsRoutinesCleanly) {
  const std::vector<uint32_t> ints = RandomInts(500, 12, 99);
  for (int threads : {1, 4}) {
    gpu::Device device(100, 100);
    ASSERT_OK(device.SetWorkerThreads(threads));
    AttributeBinding attr = UploadIntAttribute(&device, ints);

    device.ArmDeadline(1e-7);
    auto select = CompareSelect(&device, attr, CompareOp::kGreater, 100.0);
    ASSERT_FALSE(select.ok()) << "threads=" << threads;
    EXPECT_TRUE(select.status().IsDeadlineExceeded())
        << select.status().ToString();

    device.DisarmDeadline();
    device.ClearInterrupt();
    EXPECT_OK(CompareSelect(&device, attr, CompareOp::kGreater, 100.0)
                  .status());
  }
}

}  // namespace
}  // namespace core
}  // namespace gpudb
