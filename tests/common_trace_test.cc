#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/json.h"
#include "src/common/trace.h"

namespace gpudb {
namespace {

TEST(TracerTest, DisabledSpansAreInert) {
  Tracer tracer;
  ASSERT_FALSE(tracer.enabled());
  {
    TraceSpan span("noop", &tracer);
    EXPECT_FALSE(span.active());
    span.AddTag("dropped", 1.0);
  }
  EXPECT_EQ(tracer.FinishedCount(), 0u);
}

TEST(TracerTest, RecordsNestingAndCompletionOrder) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    TraceSpan outer("outer", &tracer);
    {
      TraceSpan inner("inner", &tracer);
      {
        TraceSpan leaf("leaf", &tracer);
      }
    }
    TraceSpan sibling("sibling", &tracer);
  }
  const std::vector<FinishedSpan> spans = tracer.Finished();
  ASSERT_EQ(spans.size(), 4u);
  // Children close before their parents.
  EXPECT_EQ(spans[0].name, "leaf");
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[2].name, "sibling");
  EXPECT_EQ(spans[3].name, "outer");
  // Parent links reconstruct the tree.
  EXPECT_EQ(spans[0].parent_id, spans[1].id);  // leaf under inner
  EXPECT_EQ(spans[1].parent_id, spans[3].id);  // inner under outer
  EXPECT_EQ(spans[2].parent_id, spans[3].id);  // sibling under outer
  EXPECT_EQ(spans[3].parent_id, 0u);           // outer is a root
  for (const FinishedSpan& s : spans) {
    EXPECT_GE(s.duration_us(), 0);
    EXPECT_LE(s.start_us, s.end_us);
  }
}

TEST(TracerTest, TagsKeepNumericValues) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    TraceSpan span("tagged", &tracer);
    span.AddTag("text", "hello");
    span.AddTag("number", 42.5);
    span.AddTag("count", uint64_t{7});
  }
  const FinishedSpan span = tracer.Finished().front();
  EXPECT_EQ(span.TextTag("text"), "hello");
  EXPECT_DOUBLE_EQ(span.NumberTag("number"), 42.5);
  EXPECT_DOUBLE_EQ(span.NumberTag("count"), 7.0);
  EXPECT_DOUBLE_EQ(span.NumberTag("absent", -1.0), -1.0);
  EXPECT_EQ(span.TextTag("absent"), "");
}

TEST(TracerTest, FinishedSinceMarkSkipsOlderSpans) {
  Tracer tracer;
  tracer.set_enabled(true);
  { TraceSpan span("before", &tracer); }
  const size_t mark = tracer.FinishedCount();
  { TraceSpan span("after", &tracer); }
  const std::vector<FinishedSpan> since = tracer.FinishedSince(mark);
  ASSERT_EQ(since.size(), 1u);
  EXPECT_EQ(since[0].name, "after");
  tracer.Clear();
  EXPECT_EQ(tracer.FinishedCount(), 0u);
}

TEST(TracerTest, ChromeTraceJsonRoundTrips) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    TraceSpan outer("query", &tracer);
    outer.AddTag("sql", "SELECT \"quoted\"\n");
    outer.AddTag("rows", 1024.0);
    TraceSpan inner("Where", &tracer);
  }
  const std::string text = Tracer::ToChromeTrace(tracer.Finished());

  auto parsed = json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value& doc = parsed.ValueOrDie();
  ASSERT_TRUE(doc.is_object());
  const json::Value* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->as_array().size(), 2u);

  for (const json::Value& event : events->as_array()) {
    ASSERT_TRUE(event.is_object());
    // Required Chrome trace_event fields for a complete ("X") event.
    for (const char* key : {"name", "cat", "ph", "pid", "tid", "ts", "dur"}) {
      EXPECT_NE(event.Find(key), nullptr) << "missing " << key;
    }
    EXPECT_EQ(event.Find("ph")->as_string(), "X");
    const json::Value* args = event.Find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_NE(args->Find("span_id"), nullptr);
    EXPECT_NE(args->Find("parent_id"), nullptr);
  }

  // The nested span points at its parent through args, and the tag values
  // survive the export (numbers as numbers, strings escaped and restored).
  const json::Value& inner = events->as_array()[0];
  const json::Value& outer = events->as_array()[1];
  EXPECT_EQ(inner.Find("name")->as_string(), "Where");
  EXPECT_EQ(outer.Find("name")->as_string(), "query");
  EXPECT_DOUBLE_EQ(inner.Find("args")->Find("parent_id")->as_number(),
                   outer.Find("args")->Find("span_id")->as_number());
  EXPECT_EQ(outer.Find("args")->Find("sql")->as_string(),
            "SELECT \"quoted\"\n");
  EXPECT_DOUBLE_EQ(outer.Find("args")->Find("rows")->as_number(), 1024.0);
}

TEST(TracerTest, GlobalTracerIsOffByDefault) {
  EXPECT_FALSE(Tracer::Global().enabled());
}

TEST(TracerTest, DisabledCounterSamplesAreInert) {
  Tracer tracer;
  tracer.Counter("dropped.track", 1.0);
  EXPECT_EQ(tracer.CounterCount(), 0u);
}

TEST(TracerTest, CounterSamplesRecordInOrderAndClear) {
  Tracer tracer;
  tracer.set_enabled(true);
  tracer.Counter("band.ms", 1.5);
  tracer.Counter("band.ms", 2.5);
  const size_t mark = tracer.CounterCount();
  tracer.Counter("busy.ms", 9.0);

  ASSERT_EQ(tracer.CounterCount(), 3u);
  const std::vector<CounterSample> all = tracer.CounterSamples();
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all[0].name, "band.ms");
  EXPECT_DOUBLE_EQ(all[0].value, 1.5);
  EXPECT_DOUBLE_EQ(all[1].value, 2.5);
  EXPECT_LE(all[0].ts_us, all[1].ts_us);

  const std::vector<CounterSample> since = tracer.CounterSamplesSince(mark);
  ASSERT_EQ(since.size(), 1u);
  EXPECT_EQ(since[0].name, "busy.ms");
  EXPECT_DOUBLE_EQ(since[0].value, 9.0);

  tracer.Clear();
  EXPECT_EQ(tracer.CounterCount(), 0u);
}

TEST(TracerTest, ChromeTraceCounterEventsEscapeAndParse) {
  Tracer tracer;
  tracer.set_enabled(true);
  { TraceSpan span("query", &tracer); }
  // A hostile track name: quote, backslash, newline must all survive the
  // JSON round trip.
  tracer.Counter("track \"q\"\\\n", 3.25);
  tracer.Counter("plain", 4.0);

  const std::string text =
      Tracer::ToChromeTrace(tracer.Finished(), tracer.CounterSamples());
  auto parsed = json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* events = parsed.ValueOrDie().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->as_array().size(), 3u);  // 1 span + 2 counter samples

  // Counter events follow the span events.
  const json::Value& hostile = events->as_array()[1];
  const json::Value& plain = events->as_array()[2];
  EXPECT_EQ(hostile.Find("ph")->as_string(), "C");
  EXPECT_EQ(hostile.Find("name")->as_string(), "track \"q\"\\\n");
  ASSERT_NE(hostile.Find("args"), nullptr);
  EXPECT_DOUBLE_EQ(hostile.Find("args")->Find("value")->as_number(), 3.25);
  EXPECT_EQ(plain.Find("name")->as_string(), "plain");
  EXPECT_DOUBLE_EQ(plain.Find("args")->Find("value")->as_number(), 4.0);
  for (const json::Value* event : {&hostile, &plain}) {
    for (const char* key : {"name", "cat", "ph", "pid", "tid", "ts"}) {
      EXPECT_NE(event->Find(key), nullptr) << "missing " << key;
    }
  }
}

TEST(TracerTest, SpanOnlyOverloadStillOmitsCounters) {
  Tracer tracer;
  tracer.set_enabled(true);
  { TraceSpan span("query", &tracer); }
  tracer.Counter("ignored.track", 1.0);
  const std::string text = Tracer::ToChromeTrace(tracer.Finished());
  auto parsed = json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value* events = parsed.ValueOrDie().Find("traceEvents");
  ASSERT_NE(events, nullptr);
  EXPECT_EQ(events->as_array().size(), 1u);
}

}  // namespace
}  // namespace gpudb
