#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/json.h"
#include "src/common/trace.h"

namespace gpudb {
namespace {

TEST(TracerTest, DisabledSpansAreInert) {
  Tracer tracer;
  ASSERT_FALSE(tracer.enabled());
  {
    TraceSpan span("noop", &tracer);
    EXPECT_FALSE(span.active());
    span.AddTag("dropped", 1.0);
  }
  EXPECT_EQ(tracer.FinishedCount(), 0u);
}

TEST(TracerTest, RecordsNestingAndCompletionOrder) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    TraceSpan outer("outer", &tracer);
    {
      TraceSpan inner("inner", &tracer);
      {
        TraceSpan leaf("leaf", &tracer);
      }
    }
    TraceSpan sibling("sibling", &tracer);
  }
  const std::vector<FinishedSpan> spans = tracer.Finished();
  ASSERT_EQ(spans.size(), 4u);
  // Children close before their parents.
  EXPECT_EQ(spans[0].name, "leaf");
  EXPECT_EQ(spans[1].name, "inner");
  EXPECT_EQ(spans[2].name, "sibling");
  EXPECT_EQ(spans[3].name, "outer");
  // Parent links reconstruct the tree.
  EXPECT_EQ(spans[0].parent_id, spans[1].id);  // leaf under inner
  EXPECT_EQ(spans[1].parent_id, spans[3].id);  // inner under outer
  EXPECT_EQ(spans[2].parent_id, spans[3].id);  // sibling under outer
  EXPECT_EQ(spans[3].parent_id, 0u);           // outer is a root
  for (const FinishedSpan& s : spans) {
    EXPECT_GE(s.duration_us(), 0);
    EXPECT_LE(s.start_us, s.end_us);
  }
}

TEST(TracerTest, TagsKeepNumericValues) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    TraceSpan span("tagged", &tracer);
    span.AddTag("text", "hello");
    span.AddTag("number", 42.5);
    span.AddTag("count", uint64_t{7});
  }
  const FinishedSpan span = tracer.Finished().front();
  EXPECT_EQ(span.TextTag("text"), "hello");
  EXPECT_DOUBLE_EQ(span.NumberTag("number"), 42.5);
  EXPECT_DOUBLE_EQ(span.NumberTag("count"), 7.0);
  EXPECT_DOUBLE_EQ(span.NumberTag("absent", -1.0), -1.0);
  EXPECT_EQ(span.TextTag("absent"), "");
}

TEST(TracerTest, FinishedSinceMarkSkipsOlderSpans) {
  Tracer tracer;
  tracer.set_enabled(true);
  { TraceSpan span("before", &tracer); }
  const size_t mark = tracer.FinishedCount();
  { TraceSpan span("after", &tracer); }
  const std::vector<FinishedSpan> since = tracer.FinishedSince(mark);
  ASSERT_EQ(since.size(), 1u);
  EXPECT_EQ(since[0].name, "after");
  tracer.Clear();
  EXPECT_EQ(tracer.FinishedCount(), 0u);
}

TEST(TracerTest, ChromeTraceJsonRoundTrips) {
  Tracer tracer;
  tracer.set_enabled(true);
  {
    TraceSpan outer("query", &tracer);
    outer.AddTag("sql", "SELECT \"quoted\"\n");
    outer.AddTag("rows", 1024.0);
    TraceSpan inner("Where", &tracer);
  }
  const std::string text = Tracer::ToChromeTrace(tracer.Finished());

  auto parsed = json::Parse(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const json::Value& doc = parsed.ValueOrDie();
  ASSERT_TRUE(doc.is_object());
  const json::Value* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->as_array().size(), 2u);

  for (const json::Value& event : events->as_array()) {
    ASSERT_TRUE(event.is_object());
    // Required Chrome trace_event fields for a complete ("X") event.
    for (const char* key : {"name", "cat", "ph", "pid", "tid", "ts", "dur"}) {
      EXPECT_NE(event.Find(key), nullptr) << "missing " << key;
    }
    EXPECT_EQ(event.Find("ph")->as_string(), "X");
    const json::Value* args = event.Find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_NE(args->Find("span_id"), nullptr);
    EXPECT_NE(args->Find("parent_id"), nullptr);
  }

  // The nested span points at its parent through args, and the tag values
  // survive the export (numbers as numbers, strings escaped and restored).
  const json::Value& inner = events->as_array()[0];
  const json::Value& outer = events->as_array()[1];
  EXPECT_EQ(inner.Find("name")->as_string(), "Where");
  EXPECT_EQ(outer.Find("name")->as_string(), "query");
  EXPECT_DOUBLE_EQ(inner.Find("args")->Find("parent_id")->as_number(),
                   outer.Find("args")->Find("span_id")->as_number());
  EXPECT_EQ(outer.Find("args")->Find("sql")->as_string(),
            "SELECT \"quoted\"\n");
  EXPECT_DOUBLE_EQ(outer.Find("args")->Find("rows")->as_number(), 1024.0);
}

TEST(TracerTest, GlobalTracerIsOffByDefault) {
  EXPECT_FALSE(Tracer::Global().enabled());
}

}  // namespace
}  // namespace gpudb
