#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "src/gpu/device.h"
#include "src/gpu/geometry.h"
#include "src/gpu/rasterizer.h"
#include "tests/test_util.h"

namespace gpudb {
namespace gpu {
namespace {

// ---------------------------------------------------------------------------
// Mat4 / Vec4
// ---------------------------------------------------------------------------

TEST(Mat4Test, IdentityTransformsVectorsToThemselves) {
  const Mat4 id = Mat4::Identity();
  const Vec4 v{1.5f, -2.0f, 3.25f, 1.0f};
  const Vec4 out = id.Transform(v);
  EXPECT_EQ(out.x, v.x);
  EXPECT_EQ(out.y, v.y);
  EXPECT_EQ(out.z, v.z);
  EXPECT_EQ(out.w, v.w);
}

TEST(Mat4Test, TranslateAndScale) {
  const Mat4 t = Mat4::Translate(10, 20, 30);
  const Vec4 moved = t.Transform({1, 2, 3, 1});
  EXPECT_EQ(moved.x, 11);
  EXPECT_EQ(moved.y, 22);
  EXPECT_EQ(moved.z, 33);
  const Mat4 s = Mat4::Scale(2, 3, 4);
  const Vec4 scaled = s.Transform({1, 1, 1, 1});
  EXPECT_EQ(scaled.x, 2);
  EXPECT_EQ(scaled.y, 3);
  EXPECT_EQ(scaled.z, 4);
}

TEST(Mat4Test, ProductAppliesRightToLeft) {
  const Mat4 m = Mat4::Translate(5, 0, 0) * Mat4::Scale(2, 2, 2);
  const Vec4 out = m.Transform({1, 0, 0, 1});
  EXPECT_EQ(out.x, 7);  // scale then translate
}

TEST(Mat4Test, OrthoMapsCornersToClipCube) {
  const Mat4 ortho = Mat4::Ortho(0, 100, 0, 50, -1, 1);
  const Vec4 lo = ortho.Transform({0, 0, 0, 1});
  EXPECT_FLOAT_EQ(lo.x, -1.0f);
  EXPECT_FLOAT_EQ(lo.y, -1.0f);
  const Vec4 hi = ortho.Transform({100, 50, 0, 1});
  EXPECT_FLOAT_EQ(hi.x, 1.0f);
  EXPECT_FLOAT_EQ(hi.y, 1.0f);
}

// ---------------------------------------------------------------------------
// RasterizeTriangle
// ---------------------------------------------------------------------------

std::map<std::pair<uint32_t, uint32_t>, int> Rasterize(
    const ScreenVertex& a, const ScreenVertex& b, const ScreenVertex& c,
    const ScissorRect& scissor) {
  std::map<std::pair<uint32_t, uint32_t>, int> hits;
  RasterizeTriangle(a, b, c, scissor,
                    [&](const RasterFragment& f) { ++hits[{f.x, f.y}]; });
  return hits;
}

TEST(RasterizerTest, RightTriangleCoversExpectedPixels) {
  // Triangle (0,0)-(4,0)-(0,4): covers the strict lower-left half.
  const ScissorRect full{0, 0, 16, 16};
  auto hits = Rasterize({0, 0}, {4, 0}, {0, 4}, full);
  // Centers (x+.5, y+.5) with x+y+1 < 4 are strictly inside; the hypotenuse
  // passes through (0.5,3.5),(1.5,2.5),... which are exactly on the edge.
  int expected = 0;
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      const double ex = x + 0.5, ey = y + 0.5;
      if (ex + ey <= 4.0) ++expected;  // on-edge handling checked below
    }
  }
  EXPECT_EQ(static_cast<int>(hits.size()), expected);
  for (const auto& [pixel, count] : hits) {
    EXPECT_EQ(count, 1);
  }
}

TEST(RasterizerTest, SplitRectangleCoversEachPixelExactlyOnce) {
  // The critical invariant for the database semantics: a rectangle split
  // into two triangles along the diagonal covers every pixel exactly once,
  // including centers exactly on the diagonal (square => diagonal passes
  // through centers).
  const uint32_t kSize = 8;
  const ScissorRect full{0, 0, kSize, kSize};
  std::map<std::pair<uint32_t, uint32_t>, int> hits;
  const ScreenVertex c00{0, 0}, c10{kSize, 0}, c11{kSize, kSize},
      c01{0, kSize};
  auto emit = [&](const RasterFragment& f) { ++hits[{f.x, f.y}]; };
  RasterizeTriangle(c00, c10, c11, full, emit);
  RasterizeTriangle(c00, c11, c01, full, emit);
  EXPECT_EQ(hits.size(), kSize * kSize);
  for (const auto& [pixel, count] : hits) {
    EXPECT_EQ(count, 1) << "pixel (" << pixel.first << "," << pixel.second
                        << ") covered " << count << " times";
  }
}

TEST(RasterizerTest, AdjacentTrianglesShareEdgeWithoutOverlap) {
  // Two triangles sharing a non-axis-aligned edge: fragments on the shared
  // edge must go to exactly one of them (top-left rule).
  const ScissorRect full{0, 0, 32, 32};
  const ScreenVertex a{2, 2}, b{30, 6}, c{6, 30}, d{28, 26};
  std::map<std::pair<uint32_t, uint32_t>, int> hits;
  auto emit = [&](const RasterFragment& f) { ++hits[{f.x, f.y}]; };
  RasterizeTriangle(a, b, c, full, emit);
  RasterizeTriangle(b, d, c, full, emit);
  for (const auto& [pixel, count] : hits) {
    EXPECT_EQ(count, 1) << "pixel (" << pixel.first << "," << pixel.second
                        << ")";
  }
}

TEST(RasterizerTest, WindingDoesNotAffectCoverage) {
  const ScissorRect full{0, 0, 16, 16};
  auto ccw = Rasterize({1, 1}, {9, 2}, {4, 11}, full);
  auto cw = Rasterize({1, 1}, {4, 11}, {9, 2}, full);
  EXPECT_EQ(ccw, cw);
  EXPECT_GT(ccw.size(), 0u);
}

TEST(RasterizerTest, DegenerateTriangleEmitsNothing) {
  const ScissorRect full{0, 0, 16, 16};
  EXPECT_TRUE(Rasterize({1, 1}, {5, 5}, {9, 9}, full).empty());  // collinear
  EXPECT_TRUE(Rasterize({1, 1}, {1, 1}, {1, 1}, full).empty());
}

TEST(RasterizerTest, ScissorClips) {
  const ScissorRect scissor{2, 2, 5, 5};
  auto hits = Rasterize({0, 0}, {16, 0}, {0, 16}, scissor);
  for (const auto& [pixel, count] : hits) {
    EXPECT_TRUE(scissor.Contains(pixel.first, pixel.second));
  }
  EXPECT_EQ(hits.size(), 9u);  // the triangle covers the whole 3x3 window
}

TEST(RasterizerTest, RandomSharedEdgePairsNeverDoubleCover) {
  // Property: for random triangle pairs sharing an edge, the fill rule
  // assigns every fragment to exactly one triangle.
  Random rng(808);
  const ScissorRect full{0, 0, 64, 64};
  for (int trial = 0; trial < 200; ++trial) {
    // Shared edge (a, b) plus points c, d on opposite sides.
    ScreenVertex a{static_cast<float>(rng.NextUint64(64)),
                   static_cast<float>(rng.NextUint64(64))};
    ScreenVertex b{static_cast<float>(rng.NextUint64(64)),
                   static_cast<float>(rng.NextUint64(64))};
    ScreenVertex c{static_cast<float>(rng.NextUint64(64)),
                   static_cast<float>(rng.NextUint64(64))};
    // Reflect c across the midpoint of (a,b) so d is on the other side.
    ScreenVertex d{a.x + b.x - c.x, a.y + b.y - c.y};
    std::map<std::pair<uint32_t, uint32_t>, int> hits;
    auto emit = [&](const RasterFragment& f) { ++hits[{f.x, f.y}]; };
    RasterizeTriangle(a, b, c, full, emit);
    RasterizeTriangle(a, b, d, full, emit);
    for (const auto& [pixel, count] : hits) {
      ASSERT_EQ(count, 1)
          << "trial " << trial << " pixel (" << pixel.first << ","
          << pixel.second << ") a=(" << a.x << "," << a.y << ") b=(" << b.x
          << "," << b.y << ") c=(" << c.x << "," << c.y << ")";
    }
  }
}

TEST(RasterizerTest, DepthInterpolationIsLinear) {
  // Right triangle with depth ramp along x: depth at center (x+.5, 0.5)
  // should be (x+.5)/8.
  const ScissorRect full{0, 0, 8, 8};
  std::vector<RasterFragment> frags;
  RasterizeTriangle({0, 0, 0.0f}, {8, 0, 1.0f}, {0, 8, 0.0f}, full,
                    [&](const RasterFragment& f) { frags.push_back(f); });
  ASSERT_FALSE(frags.empty());
  for (const RasterFragment& f : frags) {
    const float expected = (static_cast<float>(f.x) + 0.5f) / 8.0f;
    EXPECT_NEAR(f.depth, expected, 1e-5f) << "pixel " << f.x << "," << f.y;
  }
}

TEST(RasterizerTest, FlatDepthIsBitExact) {
  // Constant-depth triangles must carry the exact vertex depth through
  // interpolation (the exactness guarantee CopyToDepth relies on).
  const float d = 0.12345678f;
  const ScissorRect full{0, 0, 64, 64};
  RasterizeTriangle({0, 0, d}, {64, 0, d}, {0, 64, d}, full,
                    [&](const RasterFragment& f) {
                      ASSERT_EQ(f.depth, d);
                    });
}

TEST(RasterizerTest, TexcoordInterpolation) {
  const ScissorRect full{0, 0, 8, 8};
  // Texcoords equal to window coordinates: u at pixel center = x + 0.5.
  RasterizeTriangle({0, 0, 0, 0, 0}, {8, 0, 0, 8, 0}, {0, 8, 0, 0, 8}, full,
                    [&](const RasterFragment& f) {
                      EXPECT_NEAR(f.u, f.x + 0.5f, 1e-4f);
                      EXPECT_NEAR(f.v, f.y + 0.5f, 1e-4f);
                    });
}

// ---------------------------------------------------------------------------
// Device geometry path
// ---------------------------------------------------------------------------

TEST(DeviceGeometryTest, DrawTrianglesCountsFragments) {
  Device dev(16, 16);
  dev.SetDepthTest(false, CompareOp::kAlways);
  std::vector<Vertex> tri = {{{0, 0, 0.5f, 1}, 0, 0},
                             {{16, 0, 0.5f, 1}, 0, 0},
                             {{0, 16, 0.5f, 1}, 0, 0}};
  ASSERT_OK(dev.BeginOcclusionQuery());
  ASSERT_OK(dev.DrawTriangles(tri));
  ASSERT_OK_AND_ASSIGN(uint64_t count, dev.EndOcclusionQuery());
  // 120 strictly interior centers (x+y <= 14) plus the 16 centers exactly on
  // the hypotenuse, which the fill rule assigns to this triangle (the edge
  // goes downward, i.e. is a "left" edge).
  EXPECT_EQ(count, 136u);
  EXPECT_FALSE(dev.DrawTriangles({}).ok());
  EXPECT_FALSE(dev.DrawTriangles({tri[0], tri[1]}).ok());
}

TEST(DeviceGeometryTest, CustomTransformMovesGeometry) {
  Device dev(16, 16);
  dev.SetDepthTest(false, CompareOp::kAlways);
  // NDC-space right triangle covering the left half of the screen.
  dev.SetTransform(Mat4::Identity());
  std::vector<Vertex> tri = {{{-1, -1, 0, 1}, 0, 0},
                             {{1, -1, 0, 1}, 0, 0},
                             {{-1, 1, 0, 1}, 0, 0}};
  ASSERT_OK(dev.BeginOcclusionQuery());
  ASSERT_OK(dev.DrawTriangles(tri));
  ASSERT_OK_AND_ASSIGN(uint64_t count, dev.EndOcclusionQuery());
  EXPECT_EQ(count, 136u);  // same shape as the window-space triangle above
  // Scale by 0.5: quarter-size triangle -> ~1/8 of the screen.
  dev.SetTransform(Mat4::Scale(0.5f, 0.5f, 1.0f));
  ASSERT_OK(dev.BeginOcclusionQuery());
  ASSERT_OK(dev.DrawTriangles(tri));
  ASSERT_OK_AND_ASSIGN(uint64_t scaled, dev.EndOcclusionQuery());
  EXPECT_LT(scaled, count);
  EXPECT_GT(scaled, 0u);
  dev.ResetTransform();
}

TEST(DeviceGeometryTest, ScissorLimitsQuadFragments) {
  Device dev(16, 16);
  dev.SetDepthTest(false, CompareOp::kAlways);
  dev.state().scissor_test_enabled = true;
  dev.state().scissor = ScissorRect{4, 4, 8, 8};
  ASSERT_OK(dev.BeginOcclusionQuery());
  ASSERT_OK(dev.RenderQuad(0.0f));
  ASSERT_OK_AND_ASSIGN(uint64_t count, dev.EndOcclusionQuery());
  EXPECT_EQ(count, 16u);  // 4x4 scissor window
}

TEST(DeviceGeometryTest, ViewportQuadEmitsExactlyViewportFragments) {
  // The record-count invariant after the rasterizer rewrite: a viewport of
  // n pixels produces exactly n fragments, full rows + remainder.
  Device dev(10, 10);
  for (uint64_t n : {1u, 9u, 10u, 11u, 55u, 99u, 100u}) {
    ASSERT_OK(dev.SetViewport(n));
    dev.SetDepthTest(false, CompareOp::kAlways);
    ASSERT_OK(dev.BeginOcclusionQuery());
    ASSERT_OK(dev.RenderQuad(0.25f));
    ASSERT_OK_AND_ASSIGN(uint64_t count, dev.EndOcclusionQuery());
    EXPECT_EQ(count, n);
  }
}

TEST(DeviceGeometryTest, QuadDepthSurvivesPipelineExactly) {
  // Constant-depth quads must land in the depth buffer at the exact
  // quantized code (bit-exact integer comparisons depend on it).
  Device dev(8, 8);
  dev.SetDepthTest(true, CompareOp::kAlways);
  dev.SetDepthWriteMask(true);
  for (uint32_t code : {0u, 1u, 12345u, (1u << 23) + 1, kDepthMax}) {
    const float d = DepthToFloat(code);
    ASSERT_OK(dev.RenderQuad(d));
    EXPECT_EQ(dev.framebuffer().depth(17), code) << code;
  }
}

TEST(DeviceGeometryTest, TexturedQuadTooSmallTextureRejected) {
  Device dev(8, 8);
  std::vector<float> vals(16, 1.0f);
  auto tex = Texture::FromColumns({&vals}, 8);
  ASSERT_OK(tex.status());
  ASSERT_OK_AND_ASSIGN(TextureId id, dev.UploadTexture(std::move(tex).ValueOrDie()));
  ASSERT_OK(dev.BindTexture(id));
  // Viewport 64 pixels > 16 texels.
  EXPECT_FALSE(dev.RenderTexturedQuad().ok());
  ASSERT_OK(dev.SetViewport(16));
  EXPECT_TRUE(dev.RenderTexturedQuad().ok());
}

}  // namespace
}  // namespace gpu
}  // namespace gpudb
