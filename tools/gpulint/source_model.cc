#include "tools/gpulint/source_model.h"

#include <algorithm>

namespace gpulint {

namespace {

bool IsControlKeyword(const std::string& t) {
  static const std::set<std::string> kKeywords = {
      "if",     "for",    "while",   "switch", "do",     "return",
      "sizeof", "alignof", "decltype", "new",   "delete", "throw",
      "catch",  "else",   "case",
  };
  return kKeywords.count(t) != 0;
}

bool IsDeclSpecifier(const std::string& t) {
  static const std::set<std::string> kSpecifiers = {
      "static", "virtual", "inline", "constexpr", "explicit", "friend",
      "extern",
  };
  return kSpecifiers.count(t) != 0;
}

}  // namespace

SourceModel::SourceModel(std::string path, std::string_view source)
    : path_(std::move(path)), tokens_(Tokenize(source)) {
  ScanInlineSuppressions(source);
  ScanStructure();
}

void SourceModel::ScanInlineSuppressions(std::string_view source) {
  // Raw-text scan (the lexer throws comments away): every line containing
  // "gpulint-allow(R1,R2)" maps those rule ids to that line.
  int line = 1;
  size_t pos = 0;
  while (pos < source.size()) {
    size_t eol = source.find('\n', pos);
    if (eol == std::string_view::npos) eol = source.size();
    const std::string_view text = source.substr(pos, eol - pos);
    const size_t mark = text.find("gpulint-allow(");
    if (mark != std::string_view::npos) {
      const size_t open = mark + 14;
      const size_t close = text.find(')', open);
      if (close != std::string_view::npos) {
        std::string id;
        for (size_t k = open; k <= close; ++k) {
          const char c = k < close ? text[k] : ',';
          if (c == ',' || c == ' ') {
            if (!id.empty()) inline_allows_.emplace_back(line, id);
            id.clear();
          } else {
            id += c;
          }
        }
      }
    }
    pos = eol + 1;
    ++line;
  }
}

bool SourceModel::IsInlineSuppressed(const std::string& rule, int line) const {
  for (const auto& [l, r] : inline_allows_) {
    if (r == rule && (l == line || l == line - 1)) return true;
  }
  return false;
}

size_t SourceModel::MatchForward(size_t open) const {
  const std::string& o = tokens_[open].text;
  const std::string close = o == "(" ? ")" : o == "{" ? "}" : "]";
  int depth = 0;
  for (size_t i = open; i < tokens_.size(); ++i) {
    if (tokens_[i].kind != TokenKind::kPunct) continue;
    if (tokens_[i].text == o) ++depth;
    if (tokens_[i].text == close && --depth == 0) return i;
  }
  return tokens_.size();
}

std::set<std::string> SourceModel::CallsIn(size_t begin, size_t end) const {
  std::set<std::string> calls;
  for (size_t i = begin; i + 1 < end; ++i) {
    if (tokens_[i].kind == TokenKind::kIdentifier &&
        tokens_[i + 1].Is("(") && !IsControlKeyword(tokens_[i].text)) {
      calls.insert(tokens_[i].text);
    }
  }
  return calls;
}

void SourceModel::RecordFallibleDecl(size_t type_token, size_t name_token) {
  FallibleDecl d;
  d.name = tokens_[name_token].text;
  d.line = tokens_[name_token].line;
  d.returns_result = tokens_[type_token].IsIdent("Result");
  // Walk left over declaration specifiers and attributes looking for
  // [[nodiscard]]. Attributes lex as '[' '[' ident ... ']' ']'.
  size_t p = type_token;
  while (p > 0) {
    const Token& prev = tokens_[p - 1];
    if (prev.kind == TokenKind::kIdentifier && IsDeclSpecifier(prev.text)) {
      --p;
      continue;
    }
    if (prev.Is("]") && p >= 2 && tokens_[p - 2].Is("]")) {
      // Scan back to the '[' '[' opener, collecting attribute names.
      size_t q = p - 2;
      int depth = 2;
      while (q > 0 && depth > 0) {
        --q;
        if (tokens_[q].Is("]")) ++depth;
        if (tokens_[q].Is("[")) --depth;
      }
      for (size_t k = q; k < p; ++k) {
        if (tokens_[k].IsIdent("nodiscard")) d.nodiscard = true;
      }
      p = q;
      continue;
    }
    break;
  }
  fallible_decls_.push_back(std::move(d));
}

void SourceModel::RecordFunction(size_t name_token, size_t body_open) {
  FunctionDef f;
  f.name = tokens_[name_token].text;
  f.line = tokens_[name_token].line;
  if (name_token >= 2 && tokens_[name_token - 1].Is("::") &&
      tokens_[name_token - 2].kind == TokenKind::kIdentifier) {
    f.qualifier = tokens_[name_token - 2].text;
  }
  f.body_begin = body_open;
  f.body_end = MatchForward(body_open);
  f.calls = CallsIn(f.body_begin + 1, f.body_end);
  ScanBody(f.body_begin + 1, f.body_end);
  functions_.push_back(std::move(f));
}

void SourceModel::ScanBody(size_t begin, size_t end) {
  for (size_t i = begin; i < end && i < tokens_.size(); ++i) {
    const Token& t = tokens_[i];

    // --- Loops -----------------------------------------------------------
    if (t.kind == TokenKind::kIdentifier &&
        (t.text == "for" || t.text == "while" || t.text == "do")) {
      size_t body_start;
      if (t.text == "do") {
        body_start = i + 1;
      } else {
        if (i + 1 >= end || !tokens_[i + 1].Is("(")) continue;
        const size_t close = MatchForward(i + 1);
        if (close >= end) continue;
        body_start = close + 1;
        // The while of a do-while: body resolves to ';', no calls, ignored.
      }
      Loop loop;
      loop.line = t.line;
      loop.body_begin = body_start;
      if (body_start < end && tokens_[body_start].Is("{")) {
        loop.body_end = std::min(MatchForward(body_start), end);
      } else {
        // Single-statement body: scan to the ';' at balanced depth.
        size_t j = body_start;
        int paren = 0, brace = 0;
        while (j < end) {
          const Token& u = tokens_[j];
          if (u.Is("(")) ++paren;
          if (u.Is(")")) --paren;
          if (u.Is("{")) ++brace;
          if (u.Is("}")) --brace;
          if (paren < 0 || brace < 0) break;
          if (u.Is(";") && paren == 0 && brace == 0) break;
          ++j;
        }
        loop.body_end = j;
      }
      loops_.push_back(loop);
      continue;
    }

    // --- ParallelFor sites ----------------------------------------------
    if (t.IsIdent("ParallelFor") && i + 1 < end && tokens_[i + 1].Is("(")) {
      ParallelForSite site;
      site.line = t.line;
      site.args_begin = i + 2;
      site.args_end = std::min(MatchForward(i + 1), end);
      parallel_fors_.push_back(site);
      continue;
    }

    // --- Discarded calls -------------------------------------------------
    // A call is a candidate discard when it begins a statement: the
    // previous token is one of ; { } ) else do :, or it sits under a
    // (void) cast.
    if (t.kind != TokenKind::kIdentifier || IsControlKeyword(t.text)) {
      continue;
    }
    bool void_cast = false;
    size_t stmt_first = i;
    if (i >= 3 && tokens_[i - 1].Is(")") && tokens_[i - 2].IsIdent("void") &&
        tokens_[i - 3].Is("(")) {
      void_cast = true;
      stmt_first = i - 3;
    }
    if (stmt_first == 0) continue;  // bodies always open with '{'
    const Token& prev = tokens_[stmt_first - 1];
    const bool stmt_start = prev.Is(";") || prev.Is("{") || prev.Is("}") ||
                            prev.Is(")") || prev.Is(":") ||
                            prev.IsIdent("else") || prev.IsIdent("do");
    if (!stmt_start) continue;

    // Parse the access chain: ident (:: ident)* then (('.'|'->') ident)*.
    size_t j = i;
    size_t callee = i;
    while (j + 2 < end && tokens_[j + 1].Is("::") &&
           tokens_[j + 2].kind == TokenKind::kIdentifier) {
      j += 2;
      callee = j;
    }
    while (j + 2 < end &&
           (tokens_[j + 1].Is(".") || tokens_[j + 1].Is("->")) &&
           tokens_[j + 2].kind == TokenKind::kIdentifier) {
      j += 2;
      callee = j;
    }
    if (j + 1 >= end || !tokens_[j + 1].Is("(")) continue;
    const size_t close = MatchForward(j + 1);
    if (close + 1 >= tokens_.size()) continue;
    if (!tokens_[close + 1].Is(";")) continue;  // result is consumed
    DiscardedCall dc;
    dc.callee = tokens_[callee].text;
    dc.line = tokens_[callee].line;
    dc.void_cast = void_cast;
    discarded_calls_.push_back(std::move(dc));
  }
}

void SourceModel::ScanStructure() {
  size_t i = 0;
  const size_t n = tokens_.size();
  while (i < n) {
    const Token& t = tokens_[i];

    // Skip template parameter lists so their '=' defaults and '<' '>' never
    // confuse the declaration scan.
    if (t.IsIdent("template") && i + 1 < n && tokens_[i + 1].Is("<")) {
      int depth = 0;
      size_t j = i + 1;
      while (j < n) {
        if (tokens_[j].Is("<")) ++depth;
        if (tokens_[j].Is(">")) {
          if (--depth == 0) break;
        }
        ++j;
      }
      i = j + 1;
      continue;
    }

    // Brace initializers at declaration scope (constant tables etc.):
    // '=' followed eventually by '{' — skip to the statement's ';'.
    if (t.Is("=")) {
      size_t j = i + 1;
      int paren = 0, brace = 0;
      while (j < n) {
        const Token& u = tokens_[j];
        if (u.Is("(")) ++paren;
        if (u.Is(")")) --paren;
        if (u.Is("{")) ++brace;
        if (u.Is("}")) --brace;
        // brace < 0: we ran off the end of the enclosing scope (an
        // enumerator's "= value," has no ';' of its own) — stop there.
        if (paren < 0 || brace < 0) break;
        if (u.Is(";") && paren == 0 && brace == 0) break;
        ++j;
      }
      i = j + 1;
      continue;
    }

    if (t.kind != TokenKind::kIdentifier || IsControlKeyword(t.text) ||
        i + 1 >= n || !tokens_[i + 1].Is("(")) {
      ++i;
      continue;
    }

    // identifier '(' at declaration scope: a function declaration,
    // definition, or a file-scope macro invocation.
    const size_t name_tok = i;
    const size_t close = MatchForward(i + 1);
    if (close >= n) {
      ++i;
      continue;
    }

    // Identify the return type to the left (walking over a Name:: chain).
    size_t chain_start = name_tok;
    while (chain_start >= 2 && tokens_[chain_start - 1].Is("::") &&
           tokens_[chain_start - 2].kind == TokenKind::kIdentifier) {
      chain_start -= 2;
    }
    size_t type_tok = n;  // n = "not fallible"
    if (chain_start > 0) {
      const size_t r = chain_start - 1;
      if (tokens_[r].IsIdent("Status")) {
        type_tok = r;
      } else if (tokens_[r].Is(">") || tokens_[r].Is(">>")) {
        // Walk back to the matching '<'. ">>" closes two template levels
        // (the lexer max-munches "vector<float>>" into one shift token).
        int depth = 0;
        size_t q = r + 1;
        while (q > 0) {
          --q;
          if (tokens_[q].Is(">")) ++depth;
          if (tokens_[q].Is(">>")) depth += 2;
          if (tokens_[q].Is("<") && --depth == 0) break;
        }
        if (depth == 0 && q > 0 && tokens_[q - 1].IsIdent("Result")) {
          type_tok = q - 1;
        }
      }
    }

    // Look past the parameter list for what this is.
    size_t k = close + 1;
    while (k < n) {
      const Token& u = tokens_[k];
      if (u.IsIdent("const") || u.IsIdent("noexcept") ||
          u.IsIdent("override") || u.IsIdent("final") || u.Is("&") ||
          u.Is("&&")) {
        ++k;
        if (u.IsIdent("noexcept") && k < n && tokens_[k].Is("(")) {
          k = MatchForward(k) + 1;
        }
        continue;
      }
      break;
    }

    if (k < n && tokens_[k].Is("{")) {
      if (type_tok != n) RecordFallibleDecl(type_tok, name_tok);
      RecordFunction(name_tok, k);
      i = MatchForward(k) + 1;
      continue;
    }
    if (k < n && tokens_[k].Is(":")) {
      // Constructor initializer list: ident, then (...) or {...}, then ','.
      size_t j = k + 1;
      while (j < n) {
        if (tokens_[j].Is("{")) {
          // Either an init-brace or — if preceded by an identifier's
          // initializer — the body. Distinguish: an initializer brace is
          // directly preceded by an identifier; the body follows ')' or '}'.
          const Token& p = tokens_[j - 1];
          if (p.kind == TokenKind::kIdentifier) {
            j = MatchForward(j) + 1;
            continue;
          }
          break;
        }
        if (tokens_[j].Is("(")) {
          j = MatchForward(j) + 1;
          continue;
        }
        ++j;
      }
      if (j < n && tokens_[j].Is("{")) {
        RecordFunction(name_tok, j);
        i = MatchForward(j) + 1;
        continue;
      }
      i = close + 1;
      continue;
    }
    if (k < n && (tokens_[k].Is(";") || tokens_[k].Is("="))) {
      if (type_tok != n) RecordFallibleDecl(type_tok, name_tok);
      i = close + 1;
      continue;
    }
    i = name_tok + 1;
  }
}

}  // namespace gpulint
