#include "tools/gpulint/source_model.h"

#include <algorithm>

namespace gpulint {

namespace {

bool IsControlKeyword(const std::string& t) {
  static const std::set<std::string> kKeywords = {
      "if",     "for",    "while",   "switch", "do",     "return",
      "sizeof", "alignof", "decltype", "new",   "delete", "throw",
      "catch",  "else",   "case",
  };
  return kKeywords.count(t) != 0;
}

bool IsDeclSpecifier(const std::string& t) {
  static const std::set<std::string> kSpecifiers = {
      "static", "virtual", "inline", "constexpr", "explicit", "friend",
      "extern",
  };
  return kSpecifiers.count(t) != 0;
}

}  // namespace

SourceModel::SourceModel(std::string path, std::string_view source)
    : path_(std::move(path)), tokens_(Tokenize(source)) {
  ScanInlineSuppressions(source);
  ScanLockFreeMarkers(source);
  ScanStructure();
  ScanClasses();
  ScanLockDiscipline();
}

void SourceModel::ScanLockFreeMarkers(std::string_view source) {
  // Raw-text scan, like the inline suppressions: the lexer throws comments
  // away, but R7's justification marker lives in one. A line is
  // comment-only when its first non-blank characters open a comment;
  // markers reach a field through any contiguous run of such lines above
  // its declaration.
  int line = 1;
  size_t pos = 0;
  while (pos < source.size()) {
    size_t eol = source.find('\n', pos);
    if (eol == std::string_view::npos) eol = source.size();
    const std::string_view text = source.substr(pos, eol - pos);
    if (text.find("lint: lock-free") != std::string_view::npos) {
      lock_free_lines_.insert(line);
    }
    const size_t first = text.find_first_not_of(" \t");
    if (first != std::string_view::npos && first + 1 < text.size() &&
        text[first] == '/' &&
        (text[first + 1] == '/' || text[first + 1] == '*')) {
      comment_lines_.insert(line);
    }
    pos = eol + 1;
    ++line;
  }
}

bool SourceModel::LockFreeMarkedAt(int line) const {
  if (lock_free_lines_.count(line) != 0) return true;
  // Walk up through the comment block directly above the declaration.
  int l = line - 1;
  while (l >= 1 && comment_lines_.count(l) != 0) {
    if (lock_free_lines_.count(l) != 0) return true;
    --l;
  }
  return false;
}

void SourceModel::ScanInlineSuppressions(std::string_view source) {
  // Raw-text scan (the lexer throws comments away): every line containing
  // "gpulint-allow(R1,R2)" maps those rule ids to that line.
  int line = 1;
  size_t pos = 0;
  while (pos < source.size()) {
    size_t eol = source.find('\n', pos);
    if (eol == std::string_view::npos) eol = source.size();
    const std::string_view text = source.substr(pos, eol - pos);
    const size_t mark = text.find("gpulint-allow(");
    if (mark != std::string_view::npos) {
      const size_t open = mark + 14;
      const size_t close = text.find(')', open);
      if (close != std::string_view::npos) {
        std::string id;
        for (size_t k = open; k <= close; ++k) {
          const char c = k < close ? text[k] : ',';
          if (c == ',' || c == ' ') {
            if (!id.empty()) inline_allows_.emplace_back(line, id);
            id.clear();
          } else {
            id += c;
          }
        }
      }
    }
    pos = eol + 1;
    ++line;
  }
}

bool SourceModel::IsInlineSuppressed(const std::string& rule, int line) const {
  for (const auto& [l, r] : inline_allows_) {
    if (r == rule && (l == line || l == line - 1)) return true;
  }
  return false;
}

size_t SourceModel::MatchForward(size_t open) const {
  const std::string& o = tokens_[open].text;
  const std::string close = o == "(" ? ")" : o == "{" ? "}" : "]";
  int depth = 0;
  for (size_t i = open; i < tokens_.size(); ++i) {
    if (tokens_[i].kind != TokenKind::kPunct) continue;
    if (tokens_[i].text == o) ++depth;
    if (tokens_[i].text == close && --depth == 0) return i;
  }
  return tokens_.size();
}

std::set<std::string> SourceModel::CallsIn(size_t begin, size_t end) const {
  std::set<std::string> calls;
  for (size_t i = begin; i + 1 < end; ++i) {
    if (tokens_[i].kind == TokenKind::kIdentifier &&
        tokens_[i + 1].Is("(") && !IsControlKeyword(tokens_[i].text)) {
      calls.insert(tokens_[i].text);
    }
  }
  return calls;
}

std::set<std::string> SourceModel::IdentifiersIn(size_t begin,
                                                 size_t end) const {
  std::set<std::string> idents;
  for (size_t i = begin; i < end && i < tokens_.size(); ++i) {
    if (tokens_[i].kind == TokenKind::kIdentifier &&
        !IsControlKeyword(tokens_[i].text)) {
      idents.insert(tokens_[i].text);
    }
  }
  return idents;
}

void SourceModel::RecordFallibleDecl(size_t type_token, size_t name_token) {
  FallibleDecl d;
  d.name = tokens_[name_token].text;
  d.line = tokens_[name_token].line;
  d.returns_result = tokens_[type_token].IsIdent("Result");
  // Walk left over declaration specifiers and attributes looking for
  // [[nodiscard]]. Attributes lex as '[' '[' ident ... ']' ']'.
  size_t p = type_token;
  while (p > 0) {
    const Token& prev = tokens_[p - 1];
    if (prev.kind == TokenKind::kIdentifier && IsDeclSpecifier(prev.text)) {
      --p;
      continue;
    }
    if (prev.Is("]") && p >= 2 && tokens_[p - 2].Is("]")) {
      // Scan back to the '[' '[' opener, collecting attribute names.
      size_t q = p - 2;
      int depth = 2;
      while (q > 0 && depth > 0) {
        --q;
        if (tokens_[q].Is("]")) ++depth;
        if (tokens_[q].Is("[")) --depth;
      }
      for (size_t k = q; k < p; ++k) {
        if (tokens_[k].IsIdent("nodiscard")) d.nodiscard = true;
      }
      p = q;
      continue;
    }
    break;
  }
  fallible_decls_.push_back(std::move(d));
}

void SourceModel::RecordFunction(size_t name_token, size_t body_open) {
  FunctionDef f;
  f.name = tokens_[name_token].text;
  f.line = tokens_[name_token].line;
  if (name_token >= 2 && tokens_[name_token - 1].Is("::") &&
      tokens_[name_token - 2].kind == TokenKind::kIdentifier) {
    f.qualifier = tokens_[name_token - 2].text;
  }
  f.body_begin = body_open;
  f.body_end = MatchForward(body_open);
  f.calls = CallsIn(f.body_begin + 1, f.body_end);
  ScanBody(f.body_begin + 1, f.body_end);
  functions_.push_back(std::move(f));
}

void SourceModel::ScanBody(size_t begin, size_t end) {
  for (size_t i = begin; i < end && i < tokens_.size(); ++i) {
    const Token& t = tokens_[i];

    // --- Loops -----------------------------------------------------------
    if (t.kind == TokenKind::kIdentifier &&
        (t.text == "for" || t.text == "while" || t.text == "do")) {
      size_t body_start;
      if (t.text == "do") {
        body_start = i + 1;
      } else {
        if (i + 1 >= end || !tokens_[i + 1].Is("(")) continue;
        const size_t close = MatchForward(i + 1);
        if (close >= end) continue;
        body_start = close + 1;
        // The while of a do-while: body resolves to ';', no calls, ignored.
      }
      Loop loop;
      loop.line = t.line;
      loop.body_begin = body_start;
      if (body_start < end && tokens_[body_start].Is("{")) {
        loop.body_end = std::min(MatchForward(body_start), end);
      } else {
        // Single-statement body: scan to the ';' at balanced depth.
        size_t j = body_start;
        int paren = 0, brace = 0;
        while (j < end) {
          const Token& u = tokens_[j];
          if (u.Is("(")) ++paren;
          if (u.Is(")")) --paren;
          if (u.Is("{")) ++brace;
          if (u.Is("}")) --brace;
          if (paren < 0 || brace < 0) break;
          if (u.Is(";") && paren == 0 && brace == 0) break;
          ++j;
        }
        loop.body_end = j;
      }
      loops_.push_back(loop);
      continue;
    }

    // --- ParallelFor sites ----------------------------------------------
    if (t.IsIdent("ParallelFor") && i + 1 < end && tokens_[i + 1].Is("(")) {
      ParallelForSite site;
      site.line = t.line;
      site.args_begin = i + 2;
      site.args_end = std::min(MatchForward(i + 1), end);
      parallel_fors_.push_back(site);
      continue;
    }

    // --- Discarded calls -------------------------------------------------
    // A call is a candidate discard when it begins a statement: the
    // previous token is one of ; { } ) else do :, or it sits under a
    // (void) cast.
    if (t.kind != TokenKind::kIdentifier || IsControlKeyword(t.text)) {
      continue;
    }
    bool void_cast = false;
    size_t stmt_first = i;
    if (i >= 3 && tokens_[i - 1].Is(")") && tokens_[i - 2].IsIdent("void") &&
        tokens_[i - 3].Is("(")) {
      void_cast = true;
      stmt_first = i - 3;
    }
    if (stmt_first == 0) continue;  // bodies always open with '{'
    const Token& prev = tokens_[stmt_first - 1];
    const bool stmt_start = prev.Is(";") || prev.Is("{") || prev.Is("}") ||
                            prev.Is(")") || prev.Is(":") ||
                            prev.IsIdent("else") || prev.IsIdent("do");
    if (!stmt_start) continue;

    // Parse the access chain: ident (:: ident)* then (('.'|'->') ident)*.
    size_t j = i;
    size_t callee = i;
    while (j + 2 < end && tokens_[j + 1].Is("::") &&
           tokens_[j + 2].kind == TokenKind::kIdentifier) {
      j += 2;
      callee = j;
    }
    while (j + 2 < end &&
           (tokens_[j + 1].Is(".") || tokens_[j + 1].Is("->")) &&
           tokens_[j + 2].kind == TokenKind::kIdentifier) {
      j += 2;
      callee = j;
    }
    if (j + 1 >= end || !tokens_[j + 1].Is("(")) continue;
    const size_t close = MatchForward(j + 1);
    if (close + 1 >= tokens_.size()) continue;
    if (!tokens_[close + 1].Is(";")) continue;  // result is consumed
    DiscardedCall dc;
    dc.callee = tokens_[callee].text;
    dc.line = tokens_[callee].line;
    dc.void_cast = void_cast;
    discarded_calls_.push_back(std::move(dc));
  }
}

void SourceModel::ScanStructure() {
  size_t i = 0;
  const size_t n = tokens_.size();
  while (i < n) {
    const Token& t = tokens_[i];

    // Skip template parameter lists so their '=' defaults and '<' '>' never
    // confuse the declaration scan.
    if (t.IsIdent("template") && i + 1 < n && tokens_[i + 1].Is("<")) {
      int depth = 0;
      size_t j = i + 1;
      while (j < n) {
        if (tokens_[j].Is("<")) ++depth;
        if (tokens_[j].Is(">")) {
          if (--depth == 0) break;
        }
        ++j;
      }
      i = j + 1;
      continue;
    }

    // Brace initializers at declaration scope (constant tables etc.):
    // '=' followed eventually by '{' — skip to the statement's ';'.
    if (t.Is("=")) {
      size_t j = i + 1;
      int paren = 0, brace = 0;
      while (j < n) {
        const Token& u = tokens_[j];
        if (u.Is("(")) ++paren;
        if (u.Is(")")) --paren;
        if (u.Is("{")) ++brace;
        if (u.Is("}")) --brace;
        // brace < 0: we ran off the end of the enclosing scope (an
        // enumerator's "= value," has no ';' of its own) — stop there.
        if (paren < 0 || brace < 0) break;
        if (u.Is(";") && paren == 0 && brace == 0) break;
        ++j;
      }
      i = j + 1;
      continue;
    }

    if (t.kind != TokenKind::kIdentifier || IsControlKeyword(t.text) ||
        i + 1 >= n || !tokens_[i + 1].Is("(")) {
      ++i;
      continue;
    }

    // identifier '(' at declaration scope: a function declaration,
    // definition, or a file-scope macro invocation.
    const size_t name_tok = i;
    const size_t close = MatchForward(i + 1);
    if (close >= n) {
      ++i;
      continue;
    }

    // Identify the return type to the left (walking over a Name:: chain).
    size_t chain_start = name_tok;
    while (chain_start >= 2 && tokens_[chain_start - 1].Is("::") &&
           tokens_[chain_start - 2].kind == TokenKind::kIdentifier) {
      chain_start -= 2;
    }
    size_t type_tok = n;  // n = "not fallible"
    if (chain_start > 0) {
      const size_t r = chain_start - 1;
      if (tokens_[r].IsIdent("Status")) {
        type_tok = r;
      } else if (tokens_[r].Is(">") || tokens_[r].Is(">>")) {
        // Walk back to the matching '<'. ">>" closes two template levels
        // (the lexer max-munches "vector<float>>" into one shift token).
        int depth = 0;
        size_t q = r + 1;
        while (q > 0) {
          --q;
          if (tokens_[q].Is(">")) ++depth;
          if (tokens_[q].Is(">>")) depth += 2;
          if (tokens_[q].Is("<") && --depth == 0) break;
        }
        if (depth == 0 && q > 0 && tokens_[q - 1].IsIdent("Result")) {
          type_tok = q - 1;
        }
      }
    }

    // Look past the parameter list for what this is.
    size_t k = close + 1;
    while (k < n) {
      const Token& u = tokens_[k];
      if (u.IsIdent("const") || u.IsIdent("noexcept") ||
          u.IsIdent("override") || u.IsIdent("final") || u.Is("&") ||
          u.Is("&&")) {
        ++k;
        if (u.IsIdent("noexcept") && k < n && tokens_[k].Is("(")) {
          k = MatchForward(k) + 1;
        }
        continue;
      }
      break;
    }

    if (k < n && tokens_[k].Is("{")) {
      if (type_tok != n) RecordFallibleDecl(type_tok, name_tok);
      RecordFunction(name_tok, k);
      i = MatchForward(k) + 1;
      continue;
    }
    if (k < n && tokens_[k].Is(":")) {
      // Constructor initializer list: ident, then (...) or {...}, then ','.
      size_t j = k + 1;
      while (j < n) {
        if (tokens_[j].Is("{")) {
          // Either an init-brace or — if preceded by an identifier's
          // initializer — the body. Distinguish: an initializer brace is
          // directly preceded by an identifier; the body follows ')' or '}'.
          const Token& p = tokens_[j - 1];
          if (p.kind == TokenKind::kIdentifier) {
            j = MatchForward(j) + 1;
            continue;
          }
          break;
        }
        if (tokens_[j].Is("(")) {
          j = MatchForward(j) + 1;
          continue;
        }
        ++j;
      }
      if (j < n && tokens_[j].Is("{")) {
        RecordFunction(name_tok, j);
        i = MatchForward(j) + 1;
        continue;
      }
      i = close + 1;
      continue;
    }
    if (k < n && (tokens_[k].Is(";") || tokens_[k].Is("="))) {
      if (type_tok != n) RecordFallibleDecl(type_tok, name_tok);
      i = close + 1;
      continue;
    }
    i = name_tok + 1;
  }
}

namespace {

/// The thread-safety annotation macros that may trail a member declaration.
bool IsFieldAnnotation(const std::string& t) {
  static const std::set<std::string> kAnnotations = {
      "GUARDED_BY",     "PT_GUARDED_BY",  "ACQUIRED_BEFORE",
      "ACQUIRED_AFTER",
  };
  return kAnnotations.count(t) != 0;
}

/// Tokens that mean "this class-body statement is not a data member".
bool IsNonFieldKeyword(const std::string& t) {
  static const std::set<std::string> kKeywords = {
      "using",  "typedef", "friend",        "operator",
      "enum",   "template", "static_assert", "public",
      "private", "protected", "class",       "struct",
      "union",
  };
  return kKeywords.count(t) != 0;
}

}  // namespace

void SourceModel::ScanClasses() {
  const size_t n = tokens_.size();
  for (size_t i = 0; i + 1 < n; ++i) {
    const Token& t = tokens_[i];
    if (!t.IsIdent("class") && !t.IsIdent("struct")) continue;
    if (i > 0 && tokens_[i - 1].IsIdent("enum")) continue;  // enum class
    // The class name is the last identifier before the base-clause ':',
    // the body '{', or — for a forward declaration — the ';'. Attribute
    // macros (CAPABILITY("mutex")) lex as ident + (...) and are walked over.
    std::string name;
    int name_line = 0;
    size_t j = i + 1;
    while (j < n) {
      const Token& u = tokens_[j];
      if (u.Is(";") || u.Is("{") || u.Is(":")) break;
      if (u.Is("(")) {
        j = MatchForward(j) + 1;
        continue;
      }
      if (u.kind == TokenKind::kIdentifier && !u.IsIdent("final") &&
          !u.IsIdent("alignas")) {
        name = u.text;
        name_line = u.line;
      }
      ++j;
    }
    if (j >= n || tokens_[j].Is(";") || name.empty()) continue;
    if (tokens_[j].Is(":")) {  // skip the base clause
      while (j < n && !tokens_[j].Is("{")) ++j;
    }
    if (j >= n || !tokens_[j].Is("{")) continue;
    const size_t body_end = MatchForward(j);
    ScanClassBody(name, name_line, j + 1, body_end);
    // Do not skip past the body: nested classes are found by the same
    // outer loop (ScanClassBody skips them when collecting members).
  }
}

void SourceModel::ScanClassBody(const std::string& class_name, int class_line,
                                size_t body_begin, size_t body_end) {
  ClassInfo cls;
  cls.name = class_name;
  cls.line = class_line;
  std::vector<size_t> stmt;  // token indices of the current statement
  size_t i = body_begin;
  while (i < body_end && i < tokens_.size()) {
    const Token& t = tokens_[i];
    if (t.Is("{")) {
      // An init-brace directly follows the field name; anything else
      // (member-function body, nested class, in-class initializer list)
      // opens a block to skip. Either way the braced range contributes no
      // member tokens.
      const bool init_brace =
          !stmt.empty() &&
          tokens_[stmt.back()].kind == TokenKind::kIdentifier &&
          !IsNonFieldKeyword(tokens_[stmt.back()].text);
      const size_t close = MatchForward(i);
      if (!init_brace) stmt.clear();
      i = close + 1;
      continue;
    }
    if (t.Is(";")) {
      RecordMemberField(&cls, stmt);
      stmt.clear();
      ++i;
      continue;
    }
    if (t.Is(":") && stmt.size() == 1 &&
        (tokens_[stmt[0]].IsIdent("public") ||
         tokens_[stmt[0]].IsIdent("private") ||
         tokens_[stmt[0]].IsIdent("protected"))) {
      stmt.clear();
      ++i;
      continue;
    }
    stmt.push_back(i);
    ++i;
  }
  for (const MemberField& f : cls.fields) {
    if (f.is_mutex) cls.owns_mutex = true;
  }
  classes_.push_back(std::move(cls));
}

void SourceModel::RecordMemberField(ClassInfo* cls,
                                    const std::vector<size_t>& stmt) {
  if (stmt.empty()) return;
  bool guarded = false;
  std::vector<size_t> prefix;  // stmt minus annotations, cut at '='
  for (size_t k = 0; k < stmt.size(); ++k) {
    const Token& t = tokens_[stmt[k]];
    if (t.kind == TokenKind::kIdentifier && IsNonFieldKeyword(t.text)) return;
    if (t.kind == TokenKind::kIdentifier && IsFieldAnnotation(t.text) &&
        k + 1 < stmt.size() && tokens_[stmt[k + 1]].Is("(")) {
      if (t.text == "GUARDED_BY" || t.text == "PT_GUARDED_BY") guarded = true;
      // Skip the annotation's argument list.
      int depth = 0;
      ++k;
      while (k < stmt.size()) {
        if (tokens_[stmt[k]].Is("(")) ++depth;
        if (tokens_[stmt[k]].Is(")") && --depth == 0) break;
        ++k;
      }
      continue;
    }
    if (t.Is("=")) break;
    prefix.push_back(stmt[k]);
  }
  if (prefix.empty()) return;

  // Walk the declaration prefix tracking template-argument depth; a '('
  // outside template arguments makes this a function declaration, not a
  // field. The lexer max-munches ">>" (closes two levels).
  int angle = 0;
  size_t name_tok = tokens_.size();
  bool is_static_const = false;
  bool saw_mutex_type = false;
  bool saw_sync_type = false;
  bool saw_ptr_or_ref = false;
  for (size_t k = 0; k < prefix.size(); ++k) {
    const Token& t = tokens_[prefix[k]];
    if (t.Is("<")) ++angle;
    if (t.Is(">")) angle = angle > 0 ? angle - 1 : 0;
    if (t.Is(">>")) angle = angle > 1 ? angle - 2 : 0;
    if (angle > 0) {
      // std::unique_ptr<std::mutex> and friends: the capability lives on
      // the heap object, not in this class — sync-typed but not owning.
      if (t.IsIdent("mutex") || t.IsIdent("Mutex") ||
          t.IsIdent("condition_variable") || t.IsIdent("CondVar") ||
          t.IsIdent("unique_lock") || t.IsIdent("lock_guard")) {
        saw_sync_type = true;
      }
      continue;
    }
    if (t.Is("(")) return;  // function declaration
    if (t.Is("*") || t.Is("&") || t.Is("&&")) saw_ptr_or_ref = true;
    if (t.IsIdent("static") || t.IsIdent("constexpr") || t.IsIdent("const")) {
      is_static_const = true;
    }
    if (t.IsIdent("mutex") || t.IsIdent("Mutex")) {
      saw_sync_type = true;
      if (!saw_ptr_or_ref) saw_mutex_type = true;
    }
    if (t.IsIdent("condition_variable") || t.IsIdent("CondVar") ||
        t.IsIdent("MutexLock") || t.IsIdent("unique_lock") ||
        t.IsIdent("lock_guard") || t.IsIdent("once_flag")) {
      saw_sync_type = true;
    }
    if (t.kind == TokenKind::kIdentifier) name_tok = prefix[k];
  }
  if (name_tok == tokens_.size()) return;
  // The name must be the last identifier, with only array extents after it.
  const std::string& name = tokens_[name_tok].text;
  if (name.empty() || IsControlKeyword(name)) return;
  // A trailing type keyword is a malformed/abstract declaration, not a
  // field ("int;" does not happen; "Mutex mu_" does).
  if (name == "mutex" || name == "int" || name == "double" ||
      name == "float" || name == "bool" || name == "char" ||
      name == "void" || name == "uint64_t" || name == "size_t") {
    return;
  }

  MemberField f;
  f.name = name;
  f.line = tokens_[name_tok].line;
  f.guarded = guarded;
  f.lock_free_marked = LockFreeMarkedAt(f.line);
  f.is_sync = saw_sync_type;
  f.is_static_const = is_static_const;
  // "Owns a mutex": the *last* type mention decides, and the declared name
  // must not itself be the mutex type token.
  f.is_mutex = saw_mutex_type && name != "Mutex" && name != "mutex" &&
               !saw_ptr_or_ref;
  cls->fields.push_back(std::move(f));
}

void SourceModel::ScanLockDiscipline() {
  const size_t n = tokens_.size();
  for (size_t i = 0; i + 1 < n; ++i) {
    const Token& t = tokens_[i];

    // --- Naked .lock()/.unlock() calls ----------------------------------
    if ((t.Is(".") || t.Is("->")) && i + 3 < n &&
        (tokens_[i + 1].IsIdent("lock") || tokens_[i + 1].IsIdent("unlock")) &&
        tokens_[i + 2].Is("(") && tokens_[i + 3].Is(")")) {
      NakedLockCall c;
      c.line = tokens_[i + 1].line;
      c.method = tokens_[i + 1].text;
      if (i > 0 && tokens_[i - 1].kind == TokenKind::kIdentifier) {
        c.receiver = tokens_[i - 1].text;
      }
      naked_locks_.push_back(std::move(c));
      continue;
    }

    // --- Scoped-holder acquisition sites --------------------------------
    // MutexLock name(...);  |  std::lock_guard<...> name(...);  | likewise
    // unique_lock / scoped_lock. The declaring token must start a
    // statement so member declarations and parameter types do not match.
    const bool holder_kw = t.IsIdent("MutexLock") ||
                           t.IsIdent("lock_guard") ||
                           t.IsIdent("unique_lock") ||
                           t.IsIdent("scoped_lock");
    if (!holder_kw) continue;
    size_t j = i + 1;
    if (j < n && tokens_[j].Is("<")) {  // template argument list
      int depth = 0;
      while (j < n) {
        if (tokens_[j].Is("<")) ++depth;
        if (tokens_[j].Is(">") && --depth == 0) break;
        if (tokens_[j].Is(">>") && (depth -= 2) <= 0) break;
        ++j;
      }
      ++j;
    }
    if (j + 1 >= n || tokens_[j].kind != TokenKind::kIdentifier ||
        !tokens_[j + 1].Is("(")) {
      continue;
    }
    const size_t args_close = MatchForward(j + 1);
    if (args_close >= n || args_close + 1 >= n ||
        !tokens_[args_close + 1].Is(";")) {
      continue;
    }
    LockSite site;
    site.line = t.line;
    site.holder = t.text;
    site.decl_token = i;
    site.region_begin = args_close + 2;
    for (size_t a = j + 2; a < args_close; ++a) {
      if (tokens_[a].IsIdent("adopt_lock")) site.adopt = true;
    }
    // The region ends at the '}' closing the innermost enclosing block.
    int depth = 0;
    size_t e = site.region_begin;
    while (e < n) {
      if (tokens_[e].Is("{")) ++depth;
      if (tokens_[e].Is("}") && --depth < 0) break;
      ++e;
    }
    site.region_end = e;
    for (const FunctionDef& f : functions_) {
      if (f.body_begin < i && i < f.body_end) {
        site.function = f.name;
        break;
      }
    }
    lock_sites_.push_back(std::move(site));
  }
}

}  // namespace gpulint
