#ifndef GPUDB_TOOLS_GPULINT_RULES_H_
#define GPUDB_TOOLS_GPULINT_RULES_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "tools/gpulint/source_model.h"

namespace gpulint {

/// One finding. `rule` is the stable id (R1..R5) dashboards and the
/// suppression file key on.
struct Diagnostic {
  std::string rule;
  std::string file;  // path as given to the analyzer (repo-relative in CI)
  int line = 0;
  std::string message;
};

/// The project-wide facts the per-file rules need: which names return
/// Status/Result, which functions (transitively) issue render passes, check
/// interrupts, or re-enter the thread pool, and the registered metric
/// names. Built from every scanned file before rules run.
class Program {
 public:
  /// Adds one parsed file to the program. The Program keeps a reference;
  /// models must outlive it.
  void AddFile(const SourceModel* model);

  /// Resolves the cross-file call-graph closures. Call once, after every
  /// AddFile.
  void Finalize();

  /// Loads the metric-name registry from the contents of
  /// src/common/metric_names.h: every string literal in the file is an
  /// entry; entries ending in '*' are prefixes.
  void LoadMetricRegistry(std::string_view header_source);

  const std::vector<const SourceModel*>& files() const { return files_; }

  bool ReturnsFallible(const std::string& name) const {
    return fallible_names_.count(name) != 0;
  }
  bool IssuesPass(const std::string& name) const {
    return pass_issuing_.count(name) != 0;
  }
  bool ChecksInterrupt(const std::string& name) const {
    return interrupt_checking_.count(name) != 0;
  }
  bool ReentersPool(const std::string& name) const {
    return pool_reentrant_.count(name) != 0;
  }
  /// Whether `name` reaches Catalog::BumpTableVersion, directly or through
  /// a helper (R6's "called the version-bump hook" test).
  bool BumpsTableVersion(const std::string& name) const {
    return version_bumping_.count(name) != 0;
  }
  bool MetricRegistered(const std::string& name, bool dynamic_suffix) const;
  bool has_metric_registry() const { return metric_registry_loaded_; }

  /// The minimum lock-order level `name` (transitively) acquires a scoped
  /// lock at, or kNoLevel when it acquires nothing in a level-mapped file.
  /// Levels come from the declared registry in DESIGN.md §12: admission(0)
  /// → session(1) → catalog(2) → device(3) → pool(4) → telemetry(5).
  /// Names defined under two different qualifiers (Session::Execute vs the
  /// fragment program's Execute) are ambiguous under gpulint's name-merged
  /// call graph; R8 treats them as opaque — never a false positive from a
  /// merge — so keep lock-acquiring entry points uniquely named.
  static constexpr int kNoLevel = 1000;
  int MinAcquireLevel(const std::string& name) const;

  /// Every GUARDED_BY-annotated field name across the program (R9's "do not
  /// touch from a band-parallel kernel" set).
  const std::set<std::string>& guarded_fields() const {
    return guarded_fields_;
  }

  /// Unguarded field names declared in the .h/.cc pair `stem` (path minus
  /// extension). R9 subtracts these from the guarded set at sites inside
  /// the pair, so a class whose own unguarded `counters_` shadows another
  /// class's guarded `counters_` is not falsely flagged.
  const std::set<std::string>& UnguardedFieldsForStem(
      const std::string& stem) const;

 private:
  /// Closure of "calls something in `seed`, directly or transitively".
  /// Functions named in `blocked` neither join the closure nor propagate
  /// it (used to stop device-internal interrupt checks from absolving
  /// operator loops of their own CheckInterrupt call).
  std::set<std::string> Closure(const std::set<std::string>& seed,
                                const std::set<std::string>& blocked = {})
      const;

  std::vector<const SourceModel*> files_;
  std::map<std::string, std::set<std::string>> calls_;  // fn -> callees
  std::set<std::string> gpu_defined_;  // functions defined under src/gpu
  std::set<std::string> fallible_names_;
  std::set<std::string> pass_issuing_;
  std::set<std::string> interrupt_checking_;
  std::set<std::string> pool_reentrant_;
  std::set<std::string> version_bumping_;
  std::vector<std::string> metric_exact_;
  std::vector<std::string> metric_prefixes_;
  bool metric_registry_loaded_ = false;
  // fn -> minimum lock-order level it directly acquires (R8).
  std::map<std::string, int> acquire_level_;
  // fn -> distinct definition sites ("Class" qualifier, or "@file" for
  // free / in-class definitions). Two or more tags = ambiguous name.
  std::map<std::string, std::set<std::string>> def_tags_;
  std::set<std::string> ambiguous_;
  std::set<std::string> guarded_fields_;
  std::map<std::string, std::set<std::string>> unguarded_by_stem_;
};

/// R1: no discarded Status/Result values, and every Status/Result-returning
/// declaration in a header under common/, gpu/, core/, or sql/ carries an
/// explicit [[nodiscard]].
std::vector<Diagnostic> RunR1(const Program& program);

/// R2: a loop in src/core or src/gpu whose body issues a render pass
/// (directly or through a helper) must contain an interrupt check.
std::vector<Diagnostic> RunR2(const Program& program);

/// R3: no assert()/abort() on device paths (src/gpu, src/core) — faults
/// must propagate as Status.
std::vector<Diagnostic> RunR3(const Program& program);

/// R4: ParallelFor bodies must not re-enter the ThreadPool or the Device
/// render path.
std::vector<Diagnostic> RunR4(const Program& program);

/// R5: every literal metric name passed to counter()/gauge()/histogram()
/// must appear in src/common/metric_names.h.
std::vector<Diagnostic> RunR5(const Program& program);

/// R6: any code path (outside src/db) that rewrites a table's backing
/// store or its catalog-attached derivations — today, Catalog::SetStats
/// after an ANALYZE re-read — must also reach Catalog::BumpTableVersion,
/// so cached depth planes keyed on the table version are invalidated.
std::vector<Diagnostic> RunR6(const Program& program);

/// R7: every mutable field of a mutex-owning class is GUARDED_BY-annotated
/// or carries a `// lint: lock-free (reason)` justification, and naked
/// .lock()/.unlock() calls are banned in favor of scoped holders
/// (src/common/mutex.h, the wrapper itself, is exempt).
std::vector<Diagnostic> RunR7(const Program& program);

/// R8: lock-order discipline against the declared registry (DESIGN.md §12).
/// A locked region must not call anything that (transitively) acquires a
/// lock at an earlier level, must not lexically nest a second scoped
/// acquisition in the same file, and must not invoke listeners/callbacks.
std::vector<Diagnostic> RunR8(const Program& program);

/// R9: band-parallel kernels (QuadRowKernel, ParallelFor bodies) must not
/// touch any GUARDED_BY field — workers synchronize through the pool's own
/// protocol, never through engine locks.
std::vector<Diagnostic> RunR9(const Program& program);

/// All rules, in id order.
std::vector<Diagnostic> RunAllRules(const Program& program);

/// Human-readable one-line description per rule id (for --list-rules and
/// diagnostic rendering).
const std::map<std::string, std::string>& RuleDescriptions();

}  // namespace gpulint

#endif  // GPUDB_TOOLS_GPULINT_RULES_H_
