#ifndef GPUDB_TOOLS_GPULINT_GPULINT_H_
#define GPUDB_TOOLS_GPULINT_GPULINT_H_

#include <string>
#include <vector>

#include "tools/gpulint/rules.h"

namespace gpulint {

/// What to lint. Paths may be files or directories (searched recursively
/// for .h/.cc); relative paths resolve against `root`. Diagnostics are
/// reported with root-relative paths so CI output and the suppression file
/// are machine-independent.
struct LintOptions {
  std::string root = ".";
  std::vector<std::string> paths;     // default: {"src"}
  std::string suppressions_path;      // empty = no suppression file
  std::string metric_registry_path;   // empty = R5 disabled
};

/// A parsed suppression-file entry: `RULE PATH[:LINE]  reason`.
struct Suppression {
  std::string rule;
  std::string path;   // suffix-matched against diagnostic paths
  int line = 0;       // 0 = any line in the file
  std::string reason;
  int source_line = 0;  // line in the suppression file (for reporting)
};

struct LintResult {
  std::vector<Diagnostic> active;      // what fails the build
  std::vector<Diagnostic> suppressed;  // matched a vetted exception
  /// Entries that matched nothing — stale suppressions to prune. Reported
  /// as warnings, not failures, so deleting dead code never breaks lint.
  std::vector<Suppression> unused_suppressions;
  int files_scanned = 0;
  /// Non-fatal setup problems (unreadable file, malformed suppression).
  std::vector<std::string> warnings;
};

/// Parses the suppression-file syntax. Exposed for tests.
std::vector<Suppression> ParseSuppressions(std::string_view text,
                                           std::vector<std::string>* warnings);

/// Runs every rule over the configured paths.
LintResult RunLint(const LintOptions& options);

/// "file:line: [R2] message" — the clickable diagnostic form.
std::string FormatText(const Diagnostic& d);

/// The line to paste into lint.suppressions to vet this diagnostic:
/// "R7 src/gpu/device.cc:123".
std::string SuppressionKey(const Diagnostic& d);

/// Machine-readable report (schema documented in DESIGN.md §12).
std::string ReportJson(const LintResult& result);

/// One JSON record per active diagnostic, newline-delimited (the
/// --format=json stream): {"rule","file","line","message","suppression"}.
std::string FormatJsonRecords(const LintResult& result);

}  // namespace gpulint

#endif  // GPUDB_TOOLS_GPULINT_GPULINT_H_
