#ifndef GPUDB_TOOLS_GPULINT_LEXER_H_
#define GPUDB_TOOLS_GPULINT_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

namespace gpulint {

/// Token kinds gpulint distinguishes. The lexer is deliberately smaller than
/// a compiler front end: it only needs to be exact about the things the
/// rules key on (identifiers, string literals, matched punctuation, line
/// numbers) and to never be fooled by comments or literals.
enum class TokenKind {
  kIdentifier,   // foo, Status, GPUDB_RETURN_NOT_OK
  kNumber,       // 42, 0x1f, 1.0f
  kString,       // "text" (text() holds the unescaped body)
  kCharLiteral,  // 'c'
  kPunct,        // every operator/punctuator, one token each ("::" is one)
  kEof,
};

struct Token {
  TokenKind kind = TokenKind::kEof;
  std::string text;  // literal spelling; for kString, the body without quotes
  int line = 0;      // 1-based line of the first character

  bool Is(std::string_view t) const { return text == t; }
  bool IsIdent(std::string_view t) const {
    return kind == TokenKind::kIdentifier && text == t;
  }
};

/// Tokenizes C++ source. Comments are skipped (line numbers stay exact),
/// preprocessor directives are skipped whole (including backslash
/// continuations) so macro *definitions* never leak tokens into the rules,
/// and raw strings / escapes are handled. A final kEof token is appended.
std::vector<Token> Tokenize(std::string_view source);

}  // namespace gpulint

#endif  // GPUDB_TOOLS_GPULINT_LEXER_H_
