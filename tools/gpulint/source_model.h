#ifndef GPUDB_TOOLS_GPULINT_SOURCE_MODEL_H_
#define GPUDB_TOOLS_GPULINT_SOURCE_MODEL_H_

#include <cstddef>
#include <set>
#include <string>
#include <vector>

#include "tools/gpulint/lexer.h"

namespace gpulint {

/// A function definition discovered in a file: its (unqualified) name, the
/// token range of its body, and every name it directly calls. gpulint's
/// declaration model is deliberately name-based — overloads and same-named
/// methods on different classes merge — which keeps the analyzer small; the
/// rules that consume it are written to stay useful under that merging (see
/// rules.cc).
struct FunctionDef {
  std::string name;       // "RenderInternal" (qualifier stripped)
  std::string qualifier;  // "Device" for Device::RenderInternal, else ""
  int line = 0;
  size_t body_begin = 0;  // index of '{'
  size_t body_end = 0;    // index of matching '}'
  std::set<std::string> calls;  // direct callee names within the body
};

/// A declaration (or definition) whose return type is Status or Result<>,
/// found at class/namespace scope. Used by R1 both to build the registry of
/// fallible APIs and to check [[nodiscard]] coverage in headers.
struct FallibleDecl {
  std::string name;
  int line = 0;
  bool nodiscard = false;
  bool returns_result = false;  // Result<...> vs plain Status
};

/// A loop statement inside some function body.
struct Loop {
  int line = 0;           // line of the for/while/do keyword
  size_t body_begin = 0;  // first token index of the body
  size_t body_end = 0;    // one-past-last token index of the body
};

/// A call expression whose result is discarded: either a bare
/// `chain.Callee(...);` expression statement or a `(void)` cast of one.
struct DiscardedCall {
  std::string callee;
  int line = 0;
  bool void_cast = false;
};

/// One `ParallelFor(...)` call site with the token range of its arguments
/// (which contain the worker lambda).
struct ParallelForSite {
  int line = 0;
  size_t args_begin = 0;  // index just after '('
  size_t args_end = 0;    // index of matching ')'
};

/// One data member of a class/struct declared in this file. Member
/// functions, using-declarations, and nested types are not fields.
struct MemberField {
  std::string name;  // "next_index_"
  int line = 0;
  bool guarded = false;           // carries GUARDED_BY(...)/PT_GUARDED_BY(...)
  bool lock_free_marked = false;  // "// lint: lock-free" on or above the decl
  bool is_sync = false;       // mutex / condition-variable / CondVar typed
  bool is_static_const = false;   // static, constexpr, or top-level const
  bool is_mutex = false;  // a by-value Mutex / std::mutex (capability owner)
};

/// A class or struct definition with its data members. `owns_mutex` is R7's
/// trigger: a *by-value* Mutex or std::mutex member. A std::unique_ptr<
/// std::mutex> does not count (the capability lives elsewhere; see
/// DevicePool::Slot).
struct ClassInfo {
  std::string name;
  int line = 0;
  bool owns_mutex = false;
  std::vector<MemberField> fields;
};

/// A scoped-holder acquisition site (`MutexLock lock(&mu_);`,
/// `std::lock_guard<...> l(mu_);`, `std::unique_lock<...> l(mu_);`,
/// `std::scoped_lock l(mu_);`). The locked region runs from the holder
/// declaration to the closing brace of the innermost enclosing block —
/// a conservative over-approximation for holders released early.
struct LockSite {
  int line = 0;
  size_t decl_token = 0;    // token index of the holder keyword
  size_t region_begin = 0;  // token after the holder statement's ';'
  size_t region_end = 0;    // token index of the enclosing block's '}'
  bool adopt = false;       // std::adopt_lock — wraps an existing hold
  std::string holder;       // "MutexLock", "lock_guard", ...
  std::string function;     // enclosing function name ("" at file scope)
};

/// A naked `.lock()` / `.unlock()` call (R7 bans these outside the Mutex
/// wrapper itself; scoped holders named *lock* may be released early).
struct NakedLockCall {
  int line = 0;
  std::string method;    // "lock" or "unlock"
  std::string receiver;  // identifier left of the '.' / '->' ("" if complex)
};

/// Token-level model of a single file. Built once, shared by every rule.
class SourceModel {
 public:
  /// Parses `source` (the file's contents). `path` is kept for diagnostics.
  SourceModel(std::string path, std::string_view source);

  const std::string& path() const { return path_; }
  const std::vector<Token>& tokens() const { return tokens_; }
  const std::vector<FunctionDef>& functions() const { return functions_; }
  const std::vector<FallibleDecl>& fallible_decls() const {
    return fallible_decls_;
  }
  const std::vector<Loop>& loops() const { return loops_; }
  const std::vector<DiscardedCall>& discarded_calls() const {
    return discarded_calls_;
  }
  const std::vector<ParallelForSite>& parallel_fors() const {
    return parallel_fors_;
  }
  const std::vector<ClassInfo>& classes() const { return classes_; }
  const std::vector<LockSite>& lock_sites() const { return lock_sites_; }
  const std::vector<NakedLockCall>& naked_locks() const {
    return naked_locks_;
  }

  /// Lines carrying a `gpulint-allow(Rn[,Rm])` marker, mapped to rule ids.
  /// A diagnostic is inline-suppressed when its line or the line above
  /// carries its rule id.
  bool IsInlineSuppressed(const std::string& rule, int line) const;

  /// Every callee name appearing in [begin, end): identifiers directly
  /// followed by '(' that are not control keywords.
  std::set<std::string> CallsIn(size_t begin, size_t end) const;

  /// Every identifier appearing in [begin, end), called or not (R9's
  /// "touches a guarded field" test).
  std::set<std::string> IdentifiersIn(size_t begin, size_t end) const;

  /// Index of the matching closer for the opener at `open` ('(' / '{' /
  /// '['), or tokens().size() when unbalanced.
  size_t MatchForward(size_t open) const;

 private:
  void ScanStructure();
  void ScanInlineSuppressions(std::string_view source);
  void ScanLockFreeMarkers(std::string_view source);
  void RecordFallibleDecl(size_t type_token, size_t name_token);
  void RecordFunction(size_t name_token, size_t body_open);
  void ScanBody(size_t body_begin, size_t body_end);
  void ScanClasses();
  void ScanClassBody(const std::string& class_name, int class_line,
                     size_t body_begin, size_t body_end);
  void RecordMemberField(ClassInfo* cls, const std::vector<size_t>& stmt);
  void ScanLockDiscipline();
  bool LockFreeMarkedAt(int line) const;

  std::string path_;
  std::vector<Token> tokens_;
  std::vector<FunctionDef> functions_;
  std::vector<FallibleDecl> fallible_decls_;
  std::vector<Loop> loops_;
  std::vector<DiscardedCall> discarded_calls_;
  std::vector<ParallelForSite> parallel_fors_;
  std::vector<ClassInfo> classes_;
  std::vector<LockSite> lock_sites_;
  std::vector<NakedLockCall> naked_locks_;
  // line -> rule ids allowed on that line (from gpulint-allow comments).
  std::vector<std::pair<int, std::string>> inline_allows_;
  // Lines carrying a "lint: lock-free" marker, and comment-only lines
  // (markers apply through a contiguous comment block above a field).
  std::set<int> lock_free_lines_;
  std::set<int> comment_lines_;
};

}  // namespace gpulint

#endif  // GPUDB_TOOLS_GPULINT_SOURCE_MODEL_H_
