// gpulint — the engine's in-tree static analyzer (DESIGN.md §12).
//
// Usage:
//   gpulint [--root DIR] [--json FILE] [--format=text|json]
//           [--suppressions FILE] [--registry FILE] [--list-rules]
//           [paths...]
//
// With no arguments it lints src/ under the current directory, reads
// lint.suppressions at the root when present, and loads the metric-name
// registry from src/common/metric_names.h. --format=json streams one JSON
// record per active diagnostic to stdout (rule, file, line, message, and
// the ready-to-paste suppression key) instead of the text lines. Exit
// status is 0 when every diagnostic is suppressed or absent, 1 otherwise,
// 2 on usage errors.

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "tools/gpulint/gpulint.h"

namespace {

bool FlagValue(const std::string& arg, std::string_view flag,
               std::string* value) {
  const std::string prefix = std::string(flag) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  *value = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  gpulint::LintOptions options;
  std::string json_path;
  std::string format = "text";
  bool suppressions_given = false;
  bool registry_given = false;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--list-rules") {
      for (const auto& [id, text] : gpulint::RuleDescriptions()) {
        std::printf("%s  %s\n", id.c_str(), text.c_str());
      }
      return 0;
    }
    if (FlagValue(arg, "--root", &value)) {
      options.root = value;
    } else if (FlagValue(arg, "--json", &value)) {
      json_path = value;
    } else if (FlagValue(arg, "--format", &value)) {
      if (value != "text" && value != "json") {
        std::fprintf(stderr, "gpulint: --format must be text or json\n");
        return 2;
      }
      format = value;
    } else if (FlagValue(arg, "--suppressions", &value)) {
      options.suppressions_path = value;
      suppressions_given = true;
    } else if (FlagValue(arg, "--registry", &value)) {
      options.metric_registry_path = value;
      registry_given = true;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr,
                   "gpulint: unknown flag '%s'\n"
                   "usage: gpulint [--root DIR] [--json FILE] "
                   "[--suppressions FILE] [--registry FILE] [--list-rules] "
                   "[paths...]\n",
                   arg.c_str());
      return 2;
    } else {
      options.paths.push_back(arg);
    }
  }

  namespace fs = std::filesystem;
  if (!suppressions_given &&
      fs::exists(fs::path(options.root) / "lint.suppressions")) {
    options.suppressions_path = "lint.suppressions";
  }
  if (!registry_given &&
      fs::exists(fs::path(options.root) / "src/common/metric_names.h")) {
    options.metric_registry_path = "src/common/metric_names.h";
  }

  const gpulint::LintResult result = gpulint::RunLint(options);

  for (const std::string& w : result.warnings) {
    std::fprintf(stderr, "gpulint: warning: %s\n", w.c_str());
  }
  for (const gpulint::Suppression& s : result.unused_suppressions) {
    std::fprintf(stderr,
                 "gpulint: warning: unused suppression (line %d): %s %s — "
                 "prune it\n",
                 s.source_line, s.rule.c_str(), s.path.c_str());
  }
  if (format == "json") {
    std::fputs(gpulint::FormatJsonRecords(result).c_str(), stdout);
  } else {
    for (const gpulint::Diagnostic& d : result.active) {
      std::printf("%s\n", gpulint::FormatText(d).c_str());
    }
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "gpulint: cannot write %s\n", json_path.c_str());
      return 2;
    }
    out << gpulint::ReportJson(result);
  }

  // In json mode stdout carries only records; the human summary moves to
  // stderr so pipelines can consume the stream directly.
  std::fprintf(format == "json" ? stderr : stdout,
               "gpulint: %zu diagnostic%s (%zu suppressed) across %d files\n",
               result.active.size(), result.active.size() == 1 ? "" : "s",
               result.suppressed.size(), result.files_scanned);
  return result.active.empty() ? 0 : 1;
}
