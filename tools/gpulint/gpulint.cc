#include "tools/gpulint/gpulint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>

namespace gpulint {

namespace fs = std::filesystem;

namespace {

bool ReadFile(const fs::path& p, std::string* out) {
  std::ifstream in(p, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

bool IsSourceFile(const fs::path& p) {
  const std::string ext = p.extension().string();
  return ext == ".cc" || ext == ".h" || ext == ".cpp" || ext == ".hpp";
}

/// Root-relative form of `p` when it lives under `root`, else `p` as given.
std::string Relativize(const fs::path& p, const fs::path& root) {
  std::error_code ec;
  const fs::path rel = fs::relative(p, root, ec);
  if (ec || rel.empty() || rel.native().rfind("..", 0) == 0) {
    return p.generic_string();
  }
  return rel.generic_string();
}

/// A suppression path matches when it equals the diagnostic path or is a
/// path-component suffix of it ("gpu/device.cc" matches
/// "src/gpu/device.cc" but not "src/gpu/other_device.cc").
bool PathMatchesSuffix(const std::string& diag_path,
                       const std::string& pattern) {
  if (diag_path == pattern) return true;
  if (diag_path.size() <= pattern.size()) return false;
  return diag_path.compare(diag_path.size() - pattern.size(), pattern.size(),
                           pattern) == 0 &&
         diag_path[diag_path.size() - pattern.size() - 1] == '/';
}

}  // namespace

std::vector<Suppression> ParseSuppressions(
    std::string_view text, std::vector<std::string>* warnings) {
  std::vector<Suppression> out;
  int line_no = 0;
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    std::string line(text.substr(pos, eol - pos));
    pos = eol + 1;
    ++line_no;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line.resize(hash);
    std::istringstream ss(line);
    std::string rule, target;
    if (!(ss >> rule)) continue;  // blank / comment-only
    if (!(ss >> target)) {
      if (warnings != nullptr) {
        warnings->push_back("suppressions:" + std::to_string(line_no) +
                            ": entry '" + rule + "' is missing a path");
      }
      continue;
    }
    Suppression s;
    s.rule = rule;
    s.source_line = line_no;
    const size_t colon = target.rfind(':');
    if (colon != std::string::npos &&
        target.find_first_not_of("0123456789", colon + 1) ==
            std::string::npos &&
        colon + 1 < target.size()) {
      s.path = target.substr(0, colon);
      s.line = std::stoi(target.substr(colon + 1));
    } else {
      s.path = target;
    }
    std::string word;
    while (ss >> word) {
      if (!s.reason.empty()) s.reason += ' ';
      s.reason += word;
    }
    out.push_back(std::move(s));
  }
  return out;
}

LintResult RunLint(const LintOptions& options) {
  LintResult result;
  const fs::path root = fs::path(options.root);

  // Collect the file set, sorted for deterministic reports.
  std::vector<fs::path> files;
  std::vector<std::string> roots =
      options.paths.empty() ? std::vector<std::string>{"src"} : options.paths;
  for (const std::string& p : roots) {
    fs::path full = fs::path(p).is_absolute() ? fs::path(p) : root / p;
    std::error_code ec;
    if (fs::is_directory(full, ec)) {
      for (fs::recursive_directory_iterator it(full, ec), end;
           !ec && it != end; it.increment(ec)) {
        if (it->is_regular_file() && IsSourceFile(it->path())) {
          files.push_back(it->path());
        }
      }
    } else if (fs::is_regular_file(full, ec)) {
      files.push_back(full);
    } else {
      result.warnings.push_back("path not found: " + full.generic_string());
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  // Parse everything, then let the rules see the whole program.
  std::vector<std::unique_ptr<SourceModel>> models;
  Program program;
  for (const fs::path& f : files) {
    std::string source;
    if (!ReadFile(f, &source)) {
      result.warnings.push_back("unreadable: " + f.generic_string());
      continue;
    }
    models.push_back(
        std::make_unique<SourceModel>(Relativize(f, root), source));
    program.AddFile(models.back().get());
    ++result.files_scanned;
  }
  program.Finalize();

  if (!options.metric_registry_path.empty()) {
    fs::path reg = fs::path(options.metric_registry_path);
    if (!reg.is_absolute()) reg = root / reg;
    std::string source;
    if (ReadFile(reg, &source)) {
      program.LoadMetricRegistry(source);
    } else {
      result.warnings.push_back("metric registry unreadable: " +
                                reg.generic_string() + " (R5 skipped)");
    }
  }

  std::vector<Suppression> suppressions;
  if (!options.suppressions_path.empty()) {
    fs::path sup = fs::path(options.suppressions_path);
    if (!sup.is_absolute()) sup = root / sup;
    std::string source;
    if (ReadFile(sup, &source)) {
      suppressions = ParseSuppressions(source, &result.warnings);
    } else {
      result.warnings.push_back("suppression file unreadable: " +
                                sup.generic_string());
    }
  }

  std::vector<bool> used(suppressions.size(), false);
  auto inline_suppressed = [&](const Diagnostic& d) {
    for (const auto& model : models) {
      if (model->path() == d.file) {
        return model->IsInlineSuppressed(d.rule, d.line);
      }
    }
    return false;
  };

  for (Diagnostic& d : RunAllRules(program)) {
    bool matched = inline_suppressed(d);
    for (size_t i = 0; i < suppressions.size() && !matched; ++i) {
      const Suppression& s = suppressions[i];
      if (s.rule != d.rule) continue;
      if (!PathMatchesSuffix(d.file, s.path)) continue;
      if (s.line != 0 && s.line != d.line) continue;
      matched = true;
      used[i] = true;
    }
    (matched ? result.suppressed : result.active).push_back(std::move(d));
  }
  for (size_t i = 0; i < suppressions.size(); ++i) {
    if (!used[i]) result.unused_suppressions.push_back(suppressions[i]);
  }

  auto by_location = [](const Diagnostic& a, const Diagnostic& b) {
    if (a.file != b.file) return a.file < b.file;
    if (a.line != b.line) return a.line < b.line;
    return a.rule < b.rule;
  };
  std::sort(result.active.begin(), result.active.end(), by_location);
  std::sort(result.suppressed.begin(), result.suppressed.end(), by_location);
  return result;
}

std::string FormatText(const Diagnostic& d) {
  return d.file + ":" + std::to_string(d.line) + ": [" + d.rule + "] " +
         d.message;
}

std::string SuppressionKey(const Diagnostic& d) {
  return d.rule + " " + d.file + ":" + std::to_string(d.line);
}

namespace {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendDiagnostics(const std::vector<Diagnostic>& diags,
                       std::string* out) {
  for (size_t i = 0; i < diags.size(); ++i) {
    const Diagnostic& d = diags[i];
    *out += i == 0 ? "\n" : ",\n";
    *out += "    {\"rule\":\"" + JsonEscape(d.rule) + "\",\"file\":\"" +
            JsonEscape(d.file) + "\",\"line\":" + std::to_string(d.line) +
            ",\"message\":\"" + JsonEscape(d.message) + "\"}";
  }
  if (!diags.empty()) *out += "\n  ";
}

}  // namespace

std::string ReportJson(const LintResult& result) {
  std::string out = "{\n";
  out += "  \"version\": 1,\n";
  out += "  \"files_scanned\": " + std::to_string(result.files_scanned) +
         ",\n";
  out += "  \"diagnostics\": [";
  AppendDiagnostics(result.active, &out);
  out += "],\n";
  out += "  \"suppressed\": [";
  AppendDiagnostics(result.suppressed, &out);
  out += "],\n";
  out += "  \"unused_suppressions\": [";
  for (size_t i = 0; i < result.unused_suppressions.size(); ++i) {
    const Suppression& s = result.unused_suppressions[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"rule\":\"" + JsonEscape(s.rule) + "\",\"path\":\"" +
           JsonEscape(s.path) + "\",\"line\":" + std::to_string(s.line) + "}";
  }
  if (!result.unused_suppressions.empty()) out += "\n  ";
  out += "],\n";
  out += "  \"ok\": ";
  out += result.active.empty() ? "true" : "false";
  out += "\n}\n";
  return out;
}

std::string FormatJsonRecords(const LintResult& result) {
  std::string out;
  for (const Diagnostic& d : result.active) {
    out += "{\"rule\":\"" + JsonEscape(d.rule) + "\",\"file\":\"" +
           JsonEscape(d.file) + "\",\"line\":" + std::to_string(d.line) +
           ",\"message\":\"" + JsonEscape(d.message) +
           "\",\"suppression\":\"" + JsonEscape(SuppressionKey(d)) + "\"}\n";
  }
  return out;
}

}  // namespace gpulint
