#include "tools/gpulint/lexer.h"

#include <cctype>

namespace gpulint {

namespace {

/// Multi-character punctuators, longest first so maximal munch works. Only
/// the ones that matter for tokenization correctness need to be here (an
/// unlisted digraph would just lex as two kPunct tokens), but keeping the
/// list complete makes token streams easier to reason about in rules.
constexpr std::string_view kPuncts3[] = {"<<=", ">>=", "...", "->*"};
constexpr std::string_view kPuncts2[] = {
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
    "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
};
// Note: "[[" / "]]" are NOT lexed as units — "a[b[i]]" would fuse the two
// closing brackets. Attributes appear as consecutive '[' '[' tokens.

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

std::vector<Token> Tokenize(std::string_view src) {
  std::vector<Token> out;
  size_t i = 0;
  int line = 1;
  const size_t n = src.size();

  auto at = [&](size_t k) -> char { return k < n ? src[k] : '\0'; };

  while (i < n) {
    const char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && at(i + 1) == '/') {
      while (i < n && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && at(i + 1) == '*') {
      i += 2;
      while (i < n && !(src[i] == '*' && at(i + 1) == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      i += 2;
      continue;
    }
    // Preprocessor directive: skip to end of line, honoring backslash
    // continuations, so #define bodies never reach the rules.
    if (c == '#') {
      while (i < n) {
        if (src[i] == '\\' && at(i + 1) == '\n') {
          ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') break;
        ++i;
      }
      continue;
    }
    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && at(i + 1) == '"') {
      size_t d = i + 2;
      while (d < n && src[d] != '(') ++d;
      const std::string delim(src.substr(i + 2, d - (i + 2)));
      const std::string closer = ")" + delim + "\"";
      const size_t body = d + 1;
      const size_t end = src.find(closer, body);
      const size_t stop = end == std::string_view::npos ? n : end;
      Token t;
      t.kind = TokenKind::kString;
      t.text = std::string(src.substr(body, stop - body));
      t.line = line;
      for (size_t k = i; k < stop && k < n; ++k) {
        if (src[k] == '\n') ++line;
      }
      out.push_back(std::move(t));
      i = stop == n ? n : stop + closer.size();
      continue;
    }
    // String / char literals.
    if (c == '"' || c == '\'') {
      const char quote = c;
      Token t;
      t.kind = quote == '"' ? TokenKind::kString : TokenKind::kCharLiteral;
      t.line = line;
      ++i;
      while (i < n && src[i] != quote) {
        if (src[i] == '\\' && i + 1 < n) {
          t.text += src[i];
          t.text += src[i + 1];
          if (src[i + 1] == '\n') ++line;
          i += 2;
          continue;
        }
        if (src[i] == '\n') ++line;  // unterminated; keep line count honest
        t.text += src[i];
        ++i;
      }
      ++i;  // closing quote
      out.push_back(std::move(t));
      continue;
    }
    // Identifiers / keywords.
    if (IsIdentStart(c)) {
      size_t j = i + 1;
      while (j < n && IsIdentChar(src[j])) ++j;
      Token t;
      t.kind = TokenKind::kIdentifier;
      t.text = std::string(src.substr(i, j - i));
      t.line = line;
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    // Numbers (loose: consume digits, dots, exponents, suffixes, hex).
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && std::isdigit(static_cast<unsigned char>(at(i + 1))))) {
      size_t j = i;
      while (j < n && (IsIdentChar(src[j]) || src[j] == '.' ||
                       ((src[j] == '+' || src[j] == '-') && j > i &&
                        (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                         src[j - 1] == 'p' || src[j - 1] == 'P')))) {
        ++j;
      }
      Token t;
      t.kind = TokenKind::kNumber;
      t.text = std::string(src.substr(i, j - i));
      t.line = line;
      out.push_back(std::move(t));
      i = j;
      continue;
    }
    // Punctuation, maximal munch.
    Token t;
    t.kind = TokenKind::kPunct;
    t.line = line;
    bool matched = false;
    for (std::string_view p : kPuncts3) {
      if (src.substr(i, 3) == p) {
        t.text = std::string(p);
        i += 3;
        matched = true;
        break;
      }
    }
    if (!matched) {
      for (std::string_view p : kPuncts2) {
        if (src.substr(i, 2) == p) {
          t.text = std::string(p);
          i += 2;
          matched = true;
          break;
        }
      }
    }
    if (!matched) {
      t.text = std::string(1, c);
      ++i;
    }
    out.push_back(std::move(t));
  }

  Token eof;
  eof.kind = TokenKind::kEof;
  eof.line = line;
  out.push_back(std::move(eof));
  return out;
}

}  // namespace gpulint
