#include "tools/gpulint/rules.h"

#include <algorithm>
#include <cctype>
#include <string_view>

#include "tools/gpulint/lexer.h"

namespace gpulint {

namespace {

/// Matches `path` against a repo directory: "src/gpu" matches
/// "src/gpu/device.cc" and "/abs/checkout/src/gpu/device.cc" but not
/// "src/gpu_extras/". Works on the plain-slash paths this repo uses.
bool InDir(const std::string& path, std::string_view dir) {
  const std::string needle = std::string(dir) + "/";
  if (path.rfind(needle, 0) == 0) return true;
  return path.find("/" + needle) != std::string::npos;
}

bool IsHeader(const std::string& path) {
  return path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

bool EndsWith(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// R1's annotation scope: the four API layers the issue pins down.
bool InAnnotatedLayer(const std::string& path) {
  return InDir(path, "src/common") || InDir(path, "src/gpu") ||
         InDir(path, "src/core") || InDir(path, "src/sql");
}

bool OnDevicePath(const std::string& path) {
  return InDir(path, "src/gpu") || InDir(path, "src/core");
}

/// The wrapper layer that implements scoped locking is the one file allowed
/// to touch the raw mutex (R7) and whose internals R8 never second-guesses.
bool IsMutexWrapper(const std::string& path) {
  return EndsWith(path, "common/mutex.h");
}

/// The declared lock-order registry (DESIGN.md §12), keyed by file. A file
/// hosts at most one level because each mutex-owning subsystem lives in its
/// own translation unit. kUnleveled files carry locks gpulint does not
/// order (tests, fixtures outside the engine).
constexpr int kUnleveled = -1;
int LockLevelOf(const std::string& path) {
  static constexpr struct {
    const char* dir;
    const char* stem;  // filename prefix within dir ("" = whole dir)
    int level;
  } kLevels[] = {
      // Order matters: "device_pool" must win over the "device" prefix.
      {"src/sql", "admission", 0},    {"src/sql", "session", 1},
      {"src/db", "catalog", 2},       {"src/gpu", "device_pool", 4},
      {"src/gpu", "thread_pool", 3},  {"src/gpu", "device", 3},
      {"src/common", "metrics", 5},   {"src/common", "query_log", 5},
      {"src/common", "trace", 5},     {"src/common", "profile", 5},
  };
  const size_t slash = path.find_last_of('/');
  const std::string base =
      slash == std::string::npos ? path : path.substr(slash + 1);
  for (const auto& entry : kLevels) {
    if (!InDir(path, entry.dir)) continue;
    if (base.rfind(entry.stem, 0) == 0) return entry.level;
  }
  return kUnleveled;
}

/// Path minus its extension: "src/gpu/device.cc" -> "src/gpu/device" — the
/// key a header/source pair shares (R9 shadow handling).
std::string PathStem(const std::string& path) {
  const size_t dot = path.find_last_of('.');
  const size_t slash = path.find_last_of('/');
  if (dot == std::string::npos ||
      (slash != std::string::npos && dot < slash)) {
    return path;
  }
  return path.substr(0, dot);
}

std::string Lowercase(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

/// R8's listener test: an invoked name that sounds like a user-supplied
/// hook, excluding the registration/introspection API around it.
bool IsListenerInvocation(const std::string& name) {
  const std::string lower = Lowercase(name);
  if (lower.find("listener") == std::string::npos &&
      lower.find("callback") == std::string::npos) {
    return false;
  }
  static constexpr std::string_view kAccessorPrefixes[] = {
      "add", "register", "remove", "set", "clear", "num", "has",
  };
  for (std::string_view prefix : kAccessorPrefixes) {
    if (lower.rfind(prefix, 0) == 0) return false;
  }
  return true;
}

}  // namespace

void Program::AddFile(const SourceModel* model) {
  files_.push_back(model);
  const bool in_gpu = InDir(model->path(), "src/gpu");
  for (const FunctionDef& f : model->functions()) {
    calls_[f.name].insert(f.calls.begin(), f.calls.end());
    if (in_gpu) gpu_defined_.insert(f.name);
    def_tags_[f.name].insert(f.qualifier.empty() ? "@" + model->path()
                                                 : f.qualifier);
  }
  for (const FallibleDecl& d : model->fallible_decls()) {
    fallible_names_.insert(d.name);
  }
  // R8/R9 facts: field guard coverage and direct lock acquisitions.
  const std::string stem = PathStem(model->path());
  for (const ClassInfo& cls : model->classes()) {
    for (const MemberField& f : cls.fields) {
      if (f.guarded) {
        guarded_fields_.insert(f.name);
      } else {
        unguarded_by_stem_[stem].insert(f.name);
      }
    }
  }
  const int level = LockLevelOf(model->path());
  if (level != kUnleveled && !IsMutexWrapper(model->path())) {
    for (const LockSite& site : model->lock_sites()) {
      if (site.adopt || site.function.empty()) continue;
      auto [it, inserted] = acquire_level_.emplace(site.function, level);
      if (!inserted) it->second = std::min(it->second, level);
    }
  }
}

std::set<std::string> Program::Closure(
    const std::set<std::string>& seed,
    const std::set<std::string>& blocked) const {
  std::set<std::string> result = seed;
  bool grew = true;
  while (grew) {
    grew = false;
    for (const auto& [fn, callees] : calls_) {
      if (result.count(fn) != 0 || blocked.count(fn) != 0) continue;
      for (const std::string& callee : callees) {
        if (result.count(callee) != 0) {
          result.insert(fn);
          grew = true;
          break;
        }
      }
    }
  }
  return result;
}

void Program::Finalize() {
  pass_issuing_ = Closure(
      {"RenderQuad", "RenderTexturedQuad", "DrawTriangles", "RenderInternal"});
  // Every Device entry point checks interrupts at pass entry, but the
  // cancellation-coverage rule demands that operator *loops* carry their own
  // check (a skipped pass must not leave the loop spinning — see
  // EXTENDING.md). So device-internal functions are barred from carrying
  // "checks interrupts" out to their callers: only an explicit
  // CheckInterrupt (or a non-gpu helper that makes one) satisfies R2.
  std::set<std::string> blocked = gpu_defined_;
  blocked.erase("CheckInterrupt");
  blocked.erase("InterruptPending");
  interrupt_checking_ =
      Closure({"CheckInterrupt", "InterruptPending"}, blocked);
  pool_reentrant_ = Closure({"ParallelFor", "EnsurePool", "SetWorkerThreads",
                             "RenderQuad", "RenderTexturedQuad",
                             "DrawTriangles", "RenderInternal"});
  version_bumping_ = Closure({"BumpTableVersion"});

  // Names defined under two or more distinct qualifiers merge unrelated
  // functions; treating them as lock-transparent would let (for example)
  // the fragment program's Execute inherit Session::Execute's admission
  // call. R8 treats them as opaque instead.
  for (const auto& [name, tags] : def_tags_) {
    if (tags.size() >= 2) ambiguous_.insert(name);
  }

  // Propagate minimum acquire levels up the (name-merged) call graph to a
  // fixed point: a caller acquires everything its callees acquire.
  bool grew = true;
  while (grew) {
    grew = false;
    for (const auto& [fn, callees] : calls_) {
      int best = MinAcquireLevel(fn);
      if (best == kNoLevel && ambiguous_.count(fn) != 0) continue;
      for (const std::string& callee : callees) {
        best = std::min(best, MinAcquireLevel(callee));
      }
      if (best < MinAcquireLevel(fn)) {
        acquire_level_[fn] = best;
        grew = true;
      }
    }
  }
}

int Program::MinAcquireLevel(const std::string& name) const {
  if (ambiguous_.count(name) != 0) return kNoLevel;
  auto it = acquire_level_.find(name);
  return it == acquire_level_.end() ? kNoLevel : it->second;
}

const std::set<std::string>& Program::UnguardedFieldsForStem(
    const std::string& stem) const {
  static const std::set<std::string> kEmpty;
  auto it = unguarded_by_stem_.find(stem);
  return it == unguarded_by_stem_.end() ? kEmpty : it->second;
}

void Program::LoadMetricRegistry(std::string_view header_source) {
  for (const Token& t : Tokenize(header_source)) {
    if (t.kind != TokenKind::kString || t.text.empty()) continue;
    if (t.text.back() == '*') {
      metric_prefixes_.push_back(t.text.substr(0, t.text.size() - 1));
    } else {
      metric_exact_.push_back(t.text);
    }
  }
  metric_registry_loaded_ = true;
}

bool Program::MetricRegistered(const std::string& name,
                               bool dynamic_suffix) const {
  if (dynamic_suffix) {
    // "counter(\"executor.\" + op)": the literal must sit on a wildcard.
    for (const std::string& p : metric_prefixes_) {
      if (name.rfind(p, 0) == 0) return true;
    }
    return false;
  }
  if (std::find(metric_exact_.begin(), metric_exact_.end(), name) !=
      metric_exact_.end()) {
    return true;
  }
  for (const std::string& p : metric_prefixes_) {
    if (name.size() > p.size() && name.rfind(p, 0) == 0) return true;
  }
  return false;
}

std::vector<Diagnostic> RunR1(const Program& program) {
  std::vector<Diagnostic> out;
  for (const SourceModel* file : program.files()) {
    // R1a: annotation coverage in the API headers.
    if (IsHeader(file->path()) && InAnnotatedLayer(file->path())) {
      for (const FallibleDecl& d : file->fallible_decls()) {
        if (d.nodiscard) continue;
        out.push_back({"R1", file->path(), d.line,
                       std::string(d.returns_result ? "Result" : "Status") +
                           "-returning declaration '" + d.name +
                           "' lacks [[nodiscard]]"});
      }
    }
    // R1b: discarded calls anywhere.
    for (const DiscardedCall& c : file->discarded_calls()) {
      if (!program.ReturnsFallible(c.callee)) continue;
      if (c.void_cast) {
        out.push_back({"R1", file->path(), c.line,
                       "'(void)' cast drops the Status/Result of '" +
                           c.callee +
                           "'; consume it or route it through DropStatus()"});
      } else {
        out.push_back({"R1", file->path(), c.line,
                       "result of fallible call '" + c.callee +
                           "' is discarded"});
      }
    }
  }
  return out;
}

std::vector<Diagnostic> RunR2(const Program& program) {
  std::vector<Diagnostic> out;
  for (const SourceModel* file : program.files()) {
    if (!OnDevicePath(file->path())) continue;
    for (const Loop& loop : file->loops()) {
      const std::set<std::string> calls =
          file->CallsIn(loop.body_begin, loop.body_end);
      std::string pass_call;
      bool checked = false;
      for (const std::string& name : calls) {
        if (pass_call.empty() && program.IssuesPass(name)) pass_call = name;
        if (program.ChecksInterrupt(name)) checked = true;
      }
      if (pass_call.empty() || checked) continue;
      out.push_back({"R2", file->path(), loop.line,
                     "loop issues render passes via '" + pass_call +
                         "' without an interrupt check; call "
                         "device->CheckInterrupt() each iteration"});
    }
  }
  return out;
}

std::vector<Diagnostic> RunR3(const Program& program) {
  std::vector<Diagnostic> out;
  for (const SourceModel* file : program.files()) {
    if (!OnDevicePath(file->path())) continue;
    const std::vector<Token>& toks = file->tokens();
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier || !toks[i + 1].Is("(")) {
        continue;
      }
      if (toks[i].text == "assert") {
        out.push_back({"R3", file->path(), toks[i].line,
                       "assert() on a device path; propagate a Status "
                       "(kInternal) instead"});
      } else if (toks[i].text == "abort") {
        out.push_back({"R3", file->path(), toks[i].line,
                       "abort() on a device path; propagate a Status "
                       "(kInternal) instead"});
      }
    }
  }
  return out;
}

std::vector<Diagnostic> RunR4(const Program& program) {
  std::vector<Diagnostic> out;
  for (const SourceModel* file : program.files()) {
    for (const ParallelForSite& site : file->parallel_fors()) {
      for (const std::string& name :
           file->CallsIn(site.args_begin, site.args_end)) {
        if (!program.ReentersPool(name)) continue;
        out.push_back({"R4", file->path(), site.line,
                       "ParallelFor body calls '" + name +
                           "', which re-enters the ThreadPool or the Device "
                           "render path (re-entrancy rule, DESIGN.md §10)"});
      }
    }
  }
  return out;
}

std::vector<Diagnostic> RunR5(const Program& program) {
  std::vector<Diagnostic> out;
  if (!program.has_metric_registry()) return out;
  for (const SourceModel* file : program.files()) {
    if (EndsWith(file->path(), "metric_names.h")) continue;
    const std::vector<Token>& toks = file->tokens();
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier) continue;
      const std::string& fn = toks[i].text;
      // Tracer::Counter() track names double as metric names, so profile
      // counter tracks face the same registration requirement.
      if (fn != "counter" && fn != "gauge" && fn != "histogram" &&
          fn != "Counter") {
        continue;
      }
      if (!toks[i + 1].Is("(") || toks[i + 2].kind != TokenKind::kString) {
        continue;
      }
      const std::string& name = toks[i + 2].text;
      // A '+' after the literal means a runtime suffix is appended
      // ("executor." + op); further arguments (Tracer::Counter's value)
      // leave the name itself static.
      const bool dynamic = i + 3 < toks.size() && toks[i + 3].Is("+");
      if (program.MetricRegistered(name, dynamic)) continue;
      out.push_back(
          {"R5", file->path(), toks[i + 2].line,
           "metric name \"" + name + (dynamic ? "…\"" : "\"") +
               " is not in src/common/metric_names.h; register it there "
               "so dashboards track it" +
               (dynamic ? " (dynamic suffixes need a '*' entry)" : "")});
    }
  }
  return out;
}

std::vector<Diagnostic> RunR6(const Program& program) {
  // The mutators R6 tracks: catalog-visible rewrites of a registered
  // table's backing store or its derived statistics. Catalog::SetStats is
  // today's only one (ANALYZE re-reads the store to build the stats); add
  // new names here when new store writers appear (EXTENDING.md).
  static constexpr std::string_view kStoreMutators[] = {"SetStats"};
  std::vector<Diagnostic> out;
  for (const SourceModel* file : program.files()) {
    // The catalog itself implements the hook (Register seeds versions,
    // BumpTableVersion increments them); only callers are on the hook.
    if (InDir(file->path(), "src/db")) continue;
    for (const FunctionDef& f : file->functions()) {
      for (std::string_view mutator : kStoreMutators) {
        if (f.calls.count(std::string(mutator)) == 0) continue;
        if (program.BumpsTableVersion(f.name)) continue;
        out.push_back(
            {"R6", file->path(), f.line,
             "'" + f.name + "' mutates a table's backing store via '" +
                 std::string(mutator) +
                 "' without bumping the catalog table version; call "
                 "Catalog::BumpTableVersion so cached depth planes are "
                 "invalidated (DESIGN.md §14)"});
      }
    }
  }
  return out;
}

std::vector<Diagnostic> RunR7(const Program& program) {
  std::vector<Diagnostic> out;
  for (const SourceModel* file : program.files()) {
    if (IsMutexWrapper(file->path())) continue;
    // R7a: guard coverage in mutex-owning classes.
    for (const ClassInfo& cls : file->classes()) {
      if (!cls.owns_mutex) continue;
      for (const MemberField& f : cls.fields) {
        if (f.is_sync || f.is_static_const || f.guarded ||
            f.lock_free_marked) {
          continue;
        }
        out.push_back(
            {"R7", file->path(), f.line,
             "field '" + f.name + "' of mutex-owning class '" + cls.name +
                 "' is neither GUARDED_BY-annotated nor justified with "
                 "'// lint: lock-free (reason)'"});
      }
    }
    // R7b: naked .lock()/.unlock() calls. Scoped holders may be released
    // early (their names say so: execute_lock.unlock()), but raw mutexes
    // must go through MutexLock / std::lock_guard.
    for (const NakedLockCall& c : file->naked_locks()) {
      if (Lowercase(c.receiver).find("lock") != std::string::npos) continue;
      out.push_back({"R7", file->path(), c.line,
                     "naked ." + c.method + "() on '" +
                         (c.receiver.empty() ? "<expr>" : c.receiver) +
                         "'; use a scoped holder (MutexLock) so the "
                         "capability analysis sees the release"});
    }
  }
  return out;
}

std::vector<Diagnostic> RunR8(const Program& program) {
  std::vector<Diagnostic> out;
  for (const SourceModel* file : program.files()) {
    if (IsMutexWrapper(file->path())) continue;
    const int held = LockLevelOf(file->path());
    for (const LockSite& site : file->lock_sites()) {
      if (site.adopt) continue;
      const std::set<std::string> calls =
          file->CallsIn(site.region_begin, site.region_end);
      if (held != kUnleveled) {
        // Out-of-order acquisition: anything reached from this locked
        // region that (transitively) takes a lock at an *earlier* level
        // inverts the declared order and can deadlock against a thread
        // walking the order forwards.
        for (const std::string& name : calls) {
          const int acquired = program.MinAcquireLevel(name);
          if (acquired >= held) continue;
          out.push_back(
              {"R8", file->path(), site.line,
               "locked region (level " + std::to_string(held) + ") calls '" +
                   name + "', which acquires a level-" +
                   std::to_string(acquired) +
                   " lock; the declared order (DESIGN.md §12) runs "
                   "admission(0) -> session(1) -> catalog(2) -> device(3) "
                   "-> pool(4) -> telemetry(5)"});
        }
      }
      // Same-file nesting: two scoped acquisitions in one file are the
      // same level by construction, and the registry orders levels
      // strictly — no two locks of one subsystem may nest.
      for (const LockSite& inner : file->lock_sites()) {
        if (inner.adopt || inner.decl_token < site.region_begin ||
            inner.decl_token >= site.region_end) {
          continue;
        }
        out.push_back({"R8", file->path(), inner.line,
                       "scoped lock acquired while a " + site.holder +
                           " from line " + std::to_string(site.line) +
                           " is still held; same-subsystem locks must not "
                           "nest"});
      }
      // Listener discipline: user-supplied hooks must run after release
      // (they may re-enter the subsystem -- Catalog::BumpTableVersion
      // snapshots its listeners under the lock and invokes them outside).
      for (const std::string& name : calls) {
        if (!IsListenerInvocation(name)) continue;
        out.push_back({"R8", file->path(), site.line,
                       "locked region invokes '" + name +
                           "'; snapshot listeners under the lock and call "
                           "them after release (re-entrant hooks deadlock)"});
      }
    }
  }
  return out;
}

namespace {

/// Resolves `name` as a local lambda (`auto name = [...](...) {...}`) in
/// `file` and returns its body token range, or {0,0} when `name` is not a
/// lambda. Lets R9 see through `ParallelFor(bands, run_band)`.
std::pair<size_t, size_t> LambdaBodyOf(const SourceModel& file,
                                       const std::string& name) {
  const std::vector<Token>& toks = file.tokens();
  for (size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!toks[i].IsIdent(name) || !toks[i + 1].Is("=") ||
        !toks[i + 2].Is("[")) {
      continue;
    }
    size_t j = file.MatchForward(i + 2) + 1;  // past the capture list
    if (j < toks.size() && toks[j].Is("(")) {
      j = file.MatchForward(j) + 1;  // past the parameter list
    }
    while (j < toks.size() && !toks[j].Is("{") && !toks[j].Is(";")) {
      ++j;  // mutable / noexcept / -> return-type
    }
    if (j >= toks.size() || !toks[j].Is("{")) return {0, 0};
    return {j + 1, file.MatchForward(j)};
  }
  return {0, 0};
}

void CheckKernelRange(const Program& program, const SourceModel& file,
                      const std::set<std::string>& shadowed, int line,
                      std::string_view what, size_t begin, size_t end,
                      std::vector<Diagnostic>* out) {
  for (const std::string& ident : file.IdentifiersIn(begin, end)) {
    if (program.guarded_fields().count(ident) == 0) continue;
    if (shadowed.count(ident) != 0) continue;
    out->push_back(
        {"R9", file.path(), line,
         std::string(what) + " touches GUARDED_BY field '" + ident +
             "'; band-parallel kernels must not reach engine locks "
             "(workers synchronize through the pool protocol alone)"});
  }
}

}  // namespace

std::vector<Diagnostic> RunR9(const Program& program) {
  std::vector<Diagnostic> out;
  for (const SourceModel* file : program.files()) {
    // Same-named unguarded fields declared in this .h/.cc pair shadow the
    // program-wide guarded set (Device::counters_ is not Tracer::counters_).
    const std::set<std::string>& shadowed =
        program.UnguardedFieldsForStem(PathStem(file->path()));
    for (const ParallelForSite& site : file->parallel_fors()) {
      CheckKernelRange(program, *file, shadowed, site.line,
                       "ParallelFor body", site.args_begin, site.args_end,
                       &out);
      // A worker passed by name: resolve the local lambda and scan its
      // body too.
      for (size_t i = site.args_begin; i < site.args_end; ++i) {
        const Token& t = file->tokens()[i];
        if (t.kind != TokenKind::kIdentifier ||
            file->tokens()[i + 1].Is("(")) {
          continue;
        }
        const auto [begin, end] = LambdaBodyOf(*file, t.text);
        if (begin == end) continue;
        CheckKernelRange(program, *file, shadowed, site.line,
                         "ParallelFor worker '" + t.text + "'", begin, end,
                         &out);
      }
    }
    for (const FunctionDef& f : file->functions()) {
      if (f.name != "QuadRowKernel") continue;
      CheckKernelRange(program, *file, shadowed, f.line, "QuadRowKernel",
                       f.body_begin + 1, f.body_end, &out);
    }
  }
  return out;
}

std::vector<Diagnostic> RunAllRules(const Program& program) {
  std::vector<Diagnostic> all;
  for (auto* run : {RunR1, RunR2, RunR3, RunR4, RunR5, RunR6, RunR7, RunR8,
                    RunR9}) {
    std::vector<Diagnostic> d = run(program);
    all.insert(all.end(), d.begin(), d.end());
  }
  return all;
}

const std::map<std::string, std::string>& RuleDescriptions() {
  static const std::map<std::string, std::string> kRules = {
      {"R1",
       "every Status/Result return value is consumed, and fallible "
       "declarations in src/{common,gpu,core,sql} headers are [[nodiscard]]"},
      {"R2",
       "loops that issue render passes (src/core, src/gpu) check "
       "CheckInterrupt so cancellation and deadlines stay responsive"},
      {"R3",
       "no assert()/abort() on device paths (src/gpu, src/core); faults "
       "propagate as Status"},
      {"R4",
       "ParallelFor bodies never re-enter the ThreadPool or the Device "
       "render path"},
      {"R5",
       "every literal metric name -- including Tracer::Counter() track "
       "names -- is registered in src/common/metric_names.h"},
      {"R6",
       "code paths mutating a table's backing store (Catalog::SetStats "
       "writers) also call Catalog::BumpTableVersion so cached depth "
       "planes invalidate"},
      {"R7",
       "every mutable field of a mutex-owning class is GUARDED_BY-annotated "
       "or justified '// lint: lock-free (reason)'; naked .lock()/.unlock() "
       "is banned in favor of scoped holders"},
      {"R8",
       "locked regions respect the declared lock order -- admission(0) -> "
       "session(1) -> catalog(2) -> device(3) -> pool(4) -> telemetry(5) -- "
       "never nest same-subsystem locks, and never invoke listeners or "
       "callbacks under a lock"},
      {"R9",
       "band-parallel kernels (QuadRowKernel, ParallelFor bodies) never "
       "touch GUARDED_BY fields; workers synchronize only through the "
       "pool protocol"},
  };
  return kRules;
}

}  // namespace gpulint
