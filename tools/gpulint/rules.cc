#include "tools/gpulint/rules.h"

#include <algorithm>

#include "tools/gpulint/lexer.h"

namespace gpulint {

namespace {

/// Matches `path` against a repo directory: "src/gpu" matches
/// "src/gpu/device.cc" and "/abs/checkout/src/gpu/device.cc" but not
/// "src/gpu_extras/". Works on the plain-slash paths this repo uses.
bool InDir(const std::string& path, std::string_view dir) {
  const std::string needle = std::string(dir) + "/";
  if (path.rfind(needle, 0) == 0) return true;
  return path.find("/" + needle) != std::string::npos;
}

bool IsHeader(const std::string& path) {
  return path.size() > 2 && path.compare(path.size() - 2, 2, ".h") == 0;
}

bool EndsWith(const std::string& s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

/// R1's annotation scope: the four API layers the issue pins down.
bool InAnnotatedLayer(const std::string& path) {
  return InDir(path, "src/common") || InDir(path, "src/gpu") ||
         InDir(path, "src/core") || InDir(path, "src/sql");
}

bool OnDevicePath(const std::string& path) {
  return InDir(path, "src/gpu") || InDir(path, "src/core");
}

}  // namespace

void Program::AddFile(const SourceModel* model) {
  files_.push_back(model);
  const bool in_gpu = InDir(model->path(), "src/gpu");
  for (const FunctionDef& f : model->functions()) {
    calls_[f.name].insert(f.calls.begin(), f.calls.end());
    if (in_gpu) gpu_defined_.insert(f.name);
  }
  for (const FallibleDecl& d : model->fallible_decls()) {
    fallible_names_.insert(d.name);
  }
}

std::set<std::string> Program::Closure(
    const std::set<std::string>& seed,
    const std::set<std::string>& blocked) const {
  std::set<std::string> result = seed;
  bool grew = true;
  while (grew) {
    grew = false;
    for (const auto& [fn, callees] : calls_) {
      if (result.count(fn) != 0 || blocked.count(fn) != 0) continue;
      for (const std::string& callee : callees) {
        if (result.count(callee) != 0) {
          result.insert(fn);
          grew = true;
          break;
        }
      }
    }
  }
  return result;
}

void Program::Finalize() {
  pass_issuing_ = Closure(
      {"RenderQuad", "RenderTexturedQuad", "DrawTriangles", "RenderInternal"});
  // Every Device entry point checks interrupts at pass entry, but the
  // cancellation-coverage rule demands that operator *loops* carry their own
  // check (a skipped pass must not leave the loop spinning — see
  // EXTENDING.md). So device-internal functions are barred from carrying
  // "checks interrupts" out to their callers: only an explicit
  // CheckInterrupt (or a non-gpu helper that makes one) satisfies R2.
  std::set<std::string> blocked = gpu_defined_;
  blocked.erase("CheckInterrupt");
  blocked.erase("InterruptPending");
  interrupt_checking_ =
      Closure({"CheckInterrupt", "InterruptPending"}, blocked);
  pool_reentrant_ = Closure({"ParallelFor", "EnsurePool", "SetWorkerThreads",
                             "RenderQuad", "RenderTexturedQuad",
                             "DrawTriangles", "RenderInternal"});
  version_bumping_ = Closure({"BumpTableVersion"});
}

void Program::LoadMetricRegistry(std::string_view header_source) {
  for (const Token& t : Tokenize(header_source)) {
    if (t.kind != TokenKind::kString || t.text.empty()) continue;
    if (t.text.back() == '*') {
      metric_prefixes_.push_back(t.text.substr(0, t.text.size() - 1));
    } else {
      metric_exact_.push_back(t.text);
    }
  }
  metric_registry_loaded_ = true;
}

bool Program::MetricRegistered(const std::string& name,
                               bool dynamic_suffix) const {
  if (dynamic_suffix) {
    // "counter(\"executor.\" + op)": the literal must sit on a wildcard.
    for (const std::string& p : metric_prefixes_) {
      if (name.rfind(p, 0) == 0) return true;
    }
    return false;
  }
  if (std::find(metric_exact_.begin(), metric_exact_.end(), name) !=
      metric_exact_.end()) {
    return true;
  }
  for (const std::string& p : metric_prefixes_) {
    if (name.size() > p.size() && name.rfind(p, 0) == 0) return true;
  }
  return false;
}

std::vector<Diagnostic> RunR1(const Program& program) {
  std::vector<Diagnostic> out;
  for (const SourceModel* file : program.files()) {
    // R1a: annotation coverage in the API headers.
    if (IsHeader(file->path()) && InAnnotatedLayer(file->path())) {
      for (const FallibleDecl& d : file->fallible_decls()) {
        if (d.nodiscard) continue;
        out.push_back({"R1", file->path(), d.line,
                       std::string(d.returns_result ? "Result" : "Status") +
                           "-returning declaration '" + d.name +
                           "' lacks [[nodiscard]]"});
      }
    }
    // R1b: discarded calls anywhere.
    for (const DiscardedCall& c : file->discarded_calls()) {
      if (!program.ReturnsFallible(c.callee)) continue;
      if (c.void_cast) {
        out.push_back({"R1", file->path(), c.line,
                       "'(void)' cast drops the Status/Result of '" +
                           c.callee +
                           "'; consume it or route it through DropStatus()"});
      } else {
        out.push_back({"R1", file->path(), c.line,
                       "result of fallible call '" + c.callee +
                           "' is discarded"});
      }
    }
  }
  return out;
}

std::vector<Diagnostic> RunR2(const Program& program) {
  std::vector<Diagnostic> out;
  for (const SourceModel* file : program.files()) {
    if (!OnDevicePath(file->path())) continue;
    for (const Loop& loop : file->loops()) {
      const std::set<std::string> calls =
          file->CallsIn(loop.body_begin, loop.body_end);
      std::string pass_call;
      bool checked = false;
      for (const std::string& name : calls) {
        if (pass_call.empty() && program.IssuesPass(name)) pass_call = name;
        if (program.ChecksInterrupt(name)) checked = true;
      }
      if (pass_call.empty() || checked) continue;
      out.push_back({"R2", file->path(), loop.line,
                     "loop issues render passes via '" + pass_call +
                         "' without an interrupt check; call "
                         "device->CheckInterrupt() each iteration"});
    }
  }
  return out;
}

std::vector<Diagnostic> RunR3(const Program& program) {
  std::vector<Diagnostic> out;
  for (const SourceModel* file : program.files()) {
    if (!OnDevicePath(file->path())) continue;
    const std::vector<Token>& toks = file->tokens();
    for (size_t i = 0; i + 1 < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier || !toks[i + 1].Is("(")) {
        continue;
      }
      if (toks[i].text == "assert") {
        out.push_back({"R3", file->path(), toks[i].line,
                       "assert() on a device path; propagate a Status "
                       "(kInternal) instead"});
      } else if (toks[i].text == "abort") {
        out.push_back({"R3", file->path(), toks[i].line,
                       "abort() on a device path; propagate a Status "
                       "(kInternal) instead"});
      }
    }
  }
  return out;
}

std::vector<Diagnostic> RunR4(const Program& program) {
  std::vector<Diagnostic> out;
  for (const SourceModel* file : program.files()) {
    for (const ParallelForSite& site : file->parallel_fors()) {
      for (const std::string& name :
           file->CallsIn(site.args_begin, site.args_end)) {
        if (!program.ReentersPool(name)) continue;
        out.push_back({"R4", file->path(), site.line,
                       "ParallelFor body calls '" + name +
                           "', which re-enters the ThreadPool or the Device "
                           "render path (re-entrancy rule, DESIGN.md §10)"});
      }
    }
  }
  return out;
}

std::vector<Diagnostic> RunR5(const Program& program) {
  std::vector<Diagnostic> out;
  if (!program.has_metric_registry()) return out;
  for (const SourceModel* file : program.files()) {
    if (EndsWith(file->path(), "metric_names.h")) continue;
    const std::vector<Token>& toks = file->tokens();
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].kind != TokenKind::kIdentifier) continue;
      const std::string& fn = toks[i].text;
      // Tracer::Counter() track names double as metric names, so profile
      // counter tracks face the same registration requirement.
      if (fn != "counter" && fn != "gauge" && fn != "histogram" &&
          fn != "Counter") {
        continue;
      }
      if (!toks[i + 1].Is("(") || toks[i + 2].kind != TokenKind::kString) {
        continue;
      }
      const std::string& name = toks[i + 2].text;
      // A '+' after the literal means a runtime suffix is appended
      // ("executor." + op); further arguments (Tracer::Counter's value)
      // leave the name itself static.
      const bool dynamic = i + 3 < toks.size() && toks[i + 3].Is("+");
      if (program.MetricRegistered(name, dynamic)) continue;
      out.push_back(
          {"R5", file->path(), toks[i + 2].line,
           "metric name \"" + name + (dynamic ? "…\"" : "\"") +
               " is not in src/common/metric_names.h; register it there "
               "so dashboards track it" +
               (dynamic ? " (dynamic suffixes need a '*' entry)" : "")});
    }
  }
  return out;
}

std::vector<Diagnostic> RunR6(const Program& program) {
  // The mutators R6 tracks: catalog-visible rewrites of a registered
  // table's backing store or its derived statistics. Catalog::SetStats is
  // today's only one (ANALYZE re-reads the store to build the stats); add
  // new names here when new store writers appear (EXTENDING.md).
  static constexpr std::string_view kStoreMutators[] = {"SetStats"};
  std::vector<Diagnostic> out;
  for (const SourceModel* file : program.files()) {
    // The catalog itself implements the hook (Register seeds versions,
    // BumpTableVersion increments them); only callers are on the hook.
    if (InDir(file->path(), "src/db")) continue;
    for (const FunctionDef& f : file->functions()) {
      for (std::string_view mutator : kStoreMutators) {
        if (f.calls.count(std::string(mutator)) == 0) continue;
        if (program.BumpsTableVersion(f.name)) continue;
        out.push_back(
            {"R6", file->path(), f.line,
             "'" + f.name + "' mutates a table's backing store via '" +
                 std::string(mutator) +
                 "' without bumping the catalog table version; call "
                 "Catalog::BumpTableVersion so cached depth planes are "
                 "invalidated (DESIGN.md §14)"});
      }
    }
  }
  return out;
}

std::vector<Diagnostic> RunAllRules(const Program& program) {
  std::vector<Diagnostic> all;
  for (auto* run : {RunR1, RunR2, RunR3, RunR4, RunR5, RunR6}) {
    std::vector<Diagnostic> d = run(program);
    all.insert(all.end(), d.begin(), d.end());
  }
  return all;
}

const std::map<std::string, std::string>& RuleDescriptions() {
  static const std::map<std::string, std::string> kRules = {
      {"R1",
       "every Status/Result return value is consumed, and fallible "
       "declarations in src/{common,gpu,core,sql} headers are [[nodiscard]]"},
      {"R2",
       "loops that issue render passes (src/core, src/gpu) check "
       "CheckInterrupt so cancellation and deadlines stay responsive"},
      {"R3",
       "no assert()/abort() on device paths (src/gpu, src/core); faults "
       "propagate as Status"},
      {"R4",
       "ParallelFor bodies never re-enter the ThreadPool or the Device "
       "render path"},
      {"R5",
       "every literal metric name -- including Tracer::Counter() track "
       "names -- is registered in src/common/metric_names.h"},
      {"R6",
       "code paths mutating a table's backing store (Catalog::SetStats "
       "writers) also call Catalog::BumpTableVersion so cached depth "
       "planes invalidate"},
  };
  return kRules;
}

}  // namespace gpulint
