#!/usr/bin/env bash
# Tier-1 verification plus the sanitizer configurations:
#   1. the standard build + full ctest run (what CI gates on),
#   2. a bench smoke run of every figure bench with a committed baseline,
#      diffed against bench/baseline (model-time regression gate; see
#      scripts/bench_diff.py),
#   3. an ASan+UBSan Debug build of the test suite, which also turns on the
#      record-time PassRecord invariant asserts in gpu::Device, and
#   4. a TSan build of the parallel-pixel-engine determinism test, run
#      oversubscribed (GPUDB_THREADS=8) to shake out races in the row-band
#      dispatch.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: standard build + tests =="
cmake -B build -S . >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure -j

echo "== bench smoke: figure model times vs bench/baseline =="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
for bench in fig02_copy_depth fig03_predicate fig04_range fig05_multiattr \
             fig06_semilinear fig07_kth_vs_k fig08_median \
             fig09_kth_selectivity fig10_accumulator; do
  GPUDB_BENCH_JSON_DIR="$smoke_dir" "./build/bench/$bench" >/dev/null
done
python3 scripts/bench_diff.py bench/baseline "$smoke_dir"

echo "== sanitizers: ASan+UBSan Debug build + tests =="
cmake -B build-asan -S . -DGPUDB_SANITIZE=ON >/dev/null
cmake --build build-asan -j
ctest --test-dir build-asan --output-on-failure -j

echo "== sanitizers: TSan build + parallel determinism test =="
cmake -B build-tsan -S . -DGPUDB_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target gpu_parallel_test
GPUDB_THREADS=8 ./build-tsan/tests/gpu_parallel_test

echo "check.sh: all green"
