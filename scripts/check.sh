#!/usr/bin/env bash
# Tier-1 verification plus the sanitizer configuration:
#   1. the standard build + full ctest run (what CI gates on), and
#   2. an ASan+UBSan Debug build of the test suite, which also turns on the
#      record-time PassRecord invariant asserts in gpu::Device.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: standard build + tests =="
cmake -B build -S . >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure -j

echo "== sanitizers: ASan+UBSan Debug build + tests =="
cmake -B build-asan -S . -DGPUDB_SANITIZE=ON >/dev/null
cmake --build build-asan -j
ctest --test-dir build-asan --output-on-failure -j

echo "check.sh: all green"
