#!/usr/bin/env bash
# Tier-1 verification plus the sanitizer configuration:
#   1. the standard build + full ctest run (what CI gates on),
#   2. a bench smoke run diffed against the committed baseline (model-time
#      regression gate; see scripts/bench_diff.py and bench/baseline/), and
#   3. an ASan+UBSan Debug build of the test suite, which also turns on the
#      record-time PassRecord invariant asserts in gpu::Device.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier 1: standard build + tests =="
cmake -B build -S . >/dev/null
cmake --build build -j
ctest --test-dir build --output-on-failure -j

echo "== bench smoke: figure 3 model times vs bench/baseline =="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
GPUDB_BENCH_JSON_DIR="$smoke_dir" ./build/bench/fig03_predicate >/dev/null
python3 scripts/bench_diff.py bench/baseline "$smoke_dir"

echo "== sanitizers: ASan+UBSan Debug build + tests =="
cmake -B build-asan -S . -DGPUDB_SANITIZE=ON >/dev/null
cmake --build build-asan -j
ctest --test-dir build-asan --output-on-failure -j

echo "check.sh: all green"
