#!/usr/bin/env bash
# Tier-1 verification plus the sanitizer configurations:
#   0. lint: gpulint (the in-tree analyzer, rules R1-R9 of DESIGN.md §12)
#      over src/, a hygiene pass over lint.suppressions (every entry needs a
#      reason and an owner/why comment), the clang-tidy baseline diff
#      (scripts/tidy.sh), and — when clang is installed — a
#      -Wthread-safety -Werror build exercising the capability annotations
#      of src/common/thread_annotations.h. First, so rule violations fail
#      before any build time is spent,
#   1. the standard build + full ctest run (what CI gates on),
#   2. a bench smoke run of every figure bench with a committed baseline,
#      diffed against bench/baseline (model-time regression gate; see
#      scripts/bench_diff.py), then fig03 again under --profile with
#      scripts/profile_smoke.py asserting the gpuprof counters are nonzero,
#      the fragment ledger balances, and profiling overhead stays bounded,
#   3. a fault-injection sweep: the resilience and fuzz suites re-run with
#      $GPUDB_FAULT_RATE > 0 so every degradation path (retry, breaker,
#      CPU fallback) executes in the gating build,
#   4. an ASan+UBSan Debug build of the test suite, which also turns on the
#      record-time PassRecord invariant asserts in gpu::Device and re-runs
#      the fault sweep under ASan,
#   5. a standalone UBSan build (GPUDB_SANITIZE=undefined, recover off) of
#      the full suite — UB aborts the test instead of hiding behind ASan's
#      interceptors, and
#   6. a TSan build of the parallel-pixel-engine determinism test and the
#      fault sweep, run oversubscribed (GPUDB_THREADS=8) to shake out races
#      in the row-band dispatch and the interrupt/fault paths.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== lint: gpulint rules R1-R9 + suppression hygiene + clang-tidy baseline =="
# gpulint only needs its own little library; build just that target.
cmake -B build -S . >/dev/null
cmake --build build -j --target gpulint
./build/tools/gpulint/gpulint --root=. --json=build/gpulint-report.json
# Suppression hygiene: every live entry must carry a reason on the line
# (RULE PATH reason...) and an owner/why comment block directly above it.
# A suppression nobody can explain is debt, not a decision.
awk '
  /^[[:space:]]*#/ { prev_comment = 1; next }
  /^[[:space:]]*$/ { prev_comment = 0; next }
  {
    if (NF < 3) {
      print "lint.suppressions: entry lacks a reason: " $0; bad = 1
    } else if (!prev_comment) {
      print "lint.suppressions: entry lacks an owner/why comment above: " $0
      bad = 1
    }
    prev_comment = 0
  }
  END { exit bad }
' lint.suppressions
scripts/tidy.sh

echo "== lint: clang -Wthread-safety capability analysis =="
# src/common/thread_annotations.h compiles to no-ops under gcc; only clang
# implements the capability analysis. Gate it when clang is available so CI
# images with LLVM statically verify every GUARDED_BY/REQUIRES contract.
if command -v clang++ >/dev/null 2>&1; then
  cmake -B build-threadsafety -S . -DCMAKE_CXX_COMPILER=clang++ \
    -DCMAKE_CXX_FLAGS="-Wthread-safety -Werror=thread-safety" >/dev/null
  cmake --build build-threadsafety -j
else
  echo "thread-safety: clang++ not found; skipping (annotations are no-ops" \
       "under gcc -- gpulint R7-R9 still gate lock discipline)"
fi

echo "== tier 1: standard build + tests =="
cmake --build build -j
ctest --test-dir build --output-on-failure -j

echo "== bench smoke: figure model times vs bench/baseline =="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
for bench in fig02_copy_depth fig03_predicate fig04_range fig05_multiattr \
             fig06_semilinear fig07_kth_vs_k fig08_median \
             fig09_kth_selectivity fig10_accumulator fig_hotcolumn; do
  GPUDB_BENCH_JSON_DIR="$smoke_dir" "./build/bench/$bench" >/dev/null
done
python3 scripts/bench_diff.py bench/baseline "$smoke_dir"

echo "== profiling smoke: fig03 under --profile, counters + overhead gate =="
# The plain fig03 JSON from the smoke run above is one no-profile baseline;
# run both arms twice more and let profile_smoke.py gate on the best wall
# time per side (shared machines jitter single runs by 2x+), assert the
# deep counters are nonzero and bit-identical across profiled runs, and
# that the fragment ledger balances.
profile_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir" "$profile_dir"' EXIT
plain_jsons=("$smoke_dir/BENCH_figure_3.json")
prof_jsons=()
for i in 1 2; do
  mkdir -p "$profile_dir/plain$i" "$profile_dir/prof$i"
  GPUDB_BENCH_JSON_DIR="$profile_dir/plain$i" ./build/bench/fig03_predicate \
    >/dev/null
  GPUDB_BENCH_JSON_DIR="$profile_dir/prof$i" ./build/bench/fig03_predicate \
    --profile >/dev/null
  plain_jsons+=("$profile_dir/plain$i/BENCH_figure_3.json")
  prof_jsons+=("$profile_dir/prof$i/BENCH_figure_3.json")
done
python3 scripts/profile_smoke.py --plain "${plain_jsons[@]}" \
  --profiled "${prof_jsons[@]}"

echo "== fault sweep: resilience + fuzz suites with injection enabled =="
# The suites configure their own injectors (tests need to control the seed
# per device); the env vars are exported anyway to pin the convention for
# harness binaries (sql_shell, bench) — only ConfigFromEnv consumers see
# them, so the suites stay deterministic.
GPUDB_FAULT_SEED=20260805 GPUDB_FAULT_RATE=0.05 \
  ./build/tests/core_resilience_test
GPUDB_FAULT_SEED=20260805 GPUDB_FAULT_RATE=0.05 \
  ./build/tests/device_fuzz_test --gtest_filter='FaultSweep.*'

echo "== pool: shard failover + 16-session soak with injection enabled =="
# The multi-device tier under fault injection: the pool suite covers the
# health state machine and replica-failover bit-exactness; the soak runs 16
# concurrent sessions over a shared fault-injected pool and admission
# controller. The gate is zero non-injected failures and zero wrong answers
# (injected faults must be absorbed by failover and the CPU rung).
GPUDB_FAULT_SEED=20260805 GPUDB_FAULT_RATE=0.05 \
  ./build/tests/gpu_pool_test
GPUDB_FAULT_SEED=20260805 GPUDB_FAULT_RATE=0.05 \
  ./build/tests/device_fuzz_test --gtest_filter='PoolSoak.*'

echo "== sanitizers: ASan+UBSan Debug build + tests =="
cmake -B build-asan -S . -DGPUDB_SANITIZE=ON >/dev/null
cmake --build build-asan -j
ctest --test-dir build-asan --output-on-failure -j
GPUDB_FAULT_SEED=20260805 GPUDB_FAULT_RATE=0.05 \
  ./build-asan/tests/device_fuzz_test --gtest_filter='FaultSweep.*'

echo "== sanitizers: standalone UBSan build + tests =="
cmake -B build-ubsan -S . -DGPUDB_SANITIZE=undefined >/dev/null
cmake --build build-ubsan -j
ctest --test-dir build-ubsan --output-on-failure -j

echo "== sanitizers: TSan build + parallel determinism + fault sweep + pool soak =="
cmake -B build-tsan -S . -DGPUDB_SANITIZE=thread >/dev/null
cmake --build build-tsan -j --target gpu_parallel_test device_fuzz_test gpu_pool_test
GPUDB_THREADS=8 ./build-tsan/tests/gpu_parallel_test
GPUDB_THREADS=8 ./build-tsan/tests/device_fuzz_test --gtest_filter='FaultSweep.*'
GPUDB_THREADS=8 ./build-tsan/tests/gpu_pool_test
GPUDB_FAULT_SEED=20260805 GPUDB_FAULT_RATE=0.05 GPUDB_THREADS=8 \
  ./build-tsan/tests/device_fuzz_test --gtest_filter='PoolSoak.*'

echo "check.sh: all green"
