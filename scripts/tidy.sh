#!/usr/bin/env bash
# clang-tidy against the committed baseline (DESIGN.md §12).
#
#   scripts/tidy.sh                     # fail on findings not in tidy.baseline
#   scripts/tidy.sh --update-baseline   # rewrite tidy.baseline from HEAD
#
# Uses the compile_commands.json of an existing build directory (BUILD_DIR,
# default ./build); configures one if missing. When clang-tidy itself is not
# installed the stage is skipped with exit 0 — gpulint (the in-tree
# analyzer) still gates, and CI images with LLVM get the extra coverage.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
BASELINE=tidy.baseline

TIDY="${CLANG_TIDY:-clang-tidy}"
if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "tidy: $TIDY not found; skipping (gpulint still enforces R1-R5)"
  exit 0
fi

if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  cmake -B "$BUILD_DIR" -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# Normalized findings: repo-relative "file:line: warning: text [check]",
# sorted and deduplicated (headers surface once per includer otherwise).
collect() {
  local files
  files=$(find src tools -name '*.cc' | sort)
  # shellcheck disable=SC2086
  "$TIDY" -p "$BUILD_DIR" --quiet $files 2>/dev/null |
    grep -E '^[^ ]+:[0-9]+:[0-9]+: warning: ' |
    sed -E "s#^$PWD/##; s#^([^:]+:[0-9]+):[0-9]+:#\1:#" |
    sort -u
}

if [ "${1:-}" = "--update-baseline" ]; then
  {
    echo "# clang-tidy suppression baseline (scripts/tidy.sh). One normalized finding"
    echo "# per line. Regenerated: scripts/tidy.sh --update-baseline"
    collect
  } > "$BASELINE"
  echo "tidy: baseline updated ($(grep -cv '^#' "$BASELINE" || true) findings)"
  exit 0
fi

current=$(collect)
known=$(grep -v '^#' "$BASELINE" 2>/dev/null | grep -v '^$' || true)

new=$(comm -13 <(printf '%s\n' "$known" | sort -u) \
               <(printf '%s\n' "$current") || true)
fixed=$(comm -23 <(printf '%s\n' "$known" | sort -u) \
                 <(printf '%s\n' "$current") || true)

if [ -n "$fixed" ]; then
  echo "tidy: stale baseline entries (fixed findings — prune them):"
  printf '  %s\n' $fixed
fi
if [ -n "$new" ]; then
  echo "tidy: NEW findings not in $BASELINE:"
  printf '%s\n' "$new"
  exit 1
fi
echo "tidy: clean against baseline"
