#!/usr/bin/env python3
"""Profiling smoke gate for check.sh.

Compares figure bench JSONs produced without --profile against the same
bench run with --profile and asserts the gpuprof contract:

  1. every profiled row carries the counter columns, and the deep counters
     are self-consistent and nonzero where the pipeline must have done work
     (fragments rasterized, depth tests, plane traffic);
  2. the fragment ledger balances per row:
     depth_tested == prof_fragments - alpha_killed - stencil_killed;
  3. profiling overhead stays bounded: summed gpu_wall_ms with --profile is
     within OVERHEAD_BOUND of the run without it. The ISSUE budget is 5%,
     but single smoke runs on shared CI machines jitter far more than that
     (best-vs-worst single runs on the same box differ by 2x+), so the gate
     takes the *minimum* wall over each side's runs -- the minimum is the
     least-contended measurement of the same deterministic work -- and uses
     a looser 1.25x bound; the 5% claim is checked on quiet machines (see
     DESIGN.md §13).

Usage: profile_smoke.py --plain <json>... --profiled <json>...
       profile_smoke.py <plain.json> <profiled.json>
"""

import argparse
import json
import sys

OVERHEAD_BOUND = 1.25

COUNTER_KEYS = (
    "prof_passes",
    "prof_fragments",
    "alpha_killed",
    "stencil_killed",
    "depth_tested",
    "depth_killed",
    "occlusion_samples",
    "plane_bytes_read",
    "plane_bytes_written",
)


def fail(msg):
    print(f"profile_smoke: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load(path):
    with open(path) as f:
        return json.load(f)


def wall_ms(doc):
    return sum(r["gpu_wall_ms"] for r in doc.get("rows", []))


def check_counters(profiled):
    rows = profiled.get("rows", [])
    if not rows:
        fail("profiled run has no rows")
    for row in rows:
        label = row.get("label", "?")
        for key in COUNTER_KEYS:
            if key not in row:
                fail(f"row {label}: missing counter column '{key}'")
        if row["prof_passes"] == 0 or row["prof_fragments"] == 0:
            fail(f"row {label}: zero passes/fragments under --profile")
        killed = row["alpha_killed"] + row["stencil_killed"]
        if row["depth_tested"] != row["prof_fragments"] - killed:
            fail(
                f"row {label}: fragment ledger out of balance: "
                f"depth_tested={row['depth_tested']} fragments="
                f"{row['prof_fragments']} killed={killed}"
            )
        if row["plane_bytes_read"] + row["plane_bytes_written"] == 0:
            fail(f"row {label}: no modeled plane traffic under --profile")
    return rows


def main():
    argv = sys.argv[1:]
    if argv and not argv[0].startswith("--"):
        # Legacy two-positional form.
        if len(argv) != 2:
            fail(f"usage: {sys.argv[0]} <plain.json> <profiled.json>")
        plain_paths, prof_paths = [argv[0]], [argv[1]]
    else:
        parser = argparse.ArgumentParser()
        parser.add_argument("--plain", nargs="+", required=True)
        parser.add_argument("--profiled", nargs="+", required=True)
        args = parser.parse_args(argv)
        plain_paths, prof_paths = args.plain, args.profiled

    plains = [load(p) for p in plain_paths]
    profileds = [load(p) for p in prof_paths]

    for doc, path in zip(plains, plain_paths):
        if doc.get("profile"):
            fail(f"{path}: plain run JSON unexpectedly has \"profile\": true")
    for doc, path in zip(profileds, prof_paths):
        if not doc.get("profile"):
            fail(f"{path}: profiled run JSON lacks \"profile\": true")

    rows = None
    for doc in profileds:
        rows = check_counters(doc)

    # The counters are deterministic, so every profiled run must agree on
    # them -- a cheap cross-run bit-stability check.
    if len(profileds) > 1:
        baseline = [
            {k: r[k] for k in COUNTER_KEYS} for r in profileds[0]["rows"]
        ]
        for doc, path in zip(profileds[1:], prof_paths[1:]):
            got = [{k: r[k] for k in COUNTER_KEYS} for r in doc["rows"]]
            if got != baseline:
                fail(f"{path}: deep counters differ between profiled runs")

    plain_wall = min(wall_ms(d) for d in plains)
    prof_wall = min(wall_ms(d) for d in profileds)
    if plain_wall > 0 and prof_wall > plain_wall * OVERHEAD_BOUND:
        fail(
            f"profiling overhead too high: best gpu_wall {prof_wall:.1f} ms "
            f"over {len(profileds)} run(s) vs {plain_wall:.1f} ms plain over "
            f"{len(plains)} run(s) (bound {OVERHEAD_BOUND}x)"
        )

    ratio = prof_wall / plain_wall if plain_wall > 0 else float("nan")
    print(
        f"profile_smoke: OK: {len(rows)} rows, counters balanced, "
        f"best gpu_wall {prof_wall:.1f} ms vs {plain_wall:.1f} ms plain "
        f"({ratio:.3f}x)"
    )


if __name__ == "__main__":
    main()
