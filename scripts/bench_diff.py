#!/usr/bin/env python3
"""Compare two directories of BENCH_*.json files and gate on regressions.

Usage:
    scripts/bench_diff.py BASELINE_DIR CANDIDATE_DIR [--threshold PCT]

Both directories hold the JSON files the figure binaries emit when
$GPUDB_BENCH_JSON_DIR is set (see bench/bench_util.h). Rows are matched by
(figure, label); the gate compares the *model* columns
(gpu_model_total_ms, cpu_model_ms), which are deterministic functions of the
pass structure -- wall-clock columns vary with the host and are reported but
never gated.

Exit status: 0 when every matched row is within the threshold, 1 when any
model time regressed by more than --threshold percent (default 20) or a
baseline file/row is missing from the candidate.
"""

import argparse
import json
import os
import sys

GATED_COLUMNS = ("gpu_model_total_ms", "cpu_model_ms")

# Wall-clock deltas are host-dependent (shared machines jitter 2x+), so
# they are printed for the operator but never counted as regressions.
REPORTED_COLUMNS = ("gpu_wall_ms",)


def load_dir(path):
    """Maps file name -> parsed JSON for every BENCH_*.json in `path`."""
    out = {}
    try:
        names = sorted(os.listdir(path))
    except OSError as e:
        sys.exit(f"bench_diff: cannot read directory {path}: {e}")
    for name in names:
        if not (name.startswith("BENCH_") and name.endswith(".json")):
            continue
        full = os.path.join(path, name)
        try:
            with open(full, encoding="utf-8") as f:
                out[name] = json.load(f)
        except (OSError, json.JSONDecodeError) as e:
            sys.exit(f"bench_diff: cannot parse {full}: {e}")
    if not out:
        sys.exit(f"bench_diff: no BENCH_*.json files in {path}")
    return out


def rows_by_label(doc):
    return {row.get("label"): row for row in doc.get("rows", [])}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("baseline", help="directory of baseline BENCH_*.json")
    parser.add_argument("candidate", help="directory of candidate BENCH_*.json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=20.0,
        help="allowed model-time regression in percent (default 20)",
    )
    args = parser.parse_args()

    baseline = load_dir(args.baseline)
    candidate = load_dir(args.candidate)

    failures = []
    compared = 0
    for name, base_doc in sorted(baseline.items()):
        cand_doc = candidate.get(name)
        if cand_doc is None:
            failures.append(f"{name}: missing from candidate directory")
            continue
        cand_rows = rows_by_label(cand_doc)
        for label, base_row in rows_by_label(base_doc).items():
            cand_row = cand_rows.get(label)
            if cand_row is None:
                failures.append(f"{name} [{label}]: row missing from candidate")
                continue
            for col in GATED_COLUMNS:
                base_v = base_row.get(col)
                cand_v = cand_row.get(col)
                if base_v is None or cand_v is None:
                    continue
                compared += 1
                if base_v <= 0:
                    continue
                delta_pct = (cand_v - base_v) / base_v * 100.0
                marker = ""
                if delta_pct > args.threshold:
                    marker = "  REGRESSION"
                    failures.append(
                        f"{name} [{label}] {col}: "
                        f"{base_v:.4f} -> {cand_v:.4f} ms "
                        f"({delta_pct:+.1f}% > {args.threshold:.0f}%)"
                    )
                print(
                    f"{name} [{label}] {col}: {base_v:.4f} -> {cand_v:.4f} ms"
                    f" ({delta_pct:+.1f}%){marker}"
                )
            for col in REPORTED_COLUMNS:
                base_v = base_row.get(col)
                cand_v = cand_row.get(col)
                if base_v is None or cand_v is None or base_v <= 0:
                    continue
                delta_pct = (cand_v - base_v) / base_v * 100.0
                print(
                    f"{name} [{label}] {col}: {base_v:.4f} -> {cand_v:.4f} ms"
                    f" ({delta_pct:+.1f}%)  [reported, not gated]"
                )

    # A candidate file with no baseline is not gated, but silence would make
    # it look covered: tell the operator to commit a baseline for it.
    for name in sorted(set(candidate) - set(baseline)):
        print(
            f"bench_diff: warning: {name} has no baseline in {args.baseline};"
            " not gated -- commit one to cover it",
            file=sys.stderr,
        )

    print(f"\nbench_diff: compared {compared} model-time cells")
    if failures:
        print(f"bench_diff: {len(failures)} failure(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("bench_diff: OK (within threshold)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
