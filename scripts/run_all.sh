#!/usr/bin/env bash
# Builds everything, runs the full test suite, and regenerates every paper
# figure / ablation / extension benchmark, capturing the outputs the way
# EXPERIMENTS.md references them.
set -euo pipefail
cd "$(dirname "$0")/.."

# Prefer Ninja when available, but fall back to the platform default
# generator (an existing build/ keeps whatever generator configured it).
if [ ! -f build/CMakeCache.txt ] && command -v ninja >/dev/null 2>&1; then
  cmake -B build -G Ninja
else
  cmake -B build
fi
cmake --build build -j

ctest --test-dir build 2>&1 | tee test_output.txt

# Machine-readable per-figure results (BENCH_<figure>.json) land here.
mkdir -p bench_json
export GPUDB_BENCH_JSON_DIR=bench_json

: > bench_output.txt
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo "==== $(basename "$b") ====" | tee -a bench_output.txt
  "$b" 2>&1 | tee -a bench_output.txt
done

echo "done: test_output.txt, bench_output.txt, $(ls bench_json | wc -l) JSON file(s) in bench_json/"
