#!/usr/bin/env bash
# Builds everything, runs the full test suite, and regenerates every paper
# figure / ablation / extension benchmark, capturing the outputs the way
# EXPERIMENTS.md references them.
set -euo pipefail
cd "$(dirname "$0")/.."

# Prefer Ninja when available, but fall back to the platform default
# generator (an existing build/ keeps whatever generator configured it).
if [ ! -f build/CMakeCache.txt ] && command -v ninja >/dev/null 2>&1; then
  cmake -B build -G Ninja
else
  cmake -B build
fi
cmake --build build -j

ctest --test-dir build 2>&1 | tee test_output.txt

# Machine-readable per-figure results (BENCH_<figure>.json) land here.
mkdir -p bench_json
export GPUDB_BENCH_JSON_DIR=bench_json

# With GPUDB_PROFILE set, run the benches under --profile so the captured
# outputs include the gpuprof per-pass ledger (the flag alone also flips
# the in-process default, but being explicit keeps the transcript honest
# about which arm produced bench_output.txt).
bench_flags=()
[ -n "${GPUDB_PROFILE:-}" ] && bench_flags+=(--profile)
# Pool-aware benches pick up the device-pool size; harmless for the rest
# (InitBench parses --devices everywhere).
[ -n "${GPUDB_DEVICES:-}" ] && bench_flags+=(--devices="$GPUDB_DEVICES")

: > bench_output.txt
for b in build/bench/*; do
  [ -x "$b" ] && [ -f "$b" ] || continue
  echo "==== $(basename "$b") ====" | tee -a bench_output.txt
  case "$(basename "$b")" in
    micro_ops)  # google-benchmark CLI; no --profile flag
      "$b" 2>&1 | tee -a bench_output.txt ;;
    *)
      "$b" ${bench_flags[@]+"${bench_flags[@]}"} 2>&1 \
        | tee -a bench_output.txt ;;
  esac
done

echo "done: test_output.txt, bench_output.txt, $(ls bench_json | wc -l) JSON file(s) in bench_json/"
