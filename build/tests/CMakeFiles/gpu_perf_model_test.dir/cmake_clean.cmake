file(REMOVE_RECURSE
  "CMakeFiles/gpu_perf_model_test.dir/gpu_perf_model_test.cc.o"
  "CMakeFiles/gpu_perf_model_test.dir/gpu_perf_model_test.cc.o.d"
  "gpu_perf_model_test"
  "gpu_perf_model_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_perf_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
