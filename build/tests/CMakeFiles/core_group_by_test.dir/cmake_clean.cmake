file(REMOVE_RECURSE
  "CMakeFiles/core_group_by_test.dir/core_group_by_test.cc.o"
  "CMakeFiles/core_group_by_test.dir/core_group_by_test.cc.o.d"
  "core_group_by_test"
  "core_group_by_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_group_by_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
