# Empty dependencies file for gpu_texture_test.
# This may be replaced when dependencies are built.
