file(REMOVE_RECURSE
  "CMakeFiles/gpu_texture_test.dir/gpu_texture_test.cc.o"
  "CMakeFiles/gpu_texture_test.dir/gpu_texture_test.cc.o.d"
  "gpu_texture_test"
  "gpu_texture_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_texture_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
