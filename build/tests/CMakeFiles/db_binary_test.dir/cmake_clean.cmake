file(REMOVE_RECURSE
  "CMakeFiles/db_binary_test.dir/db_binary_test.cc.o"
  "CMakeFiles/db_binary_test.dir/db_binary_test.cc.o.d"
  "db_binary_test"
  "db_binary_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_binary_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
