# Empty compiler generated dependencies file for core_bitonic_sort_test.
# This may be replaced when dependencies are built.
