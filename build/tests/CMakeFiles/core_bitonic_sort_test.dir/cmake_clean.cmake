file(REMOVE_RECURSE
  "CMakeFiles/core_bitonic_sort_test.dir/core_bitonic_sort_test.cc.o"
  "CMakeFiles/core_bitonic_sort_test.dir/core_bitonic_sort_test.cc.o.d"
  "core_bitonic_sort_test"
  "core_bitonic_sort_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_bitonic_sort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
