# Empty compiler generated dependencies file for core_semilinear_test.
# This may be replaced when dependencies are built.
