file(REMOVE_RECURSE
  "CMakeFiles/core_semilinear_test.dir/core_semilinear_test.cc.o"
  "CMakeFiles/core_semilinear_test.dir/core_semilinear_test.cc.o.d"
  "core_semilinear_test"
  "core_semilinear_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_semilinear_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
