# Empty compiler generated dependencies file for core_kmeans_test.
# This may be replaced when dependencies are built.
