file(REMOVE_RECURSE
  "CMakeFiles/core_stream_test.dir/core_stream_test.cc.o"
  "CMakeFiles/core_stream_test.dir/core_stream_test.cc.o.d"
  "core_stream_test"
  "core_stream_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_stream_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
