# Empty dependencies file for core_stream_test.
# This may be replaced when dependencies are built.
