file(REMOVE_RECURSE
  "CMakeFiles/db_csv_test.dir/db_csv_test.cc.o"
  "CMakeFiles/db_csv_test.dir/db_csv_test.cc.o.d"
  "db_csv_test"
  "db_csv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
