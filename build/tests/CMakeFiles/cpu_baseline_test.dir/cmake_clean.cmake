file(REMOVE_RECURSE
  "CMakeFiles/cpu_baseline_test.dir/cpu_baseline_test.cc.o"
  "CMakeFiles/cpu_baseline_test.dir/cpu_baseline_test.cc.o.d"
  "cpu_baseline_test"
  "cpu_baseline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cpu_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
