file(REMOVE_RECURSE
  "CMakeFiles/core_histogram_test.dir/core_histogram_test.cc.o"
  "CMakeFiles/core_histogram_test.dir/core_histogram_test.cc.o.d"
  "core_histogram_test"
  "core_histogram_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_histogram_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
