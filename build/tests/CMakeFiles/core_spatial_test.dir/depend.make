# Empty dependencies file for core_spatial_test.
# This may be replaced when dependencies are built.
