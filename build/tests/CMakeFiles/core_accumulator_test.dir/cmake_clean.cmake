file(REMOVE_RECURSE
  "CMakeFiles/core_accumulator_test.dir/core_accumulator_test.cc.o"
  "CMakeFiles/core_accumulator_test.dir/core_accumulator_test.cc.o.d"
  "core_accumulator_test"
  "core_accumulator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_accumulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
