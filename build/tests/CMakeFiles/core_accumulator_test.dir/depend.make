# Empty dependencies file for core_accumulator_test.
# This may be replaced when dependencies are built.
