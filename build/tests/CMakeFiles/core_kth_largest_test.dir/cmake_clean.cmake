file(REMOVE_RECURSE
  "CMakeFiles/core_kth_largest_test.dir/core_kth_largest_test.cc.o"
  "CMakeFiles/core_kth_largest_test.dir/core_kth_largest_test.cc.o.d"
  "core_kth_largest_test"
  "core_kth_largest_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_kth_largest_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
