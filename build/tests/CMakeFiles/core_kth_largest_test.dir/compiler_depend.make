# Empty compiler generated dependencies file for core_kth_largest_test.
# This may be replaced when dependencies are built.
