file(REMOVE_RECURSE
  "CMakeFiles/device_fuzz_test.dir/device_fuzz_test.cc.o"
  "CMakeFiles/device_fuzz_test.dir/device_fuzz_test.cc.o.d"
  "device_fuzz_test"
  "device_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
