# Empty compiler generated dependencies file for core_range_test.
# This may be replaced when dependencies are built.
