file(REMOVE_RECURSE
  "CMakeFiles/core_range_test.dir/core_range_test.cc.o"
  "CMakeFiles/core_range_test.dir/core_range_test.cc.o.d"
  "core_range_test"
  "core_range_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_range_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
