file(REMOVE_RECURSE
  "CMakeFiles/gpu_rasterizer_test.dir/gpu_rasterizer_test.cc.o"
  "CMakeFiles/gpu_rasterizer_test.dir/gpu_rasterizer_test.cc.o.d"
  "gpu_rasterizer_test"
  "gpu_rasterizer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_rasterizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
