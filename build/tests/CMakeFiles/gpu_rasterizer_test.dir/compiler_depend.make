# Empty compiler generated dependencies file for gpu_rasterizer_test.
# This may be replaced when dependencies are built.
