file(REMOVE_RECURSE
  "CMakeFiles/core_spatial_join_test.dir/core_spatial_join_test.cc.o"
  "CMakeFiles/core_spatial_join_test.dir/core_spatial_join_test.cc.o.d"
  "core_spatial_join_test"
  "core_spatial_join_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_spatial_join_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
