# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for core_spatial_join_test.
