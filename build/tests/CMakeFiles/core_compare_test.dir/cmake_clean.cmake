file(REMOVE_RECURSE
  "CMakeFiles/core_compare_test.dir/core_compare_test.cc.o"
  "CMakeFiles/core_compare_test.dir/core_compare_test.cc.o.d"
  "core_compare_test"
  "core_compare_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_compare_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
