# Empty dependencies file for core_cnf_test.
# This may be replaced when dependencies are built.
