file(REMOVE_RECURSE
  "CMakeFiles/core_cnf_test.dir/core_cnf_test.cc.o"
  "CMakeFiles/core_cnf_test.dir/core_cnf_test.cc.o.d"
  "core_cnf_test"
  "core_cnf_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_cnf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
