file(REMOVE_RECURSE
  "libgpudb.a"
)
