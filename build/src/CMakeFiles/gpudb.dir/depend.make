# Empty dependencies file for gpudb.
# This may be replaced when dependencies are built.
