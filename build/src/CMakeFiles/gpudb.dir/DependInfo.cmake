
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/random.cc" "src/CMakeFiles/gpudb.dir/common/random.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/common/random.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/gpudb.dir/common/status.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/common/status.cc.o.d"
  "/root/repo/src/core/accumulator.cc" "src/CMakeFiles/gpudb.dir/core/accumulator.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/core/accumulator.cc.o.d"
  "/root/repo/src/core/aggregates.cc" "src/CMakeFiles/gpudb.dir/core/aggregates.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/core/aggregates.cc.o.d"
  "/root/repo/src/core/bitonic_sort.cc" "src/CMakeFiles/gpudb.dir/core/bitonic_sort.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/core/bitonic_sort.cc.o.d"
  "/root/repo/src/core/compare.cc" "src/CMakeFiles/gpudb.dir/core/compare.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/core/compare.cc.o.d"
  "/root/repo/src/core/count.cc" "src/CMakeFiles/gpudb.dir/core/count.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/core/count.cc.o.d"
  "/root/repo/src/core/depth_encoding.cc" "src/CMakeFiles/gpudb.dir/core/depth_encoding.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/core/depth_encoding.cc.o.d"
  "/root/repo/src/core/eval_cnf.cc" "src/CMakeFiles/gpudb.dir/core/eval_cnf.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/core/eval_cnf.cc.o.d"
  "/root/repo/src/core/executor.cc" "src/CMakeFiles/gpudb.dir/core/executor.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/core/executor.cc.o.d"
  "/root/repo/src/core/group_by.cc" "src/CMakeFiles/gpudb.dir/core/group_by.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/core/group_by.cc.o.d"
  "/root/repo/src/core/histogram.cc" "src/CMakeFiles/gpudb.dir/core/histogram.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/core/histogram.cc.o.d"
  "/root/repo/src/core/join.cc" "src/CMakeFiles/gpudb.dir/core/join.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/core/join.cc.o.d"
  "/root/repo/src/core/kmeans.cc" "src/CMakeFiles/gpudb.dir/core/kmeans.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/core/kmeans.cc.o.d"
  "/root/repo/src/core/kth_largest.cc" "src/CMakeFiles/gpudb.dir/core/kth_largest.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/core/kth_largest.cc.o.d"
  "/root/repo/src/core/partition.cc" "src/CMakeFiles/gpudb.dir/core/partition.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/core/partition.cc.o.d"
  "/root/repo/src/core/planner.cc" "src/CMakeFiles/gpudb.dir/core/planner.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/core/planner.cc.o.d"
  "/root/repo/src/core/polynomial.cc" "src/CMakeFiles/gpudb.dir/core/polynomial.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/core/polynomial.cc.o.d"
  "/root/repo/src/core/range.cc" "src/CMakeFiles/gpudb.dir/core/range.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/core/range.cc.o.d"
  "/root/repo/src/core/selection.cc" "src/CMakeFiles/gpudb.dir/core/selection.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/core/selection.cc.o.d"
  "/root/repo/src/core/semilinear.cc" "src/CMakeFiles/gpudb.dir/core/semilinear.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/core/semilinear.cc.o.d"
  "/root/repo/src/core/spatial.cc" "src/CMakeFiles/gpudb.dir/core/spatial.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/core/spatial.cc.o.d"
  "/root/repo/src/core/spatial_join.cc" "src/CMakeFiles/gpudb.dir/core/spatial_join.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/core/spatial_join.cc.o.d"
  "/root/repo/src/core/stream.cc" "src/CMakeFiles/gpudb.dir/core/stream.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/core/stream.cc.o.d"
  "/root/repo/src/cpu/aggregate.cc" "src/CMakeFiles/gpudb.dir/cpu/aggregate.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/cpu/aggregate.cc.o.d"
  "/root/repo/src/cpu/quickselect.cc" "src/CMakeFiles/gpudb.dir/cpu/quickselect.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/cpu/quickselect.cc.o.d"
  "/root/repo/src/cpu/scan.cc" "src/CMakeFiles/gpudb.dir/cpu/scan.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/cpu/scan.cc.o.d"
  "/root/repo/src/cpu/xeon_model.cc" "src/CMakeFiles/gpudb.dir/cpu/xeon_model.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/cpu/xeon_model.cc.o.d"
  "/root/repo/src/db/binary_io.cc" "src/CMakeFiles/gpudb.dir/db/binary_io.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/db/binary_io.cc.o.d"
  "/root/repo/src/db/column.cc" "src/CMakeFiles/gpudb.dir/db/column.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/db/column.cc.o.d"
  "/root/repo/src/db/csv.cc" "src/CMakeFiles/gpudb.dir/db/csv.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/db/csv.cc.o.d"
  "/root/repo/src/db/datagen.cc" "src/CMakeFiles/gpudb.dir/db/datagen.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/db/datagen.cc.o.d"
  "/root/repo/src/db/table.cc" "src/CMakeFiles/gpudb.dir/db/table.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/db/table.cc.o.d"
  "/root/repo/src/gpu/device.cc" "src/CMakeFiles/gpudb.dir/gpu/device.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/gpu/device.cc.o.d"
  "/root/repo/src/gpu/fragment_program.cc" "src/CMakeFiles/gpudb.dir/gpu/fragment_program.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/gpu/fragment_program.cc.o.d"
  "/root/repo/src/gpu/framebuffer.cc" "src/CMakeFiles/gpudb.dir/gpu/framebuffer.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/gpu/framebuffer.cc.o.d"
  "/root/repo/src/gpu/geometry.cc" "src/CMakeFiles/gpudb.dir/gpu/geometry.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/gpu/geometry.cc.o.d"
  "/root/repo/src/gpu/perf_model.cc" "src/CMakeFiles/gpudb.dir/gpu/perf_model.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/gpu/perf_model.cc.o.d"
  "/root/repo/src/gpu/rasterizer.cc" "src/CMakeFiles/gpudb.dir/gpu/rasterizer.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/gpu/rasterizer.cc.o.d"
  "/root/repo/src/gpu/texture.cc" "src/CMakeFiles/gpudb.dir/gpu/texture.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/gpu/texture.cc.o.d"
  "/root/repo/src/gpu/types.cc" "src/CMakeFiles/gpudb.dir/gpu/types.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/gpu/types.cc.o.d"
  "/root/repo/src/predicate/cnf.cc" "src/CMakeFiles/gpudb.dir/predicate/cnf.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/predicate/cnf.cc.o.d"
  "/root/repo/src/predicate/expr.cc" "src/CMakeFiles/gpudb.dir/predicate/expr.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/predicate/expr.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "src/CMakeFiles/gpudb.dir/sql/lexer.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "src/CMakeFiles/gpudb.dir/sql/parser.cc.o" "gcc" "src/CMakeFiles/gpudb.dir/sql/parser.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
