file(REMOVE_RECURSE
  "CMakeFiles/fig10_accumulator.dir/bench_util.cc.o"
  "CMakeFiles/fig10_accumulator.dir/bench_util.cc.o.d"
  "CMakeFiles/fig10_accumulator.dir/fig10_accumulator.cc.o"
  "CMakeFiles/fig10_accumulator.dir/fig10_accumulator.cc.o.d"
  "fig10_accumulator"
  "fig10_accumulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_accumulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
