# Empty dependencies file for fig10_accumulator.
# This may be replaced when dependencies are built.
