file(REMOVE_RECURSE
  "CMakeFiles/fig08_median.dir/bench_util.cc.o"
  "CMakeFiles/fig08_median.dir/bench_util.cc.o.d"
  "CMakeFiles/fig08_median.dir/fig08_median.cc.o"
  "CMakeFiles/fig08_median.dir/fig08_median.cc.o.d"
  "fig08_median"
  "fig08_median.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_median.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
