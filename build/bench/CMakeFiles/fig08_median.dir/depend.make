# Empty dependencies file for fig08_median.
# This may be replaced when dependencies are built.
