# Empty dependencies file for ablation_accumulator_alpha.
# This may be replaced when dependencies are built.
