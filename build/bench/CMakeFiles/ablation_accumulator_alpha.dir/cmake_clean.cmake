file(REMOVE_RECURSE
  "CMakeFiles/ablation_accumulator_alpha.dir/ablation_accumulator_alpha.cc.o"
  "CMakeFiles/ablation_accumulator_alpha.dir/ablation_accumulator_alpha.cc.o.d"
  "CMakeFiles/ablation_accumulator_alpha.dir/bench_util.cc.o"
  "CMakeFiles/ablation_accumulator_alpha.dir/bench_util.cc.o.d"
  "ablation_accumulator_alpha"
  "ablation_accumulator_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_accumulator_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
