file(REMOVE_RECURSE
  "CMakeFiles/workload_suite.dir/bench_util.cc.o"
  "CMakeFiles/workload_suite.dir/bench_util.cc.o.d"
  "CMakeFiles/workload_suite.dir/workload_suite.cc.o"
  "CMakeFiles/workload_suite.dir/workload_suite.cc.o.d"
  "workload_suite"
  "workload_suite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_suite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
