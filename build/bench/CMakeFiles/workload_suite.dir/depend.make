# Empty dependencies file for workload_suite.
# This may be replaced when dependencies are built.
