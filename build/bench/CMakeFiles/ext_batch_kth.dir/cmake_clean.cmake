file(REMOVE_RECURSE
  "CMakeFiles/ext_batch_kth.dir/bench_util.cc.o"
  "CMakeFiles/ext_batch_kth.dir/bench_util.cc.o.d"
  "CMakeFiles/ext_batch_kth.dir/ext_batch_kth.cc.o"
  "CMakeFiles/ext_batch_kth.dir/ext_batch_kth.cc.o.d"
  "ext_batch_kth"
  "ext_batch_kth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_batch_kth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
