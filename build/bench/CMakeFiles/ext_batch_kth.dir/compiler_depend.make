# Empty compiler generated dependencies file for ext_batch_kth.
# This may be replaced when dependencies are built.
