# Empty compiler generated dependencies file for census_consistency.
# This may be replaced when dependencies are built.
