file(REMOVE_RECURSE
  "CMakeFiles/census_consistency.dir/bench_util.cc.o"
  "CMakeFiles/census_consistency.dir/bench_util.cc.o.d"
  "CMakeFiles/census_consistency.dir/census_consistency.cc.o"
  "CMakeFiles/census_consistency.dir/census_consistency.cc.o.d"
  "census_consistency"
  "census_consistency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/census_consistency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
