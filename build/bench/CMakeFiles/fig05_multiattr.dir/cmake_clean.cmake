file(REMOVE_RECURSE
  "CMakeFiles/fig05_multiattr.dir/bench_util.cc.o"
  "CMakeFiles/fig05_multiattr.dir/bench_util.cc.o.d"
  "CMakeFiles/fig05_multiattr.dir/fig05_multiattr.cc.o"
  "CMakeFiles/fig05_multiattr.dir/fig05_multiattr.cc.o.d"
  "fig05_multiattr"
  "fig05_multiattr.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_multiattr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
