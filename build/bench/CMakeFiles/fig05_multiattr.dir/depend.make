# Empty dependencies file for fig05_multiattr.
# This may be replaced when dependencies are built.
