file(REMOVE_RECURSE
  "CMakeFiles/fig02_copy_depth.dir/bench_util.cc.o"
  "CMakeFiles/fig02_copy_depth.dir/bench_util.cc.o.d"
  "CMakeFiles/fig02_copy_depth.dir/fig02_copy_depth.cc.o"
  "CMakeFiles/fig02_copy_depth.dir/fig02_copy_depth.cc.o.d"
  "fig02_copy_depth"
  "fig02_copy_depth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_copy_depth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
