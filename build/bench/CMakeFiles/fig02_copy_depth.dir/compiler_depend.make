# Empty compiler generated dependencies file for fig02_copy_depth.
# This may be replaced when dependencies are built.
