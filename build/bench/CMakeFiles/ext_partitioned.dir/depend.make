# Empty dependencies file for ext_partitioned.
# This may be replaced when dependencies are built.
