file(REMOVE_RECURSE
  "CMakeFiles/ext_partitioned.dir/bench_util.cc.o"
  "CMakeFiles/ext_partitioned.dir/bench_util.cc.o.d"
  "CMakeFiles/ext_partitioned.dir/ext_partitioned.cc.o"
  "CMakeFiles/ext_partitioned.dir/ext_partitioned.cc.o.d"
  "ext_partitioned"
  "ext_partitioned.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_partitioned.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
