file(REMOVE_RECURSE
  "CMakeFiles/ablation_range_depth_bounds.dir/ablation_range_depth_bounds.cc.o"
  "CMakeFiles/ablation_range_depth_bounds.dir/ablation_range_depth_bounds.cc.o.d"
  "CMakeFiles/ablation_range_depth_bounds.dir/bench_util.cc.o"
  "CMakeFiles/ablation_range_depth_bounds.dir/bench_util.cc.o.d"
  "ablation_range_depth_bounds"
  "ablation_range_depth_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_range_depth_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
