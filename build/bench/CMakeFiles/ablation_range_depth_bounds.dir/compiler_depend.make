# Empty compiler generated dependencies file for ablation_range_depth_bounds.
# This may be replaced when dependencies are built.
