# Empty dependencies file for fig09_kth_selectivity.
# This may be replaced when dependencies are built.
