file(REMOVE_RECURSE
  "CMakeFiles/fig09_kth_selectivity.dir/bench_util.cc.o"
  "CMakeFiles/fig09_kth_selectivity.dir/bench_util.cc.o.d"
  "CMakeFiles/fig09_kth_selectivity.dir/fig09_kth_selectivity.cc.o"
  "CMakeFiles/fig09_kth_selectivity.dir/fig09_kth_selectivity.cc.o.d"
  "fig09_kth_selectivity"
  "fig09_kth_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_kth_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
