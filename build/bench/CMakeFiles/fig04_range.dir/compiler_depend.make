# Empty compiler generated dependencies file for fig04_range.
# This may be replaced when dependencies are built.
