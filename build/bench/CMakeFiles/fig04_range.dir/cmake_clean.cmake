file(REMOVE_RECURSE
  "CMakeFiles/fig04_range.dir/bench_util.cc.o"
  "CMakeFiles/fig04_range.dir/bench_util.cc.o.d"
  "CMakeFiles/fig04_range.dir/fig04_range.cc.o"
  "CMakeFiles/fig04_range.dir/fig04_range.cc.o.d"
  "fig04_range"
  "fig04_range.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_range.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
