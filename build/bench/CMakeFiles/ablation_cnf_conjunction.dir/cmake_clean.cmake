file(REMOVE_RECURSE
  "CMakeFiles/ablation_cnf_conjunction.dir/ablation_cnf_conjunction.cc.o"
  "CMakeFiles/ablation_cnf_conjunction.dir/ablation_cnf_conjunction.cc.o.d"
  "CMakeFiles/ablation_cnf_conjunction.dir/bench_util.cc.o"
  "CMakeFiles/ablation_cnf_conjunction.dir/bench_util.cc.o.d"
  "ablation_cnf_conjunction"
  "ablation_cnf_conjunction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cnf_conjunction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
