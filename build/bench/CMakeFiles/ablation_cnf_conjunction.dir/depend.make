# Empty dependencies file for ablation_cnf_conjunction.
# This may be replaced when dependencies are built.
