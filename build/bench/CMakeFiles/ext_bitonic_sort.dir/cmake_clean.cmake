file(REMOVE_RECURSE
  "CMakeFiles/ext_bitonic_sort.dir/bench_util.cc.o"
  "CMakeFiles/ext_bitonic_sort.dir/bench_util.cc.o.d"
  "CMakeFiles/ext_bitonic_sort.dir/ext_bitonic_sort.cc.o"
  "CMakeFiles/ext_bitonic_sort.dir/ext_bitonic_sort.cc.o.d"
  "ext_bitonic_sort"
  "ext_bitonic_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_bitonic_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
