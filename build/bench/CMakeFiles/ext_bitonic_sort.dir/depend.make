# Empty dependencies file for ext_bitonic_sort.
# This may be replaced when dependencies are built.
