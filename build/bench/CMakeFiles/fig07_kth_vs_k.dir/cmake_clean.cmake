file(REMOVE_RECURSE
  "CMakeFiles/fig07_kth_vs_k.dir/bench_util.cc.o"
  "CMakeFiles/fig07_kth_vs_k.dir/bench_util.cc.o.d"
  "CMakeFiles/fig07_kth_vs_k.dir/fig07_kth_vs_k.cc.o"
  "CMakeFiles/fig07_kth_vs_k.dir/fig07_kth_vs_k.cc.o.d"
  "fig07_kth_vs_k"
  "fig07_kth_vs_k.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_kth_vs_k.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
