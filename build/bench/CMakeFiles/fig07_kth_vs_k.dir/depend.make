# Empty dependencies file for fig07_kth_vs_k.
# This may be replaced when dependencies are built.
