file(REMOVE_RECURSE
  "CMakeFiles/ext_join.dir/bench_util.cc.o"
  "CMakeFiles/ext_join.dir/bench_util.cc.o.d"
  "CMakeFiles/ext_join.dir/ext_join.cc.o"
  "CMakeFiles/ext_join.dir/ext_join.cc.o.d"
  "ext_join"
  "ext_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
