# Empty compiler generated dependencies file for whatif_future_hardware.
# This may be replaced when dependencies are built.
