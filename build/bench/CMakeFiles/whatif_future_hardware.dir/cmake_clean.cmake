file(REMOVE_RECURSE
  "CMakeFiles/whatif_future_hardware.dir/bench_util.cc.o"
  "CMakeFiles/whatif_future_hardware.dir/bench_util.cc.o.d"
  "CMakeFiles/whatif_future_hardware.dir/whatif_future_hardware.cc.o"
  "CMakeFiles/whatif_future_hardware.dir/whatif_future_hardware.cc.o.d"
  "whatif_future_hardware"
  "whatif_future_hardware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_future_hardware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
