# Empty dependencies file for fig03_predicate.
# This may be replaced when dependencies are built.
