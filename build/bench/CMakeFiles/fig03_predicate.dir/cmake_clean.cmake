file(REMOVE_RECURSE
  "CMakeFiles/fig03_predicate.dir/bench_util.cc.o"
  "CMakeFiles/fig03_predicate.dir/bench_util.cc.o.d"
  "CMakeFiles/fig03_predicate.dir/fig03_predicate.cc.o"
  "CMakeFiles/fig03_predicate.dir/fig03_predicate.cc.o.d"
  "fig03_predicate"
  "fig03_predicate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_predicate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
