# Empty compiler generated dependencies file for sec622_utilization.
# This may be replaced when dependencies are built.
