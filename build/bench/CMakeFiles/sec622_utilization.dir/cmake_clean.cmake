file(REMOVE_RECURSE
  "CMakeFiles/sec622_utilization.dir/bench_util.cc.o"
  "CMakeFiles/sec622_utilization.dir/bench_util.cc.o.d"
  "CMakeFiles/sec622_utilization.dir/sec622_utilization.cc.o"
  "CMakeFiles/sec622_utilization.dir/sec622_utilization.cc.o.d"
  "sec622_utilization"
  "sec622_utilization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec622_utilization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
