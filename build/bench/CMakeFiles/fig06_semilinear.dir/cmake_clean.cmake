file(REMOVE_RECURSE
  "CMakeFiles/fig06_semilinear.dir/bench_util.cc.o"
  "CMakeFiles/fig06_semilinear.dir/bench_util.cc.o.d"
  "CMakeFiles/fig06_semilinear.dir/fig06_semilinear.cc.o"
  "CMakeFiles/fig06_semilinear.dir/fig06_semilinear.cc.o.d"
  "fig06_semilinear"
  "fig06_semilinear.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_semilinear.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
