# Empty dependencies file for fig06_semilinear.
# This may be replaced when dependencies are built.
