# Empty dependencies file for sec511_selectivity.
# This may be replaced when dependencies are built.
