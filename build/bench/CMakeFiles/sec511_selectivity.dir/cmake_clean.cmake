file(REMOVE_RECURSE
  "CMakeFiles/sec511_selectivity.dir/bench_util.cc.o"
  "CMakeFiles/sec511_selectivity.dir/bench_util.cc.o.d"
  "CMakeFiles/sec511_selectivity.dir/sec511_selectivity.cc.o"
  "CMakeFiles/sec511_selectivity.dir/sec511_selectivity.cc.o.d"
  "sec511_selectivity"
  "sec511_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec511_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
