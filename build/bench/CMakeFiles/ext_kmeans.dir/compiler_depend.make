# Empty compiler generated dependencies file for ext_kmeans.
# This may be replaced when dependencies are built.
