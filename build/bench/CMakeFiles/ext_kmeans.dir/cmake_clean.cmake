file(REMOVE_RECURSE
  "CMakeFiles/ext_kmeans.dir/bench_util.cc.o"
  "CMakeFiles/ext_kmeans.dir/bench_util.cc.o.d"
  "CMakeFiles/ext_kmeans.dir/ext_kmeans.cc.o"
  "CMakeFiles/ext_kmeans.dir/ext_kmeans.cc.o.d"
  "ext_kmeans"
  "ext_kmeans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_kmeans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
