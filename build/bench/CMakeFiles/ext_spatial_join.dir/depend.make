# Empty dependencies file for ext_spatial_join.
# This may be replaced when dependencies are built.
