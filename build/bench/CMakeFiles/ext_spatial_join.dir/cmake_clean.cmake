file(REMOVE_RECURSE
  "CMakeFiles/ext_spatial_join.dir/bench_util.cc.o"
  "CMakeFiles/ext_spatial_join.dir/bench_util.cc.o.d"
  "CMakeFiles/ext_spatial_join.dir/ext_spatial_join.cc.o"
  "CMakeFiles/ext_spatial_join.dir/ext_spatial_join.cc.o.d"
  "ext_spatial_join"
  "ext_spatial_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_spatial_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
