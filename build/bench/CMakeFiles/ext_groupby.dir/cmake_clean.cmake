file(REMOVE_RECURSE
  "CMakeFiles/ext_groupby.dir/bench_util.cc.o"
  "CMakeFiles/ext_groupby.dir/bench_util.cc.o.d"
  "CMakeFiles/ext_groupby.dir/ext_groupby.cc.o"
  "CMakeFiles/ext_groupby.dir/ext_groupby.cc.o.d"
  "ext_groupby"
  "ext_groupby.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_groupby.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
