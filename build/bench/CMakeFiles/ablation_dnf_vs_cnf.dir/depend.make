# Empty dependencies file for ablation_dnf_vs_cnf.
# This may be replaced when dependencies are built.
