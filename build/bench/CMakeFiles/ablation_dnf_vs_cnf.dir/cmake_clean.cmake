file(REMOVE_RECURSE
  "CMakeFiles/ablation_dnf_vs_cnf.dir/ablation_dnf_vs_cnf.cc.o"
  "CMakeFiles/ablation_dnf_vs_cnf.dir/ablation_dnf_vs_cnf.cc.o.d"
  "CMakeFiles/ablation_dnf_vs_cnf.dir/bench_util.cc.o"
  "CMakeFiles/ablation_dnf_vs_cnf.dir/bench_util.cc.o.d"
  "ablation_dnf_vs_cnf"
  "ablation_dnf_vs_cnf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_dnf_vs_cnf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
