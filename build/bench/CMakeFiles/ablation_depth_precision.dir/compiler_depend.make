# Empty compiler generated dependencies file for ablation_depth_precision.
# This may be replaced when dependencies are built.
