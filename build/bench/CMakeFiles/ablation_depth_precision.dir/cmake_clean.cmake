file(REMOVE_RECURSE
  "CMakeFiles/ablation_depth_precision.dir/ablation_depth_precision.cc.o"
  "CMakeFiles/ablation_depth_precision.dir/ablation_depth_precision.cc.o.d"
  "CMakeFiles/ablation_depth_precision.dir/bench_util.cc.o"
  "CMakeFiles/ablation_depth_precision.dir/bench_util.cc.o.d"
  "ablation_depth_precision"
  "ablation_depth_precision.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_depth_precision.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
