# Empty dependencies file for ext_histogram_join.
# This may be replaced when dependencies are built.
