file(REMOVE_RECURSE
  "CMakeFiles/census_income.dir/census_income.cpp.o"
  "CMakeFiles/census_income.dir/census_income.cpp.o.d"
  "census_income"
  "census_income.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/census_income.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
