# Empty dependencies file for census_income.
# This may be replaced when dependencies are built.
