file(REMOVE_RECURSE
  "CMakeFiles/coprocessor_policy.dir/coprocessor_policy.cpp.o"
  "CMakeFiles/coprocessor_policy.dir/coprocessor_policy.cpp.o.d"
  "coprocessor_policy"
  "coprocessor_policy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coprocessor_policy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
