# Empty compiler generated dependencies file for coprocessor_policy.
# This may be replaced when dependencies are built.
