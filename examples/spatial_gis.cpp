// GIS point-in-region queries -- the application domain the paper uses to
// motivate semi-linear queries (Section 4.1.2: "Applications encountered in
// Geographical Information Systems ... define geometric data objects as
// linear inequalities of the attributes in a relational database").
//
// A table of delivery locations is filtered against convex district
// polygons; each district is an intersection of half-planes, i.e. a
// conjunction of semi-linear predicates evaluated with EvalCNF.
//
//   $ ./build/examples/spatial_gis

#include <cstdio>
#include <vector>

#include "src/common/random.h"
#include "src/core/spatial.h"
#include "src/gpu/device.h"
#include "src/gpu/perf_model.h"
#include "src/gpu/texture.h"

int main() {
  // 200K delivery points across a 2000x2000 city grid.
  constexpr size_t kPoints = 200'000;
  gpudb::Random rng(19040617);
  std::vector<float> xs(kPoints), ys(kPoints);
  for (size_t i = 0; i < kPoints; ++i) {
    // Clustered around two hubs plus uniform noise.
    if (rng.NextDouble() < 0.4) {
      xs[i] = static_cast<float>(600 + rng.NextGaussian() * 150);
      ys[i] = static_cast<float>(700 + rng.NextGaussian() * 120);
    } else if (rng.NextDouble() < 0.5) {
      xs[i] = static_cast<float>(1400 + rng.NextGaussian() * 180);
      ys[i] = static_cast<float>(1300 + rng.NextGaussian() * 160);
    } else {
      xs[i] = static_cast<float>(rng.NextDouble(0, 2000));
      ys[i] = static_cast<float>(rng.NextDouble(0, 2000));
    }
  }

  gpudb::gpu::Device device(1000, 1000);
  auto tex = gpudb::gpu::Texture::FromColumns({&xs, &ys}, 1000);
  if (!tex.ok()) return 1;
  auto id = device.UploadTexture(std::move(tex).ValueOrDie());
  if (!id.ok() || !device.SetViewport(kPoints).ok()) return 1;

  struct District {
    const char* name;
    std::vector<std::pair<float, float>> polygon;  // CCW
  };
  const std::vector<District> districts = {
      {"downtown (quad)",
       {{400, 500}, {800, 450}, {900, 900}, {450, 950}}},
      {"riverside (triangle)", {{1000, 1000}, {1800, 1100}, {1300, 1700}}},
      {"airport corridor (hexagon)",
       {{1200, 200}, {1600, 150}, {1900, 400}, {1800, 700}, {1400, 750},
        {1100, 500}}},
  };

  std::printf("%-26s %10s %10s\n", "district", "points", "share");
  for (const District& d : districts) {
    auto sel = gpudb::core::SelectPointsInConvexPolygon(
        &device, id.ValueOrDie(), d.polygon);
    if (!sel.ok()) {
      std::fprintf(stderr, "%s: %s\n", d.name,
                   sel.status().ToString().c_str());
      return 1;
    }
    std::printf("%-26s %10llu %9.2f%%\n", d.name,
                static_cast<unsigned long long>(sel.ValueOrDie().count),
                100.0 * static_cast<double>(sel.ValueOrDie().count) /
                    static_cast<double>(kPoints));
  }

  gpudb::gpu::PerfModel model;
  std::printf("\nsimulated FX 5900 time: %.2f ms (each district = one "
              "semi-linear pass per polygon edge + cleanup)\n",
              model.EstimateMs(device.counters()));
  return 0;
}
