// Quickstart: build a table, run a selection and some aggregates on the
// simulated GPU, and cross-check against plain CPU evaluation.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "src/core/executor.h"
#include "src/db/column.h"
#include "src/db/table.h"
#include "src/gpu/device.h"
#include "src/predicate/expr.h"

using gpudb::core::AggregateKind;
using gpudb::core::Executor;
using gpudb::gpu::CompareOp;
using gpudb::predicate::Expr;

int main() {
  // 1. A tiny relational table: order amounts and priorities.
  gpudb::db::Table table;
  {
    auto amounts = gpudb::db::Column::MakeInt24(
        "amount", {120, 45, 980, 330, 45, 720, 15, 560, 230, 45});
    auto priorities = gpudb::db::Column::MakeInt24(
        "priority", {1, 3, 2, 1, 2, 3, 1, 2, 3, 1});
    if (!amounts.ok() || !priorities.ok()) return 1;
    if (!table.AddColumn(std::move(amounts).ValueOrDie()).ok()) return 1;
    if (!table.AddColumn(std::move(priorities).ValueOrDie()).ok()) return 1;
  }

  // 2. A "GPU": a 1000x1000 framebuffer device, as in the paper.
  gpudb::gpu::Device device(1000, 1000);
  auto exec = Executor::Make(&device, &table);
  if (!exec.ok()) {
    std::fprintf(stderr, "%s\n", exec.status().ToString().c_str());
    return 1;
  }

  // 3. SELECT COUNT(*) WHERE amount >= 200 AND priority != 3.
  auto where = Expr::And(Expr::Pred(0, CompareOp::kGreaterEqual, 200.0f),
                         Expr::Not(Expr::Pred(1, CompareOp::kEqual, 3.0f)));
  auto count = exec.ValueOrDie()->Count(where);
  if (!count.ok()) return 1;
  std::printf("WHERE %s\n", where->ToString(&table).c_str());
  std::printf("  count      = %llu\n",
              static_cast<unsigned long long>(count.ValueOrDie()));

  // 4. Aggregates over the same WHERE clause.
  for (AggregateKind kind : {AggregateKind::kSum, AggregateKind::kAvg,
                             AggregateKind::kMin, AggregateKind::kMax,
                             AggregateKind::kMedian}) {
    auto v = exec.ValueOrDie()->Aggregate(kind, "amount", where);
    if (!v.ok()) return 1;
    std::printf("  %-10s = %.2f\n",
                std::string(gpudb::core::ToString(kind)).c_str(),
                v.ValueOrDie());
  }

  // 5. Which rows were those? Materialize the selection.
  auto rows = exec.ValueOrDie()->SelectRowIds(where);
  if (!rows.ok()) return 1;
  std::printf("  rows       = ");
  for (uint32_t row : rows.ValueOrDie()) std::printf("%u ", row);
  std::printf("\n");

  // 6. Cross-check against direct evaluation.
  uint64_t expected = 0;
  for (size_t row = 0; row < table.num_rows(); ++row) {
    expected += where->EvaluateRow(table, row) ? 1 : 0;
  }
  std::printf("CPU cross-check: %llu (%s)\n",
              static_cast<unsigned long long>(expected),
              expected == count.ValueOrDie() ? "match" : "MISMATCH");
  return expected == count.ValueOrDie() ? 0 : 1;
}
