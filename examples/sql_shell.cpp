// SQL shell over the GPU session: run the paper's SQL fragment (SELECT
// <agg|*> FROM t WHERE <boolean combination>) against the TCP/IP table,
// plus the introspection statements this build adds: ANALYZE, and queries
// against the gpudb_* system tables.
//
//   $ ./build/examples/sql_shell                      # runs a demo script
//   $ ./build/examples/sql_shell "SELECT COUNT(*) FROM flows WHERE data_loss > 0"
//   $ ./build/examples/sql_shell "ANALYZE flows"
//   $ ./build/examples/sql_shell "EXPLAIN ANALYZE SELECT COUNT(*) FROM flows"
//   $ ./build/examples/sql_shell "EXPLAIN PROFILE SELECT COUNT(*) FROM flows"
//   $ ./build/examples/sql_shell "SELECT * FROM gpudb_queries"
//   $ echo "SELECT MEDIAN(data_count) FROM flows" | ./build/examples/sql_shell -
//
// Flags:
//   --trace=FILE        write a Chrome trace_event JSON of every traced span
//                       to FILE on exit (open in chrome://tracing/Perfetto)
//   --profile           enable the gpuprof deep pipeline counters for every
//                       query (EXPLAIN PROFILE enables them per query even
//                       without this flag); feeds the gpudb_profile system
//                       table ($GPUDB_PROFILE=1)
//   --metrics           dump the process metrics registry after the queries
//   --metrics-prom=FILE write the registry in Prometheus text exposition
//                       format to FILE on exit
//   --slow-ms=N         flag and echo statements slower than N wall-clock ms
//                       (also settable via $GPUDB_SLOW_MS)
//   --threads=N         pixel-engine worker threads for the session's device
//                       (default: $GPUDB_THREADS, else hardware concurrency;
//                       results are bit-identical at any thread count)
//   --deadline-ms=N     per-query wall-clock deadline; an overrunning query
//                       returns DeadlineExceeded ($GPUDB_DEADLINE_MS)
//   --fault-seed=N      seed for the deterministic fault injector
//                       ($GPUDB_FAULT_SEED)
//   --fault-rate=P      per-site fault probability in [0,1]; 0 disables
//                       injection entirely ($GPUDB_FAULT_RATE)
//   --vram-budget=N     simulated video-memory budget in bytes; allocations
//                       beyond it fail with ResourceExhausted and the query
//                       degrades to the CPU tier ($GPUDB_VRAM_BUDGET)
//   --plan-cache        cache depth planes of hot columns across queries
//                       (keyed on table version; evicted LRU-first under the
//                       VRAM budget; $GPUDB_PLAN_CACHE=1)
//   --devices=N         run poolable statements range-sharded across a pool
//                       of N simulated devices with R=2 replica failover
//                       ($GPUDB_DEVICES; 1 = classic single device)
//   --tenant=NAME       tenant identity for admission quotas and query-log
//                       attribution ($GPUDB_TENANT)
//   --admission-queue=N bounded admission queue: N statements may wait for
//                       an execution slot, one more is rejected immediately
//                       with ResourceExhausted (0 disables admission)
//
// Columns: data_count, data_loss, flow_rate, retransmissions.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/profile.h"
#include "src/common/query_log.h"
#include "src/common/trace.h"
#include "src/db/catalog.h"
#include "src/db/datagen.h"
#include "src/gpu/device.h"
#include "src/sql/session.h"

namespace {

void RunOne(gpudb::sql::Session* session, const std::string& query) {
  std::printf("gpudb> %s\n", query.c_str());
  auto result = session->Execute(query);
  if (!result.ok()) {
    std::printf("  error: %s\n", result.status().ToString().c_str());
    return;
  }
  const gpudb::sql::QueryResult& r = result.ValueOrDie();
  if (r.analyzed) {
    std::printf("%s  simulated GPU time: %.3f ms\n", r.explain.c_str(),
                r.simulated_total_ms);
    if (r.profiled && !r.profile.empty()) {
      std::printf("pass profile:\n%s", r.profile.c_str());
    }
  }
  if (r.kind == gpudb::sql::Query::Kind::kSelectRows) {
    // System-table snapshots travel in table_view; user tables are resident.
    const gpudb::db::Table* view = r.table_view.get();
    if (view == nullptr) {
      auto exec = session->ExecutorFor("flows");
      if (exec.ok()) view = &exec.ValueOrDie()->table();
    }
    if (view != nullptr) {
      std::printf("%s", view->FormatRows(r.row_ids, /*max_rows=*/12).c_str());
    } else {
      std::printf("  %zu row(s)\n", r.row_ids.size());
    }
    return;
  }
  if (r.analyzed) {
    // ToString would repeat the tree; just print the value line.
    std::printf("  %s\n",
                r.ToString().substr(0, r.ToString().find('\n')).c_str());
    return;
  }
  std::printf("  %s\n", r.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_file;
  std::string prom_file;
  bool dump_metrics = false;
  int threads = 0;  // 0 = device default ($GPUDB_THREADS / hardware)
  // Robustness knobs default from the environment; flags override.
  gpudb::gpu::FaultConfig faults = gpudb::gpu::FaultInjector::ConfigFromEnv();
  double deadline_ms = gpudb::gpu::DeadlineMsFromEnv();
  uint64_t vram_budget = gpudb::gpu::VramBudgetBytesFromEnv();
  bool plan_cache = false;
  if (const char* env = std::getenv("GPUDB_PLAN_CACHE")) {
    plan_cache = env[0] != '\0' && env[0] != '0';
  }
  int devices = gpudb::gpu::DevicesFromEnv(/*fallback=*/1);
  std::string tenant;
  if (const char* env = std::getenv("GPUDB_TENANT")) tenant = env;
  int admission_queue = 0;  // 0 = no admission control
  if (const char* env = std::getenv("GPUDB_PROFILE")) {
    if (env[0] != '\0' && env[0] != '0') {
      gpudb::Profiler::Global().set_enabled(true);
    }
  }
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      threads = std::atoi(argv[i] + 10);
      if (threads < 1) {
        std::fprintf(stderr, "--threads requires a count >= 1\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--deadline-ms=", 14) == 0) {
      deadline_ms = std::atof(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--fault-seed=", 13) == 0) {
      faults.seed = std::strtoull(argv[i] + 13, nullptr, 10);
    } else if (std::strncmp(argv[i], "--fault-rate=", 13) == 0) {
      faults.rate = std::atof(argv[i] + 13);
    } else if (std::strncmp(argv[i], "--vram-budget=", 14) == 0) {
      vram_budget = std::strtoull(argv[i] + 14, nullptr, 10);
    } else if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_file = argv[i] + 8;
      // Record every query, not just EXPLAIN ANALYZE ones.
      gpudb::Tracer::Global().set_enabled(true);
    } else if (std::strncmp(argv[i], "--metrics-prom=", 15) == 0) {
      prom_file = argv[i] + 15;
    } else if (std::strcmp(argv[i], "--plan-cache") == 0) {
      plan_cache = true;
    } else if (std::strcmp(argv[i], "--profile") == 0) {
      gpudb::Profiler::Global().set_enabled(true);
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      dump_metrics = true;
    } else if (std::strncmp(argv[i], "--slow-ms=", 10) == 0) {
      gpudb::QueryLog::Global().set_slow_threshold_ms(
          std::atof(argv[i] + 10));
    } else if (std::strncmp(argv[i], "--devices=", 10) == 0) {
      devices = std::atoi(argv[i] + 10);
      if (devices < 1) {
        std::fprintf(stderr, "--devices requires a count >= 1\n");
        return 2;
      }
    } else if (std::strncmp(argv[i], "--tenant=", 9) == 0) {
      tenant = argv[i] + 9;
    } else if (std::strncmp(argv[i], "--admission-queue=", 18) == 0) {
      admission_queue = std::atoi(argv[i] + 18);
    } else {
      args.emplace_back(argv[i]);
    }
  }

  std::printf("loading 100K-flow TCP/IP table...\n");
  auto table = gpudb::db::MakeTcpIpTable(100'000);
  if (!table.ok()) return 1;
  gpudb::gpu::Device device(1000, 1000);
  if (threads > 0) {
    if (auto s = device.SetWorkerThreads(threads); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 2;
    }
  }
  device.ConfigureFaults(faults);
  if (faults.enabled()) {
    std::printf("fault injection on: seed=%llu rate=%g\n",
                static_cast<unsigned long long>(faults.seed), faults.rate);
  }
  if (vram_budget > 0) {
    if (auto s = device.SetVideoMemoryBudget(vram_budget); !s.ok()) {
      std::fprintf(stderr, "%s\n", s.ToString().c_str());
      return 2;
    }
  }
  gpudb::db::Catalog catalog;
  if (auto s = catalog.Register("flows", &table.ValueOrDie()); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }
  gpudb::sql::Session session(&device, &catalog);
  gpudb::core::ResilienceOptions resilience;
  resilience.deadline_ms = deadline_ms;
  resilience.retry.sleep = true;  // real backoff in the interactive shell
  session.set_resilience_options(resilience);
  // Multi-device tier (DESIGN.md §15): poolable statements scatter across
  // the pool; every device is its own failure domain and fault stream.
  std::unique_ptr<gpudb::gpu::DevicePool> pool;
  if (devices > 1) {
    gpudb::gpu::DevicePoolOptions pool_options;
    pool_options.devices = devices;
    pool_options.faults = faults;
    if (threads > 0) pool_options.worker_threads = threads;
    if (vram_budget > 0) pool_options.vram_budget = vram_budget;
    auto pool_or = gpudb::gpu::DevicePool::Make(pool_options);
    if (!pool_or.ok()) {
      std::fprintf(stderr, "%s\n", pool_or.status().ToString().c_str());
      return 2;
    }
    pool = std::move(pool_or).ValueOrDie();
    session.SetDevicePool(pool.get());
    std::printf("device pool on: %d devices, R=2 replica placement\n",
                devices);
  }
  std::unique_ptr<gpudb::sql::AdmissionController> admission;
  if (admission_queue > 0) {
    gpudb::sql::AdmissionOptions admission_options;
    admission_options.max_concurrent = devices > 1 ? devices : 1;
    admission_options.queue_capacity = admission_queue;
    admission = std::make_unique<gpudb::sql::AdmissionController>(
        admission_options);
    session.set_admission(admission.get());
  }
  if (!tenant.empty()) session.set_tenant(tenant);
  if (plan_cache) {
    gpudb::core::PlanOptions plan_options;
    plan_options.plane_cache = true;
    session.set_plan_options(plan_options);
    std::printf("depth-plane cache on (LRU under the VRAM budget)\n");
  }

  if (!args.empty() && args[0] == "-") {
    // Read queries line by line from stdin.
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) RunOne(&session, line);
    }
  } else if (!args.empty()) {
    for (const std::string& q : args) {
      RunOne(&session, q);
    }
  } else {
    // Demo script.
    const std::vector<std::string> demo = {
        "SELECT COUNT(*) FROM flows",
        "SELECT COUNT(*) FROM flows WHERE data_loss > 0 AND flow_rate >= "
        "1000",
        "SELECT AVG(data_count) FROM flows WHERE retransmissions > 0",
        "SELECT MEDIAN(data_count) FROM flows",
        "SELECT KTH_LARGEST(data_count, 100) FROM flows",
        "SELECT MAX(flow_rate) FROM flows WHERE data_count BETWEEN 1000 AND "
        "100000",
        "SELECT COUNT(*) FROM flows WHERE NOT (data_loss = 0 OR "
        "retransmissions = 0)",
        "SELECT COUNT(*) FROM flows WHERE data_loss >= retransmissions AND "
        "data_loss > 0",
        "SELECT COUNT(data_count) FROM flows GROUP BY retransmissions",
        "SELECT * FROM flows ORDER BY data_count DESC LIMIT 5",
        // The observability story, part 1: collect statistics, then see
        // estimated vs. actual rows per operator.
        "ANALYZE flows",
        "EXPLAIN ANALYZE SELECT COUNT(*) FROM flows WHERE data_loss > 0 AND "
        "flow_rate >= 1000",
        "EXPLAIN ANALYZE SELECT KTH_LARGEST(data_count, 100) FROM flows",
        // Deep pipeline counters: per-pass fragment fates and plane traffic.
        "EXPLAIN PROFILE SELECT COUNT(*) FROM flows WHERE data_loss > 0 AND "
        "flow_rate >= 1000",
        // Part 2: the process inspecting itself through SQL.
        "SELECT * FROM gpudb_profile",
        "SELECT * FROM gpudb_tables",
        "SELECT * FROM gpudb_columns WHERE distinct > 100",
        "SELECT COUNT(*) FROM gpudb_metrics WHERE value > 0",
        "SELECT * FROM gpudb_queries ORDER BY id DESC LIMIT 5",
        // A couple of deliberate errors to show diagnostics:
        "SELECT COUNT(*) FROM flows WHERE no_such_column > 1",
        "SELECT NOPE(data_count) FROM flows",
    };
    for (const std::string& q : demo) {
      RunOne(&session, q);
    }
  }

  if (!trace_file.empty()) {
    // Counter tracks (band timings, engine busy time) ride along as Chrome
    // trace "C" events next to the spans.
    const std::string json =
        gpudb::Tracer::ToChromeTrace(gpudb::Tracer::Global().Finished(),
                                     gpudb::Tracer::Global().CounterSamples());
    std::ofstream out(trace_file);
    out << json;
    std::printf("wrote %zu span(s) and %zu counter sample(s) to %s\n",
                gpudb::Tracer::Global().FinishedCount(),
                gpudb::Tracer::Global().CounterCount(), trace_file.c_str());
  }
  if (!prom_file.empty()) {
    std::ofstream out(prom_file);
    out << gpudb::MetricsRegistry::Global().DumpPrometheus();
    std::printf("wrote Prometheus metrics to %s\n", prom_file.c_str());
  }
  if (dump_metrics) {
    std::printf("-- metrics --\n%s",
                gpudb::MetricsRegistry::Global().DumpText().c_str());
  }
  return 0;
}
