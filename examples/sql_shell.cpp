// SQL shell over the GPU executor: run the paper's SQL fragment (SELECT
// <agg|*> FROM t WHERE <boolean combination>) against the TCP/IP table.
//
//   $ ./build/examples/sql_shell                      # runs a demo script
//   $ ./build/examples/sql_shell "SELECT COUNT(*) FROM flows WHERE data_loss > 0"
//   $ ./build/examples/sql_shell "EXPLAIN ANALYZE SELECT COUNT(*) FROM flows"
//   $ echo "SELECT MEDIAN(data_count) FROM flows" | ./build/examples/sql_shell -
//
// Flags:
//   --trace=FILE   write a Chrome trace_event JSON of every traced span to
//                  FILE on exit (open in chrome://tracing or Perfetto)
//   --metrics      dump the process metrics registry after the queries
//
// Columns: data_count, data_loss, flow_rate, retransmissions.

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/core/executor.h"
#include "src/db/datagen.h"
#include "src/gpu/device.h"
#include "src/sql/parser.h"

namespace {

void RunOne(gpudb::core::Executor* executor, const std::string& query) {
  std::printf("gpudb> %s\n", query.c_str());
  auto result = gpudb::sql::ExecuteSql(executor, query);
  if (!result.ok()) {
    std::printf("  error: %s\n", result.status().ToString().c_str());
    return;
  }
  const gpudb::sql::QueryResult& r = result.ValueOrDie();
  if (r.analyzed) {
    std::printf("%s  simulated GPU time: %.3f ms\n", r.explain.c_str(),
                r.simulated_total_ms);
  }
  if (r.kind == gpudb::sql::Query::Kind::kSelectRows) {
    std::printf("%s", executor->table()
                          .FormatRows(r.row_ids, /*max_rows=*/10)
                          .c_str());
    return;
  }
  if (r.analyzed) {
    // ToString would repeat the tree; just print the value line.
    std::printf("  %s\n", r.ToString().substr(0, r.ToString().find('\n')).c_str());
    return;
  }
  std::printf("  %s\n", r.ToString().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_file;
  bool dump_metrics = false;
  std::vector<std::string> args;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      trace_file = argv[i] + 8;
      // Record every query, not just EXPLAIN ANALYZE ones.
      gpudb::Tracer::Global().set_enabled(true);
    } else if (std::strcmp(argv[i], "--metrics") == 0) {
      dump_metrics = true;
    } else {
      args.emplace_back(argv[i]);
    }
  }

  std::printf("loading 100K-flow TCP/IP table...\n");
  auto table = gpudb::db::MakeTcpIpTable(100'000);
  if (!table.ok()) return 1;
  gpudb::gpu::Device device(1000, 1000);
  auto exec = gpudb::core::Executor::Make(&device, &table.ValueOrDie());
  if (!exec.ok()) {
    std::fprintf(stderr, "%s\n", exec.status().ToString().c_str());
    return 1;
  }

  if (!args.empty() && args[0] == "-") {
    // Read queries line by line from stdin.
    std::string line;
    while (std::getline(std::cin, line)) {
      if (!line.empty()) RunOne(exec.ValueOrDie().get(), line);
    }
  } else if (!args.empty()) {
    for (const std::string& q : args) {
      RunOne(exec.ValueOrDie().get(), q);
    }
  } else {
    // Demo script.
    const std::vector<std::string> demo = {
        "SELECT COUNT(*) FROM flows",
        "SELECT COUNT(*) FROM flows WHERE data_loss > 0 AND flow_rate >= "
        "1000",
        "SELECT AVG(data_count) FROM flows WHERE retransmissions > 0",
        "SELECT MEDIAN(data_count) FROM flows",
        "SELECT KTH_LARGEST(data_count, 100) FROM flows",
        "SELECT MAX(flow_rate) FROM flows WHERE data_count BETWEEN 1000 AND "
        "100000",
        "SELECT COUNT(*) FROM flows WHERE NOT (data_loss = 0 OR "
        "retransmissions = 0)",
        "SELECT COUNT(*) FROM flows WHERE data_loss >= retransmissions AND "
        "data_loss > 0",
        "SELECT COUNT(data_count) FROM flows GROUP BY retransmissions",
        "SELECT * FROM flows ORDER BY data_count DESC LIMIT 5",
        // The observability story: per-operator simulated cost tree.
        "EXPLAIN ANALYZE SELECT COUNT(*) FROM flows WHERE data_loss > 0 AND "
        "flow_rate >= 1000",
        "EXPLAIN ANALYZE SELECT KTH_LARGEST(data_count, 100) FROM flows",
        // A couple of deliberate errors to show diagnostics:
        "SELECT COUNT(*) FROM flows WHERE no_such_column > 1",
        "SELECT NOPE(data_count) FROM flows",
    };
    for (const std::string& q : demo) {
      RunOne(exec.ValueOrDie().get(), q);
    }
  }

  if (!trace_file.empty()) {
    const std::string json =
        gpudb::Tracer::ToChromeTrace(gpudb::Tracer::Global().Finished());
    std::ofstream out(trace_file);
    out << json;
    std::printf("wrote %zu span(s) to %s\n",
                gpudb::Tracer::Global().FinishedCount(), trace_file.c_str());
  }
  if (dump_metrics) {
    std::printf("-- metrics --\n%s",
                gpudb::MetricsRegistry::Global().DumpText().c_str());
  }
  return 0;
}
