// Census income analysis -- the paper's second benchmark database (Section
// 5.1: "a census database consisting of monthly income information", 360K
// records). Demonstrates aggregation queries, semi-linear scoring, and
// selection-scoped statistics.
//
//   $ ./build/examples/census_income

#include <cstdio>

#include "src/core/executor.h"
#include "src/db/datagen.h"
#include "src/gpu/device.h"
#include "src/predicate/expr.h"

using gpudb::core::AggregateKind;
using gpudb::core::Executor;
using gpudb::gpu::CompareOp;
using gpudb::predicate::Expr;

int main() {
  std::printf("generating 360K-record census table (paper Section 5.1)...\n");
  auto table = gpudb::db::MakeCensusTable(360'000);
  if (!table.ok()) return 1;

  gpudb::gpu::Device device(1000, 1000);
  auto exec = Executor::Make(&device, &table.ValueOrDie());
  if (!exec.ok()) return 1;
  Executor& e = *exec.ValueOrDie();

  // Income distribution basics.
  auto median = e.Aggregate(AggregateKind::kMedian, "monthly_income");
  auto avg = e.Aggregate(AggregateKind::kAvg, "monthly_income");
  if (!median.ok() || !avg.ok()) return 1;
  std::printf("monthly income: median=$%.0f  mean=$%.0f (right-skewed)\n",
              median.ValueOrDie(), avg.ValueOrDie());

  // Top 1% income threshold via KthLargest.
  auto top1 = e.KthLargest("monthly_income", 3600);
  if (!top1.ok()) return 1;
  std::printf("top-1%% income threshold: $%u\n", top1.ValueOrDie());

  // Working-age, full-year workers: median income of the selection.
  auto full_year = Expr::And(Expr::Between(1, 25.0f, 65.0f),
                             Expr::Pred(2, CompareOp::kGreaterEqual, 50.0f));
  auto n = e.Count(full_year);
  auto sel_median = e.Aggregate(AggregateKind::kMedian, "monthly_income",
                                full_year);
  if (!n.ok() || !sel_median.ok()) return 1;
  std::printf("full-year workers age 25-65: %llu, median income $%.0f\n",
              static_cast<unsigned long long>(n.ValueOrDie()),
              sel_median.ValueOrDie());

  // Semi-linear affordability score: income - 150*household_size > 1000.
  auto afford = e.SemilinearCount(
      {{"monthly_income", 1.0f}, {"household_size", -150.0f}},
      CompareOp::kGreater, 1000.0f);
  if (!afford.ok()) return 1;
  std::printf("households clearing the affordability line: %llu of %zu\n",
              static_cast<unsigned long long>(afford.ValueOrDie()),
              table.ValueOrDie().num_rows());

  // Income share of large households (>= 5 members).
  auto large = Expr::Pred(3, CompareOp::kGreaterEqual, 5.0f);
  auto large_sum = e.Aggregate(AggregateKind::kSum, "monthly_income", large);
  auto total_sum = e.Aggregate(AggregateKind::kSum, "monthly_income");
  if (!large_sum.ok() || !total_sum.ok()) return 1;
  std::printf("income share of households with >=5 members: %.1f%%\n",
              100.0 * large_sum.ValueOrDie() / total_sum.ValueOrDie());
  return 0;
}
