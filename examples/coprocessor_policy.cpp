// Co-processor routing -- the paper's conclusion in executable form: "the
// GPU is an excellent candidate for some database operations, but not all
// ... it would be useful for database designers to utilize GPU capabilities
// alongside traditional CPU-based code" (Section 7).
//
// The Planner prices each operation on both analytic hardware models
// (GeForce FX 5900 vs dual 2.8 GHz Xeon) and routes it, printing the paper's
// Section 6.2 classification as the rationale.
//
//   $ ./build/examples/coprocessor_policy

#include <cstdio>

#include "src/core/planner.h"

using gpudb::core::Backend;
using gpudb::core::OperationKind;
using gpudb::core::PlanDecision;
using gpudb::core::Planner;

namespace {

void Show(const Planner& planner, OperationKind op, uint64_t records,
          int detail) {
  const PlanDecision d = planner.Choose(op, records, detail);
  std::printf("%-24s n=%-9llu -> %-3s  (gpu %8.3f ms, cpu %8.3f ms)\n",
              std::string(ToString(op)).c_str(),
              static_cast<unsigned long long>(records),
              std::string(ToString(d.backend)).c_str(), d.gpu_ms, d.cpu_ms);
  std::printf("    rationale: %s\n", std::string(d.rationale).c_str());
}

}  // namespace

int main() {
  Planner planner;

  std::printf("=== Section 6.2 classification at the paper's scale (1M records) ===\n");
  Show(planner, OperationKind::kPredicateSelect, 1'000'000, 0);
  Show(planner, OperationKind::kRangeSelect, 1'000'000, 0);
  Show(planner, OperationKind::kMultiAttributeSelect, 1'000'000, 4);
  Show(planner, OperationKind::kSemilinearSelect, 1'000'000, 0);
  Show(planner, OperationKind::kKthLargest, 250'000, 19);
  Show(planner, OperationKind::kSum, 1'000'000, 19);
  Show(planner, OperationKind::kCount, 1'000'000, 0);

  std::printf("\n=== The crossover: fixed GPU overheads push small queries to the CPU ===\n");
  for (uint64_t n : {100ull, 1'000ull, 10'000ull, 100'000ull, 1'000'000ull}) {
    Show(planner, OperationKind::kPredicateSelect, n, 0);
  }

  std::printf("\nThe planner reproduces the paper's advice: selections and "
              "semi-linear queries\nbelong on the GPU, SUM/AVG stay on the "
              "CPU, and tiny queries never amortize\nthe copy + readback "
              "overhead.\n");
  return 0;
}
