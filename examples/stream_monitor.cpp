// Continuous queries over a stream -- the paper's Section 7 closes with
// "perform continuous queries over streams using GPUs"; this example keeps a
// sliding window of the most recent flow measurements GPU-resident and
// re-evaluates monitoring queries as batches arrive.
//
//   $ ./build/examples/stream_monitor

#include <cstdio>
#include <vector>

#include "src/common/random.h"
#include "src/core/stream.h"
#include "src/gpu/device.h"
#include "src/gpu/perf_model.h"

int main() {
  gpudb::gpu::Device device(1000, 1000);
  // Window: the most recent 500K flow sizes (19-bit, like data_count).
  auto window = gpudb::core::StreamWindow::Make(&device, 500'000, 19);
  if (!window.ok()) {
    std::fprintf(stderr, "%s\n", window.status().ToString().c_str());
    return 1;
  }
  gpudb::Random rng(20040613);
  gpudb::gpu::PerfModel model;

  std::printf("%-6s %10s %12s %14s %12s %14s\n", "tick", "window", "median",
              "p99", "count>256K", "sum");
  for (int tick = 1; tick <= 8; ++tick) {
    // A burst of 100K new flow records arrives...
    std::vector<uint32_t> batch(100'000);
    const double burst_mu = tick >= 5 ? 11.5 : 10.0;  // traffic spike later
    for (auto& v : batch) {
      const double x = rng.NextLognormal(burst_mu, 1.2);
      v = static_cast<uint32_t>(
          std::min<double>(x, (1u << 19) - 1));
    }
    if (!window.ValueOrDie().Push(batch).ok()) return 1;

    // ...and the standing queries re-run over the current window.
    auto median = window.ValueOrDie().Median();
    auto p99 = window.ValueOrDie().KthLargest(
        std::max<uint64_t>(1, window.ValueOrDie().size() / 100));
    auto heavy = window.ValueOrDie().Count(
        gpudb::gpu::CompareOp::kGreaterEqual, 262144.0);
    auto sum = window.ValueOrDie().Sum();
    if (!median.ok() || !p99.ok() || !heavy.ok() || !sum.ok()) return 1;
    std::printf("%-6d %10llu %12u %14u %12llu %14llu\n", tick,
                static_cast<unsigned long long>(window.ValueOrDie().size()),
                median.ValueOrDie(), p99.ValueOrDie(),
                static_cast<unsigned long long>(heavy.ValueOrDie()),
                static_cast<unsigned long long>(sum.ValueOrDie()));
  }
  std::printf(
      "\nsimulated FX 5900 time for the whole session: %.1f ms "
      "(incremental uploads: %.2f MB total)\n",
      model.EstimateMs(device.counters()),
      static_cast<double>(device.counters().bytes_uploaded) / 1e6);
  std::printf("note the median/p99 jump at tick 5 when the traffic spike "
              "enters the window.\n");
  return 0;
}
