// Extending gpudb with a user-defined fragment program -- the extensibility
// path a downstream adopter uses to add operators the library doesn't ship.
//
// The paper's programming model is exactly this: express the per-record
// predicate as a short branch-free fragment program that KILLs failing
// fragments, then reuse the stencil/occlusion machinery for selection and
// counting. Here we add a "ring" membership operator over two attributes:
//
//   r_min^2 <= (x - cx)^2 + (y - cy)^2 <= r_max^2
//
// which is neither semi-linear nor a single polynomial comparison.
//
//   $ ./build/examples/custom_operator

#include <cstdio>
#include <vector>

#include "src/common/random.h"
#include "src/core/state_guard.h"
#include "src/gpu/device.h"
#include "src/gpu/fragment_program.h"
#include "src/gpu/perf_model.h"

namespace {

/// User-defined operator: ring (annulus) membership test over the (x, y)
/// channels of the bound texture. 2004-style straight-line float code:
/// fetch, two subtracts, two MADs, two compares, KILL.
class RingProgram final : public gpudb::gpu::FragmentProgram {
 public:
  RingProgram(float cx, float cy, float r_min, float r_max)
      : cx_(cx), cy_(cy), r2_min_(r_min * r_min), r2_max_(r_max * r_max) {}

  void Execute(const gpudb::gpu::FragmentInput& in,
               gpudb::gpu::FragmentOutput* out) const override {
    const float dx = in.tex0->At(in.texel_index, 0) - cx_;
    const float dy = in.tex0->At(in.texel_index, 1) - cy_;
    const float d2 = dx * dx + dy * dy;
    if (d2 < r2_min_ || d2 > r2_max_) {
      out->discarded = true;
      return;
    }
    out->color = {d2, 0, 0, 1};
  }
  int instruction_count() const override { return 7; }
  std::string_view name() const override { return "RingFP"; }

 private:
  float cx_, cy_, r2_min_, r2_max_;
};

}  // namespace

int main() {
  // 100K points.
  constexpr size_t kPoints = 100'000;
  gpudb::Random rng(42);
  std::vector<float> xs(kPoints), ys(kPoints);
  for (size_t i = 0; i < kPoints; ++i) {
    xs[i] = static_cast<float>(rng.NextDouble(0, 1000));
    ys[i] = static_cast<float>(rng.NextDouble(0, 1000));
  }

  gpudb::gpu::Device device(1000, 1000);
  auto tex = gpudb::gpu::Texture::FromColumns({&xs, &ys}, 1000);
  if (!tex.ok()) return 1;
  auto id = device.UploadTexture(std::move(tex).ValueOrDie());
  if (!id.ok() || !device.SetViewport(kPoints).ok()) return 1;

  // Run the custom operator exactly like the built-in selections: program +
  // stencil REPLACE + occlusion count.
  const RingProgram ring(500, 500, 200, 350);
  uint64_t gpu_count = 0;
  {
    gpudb::core::StateGuard guard(&device);
    if (!device.BindTexture(id.ValueOrDie()).ok()) return 1;
    device.UseProgram(&ring);
    device.ClearStencil(0);
    device.SetColorWriteMask(false);
    device.SetStencilTest(true, gpudb::gpu::CompareOp::kAlways, 1);
    device.SetStencilOp(gpudb::gpu::StencilOp::kKeep,
                        gpudb::gpu::StencilOp::kKeep,
                        gpudb::gpu::StencilOp::kReplace);
    if (!device.BeginOcclusionQuery().ok()) return 1;
    if (!device.RenderTexturedQuad().ok()) return 1;
    auto count = device.EndOcclusionQuery();
    if (!count.ok()) return 1;
    gpu_count = count.ValueOrDie();
    device.UseProgram(nullptr);
  }

  // CPU cross-check.
  uint64_t expected = 0;
  for (size_t i = 0; i < kPoints; ++i) {
    const float dx = xs[i] - 500, dy = ys[i] - 500;
    const float d2 = dx * dx + dy * dy;
    expected += (d2 >= 200.0f * 200.0f && d2 <= 350.0f * 350.0f) ? 1 : 0;
  }

  std::printf("points in ring r=[200,350] around (500,500): %llu "
              "(CPU cross-check %llu: %s)\n",
              static_cast<unsigned long long>(gpu_count),
              static_cast<unsigned long long>(expected),
              gpu_count == expected ? "match" : "MISMATCH");
  gpudb::gpu::PerfModel model;
  std::printf("one 7-instruction pass over 100K fragments: %.3f ms on the "
              "simulated FX 5900\n",
              model.EstimateMs(device.counters()));
  return gpu_count == expected ? 0 : 1;
}
