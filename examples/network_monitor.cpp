// Network monitoring over the TCP/IP workload -- the application the paper's
// evaluation is built around (Section 5.1): a million-flow table with
// data_count / data_loss / flow_rate / retransmissions attributes, queried
// for traffic anomalies.
//
//   $ ./build/examples/network_monitor

#include <cstdio>

#include "src/core/executor.h"
#include "src/db/datagen.h"
#include "src/gpu/device.h"
#include "src/gpu/perf_model.h"
#include "src/predicate/expr.h"

using gpudb::core::AggregateKind;
using gpudb::core::Executor;
using gpudb::gpu::CompareOp;
using gpudb::predicate::Expr;

int main() {
  std::printf("generating 1M-flow TCP/IP monitoring table...\n");
  auto table = gpudb::db::MakeTcpIpTable(1'000'000);
  if (!table.ok()) return 1;

  gpudb::gpu::Device device(1000, 1000);
  auto exec = Executor::Make(&device, &table.ValueOrDie());
  if (!exec.ok()) return 1;
  Executor& e = *exec.ValueOrDie();

  // Anomaly 1: lossy heavy flows -- high data volume AND any loss.
  auto heavy_lossy =
      Expr::And(Expr::Pred(0, CompareOp::kGreaterEqual, 100000.0f),
                Expr::Pred(1, CompareOp::kGreater, 0.0f));
  auto n1 = e.Count(heavy_lossy);
  if (!n1.ok()) return 1;
  std::printf("heavy flows with loss:               %llu\n",
              static_cast<unsigned long long>(n1.ValueOrDie()));

  // Anomaly 2: retransmission storms OR dead flows (no rate but losses).
  auto storms = Expr::Or(
      Expr::Pred(3, CompareOp::kGreaterEqual, 50.0f),
      Expr::And(Expr::Pred(2, CompareOp::kLess, 10.0f),
                Expr::Pred(1, CompareOp::kGreater, 100.0f)));
  auto n2 = e.Count(storms);
  if (!n2.ok()) return 1;
  std::printf("retransmission storms / dead flows:  %llu\n",
              static_cast<unsigned long long>(n2.ValueOrDie()));

  // Bandwidth band: flows in the p20..p80 rate window via the depth-bounds
  // fast path.
  const float p20 = table.ValueOrDie().column(2).Percentile(0.2);
  const float p80 = table.ValueOrDie().column(2).Percentile(0.8);
  auto band = e.RangeCount("flow_rate", p20, p80);
  if (!band.ok()) return 1;
  std::printf("flows in p20..p80 rate band:         %llu\n",
              static_cast<unsigned long long>(band.ValueOrDie()));

  // 99.9th percentile of data_count among lossy flows -- KthLargest over a
  // selection, the paper's order-statistic showcase.
  auto lossy = Expr::Pred(1, CompareOp::kGreater, 0.0f);
  auto lossy_count = e.Count(lossy);
  if (!lossy_count.ok()) return 1;
  const uint64_t k =
      std::max<uint64_t>(1, lossy_count.ValueOrDie() / 1000);
  auto p999 = e.KthLargest("data_count", k, lossy);
  if (!p999.ok()) return 1;
  std::printf("p99.9 data_count among lossy flows:  %u\n", p999.ValueOrDie());

  // Aggregate dashboard row.
  auto avg_rate = e.Aggregate(AggregateKind::kAvg, "flow_rate");
  auto max_retx = e.Aggregate(AggregateKind::kMax, "retransmissions");
  if (!avg_rate.ok() || !max_retx.ok()) return 1;
  std::printf("avg flow_rate: %.1f   max retransmissions: %.0f\n",
              avg_rate.ValueOrDie(), max_retx.ValueOrDie());

  // What would this have cost on the paper's 2004 hardware?
  gpudb::gpu::PerfModel model;
  std::printf("simulated GeForce FX 5900 time for this session: %.2f ms "
              "across %llu rendering passes\n",
              model.EstimateMs(device.counters()),
              static_cast<unsigned long long>(device.counters().passes));
  return 0;
}
