#ifndef GPUDB_COMMON_RESULT_H_
#define GPUDB_COMMON_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "src/common/status.h"

namespace gpudb {

/// \brief Either a value of type T or a non-OK Status.
///
/// Mirrors arrow::Result / absl::StatusOr. Constructing a Result from an OK
/// Status is a programming error (there would be no value to return).
///
///   Result<uint64_t> r = Count(device, pred);
///   if (!r.ok()) return r.status();
///   uint64_t n = r.ValueOrDie();
///
/// Like Status, Result is [[nodiscard]]: a dropped Result loses both the
/// value and the failure, so the compiler and gpulint rule R1 reject it.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit conversion from a value (the common success path).
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)

  /// Implicit conversion from a failure Status.
  Result(Status status) : rep_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(rep_).ok() &&
           "Result constructed from an OK Status");
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The failure status, or OK if this Result holds a value.
  [[nodiscard]] Status status() const {
    return ok() ? Status::OK() : std::get<Status>(rep_);
  }

  /// The contained value. Must only be called when ok().
  const T& ValueOrDie() const& {
    assert(ok() && "ValueOrDie called on errored Result");
    return std::get<T>(rep_);
  }
  T& ValueOrDie() & {
    assert(ok() && "ValueOrDie called on errored Result");
    return std::get<T>(rep_);
  }
  T&& ValueOrDie() && {
    assert(ok() && "ValueOrDie called on errored Result");
    return std::move(std::get<T>(rep_));
  }

  /// Alias matching absl::StatusOr for reader familiarity.
  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }

  /// Returns the value, or `fallback` on error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

 private:
  std::variant<Status, T> rep_;
};

/// Assigns the value of a Result expression to `lhs`, or propagates its
/// Status. `lhs` may include a declaration, e.g.
///   GPUDB_ASSIGN_OR_RETURN(uint64_t n, Count(device));
#define GPUDB_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).ValueOrDie();

#define GPUDB_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define GPUDB_ASSIGN_OR_RETURN_NAME(x, y) GPUDB_ASSIGN_OR_RETURN_CONCAT(x, y)

#define GPUDB_ASSIGN_OR_RETURN(lhs, expr)                                     \
  GPUDB_ASSIGN_OR_RETURN_IMPL(                                                \
      GPUDB_ASSIGN_OR_RETURN_NAME(_gpudb_result_, __COUNTER__), lhs, expr)

}  // namespace gpudb

#endif  // GPUDB_COMMON_RESULT_H_
