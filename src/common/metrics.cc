#include "src/common/metrics.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>

#include "src/common/json.h"

namespace gpudb {

void MetricHistogram::Record(double value) {
  const int bucket = BucketFor(value);
  buckets_[static_cast<size_t>(bucket)].fetch_add(1,
                                                  std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  // atomic<double> has no fetch_add pre-C++20 on all targets; CAS-loop keeps
  // the sum exact under concurrent recording.
  double expected = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(expected, expected + value,
                                     std::memory_order_relaxed)) {
  }
  MutexLock lock(&minmax_mu_);
  if (count() == 1 || value < min_.load(std::memory_order_relaxed)) {
    min_.store(value, std::memory_order_relaxed);
  }
  if (count() == 1 || value > max_.load(std::memory_order_relaxed)) {
    max_.store(value, std::memory_order_relaxed);
  }
}

double MetricHistogram::min() const {
  return min_.load(std::memory_order_relaxed);
}

double MetricHistogram::max() const {
  return max_.load(std::memory_order_relaxed);
}

double MetricHistogram::BucketUpperBound(int bucket) {
  return std::ldexp(1.0, bucket + kMinExp);
}

int MetricHistogram::BucketFor(double value) {
  if (!(value > 0.0)) return 0;  // catches negatives and NaN
  const int exp = static_cast<int>(std::ceil(std::log2(value)));
  return std::clamp(exp - kMinExp, 0, kBuckets - 1);
}

double MetricHistogram::Quantile(double q) const {
  const uint64_t n = count();
  if (n == 0) return 0.0;
  // std::clamp passes NaN through (all comparisons are false), which would
  // turn the rank cast below into undefined behavior.
  if (std::isnan(q)) q = 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto rank = static_cast<uint64_t>(
      std::max(1.0, std::ceil(q * static_cast<double>(n))));
  uint64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += bucket_count(b);
    if (seen >= rank) return BucketUpperBound(b);
  }
  return BucketUpperBound(kBuckets - 1);
}

void MetricHistogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

MetricCounter& MetricsRegistry::counter(std::string_view name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<MetricCounter>();
  return *slot;
}

MetricGauge& MetricsRegistry::gauge(std::string_view name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<MetricGauge>();
  return *slot;
}

MetricHistogram& MetricsRegistry::histogram(std::string_view name) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[std::string(name)];
  if (slot == nullptr) slot = std::make_unique<MetricHistogram>();
  return *slot;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c->value()});
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g->value()});
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    MetricsSnapshot::HistogramEntry e;
    e.name = name;
    e.count = h->count();
    e.sum = h->sum();
    e.min = h->min();
    e.max = h->max();
    e.p50 = h->Quantile(0.5);
    e.p95 = h->Quantile(0.95);
    e.p99 = h->Quantile(0.99);
    for (int b = 0; b < MetricHistogram::kBuckets; ++b) {
      const uint64_t n = h->bucket_count(b);
      if (n > 0) {
        e.buckets.emplace_back(MetricHistogram::BucketUpperBound(b), n);
      }
    }
    snap.histograms.push_back(std::move(e));
  }
  return snap;
}

namespace {

/// Prometheus metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; fold the
/// registry's dotted names ("executor.count") into underscores and prefix
/// the namespace, which also guarantees a legal first character.
std::string PrometheusName(const std::string& name) {
  std::string out = "gpudb_";
  for (char c : name) {
    out += std::isalnum(static_cast<unsigned char>(c)) ? c : '_';
  }
  return out;
}

/// HELP text escaping (text exposition 0.0.4): backslash and newline.
std::string EscapeHelpText(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Label-value escaping: backslash, double quote, and newline.
std::string EscapeLabelValue(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

/// Sample values the way Prometheus parsers expect them: `NaN`, `+Inf`, and
/// `-Inf` spelled out (printf would write "nan"/"inf", which promtool
/// rejects); finite values round-trip through %.17g.
std::string FormatPromValue(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

/// The `# HELP` line (which promtool wants before `# TYPE`) carries the
/// original dotted registry name, so scrapes map back to source call sites.
void AppendPromHeader(const std::string& prom_name, const char* type,
                      const std::string& registry_name, std::string* out) {
  *out += "# HELP " + prom_name + " gpudb registry metric " +
          EscapeHelpText(registry_name) + "\n";
  *out += "# TYPE " + prom_name + " " + type + "\n";
}

}  // namespace

std::string MetricsRegistry::DumpPrometheus() const {
  const MetricsSnapshot snap = Snapshot();
  std::string out;
  for (const auto& c : snap.counters) {
    const std::string n = PrometheusName(c.name);
    AppendPromHeader(n, "counter", c.name, &out);
    out += n + " " + std::to_string(c.value) + "\n";
  }
  for (const auto& g : snap.gauges) {
    const std::string n = PrometheusName(g.name);
    AppendPromHeader(n, "gauge", g.name, &out);
    out += n + " " + FormatPromValue(g.value) + "\n";
  }
  for (const auto& h : snap.histograms) {
    const std::string n = PrometheusName(h.name);
    AppendPromHeader(n, "histogram", h.name, &out);
    uint64_t cumulative = 0;
    for (const auto& [le, count] : h.buckets) {
      cumulative += count;
      out += n + "_bucket{le=\"" + EscapeLabelValue(FormatPromValue(le)) +
             "\"} " + std::to_string(cumulative) + "\n";
    }
    out += n + "_bucket{le=\"+Inf\"} " + std::to_string(h.count) + "\n";
    out += n + "_sum " + FormatPromValue(h.sum) + "\n";
    out += n + "_count " + std::to_string(h.count) + "\n";
  }
  return out;
}

std::string MetricsRegistry::DumpText() const {
  MutexLock lock(&mu_);
  std::string out;
  char buf[256];
  for (const auto& [name, c] : counters_) {
    std::snprintf(buf, sizeof(buf), "counter   %-32s %llu\n", name.c_str(),
                  static_cast<unsigned long long>(c->value()));
    out += buf;
  }
  for (const auto& [name, g] : gauges_) {
    std::snprintf(buf, sizeof(buf), "gauge     %-32s %.6g\n", name.c_str(),
                  g->value());
    out += buf;
  }
  for (const auto& [name, h] : histograms_) {
    std::snprintf(buf, sizeof(buf),
                  "histogram %-32s count=%llu sum=%.6g min=%.6g max=%.6g "
                  "p50=%.6g p95=%.6g p99=%.6g\n",
                  name.c_str(), static_cast<unsigned long long>(h->count()),
                  h->sum(), h->min(), h->max(), h->Quantile(0.5),
                  h->Quantile(0.95), h->Quantile(0.99));
    out += buf;
  }
  return out;
}

std::string MetricsRegistry::DumpJson() const {
  MutexLock lock(&mu_);
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& [name, c] : counters_) {
    if (!first) out += ",";
    first = false;
    out += json::Quote(name) + ":" + std::to_string(c->value());
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& [name, g] : gauges_) {
    if (!first) out += ",";
    first = false;
    out += json::Quote(name) + ":" + json::Number(g->value());
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& [name, h] : histograms_) {
    if (!first) out += ",";
    first = false;
    out += json::Quote(name) + ":{\"count\":" + std::to_string(h->count()) +
           ",\"sum\":" + json::Number(h->sum()) +
           ",\"min\":" + json::Number(h->min()) +
           ",\"max\":" + json::Number(h->max()) +
           ",\"p50\":" + json::Number(h->Quantile(0.5)) +
           ",\"p95\":" + json::Number(h->Quantile(0.95)) +
           ",\"p99\":" + json::Number(h->Quantile(0.99)) + ",\"buckets\":[";
    bool first_bucket = true;
    for (int b = 0; b < MetricHistogram::kBuckets; ++b) {
      const uint64_t n = h->bucket_count(b);
      if (n == 0) continue;
      if (!first_bucket) out += ",";
      first_bucket = false;
      out += "{\"le\":" + json::Number(MetricHistogram::BucketUpperBound(b)) +
             ",\"count\":" + std::to_string(n) + "}";
    }
    out += "]}";
  }
  out += "}}";
  return out;
}

void MetricsRegistry::ResetForTesting() {
  MutexLock lock(&mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

}  // namespace gpudb
