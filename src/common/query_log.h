#ifndef GPUDB_COMMON_QUERY_LOG_H_
#define GPUDB_COMMON_QUERY_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace gpudb {

/// \brief One executed SQL statement as remembered by the query history.
///
/// The sql::Session fills one entry per statement (including failed ones)
/// from the wall clock and the device-counter delta of the execution; the
/// `gpudb_queries` system table (db/catalog) is a relational view of the
/// ring.
struct QueryLogEntry {
  uint64_t id = 0;          ///< 1-based sequence number, assigned by Add.
  std::string sql;          ///< Statement text as submitted.
  std::string kind;         ///< "select", "count", "aggregate", ... / "error".
  bool ok = true;
  bool slow = false;        ///< Crossed the slow-query threshold.
  double wall_ms = 0.0;     ///< Wall-clock execution time on this machine.
  /// Wall split: time spent waiting for the session's executor (statements
  /// queue behind each other on one device) vs. time actually executing.
  /// queue_ms + exec_ms ~= wall_ms. The admission-control baseline signal.
  double queue_ms = 0.0;
  double exec_ms = 0.0;
  double simulated_ms = 0.0;  ///< PerfModel time (EXPLAIN ANALYZE runs only).
  uint64_t passes = 0;        ///< Rendering passes the statement issued.
  uint64_t fragments = 0;     ///< Fragments generated across those passes.
  uint64_t rows_out = 0;      ///< Result cardinality (1 for scalar results).
  uint64_t retries = 0;       ///< Device retry attempts this statement made.
  bool fell_back = false;     ///< Answered by the CPU tier after GPU faults.
  uint64_t fused_passes = 0;  ///< Planner-fused passes (DESIGN.md §14).
  uint64_t cache_hits = 0;    ///< Depth-plane cache restores.
  /// Failure-domain attribution (DESIGN.md §15): the tenant that submitted
  /// the statement (empty = anonymous), the pool device that served or
  /// first failed it (-1 = no failure domain, e.g. the single-device path),
  /// and how many shard failovers the statement absorbed.
  std::string tenant;
  int64_t device_id = -1;
  uint64_t failovers = 0;
  std::string error;          ///< Status message when !ok.
};

/// \brief Always-on ring buffer of recent statements plus a slow-query log.
///
/// Add() keeps the newest `capacity` entries, records every statement's wall
/// time in the "sql.query_wall_ms" histogram, and counts via "sql.queries".
/// When a slow threshold is configured (constructor reads $GPUDB_SLOW_MS for
/// the global instance; --slow-ms in the shell calls set_slow_threshold_ms)
/// a statement at or above it is flagged, counted in "sql.slow_queries", and
/// echoed to stderr -- the minimal production slow-query log.
class QueryLog {
 public:
  static constexpr size_t kDefaultCapacity = 256;

  explicit QueryLog(size_t capacity = kDefaultCapacity);
  QueryLog(const QueryLog&) = delete;
  QueryLog& operator=(const QueryLog&) = delete;

  /// Shared process-wide log; its slow threshold is seeded from the
  /// GPUDB_SLOW_MS environment variable (milliseconds, 0/unset = disabled).
  static QueryLog& Global();

  /// Threshold in ms at or above which a statement is "slow"; <= 0 disables.
  void set_slow_threshold_ms(double ms);
  double slow_threshold_ms() const;

  /// Suppresses the stderr echo of slow statements (tests).
  void set_echo_slow_to_stderr(bool on);

  /// Records one statement, assigning its id; returns that id.
  uint64_t Add(QueryLogEntry entry);

  /// Entries currently retained, oldest first.
  std::vector<QueryLogEntry> Entries() const;

  /// Retained slow entries only, oldest first.
  std::vector<QueryLogEntry> SlowEntries() const;

  size_t size() const;
  uint64_t total_recorded() const;

  /// Drops all retained entries (the id sequence keeps counting).
  void Clear();

 private:
  /// Lock-order level: `querylog` (innermost leaf) -- Add() touches the
  /// metrics registry before taking mu_, never while holding it.
  mutable Mutex mu_;
  /// Oldest entry sits at ring_[head_].
  std::vector<QueryLogEntry> ring_ GUARDED_BY(mu_);
  const size_t capacity_;  // lint: lock-free (const after construction)
  size_t head_ GUARDED_BY(mu_) = 0;
  uint64_t next_id_ GUARDED_BY(mu_) = 1;
  uint64_t total_recorded_ GUARDED_BY(mu_) = 0;
  double slow_threshold_ms_ GUARDED_BY(mu_) = 0.0;
  bool echo_slow_ GUARDED_BY(mu_) = true;
};

}  // namespace gpudb

#endif  // GPUDB_COMMON_QUERY_LOG_H_
