#include "src/common/trace.h"

#include <algorithm>
#include <chrono>

#include "src/common/json.h"

namespace gpudb {

namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

uint64_t ThisThreadOrdinal() {
  static std::atomic<uint64_t> next{1};
  thread_local uint64_t ordinal = next.fetch_add(1);
  return ordinal;
}

/// Stack of open span ids on this thread, innermost last.
std::vector<uint64_t>& ThreadSpanStack() {
  thread_local std::vector<uint64_t> stack;
  return stack;
}

}  // namespace

double FinishedSpan::NumberTag(std::string_view key, double fallback) const {
  for (const TraceTag& tag : tags) {
    if (tag.key == key) return tag.is_number ? tag.number : fallback;
  }
  return fallback;
}

std::string_view FinishedSpan::TextTag(std::string_view key) const {
  for (const TraceTag& tag : tags) {
    if (tag.key == key) return tag.text;
  }
  return {};
}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

size_t Tracer::FinishedCount() const {
  MutexLock lock(&mu_);
  return finished_.size();
}

std::vector<FinishedSpan> Tracer::FinishedSince(size_t mark) const {
  MutexLock lock(&mu_);
  if (mark >= finished_.size()) return {};
  return std::vector<FinishedSpan>(finished_.begin() + mark, finished_.end());
}

void Tracer::Counter(std::string_view name, double value) {
  if (!enabled()) return;
  CounterSample sample;
  sample.name = std::string(name);
  sample.value = value;
  sample.ts_us = NowMicros();
  sample.thread_id = ThisThreadOrdinal();
  MutexLock lock(&mu_);
  counters_.push_back(std::move(sample));
}

size_t Tracer::CounterCount() const {
  MutexLock lock(&mu_);
  return counters_.size();
}

std::vector<CounterSample> Tracer::CounterSamplesSince(size_t mark) const {
  MutexLock lock(&mu_);
  if (mark >= counters_.size()) return {};
  return std::vector<CounterSample>(counters_.begin() + mark,
                                    counters_.end());
}

void Tracer::Clear() {
  MutexLock lock(&mu_);
  finished_.clear();
  counters_.clear();
}

uint64_t Tracer::Begin(std::string_view name) {
  if (!enabled()) return 0;
  OpenSpan span;
  const uint64_t id = next_id_.fetch_add(1);
  span.id = id;
  span.thread_id = ThisThreadOrdinal();
  span.name = std::string(name);
  span.start_us = NowMicros();
  std::vector<uint64_t>& stack = ThreadSpanStack();
  span.parent_id = stack.empty() ? 0 : stack.back();
  stack.push_back(id);
  {
    MutexLock lock(&mu_);
    open_.push_back(std::move(span));
  }
  return id;
}

void Tracer::End(uint64_t id, std::vector<TraceTag> tags) {
  if (id == 0) return;
  std::vector<uint64_t>& stack = ThreadSpanStack();
  // Spans are RAII so they close innermost-first; tolerate (and repair)
  // out-of-order closes from moved-about handles by searching the stack.
  for (auto it = stack.rbegin(); it != stack.rend(); ++it) {
    if (*it == id) {
      stack.erase(std::next(it).base());
      break;
    }
  }
  const int64_t now = NowMicros();
  MutexLock lock(&mu_);
  for (auto it = open_.begin(); it != open_.end(); ++it) {
    if (it->id != id) continue;
    FinishedSpan done;
    done.id = it->id;
    done.parent_id = it->parent_id;
    done.thread_id = it->thread_id;
    done.name = std::move(it->name);
    done.start_us = it->start_us;
    done.end_us = now;
    done.tags = std::move(tags);
    open_.erase(it);
    finished_.push_back(std::move(done));
    return;
  }
}

std::string Tracer::ToChromeTrace(const std::vector<FinishedSpan>& spans) {
  return ToChromeTrace(spans, {});
}

std::string Tracer::ToChromeTrace(const std::vector<FinishedSpan>& spans,
                                  const std::vector<CounterSample>& counters) {
  // Chrome's trace_event format: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU
  // Complete ("X") events carry ts + dur; parent/child structure is implied
  // by nesting on the same pid/tid timeline. Span ids and parent ids are
  // also exported under args for tools that want the exact forest. Counter
  // samples become "C" events the viewer draws as value tracks.
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const FinishedSpan& span : spans) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":" + json::Quote(span.name) +
           ",\"cat\":\"gpudb\",\"ph\":\"X\",\"pid\":1,\"tid\":" +
           std::to_string(span.thread_id) +
           ",\"ts\":" + std::to_string(span.start_us) +
           ",\"dur\":" + std::to_string(span.duration_us()) + ",\"args\":{";
    out += "\"span_id\":" + std::to_string(span.id) +
           ",\"parent_id\":" + std::to_string(span.parent_id);
    for (const TraceTag& tag : span.tags) {
      out += "," + json::Quote(tag.key) + ":";
      out += tag.is_number ? json::Number(tag.number) : json::Quote(tag.text);
    }
    out += "}}";
  }
  for (const CounterSample& sample : counters) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":" + json::Quote(sample.name) +
           ",\"cat\":\"gpudb\",\"ph\":\"C\",\"pid\":1,\"tid\":" +
           std::to_string(sample.thread_id) +
           ",\"ts\":" + std::to_string(sample.ts_us) +
           ",\"args\":{\"value\":" + json::Number(sample.value) + "}}";
  }
  out += "],\"displayTimeUnit\":\"ms\"}";
  return out;
}

TraceSpan::TraceSpan(std::string_view name, Tracer* tracer)
    : tracer_(tracer), id_(tracer->Begin(name)) {}

TraceSpan::~TraceSpan() { tracer_->End(id_, std::move(tags_)); }

void TraceSpan::AddTag(std::string_view key, std::string_view value) {
  if (!active()) return;
  TraceTag tag;
  tag.key = std::string(key);
  tag.text = std::string(value);
  tags_.push_back(std::move(tag));
}

void TraceSpan::AddTag(std::string_view key, double value) {
  if (!active()) return;
  TraceTag tag;
  tag.key = std::string(key);
  tag.text = json::Number(value);
  tag.number = value;
  tag.is_number = true;
  tags_.push_back(std::move(tag));
}

}  // namespace gpudb
