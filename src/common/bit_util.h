#ifndef GPUDB_COMMON_BIT_UTIL_H_
#define GPUDB_COMMON_BIT_UTIL_H_

#include <bit>
#include <cstdint>

namespace gpudb {
namespace bit_util {

/// Number of bits needed to represent `v` (0 for v == 0).
///
/// This is the paper's `b_max` for a column: KthLargest (Routine 4.5) and
/// Accumulator (Routine 4.6) both run one rendering pass per bit, so the
/// pass count of those algorithms equals BitWidth(max value).
inline int BitWidth(uint64_t v) { return 64 - std::countl_zero(v); }

/// True iff bit `i` (0 = LSB) of `v` is set.
inline bool TestBit(uint64_t v, int i) { return (v >> i) & 1u; }

/// 2^i as uint64.
inline uint64_t PowerOfTwo(int i) { return uint64_t{1} << i; }

/// Rounds `v` up to the next multiple of `m` (m > 0).
inline uint64_t RoundUp(uint64_t v, uint64_t m) {
  return (v + m - 1) / m * m;
}

/// Integer ceil(a / b) for b > 0.
inline uint64_t CeilDiv(uint64_t a, uint64_t b) { return (a + b - 1) / b; }

}  // namespace bit_util
}  // namespace gpudb

#endif  // GPUDB_COMMON_BIT_UTIL_H_
