#ifndef GPUDB_COMMON_JSON_H_
#define GPUDB_COMMON_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/common/status.h"

namespace gpudb {
namespace json {

/// \brief Minimal JSON document model, enough to validate and inspect the
/// observability layer's own output (Chrome traces, metrics dumps, bench
/// result files) without an external dependency.
///
/// Numbers are kept as double; object member order is not preserved
/// (std::map), which is fine for validation and field lookup.
class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;  // null
  explicit Value(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Value(double d) : type_(Type::kNumber), number_(d) {}
  explicit Value(std::string s) : type_(Type::kString), string_(std::move(s)) {}

  static Value Array(std::vector<Value> items);
  static Value Object(std::map<std::string, Value> members);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  bool as_bool() const { return bool_; }
  double as_number() const { return number_; }
  const std::string& as_string() const { return string_; }
  const std::vector<Value>& as_array() const { return array_; }
  const std::map<std::string, Value>& as_object() const { return object_; }

  /// Object member lookup; nullptr when absent or not an object.
  const Value* Find(std::string_view key) const;

 private:
  Type type_ = Type::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<Value> array_;
  std::map<std::string, Value> object_;
};

/// \brief Parses a complete JSON document (trailing whitespace allowed,
/// trailing garbage is an error). Positions in error messages are byte
/// offsets.
[[nodiscard]] Result<Value> Parse(std::string_view input);

/// \brief Escapes and quotes a string for embedding in JSON output.
std::string Quote(std::string_view s);

/// \brief Formats a double the way the observability exporters embed it:
/// integral values (within the 53-bit exact range) print without a decimal
/// point, everything else with enough digits to round-trip. NaN/Inf (not
/// representable in JSON) degrade to 0.
std::string Number(double value);

}  // namespace json
}  // namespace gpudb

#endif  // GPUDB_COMMON_JSON_H_
