#ifndef GPUDB_COMMON_THREAD_ANNOTATIONS_H_
#define GPUDB_COMMON_THREAD_ANNOTATIONS_H_

/// \file
/// \brief Clang thread-safety capability macros (DESIGN.md §12, rules R7-R9).
///
/// Under clang the macros expand to the thread-safety attributes so a
/// `-Wthread-safety -Werror` build (scripts/check.sh, "thread-safety" stage)
/// proves at compile time that every GUARDED_BY field is only touched with
/// its mutex held and every REQUIRES contract is met at each call site.
/// Under gcc (which has no such attributes) they expand to nothing; the
/// annotations then still serve as checked documentation, because gpulint
/// R7 independently requires every mutable field of a mutex-owning class to
/// carry either a GUARDED_BY annotation or a `// lint: lock-free`
/// justification.
///
/// The vocabulary mirrors the LLVM/Abseil convention:
///   CAPABILITY(x)        - class is a lockable capability (gpudb::Mutex)
///   SCOPED_CAPABILITY    - RAII holder (gpudb::MutexLock)
///   GUARDED_BY(x)        - field may only be read/written holding x
///   PT_GUARDED_BY(x)     - pointee (not the pointer) is guarded by x
///   REQUIRES(x)          - caller must hold x across the call
///   ACQUIRE(x)/RELEASE(x)- function acquires / releases x
///   EXCLUDES(x)          - caller must NOT hold x (the function takes it)
///   TRY_ACQUIRE(b, x)    - acquires x when returning b
///   ASSERT_CAPABILITY(x) - runtime assertion that x is held
///   RETURN_CAPABILITY(x) - function returns a reference to capability x
///   NO_THREAD_SAFETY_ANALYSIS - opt a function out (justify in a comment)

#if defined(__clang__) && defined(__has_attribute)
#define GPUDB_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define GPUDB_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

#define CAPABILITY(x) GPUDB_THREAD_ANNOTATION(capability(x))
#define SCOPED_CAPABILITY GPUDB_THREAD_ANNOTATION(scoped_lockable)
#define GUARDED_BY(x) GPUDB_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) GPUDB_THREAD_ANNOTATION(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) GPUDB_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) GPUDB_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
#define REQUIRES(...) \
  GPUDB_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  GPUDB_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) GPUDB_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  GPUDB_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) GPUDB_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  GPUDB_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  GPUDB_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
#define EXCLUDES(...) GPUDB_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) GPUDB_THREAD_ANNOTATION(assert_capability(x))
#define RETURN_CAPABILITY(x) GPUDB_THREAD_ANNOTATION(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS \
  GPUDB_THREAD_ANNOTATION(no_thread_safety_analysis)

#endif  // GPUDB_COMMON_THREAD_ANNOTATIONS_H_
