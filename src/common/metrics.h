#ifndef GPUDB_COMMON_METRICS_H_
#define GPUDB_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace gpudb {

/// \brief Monotonically increasing event count (queries run, passes
/// rendered, bytes moved). Thread-safe; cheap enough for simulator hot
/// paths.
class MetricCounter {
 public:
  void Add(uint64_t delta) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  void Increment() { Add(1); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// \brief Last-value-wins instantaneous measurement (resident video memory,
/// table row count).
class MetricGauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { Set(0.0); }

 private:
  std::atomic<double> value_{0.0};
};

/// \brief Log-scale latency histogram.
///
/// Buckets are powers of two: bucket i counts values in (2^(i-1+kMinExp),
/// 2^(i+kMinExp)], with bucket 0 catching everything at or below 2^kMinExp.
/// With kMinExp = -10 the histogram resolves ~1 microsecond to ~9 hours when
/// recording milliseconds, which covers every latency this codebase can
/// produce. Negative values clamp into bucket 0.
class MetricHistogram {
 public:
  static constexpr int kBuckets = 45;
  static constexpr int kMinExp = -10;

  void Record(double value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }
  double min() const;
  double max() const;
  uint64_t bucket_count(int bucket) const {
    return buckets_[static_cast<size_t>(bucket)].load(
        std::memory_order_relaxed);
  }

  /// Upper bound of a bucket (2^(bucket + kMinExp)).
  static double BucketUpperBound(int bucket);
  /// The bucket a value falls into.
  static int BucketFor(double value);

  /// Estimated value at quantile q (upper bound of the bucket that contains
  /// the q-th recorded value; 0 when empty). q is clamped into [0,1]; NaN is
  /// treated as 0, so no input produces undefined behavior.
  double Quantile(double q) const;

  void Reset();

 private:
  // lint: lock-free (relaxed atomics; each bucket/count/sum cell is
  // independently consistent, readers tolerate torn cross-field views)
  std::array<std::atomic<uint64_t>, kBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};  // lint: lock-free (relaxed atomic)
  std::atomic<double> sum_{0.0};    // lint: lock-free (CAS-loop accumulator)
  // min_/max_ are atomics so min()/max() read without a lock; minmax_mu_
  // only serializes the compare-then-store pairs in Record.
  std::atomic<double> min_{0.0};  // lint: lock-free (see minmax_mu_ note)
  std::atomic<double> max_{0.0};  // lint: lock-free (see minmax_mu_ note)
  mutable Mutex minmax_mu_;
};

/// \brief Point-in-time copy of every instrument in a MetricsRegistry.
///
/// This is the structured feed for relational introspection (the
/// `gpudb_metrics` / `gpudb_counters` system tables in db/catalog) and for
/// the Prometheus text exposition; the Dump* methods are rendered views of
/// the same data.
struct MetricsSnapshot {
  struct CounterEntry {
    std::string name;
    uint64_t value = 0;
  };
  struct GaugeEntry {
    std::string name;
    double value = 0.0;
  };
  struct HistogramEntry {
    std::string name;
    uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    /// (bucket upper bound, non-cumulative count), non-empty buckets only.
    std::vector<std::pair<double, uint64_t>> buckets;
  };
  std::vector<CounterEntry> counters;
  std::vector<GaugeEntry> gauges;
  std::vector<HistogramEntry> histograms;
};

/// \brief Process-wide registry of named metrics.
///
/// Instruments are created on first use and live for the registry's
/// lifetime, so call sites may cache the returned references:
///
///   static MetricCounter& passes =
///       MetricsRegistry::Global().counter("gpu.passes");
///   passes.Increment();
///
/// Names are dotted paths by convention ("gpu.passes", "sql.query_ms").
/// Tests may construct private registries; Global() is the shared one.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  static MetricsRegistry& Global();

  MetricCounter& counter(std::string_view name);
  MetricGauge& gauge(std::string_view name);
  MetricHistogram& histogram(std::string_view name);

  /// Consistent copy of every instrument, sorted by name within each kind.
  MetricsSnapshot Snapshot() const;

  /// Human-readable dump, one metric per line, sorted by name.
  std::string DumpText() const;

  /// JSON dump: {"counters":{...},"gauges":{...},"histograms":{...}}.
  std::string DumpJson() const;

  /// Prometheus text exposition (version 0.0.4): metric names are prefixed
  /// with "gpudb_" and sanitized to [a-zA-Z0-9_]; every metric gets a
  /// `# HELP` line (carrying the original dotted name, escaped) before its
  /// `# TYPE` line; label values escape backslash/quote/newline; NaN and
  /// infinities render as `NaN`/`+Inf`/`-Inf`; histograms emit the standard
  /// cumulative _bucket{le=...}/_sum/_count series.
  std::string DumpPrometheus() const;

  /// Zeroes every registered instrument (instruments stay registered, so
  /// cached references remain valid). Intended for tests and bench setup.
  void ResetForTesting();

 private:
  /// Lock-order level: `metrics` (innermost leaf, alongside the other
  /// telemetry sinks) -- nothing is called out while mu_ is held.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<MetricCounter>> counters_
      GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<MetricGauge>> gauges_ GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<MetricHistogram>> histograms_
      GUARDED_BY(mu_);
};

}  // namespace gpudb

#endif  // GPUDB_COMMON_METRICS_H_
