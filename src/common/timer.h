#ifndef GPUDB_COMMON_TIMER_H_
#define GPUDB_COMMON_TIMER_H_

#include <chrono>

namespace gpudb {

/// \brief Wall-clock stopwatch for the "measured" columns of the benchmark
/// harness (the "paper-shape" columns come from gpu::PerfModel instead; see
/// DESIGN.md section 5).
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  /// Elapsed milliseconds since construction or the last Restart().
  double ElapsedMs() const {
    return std::chrono::duration<double, std::milli>(Clock::now() - start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace gpudb

#endif  // GPUDB_COMMON_TIMER_H_
