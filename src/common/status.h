#ifndef GPUDB_COMMON_STATUS_H_
#define GPUDB_COMMON_STATUS_H_

#include <memory>
#include <string>
#include <string_view>
#include <utility>

namespace gpudb {

/// \brief Machine-readable category of a failure.
///
/// The library does not use exceptions (see DESIGN.md); every fallible API
/// returns a Status or a Result<T>. Codes follow the Arrow/Abseil convention.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kOutOfRange = 2,
  kNotImplemented = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kResourceExhausted = 6,
  kNotFound = 7,
  kCancelled = 8,
  kDeadlineExceeded = 9,
  kDeviceLost = 10,
};

/// \brief Returns a human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// \brief Result of an operation that can fail.
///
/// A Status is cheap to copy in the success case (a null pointer); failure
/// states carry a code and a message. Typical use:
///
///   Status s = device.RenderQuad(depth);
///   if (!s.ok()) return s;
///
/// or, with the convenience macro:
///
///   GPUDB_RETURN_NOT_OK(device.RenderQuad(depth));
///
/// The class is [[nodiscard]]: silently dropping a Status is a build error
/// (-Werror=unused-result) and a gpulint R1 diagnostic. The rare vetted
/// log-and-continue path must go through DropStatus() so the drop is
/// counted in metrics.
class [[nodiscard]] Status {
 public:
  /// Constructs a success status.
  Status() = default;

  Status(StatusCode code, std::string message) {
    if (code != StatusCode::kOk) {
      state_ = std::make_shared<State>(State{code, std::move(message)});
    }
  }

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  [[nodiscard]] static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  [[nodiscard]] static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  [[nodiscard]] static Status DeviceLost(std::string msg) {
    return Status(StatusCode::kDeviceLost, std::move(msg));
  }

  /// True iff the operation succeeded.
  bool ok() const { return state_ == nullptr; }

  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }

  /// The failure message; empty for OK statuses.
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->message;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsNotImplemented() const {
    return code() == StatusCode::kNotImplemented;
  }
  bool IsFailedPrecondition() const {
    return code() == StatusCode::kFailedPrecondition;
  }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }
  bool IsCancelled() const { return code() == StatusCode::kCancelled; }
  bool IsDeadlineExceeded() const {
    return code() == StatusCode::kDeadlineExceeded;
  }
  bool IsDeviceLost() const { return code() == StatusCode::kDeviceLost; }

 private:
  struct State {
    StatusCode code;
    std::string message;
  };
  // Null for OK; shared so Status copies are cheap.
  std::shared_ptr<const State> state_;
};

/// The one sanctioned way to drop a Status on a log-and-continue path.
///
/// Best-effort work (telemetry snapshots, query-log writes, cache refresh)
/// sometimes must swallow a failure rather than abort the query. A bare
/// discard is invisible; DropStatus makes the drop observable: every non-OK
/// drop increments the `queries.dropped_status` counter (and a per-code
/// `queries.dropped_status.<Code>` counter), so a dashboard can tell
/// "nothing failed" from "failures were eaten". OK statuses are free.
///
/// gpulint rule R1 treats DropStatus as consumption; a `(void)` cast is NOT
/// accepted for Status-returning calls.
void DropStatus(const Status& status, std::string_view context);

/// Propagates a non-OK Status to the caller.
#define GPUDB_RETURN_NOT_OK(expr)                \
  do {                                           \
    ::gpudb::Status _st = (expr);                \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace gpudb

#endif  // GPUDB_COMMON_STATUS_H_
