#ifndef GPUDB_COMMON_METRIC_NAMES_H_
#define GPUDB_COMMON_METRIC_NAMES_H_

#include <cstddef>
#include <string_view>

namespace gpudb {
namespace metric_names {

/// \brief Central registry of every metric name the engine emits.
///
/// Dashboards, alert rules, and the Prometheus scrape config key off these
/// strings, so a counter that is renamed at a call site but not here (or
/// vice versa) leaves a panel silently flat. gpulint rule R5 closes the
/// loop: every string literal passed to `MetricsRegistry::counter()`,
/// `gauge()`, or `histogram()` -- or to `Tracer::Counter()`, whose track
/// names double as metric names -- anywhere under src/ must match an entry
/// in this table, and names built from a dynamic suffix (e.g.
/// `"executor." + op`) must match a `*` wildcard entry.
///
/// To add a metric: pick a dotted name, add it here (keep the table
/// sorted), then use the same literal at the call site. Removing a metric
/// means removing it from both places — gpulint does not flag unused
/// registry entries, but reviewers should prune them.
inline constexpr std::string_view kAll[] = {
    "admission.queue_depth",
    "admission.rejected",
    "analyze.tables",
    "executor.*",
    "faults.injected",
    "faults.injected.alloc",
    "faults.injected.occlusion",
    "faults.injected.pass",
    "faults.injected.readback",
    "gpu.alpha_killed",
    "gpu.band_imbalance",
    "gpu.band_ms",
    "gpu.bytes_read_back",
    "gpu.bytes_swapped",
    "gpu.bytes_uploaded",
    "gpu.depth_killed",
    "gpu.engine_busy_ms",
    "gpu.fragments_generated",
    "gpu.occlusion_readbacks",
    "gpu.passes",
    "gpu.plane_bytes_read",
    "gpu.plane_bytes_written",
    "gpu.stencil_killed",
    "gpu.texture_swap_ins",
    "plancache.evictions",
    "plancache.hits",
    "plancache.misses",
    "planner.fused_plans",
    "planner.misestimates",
    "pool.device_state",
    "pool.failovers",
    "queries.deadline_exceeded",
    "queries.dropped_status",
    "queries.dropped_status.*",
    "queries.fell_back",
    "queries.fell_back.*",
    "queries.retried",
    "queries.retry_attempts",
    "resilience.breaker_opened",
    "sql.exec_ms",
    "sql.queries",
    "sql.query_wall_ms",
    "sql.queue_wait_ms",
    "sql.slow_queries",
    "tenant.throttled",
};

inline constexpr size_t kCount = sizeof(kAll) / sizeof(kAll[0]);

/// True when `name` is covered by the registry: an exact entry, or a
/// wildcard entry whose prefix (the part before '*') starts `name`.
/// Call sites do not need this at runtime — it exists so tests can assert
/// that what a process actually registered stays inside the table.
inline bool IsRegistered(std::string_view name) {
  for (std::string_view entry : kAll) {
    if (!entry.empty() && entry.back() == '*') {
      if (name.size() > entry.size() - 1 &&
          name.substr(0, entry.size() - 1) == entry.substr(0, entry.size() - 1))
        return true;
    } else if (name == entry) {
      return true;
    }
  }
  return false;
}

}  // namespace metric_names
}  // namespace gpudb

#endif  // GPUDB_COMMON_METRIC_NAMES_H_
