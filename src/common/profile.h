#ifndef GPUDB_COMMON_PROFILE_H_
#define GPUDB_COMMON_PROFILE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace gpudb {

/// \brief Deep per-pass pipeline counters (gpuprof, DESIGN.md §13).
///
/// Every field is a deterministic function of the pass inputs: kill counts
/// come from the fragment tests themselves and the plane-traffic fields from
/// the bandwidth model applied to those counts, so two runs of the same pass
/// -- at any thread count -- produce bit-identical PassProfiles. Wall-clock
/// measurements (band timings, engine busy time) deliberately live outside
/// this struct, in metrics histograms and trace counter tracks.
struct PassProfile {
  /// Fragments removed before any depth-plane access: fragment-program
  /// KIL (discard) plus fixed-function alpha-test failures.
  uint64_t alpha_killed = 0;
  /// Fragments removed by the stencil function (Op1 path).
  uint64_t stencil_killed = 0;
  /// Fragments that reached the depth unit (survived alpha + stencil).
  uint64_t depth_tested = 0;
  /// Depth-tested fragments killed by depth bounds or the depth compare
  /// (Op2 path).
  uint64_t depth_killed = 0;
  /// Fragments counted by an active occlusion query.
  uint64_t occlusion_samples = 0;
  /// Modeled plane traffic: stencil reads are 1 byte, depth reads/writes 4
  /// bytes, color writes 16 bytes (4 float32 channels).
  uint64_t plane_bytes_read = 0;
  uint64_t plane_bytes_written = 0;

  void Merge(const PassProfile& other) {
    alpha_killed += other.alpha_killed;
    stencil_killed += other.stencil_killed;
    depth_tested += other.depth_tested;
    depth_killed += other.depth_killed;
    occlusion_samples += other.occlusion_samples;
    plane_bytes_read += other.plane_bytes_read;
    plane_bytes_written += other.plane_bytes_written;
  }

  bool operator==(const PassProfile&) const = default;
};

/// \brief Aggregated profile for all passes sharing one label ("compare",
/// "stencil_reduce", ...), as surfaced by the gpudb_profile system table and
/// EXPLAIN PROFILE.
struct PassProfileGroup {
  std::string label;
  uint64_t passes = 0;
  uint64_t fragments = 0;         ///< fragments rasterized
  uint64_t fragments_passed = 0;  ///< fragments that reached the color stage
  uint64_t fused_passes = 0;      ///< passes the planner fused (DESIGN.md §14)
  uint64_t cache_hits = 0;        ///< depth-plane cache restores
  PassProfile prof;
};

/// \brief Process-wide switch and aggregation point for deep profiling.
///
/// Disabled by default; `enabled()` is a relaxed atomic load the Device
/// reads once per pass, and the per-fragment counter increments it gates are
/// compiled out of the kernels' cold instantiation (QuadRowKernel<false>),
/// so the profiler costs nothing measurable when off and <5% when on.
///
/// RecordPass aggregates by pass label under a mutex -- called once per
/// pass, not per fragment, so contention is irrelevant. RecordBandTimings
/// feeds the wall-clock side: the "gpu.band_ms" histogram, the
/// "gpu.band_imbalance" gauge (max band time over mean, 1.0 = perfectly
/// balanced), and per-band Chrome-trace counter samples when tracing.
class Profiler {
 public:
  Profiler() = default;
  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  static Profiler& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Folds one finished pass into the per-label aggregate. Labels appear in
  /// Snapshot() in sorted order, so the aggregate view is deterministic
  /// regardless of pass interleaving. `fused` and `cache_hit` carry the
  /// pass's planner fast-path marks into the per-label tallies.
  void RecordPass(std::string_view label, uint64_t fragments,
                  uint64_t fragments_passed, const PassProfile& prof,
                  bool fused = false, bool cache_hit = false);

  /// Records one ParallelFor dispatch's per-band wall times (milliseconds).
  /// Updates the "gpu.band_ms" histogram and the "gpu.band_imbalance" gauge
  /// and, when the global Tracer is enabled, emits one counter sample per
  /// band on the "gpu.band_ms" track.
  void RecordBandTimings(const std::vector<double>& band_ms);

  /// Point-in-time copy of every label aggregate, sorted by label.
  std::vector<PassProfileGroup> Snapshot() const;

  /// Drops all label aggregates (the enabled flag is left alone).
  void ResetForTesting();

 private:
  std::atomic<bool> enabled_{false};  // lint: lock-free (relaxed atomic)
  /// Lock-order level: `profile` (innermost leaf) -- RecordPass holds mu_
  /// only for the map fold, never into other subsystems.
  mutable Mutex mu_;
  std::map<std::string, PassProfileGroup, std::less<>> groups_
      GUARDED_BY(mu_);
};

/// \brief Renders profile groups as the fixed-width counter table EXPLAIN
/// PROFILE appends below the operator tree. Only deterministic counters are
/// printed -- no wall times -- so the rendered text is byte-identical across
/// thread counts (the bit-stability acceptance check diffs this string).
std::string FormatPassProfileTable(const std::vector<PassProfileGroup>& groups);

}  // namespace gpudb

#endif  // GPUDB_COMMON_PROFILE_H_
