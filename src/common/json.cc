#include "src/common/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace gpudb {
namespace json {

Value Value::Array(std::vector<Value> items) {
  Value v;
  v.type_ = Type::kArray;
  v.array_ = std::move(items);
  return v;
}

Value Value::Object(std::map<std::string, Value> members) {
  Value v;
  v.type_ = Type::kObject;
  v.object_ = std::move(members);
  return v;
}

const Value* Value::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  auto it = object_.find(std::string(key));
  return it == object_.end() ? nullptr : &it->second;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view input) : input_(input) {}

  Result<Value> Parse() {
    GPUDB_ASSIGN_OR_RETURN(Value v, ParseValue());
    SkipWhitespace();
    if (pos_ != input_.size()) {
      return Error("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Error(const std::string& message) const {
    return Status::InvalidArgument("JSON: " + message + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWhitespace() {
    while (pos_ < input_.size()) {
      const char c = input_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < input_.size() && input_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool ConsumeWord(std::string_view word) {
    if (input_.substr(pos_, word.size()) == word) {
      pos_ += word.size();
      return true;
    }
    return false;
  }

  Result<Value> ParseValue() {
    SkipWhitespace();
    if (pos_ >= input_.size()) return Error("unexpected end of input");
    const char c = input_[pos_];
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        GPUDB_ASSIGN_OR_RETURN(std::string s, ParseString());
        return Value(std::move(s));
      }
      case 't':
        if (ConsumeWord("true")) return Value(true);
        return Error("invalid literal");
      case 'f':
        if (ConsumeWord("false")) return Value(false);
        return Error("invalid literal");
      case 'n':
        if (ConsumeWord("null")) return Value();
        return Error("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<Value> ParseObject() {
    ++pos_;  // '{'
    std::map<std::string, Value> members;
    SkipWhitespace();
    if (Consume('}')) return Value::Object(std::move(members));
    while (true) {
      SkipWhitespace();
      if (pos_ >= input_.size() || input_[pos_] != '"') {
        return Error("expected object key string");
      }
      GPUDB_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWhitespace();
      if (!Consume(':')) return Error("expected ':' after object key");
      GPUDB_ASSIGN_OR_RETURN(Value value, ParseValue());
      members.emplace(std::move(key), std::move(value));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume('}')) return Value::Object(std::move(members));
      return Error("expected ',' or '}' in object");
    }
  }

  Result<Value> ParseArray() {
    ++pos_;  // '['
    std::vector<Value> items;
    SkipWhitespace();
    if (Consume(']')) return Value::Array(std::move(items));
    while (true) {
      GPUDB_ASSIGN_OR_RETURN(Value v, ParseValue());
      items.push_back(std::move(v));
      SkipWhitespace();
      if (Consume(',')) continue;
      if (Consume(']')) return Value::Array(std::move(items));
      return Error("expected ',' or ']' in array");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < input_.size()) {
      const char c = input_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= input_.size()) break;
      const char esc = input_[pos_++];
      switch (esc) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > input_.size()) return Error("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = input_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else return Error("invalid \\u escape");
          }
          // UTF-8 encode (the exporters only ever emit ASCII escapes, but
          // accept the full BMP for round-trip robustness).
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          return Error("invalid escape character");
      }
    }
    return Error("unterminated string");
  }

  Result<Value> ParseNumber() {
    const size_t start = pos_;
    if (Consume('-')) {}
    while (pos_ < input_.size() &&
           (std::isdigit(static_cast<unsigned char>(input_[pos_])) ||
            input_[pos_] == '.' || input_[pos_] == 'e' || input_[pos_] == 'E' ||
            input_[pos_] == '+' || input_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Error("expected a value");
    const std::string text(input_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(text.c_str(), &end);
    if (end != text.c_str() + text.size()) return Error("malformed number");
    return Value(value);
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

Result<Value> Parse(std::string_view input) {
  return Parser(input).Parse();
}

std::string Quote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
  return out;
}

std::string Number(double value) {
  if (!std::isfinite(value)) return "0";
  if (value == std::floor(value) && std::abs(value) < 9.007199254740992e15) {
    return std::to_string(static_cast<long long>(value));
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return std::string(buf);
}

}  // namespace json
}  // namespace gpudb
