#include "src/common/query_log.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

#include "src/common/metrics.h"

namespace gpudb {

QueryLog::QueryLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

QueryLog& QueryLog::Global() {
  static QueryLog* log = [] {
    auto* l = new QueryLog();
    if (const char* env = std::getenv("GPUDB_SLOW_MS")) {
      char* end = nullptr;
      const double ms = std::strtod(env, &end);
      if (end != env) l->set_slow_threshold_ms(ms);
    }
    return l;
  }();
  return *log;
}

void QueryLog::set_slow_threshold_ms(double ms) {
  MutexLock lock(&mu_);
  slow_threshold_ms_ = ms;
}

double QueryLog::slow_threshold_ms() const {
  MutexLock lock(&mu_);
  return slow_threshold_ms_;
}

void QueryLog::set_echo_slow_to_stderr(bool on) {
  MutexLock lock(&mu_);
  echo_slow_ = on;
}

uint64_t QueryLog::Add(QueryLogEntry entry) {
  MetricsRegistry::Global().counter("sql.queries").Increment();
  MetricsRegistry::Global()
      .histogram("sql.query_wall_ms")
      .Record(entry.wall_ms);
  MetricsRegistry::Global()
      .histogram("sql.queue_wait_ms")
      .Record(entry.queue_ms);
  MetricsRegistry::Global().histogram("sql.exec_ms").Record(entry.exec_ms);
  MutexLock lock(&mu_);
  entry.id = next_id_++;
  entry.slow =
      slow_threshold_ms_ > 0.0 && entry.wall_ms >= slow_threshold_ms_;
  if (entry.slow) {
    MetricsRegistry::Global().counter("sql.slow_queries").Increment();
    if (echo_slow_) {
      std::fprintf(stderr, "[slow-query] %.3f ms (threshold %.3f): %s\n",
                   entry.wall_ms, slow_threshold_ms_, entry.sql.c_str());
    }
  }
  const uint64_t id = entry.id;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(entry));
  } else {
    ring_[head_] = std::move(entry);
    head_ = (head_ + 1) % capacity_;
  }
  ++total_recorded_;
  return id;
}

std::vector<QueryLogEntry> QueryLog::Entries() const {
  MutexLock lock(&mu_);
  std::vector<QueryLogEntry> out;
  out.reserve(ring_.size());
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  }
  return out;
}

std::vector<QueryLogEntry> QueryLog::SlowEntries() const {
  std::vector<QueryLogEntry> out;
  for (QueryLogEntry& e : Entries()) {
    if (e.slow) out.push_back(std::move(e));
  }
  return out;
}

size_t QueryLog::size() const {
  MutexLock lock(&mu_);
  return ring_.size();
}

uint64_t QueryLog::total_recorded() const {
  MutexLock lock(&mu_);
  return total_recorded_;
}

void QueryLog::Clear() {
  MutexLock lock(&mu_);
  ring_.clear();
  head_ = 0;
  total_recorded_ = 0;
}

}  // namespace gpudb
