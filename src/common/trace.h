#ifndef GPUDB_COMMON_TRACE_H_
#define GPUDB_COMMON_TRACE_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace gpudb {

/// \brief One key/value annotation on a span. Numeric tags keep their value
/// so exporters can emit unquoted JSON numbers and analyzers (EXPLAIN
/// ANALYZE) can read them back without parsing strings.
struct TraceTag {
  std::string key;
  std::string text;      ///< String form (always set).
  double number = 0.0;   ///< Numeric value when is_number.
  bool is_number = false;
};

/// \brief A closed span as recorded by the Tracer sink.
///
/// Spans form a forest: `parent_id` is the id of the span that was active on
/// the same thread when this one opened (0 = no parent). `start_us`/`end_us`
/// are microseconds on a process-local monotonic clock, so durations and
/// ordering are meaningful but absolute values are not wall-clock.
struct FinishedSpan {
  uint64_t id = 0;
  uint64_t parent_id = 0;
  uint64_t thread_id = 0;  ///< Small per-process ordinal, not an OS tid.
  std::string name;
  int64_t start_us = 0;
  int64_t end_us = 0;
  std::vector<TraceTag> tags;

  int64_t duration_us() const { return end_us - start_us; }

  /// Numeric tag lookup; returns `fallback` when absent or non-numeric.
  double NumberTag(std::string_view key, double fallback = 0.0) const;
  /// String tag lookup; returns "" when absent.
  std::string_view TextTag(std::string_view key) const;
};

/// \brief One point on a named counter track (Chrome trace_event "C" phase):
/// per-band wall times, engine busy time, queue depths. Samples share the
/// spans' monotonic microsecond clock so tracks line up under the spans in
/// the trace viewer.
struct CounterSample {
  std::string name;
  double value = 0.0;
  int64_t ts_us = 0;
  uint64_t thread_id = 0;
};

/// \brief Thread-safe sink of finished spans.
///
/// Tracing is off by default: an inactive TraceSpan costs one relaxed atomic
/// load, so instrumentation can stay in hot simulator paths (Device passes)
/// unconditionally. A process-wide instance is available via Global(); tests
/// may construct private tracers to stay isolated.
///
/// Span nesting is tracked with a thread-local stack of open span ids per
/// tracer use (the stack is shared, so interleaving spans from different
/// Tracer instances on one thread would cross-parent; the codebase only ever
/// nests spans of a single tracer at a time).
class Tracer {
 public:
  Tracer() = default;
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  static Tracer& Global();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Number of spans finished so far; use as a mark for FinishedSince.
  size_t FinishedCount() const;

  /// Copies the spans finished after a FinishedCount() mark (in completion
  /// order: children close before their parents).
  std::vector<FinishedSpan> FinishedSince(size_t mark) const;

  /// All finished spans.
  std::vector<FinishedSpan> Finished() const { return FinishedSince(0); }

  /// Records one sample on a counter track. No-op while disabled. Counter
  /// names are metric names and must be registered in metric_names.h
  /// (gpulint R5 checks Counter() literals like counter()/histogram() ones).
  void Counter(std::string_view name, double value);

  /// Number of counter samples recorded so far; mark for CounterSamplesSince.
  size_t CounterCount() const;

  /// Copies the counter samples recorded after a CounterCount() mark.
  std::vector<CounterSample> CounterSamplesSince(size_t mark) const;

  /// All recorded counter samples, in record order.
  std::vector<CounterSample> CounterSamples() const {
    return CounterSamplesSince(0);
  }

  /// Drops all finished spans and counter samples (open spans are unaffected
  /// and will still be recorded when they close).
  void Clear();

  /// Serializes spans in the Chrome trace_event JSON format ("traceEvents"
  /// array of complete "X" events) loadable by chrome://tracing / Perfetto.
  static std::string ToChromeTrace(const std::vector<FinishedSpan>& spans);

  /// As above, with counter tracks: each CounterSample becomes a "C"-phase
  /// event whose args carry the value, rendered by the viewer as a stacked
  /// track per counter name.
  static std::string ToChromeTrace(const std::vector<FinishedSpan>& spans,
                                   const std::vector<CounterSample>& counters);

 private:
  friend class TraceSpan;

  /// Opens a span; returns its id (0 when tracing is disabled).
  uint64_t Begin(std::string_view name);
  void End(uint64_t id, std::vector<TraceTag> tags);

  struct OpenSpan {
    uint64_t id = 0;
    uint64_t parent_id = 0;
    uint64_t thread_id = 0;
    std::string name;
    int64_t start_us = 0;
  };

  std::atomic<bool> enabled_{false};   // lint: lock-free (relaxed atomic)
  std::atomic<uint64_t> next_id_{1};   // lint: lock-free (relaxed atomic)
  /// Lock-order level: `trace` (innermost leaf) -- span bookkeeping only,
  /// nothing is called out while mu_ is held.
  mutable Mutex mu_;
  std::vector<OpenSpan> open_ GUARDED_BY(mu_);
  std::vector<FinishedSpan> finished_ GUARDED_BY(mu_);
  std::vector<CounterSample> counters_ GUARDED_BY(mu_);
};

/// \brief RAII span handle: opens on construction, closes on destruction.
///
///   {
///     TraceSpan span("Count");
///     span.AddTag("rows", rows);
///     ... work ...
///   }  // span closes here
///
/// When the tracer is disabled at construction the span is inert (tags are
/// dropped, nothing is recorded).
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name,
                     Tracer* tracer = &Tracer::Global());
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  bool active() const { return id_ != 0; }
  uint64_t id() const { return id_; }

  void AddTag(std::string_view key, std::string_view value);
  void AddTag(std::string_view key, const char* value) {
    AddTag(key, std::string_view(value));
  }
  void AddTag(std::string_view key, double value);
  void AddTag(std::string_view key, uint64_t value) {
    AddTag(key, static_cast<double>(value));
  }
  void AddTag(std::string_view key, int value) {
    AddTag(key, static_cast<double>(value));
  }

 private:
  Tracer* tracer_;
  uint64_t id_;
  std::vector<TraceTag> tags_;
};

}  // namespace gpudb

#endif  // GPUDB_COMMON_TRACE_H_
