#ifndef GPUDB_COMMON_MUTEX_H_
#define GPUDB_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "src/common/thread_annotations.h"

namespace gpudb {

/// \brief Annotated std::mutex wrapper (the repo's only lockable).
///
/// libstdc++ does not annotate std::mutex, so clang's capability analysis
/// cannot see through std::lock_guard / std::unique_lock. Every
/// mutex-holding class therefore uses this wrapper plus MutexLock, which
/// carry the CAPABILITY/ACQUIRE/RELEASE attributes the analysis needs.
/// This header is the single place allowed to call the underlying
/// .lock()/.unlock() (gpulint R7 bans naked lock calls everywhere else and
/// exempts exactly this file).
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }

  /// The wrapped handle, for CondVar's adopt/release dance only.
  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// \brief RAII scoped holder; the only sanctioned way to take a Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// \brief Condition variable bound to Mutex.
///
/// Wait/WaitUntil take the Mutex REQUIRES-style (the caller holds it via a
/// MutexLock in scope), adopt the native handle for the wait, and release
/// it back so the MutexLock destructor stays the sole unlocker. Callers
/// re-check their predicate in a while loop at the call site -- that keeps
/// every guarded-field access lexically inside the MutexLock scope, which
/// is what the capability analysis can verify (a predicate lambda would be
/// analyzed without the capability held).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> handle(mu.native(), std::adopt_lock);
    cv_.wait(handle);
    handle.release();
  }

  /// Waits until `deadline`; true = woken (signal or spurious) before it,
  /// false = timed out. Same re-check contract as Wait.
  bool WaitUntil(Mutex& mu, std::chrono::steady_clock::time_point deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> handle(mu.native(), std::adopt_lock);
    const std::cv_status status = cv_.wait_until(handle, deadline);
    handle.release();
    return status == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace gpudb

#endif  // GPUDB_COMMON_MUTEX_H_
