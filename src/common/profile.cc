#include "src/common/profile.h"

#include <algorithm>
#include <cstdio>

#include "src/common/metrics.h"
#include "src/common/trace.h"

namespace gpudb {

Profiler& Profiler::Global() {
  static Profiler* profiler = new Profiler();
  return *profiler;
}

void Profiler::RecordPass(std::string_view label, uint64_t fragments,
                          uint64_t fragments_passed, const PassProfile& prof,
                          bool fused, bool cache_hit) {
  MutexLock lock(&mu_);
  auto it = groups_.find(label);
  if (it == groups_.end()) {
    it = groups_.emplace(std::string(label), PassProfileGroup{}).first;
    it->second.label = std::string(label);
  }
  PassProfileGroup& g = it->second;
  ++g.passes;
  g.fragments += fragments;
  g.fragments_passed += fragments_passed;
  if (fused) ++g.fused_passes;
  if (cache_hit) ++g.cache_hits;
  g.prof.Merge(prof);
}

void Profiler::RecordBandTimings(const std::vector<double>& band_ms) {
  if (band_ms.empty()) return;
  // Cached instrument references: RecordBandTimings runs once per pass, but
  // a bench sweep issues tens of thousands of passes.
  static MetricHistogram& band_hist =
      MetricsRegistry::Global().histogram("gpu.band_ms");
  static MetricGauge& imbalance =
      MetricsRegistry::Global().gauge("gpu.band_imbalance");
  double sum = 0.0;
  double max = 0.0;
  for (double ms : band_ms) {
    band_hist.Record(ms);
    sum += ms;
    max = std::max(max, ms);
  }
  const double mean = sum / static_cast<double>(band_ms.size());
  imbalance.Set(mean > 0.0 ? max / mean : 1.0);
  Tracer& tracer = Tracer::Global();
  if (tracer.enabled()) {
    for (double ms : band_ms) tracer.Counter("gpu.band_ms", ms);
  }
}

std::vector<PassProfileGroup> Profiler::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<PassProfileGroup> out;
  out.reserve(groups_.size());
  for (const auto& [label, group] : groups_) out.push_back(group);
  return out;  // std::map iteration order: already sorted by label.
}

void Profiler::ResetForTesting() {
  MutexLock lock(&mu_);
  groups_.clear();
}

std::string FormatPassProfileTable(
    const std::vector<PassProfileGroup>& groups) {
  std::string out;
  if (groups.empty()) return out;
  size_t label_width = 4;  // "pass"
  for (const PassProfileGroup& g : groups) {
    label_width = std::max(label_width, g.label.size());
  }
  char line[512];
  std::snprintf(line, sizeof(line),
                "%-*s %6s %12s %12s %12s %12s %12s %12s %10s %12s %12s %6s "
                "%6s\n",
                static_cast<int>(label_width), "pass", "count", "fragments",
                "alpha_kill", "stencil_kill", "depth_test", "depth_kill",
                "passed", "occl", "plane_rd_B", "plane_wr_B", "fused",
                "c_hit");
  out += line;
  for (const PassProfileGroup& g : groups) {
    std::snprintf(line, sizeof(line),
                  "%-*s %6llu %12llu %12llu %12llu %12llu %12llu %12llu "
                  "%10llu %12llu %12llu %6llu %6llu\n",
                  static_cast<int>(label_width), g.label.c_str(),
                  static_cast<unsigned long long>(g.passes),
                  static_cast<unsigned long long>(g.fragments),
                  static_cast<unsigned long long>(g.prof.alpha_killed),
                  static_cast<unsigned long long>(g.prof.stencil_killed),
                  static_cast<unsigned long long>(g.prof.depth_tested),
                  static_cast<unsigned long long>(g.prof.depth_killed),
                  static_cast<unsigned long long>(g.fragments_passed),
                  static_cast<unsigned long long>(g.prof.occlusion_samples),
                  static_cast<unsigned long long>(g.prof.plane_bytes_read),
                  static_cast<unsigned long long>(g.prof.plane_bytes_written),
                  static_cast<unsigned long long>(g.fused_passes),
                  static_cast<unsigned long long>(g.cache_hits));
    out += line;
  }
  return out;
}

}  // namespace gpudb
