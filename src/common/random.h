#ifndef GPUDB_COMMON_RANDOM_H_
#define GPUDB_COMMON_RANDOM_H_

#include <cstdint>

namespace gpudb {

/// \brief Small, fast, deterministic PRNG (xoshiro256**).
///
/// Workload generators need reproducible streams so that experiments and
/// tests are deterministic across runs and platforms; std::mt19937 +
/// std::*_distribution are not guaranteed to be portable across standard
/// library implementations, so we implement the generator and the
/// distributions we need ourselves.
class Random {
 public:
  /// Seeds the generator. Equal seeds yield equal streams.
  explicit Random(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform in [0, bound) for bound > 0.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi).
  double NextDouble(double lo, double hi);

  /// Standard normal variate (Box-Muller).
  double NextGaussian();

  /// Lognormal variate: exp(mu + sigma * N(0,1)).
  double NextLognormal(double mu, double sigma);

 private:
  uint64_t s_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace gpudb

#endif  // GPUDB_COMMON_RANDOM_H_
