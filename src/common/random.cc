#include "src/common/random.h"

#include <cmath>
#include <numbers>

namespace gpudb {

namespace {

// splitmix64, used to expand the user seed into generator state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Random::Random(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Random::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::NextUint64(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    const uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

double Random::NextDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Random::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Random::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 in (0,1] so log() is finite.
  double u1 = 1.0 - NextDouble();
  double u2 = NextDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Random::NextLognormal(double mu, double sigma) {
  return std::exp(mu + sigma * NextGaussian());
}

}  // namespace gpudb
