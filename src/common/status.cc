#include "src/common/status.h"

#include "src/common/metrics.h"

namespace gpudb {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotImplemented:
      return "NotImplemented";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kDeviceLost:
      return "DeviceLost";
  }
  return "Unknown";
}

void DropStatus(const Status& status, std::string_view context) {
  if (status.ok()) return;
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.counter("queries.dropped_status").Increment();
  std::string per_code("queries.dropped_status.");
  per_code += StatusCodeToString(status.code());
  registry.counter(per_code).Increment();
  (void)context;  // Recorded for readers of the call site, not telemetry.
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code()));
  out += ": ";
  out += message();
  return out;
}

}  // namespace gpudb
