#include "src/sql/parser.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/sql/explain.h"
#include "src/sql/lexer.h"

namespace gpudb {
namespace sql {

namespace {

using gpu::CompareOp;
using predicate::Expr;
using predicate::ExprPtr;

/// Recursive-descent parser over the token stream. Grammar:
///
///   query      := SELECT select_item FROM identifier [WHERE or_expr] [';']
///   select_item:= '*' | COUNT '(' '*' ')' | agg '(' column ')'
///              |  KTH_LARGEST '(' column ',' number ')'
///   or_expr    := and_expr (OR and_expr)*
///   and_expr   := not_expr (AND not_expr)*
///   not_expr   := NOT not_expr | primary
///   primary    := '(' or_expr ')' | comparison
///   comparison := column cmp (column | number)
///              |  number cmp column
///              |  column BETWEEN number AND number
class Parser {
 public:
  Parser(std::vector<Token> tokens, const db::Table& table)
      : tokens_(std::move(tokens)), table_(table) {}

  Result<Query> Parse() {
    Query query;
    if (Peek().kind == TokenKind::kAnalyze) {
      // ANALYZE <table> : statement-initial ANALYZE is unambiguous (the
      // EXPLAIN ANALYZE prefix starts with EXPLAIN).
      Next();
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected table name after ANALYZE");
      }
      query.kind = Query::Kind::kAnalyzeTable;
      query.table_name = Next().text;
      if (Peek().kind == TokenKind::kSemicolon) Next();
      if (Peek().kind != TokenKind::kEnd) {
        return Error("unexpected trailing input");
      }
      return query;
    }
    if (Peek().kind == TokenKind::kExplain) {
      Next();
      if (Peek().kind == TokenKind::kProfile) {
        // EXPLAIN PROFILE: EXPLAIN ANALYZE plus the deep per-pass counter
        // table; every downstream dispatch keyed on explain_analyze works
        // unchanged.
        Next();
        query.explain_profile = true;
        query.explain_analyze = true;
      } else {
        GPUDB_RETURN_NOT_OK(Expect(TokenKind::kAnalyze));
        query.explain_analyze = true;
      }
    }
    GPUDB_RETURN_NOT_OK(Expect(TokenKind::kSelect));
    GPUDB_RETURN_NOT_OK(ParseSelectItem(&query));
    GPUDB_RETURN_NOT_OK(Expect(TokenKind::kFrom));
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected table name after FROM");
    }
    query.table_name = Next().text;
    if (Peek().kind == TokenKind::kWhere) {
      Next();
      GPUDB_ASSIGN_OR_RETURN(query.where, ParseOrExpr());
    }
    if (Peek().kind == TokenKind::kGroup) {
      Next();
      GPUDB_RETURN_NOT_OK(Expect(TokenKind::kBy));
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected column name after GROUP BY");
      }
      if (query.kind != Query::Kind::kAggregate) {
        return Error("GROUP BY requires an aggregate select item");
      }
      if (query.where != nullptr) {
        return Status::NotImplemented(
            "GROUP BY with a WHERE clause is not supported by the grouped "
            "execution path");
      }
      query.group_by_column = Next().text;
      query.kind = Query::Kind::kGroupBy;
    }
    if (Peek().kind == TokenKind::kOrder) {
      Next();
      GPUDB_RETURN_NOT_OK(Expect(TokenKind::kBy));
      if (query.kind != Query::Kind::kSelectRows) {
        return Error("ORDER BY is supported for SELECT * queries");
      }
      if (query.where != nullptr) {
        return Status::NotImplemented(
            "ORDER BY with a WHERE clause is not supported (the sort "
            "network runs over the full relation)");
      }
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected column name after ORDER BY");
      }
      query.order_by_column = Next().text;
      if (Peek().kind == TokenKind::kAsc) {
        Next();
      } else if (Peek().kind == TokenKind::kDesc) {
        Next();
        query.order_descending = true;
      }
    }
    if (Peek().kind == TokenKind::kLimit) {
      Next();
      if (query.kind != Query::Kind::kSelectRows) {
        return Error("LIMIT is supported for SELECT * queries");
      }
      if (Peek().kind != TokenKind::kNumber) {
        return Error("expected row count after LIMIT");
      }
      const double n = Next().number;
      if (n < 1 || n != std::floor(n)) {
        return Error("LIMIT must be a positive integer");
      }
      query.limit = static_cast<uint64_t>(n);
    }
    if (Peek().kind == TokenKind::kSemicolon) Next();
    if (Peek().kind != TokenKind::kEnd) {
      return Error("unexpected trailing input");
    }
    return query;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    const size_t idx =
        std::min(pos_ + static_cast<size_t>(ahead), tokens_.size() - 1);
    return tokens_[idx];
  }
  const Token& Next() { return tokens_[std::min(pos_++, tokens_.size() - 1)]; }

  Status Error(const std::string& message) const {
    return Status::InvalidArgument(
        message + " at position " + std::to_string(Peek().position) +
        " (near '" + std::string(ToString(Peek().kind)) + "')");
  }

  Status Expect(TokenKind kind) {
    if (Peek().kind != kind) {
      return Error("expected '" + std::string(ToString(kind)) + "'");
    }
    Next();
    return Status::OK();
  }

  Result<size_t> ResolveColumn(const Token& token) {
    auto idx = table_.ColumnIndex(token.text);
    if (!idx.ok()) {
      return Status::InvalidArgument("unknown column '" + token.text +
                                     "' at position " +
                                     std::to_string(token.position));
    }
    return idx.ValueOrDie();
  }

  Status ParseSelectItem(Query* query) {
    switch (Peek().kind) {
      case TokenKind::kStar:
        Next();
        query->kind = Query::Kind::kSelectRows;
        return Status::OK();
      case TokenKind::kCount: {
        Next();
        GPUDB_RETURN_NOT_OK(Expect(TokenKind::kLParen));
        if (Peek().kind == TokenKind::kStar) {
          Next();
          GPUDB_RETURN_NOT_OK(Expect(TokenKind::kRParen));
          query->kind = Query::Kind::kCount;
          return Status::OK();
        }
        // COUNT(column) behaves as COUNT(*) here (no NULLs in this model).
        if (Peek().kind != TokenKind::kIdentifier) {
          return Error("expected '*' or column in COUNT()");
        }
        query->column = Next().text;
        GPUDB_RETURN_NOT_OK(Expect(TokenKind::kRParen));
        query->kind = Query::Kind::kAggregate;
        query->aggregate = core::AggregateKind::kCount;
        return Status::OK();
      }
      case TokenKind::kSum:
      case TokenKind::kAvg:
      case TokenKind::kMin:
      case TokenKind::kMax:
      case TokenKind::kMedian: {
        const TokenKind agg = Next().kind;
        GPUDB_RETURN_NOT_OK(Expect(TokenKind::kLParen));
        if (Peek().kind != TokenKind::kIdentifier) {
          return Error("expected column name in aggregate");
        }
        query->column = Next().text;
        GPUDB_RETURN_NOT_OK(Expect(TokenKind::kRParen));
        query->kind = Query::Kind::kAggregate;
        switch (agg) {
          case TokenKind::kSum:
            query->aggregate = core::AggregateKind::kSum;
            break;
          case TokenKind::kAvg:
            query->aggregate = core::AggregateKind::kAvg;
            break;
          case TokenKind::kMin:
            query->aggregate = core::AggregateKind::kMin;
            break;
          case TokenKind::kMax:
            query->aggregate = core::AggregateKind::kMax;
            break;
          default:
            query->aggregate = core::AggregateKind::kMedian;
            break;
        }
        return Status::OK();
      }
      case TokenKind::kKthLargest: {
        Next();
        GPUDB_RETURN_NOT_OK(Expect(TokenKind::kLParen));
        if (Peek().kind != TokenKind::kIdentifier) {
          return Error("expected column name in KTH_LARGEST");
        }
        query->column = Next().text;
        GPUDB_RETURN_NOT_OK(Expect(TokenKind::kComma));
        if (Peek().kind != TokenKind::kNumber) {
          return Error("expected k in KTH_LARGEST(column, k)");
        }
        const double k = Next().number;
        if (k < 1 || k != std::floor(k)) {
          return Error("k must be a positive integer");
        }
        query->k = static_cast<uint64_t>(k);
        GPUDB_RETURN_NOT_OK(Expect(TokenKind::kRParen));
        query->kind = Query::Kind::kKthLargest;
        return Status::OK();
      }
      default:
        return Error("expected '*', COUNT(*), an aggregate, or KTH_LARGEST");
    }
  }

  Result<ExprPtr> ParseOrExpr() {
    GPUDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAndExpr());
    while (Peek().kind == TokenKind::kOr) {
      Next();
      GPUDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAndExpr());
      lhs = Expr::Or(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAndExpr() {
    GPUDB_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNotExpr());
    while (Peek().kind == TokenKind::kAnd) {
      Next();
      GPUDB_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNotExpr());
      lhs = Expr::And(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNotExpr() {
    if (Peek().kind == TokenKind::kNot) {
      Next();
      GPUDB_ASSIGN_OR_RETURN(ExprPtr child, ParseNotExpr());
      return Expr::Not(std::move(child));
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    if (Peek().kind == TokenKind::kLParen) {
      Next();
      GPUDB_ASSIGN_OR_RETURN(ExprPtr inner, ParseOrExpr());
      GPUDB_RETURN_NOT_OK(Expect(TokenKind::kRParen));
      return inner;
    }
    return ParseComparison();
  }

  static Result<CompareOp> ToCompareOp(TokenKind kind) {
    switch (kind) {
      case TokenKind::kEq: return CompareOp::kEqual;
      case TokenKind::kNe: return CompareOp::kNotEqual;
      case TokenKind::kLt: return CompareOp::kLess;
      case TokenKind::kLe: return CompareOp::kLessEqual;
      case TokenKind::kGt: return CompareOp::kGreater;
      case TokenKind::kGe: return CompareOp::kGreaterEqual;
      default:
        return Status::InvalidArgument("not a comparison operator");
    }
  }

  Result<ExprPtr> ParseComparison() {
    if (Peek().kind == TokenKind::kNumber) {
      // number op column  ->  column Mirror(op) number
      const double value = Next().number;
      auto op = ToCompareOp(Peek().kind);
      if (!op.ok()) return Error("expected comparison operator");
      Next();
      if (Peek().kind != TokenKind::kIdentifier) {
        return Error("expected column after comparison operator");
      }
      GPUDB_ASSIGN_OR_RETURN(size_t col, ResolveColumn(Next()));
      return Expr::Pred(col, gpu::Mirror(op.ValueOrDie()),
                        static_cast<float>(value));
    }
    if (Peek().kind != TokenKind::kIdentifier) {
      return Error("expected column or number");
    }
    GPUDB_ASSIGN_OR_RETURN(size_t lhs, ResolveColumn(Next()));
    if (Peek().kind == TokenKind::kBetween) {
      Next();
      if (Peek().kind != TokenKind::kNumber) {
        return Error("expected lower bound after BETWEEN");
      }
      const double low = Next().number;
      GPUDB_RETURN_NOT_OK(Expect(TokenKind::kAnd));
      if (Peek().kind != TokenKind::kNumber) {
        return Error("expected upper bound in BETWEEN");
      }
      const double high = Next().number;
      return Expr::Between(lhs, static_cast<float>(low),
                           static_cast<float>(high));
    }
    auto op = ToCompareOp(Peek().kind);
    if (!op.ok()) return Error("expected comparison operator or BETWEEN");
    Next();
    if (Peek().kind == TokenKind::kNumber) {
      const double value = Next().number;
      return Expr::Pred(lhs, op.ValueOrDie(), static_cast<float>(value));
    }
    if (Peek().kind == TokenKind::kIdentifier) {
      GPUDB_ASSIGN_OR_RETURN(size_t rhs, ResolveColumn(Next()));
      return Expr::PredAttr(lhs, op.ValueOrDie(), rhs);
    }
    return Error("expected column or number on the right of comparison");
  }

  std::vector<Token> tokens_;
  const db::Table& table_;
  size_t pos_ = 0;
};

}  // namespace

std::string_view ToString(Query::Kind kind) {
  switch (kind) {
    case Query::Kind::kSelectRows:
      return "select";
    case Query::Kind::kCount:
      return "count";
    case Query::Kind::kAggregate:
      return "aggregate";
    case Query::Kind::kKthLargest:
      return "kth-largest";
    case Query::Kind::kGroupBy:
      return "group-by";
    case Query::Kind::kAnalyzeTable:
      return "analyze";
  }
  return "unknown";
}

Result<Query> ParseQuery(std::string_view input, const db::Table& table) {
  GPUDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens), table);
  return parser.Parse();
}

Result<std::string> StatementTableName(std::string_view input) {
  GPUDB_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  if (tokens.size() >= 2 && tokens[0].kind == TokenKind::kAnalyze &&
      tokens[1].kind == TokenKind::kIdentifier) {
    return tokens[1].text;
  }
  for (size_t i = 0; i + 1 < tokens.size(); ++i) {
    if (tokens[i].kind == TokenKind::kFrom &&
        tokens[i + 1].kind == TokenKind::kIdentifier) {
      return tokens[i + 1].text;
    }
  }
  return Status::InvalidArgument(
      "statement names no table (expected FROM <table> or ANALYZE <table>)");
}

std::string QueryResult::ToString() const {
  std::string value = "?";
  switch (kind) {
    case Query::Kind::kCount:
      value = "count = " + std::to_string(count);
      break;
    case Query::Kind::kAggregate:
    case Query::Kind::kKthLargest:
      value = "value = " + std::to_string(scalar);
      break;
    case Query::Kind::kSelectRows:
      value = std::to_string(row_ids.size()) + " row(s)";
      break;
    case Query::Kind::kGroupBy: {
      value = std::to_string(groups.size()) + " group(s):";
      for (const core::GroupByRow& g : groups) {
        value += " [" + std::to_string(g.key) + ": " +
                 std::to_string(g.aggregate) + "]";
      }
      break;
    }
    case Query::Kind::kAnalyzeTable:
      value = "analyzed " + std::to_string(count) + " column(s)";
      break;
  }
  if (analyzed) {
    value += "\n" + explain;
    if (profiled && !profile.empty()) {
      value += "\npass profile:\n" + profile;
    }
  }
  return value;
}

Status ExecuteParsed(core::Executor* executor, const Query& query,
                     QueryResult* result) {
  result->kind = query.kind;
  switch (query.kind) {
    case Query::Kind::kCount: {
      GPUDB_ASSIGN_OR_RETURN(result->count, executor->Count(query.where));
      return Status::OK();
    }
    case Query::Kind::kSelectRows: {
      if (!query.order_by_column.empty()) {
        GPUDB_ASSIGN_OR_RETURN(
            result->row_ids,
            executor->OrderByRowIds(query.order_by_column,
                                    !query.order_descending));
      } else {
        GPUDB_ASSIGN_OR_RETURN(result->row_ids,
                               executor->SelectRowIds(query.where));
      }
      if (query.limit > 0 && result->row_ids.size() > query.limit) {
        result->row_ids.resize(query.limit);
      }
      return Status::OK();
    }
    case Query::Kind::kAggregate: {
      GPUDB_ASSIGN_OR_RETURN(
          result->scalar,
          executor->Aggregate(query.aggregate, query.column, query.where));
      return Status::OK();
    }
    case Query::Kind::kKthLargest: {
      GPUDB_ASSIGN_OR_RETURN(
          uint32_t v,
          executor->KthLargest(query.column, query.k, query.where));
      result->scalar = static_cast<double>(v);
      return Status::OK();
    }
    case Query::Kind::kGroupBy: {
      GPUDB_ASSIGN_OR_RETURN(
          result->groups,
          executor->GroupBy(query.group_by_column, query.column,
                            query.aggregate));
      return Status::OK();
    }
    case Query::Kind::kAnalyzeTable: {
      // ANALYZE needs the catalog to store its statistics; the bare
      // executor path has nowhere to put them.
      return Status::InvalidArgument(
          "ANALYZE requires a sql::Session (statistics live in the catalog)");
    }
  }
  return Status::Internal("unhandled query kind");
}

Result<QueryResult> ExecuteSql(core::Executor* executor,
                               std::string_view input) {
  if (executor == nullptr) {
    return Status::InvalidArgument("null executor");
  }
  GPUDB_ASSIGN_OR_RETURN(Query query,
                         ParseQuery(input, executor->table()));
  if (query.explain_analyze) {
    return ExecuteAnalyze(executor, query, input);
  }
  QueryResult result;
  GPUDB_RETURN_NOT_OK(ExecuteParsed(executor, query, &result));
  return result;
}

Result<std::vector<QueryResult>> ExecuteScript(core::Executor* executor,
                                               std::string_view script) {
  std::vector<QueryResult> results;
  size_t start = 0;
  for (size_t i = 0; i <= script.size(); ++i) {
    if (i == script.size() || script[i] == ';') {
      std::string_view statement = script.substr(start, i - start);
      start = i + 1;
      // Skip blank statements (trailing semicolons, empty lines).
      size_t first = statement.find_first_not_of(" \t\r\n");
      if (first == std::string_view::npos) continue;
      statement.remove_prefix(first);
      GPUDB_ASSIGN_OR_RETURN(QueryResult r, ExecuteSql(executor, statement));
      results.push_back(std::move(r));
    }
  }
  if (results.empty()) {
    return Status::InvalidArgument("script contains no statements");
  }
  return results;
}

}  // namespace sql
}  // namespace gpudb
