#include "src/sql/lexer.h"

#include <cctype>
#include <cstdlib>
#include <utility>

namespace gpudb {
namespace sql {

std::string_view ToString(TokenKind kind) {
  switch (kind) {
    case TokenKind::kExplain: return "EXPLAIN";
    case TokenKind::kAnalyze: return "ANALYZE";
    case TokenKind::kProfile: return "PROFILE";
    case TokenKind::kSelect: return "SELECT";
    case TokenKind::kFrom: return "FROM";
    case TokenKind::kWhere: return "WHERE";
    case TokenKind::kAnd: return "AND";
    case TokenKind::kOr: return "OR";
    case TokenKind::kNot: return "NOT";
    case TokenKind::kBetween: return "BETWEEN";
    case TokenKind::kCount: return "COUNT";
    case TokenKind::kSum: return "SUM";
    case TokenKind::kAvg: return "AVG";
    case TokenKind::kMin: return "MIN";
    case TokenKind::kMax: return "MAX";
    case TokenKind::kMedian: return "MEDIAN";
    case TokenKind::kKthLargest: return "KTH_LARGEST";
    case TokenKind::kGroup: return "GROUP";
    case TokenKind::kBy: return "BY";
    case TokenKind::kOrder: return "ORDER";
    case TokenKind::kLimit: return "LIMIT";
    case TokenKind::kAsc: return "ASC";
    case TokenKind::kDesc: return "DESC";
    case TokenKind::kIdentifier: return "identifier";
    case TokenKind::kNumber: return "number";
    case TokenKind::kStar: return "*";
    case TokenKind::kLParen: return "(";
    case TokenKind::kRParen: return ")";
    case TokenKind::kComma: return ",";
    case TokenKind::kSemicolon: return ";";
    case TokenKind::kEq: return "=";
    case TokenKind::kNe: return "!=";
    case TokenKind::kLt: return "<";
    case TokenKind::kLe: return "<=";
    case TokenKind::kGt: return ">";
    case TokenKind::kGe: return ">=";
    case TokenKind::kEnd: return "<end>";
  }
  return "<unknown>";
}

namespace {

std::string ToUpper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(c));
  return out;
}

TokenKind KeywordOrIdentifier(std::string_view word) {
  const std::string upper = ToUpper(word);
  if (upper == "EXPLAIN") return TokenKind::kExplain;
  if (upper == "ANALYZE") return TokenKind::kAnalyze;
  if (upper == "PROFILE") return TokenKind::kProfile;
  if (upper == "SELECT") return TokenKind::kSelect;
  if (upper == "FROM") return TokenKind::kFrom;
  if (upper == "WHERE") return TokenKind::kWhere;
  if (upper == "AND") return TokenKind::kAnd;
  if (upper == "OR") return TokenKind::kOr;
  if (upper == "NOT") return TokenKind::kNot;
  if (upper == "BETWEEN") return TokenKind::kBetween;
  if (upper == "COUNT") return TokenKind::kCount;
  if (upper == "SUM") return TokenKind::kSum;
  if (upper == "AVG") return TokenKind::kAvg;
  if (upper == "MIN") return TokenKind::kMin;
  if (upper == "MAX") return TokenKind::kMax;
  if (upper == "MEDIAN") return TokenKind::kMedian;
  if (upper == "KTH_LARGEST") return TokenKind::kKthLargest;
  if (upper == "GROUP") return TokenKind::kGroup;
  if (upper == "BY") return TokenKind::kBy;
  if (upper == "ORDER") return TokenKind::kOrder;
  if (upper == "LIMIT") return TokenKind::kLimit;
  if (upper == "ASC") return TokenKind::kAsc;
  if (upper == "DESC") return TokenKind::kDesc;
  return TokenKind::kIdentifier;
}

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view input) {
  std::vector<Token> tokens;
  size_t i = 0;
  const size_t n = input.size();
  while (i < n) {
    const char c = input[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token token;
    token.position = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(input[j])) ||
                       input[j] == '_')) {
        ++j;
      }
      token.text = std::string(input.substr(i, j - i));
      token.kind = KeywordOrIdentifier(token.text);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '.' && i + 1 < n &&
                std::isdigit(static_cast<unsigned char>(input[i + 1])))) {
      size_t j = i;
      bool seen_dot = false;
      while (j < n && (std::isdigit(static_cast<unsigned char>(input[j])) ||
                       (input[j] == '.' && !seen_dot))) {
        seen_dot = seen_dot || input[j] == '.';
        ++j;
      }
      token.text = std::string(input.substr(i, j - i));
      token.kind = TokenKind::kNumber;
      token.number = std::strtod(token.text.c_str(), nullptr);
      i = j;
    } else {
      switch (c) {
        case '*': token.kind = TokenKind::kStar; ++i; break;
        case '(': token.kind = TokenKind::kLParen; ++i; break;
        case ')': token.kind = TokenKind::kRParen; ++i; break;
        case ',': token.kind = TokenKind::kComma; ++i; break;
        case ';': token.kind = TokenKind::kSemicolon; ++i; break;
        case '=': token.kind = TokenKind::kEq; ++i; break;
        case '!':
          if (i + 1 < n && input[i + 1] == '=') {
            token.kind = TokenKind::kNe;
            i += 2;
          } else {
            return Status::InvalidArgument(
                "unexpected '!' at position " + std::to_string(i) +
                " (did you mean '!='?)");
          }
          break;
        case '<':
          if (i + 1 < n && input[i + 1] == '=') {
            token.kind = TokenKind::kLe;
            i += 2;
          } else if (i + 1 < n && input[i + 1] == '>') {
            token.kind = TokenKind::kNe;
            i += 2;
          } else {
            token.kind = TokenKind::kLt;
            ++i;
          }
          break;
        case '>':
          if (i + 1 < n && input[i + 1] == '=') {
            token.kind = TokenKind::kGe;
            i += 2;
          } else {
            token.kind = TokenKind::kGt;
            ++i;
          }
          break;
        default:
          return Status::InvalidArgument("unexpected character '" +
                                         std::string(1, c) +
                                         "' at position " + std::to_string(i));
      }
    }
    tokens.push_back(std::move(token));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.position = n;
  tokens.push_back(end);
  return tokens;
}

}  // namespace sql
}  // namespace gpudb
