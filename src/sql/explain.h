#ifndef GPUDB_SQL_EXPLAIN_H_
#define GPUDB_SQL_EXPLAIN_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/common/trace.h"
#include "src/core/executor.h"
#include "src/sql/parser.h"

namespace gpudb {
namespace sql {

/// \brief Renders the spans of one traced query as an indented operator
/// tree.
///
/// Operator spans (those the executor opens via GpuOpSpan) print one line
/// each with the operator's simulated total and self time -- self time is
/// total minus the totals of its direct children, so summing the self column
/// over the whole tree reproduces the root's total exactly. Device-level
/// spans ("pass:*" and "gpu.*") are rolled up into one bracketed summary
/// line per operator: pass count, fragments generated vs passed, and bytes
/// moved across the bus.
std::string FormatSpanTree(const std::vector<FinishedSpan>& spans);

/// \brief Executes an already-parsed query under tracing (EXPLAIN ANALYZE
/// and EXPLAIN PROFILE).
///
/// Enables the global tracer for the duration of the query (restoring its
/// previous state afterwards), wraps execution in a root "query" span, and
/// fills QueryResult's analysis fields: the rendered tree, the run's spans,
/// and the PerfModel breakdown of the query's device-counter delta. The
/// root span's total_ms equals breakdown.TotalMs() by construction.
///
/// For EXPLAIN PROFILE (query.explain_profile) the Profiler is additionally
/// enabled for the query's duration and the result carries the per-pass
/// deep-counter groups and their rendered table (QueryResult::profile);
/// those counters are deterministic, so the table is byte-identical across
/// worker-thread counts.
[[nodiscard]] Result<QueryResult> ExecuteAnalyze(core::Executor* executor,
                                   const Query& query, std::string_view input);

}  // namespace sql
}  // namespace gpudb

#endif  // GPUDB_SQL_EXPLAIN_H_
