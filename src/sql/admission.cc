#include "src/sql/admission.h"

#include <algorithm>
#include <chrono>

#include "src/common/metrics.h"

namespace gpudb {
namespace sql {

namespace {

double SteadyNowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Admission metrics, cached like DeviceMetrics in device.cc.
struct AdmissionMetrics {
  MetricCounter& rejected =
      MetricsRegistry::Global().counter("admission.rejected");
  MetricGauge& queue_depth =
      MetricsRegistry::Global().gauge("admission.queue_depth");
  MetricCounter& throttled =
      MetricsRegistry::Global().counter("tenant.throttled");

  static AdmissionMetrics& Get() {
    static AdmissionMetrics* m = new AdmissionMetrics();
    return *m;
  }
};

}  // namespace

AdmissionController::AdmissionController(AdmissionOptions options)
    : options_(std::move(options)) {
  if (options_.max_concurrent < 1) options_.max_concurrent = 1;
  if (options_.queue_capacity < 0) options_.queue_capacity = 0;
  if (options_.max_queue_wait_ms <= 0.0) options_.max_queue_wait_ms = 1.0;
  if (!options_.now_ms) options_.now_ms = SteadyNowMs;
}

void AdmissionController::Ticket::Release() {
  if (controller_ != nullptr) {
    controller_->ReleaseSlot();
    controller_ = nullptr;
  }
}

void AdmissionController::ReleaseSlot() {
  {
    MutexLock lock(&mu_);
    --running_;
  }
  slot_free_.NotifyOne();
}

bool AdmissionController::TakeToken(const std::string& tenant, double now) {
  TokenBucket& bucket = buckets_[tenant];
  if (!bucket.initialized) {
    bucket.tokens = options_.tenant_burst;
    bucket.refilled_at_ms = now;
    bucket.initialized = true;
  }
  const double elapsed_s =
      std::max(0.0, (now - bucket.refilled_at_ms) / 1000.0);
  bucket.tokens = std::min(options_.tenant_burst,
                           bucket.tokens + elapsed_s * options_.tenant_qps);
  bucket.refilled_at_ms = now;
  if (bucket.tokens < 1.0) return false;
  bucket.tokens -= 1.0;
  return true;
}

Result<AdmissionController::Ticket> AdmissionController::Admit(
    const std::string& tenant, double deadline_ms) {
  AdmissionMetrics& metrics = AdmissionMetrics::Get();
  const double now = options_.now_ms();

  // The p95 shed signal is read *before* taking mu_: the registry lookup
  // and the histogram scan belong to the telemetry tier, and the admission
  // lock is the outermost level of the declared order (DESIGN.md §12) --
  // it must never be held into another subsystem. The histogram is all
  // relaxed atomics, so the unlocked read is safe; the verdict is a
  // heuristic snapshot either way.
  double shed_p95 = 0.0;
  bool shed = false;
  if (deadline_ms > 0.0) {
    const MetricHistogram& exec =
        MetricsRegistry::Global().histogram("sql.exec_ms");
    if (exec.count() >= options_.min_p95_samples) {
      shed_p95 = exec.Quantile(0.95);
      shed = shed_p95 > deadline_ms;
    }
  }

  MutexLock lock(&mu_);
  // 1. Per-tenant quota (token bucket).
  if (options_.tenant_qps > 0.0 && !TakeToken(tenant, now)) {
    metrics.throttled.Increment();
    metrics.rejected.Increment();
    return Status::ResourceExhausted(
        "tenant '" + tenant + "' over quota (" +
        std::to_string(options_.tenant_qps) + " qps); retry later");
  }
  // 2. Deadline-aware rejection: a statement whose remaining budget cannot
  // cover the observed p95 execution time would only waste a device slot.
  if (shed) {
    metrics.rejected.Increment();
    return Status::ResourceExhausted(
        "deadline " + std::to_string(deadline_ms) +
        " ms cannot cover the p95 execution time (" +
        std::to_string(shed_p95) + " ms); shedding load");
  }
  // 3. Bounded admission queue.
  if (running_ < options_.max_concurrent) {
    ++running_;
    return Ticket(this);
  }
  if (waiting_ >= options_.queue_capacity) {
    metrics.rejected.Increment();
    return Status::ResourceExhausted(
        "admission queue full (" + std::to_string(waiting_) + " waiting, " +
        std::to_string(options_.queue_capacity) + " allowed)");
  }
  ++waiting_;
  metrics.queue_depth.Set(static_cast<double>(waiting_));
  double wait_budget_ms = options_.max_queue_wait_ms;
  if (deadline_ms > 0.0) wait_budget_ms = std::min(wait_budget_ms, deadline_ms);
  // The deadline uses the real steady clock (not options_.now_ms, which
  // tests may fake): the original wait_for semantics were a real-time
  // bound, and a fake clock must not turn the bounded wait into a hang.
  const auto wait_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::milli>(wait_budget_ms));
  bool got_slot = true;
  while (running_ >= options_.max_concurrent) {
    if (!slot_free_.WaitUntil(mu_, wait_deadline)) {
      // Timed out: one final predicate check, matching wait_for semantics.
      got_slot = running_ < options_.max_concurrent;
      break;
    }
  }
  --waiting_;
  metrics.queue_depth.Set(static_cast<double>(waiting_));
  if (!got_slot) {
    metrics.rejected.Increment();
    return Status::ResourceExhausted(
        "timed out after " + std::to_string(wait_budget_ms) +
        " ms in the admission queue");
  }
  ++running_;
  return Ticket(this);
}

int AdmissionController::running() const {
  MutexLock lock(&mu_);
  return running_;
}

int AdmissionController::queue_depth() const {
  MutexLock lock(&mu_);
  return waiting_;
}

}  // namespace sql
}  // namespace gpudb
