#include "src/sql/explain.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/common/profile.h"
#include "src/core/op_span.h"
#include "src/gpu/counters.h"
#include "src/gpu/perf_model.h"

namespace gpudb {
namespace sql {

namespace {

/// Tags GpuOpSpan attaches to every operator; the formatter prints them in
/// its cost columns, so they are excluded from the trailing key=value list.
bool IsCostTag(std::string_view key) {
  static constexpr std::string_view kCostTags[] = {
      "passes",          "fragments",       "fragments_passed",
      "occlusion_readbacks", "bytes_uploaded", "bytes_read_back",
      "texture_swap_ins", "fill_ms",        "depth_write_ms",
      "setup_ms",        "occl_readback_ms", "upload_ms",
      "swap_ms",         "buffer_readback_ms", "compute_ms",
      "total_ms",        "sql"};
  for (std::string_view k : kCostTags) {
    if (k == key) return true;
  }
  return false;
}

/// Device-level leaf spans rolled up into the per-operator summary line.
bool IsDeviceSpan(const FinishedSpan& span) {
  return span.name.rfind("pass:", 0) == 0 || span.name.rfind("gpu.", 0) == 0;
}

std::string Ms(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", value);
  return buf;
}

std::string Num(double value) {
  char buf[32];
  if (value == static_cast<double>(static_cast<long long>(value))) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof(buf), "%.4g", value);
  }
  return buf;
}

struct Rollup {
  uint64_t passes = 0;
  double fragments = 0;
  double fragments_passed = 0;
  double bytes_read_back = 0;
  double bytes_uploaded = 0;
  double bytes_swapped = 0;
  // Deep-profile tags, present only on passes run with the Profiler on.
  double killed = 0;  // alpha + stencil + depth kills
  double plane_bytes_read = 0;
  double plane_bytes_written = 0;

  bool empty() const { return passes == 0 && bytes_read_back == 0 &&
                              bytes_uploaded == 0 && bytes_swapped == 0; }
};

class TreeFormatter {
 public:
  explicit TreeFormatter(const std::vector<FinishedSpan>& spans)
      : spans_(spans) {
    for (size_t i = 0; i < spans_.size(); ++i) {
      index_[spans_[i].id] = i;
    }
    children_.resize(spans_.size());
    for (size_t i = 0; i < spans_.size(); ++i) {
      auto it = index_.find(spans_[i].parent_id);
      if (spans_[i].parent_id != 0 && it != index_.end()) {
        children_[it->second].push_back(i);
      } else {
        roots_.push_back(i);
      }
    }
    // FinishedSince returns completion order (children first); display wants
    // chronological start order at every level.
    auto by_start = [this](size_t a, size_t b) {
      return spans_[a].start_us != spans_[b].start_us
                 ? spans_[a].start_us < spans_[b].start_us
                 : spans_[a].id < spans_[b].id;
    };
    std::sort(roots_.begin(), roots_.end(), by_start);
    for (auto& kids : children_) std::sort(kids.begin(), kids.end(), by_start);
  }

  std::string Format() {
    std::string out;
    for (size_t root : roots_) FormatNode(root, 0, &out);
    return out;
  }

 private:
  void FormatNode(size_t i, int depth, std::string* out) {
    const FinishedSpan& span = spans_[i];
    if (IsDeviceSpan(span)) return;  // rolled up by the parent
    out->append(static_cast<size_t>(depth) * 2, ' ');
    out->append(span.name);

    const double total = span.NumberTag("total_ms", -1.0);
    if (total >= 0) {
      double children_total = 0;
      for (size_t child : children_[i]) {
        children_total += spans_[child].NumberTag("total_ms", 0.0);
      }
      const double self = std::max(0.0, total - children_total);
      out->append("  total=" + Ms(total) + "ms self=" + Ms(self) + "ms");
      out->append("  (fill " + Ms(span.NumberTag("fill_ms")) + " | depth " +
                  Ms(span.NumberTag("depth_write_ms")) + " | setup " +
                  Ms(span.NumberTag("setup_ms")) + " | readback " +
                  Ms(span.NumberTag("occl_readback_ms") +
                     span.NumberTag("buffer_readback_ms")));
      if (span.NumberTag("swap_ms") > 0) {
        out->append(" | swap " + Ms(span.NumberTag("swap_ms")));
      }
      out->append(")");
    }
    // Estimated-vs-actual cardinality (present when ANALYZE statistics are
    // attached): the paired rendering replaces the raw selected/est_rows
    // tags, so unanalyzed output is unchanged.
    const double est_rows = span.NumberTag("est_rows", -1.0);
    if (est_rows >= 0) {
      out->append("  rows est=" + Num(est_rows));
      const double actual = span.NumberTag("selected", -1.0);
      if (actual >= 0) out->append(" actual=" + Num(actual));
    }
    for (const TraceTag& tag : span.tags) {
      if (IsCostTag(tag.key)) continue;
      if (tag.key == "est_rows") continue;
      if (est_rows >= 0 && tag.key == "selected") continue;
      out->append("  " + tag.key + "=" +
                  (tag.is_number ? Num(tag.number) : tag.text));
    }
    out->append("\n");

    const Rollup rollup = RollupDeviceChildren(i);
    if (!rollup.empty()) {
      std::vector<std::string> parts;
      if (rollup.passes > 0) {
        parts.push_back(std::to_string(rollup.passes) + " passes: " +
                        Num(rollup.fragments) + " fragments -> " +
                        Num(rollup.fragments_passed) + " passed");
      }
      if (rollup.bytes_read_back > 0) {
        parts.push_back(Num(rollup.bytes_read_back) + " B read back");
      }
      if (rollup.bytes_uploaded > 0) {
        parts.push_back(Num(rollup.bytes_uploaded) + " B uploaded");
      }
      if (rollup.bytes_swapped > 0) {
        parts.push_back(Num(rollup.bytes_swapped) + " B swapped in");
      }
      if (rollup.killed > 0) {
        parts.push_back(Num(rollup.killed) + " killed");
      }
      if (rollup.plane_bytes_read > 0 || rollup.plane_bytes_written > 0) {
        parts.push_back("plane " + Num(rollup.plane_bytes_read) + " B read / " +
                        Num(rollup.plane_bytes_written) + " B written");
      }
      out->append(static_cast<size_t>(depth + 1) * 2, ' ');
      out->append("[");
      for (size_t p = 0; p < parts.size(); ++p) {
        if (p > 0) out->append(", ");
        out->append(parts[p]);
      }
      out->append("]\n");
    }
    for (size_t child : children_[i]) {
      FormatNode(child, depth + 1, out);
    }
  }

  /// Aggregates the direct device-span children of operator `i`.
  Rollup RollupDeviceChildren(size_t i) const {
    Rollup r;
    for (size_t child : children_[i]) {
      const FinishedSpan& span = spans_[child];
      if (!IsDeviceSpan(span)) continue;
      if (span.name.rfind("pass:", 0) == 0) {
        ++r.passes;
        r.fragments += span.NumberTag("fragments");
        r.fragments_passed += span.NumberTag("fragments_passed");
        r.killed += span.NumberTag("alpha_killed") +
                    span.NumberTag("stencil_killed") +
                    span.NumberTag("depth_killed");
        r.plane_bytes_read += span.NumberTag("plane_bytes_read");
        r.plane_bytes_written += span.NumberTag("plane_bytes_written");
      } else if (span.name == "gpu.read_stencil" ||
                 span.name == "gpu.read_depth") {
        r.bytes_read_back += span.NumberTag("bytes");
      } else if (span.name == "gpu.upload_texture") {
        r.bytes_uploaded += span.NumberTag("bytes");
      } else if (span.name == "gpu.texture_swap_in") {
        r.bytes_swapped += span.NumberTag("bytes");
      }
    }
    return r;
  }

  const std::vector<FinishedSpan>& spans_;
  std::map<uint64_t, size_t> index_;
  std::vector<std::vector<size_t>> children_;
  std::vector<size_t> roots_;
};

}  // namespace

std::string FormatSpanTree(const std::vector<FinishedSpan>& spans) {
  return TreeFormatter(spans).Format();
}

Result<QueryResult> ExecuteAnalyze(core::Executor* executor,
                                   const Query& query,
                                   std::string_view input) {
  Tracer& tracer = Tracer::Global();
  const bool was_enabled = tracer.enabled();
  tracer.set_enabled(true);
  // EXPLAIN PROFILE: deep counters for the duration of this query only
  // (restored afterwards, like the tracer flag).
  Profiler& profiler = Profiler::Global();
  const bool profiler_was_enabled = profiler.enabled();
  if (query.explain_profile) profiler.set_enabled(true);
  const size_t mark = tracer.FinishedCount();
  const gpu::DeviceCounters before = executor->device().counters();

  QueryResult result;
  Status status = Status::OK();
  {
    core::GpuOpSpan root("query", &executor->device());
    root.AddTag("sql", input);
    status = ExecuteParsed(executor, query, &result);
  }
  tracer.set_enabled(was_enabled);
  if (query.explain_profile) profiler.set_enabled(profiler_was_enabled);
  GPUDB_RETURN_NOT_OK(status);

  const gpu::DeviceCounters delta =
      gpu::DeltaSince(before, executor->device().counters());
  result.analyzed = true;
  result.breakdown = gpu::PerfModel().Estimate(delta);
  result.simulated_total_ms = result.breakdown.TotalMs();
  result.spans = tracer.FinishedSince(mark);
  result.explain = FormatSpanTree(result.spans);
  if (query.explain_profile) {
    // Group this query's profiled passes by label in first-appearance
    // order. The pass log and its deep counters are band-reduced
    // deterministically, so groups -- and the rendered table -- are
    // byte-identical at any worker-thread count.
    std::vector<PassProfileGroup> groups;
    for (const gpu::PassRecord& pass : delta.pass_log) {
      if (!pass.profiled) continue;
      PassProfileGroup* group = nullptr;
      for (PassProfileGroup& g : groups) {
        if (g.label == pass.label) {
          group = &g;
          break;
        }
      }
      if (group == nullptr) {
        groups.emplace_back();
        group = &groups.back();
        group->label = pass.label;
      }
      ++group->passes;
      group->fragments += pass.fragments;
      group->fragments_passed += pass.fragments_passed;
      group->prof.Merge(pass.prof);
    }
    result.profiled = true;
    result.profile_groups = std::move(groups);
    result.profile = FormatPassProfileTable(result.profile_groups);
  }
  return result;
}

}  // namespace sql
}  // namespace gpudb
