#ifndef GPUDB_SQL_LEXER_H_
#define GPUDB_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"

namespace gpudb {
namespace sql {

/// \brief Token kinds of the SQL fragment the paper targets (Section 4):
/// SELECT <aggregates|*> FROM t WHERE <boolean combination of comparisons>.
enum class TokenKind {
  // keywords
  kExplain,
  kAnalyze,
  kProfile,
  kSelect,
  kFrom,
  kWhere,
  kAnd,
  kOr,
  kNot,
  kBetween,
  kCount,
  kSum,
  kAvg,
  kMin,
  kMax,
  kMedian,
  kKthLargest,
  kGroup,
  kBy,
  kOrder,
  kLimit,
  kAsc,
  kDesc,
  // literals / names
  kIdentifier,
  kNumber,
  // punctuation / operators
  kStar,
  kLParen,
  kRParen,
  kComma,
  kSemicolon,
  kEq,        // =
  kNe,        // != or <>
  kLt,
  kLe,
  kGt,
  kGe,
  kEnd,
};

std::string_view ToString(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;     ///< original spelling (identifier/number)
  double number = 0.0;  ///< value for kNumber
  size_t position = 0;  ///< byte offset in the input, for error messages
};

/// Tokenizes a query string. Keywords are case-insensitive; identifiers are
/// [A-Za-z_][A-Za-z0-9_]*; numbers are decimal with optional fraction and
/// sign handled by the parser.
[[nodiscard]] Result<std::vector<Token>> Tokenize(std::string_view input);

}  // namespace sql
}  // namespace gpudb

#endif  // GPUDB_SQL_LEXER_H_
