#ifndef GPUDB_SQL_PARSER_H_
#define GPUDB_SQL_PARSER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/profile.h"
#include "src/common/result.h"
#include "src/common/trace.h"
#include "src/core/aggregates.h"
#include "src/core/executor.h"
#include "src/db/table.h"
#include "src/gpu/perf_model.h"
#include "src/predicate/expr.h"

namespace gpudb {
namespace sql {

/// \brief A parsed query of the paper's SQL fragment (Section 4):
///
///   SELECT A FROM T WHERE C
///
/// where A is `*`, `COUNT(*)`, an aggregate over one attribute
/// (SUM/AVG/MIN/MAX/MEDIAN/COUNT), or `KTH_LARGEST(attr, k)`, and C is a
/// boolean combination (AND/OR/NOT, parentheses, BETWEEN) of comparisons of
/// the forms `attr op constant`, `attr op attr`, `constant op attr`.
/// An aggregate select may add `GROUP BY key_column` (OLAP roll-up; no WHERE
/// in that case -- the grouped execution path has no selection support).
struct Query {
  enum class Kind {
    kSelectRows,    ///< SELECT * : materialize row ids
    kCount,         ///< SELECT COUNT(*)
    kAggregate,     ///< SELECT agg(column)
    kKthLargest,    ///< SELECT KTH_LARGEST(column, k)
    kGroupBy,       ///< SELECT agg(column) ... GROUP BY key
    kAnalyzeTable,  ///< ANALYZE table : collect column statistics
  };

  Kind kind = Kind::kCount;
  core::AggregateKind aggregate = core::AggregateKind::kCount;
  std::string column;           ///< aggregate / order-statistic attribute
  uint64_t k = 0;               ///< for kKthLargest
  std::string table_name;       ///< as written after FROM
  std::string group_by_column;  ///< for kGroupBy
  predicate::ExprPtr where;     ///< null when there is no WHERE clause

  /// ORDER BY column [ASC|DESC], for SELECT * only. Orders the returned row
  /// ids by the column's value via the GPU bitonic sort; combining ORDER BY
  /// with WHERE is not supported (the sort network runs over the full
  /// relation). Empty = unordered.
  std::string order_by_column;
  bool order_descending = false;

  /// LIMIT n on SELECT * row ids (0 = no limit).
  uint64_t limit = 0;

  /// EXPLAIN ANALYZE prefix: run the query under tracing and attach the
  /// per-operator simulated-cost tree to the result.
  bool explain_analyze = false;

  /// EXPLAIN PROFILE prefix: EXPLAIN ANALYZE plus deep profiling -- the
  /// query runs with the Profiler enabled and the result additionally
  /// carries the per-pass counter table (kills, plane traffic). Implies
  /// explain_analyze.
  bool explain_profile = false;
};

std::string_view ToString(Query::Kind kind);

/// \brief Parses `input` against `table` (column names resolve to indices;
/// unknown columns are errors with positions).
[[nodiscard]] Result<Query> ParseQuery(std::string_view input, const db::Table& table);

/// \brief Extracts the table a statement targets without a full parse: the
/// identifier after FROM, or after a statement-initial ANALYZE. Used by
/// sql::Session to pick the executor before ParseQuery resolves column
/// names against that table's schema.
[[nodiscard]] Result<std::string> StatementTableName(std::string_view input);

/// \brief Result of executing a parsed query.
struct QueryResult {
  Query::Kind kind = Query::Kind::kCount;
  double scalar = 0.0;             ///< aggregate value / order statistic
  uint64_t count = 0;              ///< for kCount
  std::vector<uint32_t> row_ids;   ///< for kSelectRows
  std::vector<core::GroupByRow> groups;  ///< for kGroupBy

  /// Filled by EXPLAIN ANALYZE: the rendered operator tree, the run's
  /// simulated cost (PerfModel over the query's counter delta), and the raw
  /// spans for programmatic consumers (tests, trace export).
  bool analyzed = false;
  std::string explain;
  double simulated_total_ms = 0.0;
  gpu::GpuTimeBreakdown breakdown;
  std::vector<FinishedSpan> spans;

  /// Filled by EXPLAIN PROFILE: the query's per-pass profile groups (label,
  /// fragments, kill counts, plane traffic), in first-appearance order, and
  /// their rendered table. Deterministic counters only, so `profile` is
  /// byte-identical across worker-thread counts.
  bool profiled = false;
  std::vector<PassProfileGroup> profile_groups;
  std::string profile;

  /// For kSelectRows through sql::Session: the table the row ids refer to.
  /// System-table snapshots are materialized per query, so the session hands
  /// the snapshot to the caller here (display layers render rows from it);
  /// null for queries against long-lived user tables.
  std::shared_ptr<const db::Table> table_view;

  std::string ToString() const;
};

/// \brief One-call convenience: parse `input` against the executor's table
/// and run it on the GPU. An EXPLAIN ANALYZE prefix additionally executes
/// the query under tracing and fills the analysis fields of QueryResult.
[[nodiscard]] Result<QueryResult> ExecuteSql(core::Executor* executor,
                               std::string_view input);

/// \brief Executes an already-parsed query, filling the plain result fields.
/// The EXPLAIN ANALYZE path (sql/explain.h) wraps this in a traced root span.
[[nodiscard]] Status ExecuteParsed(core::Executor* executor, const Query& query,
                     QueryResult* result);

/// \brief Runs a semicolon-separated script of queries in order, stopping at
/// the first error. Returns one result per executed statement.
[[nodiscard]] Result<std::vector<QueryResult>> ExecuteScript(core::Executor* executor,
                                               std::string_view script);

}  // namespace sql
}  // namespace gpudb

#endif  // GPUDB_SQL_PARSER_H_
