#include "src/sql/session.h"

#include <algorithm>
#include <utility>

#include "src/common/metrics.h"
#include "src/common/query_log.h"
#include "src/common/timer.h"
#include "src/core/analyze.h"
#include "src/gpu/perf_model.h"
#include "src/sql/explain.h"

namespace gpudb {
namespace sql {

namespace {

/// Result cardinality for the query log (1 for scalar results).
uint64_t RowsOut(const QueryResult& result) {
  switch (result.kind) {
    case Query::Kind::kSelectRows:
      return result.row_ids.size();
    case Query::Kind::kGroupBy:
      return result.groups.size();
    case Query::Kind::kAnalyzeTable:
      return result.count;  // columns analyzed
    default:
      return 1;
  }
}

}  // namespace

Session::Session(gpu::Device* device, db::Catalog* catalog)
    : device_(device), catalog_(catalog) {
  // Plane-cache invalidation (DESIGN.md §14): whenever the catalog bumps a
  // table's version -- reload, ANALYZE, any backing-store mutation (lint
  // rule R6) -- the device drops every cached depth plane for that table.
  // Versioned keys alone would keep results correct (stale versions never
  // match); the eager drop reclaims the VRAM immediately.
  if (device_ != nullptr && catalog_ != nullptr) {
    catalog_->AddVersionListener([device = device_](const std::string& name) {
      device->InvalidateCachedPlanes(name);
    });
  }
}

void Session::set_plan_options(const core::PlanOptions& options) {
  MutexLock lock(&execute_mu_);
  plan_options_ = options;
  for (auto& [name, exec] : executors_) {
    exec->set_plan_options(options);
  }
}

void Session::set_resilience_options(const core::ResilienceOptions& options) {
  MutexLock lock(&execute_mu_);
  resilience_ = options;
  for (auto& [name, exec] : executors_) {
    exec->set_resilience_options(options);
  }
  for (auto& [name, entry] : pool_executors_) {
    if (entry.exec != nullptr) entry.exec->set_resilience_options(options);
  }
}

void Session::SetDevicePool(gpu::DevicePool* pool, int num_shards) {
  MutexLock lock(&execute_mu_);
  pool_ = pool;
  // Default to two shards per device: enough slack that a quarantined
  // device's load spreads over the survivors instead of doubling up on one.
  pool_shards_ = num_shards > 0
                     ? num_shards
                     : (pool != nullptr ? 2 * static_cast<int>(pool->size())
                                        : 0);
  pool_executors_.clear();
}

Result<core::PoolExecutor*> Session::PoolExecutorFor(
    std::string_view table_name) {
  MutexLock lock(&execute_mu_);
  return PoolExecutorForLocked(table_name);
}

Result<core::PoolExecutor*> Session::PoolExecutorForLocked(
    std::string_view table_name) {
  if (pool_ == nullptr) {
    return Status::FailedPrecondition("no device pool installed");
  }
  auto it = pool_executors_.find(table_name);
  if (it == pool_executors_.end()) {
    PoolEntry entry;
    GPUDB_ASSIGN_OR_RETURN(const db::Table* table,
                           catalog_->Lookup(table_name));
    Result<db::ShardedTable> sharded = db::ShardedTable::Make(
        *table, static_cast<size_t>(pool_shards_), pool_->size());
    if (sharded.ok()) {
      entry.sharded = std::make_unique<db::ShardedTable>(
          std::move(sharded).ValueOrDie());
      GPUDB_ASSIGN_OR_RETURN(
          entry.exec, core::PoolExecutor::Make(pool_, entry.sharded.get()));
      entry.exec->set_resilience_options(resilience_);
    }
    // A refused table is cached as {nullptr}: the sharder's verdict cannot
    // change while the schema is fixed, so do not re-shard every statement.
    it = pool_executors_.emplace(std::string(table_name), std::move(entry))
             .first;
  }
  if (it->second.exec == nullptr) {
    return Status::FailedPrecondition("table '" + std::string(table_name) +
                                      "' is not shardable");
  }
  return it->second.exec.get();
}

Result<core::Executor*> Session::ExecutorFor(std::string_view table_name) {
  MutexLock lock(&execute_mu_);
  return ExecutorForLocked(table_name);
}

Result<core::Executor*> Session::ExecutorForLocked(
    std::string_view table_name) {
  auto it = executors_.find(table_name);
  if (it == executors_.end()) {
    GPUDB_ASSIGN_OR_RETURN(const db::Table* table,
                           catalog_->Lookup(table_name));
    GPUDB_ASSIGN_OR_RETURN(std::unique_ptr<core::Executor> exec,
                           core::Executor::Make(device_, table));
    exec->set_resilience_options(resilience_);
    exec->set_plan_options(plan_options_);
    it = executors_.emplace(std::string(table_name), std::move(exec)).first;
  }
  // The session multiplexes tables onto one device; restore this table's
  // viewport before running anything (Executor::Make set it at creation).
  GPUDB_RETURN_NOT_OK(
      device_->SetViewport(it->second->table().num_rows()));
  // Refresh the plane-cache identity each statement: the catalog version
  // may have been bumped since the executor was cached.
  it->second->SetTableIdentity(std::string(table_name),
                               catalog_->version(table_name));
  return it->second.get();
}

Result<QueryResult> Session::Dispatch(std::string_view sql,
                                      const std::string& table_name,
                                      gpu::DeviceCounters* counters_out) {
  if (db::Catalog::IsSystemTable(table_name)) {
    return RunSystemTable(sql, table_name, counters_out);
  }
  return RunUserTable(sql, table_name, counters_out);
}

Result<QueryResult> Session::RunSystemTable(std::string_view sql,
                                            const std::string& table_name,
                                            gpu::DeviceCounters* counters_out) {
  GPUDB_ASSIGN_OR_RETURN(db::Table snapshot,
                         catalog_->MaterializeSystemTable(table_name));
  const auto snap = std::make_shared<const db::Table>(std::move(snapshot));
  GPUDB_ASSIGN_OR_RETURN(Query query, ParseQuery(sql, *snap));
  if (query.kind == Query::Kind::kAnalyzeTable) {
    return Status::InvalidArgument(
        "cannot ANALYZE system table '" + table_name +
        "' (snapshots are rebuilt per query; statistics would be stale "
        "immediately)");
  }
  // Snapshots are transient, so they get their own device instead of
  // disturbing the resident textures of the session's user tables.
  const uint32_t width = 1024;
  const uint32_t height = static_cast<uint32_t>(
      std::max<uint64_t>(1, (snap->num_rows() + width - 1) / width));
  gpu::Device device(width, height);
  GPUDB_ASSIGN_OR_RETURN(std::unique_ptr<core::Executor> exec,
                         core::Executor::Make(&device, snap.get()));
  exec->set_resilience_options(resilience_);
  QueryResult result;
  if (query.explain_analyze) {
    GPUDB_ASSIGN_OR_RETURN(result, ExecuteAnalyze(exec.get(), query, sql));
  } else {
    GPUDB_RETURN_NOT_OK(ExecuteParsed(exec.get(), query, &result));
  }
  result.table_view = snap;
  *counters_out = device.counters();
  return result;
}

bool Session::IsPoolable(const Query& query) {
  if (query.explain_analyze || query.explain_profile) return false;
  switch (query.kind) {
    case Query::Kind::kCount:
      return true;
    case Query::Kind::kAggregate:
      return core::PoolExecutor::ShardableAggregate(query.aggregate);
    case Query::Kind::kSelectRows:
      // ORDER BY runs the bitonic network over the whole relation; it is a
      // single-device operator (EXTENDING.md).
      return query.order_by_column.empty();
    default:
      return false;
  }
}

Result<QueryResult> Session::RunPooled(core::PoolExecutor& exec,
                                       const Query& query) {
  QueryResult result;
  result.kind = query.kind;
  auto run = [&]() -> Status {
    switch (query.kind) {
      case Query::Kind::kCount: {
        GPUDB_ASSIGN_OR_RETURN(result.count, exec.Count(query.where));
        return Status::OK();
      }
      case Query::Kind::kAggregate: {
        GPUDB_ASSIGN_OR_RETURN(
            result.scalar,
            exec.Aggregate(query.aggregate, query.column, query.where));
        return Status::OK();
      }
      case Query::Kind::kSelectRows: {
        GPUDB_ASSIGN_OR_RETURN(result.row_ids,
                               exec.SelectRowIds(query.where));
        // Shards are contiguous ranges recombined in order, so truncation
        // matches the single-device LIMIT semantics exactly.
        if (query.limit > 0 && result.row_ids.size() > query.limit) {
          result.row_ids.resize(query.limit);
        }
        return Status::OK();
      }
      default:
        return Status::Internal("non-poolable query routed to the pool");
    }
  };
  const Status status = run();
  pooled_statement_ = true;
  pool_stats_ = exec.last_stats();
  GPUDB_RETURN_NOT_OK(status);
  return result;
}

Result<QueryResult> Session::RunUserTable(std::string_view sql,
                                          const std::string& table_name,
                                          gpu::DeviceCounters* counters_out) {
  GPUDB_ASSIGN_OR_RETURN(core::Executor* exec, ExecutorForLocked(table_name));
  // Stats may have been (re)collected since the executor was cached.
  exec->set_table_stats(catalog_->Stats(table_name));
  const gpu::DeviceCounters before = device_->counters();
  Result<QueryResult> result = RunUserStatement(sql, table_name, exec);
  *counters_out = gpu::DeltaSince(before, device_->counters());
  return result;
}

Result<QueryResult> Session::RunUserStatement(std::string_view sql,
                                              const std::string& table_name,
                                              core::Executor* exec) {
  GPUDB_ASSIGN_OR_RETURN(Query query, ParseQuery(sql, exec->table()));
  // Shard-pool routing (DESIGN.md §15): poolable statements against
  // shardable tables scatter across the device pool. Tables the sharder
  // refuses fall through to the classic single-device path.
  if (pool_ != nullptr && IsPoolable(query)) {
    Result<core::PoolExecutor*> pooled = PoolExecutorForLocked(table_name);
    if (pooled.ok()) {
      return RunPooled(*pooled.ValueOrDie(), query);
    }
    if (!pooled.status().IsFailedPrecondition()) {
      return pooled.status();
    }
  }
  if (query.kind == Query::Kind::kAnalyzeTable) {
    GPUDB_ASSIGN_OR_RETURN(db::TableStats stats,
                           core::CollectTableStats(exec));
    stats.table_name = table_name;
    const uint64_t columns = stats.columns.size();
    GPUDB_RETURN_NOT_OK(catalog_->SetStats(table_name, std::move(stats)));
    // ANALYZE re-reads the backing store, so it also refreshes the
    // table's version: cached depth planes from before the re-read are
    // dropped (lint rule R6 enforces this pairing on every store writer).
    GPUDB_RETURN_NOT_OK(catalog_->BumpTableVersion(table_name));
    exec->set_table_stats(catalog_->Stats(table_name));
    QueryResult result;
    result.kind = Query::Kind::kAnalyzeTable;
    result.count = columns;
    return result;
  }
  if (query.explain_analyze) {
    return ExecuteAnalyze(exec, query, sql);
  }
  QueryResult result;
  GPUDB_RETURN_NOT_OK(ExecuteParsed(exec, query, &result));
  return result;
}

Result<QueryResult> Session::Execute(std::string_view sql) {
  if (device_ == nullptr || catalog_ == nullptr) {
    return Status::InvalidArgument("Session requires a device and a catalog");
  }
  Timer timer;
  // Config snapshot under a short critical section: admission must run
  // *before* execute_mu_ is taken for the statement (lock order: admission
  // ahead of session, DESIGN.md §12), so the fields the admission step
  // needs are copied out first.
  AdmissionController* admission = nullptr;
  std::string tenant;
  double deadline_ms = 0.0;
  {
    MutexLock lock(&execute_mu_);
    admission = admission_;
    tenant = tenant_;
    deadline_ms = resilience_.deadline_ms;
  }
  // Admission control (DESIGN.md §15) runs before the session lock: a
  // rejected statement never touches a device, never queues behind one, and
  // is still query-logged with its tenant for load-shedding dashboards.
  AdmissionController::Ticket ticket;
  if (admission != nullptr) {
    Result<AdmissionController::Ticket> admit =
        admission->Admit(tenant, deadline_ms);
    if (!admit.ok()) {
      QueryLogEntry entry;
      entry.sql = std::string(sql);
      entry.kind = "error";
      entry.ok = false;
      entry.tenant = tenant;
      entry.wall_ms = timer.ElapsedMs();
      entry.queue_ms = entry.wall_ms;
      entry.error = admit.status().ToString();
      QueryLog::Global().Add(entry);
      return admit.status();
    }
    ticket = std::move(admit).ValueOrDie();
  }
  // Queue-wait vs execute split: statements serialize on the session's one
  // device, so time spent acquiring execute_mu_ is admission queueing and
  // time under it is execution. Single-threaded callers see queue_ms ~= 0.
  // Everything the query-log entry needs is copied out of the locked
  // region; the log itself is written after release (the query log is a
  // telemetry leaf, but more importantly a slow stderr echo must not
  // extend the device critical section).
  double queue_ms = 0.0;
  double wall_ms = 0.0;
  bool pooled = false;
  core::PoolQueryStats pool_stats;
  gpu::DeviceCounters delta;
  // Resilience outcome for the query log: the delta of the process-wide
  // retry/fallback counters across this statement (sessions execute
  // statements one at a time, so the delta is this statement's).
  MetricsRegistry& registry = MetricsRegistry::Global();
  uint64_t retries_before = 0;
  uint64_t fellback_before = 0;
  Result<QueryResult> result = [&]() -> Result<QueryResult> {
    MutexLock lock(&execute_mu_);
    queue_ms = timer.ElapsedMs();
    pooled_statement_ = false;
    pool_stats_ = core::PoolQueryStats();
    retries_before = registry.counter("queries.retry_attempts").value();
    fellback_before = registry.counter("queries.fell_back").value();
    // No inner dispatch lambda: a lambda body is analyzed without the
    // enclosing capability, so the REQUIRES(execute_mu_) call to Dispatch
    // must sit lexically inside this MutexLock scope.
    const Result<std::string> table_name = StatementTableName(sql);
    Result<QueryResult> r =
        table_name.ok()
            ? Dispatch(sql, table_name.ValueOrDie(), &delta)
            : Result<QueryResult>(table_name.status());
    wall_ms = timer.ElapsedMs();
    pooled = pooled_statement_;
    pool_stats = pool_stats_;
    return r;
  }();

  QueryLogEntry entry;
  entry.sql = std::string(sql);
  entry.ok = result.ok();
  entry.wall_ms = wall_ms;
  entry.queue_ms = queue_ms;
  entry.exec_ms = wall_ms - queue_ms;
  entry.tenant = tenant;
  if (pooled) {
    // Attribute the statement to the device that mattered: the first one
    // that failed it when there were failovers, else the one that served
    // its first shard.
    entry.device_id = pool_stats.failovers > 0 &&
                              pool_stats.first_failed_device >= 0
                          ? pool_stats.first_failed_device
                          : pool_stats.first_device;
    entry.failovers = pool_stats.failovers;
    entry.fell_back = entry.fell_back || pool_stats.cpu_fallback;
  }
  entry.retries =
      registry.counter("queries.retry_attempts").value() - retries_before;
  entry.fell_back =
      registry.counter("queries.fell_back").value() > fellback_before;
  entry.passes = delta.passes;
  entry.fragments = delta.fragments_generated;
  entry.fused_passes = delta.fused_passes;
  entry.cache_hits = delta.plane_cache_hits;
  entry.simulated_ms = gpu::PerfModel().Estimate(delta).TotalMs();
  if (result.ok()) {
    entry.kind = std::string(ToString(result.ValueOrDie().kind));
    entry.rows_out = RowsOut(result.ValueOrDie());
  } else {
    entry.kind = "error";
    entry.error = result.status().ToString();
  }
  QueryLog::Global().Add(entry);
  return result;
}

Result<std::vector<QueryResult>> Session::ExecuteScript(
    std::string_view script) {
  std::vector<QueryResult> results;
  Status first_error = Status::OK();
  size_t start = 0;
  for (size_t i = 0; i <= script.size(); ++i) {
    if (i == script.size() || script[i] == ';') {
      std::string_view statement = script.substr(start, i - start);
      start = i + 1;
      const size_t first = statement.find_first_not_of(" \t\r\n");
      if (first == std::string_view::npos) continue;
      statement.remove_prefix(first);
      Result<QueryResult> r = Execute(statement);
      if (!r.ok()) {
        // Log-and-continue: the statement's error is already in the query
        // log (Execute records it); the rest of the script still runs.
        // DropStatus makes the swallowed failure visible to dashboards.
        if (first_error.ok()) first_error = r.status();
        DropStatus(r.status(), "Session::ExecuteScript statement");
        continue;
      }
      results.push_back(std::move(r).ValueOrDie());
    }
  }
  GPUDB_RETURN_NOT_OK(first_error);
  if (results.empty()) {
    return Status::InvalidArgument("script contains no statements");
  }
  return results;
}

}  // namespace sql
}  // namespace gpudb
