#ifndef GPUDB_SQL_SESSION_H_
#define GPUDB_SQL_SESSION_H_

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/core/executor.h"
#include "src/db/catalog.h"
#include "src/gpu/device.h"
#include "src/sql/parser.h"

namespace gpudb {
namespace sql {

/// \brief A multi-table SQL session over a db::Catalog: name resolution,
/// ANALYZE, system-table queries, and always-on query logging.
///
/// The single-executor ExecuteSql path (parser.h) serves the one-table
/// benchmarks; Session is the layer above it:
///
///  * `FROM <name>` resolves through the catalog. User tables get one
///    cached Executor each (textures stay resident across queries); the
///    gpudb_* system tables are materialized fresh per query from live
///    telemetry and executed on an ephemeral device, so
///    `SELECT * FROM gpudb_metrics WHERE value > 0` runs the normal GPU
///    selection path over a snapshot of the process's own counters.
///  * `ANALYZE <table>` collects column statistics (core/analyze) into the
///    catalog and attaches them to the table's executor, enabling
///    estimated-vs-actual row reporting in EXPLAIN ANALYZE.
///  * Every statement -- including failed ones -- is recorded in the global
///    QueryLog with wall and simulated times, pass and fragment counts; the
///    log feeds the gpudb_queries system table and the slow-query echo.
class Session {
 public:
  /// Both pointers must outlive the session. `device` runs user-table
  /// queries; its viewport is reset whenever the session switches tables.
  Session(gpu::Device* device, db::Catalog* catalog);

  /// Parses and runs one statement. For SELECT * against a system table,
  /// QueryResult::table_view holds the snapshot the row ids refer to.
  [[nodiscard]] Result<QueryResult> Execute(std::string_view sql);

  /// Runs a semicolon-separated script to completion: a failed statement
  /// does not stop the ones after it (its Status is recorded through
  /// DropStatus, so `queries.dropped_status` counts it, and the query log
  /// keeps its error text). If any statement failed, the first failure is
  /// returned after the script finishes; otherwise all results, in order.
  [[nodiscard]] Result<std::vector<QueryResult>> ExecuteScript(std::string_view script);

  db::Catalog& catalog() { return *catalog_; }

  /// Installs the resilience policy (retry / circuit breaker / CPU fallback
  /// / per-query deadline) on every executor this session creates -- cached
  /// user-table executors, existing and future, and the ephemeral executors
  /// that run system-table snapshots.
  void set_resilience_options(const core::ResilienceOptions& options);
  const core::ResilienceOptions& resilience_options() const {
    return resilience_;
  }

  /// Installs the planner rewrite controls (pass fusion / depth-plane
  /// caching, DESIGN.md §14) on every executor this session creates,
  /// existing and future. Never changes results; `--plan-cache` flips
  /// `plane_cache` on.
  void set_plan_options(const core::PlanOptions& options);
  const core::PlanOptions& plan_options() const { return plan_options_; }

  /// The cached executor for a registered user table (created on first use).
  [[nodiscard]] Result<core::Executor*> ExecutorFor(std::string_view table_name);

 private:
  /// Dispatches a statement whose target table is already resolved;
  /// `counters_out` receives the device-counter delta the statement caused.
  [[nodiscard]] Result<QueryResult> Dispatch(std::string_view sql,
                               const std::string& table_name,
                               gpu::DeviceCounters* counters_out);

  [[nodiscard]] Result<QueryResult> RunSystemTable(std::string_view sql,
                                     const std::string& table_name,
                                     gpu::DeviceCounters* counters_out);

  [[nodiscard]] Result<QueryResult> RunUserTable(std::string_view sql,
                                   const std::string& table_name,
                                   gpu::DeviceCounters* counters_out);

  gpu::Device* device_;
  db::Catalog* catalog_;
  /// Statements serialize here (one device, one executor cache). The time a
  /// statement spends waiting for this lock is its QueryLogEntry::queue_ms.
  std::mutex execute_mu_;
  core::ResilienceOptions resilience_;
  core::PlanOptions plan_options_;
  std::map<std::string, std::unique_ptr<core::Executor>, std::less<>>
      executors_;
};

}  // namespace sql
}  // namespace gpudb

#endif  // GPUDB_SQL_SESSION_H_
