#ifndef GPUDB_SQL_SESSION_H_
#define GPUDB_SQL_SESSION_H_

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/result.h"
#include "src/common/thread_annotations.h"
#include "src/core/executor.h"
#include "src/core/pool_executor.h"
#include "src/db/catalog.h"
#include "src/db/sharding.h"
#include "src/gpu/device.h"
#include "src/gpu/device_pool.h"
#include "src/sql/admission.h"
#include "src/sql/parser.h"

namespace gpudb {
namespace sql {

/// \brief A multi-table SQL session over a db::Catalog: name resolution,
/// ANALYZE, system-table queries, and always-on query logging.
///
/// The single-executor ExecuteSql path (parser.h) serves the one-table
/// benchmarks; Session is the layer above it:
///
///  * `FROM <name>` resolves through the catalog. User tables get one
///    cached Executor each (textures stay resident across queries); the
///    gpudb_* system tables are materialized fresh per query from live
///    telemetry and executed on an ephemeral device, so
///    `SELECT * FROM gpudb_metrics WHERE value > 0` runs the normal GPU
///    selection path over a snapshot of the process's own counters.
///  * `ANALYZE <table>` collects column statistics (core/analyze) into the
///    catalog and attaches them to the table's executor, enabling
///    estimated-vs-actual row reporting in EXPLAIN ANALYZE.
///  * Every statement -- including failed ones -- is recorded in the global
///    QueryLog with wall and simulated times, pass and fragment counts; the
///    log feeds the gpudb_queries system table and the slow-query echo.
class Session {
 public:
  /// Both pointers must outlive the session. `device` runs user-table
  /// queries; its viewport is reset whenever the session switches tables.
  Session(gpu::Device* device, db::Catalog* catalog);

  /// Parses and runs one statement. For SELECT * against a system table,
  /// QueryResult::table_view holds the snapshot the row ids refer to.
  [[nodiscard]] Result<QueryResult> Execute(std::string_view sql);

  /// Runs a semicolon-separated script to completion: a failed statement
  /// does not stop the ones after it (its Status is recorded through
  /// DropStatus, so `queries.dropped_status` counts it, and the query log
  /// keeps its error text). If any statement failed, the first failure is
  /// returned after the script finishes; otherwise all results, in order.
  [[nodiscard]] Result<std::vector<QueryResult>> ExecuteScript(std::string_view script);

  db::Catalog& catalog() { return *catalog_; }

  /// Installs the resilience policy (retry / circuit breaker / CPU fallback
  /// / per-query deadline) on every executor this session creates -- cached
  /// user-table executors, existing and future, and the ephemeral executors
  /// that run system-table snapshots.
  void set_resilience_options(const core::ResilienceOptions& options)
      EXCLUDES(execute_mu_);
  core::ResilienceOptions resilience_options() const EXCLUDES(execute_mu_) {
    MutexLock lock(&execute_mu_);
    return resilience_;
  }

  /// Installs the planner rewrite controls (pass fusion / depth-plane
  /// caching, DESIGN.md §14) on every executor this session creates,
  /// existing and future. Never changes results; `--plan-cache` flips
  /// `plane_cache` on.
  void set_plan_options(const core::PlanOptions& options)
      EXCLUDES(execute_mu_);
  core::PlanOptions plan_options() const EXCLUDES(execute_mu_) {
    MutexLock lock(&execute_mu_);
    return plan_options_;
  }

  /// The cached executor for a registered user table (created on first use).
  [[nodiscard]] Result<core::Executor*> ExecutorFor(std::string_view table_name)
      EXCLUDES(execute_mu_);

  /// Enables shard-parallel execution (DESIGN.md §15): poolable statements
  /// (COUNT, shardable aggregates, unordered SELECT) against shardable
  /// tables run range-sharded across the pool's devices with replica
  /// failover. `pool` must outlive the session; nullptr disables.
  /// `num_shards` <= 0 picks the default of 2 shards per device. Tables the
  /// sharder refuses (float columns quantize per shard) transparently stay
  /// on the single-device path.
  void SetDevicePool(gpu::DevicePool* pool, int num_shards = 0)
      EXCLUDES(execute_mu_);

  /// Installs shared admission control: Execute() asks for a slot before
  /// touching the device and surfaces kResourceExhausted rejections (which
  /// are still query-logged, attributed to the tenant). `admission` is
  /// typically shared by many sessions and must outlive them; nullptr
  /// disables.
  void set_admission(AdmissionController* admission) EXCLUDES(execute_mu_) {
    MutexLock lock(&execute_mu_);
    admission_ = admission;
  }

  /// Tenant identity attached to admission requests and query-log entries.
  void set_tenant(std::string tenant) EXCLUDES(execute_mu_) {
    MutexLock lock(&execute_mu_);
    tenant_ = std::move(tenant);
  }
  std::string tenant() const EXCLUDES(execute_mu_) {
    MutexLock lock(&execute_mu_);
    return tenant_;
  }

  /// The cached pool executor for a registered user table, or
  /// FailedPrecondition when the table cannot be sharded bit-exactly.
  [[nodiscard]] Result<core::PoolExecutor*> PoolExecutorFor(
      std::string_view table_name) EXCLUDES(execute_mu_);

 private:
  /// Dispatches a statement whose target table is already resolved;
  /// `counters_out` receives the device-counter delta the statement caused.
  [[nodiscard]] Result<QueryResult> Dispatch(std::string_view sql,
                               const std::string& table_name,
                               gpu::DeviceCounters* counters_out)
      REQUIRES(execute_mu_);

  [[nodiscard]] Result<QueryResult> RunSystemTable(std::string_view sql,
                                     const std::string& table_name,
                                     gpu::DeviceCounters* counters_out)
      REQUIRES(execute_mu_);

  [[nodiscard]] Result<QueryResult> RunUserTable(std::string_view sql,
                                   const std::string& table_name,
                                   gpu::DeviceCounters* counters_out)
      REQUIRES(execute_mu_);

  /// The statement body of RunUserTable (routing, ANALYZE, EXPLAIN, plain
  /// execution), split out as a named function rather than a lambda so the
  /// REQUIRES contract stays visible to the capability analysis.
  [[nodiscard]] Result<QueryResult> RunUserStatement(std::string_view sql,
                                       const std::string& table_name,
                                       core::Executor* exec)
      REQUIRES(execute_mu_);

  /// Lock-held bodies of the public executor accessors: RunUserTable runs
  /// under execute_mu_ and must not re-enter the public locking wrappers.
  [[nodiscard]] Result<core::Executor*> ExecutorForLocked(
      std::string_view table_name) REQUIRES(execute_mu_);
  [[nodiscard]] Result<core::PoolExecutor*> PoolExecutorForLocked(
      std::string_view table_name) REQUIRES(execute_mu_);

  /// True when the statement can be answered by shard recombination
  /// (DESIGN.md §15): COUNT, shardable aggregates, unordered SELECT; never
  /// EXPLAIN (per-pass attribution is a single-device concept).
  static bool IsPoolable(const Query& query);

  /// Runs an already-parsed poolable statement through the shard pool and
  /// records its PoolQueryStats for query-log attribution.
  [[nodiscard]] Result<QueryResult> RunPooled(core::PoolExecutor& exec,
                                              const Query& query)
      REQUIRES(execute_mu_);

  gpu::Device* const device_;    // lint: lock-free (set at construction)
  db::Catalog* const catalog_;   // lint: lock-free (set at construction)
  /// Statements serialize here (one device, one executor cache). The time a
  /// statement spends waiting for this lock is its QueryLogEntry::queue_ms.
  /// Lock-order level: `session` -- held across dispatch into catalog,
  /// device, and pool code (all inner levels), released before the query
  /// log is written. mutable so const accessors can snapshot config.
  mutable Mutex execute_mu_;
  core::ResilienceOptions resilience_ GUARDED_BY(execute_mu_);
  core::PlanOptions plan_options_ GUARDED_BY(execute_mu_);
  std::map<std::string, std::unique_ptr<core::Executor>, std::less<>>
      executors_ GUARDED_BY(execute_mu_);

  /// Shard-pool state. A PoolEntry caches the sharded copy of a table and
  /// its executor; `exec == nullptr` remembers that the sharder refused the
  /// table so we do not re-shard it on every statement.
  struct PoolEntry {
    std::unique_ptr<db::ShardedTable> sharded;
    std::unique_ptr<core::PoolExecutor> exec;
  };
  gpu::DevicePool* pool_ GUARDED_BY(execute_mu_) = nullptr;
  int pool_shards_ GUARDED_BY(execute_mu_) = 0;
  std::map<std::string, PoolEntry, std::less<>> pool_executors_
      GUARDED_BY(execute_mu_);
  /// Attribution of the statement currently executing: whether it ran
  /// pooled, and the stats it produced.
  bool pooled_statement_ GUARDED_BY(execute_mu_) = false;
  core::PoolQueryStats pool_stats_ GUARDED_BY(execute_mu_);

  AdmissionController* admission_ GUARDED_BY(execute_mu_) = nullptr;
  std::string tenant_ GUARDED_BY(execute_mu_);
};

}  // namespace sql
}  // namespace gpudb

#endif  // GPUDB_SQL_SESSION_H_
