#ifndef GPUDB_SQL_ADMISSION_H_
#define GPUDB_SQL_ADMISSION_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>

#include "src/common/mutex.h"
#include "src/common/result.h"
#include "src/common/thread_annotations.h"

namespace gpudb {
namespace sql {

/// \brief Construction parameters for an AdmissionController.
struct AdmissionOptions {
  /// Statements allowed to execute concurrently across all sessions
  /// sharing the controller (typically the device-pool size).
  int max_concurrent = 4;
  /// Statements allowed to wait for an execution slot; one more is
  /// rejected with kResourceExhausted immediately -- never queued, never
  /// blocked.
  int queue_capacity = 16;
  /// Upper bound on time spent waiting in the queue (the overflow valve
  /// that guarantees Admit can never hang); a statement with a deadline
  /// waits at most min(deadline, this).
  double max_queue_wait_ms = 1000.0;
  /// Per-tenant token bucket: sustained statements/second (0 = no quota)
  /// and burst capacity.
  double tenant_qps = 0.0;
  double tenant_burst = 8.0;
  /// Deadline-aware rejection consults the p95 of "sql.exec_ms" only once
  /// it has this many samples -- a cold histogram says nothing yet.
  uint64_t min_p95_samples = 32;
  /// Injectable monotonic clock in milliseconds (tests); default is
  /// std::chrono::steady_clock.
  std::function<double()> now_ms;
};

/// \brief Load shedding in front of the multi-session tier (DESIGN.md §15).
///
/// Admit() applies, in order:
///   1. the tenant's token bucket  -> kResourceExhausted ("over quota"),
///      counted in `tenant.throttled`;
///   2. deadline-aware rejection   -> kResourceExhausted when the
///      statement's remaining deadline cannot cover the observed p95
///      execution time (better to shed now than to burn a device slot on a
///      statement that will miss its deadline anyway);
///   3. the bounded admission queue -> an execution slot immediately, a
///      bounded wait when the queue has room, kResourceExhausted when it is
///      full.
/// Every rejection path is synchronous and deterministic -- overflow never
/// blocks -- and counted in `admission.rejected`; the queue depth is the
/// `admission.queue_depth` gauge.
///
/// The returned Ticket releases the execution slot on destruction.
/// Thread-safe; one controller is shared by all sessions of a server.
class AdmissionController {
 public:
  explicit AdmissionController(AdmissionOptions options = {});
  AdmissionController(const AdmissionController&) = delete;
  AdmissionController& operator=(const AdmissionController&) = delete;

  /// \brief RAII execution slot; releasing it wakes one queued statement.
  class Ticket {
   public:
    Ticket() = default;
    Ticket(Ticket&& other) noexcept : controller_(other.controller_) {
      other.controller_ = nullptr;
    }
    Ticket& operator=(Ticket&& other) noexcept {
      if (this != &other) {
        Release();
        controller_ = other.controller_;
        other.controller_ = nullptr;
      }
      return *this;
    }
    ~Ticket() { Release(); }

    bool admitted() const { return controller_ != nullptr; }

    /// Releases the slot before destruction (idempotent).
    void Release();

   private:
    friend class AdmissionController;
    explicit Ticket(AdmissionController* controller)
        : controller_(controller) {}

    AdmissionController* controller_ = nullptr;
  };

  /// Requests admission for one statement. `tenant` may be empty (no
  /// quota); `deadline_ms` is the statement's total budget, 0 = none.
  [[nodiscard]] Result<Ticket> Admit(const std::string& tenant,
                                     double deadline_ms);

  int running() const;
  int queue_depth() const;
  const AdmissionOptions& options() const { return options_; }

 private:
  struct TokenBucket {
    double tokens = 0.0;
    double refilled_at_ms = 0.0;
    bool initialized = false;
  };

  void ReleaseSlot() EXCLUDES(mu_);
  /// Takes one token from `tenant`'s bucket; false = over quota.
  bool TakeToken(const std::string& tenant, double now) REQUIRES(mu_);

  // lint: lock-free (clamped once in the constructor, const thereafter)
  AdmissionOptions options_;
  /// Lock-order level: `admission` (outermost). The p95 shed decision reads
  /// the "sql.exec_ms" histogram *before* taking mu_ -- the registry lookup
  /// takes the telemetry-leaf metrics lock, and holding the outermost lock
  /// into another subsystem is exactly what rule R8 bans.
  mutable Mutex mu_;
  CondVar slot_free_;
  int running_ GUARDED_BY(mu_) = 0;
  int waiting_ GUARDED_BY(mu_) = 0;
  std::map<std::string, TokenBucket> buckets_ GUARDED_BY(mu_);
};

}  // namespace sql
}  // namespace gpudb

#endif  // GPUDB_SQL_ADMISSION_H_
