#ifndef GPUDB_CORE_DEPTH_ENCODING_H_
#define GPUDB_CORE_DEPTH_ENCODING_H_

#include <cstdint>

#include "src/db/column.h"
#include "src/gpu/framebuffer.h"

namespace gpudb {
namespace core {

/// \brief Affine map from attribute values to normalized depth in [0,1].
///
/// CopyToDepth (Routine 4.1) must "normalize the texture value to the range
/// of valid depth values [0,1]" before writing it to the depth buffer. The
/// choice of normalization decides whether comparisons stay exact:
///
///  * Int24 columns use scale = 1 / (2^24 - 1): every integer v in
///    [0, 2^24) maps to the quantized depth value v itself, so depth-test
///    comparisons are bit-exact.
///  * Float columns map [min, max] onto [0,1]; quantization to the 24-bit
///    depth buffer introduces error up to (max-min) / 2^24 (the precision
///    limit the paper discusses in Section 6.1).
///
/// depth = (value - offset) * scale.
struct DepthEncoding {
  double scale = 1.0;
  double offset = 0.0;

  /// Normalized (unclamped) depth for an attribute value.
  float Encode(double value) const {
    return static_cast<float>((value - offset) * scale);
  }

  /// The 24-bit quantized depth the GPU would store for `value`.
  uint32_t EncodeQuantized(double value) const {
    return gpu::QuantizeDepth(Encode(value));
  }

  /// Exact identity encoding for integer columns: quantized depth == value.
  static DepthEncoding ExactInt24();

  /// Exact identity encoding for a depth buffer of `bits` precision:
  /// integers in [0, 2^bits) map to their own depth code on such a buffer.
  /// Data wider than the buffer cannot be exact -- the Section 6.1
  /// precision ceiling (see the precision ablation benchmark).
  static DepthEncoding ExactInt(int bits);

  /// Picks the encoding appropriate for a column's type and domain.
  static DepthEncoding ForColumn(const db::Column& column);
};

}  // namespace core
}  // namespace gpudb

#endif  // GPUDB_CORE_DEPTH_ENCODING_H_
