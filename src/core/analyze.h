#ifndef GPUDB_CORE_ANALYZE_H_
#define GPUDB_CORE_ANALYZE_H_

#include "src/common/result.h"
#include "src/core/executor.h"
#include "src/db/stats.h"
#include "src/predicate/expr.h"

namespace gpudb {
namespace core {

/// \brief `ANALYZE <table>`: collects per-column statistics for the
/// executor's table.
///
/// Row count, min and max come from the column metadata; the distinct count
/// is exact (one hash-set pass on the CPU). The equi-depth histogram fences
/// are the interesting part: integer columns compute them on the GPU with
/// Executor::Quantiles (Routine 4.5's b_max-pass binary search per fence),
/// which is exactly the selectivity-estimation machinery paper Section 5.11
/// points at for join processing. Float columns (which the depth-buffer
/// quantile routine cannot handle exactly) fall back to a CPU sort with the
/// same rank semantics, so both paths yield fences[i] = value at rank
/// ceil((i+1) * n / buckets).
[[nodiscard]] Result<db::TableStats> CollectTableStats(Executor* executor, int buckets = 16);

/// \brief Estimated selectivity of a WHERE tree in [0, 1] from ANALYZE
/// statistics, using the textbook independence assumptions:
///
///   * leaf `a op const`  -> ColumnStats::SelectivityCompare (equi-depth
///     histogram interpolation; equality via 1/distinct),
///   * leaf `a op b` (attribute-attribute) -> 1/3 (the classic heuristic:
///     <, =, > are equally likely),
///   * AND -> s1 * s2, OR -> s1 + s2 - s1*s2, NOT -> 1 - s,
///   * null expression (no WHERE) -> 1.
///
/// Columns missing from `stats` contribute the conservative estimate 1.
double EstimateSelectivity(const db::TableStats& stats,
                           const predicate::ExprPtr& expr);

}  // namespace core
}  // namespace gpudb

#endif  // GPUDB_CORE_ANALYZE_H_
