#ifndef GPUDB_CORE_SELECTION_H_
#define GPUDB_CORE_SELECTION_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/core/eval_cnf.h"
#include "src/gpu/device.h"

namespace gpudb {
namespace core {

/// \brief Marks every record in the viewport as selected (the WHERE-less
/// query): clears stencil to 1 and reports the full record count.
[[nodiscard]] Result<StencilSelection> SelectAll(gpu::Device* device);

/// \brief Materializes the selection held in the stencil buffer as a 0/1
/// bitmap over the first `num_records` records.
///
/// The paper's algorithms deliberately never read results back (counts come
/// from occlusion queries); materialization is what a downstream SELECT
/// needs, and is charged as a GPU->CPU stencil readback.
[[nodiscard]] Result<std::vector<uint8_t>> SelectionToBitmap(gpu::Device* device,
                                               const StencilSelection& sel,
                                               uint64_t num_records);

/// \brief Materializes the selection as sorted row ids.
[[nodiscard]] Result<std::vector<uint32_t>> SelectionToRowIds(gpu::Device* device,
                                                const StencilSelection& sel,
                                                uint64_t num_records);

}  // namespace core
}  // namespace gpudb

#endif  // GPUDB_CORE_SELECTION_H_
