#include "src/core/kth_largest.h"

#include <string>

#include "src/common/bit_util.h"
#include "src/core/op_span.h"
#include "src/core/state_guard.h"

namespace gpudb {
namespace core {

namespace {

Status ValidateBitWidth(int bit_width) {
  if (bit_width < 1 || bit_width > gpu::kDepthBits) {
    return Status::InvalidArgument("bit_width must be in [1," +
                                   std::to_string(gpu::kDepthBits) +
                                   "], got " + std::to_string(bit_width));
  }
  return Status::OK();
}

/// Number of records the statistic ranges over: the selection size if one is
/// active, else the whole viewport.
uint64_t ValidCount(const gpu::Device& device, const KthOptions& options) {
  return options.selection.has_value() ? options.selection->count
                                       : device.viewport_pixels();
}

}  // namespace

Result<uint32_t> KthLargest(gpu::Device* device, const AttributeBinding& attr,
                            int bit_width, uint64_t k,
                            const KthOptions& options) {
  GPUDB_RETURN_NOT_OK(ValidateBitWidth(bit_width));
  const uint64_t n = ValidCount(*device, options);
  if (k == 0 || k > n) {
    return Status::OutOfRange("k=" + std::to_string(k) +
                              " out of range for " + std::to_string(n) +
                              " records");
  }
  GpuOpSpan op("KthLargest", device);
  op.AddTag("k", k);
  op.AddTag("bit_width", bit_width);
  op.AddTag("records", n);

  // One copy, then bit_width comparison passes with depth writes disabled.
  GPUDB_RETURN_NOT_OK(CopyToDepth(device, attr));
  StateGuard guard(device);
  device->SetAlphaTest(false, gpu::CompareOp::kAlways, 0.0f);
  if (options.selection.has_value()) {
    device->SetStencilTest(true, gpu::CompareOp::kEqual,
                           options.selection->valid_value);
    device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                         gpu::StencilOp::kKeep);
  } else {
    device->SetStencilTest(false, gpu::CompareOp::kAlways, 0);
  }

  uint64_t x = 0;
  for (int i = bit_width - 1; i >= 0; --i) {
    // Cooperative cancellation between binary-search passes (the per-pass
    // device check would also catch it; this keeps the operator loop
    // responsive even if a pass is skipped).
    GPUDB_RETURN_NOT_OK(device->CheckInterrupt());
    const uint64_t tentative = x + bit_util::PowerOfTwo(i);
    GPUDB_ASSIGN_OR_RETURN(
        uint64_t count,
        CompareCount(device, gpu::CompareOp::kGreaterEqual,
                     static_cast<double>(tentative), attr.encoding));
    // Lemma 1: count > k-1 means the tentative value is still <= v_k.
    if (count > k - 1) {
      x = tentative;
    }
  }
  return static_cast<uint32_t>(x);
}

Result<std::vector<uint32_t>> KthLargestBatch(gpu::Device* device,
                                              const AttributeBinding& attr,
                                              int bit_width,
                                              const std::vector<uint64_t>& ks,
                                              const KthOptions& options) {
  GPUDB_RETURN_NOT_OK(ValidateBitWidth(bit_width));
  if (ks.empty()) {
    return Status::InvalidArgument("KthLargestBatch requires at least one k");
  }
  const uint64_t n = ValidCount(*device, options);
  for (uint64_t k : ks) {
    if (k == 0 || k > n) {
      return Status::OutOfRange("k=" + std::to_string(k) +
                                " out of range for " + std::to_string(n) +
                                " records");
    }
  }

  GpuOpSpan op("KthLargestBatch", device);
  op.AddTag("batch", ks.size());
  op.AddTag("bit_width", bit_width);
  op.AddTag("records", n);

  // One shared copy; the attribute survives every comparison pass because
  // depth writes are masked off.
  GPUDB_RETURN_NOT_OK(CopyToDepth(device, attr));
  StateGuard guard(device);
  device->SetAlphaTest(false, gpu::CompareOp::kAlways, 0.0f);
  if (options.selection.has_value()) {
    device->SetStencilTest(true, gpu::CompareOp::kEqual,
                           options.selection->valid_value);
    device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                         gpu::StencilOp::kKeep);
  } else {
    device->SetStencilTest(false, gpu::CompareOp::kAlways, 0);
  }

  std::vector<uint32_t> results;
  results.reserve(ks.size());
  for (uint64_t k : ks) {
    uint64_t x = 0;
    for (int i = bit_width - 1; i >= 0; --i) {
      GPUDB_RETURN_NOT_OK(device->CheckInterrupt());
      const uint64_t tentative = x + bit_util::PowerOfTwo(i);
      GPUDB_ASSIGN_OR_RETURN(
          uint64_t count,
          CompareCount(device, gpu::CompareOp::kGreaterEqual,
                       static_cast<double>(tentative), attr.encoding));
      if (count > k - 1) x = tentative;
    }
    results.push_back(static_cast<uint32_t>(x));
  }
  return results;
}

Result<uint32_t> KthSmallest(gpu::Device* device, const AttributeBinding& attr,
                             int bit_width, uint64_t k,
                             const KthOptions& options) {
  const uint64_t n = ValidCount(*device, options);
  if (k == 0 || k > n) {
    return Status::OutOfRange("k=" + std::to_string(k) +
                              " out of range for " + std::to_string(n) +
                              " records");
  }
  return KthLargest(device, attr, bit_width, n - k + 1, options);
}

Result<uint32_t> KthSmallestDirect(gpu::Device* device,
                                   const AttributeBinding& attr,
                                   int bit_width, uint64_t k,
                                   const KthOptions& options) {
  GPUDB_RETURN_NOT_OK(ValidateBitWidth(bit_width));
  const uint64_t n = ValidCount(*device, options);
  if (k == 0 || k > n) {
    return Status::OutOfRange("k=" + std::to_string(k) +
                              " out of range for " + std::to_string(n) +
                              " records");
  }
  GPUDB_RETURN_NOT_OK(CopyToDepth(device, attr));
  StateGuard guard(device);
  device->SetAlphaTest(false, gpu::CompareOp::kAlways, 0.0f);
  if (options.selection.has_value()) {
    device->SetStencilTest(true, gpu::CompareOp::kEqual,
                           options.selection->valid_value);
    device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                         gpu::StencilOp::kKeep);
  } else {
    device->SetStencilTest(false, gpu::CompareOp::kAlways, 0);
  }

  uint64_t x = 0;
  for (int i = bit_width - 1; i >= 0; --i) {
    GPUDB_RETURN_NOT_OK(device->CheckInterrupt());
    const uint64_t tentative = x + bit_util::PowerOfTwo(i);
    // Inverted comparison (Lemma 1's dual): with count = #{v < m},
    // count <= k-1 means at most k-1 values lie below m, so the k-th
    // smallest is still >= m and the bit can be kept.
    GPUDB_ASSIGN_OR_RETURN(
        uint64_t count,
        CompareCount(device, gpu::CompareOp::kLess,
                     static_cast<double>(tentative), attr.encoding));
    if (count <= k - 1) {
      x = tentative;
    }
  }
  return static_cast<uint32_t>(x);
}

Result<uint32_t> MaxValue(gpu::Device* device, const AttributeBinding& attr,
                          int bit_width, const KthOptions& options) {
  return KthLargest(device, attr, bit_width, 1, options);
}

Result<uint32_t> MinValue(gpu::Device* device, const AttributeBinding& attr,
                          int bit_width, const KthOptions& options) {
  return KthSmallest(device, attr, bit_width, 1, options);
}

Result<uint32_t> MedianValue(gpu::Device* device, const AttributeBinding& attr,
                             int bit_width, const KthOptions& options) {
  const uint64_t n = ValidCount(*device, options);
  if (n == 0) {
    return Status::InvalidArgument("median over empty selection");
  }
  return KthSmallest(device, attr, bit_width, (n + 1) / 2, options);
}

}  // namespace core
}  // namespace gpudb
