#include "src/core/eval_cnf.h"

#include <string>

#include "src/core/count.h"
#include "src/core/op_span.h"
#include "src/core/state_guard.h"

namespace gpudb {
namespace core {

GpuPredicate GpuPredicate::DepthCompare(const AttributeBinding& attr,
                                        gpu::CompareOp op, double constant) {
  GpuPredicate p;
  p.kind = Kind::kDepthCompare;
  p.attr = attr;
  p.op = op;
  p.constant = constant;
  return p;
}

GpuPredicate GpuPredicate::Semilinear(gpu::TextureId texture,
                                      const SemilinearQuery& query) {
  GpuPredicate p;
  p.kind = Kind::kSemilinear;
  p.texture = texture;
  p.query = query;
  return p;
}

namespace {

/// Evaluates one simple predicate with the caller's stencil configuration
/// active, leaving the stencil config untouched.
Status PerformPredicate(gpu::Device* device, const GpuPredicate& pred) {
  switch (pred.kind) {
    case GpuPredicate::Kind::kDepthCompare:
      // CopyToDepth runs under its own state guard (stencil disabled), then
      // the comparison quad triggers the caller's stencil ops.
      GPUDB_RETURN_NOT_OK(CopyToDepth(device, pred.attr));
      return CompareQuad(device, pred.op, pred.constant, pred.attr.encoding);
    case GpuPredicate::Kind::kSemilinear:
      // Fragments failing the query are killed before the stencil stage;
      // survivors trigger the caller's Op3. The depth unit must be inert.
      device->SetDepthTest(false, gpu::CompareOp::kAlways);
      device->SetDepthBoundsTest(false);
      return SemilinearQuad(device, pred.texture, pred.query);
  }
  return Status::Internal("corrupt GpuPredicate");
}

Status ValidateClauses(const std::vector<GpuClause>& clauses) {
  if (clauses.empty()) {
    return Status::InvalidArgument("EvalCnf requires at least one clause");
  }
  for (const GpuClause& clause : clauses) {
    if (clause.empty()) {
      return Status::InvalidArgument("EvalCnf: empty clause");
    }
  }
  return Status::OK();
}

}  // namespace

Result<StencilSelection> EvalCnf(gpu::Device* device,
                                 const std::vector<GpuClause>& clauses) {
  GPUDB_RETURN_NOT_OK(ValidateClauses(clauses));
  GpuOpSpan op("EvalCnf", device);
  if (op.active()) {
    size_t predicates = 0;
    for (const GpuClause& clause : clauses) predicates += clause.size();
    op.AddTag("clauses", clauses.size());
    op.AddTag("predicates", predicates);
  }
  StateGuard guard(device);
  device->SetAlphaTest(false, gpu::CompareOp::kAlways, 0.0f);
  device->SetColorWriteMask(false);

  // Line 1: Clear Stencil to 1 (TRUE AND A_1).
  device->ClearStencil(1);

  const size_t k = clauses.size();
  for (size_t i = 1; i <= k; ++i) {
    // Cooperative cancellation between clauses (large CNFs run thousands
    // of passes; the per-pass device check bounds the latency either way).
    GPUDB_RETURN_NOT_OK(device->CheckInterrupt());
    const bool odd = (i % 2) == 1;
    // Lines 4-10: valid records hold 1 on odd iterations (passing ones are
    // INCRemented to 2), 2 on even iterations (passing ones DECRemented
    // back to 1). Records that already passed an earlier predicate of this
    // clause no longer match the valid value, so they cannot be bumped
    // twice -- this is what makes the disjunction work.
    device->SetStencilTest(true, gpu::CompareOp::kEqual, odd ? 1 : 2);
    device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                         odd ? gpu::StencilOp::kIncr : gpu::StencilOp::kDecr);
    // Lines 11-14: evaluate each B_ij of the clause.
    for (const GpuPredicate& pred : clauses[i - 1]) {
      // Cooperative cancellation between predicate passes (lint rule R2).
      GPUDB_RETURN_NOT_OK(device->CheckInterrupt());
      GPUDB_RETURN_NOT_OK(PerformPredicate(device, pred));
    }
    // Lines 15-19: records still holding the old valid value failed every
    // B_ij of this clause -> invalidate them (stencil 0).
    GPUDB_RETURN_NOT_OK(ZeroStencilValue(device, odd ? 1 : 2));
  }

  StencilSelection sel;
  sel.valid_value = (k % 2 == 1) ? 2 : 1;
  GPUDB_ASSIGN_OR_RETURN(sel.count, CountSelected(device, sel.valid_value));
  return sel;
}

Result<StencilSelection> EvalDnf(gpu::Device* device,
                                 const std::vector<GpuTerm>& terms) {
  if (terms.empty()) {
    return Status::InvalidArgument("EvalDnf requires at least one term");
  }
  for (const GpuTerm& term : terms) {
    if (term.empty()) {
      return Status::InvalidArgument("EvalDnf: empty term");
    }
    if (term.size() > 254) {
      return Status::ResourceExhausted(
          "EvalDnf terms support at most 254 conjuncts (8-bit stencil)");
    }
  }
  GpuOpSpan op("EvalDnf", device);
  if (op.active()) {
    size_t predicates = 0;
    for (const GpuTerm& term : terms) predicates += term.size();
    op.AddTag("terms", terms.size());
    op.AddTag("predicates", predicates);
  }
  StateGuard guard(device);
  device->SetAlphaTest(false, gpu::CompareOp::kAlways, 0.0f);
  device->SetColorWriteMask(false);
  // 1 = candidate (not yet selected), 0 = selected by an earlier term.
  device->ClearStencil(1);

  for (const GpuTerm& term : terms) {
    GPUDB_RETURN_NOT_OK(device->CheckInterrupt());
    const auto m = static_cast<uint8_t>(term.size());
    // Conjunction chain over candidates: predicate j bumps j -> j+1.
    uint8_t value = 1;
    for (const GpuPredicate& pred : term) {
      // Cooperative cancellation between predicate passes (lint rule R2).
      GPUDB_RETURN_NOT_OK(device->CheckInterrupt());
      device->SetStencilTest(true, gpu::CompareOp::kEqual, value);
      device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                           gpu::StencilOp::kIncr);
      GPUDB_RETURN_NOT_OK(PerformPredicate(device, pred));
      ++value;
    }
    // Records at m+1 satisfied the whole term: stamp them selected (0).
    device->SetStencilTest(true, gpu::CompareOp::kEqual,
                           static_cast<uint8_t>(m + 1));
    device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                         gpu::StencilOp::kZero);
    device->SetDepthTest(false, gpu::CompareOp::kAlways);
    device->SetDepthBoundsTest(false);
    GPUDB_RETURN_NOT_OK(device->RenderQuad(0.0f));
    // Walk partial chains (values 2..m) back down to 1 so the next term
    // starts clean: each pass decrements every value above 1.
    for (int step = 0; step < m - 1; ++step) {
      // Cooperative cancellation between walk-down passes (lint rule R2).
      GPUDB_RETURN_NOT_OK(device->CheckInterrupt());
      device->SetStencilTest(true, gpu::CompareOp::kLess, /*ref=*/1);
      device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                           gpu::StencilOp::kDecr);
      GPUDB_RETURN_NOT_OK(device->RenderQuad(0.0f));
    }
  }

  StencilSelection sel;
  sel.valid_value = 0;
  GPUDB_ASSIGN_OR_RETURN(sel.count, CountSelected(device, 0));
  return sel;
}

Result<StencilSelection> EvalConjunction(
    gpu::Device* device, const std::vector<GpuPredicate>& conjuncts) {
  if (conjuncts.empty()) {
    return Status::InvalidArgument(
        "EvalConjunction requires at least one predicate");
  }
  if (conjuncts.size() > 254) {
    return Status::ResourceExhausted(
        "EvalConjunction supports at most 254 conjuncts (8-bit stencil); "
        "got " +
        std::to_string(conjuncts.size()));
  }
  GpuOpSpan op("EvalConjunction", device);
  op.AddTag("predicates", conjuncts.size());
  StateGuard guard(device);
  device->SetAlphaTest(false, gpu::CompareOp::kAlways, 0.0f);
  device->SetColorWriteMask(false);
  device->ClearStencil(1);

  uint8_t valid = 1;
  for (const GpuPredicate& pred : conjuncts) {
    // Cooperative cancellation between predicate passes (lint rule R2).
    GPUDB_RETURN_NOT_OK(device->CheckInterrupt());
    device->SetStencilTest(true, gpu::CompareOp::kEqual, valid);
    device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                         gpu::StencilOp::kIncr);
    GPUDB_RETURN_NOT_OK(PerformPredicate(device, pred));
    ++valid;
  }

  StencilSelection sel;
  sel.valid_value = valid;
  GPUDB_ASSIGN_OR_RETURN(sel.count, CountSelected(device, sel.valid_value));
  return sel;
}

}  // namespace core
}  // namespace gpudb
