#include "src/core/eval_cnf.h"

#include <string>

#include "src/core/count.h"
#include "src/core/op_span.h"
#include "src/core/state_guard.h"

namespace gpudb {
namespace core {

GpuPredicate GpuPredicate::DepthCompare(const AttributeBinding& attr,
                                        gpu::CompareOp op, double constant) {
  GpuPredicate p;
  p.kind = Kind::kDepthCompare;
  p.attr = attr;
  p.op = op;
  p.constant = constant;
  return p;
}

GpuPredicate GpuPredicate::Semilinear(gpu::TextureId texture,
                                      const SemilinearQuery& query) {
  GpuPredicate p;
  p.kind = Kind::kSemilinear;
  p.texture = texture;
  p.query = query;
  return p;
}

namespace {

/// Evaluates one simple predicate with the caller's stencil configuration
/// active, leaving the stencil config untouched.
Status PerformPredicate(gpu::Device* device, const GpuPredicate& pred) {
  switch (pred.kind) {
    case GpuPredicate::Kind::kDepthCompare:
      // CopyToDepth runs under its own state guard (stencil disabled), then
      // the comparison quad triggers the caller's stencil ops.
      GPUDB_RETURN_NOT_OK(CopyToDepth(device, pred.attr));
      return CompareQuad(device, pred.op, pred.constant, pred.attr.encoding);
    case GpuPredicate::Kind::kSemilinear:
      // Fragments failing the query are killed before the stencil stage;
      // survivors trigger the caller's Op3. The depth unit must be inert.
      device->SetDepthTest(false, gpu::CompareOp::kAlways);
      device->SetDepthBoundsTest(false);
      return SemilinearQuad(device, pred.texture, pred.query);
  }
  return Status::Internal("corrupt GpuPredicate");
}

/// Evaluates one simple predicate through the planned fast paths: the
/// depth-plane cache, the fused copy+compare pass, or the classic pair.
/// When `begin_occlusion` is set, the occlusion query is begun immediately
/// before the comparison pass itself -- after any copy/restore/snapshot
/// passes, whose fragments must not be counted -- so the caller can read
/// the survivor count of exactly the predicate's comparison.
Status ExecPredicate(gpu::Device* device, const GpuPredicate& pred,
                     SelectionExecOptions* opts, bool begin_occlusion) {
  switch (pred.kind) {
    case GpuPredicate::Kind::kDepthCompare: {
      const bool cacheable = opts->use_cache && !opts->table.empty() &&
                             pred.attr.column >= 0;
      if (cacheable) {
        gpu::PlaneKey key;
        key.table = opts->table;
        key.version = opts->table_version;
        key.column = pred.attr.column;
        key.scale = pred.attr.encoding.scale;
        key.offset = pred.attr.encoding.offset;
        key.viewport_pixels = device->viewport_pixels();
        GPUDB_ASSIGN_OR_RETURN(const bool hit,
                               device->RestoreCachedDepthPlane(key));
        if (hit) {
          ++opts->cache_hits;
        } else {
          ++opts->cache_misses;
          GPUDB_RETURN_NOT_OK(CopyToDepth(device, pred.attr));
          GPUDB_RETURN_NOT_OK(device->CacheDepthPlane(key));
        }
        if (begin_occlusion) GPUDB_RETURN_NOT_OK(device->BeginOcclusionQuery());
        return CompareQuad(device, pred.op, pred.constant, pred.attr.encoding);
      }
      if (opts->plan.fused_compares > 0) {
        ++opts->fused_passes;
        if (begin_occlusion) GPUDB_RETURN_NOT_OK(device->BeginOcclusionQuery());
        return FusedComparePass(device, pred.attr, pred.op, pred.constant);
      }
      GPUDB_RETURN_NOT_OK(CopyToDepth(device, pred.attr));
      if (begin_occlusion) GPUDB_RETURN_NOT_OK(device->BeginOcclusionQuery());
      return CompareQuad(device, pred.op, pred.constant, pred.attr.encoding);
    }
    case GpuPredicate::Kind::kSemilinear:
      device->SetDepthTest(false, gpu::CompareOp::kAlways);
      device->SetDepthBoundsTest(false);
      if (begin_occlusion) GPUDB_RETURN_NOT_OK(device->BeginOcclusionQuery());
      return SemilinearQuad(device, pred.texture, pred.query);
  }
  return Status::Internal("corrupt GpuPredicate");
}

Status ValidateClauses(const std::vector<GpuClause>& clauses) {
  if (clauses.empty()) {
    return Status::InvalidArgument("EvalCnf requires at least one clause");
  }
  for (const GpuClause& clause : clauses) {
    if (clause.empty()) {
      return Status::InvalidArgument("EvalCnf: empty clause");
    }
  }
  return Status::OK();
}

}  // namespace

Result<StencilSelection> EvalCnf(gpu::Device* device,
                                 const std::vector<GpuClause>& clauses) {
  GPUDB_RETURN_NOT_OK(ValidateClauses(clauses));
  GpuOpSpan op("EvalCnf", device);
  if (op.active()) {
    size_t predicates = 0;
    for (const GpuClause& clause : clauses) predicates += clause.size();
    op.AddTag("clauses", clauses.size());
    op.AddTag("predicates", predicates);
  }
  StateGuard guard(device);
  device->SetAlphaTest(false, gpu::CompareOp::kAlways, 0.0f);
  device->SetColorWriteMask(false);

  // Line 1: Clear Stencil to 1 (TRUE AND A_1).
  device->ClearStencil(1);

  const size_t k = clauses.size();
  for (size_t i = 1; i <= k; ++i) {
    // Cooperative cancellation between clauses (large CNFs run thousands
    // of passes; the per-pass device check bounds the latency either way).
    GPUDB_RETURN_NOT_OK(device->CheckInterrupt());
    const bool odd = (i % 2) == 1;
    // Lines 4-10: valid records hold 1 on odd iterations (passing ones are
    // INCRemented to 2), 2 on even iterations (passing ones DECRemented
    // back to 1). Records that already passed an earlier predicate of this
    // clause no longer match the valid value, so they cannot be bumped
    // twice -- this is what makes the disjunction work.
    device->SetStencilTest(true, gpu::CompareOp::kEqual, odd ? 1 : 2);
    device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                         odd ? gpu::StencilOp::kIncr : gpu::StencilOp::kDecr);
    // Lines 11-14: evaluate each B_ij of the clause.
    for (const GpuPredicate& pred : clauses[i - 1]) {
      // Cooperative cancellation between predicate passes (lint rule R2).
      GPUDB_RETURN_NOT_OK(device->CheckInterrupt());
      GPUDB_RETURN_NOT_OK(PerformPredicate(device, pred));
    }
    // Lines 15-19: records still holding the old valid value failed every
    // B_ij of this clause -> invalidate them (stencil 0).
    GPUDB_RETURN_NOT_OK(ZeroStencilValue(device, odd ? 1 : 2));
  }

  StencilSelection sel;
  sel.valid_value = (k % 2 == 1) ? 2 : 1;
  GPUDB_ASSIGN_OR_RETURN(sel.count, CountSelected(device, sel.valid_value));
  return sel;
}

Result<StencilSelection> EvalDnf(gpu::Device* device,
                                 const std::vector<GpuTerm>& terms) {
  if (terms.empty()) {
    return Status::InvalidArgument("EvalDnf requires at least one term");
  }
  for (const GpuTerm& term : terms) {
    if (term.empty()) {
      return Status::InvalidArgument("EvalDnf: empty term");
    }
    if (term.size() > 254) {
      return Status::ResourceExhausted(
          "EvalDnf terms support at most 254 conjuncts (8-bit stencil)");
    }
  }
  GpuOpSpan op("EvalDnf", device);
  if (op.active()) {
    size_t predicates = 0;
    for (const GpuTerm& term : terms) predicates += term.size();
    op.AddTag("terms", terms.size());
    op.AddTag("predicates", predicates);
  }
  StateGuard guard(device);
  device->SetAlphaTest(false, gpu::CompareOp::kAlways, 0.0f);
  device->SetColorWriteMask(false);
  // 1 = candidate (not yet selected), 0 = selected by an earlier term.
  device->ClearStencil(1);

  for (const GpuTerm& term : terms) {
    GPUDB_RETURN_NOT_OK(device->CheckInterrupt());
    const auto m = static_cast<uint8_t>(term.size());
    // Conjunction chain over candidates: predicate j bumps j -> j+1.
    uint8_t value = 1;
    for (const GpuPredicate& pred : term) {
      // Cooperative cancellation between predicate passes (lint rule R2).
      GPUDB_RETURN_NOT_OK(device->CheckInterrupt());
      device->SetStencilTest(true, gpu::CompareOp::kEqual, value);
      device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                           gpu::StencilOp::kIncr);
      GPUDB_RETURN_NOT_OK(PerformPredicate(device, pred));
      ++value;
    }
    // Records at m+1 satisfied the whole term: stamp them selected (0).
    device->SetStencilTest(true, gpu::CompareOp::kEqual,
                           static_cast<uint8_t>(m + 1));
    device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                         gpu::StencilOp::kZero);
    device->SetDepthTest(false, gpu::CompareOp::kAlways);
    device->SetDepthBoundsTest(false);
    GPUDB_RETURN_NOT_OK(device->RenderQuad(0.0f));
    // Walk partial chains (values 2..m) back down to 1 so the next term
    // starts clean: each pass decrements every value above 1.
    for (int step = 0; step < m - 1; ++step) {
      // Cooperative cancellation between walk-down passes (lint rule R2).
      GPUDB_RETURN_NOT_OK(device->CheckInterrupt());
      device->SetStencilTest(true, gpu::CompareOp::kLess, /*ref=*/1);
      device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                           gpu::StencilOp::kDecr);
      GPUDB_RETURN_NOT_OK(device->RenderQuad(0.0f));
    }
  }

  StencilSelection sel;
  sel.valid_value = 0;
  GPUDB_ASSIGN_OR_RETURN(sel.count, CountSelected(device, 0));
  return sel;
}

Result<StencilSelection> EvalCnfPlanned(gpu::Device* device,
                                        const std::vector<GpuClause>& clauses,
                                        SelectionExecOptions* opts) {
  GPUDB_RETURN_NOT_OK(ValidateClauses(clauses));
  GpuOpSpan op("EvalCnf", device);
  if (op.active()) {
    size_t predicates = 0;
    for (const GpuClause& clause : clauses) predicates += clause.size();
    op.AddTag("clauses", clauses.size());
    op.AddTag("predicates", predicates);
  }
  StateGuard guard(device);
  device->SetAlphaTest(false, gpu::CompareOp::kAlways, 0.0f);
  device->SetColorWriteMask(false);

  if (opts->plan.chain) {
    // Every clause is a single predicate, so the INCR/DECR parity dance and
    // its cleanup passes are unnecessary: run the EvalConjunction chain.
    // Predicate i passes records from stencil value i to i+1; a record holds
    // k+1 at the end iff it satisfied every predicate. Identical survivor
    // sets per pass -> identical final mask and count as EvalCnf.
    device->ClearStencil(1);
    const size_t k = clauses.size();
    uint8_t valid = 1;
    for (size_t i = 0; i < k; ++i) {
      // Cooperative cancellation between predicate passes (lint rule R2).
      GPUDB_RETURN_NOT_OK(device->CheckInterrupt());
      device->SetStencilTest(true, gpu::CompareOp::kEqual, valid);
      device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                           gpu::StencilOp::kIncr);
      // The chain's last comparison already renders exactly the selected
      // records; with fused_count its survivor count *is* the answer, and
      // the separate CountSelected pass is dropped.
      const bool count_here = opts->plan.fused_count && i + 1 == k;
      GPUDB_RETURN_NOT_OK(
          ExecPredicate(device, clauses[i].front(), opts, count_here));
      ++valid;
    }
    StencilSelection sel;
    sel.valid_value = valid;
    if (opts->plan.fused_count) {
      GPUDB_ASSIGN_OR_RETURN(sel.count, device->EndOcclusionQuery());
    } else {
      GPUDB_ASSIGN_OR_RETURN(sel.count, CountSelected(device, sel.valid_value));
    }
    return sel;
  }

  // General CNF: the EvalCnf skeleton verbatim, with each predicate routed
  // through the planned fast paths (fusion / plane cache).
  device->ClearStencil(1);
  const size_t k = clauses.size();
  for (size_t i = 1; i <= k; ++i) {
    GPUDB_RETURN_NOT_OK(device->CheckInterrupt());
    const bool odd = (i % 2) == 1;
    device->SetStencilTest(true, gpu::CompareOp::kEqual, odd ? 1 : 2);
    device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                         odd ? gpu::StencilOp::kIncr : gpu::StencilOp::kDecr);
    for (const GpuPredicate& pred : clauses[i - 1]) {
      // Cooperative cancellation between predicate passes (lint rule R2).
      GPUDB_RETURN_NOT_OK(device->CheckInterrupt());
      GPUDB_RETURN_NOT_OK(
          ExecPredicate(device, pred, opts, /*begin_occlusion=*/false));
    }
    GPUDB_RETURN_NOT_OK(ZeroStencilValue(device, odd ? 1 : 2));
  }

  StencilSelection sel;
  sel.valid_value = (k % 2 == 1) ? 2 : 1;
  GPUDB_ASSIGN_OR_RETURN(sel.count, CountSelected(device, sel.valid_value));
  return sel;
}

Result<StencilSelection> EvalDnfPlanned(gpu::Device* device,
                                        const std::vector<GpuTerm>& terms,
                                        SelectionExecOptions* opts) {
  if (terms.empty()) {
    return Status::InvalidArgument("EvalDnf requires at least one term");
  }
  for (const GpuTerm& term : terms) {
    if (term.empty()) {
      return Status::InvalidArgument("EvalDnf: empty term");
    }
    if (term.size() > 254) {
      return Status::ResourceExhausted(
          "EvalDnf terms support at most 254 conjuncts (8-bit stencil)");
    }
  }
  GpuOpSpan op("EvalDnf", device);
  if (op.active()) {
    size_t predicates = 0;
    for (const GpuTerm& term : terms) predicates += term.size();
    op.AddTag("terms", terms.size());
    op.AddTag("predicates", predicates);
  }
  StateGuard guard(device);
  device->SetAlphaTest(false, gpu::CompareOp::kAlways, 0.0f);
  device->SetColorWriteMask(false);
  device->ClearStencil(1);

  // The DNF skeleton (term chains, stamps, walk-downs) is already minimal;
  // only the per-predicate execution changes (fusion / plane cache).
  for (const GpuTerm& term : terms) {
    GPUDB_RETURN_NOT_OK(device->CheckInterrupt());
    const auto m = static_cast<uint8_t>(term.size());
    uint8_t value = 1;
    for (const GpuPredicate& pred : term) {
      // Cooperative cancellation between predicate passes (lint rule R2).
      GPUDB_RETURN_NOT_OK(device->CheckInterrupt());
      device->SetStencilTest(true, gpu::CompareOp::kEqual, value);
      device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                           gpu::StencilOp::kIncr);
      GPUDB_RETURN_NOT_OK(
          ExecPredicate(device, pred, opts, /*begin_occlusion=*/false));
      ++value;
    }
    device->SetStencilTest(true, gpu::CompareOp::kEqual,
                           static_cast<uint8_t>(m + 1));
    device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                         gpu::StencilOp::kZero);
    device->SetDepthTest(false, gpu::CompareOp::kAlways);
    device->SetDepthBoundsTest(false);
    GPUDB_RETURN_NOT_OK(device->RenderQuad(0.0f));
    for (int step = 0; step < m - 1; ++step) {
      // Cooperative cancellation between walk-down passes (lint rule R2).
      GPUDB_RETURN_NOT_OK(device->CheckInterrupt());
      device->SetStencilTest(true, gpu::CompareOp::kLess, /*ref=*/1);
      device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                           gpu::StencilOp::kDecr);
      GPUDB_RETURN_NOT_OK(device->RenderQuad(0.0f));
    }
  }

  StencilSelection sel;
  sel.valid_value = 0;
  GPUDB_ASSIGN_OR_RETURN(sel.count, CountSelected(device, 0));
  return sel;
}

Result<StencilSelection> EvalConjunction(
    gpu::Device* device, const std::vector<GpuPredicate>& conjuncts) {
  if (conjuncts.empty()) {
    return Status::InvalidArgument(
        "EvalConjunction requires at least one predicate");
  }
  if (conjuncts.size() > 254) {
    return Status::ResourceExhausted(
        "EvalConjunction supports at most 254 conjuncts (8-bit stencil); "
        "got " +
        std::to_string(conjuncts.size()));
  }
  GpuOpSpan op("EvalConjunction", device);
  op.AddTag("predicates", conjuncts.size());
  StateGuard guard(device);
  device->SetAlphaTest(false, gpu::CompareOp::kAlways, 0.0f);
  device->SetColorWriteMask(false);
  device->ClearStencil(1);

  uint8_t valid = 1;
  for (const GpuPredicate& pred : conjuncts) {
    // Cooperative cancellation between predicate passes (lint rule R2).
    GPUDB_RETURN_NOT_OK(device->CheckInterrupt());
    device->SetStencilTest(true, gpu::CompareOp::kEqual, valid);
    device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                         gpu::StencilOp::kIncr);
    GPUDB_RETURN_NOT_OK(PerformPredicate(device, pred));
    ++valid;
  }

  StencilSelection sel;
  sel.valid_value = valid;
  GPUDB_ASSIGN_OR_RETURN(sel.count, CountSelected(device, sel.valid_value));
  return sel;
}

}  // namespace core
}  // namespace gpudb
