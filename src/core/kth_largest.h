#ifndef GPUDB_CORE_KTH_LARGEST_H_
#define GPUDB_CORE_KTH_LARGEST_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/common/result.h"
#include "src/core/compare.h"
#include "src/core/eval_cnf.h"
#include "src/gpu/device.h"

namespace gpudb {
namespace core {

/// \brief Options for the order-statistic algorithms.
struct KthOptions {
  /// Restrict the statistic to records marked by a previous selection
  /// (stencil == selection->valid_value). The paper's Section 5.9 Test 3
  /// shows this costs the same as the unrestricted query: the stencil test
  /// changes which fragments are counted, not how many passes run.
  std::optional<StencilSelection> selection;
};

/// \brief Routine 4.5 (KthLargest): finds the k-th largest attribute value
/// (k = 1 is the maximum) by building the answer one bit at a time from the
/// MSB, using one comparison pass + occlusion count per bit.
///
/// The algorithm needs no data rearrangement and runs in exactly
/// `bit_width` passes regardless of k (the flat-in-k behaviour of Figure 7).
/// Correctness rests on the paper's Lemma 1: with count = #{v >= m},
/// count > k-1 implies m <= v_k and count <= k-1 implies m > v_k.
///
/// `attr` must be an exactly-encoded integer attribute (DepthEncoding
/// ExactInt24); `bit_width` is the column's b_max. Fails if k is out of
/// range for the (selected) record count.
[[nodiscard]] Result<uint32_t> KthLargest(gpu::Device* device, const AttributeBinding& attr,
                            int bit_width, uint64_t k,
                            const KthOptions& options = {});

/// \brief Multiple order statistics over one attribute (e.g. all quartiles)
/// sharing a single CopyToDepth pass: the comparison passes never write
/// depth, so the attribute stays resident across queries. Cost:
/// 1 copy + |ks| * bit_width passes instead of |ks| * (1 + bit_width).
/// Returns values positionally aligned with `ks`.
[[nodiscard]] Result<std::vector<uint32_t>> KthLargestBatch(gpu::Device* device,
                                              const AttributeBinding& attr,
                                              int bit_width,
                                              const std::vector<uint64_t>& ks,
                                              const KthOptions& options = {});

/// k-th smallest (k = 1 is the minimum), via the order-statistic identity
/// k-th smallest of n == (n-k+1)-th largest.
[[nodiscard]] Result<uint32_t> KthSmallest(gpu::Device* device, const AttributeBinding& attr,
                             int bit_width, uint64_t k,
                             const KthOptions& options = {});

/// \brief The paper's literal k-th smallest: "The algorithm for the k-th
/// smallest number is the same, except that the comparison in line 5 is
/// inverted" (Section 4.3.2). Each step counts #{v < tentative} with a LESS
/// comparison quad and keeps the tentative bit while at most k-1 values lie
/// below it. Kept alongside the identity-based KthSmallest and
/// property-tested equal to it.
[[nodiscard]] Result<uint32_t> KthSmallestDirect(gpu::Device* device,
                                   const AttributeBinding& attr,
                                   int bit_width, uint64_t k,
                                   const KthOptions& options = {});

/// MAX = 1st largest.
[[nodiscard]] Result<uint32_t> MaxValue(gpu::Device* device, const AttributeBinding& attr,
                          int bit_width, const KthOptions& options = {});

/// MIN = 1st smallest.
[[nodiscard]] Result<uint32_t> MinValue(gpu::Device* device, const AttributeBinding& attr,
                          int bit_width, const KthOptions& options = {});

/// Median = ceil(n/2)-th smallest, matching cpu::Median.
[[nodiscard]] Result<uint32_t> MedianValue(gpu::Device* device, const AttributeBinding& attr,
                             int bit_width, const KthOptions& options = {});

}  // namespace core
}  // namespace gpudb

#endif  // GPUDB_CORE_KTH_LARGEST_H_
