#ifndef GPUDB_CORE_SPATIAL_H_
#define GPUDB_CORE_SPATIAL_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/core/eval_cnf.h"
#include "src/gpu/device.h"

namespace gpudb {
namespace core {

/// \brief The half-plane a*x + b*y <= c.
struct HalfPlane {
  float a = 0;
  float b = 0;
  float c = 0;
};

/// \brief Converts a convex polygon (>= 3 vertices in counter-clockwise
/// order) into its bounding half-planes. Fails if the polygon is not
/// strictly convex and counter-clockwise.
[[nodiscard]] Result<std::vector<HalfPlane>> ConvexPolygonToHalfPlanes(
    const std::vector<std::pair<float, float>>& ccw_vertices);

/// \brief Selects the points of an (x, y) two-channel texture that lie
/// inside the intersection of the given half-planes.
///
/// This is the paper's motivating GIS application of semi-linear sets
/// (Section 4.1.2: "Applications encountered in Geographical Information
/// Systems ... define geometric data objects as linear inequalities of the
/// attributes"): each half-plane is one semi-linear predicate, and convex
/// region membership is their conjunction, evaluated with EvalCNF.
///
/// On return the stencil marks the selected points; the count is returned.
[[nodiscard]] Result<StencilSelection> SelectPointsInConvexRegion(
    gpu::Device* device, gpu::TextureId xy_texture,
    const std::vector<HalfPlane>& half_planes);

/// Convenience: polygon variant.
[[nodiscard]] Result<StencilSelection> SelectPointsInConvexPolygon(
    gpu::Device* device, gpu::TextureId xy_texture,
    const std::vector<std::pair<float, float>>& ccw_vertices);

/// CPU reference: point-in-half-planes test.
bool PointInHalfPlanes(float x, float y,
                       const std::vector<HalfPlane>& half_planes);

}  // namespace core
}  // namespace gpudb

#endif  // GPUDB_CORE_SPATIAL_H_
