#ifndef GPUDB_CORE_PLANNER_H_
#define GPUDB_CORE_PLANNER_H_

#include <cstdint>
#include <string_view>

#include "src/cpu/xeon_model.h"
#include "src/gpu/perf_model.h"

namespace gpudb {
namespace core {

/// \brief The operation classes the paper's Section 6.2 analysis covers.
enum class OperationKind {
  kPredicateSelect,      ///< attribute op constant (Section 5.5)
  kRangeSelect,          ///< low <= attribute <= high (Section 5.6)
  kMultiAttributeSelect, ///< conjunction over several attributes (5.7)
  kSemilinearSelect,     ///< dot(s,a) op b (Section 5.8)
  kKthLargest,           ///< order statistics / MIN / MAX / MEDIAN (5.9)
  kSum,                  ///< Accumulator (Section 5.10)
  kCount,                ///< occlusion-count selectivity (Section 5.11)
};

std::string_view ToString(OperationKind kind);

/// Which processor should run an operation.
enum class Backend { kGpu, kCpu };

std::string_view ToString(Backend backend);

/// \brief A co-processor routing decision with its rationale.
///
/// The paper's conclusion is that "the GPU is an excellent candidate for
/// some database operations, but not all ... it would be useful for database
/// designers to utilize GPU capabilities alongside traditional CPU-based
/// code". The planner encodes that advice.
struct PlanDecision {
  Backend backend = Backend::kCpu;
  double gpu_ms = 0;        ///< Modeled GPU time for the operation.
  double cpu_ms = 0;        ///< Modeled CPU time.
  std::string_view rationale;  ///< Paper-derived justification.
};

/// \brief Cost-based co-processor planner using the two analytic models.
///
/// `detail` is operation specific: the conjunct count for
/// kMultiAttributeSelect, the attribute bit width (b_max) for kKthLargest
/// and kSum, and ignored otherwise.
///
/// `selectivity`, when in [0, 1], is the estimated fraction of matching
/// records (from ANALYZE statistics, db/stats.h). Selection operations that
/// materialize their result then charge the GPU plan the row-id readback of
/// the estimated matches over the slow PCI path -- the Section 6.1 readback
/// caveat -- so a high-selectivity SELECT can flip to the CPU even though
/// the scan itself favors the GPU. Negative (the default) means "unknown":
/// no readback term, the pre-statistics behavior.
class Planner {
 public:
  Planner() = default;
  Planner(const gpu::PerfModelParams& gpu_params,
          const cpu::XeonModelParams& cpu_params)
      : gpu_params_(gpu_params), cpu_model_(cpu_params) {}

  PlanDecision Choose(OperationKind op, uint64_t records, int detail = 0,
                      double selectivity = -1.0) const;

  /// Modeled GPU time for an operation (closed-form over the pass structure
  /// each routine executes; matches what PerfModel reports when the
  /// operation actually runs).
  double GpuMs(OperationKind op, uint64_t records, int detail = 0,
               double selectivity = -1.0) const;

  /// Modeled CPU time for the paper's optimized baseline.
  double CpuMs(OperationKind op, uint64_t records, int detail = 0,
               double selectivity = -1.0) const;

 private:
  double FillMs(uint64_t fragments, int instructions) const;
  double CopyToDepthMs(uint64_t records) const;
  double SimplePassMs(uint64_t records) const;

  gpu::PerfModelParams gpu_params_;
  cpu::XeonModel cpu_model_;
};

}  // namespace core
}  // namespace gpudb

#endif  // GPUDB_CORE_PLANNER_H_
