#ifndef GPUDB_CORE_PLANNER_H_
#define GPUDB_CORE_PLANNER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/cpu/xeon_model.h"
#include "src/gpu/perf_model.h"

namespace gpudb {
namespace core {

struct GpuPredicate;  // eval_cnf.h
using GpuClause = std::vector<GpuPredicate>;

/// \brief The operation classes the paper's Section 6.2 analysis covers.
enum class OperationKind {
  kPredicateSelect,      ///< attribute op constant (Section 5.5)
  kRangeSelect,          ///< low <= attribute <= high (Section 5.6)
  kMultiAttributeSelect, ///< conjunction over several attributes (5.7)
  kSemilinearSelect,     ///< dot(s,a) op b (Section 5.8)
  kKthLargest,           ///< order statistics / MIN / MAX / MEDIAN (5.9)
  kSum,                  ///< Accumulator (Section 5.10)
  kCount,                ///< occlusion-count selectivity (Section 5.11)
};

std::string_view ToString(OperationKind kind);

/// Which processor should run an operation.
enum class Backend { kGpu, kCpu };

std::string_view ToString(Backend backend);

/// \brief The planner's rewrite of a selection's pass sequence (DESIGN.md
/// §14): which fusion rules apply and what the pass budget looks like on
/// each side. The rewrite never changes results -- every rule is proven
/// fragment-set-equivalent to the reference sequence -- only how many
/// passes the device renders to get them.
struct PassPlan {
  /// All clauses are single-predicate, so the CNF INCR/DECR bookkeeping
  /// (per-clause parity flips + cleanup passes) collapses into one
  /// EvalConjunction-style stencil chain: predicate i runs with stencil
  /// EQUAL i+1 / INCR, no cleanup passes at all. Requires <= 254 predicates
  /// (8-bit stencil, values 1..255).
  bool chain = false;
  /// The chain's final predicate pass carries the occlusion query itself:
  /// its survivors are exactly the selected records, so the separate
  /// CountSelected pass is dropped.
  bool fused_count = false;
  /// Depth-compare predicates that run as single fused copy+compare passes
  /// (core::FusedComparePass) instead of CopyToDepth + CompareQuad pairs.
  /// Zero when the plane cache is on: a cacheable predicate keeps the
  /// attribute copy separate so its depth plane can be snapshotted and
  /// restored across queries.
  int fused_compares = 0;
  /// Device passes the rewritten plan issues for a COUNT-style selection
  /// (cache synthetic passes excluded), and what the unrewritten reference
  /// sequence would have issued. EXPLAIN surfaces the pair.
  int planned_passes = 0;
  int unfused_passes = 0;

  bool Rewritten() const { return chain || fused_count || fused_compares > 0; }
};

/// Plans the pass sequence for a CNF selection. `fusion_enabled` gates
/// every rewrite; `cache_enabled` disables per-predicate copy+compare
/// fusion (see PassPlan::fused_compares) but keeps the chain rules.
PassPlan PlanSelectionPasses(const std::vector<GpuClause>& clauses,
                             bool fusion_enabled, bool cache_enabled);

/// \brief A co-processor routing decision with its rationale.
///
/// The paper's conclusion is that "the GPU is an excellent candidate for
/// some database operations, but not all ... it would be useful for database
/// designers to utilize GPU capabilities alongside traditional CPU-based
/// code". The planner encodes that advice.
struct PlanDecision {
  Backend backend = Backend::kCpu;
  double gpu_ms = 0;        ///< Modeled GPU time for the operation.
  double cpu_ms = 0;        ///< Modeled CPU time.
  std::string_view rationale;  ///< Paper-derived justification.
};

/// \brief Cost-based co-processor planner using the two analytic models.
///
/// `detail` is operation specific: the conjunct count for
/// kMultiAttributeSelect, the attribute bit width (b_max) for kKthLargest
/// and kSum, and ignored otherwise.
///
/// `selectivity`, when in [0, 1], is the estimated fraction of matching
/// records (from ANALYZE statistics, db/stats.h). Selection operations that
/// materialize their result then charge the GPU plan the row-id readback of
/// the estimated matches over the slow PCI path -- the Section 6.1 readback
/// caveat -- so a high-selectivity SELECT can flip to the CPU even though
/// the scan itself favors the GPU. Negative (the default) means "unknown":
/// no readback term, the pre-statistics behavior.
class Planner {
 public:
  Planner() = default;
  Planner(const gpu::PerfModelParams& gpu_params,
          const cpu::XeonModelParams& cpu_params)
      : gpu_params_(gpu_params), cpu_model_(cpu_params) {}

  PlanDecision Choose(OperationKind op, uint64_t records, int detail = 0,
                      double selectivity = -1.0) const;

  /// Modeled GPU time for an operation (closed-form over the pass structure
  /// each routine executes; matches what PerfModel reports when the
  /// operation actually runs).
  double GpuMs(OperationKind op, uint64_t records, int detail = 0,
               double selectivity = -1.0) const;

  /// Modeled CPU time for the paper's optimized baseline.
  double CpuMs(OperationKind op, uint64_t records, int detail = 0,
               double selectivity = -1.0) const;

 private:
  double FillMs(uint64_t fragments, int instructions) const;
  double CopyToDepthMs(uint64_t records) const;
  double SimplePassMs(uint64_t records) const;

  gpu::PerfModelParams gpu_params_;
  cpu::XeonModel cpu_model_;
};

}  // namespace core
}  // namespace gpudb

#endif  // GPUDB_CORE_PLANNER_H_
