#include "src/core/join.h"

#include <algorithm>
#include <string>

#include "src/core/group_by.h"
#include "src/core/selection.h"

namespace gpudb {
namespace core {

namespace {

Status ValidateSides(gpu::Device* device, const JoinSide& left,
                     const JoinSide& right) {
  if (device == nullptr) {
    return Status::InvalidArgument("null device");
  }
  for (const JoinSide* side : {&left, &right}) {
    if (side->rows == 0) {
      return Status::InvalidArgument("join side has no rows");
    }
    if (side->rows > device->framebuffer().pixel_count()) {
      return Status::ResourceExhausted(
          "join side exceeds the framebuffer; partition first");
    }
    if (side->key_bits < 1 || side->key_bits > 24) {
      return Status::InvalidArgument("key_bits must be in [1, 24]");
    }
  }
  return Status::OK();
}

/// Distinct keys of the left side, with the viewport pointed at it.
Result<std::vector<uint32_t>> LeftKeys(gpu::Device* device,
                                       const JoinSide& left,
                                       uint64_t max_keys) {
  GPUDB_RETURN_NOT_OK(device->SetViewport(left.rows));
  return DistinctValues(device, left.key, left.key_bits, max_keys);
}

}  // namespace

Result<std::vector<JoinPair>> EquiJoin(gpu::Device* device,
                                       const JoinSide& left,
                                       const JoinSide& right,
                                       const EquiJoinOptions& options) {
  GPUDB_RETURN_NOT_OK(ValidateSides(device, left, right));
  GPUDB_ASSIGN_OR_RETURN(std::vector<uint32_t> keys,
                         LeftKeys(device, left, options.max_keys));

  std::vector<JoinPair> result;
  for (uint32_t key : keys) {
    // Cooperative cancellation between per-key probes (lint rule R2).
    GPUDB_RETURN_NOT_OK(device->CheckInterrupt());
    // Selectivity probe on the right side: keys without partners cost one
    // occlusion-counted pass and nothing more.
    GPUDB_RETURN_NOT_OK(device->SetViewport(right.rows));
    GPUDB_ASSIGN_OR_RETURN(
        uint64_t right_count,
        Compare(device, right.key, gpu::CompareOp::kEqual,
                static_cast<double>(key)));
    if (right_count == 0) continue;

    GPUDB_ASSIGN_OR_RETURN(
        uint64_t right_selected,
        CompareSelect(device, right.key, gpu::CompareOp::kEqual,
                      static_cast<double>(key)));
    GPUDB_ASSIGN_OR_RETURN(
        std::vector<uint32_t> right_rows,
        SelectionToRowIds(device, StencilSelection{1, right_selected},
                          right.rows));

    GPUDB_RETURN_NOT_OK(device->SetViewport(left.rows));
    GPUDB_ASSIGN_OR_RETURN(
        uint64_t left_selected,
        CompareSelect(device, left.key, gpu::CompareOp::kEqual,
                      static_cast<double>(key)));
    GPUDB_ASSIGN_OR_RETURN(
        std::vector<uint32_t> left_rows,
        SelectionToRowIds(device, StencilSelection{1, left_selected},
                          left.rows));

    if (result.size() + left_rows.size() * right_rows.size() >
        options.max_result_pairs) {
      return Status::ResourceExhausted(
          "join result exceeds " + std::to_string(options.max_result_pairs) +
          " pairs");
    }
    for (uint32_t l : left_rows) {
      for (uint32_t r : right_rows) {
        result.push_back(JoinPair{l, r});
      }
    }
  }
  return result;
}

namespace {

Result<JoinSide> UploadJoinSide(gpu::Device* device, const db::Table& table,
                                std::string_view key_column) {
  GPUDB_ASSIGN_OR_RETURN(size_t col, table.ColumnIndex(key_column));
  const db::Column& key = table.column(col);
  if (key.type() != db::ColumnType::kInt24) {
    return Status::NotImplemented(
        "equi-join requires integer key columns (distinct-key discovery "
        "runs the bit-search of Routine 4.5)");
  }
  const uint32_t width = static_cast<uint32_t>(std::min<uint64_t>(
      table.num_rows(), device->framebuffer().width()));
  GPUDB_ASSIGN_OR_RETURN(gpu::Texture tex, table.ColumnTexture(col, width));
  GPUDB_ASSIGN_OR_RETURN(gpu::TextureId id,
                         device->UploadTexture(std::move(tex)));
  JoinSide side;
  side.key.texture = id;
  side.key.channel = 0;
  side.key.encoding = DepthEncoding::ForColumn(key);
  side.rows = table.num_rows();
  side.key_bits = key.bit_width();
  return side;
}

}  // namespace

Result<std::vector<JoinPair>> EquiJoinTables(gpu::Device* device,
                                             const db::Table& left,
                                             std::string_view left_key,
                                             const db::Table& right,
                                             std::string_view right_key,
                                             const EquiJoinOptions& options) {
  if (device == nullptr) {
    return Status::InvalidArgument("null device");
  }
  GPUDB_ASSIGN_OR_RETURN(JoinSide left_side,
                         UploadJoinSide(device, left, left_key));
  GPUDB_ASSIGN_OR_RETURN(JoinSide right_side,
                         UploadJoinSide(device, right, right_key));
  return EquiJoin(device, left_side, right_side, options);
}

Result<uint64_t> EquiJoinSize(gpu::Device* device, const JoinSide& left,
                              const JoinSide& right,
                              const EquiJoinOptions& options) {
  GPUDB_RETURN_NOT_OK(ValidateSides(device, left, right));
  GPUDB_ASSIGN_OR_RETURN(std::vector<uint32_t> keys,
                         LeftKeys(device, left, options.max_keys));
  uint64_t size = 0;
  for (uint32_t key : keys) {
    // Cooperative cancellation between per-key probes (lint rule R2).
    GPUDB_RETURN_NOT_OK(device->CheckInterrupt());
    GPUDB_RETURN_NOT_OK(device->SetViewport(right.rows));
    GPUDB_ASSIGN_OR_RETURN(
        uint64_t right_count,
        Compare(device, right.key, gpu::CompareOp::kEqual,
                static_cast<double>(key)));
    if (right_count == 0) continue;
    GPUDB_RETURN_NOT_OK(device->SetViewport(left.rows));
    GPUDB_ASSIGN_OR_RETURN(
        uint64_t left_count,
        Compare(device, left.key, gpu::CompareOp::kEqual,
                static_cast<double>(key)));
    size += left_count * right_count;
  }
  return size;
}

}  // namespace core
}  // namespace gpudb
