#include "src/core/planner.h"

#include <algorithm>
#include <string>

#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/core/eval_cnf.h"

namespace gpudb {
namespace core {

PassPlan PlanSelectionPasses(const std::vector<GpuClause>& clauses,
                             bool fusion_enabled, bool cache_enabled) {
  PassPlan plan;

  // Reference pass budget: EvalCnf issues, per predicate, a CopyToDepth +
  // CompareQuad pair (depth compares) or one semilinear pass, plus one
  // cleanup pass per clause and one final counting pass.
  int depth_compares = 0;
  int semilinears = 0;
  bool all_singletons = true;
  for (const GpuClause& clause : clauses) {
    if (clause.size() != 1) all_singletons = false;
    for (const GpuPredicate& pred : clause) {
      if (pred.kind == GpuPredicate::Kind::kDepthCompare) {
        ++depth_compares;
      } else {
        ++semilinears;
      }
    }
  }
  const int k = static_cast<int>(clauses.size());
  plan.unfused_passes = 2 * depth_compares + semilinears + k + 1;

  if (!fusion_enabled) {
    plan.planned_passes = plan.unfused_passes;
    return plan;
  }

  // Chain rewrite: all-singleton CNFs collapse to the EvalConjunction
  // stencil chain (no cleanup passes), capped by the 8-bit stencil, and the
  // final predicate pass carries the count itself.
  plan.chain = all_singletons && k >= 1 && k <= 254;
  plan.fused_count = plan.chain;

  // Copy+compare fusion applies per depth-compare predicate -- unless the
  // plane cache is on, which needs the attribute copy kept separate so its
  // depth plane can be snapshotted and restored (see PassPlan docs).
  plan.fused_compares = cache_enabled ? 0 : depth_compares;

  int passes = plan.fused_compares > 0
                   ? depth_compares + semilinears  // one pass per predicate
                   : 2 * depth_compares + semilinears;
  if (!plan.chain) passes += k;       // per-clause cleanup passes
  if (!plan.fused_count) passes += 1;  // separate counting pass
  plan.planned_passes = passes;
  return plan;
}

std::string_view ToString(OperationKind kind) {
  switch (kind) {
    case OperationKind::kPredicateSelect:
      return "predicate-select";
    case OperationKind::kRangeSelect:
      return "range-select";
    case OperationKind::kMultiAttributeSelect:
      return "multi-attribute-select";
    case OperationKind::kSemilinearSelect:
      return "semilinear-select";
    case OperationKind::kKthLargest:
      return "kth-largest";
    case OperationKind::kSum:
      return "sum";
    case OperationKind::kCount:
      return "count";
  }
  return "unknown";
}

std::string_view ToString(Backend backend) {
  return backend == Backend::kGpu ? "GPU" : "CPU";
}

namespace {

std::string_view Rationale(OperationKind op, Backend chosen) {
  switch (op) {
    case OperationKind::kPredicateSelect:
    case OperationKind::kRangeSelect:
    case OperationKind::kMultiAttributeSelect:
    case OperationKind::kSemilinearSelect:
      return "Section 6.2.1 high-gain class: selection and semi-linear "
             "queries map to parallel pixel engines with early depth culling "
             "and no branch mispredictions";
    case OperationKind::kKthLargest:
      return "Section 6.2.2 medium-gain class: order statistics gain 2-4x "
             "from pixel-engine parallelism and need no data rearrangement";
    case OperationKind::kSum:
      return chosen == Backend::kCpu
                 ? "Section 6.2.3 low-gain class: without integer arithmetic "
                   "the Accumulator needs one multi-instruction pass per bit "
                   "and loses to the CPU's SIMD sum by ~20x"
                 : "modeled GPU time beat the CPU sum (unusual configuration)";
    case OperationKind::kCount:
      return "Section 5.11: occlusion-query counts piggyback on the "
             "selection pass with no additional overhead";
  }
  return "";
}

}  // namespace

double Planner::FillMs(uint64_t fragments, int instructions) const {
  const double throughput =
      gpu_params_.clock_hz * static_cast<double>(gpu_params_.pixel_pipes);
  return static_cast<double>(fragments) * std::max(1, instructions) /
         throughput * 1e3;
}

double Planner::CopyToDepthMs(uint64_t records) const {
  const double throughput =
      gpu_params_.clock_hz * static_cast<double>(gpu_params_.pixel_pipes);
  // 3-instruction copy program + depth-write penalty per fragment.
  return FillMs(records, 3) +
         static_cast<double>(records) * gpu_params_.depth_write_cycles /
             throughput * 1e3 +
         gpu_params_.pass_setup_ms;
}

double Planner::SimplePassMs(uint64_t records) const {
  return FillMs(records, 1) + gpu_params_.pass_setup_ms;
}

double Planner::GpuMs(OperationKind op, uint64_t records, int detail,
                      double selectivity) const {
  const double occl = gpu_params_.occlusion_readback_ms;
  // Known selectivity adds the result-materialization cost: the estimated
  // matching row ids (4 bytes each) come back over the slow readback path.
  double readback_ms = 0;
  if (selectivity >= 0.0) {
    switch (op) {
      case OperationKind::kPredicateSelect:
      case OperationKind::kRangeSelect:
      case OperationKind::kMultiAttributeSelect:
      case OperationKind::kSemilinearSelect:
        readback_ms = static_cast<double>(records) *
                      std::min(1.0, selectivity) * 4.0 /
                      gpu_params_.readback_bytes_per_ms;
        break;
      default:
        break;  // aggregates return scalars; no bulk readback
    }
  }
  switch (op) {
    case OperationKind::kPredicateSelect:
      // CopyToDepth + one comparison quad + occlusion count.
      return CopyToDepthMs(records) + SimplePassMs(records) + occl +
             readback_ms;
    case OperationKind::kRangeSelect:
      // Identical pass structure thanks to the depth bounds test.
      return CopyToDepthMs(records) + SimplePassMs(records) + occl +
             readback_ms;
    case OperationKind::kMultiAttributeSelect: {
      // EvalCnf: per conjunct one copy + one comparison + one cleanup pass,
      // then a final counting pass.
      const int a = std::max(1, detail);
      return a * (CopyToDepthMs(records) + 2 * SimplePassMs(records)) +
             SimplePassMs(records) + occl + readback_ms;
    }
    case OperationKind::kSemilinearSelect:
      // One 4-instruction fragment-program pass, no copy.
      return FillMs(records, 4) + gpu_params_.pass_setup_ms + occl +
             readback_ms;
    case OperationKind::kKthLargest: {
      // One copy + b_max (comparison pass + occlusion readback).
      const int bits = std::max(1, detail);
      return CopyToDepthMs(records) +
             bits * (SimplePassMs(records) + occl);
    }
    case OperationKind::kSum: {
      // b_max passes of the 5-instruction TestBit program + readbacks.
      const int bits = std::max(1, detail);
      return bits * (FillMs(records, 5) + gpu_params_.pass_setup_ms + occl);
    }
    case OperationKind::kCount:
      return SimplePassMs(records) + occl;
  }
  return 0;
}

double Planner::CpuMs(OperationKind op, uint64_t records, int detail,
                      double selectivity) const {
  (void)selectivity;  // CPU results are already in host memory.
  switch (op) {
    case OperationKind::kPredicateSelect:
      return cpu_model_.PredicateScanMs(records);
    case OperationKind::kRangeSelect:
      return cpu_model_.RangeScanMs(records);
    case OperationKind::kMultiAttributeSelect:
      return cpu_model_.MultiAttributeScanMs(records, std::max(1, detail));
    case OperationKind::kSemilinearSelect:
      return cpu_model_.SemilinearScanMs(records);
    case OperationKind::kKthLargest:
      return cpu_model_.QuickSelectMs(records);
    case OperationKind::kSum:
      return cpu_model_.SumMs(records);
    case OperationKind::kCount:
      return cpu_model_.PredicateScanMs(records);
  }
  return 0;
}

PlanDecision Planner::Choose(OperationKind op, uint64_t records, int detail,
                             double selectivity) const {
  TraceSpan span("planner.choose");
  PlanDecision d;
  d.gpu_ms = GpuMs(op, records, detail, selectivity);
  d.cpu_ms = CpuMs(op, records, detail, selectivity);
  d.backend = d.gpu_ms <= d.cpu_ms ? Backend::kGpu : Backend::kCpu;
  d.rationale = Rationale(op, d.backend);
  span.AddTag("op", ToString(op));
  span.AddTag("records", records);
  if (selectivity >= 0.0) span.AddTag("est_selectivity", selectivity);
  span.AddTag("gpu_ms", d.gpu_ms);
  span.AddTag("cpu_ms", d.cpu_ms);
  span.AddTag("backend", ToString(d.backend));
  MetricsRegistry::Global()
      .counter(d.backend == Backend::kGpu ? "planner.choose.gpu"
                                          : "planner.choose.cpu")
      .Increment();
  return d;
}

}  // namespace core
}  // namespace gpudb
