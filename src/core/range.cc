#include "src/core/range.h"

#include "src/core/op_span.h"
#include "src/core/state_guard.h"

namespace gpudb {
namespace core {

Result<uint64_t> RangeSelect(gpu::Device* device, const AttributeBinding& attr,
                             double low, double high) {
  if (low > high) {
    return Status::InvalidArgument("range query with low > high");
  }
  GpuOpSpan op("RangeSelect", device);
  op.AddTag("low", low);
  op.AddTag("high", high);
  // SetupStencil + CopyToDepth (Routine 4.4 lines 1-2).
  GPUDB_RETURN_NOT_OK(CopyToDepth(device, attr));
  StateGuard guard(device);
  device->ClearStencil(0);
  device->SetAlphaTest(false, gpu::CompareOp::kAlways, 0.0f);
  device->SetColorWriteMask(false);
  device->SetStencilTest(true, gpu::CompareOp::kAlways, /*ref=*/1);
  device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                       gpu::StencilOp::kReplace);
  // Lines 3-6: enable the bounds test over the encoded interval and render
  // one quad. The quad's own depth is irrelevant (the bounds test inspects
  // the stored values), so the depth test proper is disabled.
  device->SetDepthTest(false, gpu::CompareOp::kAlways);
  device->SetDepthWriteMask(false);
  device->SetDepthBoundsTest(true, attr.encoding.Encode(low),
                             attr.encoding.Encode(high));
  GPUDB_RETURN_NOT_OK(device->BeginOcclusionQuery());
  GPUDB_RETURN_NOT_OK(device->RenderQuad(attr.encoding.Encode(low)));
  GPUDB_ASSIGN_OR_RETURN(uint64_t count, device->EndOcclusionQuery());
  device->SetDepthBoundsTest(false);
  return count;
}

Result<uint64_t> RangeSelectTwoPass(gpu::Device* device,
                                    const AttributeBinding& attr, double low,
                                    double high) {
  if (low > high) {
    return Status::InvalidArgument("range query with low > high");
  }
  GPUDB_RETURN_NOT_OK(CopyToDepth(device, attr));
  StateGuard guard(device);
  device->ClearStencil(0);
  device->SetAlphaTest(false, gpu::CompareOp::kAlways, 0.0f);
  device->SetColorWriteMask(false);
  // Pass 1: x >= low marks stencil 1.
  device->SetStencilTest(true, gpu::CompareOp::kAlways, /*ref=*/1);
  device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                       gpu::StencilOp::kReplace);
  GPUDB_RETURN_NOT_OK(CompareQuad(device, gpu::CompareOp::kGreaterEqual, low,
                                  attr.encoding));
  // Pass 2: among stencil==1, x <= high survives as 2; count survivors.
  device->SetStencilTest(true, gpu::CompareOp::kEqual, /*ref=*/1);
  device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                       gpu::StencilOp::kIncr);
  GPUDB_RETURN_NOT_OK(device->BeginOcclusionQuery());
  GPUDB_RETURN_NOT_OK(
      CompareQuad(device, gpu::CompareOp::kLessEqual, high, attr.encoding));
  GPUDB_ASSIGN_OR_RETURN(uint64_t count, device->EndOcclusionQuery());
  // Normalize the mask back to {0,1}: clear stragglers at 1 to 0, then the
  // survivors at 2 down to 1 for a uniform selection encoding.
  device->SetStencilTest(true, gpu::CompareOp::kEqual, /*ref=*/1);
  device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                       gpu::StencilOp::kZero);
  device->SetDepthTest(false, gpu::CompareOp::kAlways);
  GPUDB_RETURN_NOT_OK(device->RenderQuad(0.0f));
  device->SetStencilTest(true, gpu::CompareOp::kEqual, /*ref=*/2);
  device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                       gpu::StencilOp::kDecr);
  GPUDB_RETURN_NOT_OK(device->RenderQuad(0.0f));
  return count;
}

}  // namespace core
}  // namespace gpudb
