#include "src/core/histogram.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "src/core/kth_largest.h"
#include "src/core/state_guard.h"

namespace gpudb {
namespace core {

namespace {

Status ValidateHistogramArgs(double low, double high, int buckets) {
  if (!(low < high)) {
    return Status::InvalidArgument("histogram requires low < high");
  }
  if (buckets < 1 || buckets > 4096) {
    return Status::InvalidArgument("bucket count must be in [1, 4096], got " +
                                   std::to_string(buckets));
  }
  return Status::OK();
}

}  // namespace

Result<Histogram> GpuHistogram(gpu::Device* device,
                               const AttributeBinding& attr, double low,
                               double high, int buckets) {
  GPUDB_RETURN_NOT_OK(ValidateHistogramArgs(low, high, buckets));
  GPUDB_RETURN_NOT_OK(CopyToDepth(device, attr));
  StateGuard guard(device);
  device->SetAlphaTest(false, gpu::CompareOp::kAlways, 0.0f);
  device->SetStencilTest(false, gpu::CompareOp::kAlways, 0);

  Histogram hist;
  hist.low = low;
  hist.high = high;
  hist.counts.assign(buckets, 0);

  // Cumulative counts at each bucket edge; one comparison pass per edge.
  std::vector<uint64_t> ge(buckets + 1, 0);
  for (int i = 0; i <= buckets; ++i) {
    // Cooperative cancellation between per-edge passes (lint rule R2).
    GPUDB_RETURN_NOT_OK(device->CheckInterrupt());
    const double edge = hist.low + hist.BucketWidth() * i;
    // The final edge uses GREATER so the last bucket includes `high`.
    const gpu::CompareOp op = (i == buckets) ? gpu::CompareOp::kGreater
                                             : gpu::CompareOp::kGreaterEqual;
    GPUDB_ASSIGN_OR_RETURN(ge[i],
                           CompareCount(device, op, edge, attr.encoding));
  }
  for (int i = 0; i < buckets; ++i) {
    if (ge[i] < ge[i + 1]) {
      return Status::Internal("non-monotonic cumulative counts");
    }
    hist.counts[i] = ge[i] - ge[i + 1];
  }
  return hist;
}

Result<Histogram> CpuHistogram(const std::vector<float>& values, double low,
                               double high, int buckets) {
  GPUDB_RETURN_NOT_OK(ValidateHistogramArgs(low, high, buckets));
  Histogram hist;
  hist.low = low;
  hist.high = high;
  hist.counts.assign(buckets, 0);
  const double width = hist.BucketWidth();
  for (float v : values) {
    if (v < low || v > high) continue;
    int idx = static_cast<int>((static_cast<double>(v) - low) / width);
    idx = std::clamp(idx, 0, buckets - 1);
    // Guard against floating rounding at bucket edges: make the index
    // consistent with the half-open [edge(i), edge(i+1)) definition.
    while (idx > 0 && static_cast<double>(v) < hist.Edge(idx)) --idx;
    while (idx < buckets - 1 && static_cast<double>(v) >= hist.Edge(idx + 1)) {
      ++idx;
    }
    ++hist.counts[idx];
  }
  return hist;
}

Result<std::vector<uint32_t>> GpuQuantiles(gpu::Device* device,
                                           const AttributeBinding& attr,
                                           int bit_width, int q) {
  if (q < 1 || q > 4096) {
    return Status::InvalidArgument("quantile count must be in [1, 4096]");
  }
  const uint64_t n = device->viewport_pixels();
  std::vector<uint64_t> ks(q);
  for (int i = 0; i < q; ++i) {
    // (i+1)*n/q-th smallest == (n - that + 1)-th largest.
    const uint64_t k_smallest =
        (static_cast<uint64_t>(i + 1) * n + q - 1) / q;
    ks[i] = n - k_smallest + 1;
  }
  return KthLargestBatch(device, attr, bit_width, ks);
}

Result<double> EstimateEquiJoinSize(const Histogram& a, const Histogram& b) {
  if (a.buckets() != b.buckets() || a.low != b.low || a.high != b.high) {
    return Status::InvalidArgument(
        "join estimation requires identical bucketing");
  }
  const double distinct_per_bucket = std::max(1.0, a.BucketWidth());
  double size = 0;
  for (int i = 0; i < a.buckets(); ++i) {
    size += static_cast<double>(a.counts[i]) *
            static_cast<double>(b.counts[i]) / distinct_per_bucket;
  }
  return size;
}

Result<double> EstimateEquiJoinSelectivity(const Histogram& a,
                                           const Histogram& b) {
  const double na = static_cast<double>(a.total());
  const double nb = static_cast<double>(b.total());
  if (na == 0 || nb == 0) {
    return Status::InvalidArgument("selectivity of an empty relation");
  }
  GPUDB_ASSIGN_OR_RETURN(double size, EstimateEquiJoinSize(a, b));
  return size / (na * nb);
}

}  // namespace core
}  // namespace gpudb
