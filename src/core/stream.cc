#include "src/core/stream.h"

#include <algorithm>
#include <string>

#include "src/common/bit_util.h"
#include "src/core/accumulator.h"
#include "src/core/kth_largest.h"

namespace gpudb {
namespace core {

StreamWindow::StreamWindow(gpu::Device* device, gpu::TextureId texture,
                           uint64_t capacity, int bit_width)
    : device_(device), capacity_(capacity), bit_width_(bit_width) {
  binding_.texture = texture;
  binding_.channel = 0;
  binding_.encoding = DepthEncoding::ExactInt24();
}

Result<StreamWindow> StreamWindow::Make(gpu::Device* device,
                                        uint64_t capacity, int bit_width) {
  if (device == nullptr) {
    return Status::InvalidArgument("null device");
  }
  if (capacity == 0 || capacity > device->framebuffer().pixel_count()) {
    return Status::InvalidArgument(
        "window capacity must be in [1, framebuffer pixels]");
  }
  if (bit_width < 1 || bit_width > 24) {
    return Status::InvalidArgument("bit_width must be in [1, 24]");
  }
  const uint32_t width = static_cast<uint32_t>(
      std::min<uint64_t>(capacity, device->framebuffer().width()));
  const uint32_t height =
      static_cast<uint32_t>(bit_util::CeilDiv(capacity, width));
  GPUDB_ASSIGN_OR_RETURN(gpu::TextureId tex,
                         device->CreateTexture(width, height, 1));
  return StreamWindow(device, tex, capacity, bit_width);
}

Status StreamWindow::Push(const std::vector<uint32_t>& values) {
  if (values.empty()) return Status::OK();
  const uint64_t limit = bit_util::PowerOfTwo(bit_width_);
  for (uint32_t v : values) {
    if (v >= limit) {
      return Status::OutOfRange("value " + std::to_string(v) +
                                " exceeds the window's " +
                                std::to_string(bit_width_) + "-bit domain");
    }
  }
  // If the batch alone exceeds the capacity, only its most recent suffix
  // can remain in the window.
  size_t start = 0;
  if (values.size() > capacity_) {
    start = values.size() - capacity_;
  }
  // Write into the ring, wrapping at capacity (at most two updates).
  std::vector<float> chunk;
  size_t i = start;
  while (i < values.size()) {
    const uint64_t run =
        std::min<uint64_t>(values.size() - i, capacity_ - head_);
    chunk.assign(values.begin() + i, values.begin() + i + run);
    GPUDB_RETURN_NOT_OK(
        device_->UpdateTexture(binding_.texture, head_, chunk, 0));
    head_ = (head_ + run) % capacity_;
    i += run;
  }
  size_ = std::min<uint64_t>(capacity_, size_ + (values.size() - start));
  return Status::OK();
}

Status StreamWindow::Activate() {
  if (size_ == 0) {
    return Status::FailedPrecondition("window is empty");
  }
  return device_->SetViewport(size_);
}

Result<uint64_t> StreamWindow::Count(gpu::CompareOp op, double constant) {
  GPUDB_RETURN_NOT_OK(Activate());
  return Compare(device_, binding_, op, constant);
}

Result<uint64_t> StreamWindow::Sum() {
  GPUDB_RETURN_NOT_OK(Activate());
  return Accumulate(device_, binding_.texture, 0, bit_width_);
}

Result<uint32_t> StreamWindow::KthLargest(uint64_t k) {
  GPUDB_RETURN_NOT_OK(Activate());
  return core::KthLargest(device_, binding_, bit_width_, k);
}

Result<uint32_t> StreamWindow::Median() {
  GPUDB_RETURN_NOT_OK(Activate());
  return MedianValue(device_, binding_, bit_width_);
}

}  // namespace core
}  // namespace gpudb
