#include "src/core/partition.h"

#include <algorithm>
#include <string>

#include "src/common/bit_util.h"
#include "src/core/accumulator.h"
#include "src/core/selection.h"
#include "src/core/state_guard.h"

namespace gpudb {
namespace core {

Result<PartitionedColumn> PartitionedColumn::Make(
    gpu::Device* device, const db::Column& column,
    const PartitionOptions& options) {
  if (device == nullptr) {
    return Status::InvalidArgument("null device");
  }
  if (column.type() != db::ColumnType::kInt24) {
    return Status::NotImplemented(
        "partitioned execution currently supports Int24 columns (the "
        "bit-loop algorithms require exact integer encoding)");
  }
  if (column.size() == 0) {
    return Status::InvalidArgument("empty column");
  }
  PartitionedColumn part(device, column.bit_width(), options);
  const uint64_t tile_capacity = device->framebuffer().pixel_count();
  const uint32_t width = device->framebuffer().width();
  const auto& values = column.values();
  for (uint64_t start = 0; start < values.size(); start += tile_capacity) {
    const uint64_t count =
        std::min<uint64_t>(tile_capacity, values.size() - start);
    const std::vector<float> slice(values.begin() + start,
                                   values.begin() + start + count);
    GPUDB_ASSIGN_OR_RETURN(gpu::Texture tex,
                           gpu::Texture::FromColumns({&slice}, width));
    GPUDB_ASSIGN_OR_RETURN(gpu::TextureId id,
                           device->UploadTexture(std::move(tex)));
    Tile tile;
    tile.binding.texture = id;
    tile.binding.channel = 0;
    tile.binding.encoding = DepthEncoding::ExactInt24();
    tile.records = count;
    // Zone map: computed while slicing, the way real loaders build them.
    const auto [lo, hi] = std::minmax_element(slice.begin(), slice.end());
    tile.min = *lo;
    tile.max = *hi;
    part.tiles_.push_back(tile);
    part.total_records_ += count;
  }
  return part;
}

PartitionedColumn::TileMatch PartitionedColumn::Classify(const Tile& tile,
                                                         gpu::CompareOp op,
                                                         double constant) {
  const double lo = tile.min;
  const double hi = tile.max;
  switch (op) {
    case gpu::CompareOp::kLess:
      if (hi < constant) return TileMatch::kAll;
      if (lo >= constant) return TileMatch::kNone;
      return TileMatch::kPartial;
    case gpu::CompareOp::kLessEqual:
      if (hi <= constant) return TileMatch::kAll;
      if (lo > constant) return TileMatch::kNone;
      return TileMatch::kPartial;
    case gpu::CompareOp::kEqual:
      if (lo == hi && lo == constant) return TileMatch::kAll;
      if (constant < lo || constant > hi) return TileMatch::kNone;
      return TileMatch::kPartial;
    case gpu::CompareOp::kGreaterEqual:
      if (lo >= constant) return TileMatch::kAll;
      if (hi < constant) return TileMatch::kNone;
      return TileMatch::kPartial;
    case gpu::CompareOp::kGreater:
      if (lo > constant) return TileMatch::kAll;
      if (hi <= constant) return TileMatch::kNone;
      return TileMatch::kPartial;
    case gpu::CompareOp::kNotEqual:
      if (constant < lo || constant > hi) return TileMatch::kAll;
      if (lo == hi && lo == constant) return TileMatch::kNone;
      return TileMatch::kPartial;
    case gpu::CompareOp::kAlways:
      return TileMatch::kAll;
    case gpu::CompareOp::kNever:
      return TileMatch::kNone;
  }
  return TileMatch::kPartial;
}

Result<uint64_t> PartitionedColumn::CrossTileCount(gpu::CompareOp op,
                                                   double constant) const {
  uint64_t total = 0;
  for (const Tile& tile : tiles_) {
    // Cooperative cancellation between per-tile passes (lint rule R2).
    GPUDB_RETURN_NOT_OK(device_->CheckInterrupt());
    if (options_.use_zone_maps) {
      const TileMatch match = Classify(tile, op, constant);
      if (match == TileMatch::kAll) {
        total += tile.records;
        ++tiles_pruned_;
        continue;
      }
      if (match == TileMatch::kNone) {
        ++tiles_pruned_;
        continue;
      }
    }
    GPUDB_RETURN_NOT_OK(device_->SetViewport(tile.records));
    GPUDB_ASSIGN_OR_RETURN(uint64_t n,
                           Compare(device_, tile.binding, op, constant));
    total += n;
  }
  return total;
}

Result<uint64_t> PartitionedColumn::Count(gpu::CompareOp op,
                                          double constant) const {
  return CrossTileCount(op, constant);
}

Result<uint64_t> PartitionedColumn::Sum() const {
  uint64_t total = 0;
  for (const Tile& tile : tiles_) {
    GPUDB_RETURN_NOT_OK(device_->SetViewport(tile.records));
    GPUDB_ASSIGN_OR_RETURN(
        uint64_t tile_sum,
        Accumulate(device_, tile.binding.texture, 0, bit_width_));
    total += tile_sum;
  }
  return total;
}

Result<uint32_t> PartitionedColumn::KthLargest(uint64_t k) const {
  if (k == 0 || k > total_records_) {
    return Status::OutOfRange("k=" + std::to_string(k) +
                              " out of range for " +
                              std::to_string(total_records_) + " records");
  }
  // Routine 4.5 with the count of each step summed across tiles. Each step
  // costs tiles x (copy + comparison) passes -- the price of not fitting in
  // video memory, as Section 6.1 anticipates.
  uint64_t x = 0;
  for (int i = bit_width_ - 1; i >= 0; --i) {
    // Cooperative cancellation between bit-probe rounds (lint rule R2).
    GPUDB_RETURN_NOT_OK(device_->CheckInterrupt());
    const uint64_t tentative = x + bit_util::PowerOfTwo(i);
    GPUDB_ASSIGN_OR_RETURN(
        uint64_t count,
        CrossTileCount(gpu::CompareOp::kGreaterEqual,
                       static_cast<double>(tentative)));
    if (count > k - 1) x = tentative;
  }
  return static_cast<uint32_t>(x);
}

Result<uint32_t> PartitionedColumn::Median() const {
  // Median = ceil(n/2)-th smallest = (n - ceil(n/2) + 1)-th largest.
  const uint64_t k_smallest = (total_records_ + 1) / 2;
  return KthLargest(total_records_ - k_smallest + 1);
}

Result<std::vector<uint8_t>> PartitionedColumn::SelectBitmap(
    gpu::CompareOp op, double constant) const {
  std::vector<uint8_t> bitmap;
  bitmap.reserve(total_records_);
  for (const Tile& tile : tiles_) {
    // Cooperative cancellation between per-tile passes (lint rule R2).
    GPUDB_RETURN_NOT_OK(device_->CheckInterrupt());
    if (options_.use_zone_maps) {
      const TileMatch match = Classify(tile, op, constant);
      if (match == TileMatch::kAll) {
        bitmap.insert(bitmap.end(), tile.records, 1);
        ++tiles_pruned_;
        continue;
      }
      if (match == TileMatch::kNone) {
        bitmap.insert(bitmap.end(), tile.records, 0);
        ++tiles_pruned_;
        continue;
      }
    }
    GPUDB_RETURN_NOT_OK(device_->SetViewport(tile.records));
    GPUDB_ASSIGN_OR_RETURN(uint64_t count,
                           CompareSelect(device_, tile.binding, op, constant));
    StencilSelection sel{1, count};
    GPUDB_ASSIGN_OR_RETURN(std::vector<uint8_t> tile_bitmap,
                           SelectionToBitmap(device_, sel, tile.records));
    bitmap.insert(bitmap.end(), tile_bitmap.begin(), tile_bitmap.end());
  }
  return bitmap;
}

}  // namespace core
}  // namespace gpudb
