#ifndef GPUDB_CORE_JOIN_H_
#define GPUDB_CORE_JOIN_H_

#include <cstdint>
#include <vector>

#include <string_view>

#include "src/common/result.h"
#include "src/core/compare.h"
#include "src/db/table.h"
#include "src/gpu/device.h"

namespace gpudb {
namespace core {

/// One row pair of an equi-join result.
struct JoinPair {
  uint32_t left_row = 0;
  uint32_t right_row = 0;
};

/// Options for the distinct-key join.
struct EquiJoinOptions {
  /// Cap on the driving side's distinct-key cardinality; each key costs
  /// rendering passes, so high-cardinality keys do not fit this execution
  /// model (the reason the paper leaves general joins to future work).
  uint64_t max_keys = 1024;
  /// Cap on the materialized result size.
  uint64_t max_result_pairs = 10'000'000;
};

/// \brief A GPU-resident join side: the key attribute, how many of the
/// viewport's records belong to this relation, and the key's bit width.
struct JoinSide {
  AttributeBinding key;
  uint64_t rows = 0;
  int key_bits = 0;
};

/// \brief Equi-join via distinct-key iteration -- a concrete take on the
/// "join" entry of the paper's future-work list (Section 7), built from its
/// own primitives and the selectivity-estimation idea of Section 5.11:
///
///  1. the left side's distinct keys are discovered in ascending order
///     (selection + masked MIN per key, as in GROUP BY);
///  2. for each key, an occlusion-count probe on the right side prunes keys
///     with no partners before anything is materialized (the per-key exact
///     analogue of the histogram-based selectivity pruning in [7, 10]);
///  3. surviving keys materialize both sides' row ids from the stencil and
///     emit the cross product.
///
/// Put the lower-cardinality relation on the left. Both relations' key
/// textures must be resident on the same device; the viewport is switched
/// per side.
[[nodiscard]] Result<std::vector<JoinPair>> EquiJoin(gpu::Device* device,
                                       const JoinSide& left,
                                       const JoinSide& right,
                                       const EquiJoinOptions& options = {});

/// \brief Convenience wrapper: uploads both tables' (integer) key columns to
/// the device and runs EquiJoin. Put the lower-cardinality table on the
/// left. Both tables must individually fit the framebuffer.
[[nodiscard]] Result<std::vector<JoinPair>> EquiJoinTables(gpu::Device* device,
                                             const db::Table& left,
                                             std::string_view left_key,
                                             const db::Table& right,
                                             std::string_view right_key,
                                             const EquiJoinOptions& options = {});

/// \brief Exact equi-join cardinality without materialization: per distinct
/// key, the product of the two sides' occlusion counts. This is what a
/// query optimizer wants from the GPU (compare EstimateEquiJoinSize for the
/// histogram approximation).
[[nodiscard]] Result<uint64_t> EquiJoinSize(gpu::Device* device, const JoinSide& left,
                              const JoinSide& right,
                              const EquiJoinOptions& options = {});

}  // namespace core
}  // namespace gpudb

#endif  // GPUDB_CORE_JOIN_H_
