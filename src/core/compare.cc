#include "src/core/compare.h"

#include "src/core/state_guard.h"
#include "src/gpu/fragment_program.h"

namespace gpudb {
namespace core {

Status CopyToDepth(gpu::Device* device, const AttributeBinding& attr) {
  StateGuard guard(device);
  GPUDB_RETURN_NOT_OK(device->BindTexture(attr.texture));
  const gpu::CopyToDepthProgram program(attr.channel, attr.encoding.scale,
                                        attr.encoding.offset);
  device->UseProgram(&program);
  device->SetAlphaTest(false, gpu::CompareOp::kAlways, 0.0f);
  device->SetStencilTest(false, gpu::CompareOp::kAlways, 0);
  device->SetDepthBoundsTest(false);
  // Depth writes in OpenGL only happen when the depth test is enabled, so
  // the copy runs the test with ALWAYS.
  device->SetDepthTest(true, gpu::CompareOp::kAlways);
  device->SetDepthWriteMask(true);
  device->SetColorWriteMask(false);
  return device->RenderTexturedQuad();
}

Status CompareQuad(gpu::Device* device, gpu::CompareOp op, double value,
                   const DepthEncoding& encoding) {
  // Preserve the caller's stencil/alpha/occlusion configuration; only the
  // depth unit is ours.
  device->UseProgram(nullptr);
  device->SetDepthBoundsTest(false);
  device->SetDepthTest(true, gpu::Mirror(op));
  device->SetDepthWriteMask(false);
  device->SetColorWriteMask(false);
  return device->RenderQuad(encoding.Encode(value));
}

Status FusedComparePass(gpu::Device* device, const AttributeBinding& attr,
                        gpu::CompareOp op, double value) {
  // Seed the stored depth with the quantized constant. ClearDepth goes
  // through the same FrameBuffer::Quantize as CompareQuad's flat quad
  // depth, so the constant's 24-bit code is identical in both plans.
  device->ClearDepth(attr.encoding.Encode(value));
  GPUDB_RETURN_NOT_OK(device->BindTexture(attr.texture));
  const gpu::FusedCompareProgram program(attr.channel, attr.encoding.scale,
                                         attr.encoding.offset);
  device->UseProgram(&program);
  // The program output is the incoming depth (the record's attribute), the
  // stored depth is the constant, and OpenGL compares incoming-vs-stored:
  // `attr op value` needs no mirroring. Depth writes stay off -- the pass
  // only classifies, its survivors feed the caller's stencil/occlusion.
  device->SetDepthBoundsTest(false);
  device->SetDepthTest(true, op);
  device->SetDepthWriteMask(false);
  device->SetColorWriteMask(false);
  device->MarkNextPassFused();
  const Status s = device->RenderTexturedQuad();
  // The program is this frame's local; never leave a dangling installation.
  device->UseProgram(nullptr);
  return s;
}

Result<uint64_t> CompareCount(gpu::Device* device, gpu::CompareOp op,
                              double value, const DepthEncoding& encoding) {
  GPUDB_RETURN_NOT_OK(device->BeginOcclusionQuery());
  GPUDB_RETURN_NOT_OK(CompareQuad(device, op, value, encoding));
  return device->EndOcclusionQuery();
}

Result<uint64_t> Compare(gpu::Device* device, const AttributeBinding& attr,
                         gpu::CompareOp op, double value) {
  GPUDB_RETURN_NOT_OK(CopyToDepth(device, attr));
  StateGuard guard(device);
  device->SetAlphaTest(false, gpu::CompareOp::kAlways, 0.0f);
  device->SetStencilTest(false, gpu::CompareOp::kAlways, 0);
  return CompareCount(device, op, value, attr.encoding);
}

Result<uint64_t> CompareSelect(gpu::Device* device,
                               const AttributeBinding& attr, gpu::CompareOp op,
                               double value) {
  GPUDB_RETURN_NOT_OK(CopyToDepth(device, attr));
  StateGuard guard(device);
  device->ClearStencil(0);
  device->SetAlphaTest(false, gpu::CompareOp::kAlways, 0.0f);
  // Every fragment passes the stencil test; those that also pass the depth
  // comparison write stencil = 1 (Op3 REPLACE).
  device->SetStencilTest(true, gpu::CompareOp::kAlways, /*ref=*/1);
  device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                       gpu::StencilOp::kReplace);
  return CompareCount(device, op, value, attr.encoding);
}

}  // namespace core
}  // namespace gpudb
