#include "src/core/pool_executor.h"

#include <string>
#include <utility>

#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/core/cpu_tier.h"

namespace gpudb {
namespace core {

Result<std::unique_ptr<PoolExecutor>> PoolExecutor::Make(
    gpu::DevicePool* pool, const db::ShardedTable* sharded) {
  if (pool == nullptr || sharded == nullptr) {
    return Status::InvalidArgument(
        "PoolExecutor requires a device pool and a sharded table");
  }
  if (sharded->num_shards() == 0) {
    return Status::InvalidArgument("sharded table has no shards");
  }
  const uint64_t pixels =
      static_cast<uint64_t>(pool->options().width) * pool->options().height;
  for (size_t i = 0; i < sharded->num_shards(); ++i) {
    const db::Shard& shard = sharded->shard(i);
    if (shard.table.num_rows() > pixels) {
      return Status::ResourceExhausted(
          "shard " + std::to_string(i) + " has " +
          std::to_string(shard.table.num_rows()) +
          " rows but pool devices hold only " + std::to_string(pixels) +
          " pixels; use more shards or larger devices");
    }
    if (shard.placement.primary >= pool->size() ||
        shard.placement.replica >= pool->size()) {
      return Status::InvalidArgument(
          "shard placement references a device outside the pool");
    }
  }
  return std::unique_ptr<PoolExecutor>(new PoolExecutor(pool, sharded));
}

bool PoolExecutor::ShardableAggregate(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCount:
    case AggregateKind::kSum:
    case AggregateKind::kAvg:
    case AggregateKind::kMin:
    case AggregateKind::kMax:
      return true;
    case AggregateKind::kMedian:
      return false;
  }
  return false;
}

void PoolExecutor::set_resilience_options(const ResilienceOptions& options) {
  resilience_ = options;
  // The pool owns the degradation ladder: per-shard attempts may retry in
  // place, but the CPU rung is a failover decision made here, after the
  // replica, never inside a shard executor.
  resilience_.allow_cpu_fallback = false;
  for (auto& [key, exec] : executors_) {
    exec->set_resilience_options(resilience_);
  }
}

Result<Executor*> PoolExecutor::ShardExecutorFor(size_t shard_index,
                                            int device_id) {
  const auto key = std::make_pair(shard_index, device_id);
  auto it = executors_.find(key);
  const db::Shard& shard = sharded_->shard(shard_index);
  if (it == executors_.end()) {
    GPUDB_ASSIGN_OR_RETURN(
        std::unique_ptr<Executor> exec,
        Executor::Make(&pool_->device(device_id), &shard.table));
    exec->set_resilience_options(resilience_);
    it = executors_.emplace(key, std::move(exec)).first;
    return it->second.get();
  }
  // Devices multiplex shards (and sessions); restore this shard's viewport
  // before running anything.
  GPUDB_RETURN_NOT_OK(
      pool_->device(device_id).SetViewport(shard.table.num_rows()));
  return it->second.get();
}

template <typename T>
Result<T> PoolExecutor::RunShard(
    size_t shard_index, const char* op_name,
    const std::function<Result<T>(Executor&)>& gpu_op,
    const std::function<Result<T>(const db::Table&)>& cpu_op) {
  const db::Shard& shard = sharded_->shard(shard_index);
  // Cancellation stays responsive across the whole scatter: every shard
  // dispatch starts by consulting the primary's interrupt flag.
  GPUDB_RETURN_NOT_OK(
      pool_->device(shard.placement.primary).CheckInterrupt());
  if (last_stats_.first_device < 0) {
    last_stats_.first_device = shard.placement.primary;
  }
  const int candidates[2] = {shard.placement.primary,
                             shard.placement.replica};
  const int num_candidates =
      (failover_.try_replica && shard.placement.replicated()) ? 2 : 1;
  Status last_fault = Status::OK();
  auto hop_off = [&](int device_id) {
    pool_->RecordFailover(device_id);
    ++last_stats_.failovers;
    if (last_stats_.first_failed_device < 0) {
      last_stats_.first_failed_device = device_id;
    }
  };
  for (int attempt = 0; attempt < num_candidates; ++attempt) {
    const int device_id = candidates[attempt];
    TraceSpan span("pool.shard");
    span.AddTag("op", op_name);
    span.AddTag("shard", static_cast<uint64_t>(shard_index));
    span.AddTag("device", device_id);
    span.AddTag("role", attempt == 0 ? "primary" : "replica");
    if (!pool_->AdmitDispatch(device_id)) {
      span.AddTag("outcome", "refused");
      hop_off(device_id);
      continue;
    }
    Result<gpu::DevicePool::Lease> lease = pool_->TryAcquire(device_id);
    if (!lease.ok()) {
      // The admission verdict raced ForceDeviceLost: the card was pulled
      // while this shard waited for the lease. Same treatment as a refusal.
      span.AddTag("outcome", "refused");
      hop_off(device_id);
      continue;
    }
    Result<Executor*> exec = ShardExecutorFor(shard_index, device_id);
    if (!exec.ok()) return exec.status();
    Result<T> result = gpu_op(*exec.ValueOrDie());
    if (result.ok()) {
      pool_->RecordSuccess(device_id);
      span.AddTag("outcome", "ok");
      return result;
    }
    // Deadline/cancel is the query's budget, not the device's fault -- and
    // the replica cannot beat the clock either.
    if (result.status().IsDeadlineExceeded() ||
        result.status().IsCancelled()) {
      return result;
    }
    // User errors propagate untouched: the replica holds an identical copy
    // and would fail identically.
    if (!IsDeviceFault(result.status())) return result;
    pool_->RecordFailure(device_id);
    last_fault = result.status();
    span.AddTag("outcome", "fault");
    hop_off(device_id);
  }
  if (!failover_.allow_cpu_fallback) {
    if (!last_fault.ok()) return last_fault;
    return Status::DeviceLost(
        "shard " + std::to_string(shard_index) +
        ": every placement quarantined and CPU fallback disabled");
  }
  last_stats_.cpu_fallback = true;
  MetricsRegistry::Global().counter("queries.fell_back").Increment();
  return cpu_op(shard.table);
}

Result<uint64_t> PoolExecutor::ShardCount(size_t shard_index,
                                          const predicate::ExprPtr& where) {
  return RunShard<uint64_t>(
      shard_index, "Count",
      [&](Executor& exec) { return exec.Count(where); },
      [&](const db::Table& table) { return cpu_tier::Count(table, where); });
}

Result<uint64_t> PoolExecutor::Count(const predicate::ExprPtr& where) {
  last_stats_ = PoolQueryStats();
  uint64_t total = 0;
  for (size_t i = 0; i < sharded_->num_shards(); ++i) {
    GPUDB_ASSIGN_OR_RETURN(uint64_t count, ShardCount(i, where));
    total += count;
  }
  return total;
}

Result<std::vector<uint8_t>> PoolExecutor::SelectBitmap(
    const predicate::ExprPtr& where) {
  last_stats_ = PoolQueryStats();
  std::vector<uint8_t> bitmap;
  bitmap.reserve(sharded_->num_rows());
  for (size_t i = 0; i < sharded_->num_shards(); ++i) {
    GPUDB_ASSIGN_OR_RETURN(
        std::vector<uint8_t> part,
        RunShard<std::vector<uint8_t>>(
            i, "SelectBitmap",
            [&](Executor& exec) { return exec.SelectBitmap(where); },
            [&](const db::Table& table) {
              return cpu_tier::SelectionMask(table, where);
            }));
    bitmap.insert(bitmap.end(), part.begin(), part.end());
  }
  return bitmap;
}

Result<std::vector<uint32_t>> PoolExecutor::SelectRowIds(
    const predicate::ExprPtr& where) {
  last_stats_ = PoolQueryStats();
  std::vector<uint32_t> rows;
  for (size_t i = 0; i < sharded_->num_shards(); ++i) {
    const uint32_t row_begin = sharded_->shard(i).row_begin;
    GPUDB_ASSIGN_OR_RETURN(
        std::vector<uint32_t> part,
        RunShard<std::vector<uint32_t>>(
            i, "SelectRowIds",
            [&](Executor& exec) { return exec.SelectRowIds(where); },
            [&](const db::Table& table) {
              return cpu_tier::RowIds(table, where);
            }));
    // Shards are contiguous ranges in order, so offsetting and appending
    // keeps the global id list sorted -- identical to one-device output.
    for (uint32_t local : part) rows.push_back(row_begin + local);
  }
  return rows;
}

Result<uint64_t> PoolExecutor::RangeCount(std::string_view column, double low,
                                          double high) {
  last_stats_ = PoolQueryStats();
  uint64_t total = 0;
  for (size_t i = 0; i < sharded_->num_shards(); ++i) {
    // Cancellation coverage (lint rule R2): a skipped pass must stop the
    // scatter loop, not leave it spinning through the remaining shards.
    GPUDB_RETURN_NOT_OK(
        pool_->device(sharded_->shard(i).placement.primary).CheckInterrupt());
    GPUDB_ASSIGN_OR_RETURN(
        uint64_t count,
        RunShard<uint64_t>(
            i, "RangeCount",
            [&](Executor& exec) { return exec.RangeCount(column, low, high); },
            [&](const db::Table& table) {
              return cpu_tier::RangeCount(table, column, low, high);
            }));
    total += count;
  }
  return total;
}

Result<double> PoolExecutor::Aggregate(AggregateKind kind,
                                       std::string_view column,
                                       const predicate::ExprPtr& where) {
  if (!ShardableAggregate(kind)) {
    return Status::NotImplemented(
        "MEDIAN is an order statistic over the whole selection and cannot be "
        "recombined from per-shard answers; it is a single-device operator "
        "(EXTENDING.md)");
  }
  // Mirror the single-device validation order: resolve the column before
  // touching the WHERE clause (COUNT(*) aside, which takes no column).
  if (kind != AggregateKind::kCount) {
    GPUDB_ASSIGN_OR_RETURN(size_t col,
                           sharded_->shard(0).table.ColumnIndex(column));
    (void)col;
  }
  last_stats_ = PoolQueryStats();
  auto shard_aggregate = [&](size_t i, AggregateKind agg) {
    return RunShard<double>(
        i, "Aggregate",
        [&](Executor& exec) { return exec.Aggregate(agg, column, where); },
        [&](const db::Table& table) {
          return cpu_tier::Aggregate(table, agg, column, where);
        });
  };
  switch (kind) {
    case AggregateKind::kCount: {
      uint64_t total = 0;
      for (size_t i = 0; i < sharded_->num_shards(); ++i) {
        GPUDB_ASSIGN_OR_RETURN(uint64_t count, ShardCount(i, where));
        total += count;
      }
      return static_cast<double>(total);
    }
    case AggregateKind::kSum: {
      // Per-shard GPU sums are exact integer accumulations (<= 2^24 values
      // of <= 24 bits each fits a double exactly), so the total is too.
      double total = 0.0;
      for (size_t i = 0; i < sharded_->num_shards(); ++i) {
        GPUDB_ASSIGN_OR_RETURN(double sum, shard_aggregate(i, kind));
        total += sum;
      }
      return total;
    }
    case AggregateKind::kMin:
    case AggregateKind::kMax: {
      bool any = false;
      double best = 0.0;
      for (size_t i = 0; i < sharded_->num_shards(); ++i) {
        GPUDB_ASSIGN_OR_RETURN(uint64_t count, ShardCount(i, where));
        if (count == 0) continue;  // empty shards contribute nothing
        GPUDB_ASSIGN_OR_RETURN(double value, shard_aggregate(i, kind));
        if (!any || (kind == AggregateKind::kMin ? value < best
                                                 : value > best)) {
          best = value;
        }
        any = true;
      }
      if (!any) {
        // The status Min/MaxValue produce via KthSmallest/Largest(k=1).
        return Status::OutOfRange("k=1 out of range for 0 records");
      }
      return best;
    }
    case AggregateKind::kAvg: {
      uint64_t total_count = 0;
      double total_sum = 0.0;
      for (size_t i = 0; i < sharded_->num_shards(); ++i) {
        GPUDB_ASSIGN_OR_RETURN(uint64_t count, ShardCount(i, where));
        if (count == 0) continue;
        GPUDB_ASSIGN_OR_RETURN(double sum,
                               shard_aggregate(i, AggregateKind::kSum));
        total_count += count;
        total_sum += sum;
      }
      if (total_count == 0) {
        return Status::InvalidArgument("AVG over empty selection");
      }
      // One division over exact totals: identical to the single-device
      // double(sum) / double(count).
      return total_sum / static_cast<double>(total_count);
    }
    case AggregateKind::kMedian:
      break;  // unreachable: rejected above
  }
  return Status::Internal("unknown aggregate kind");
}

}  // namespace core
}  // namespace gpudb
