#include "src/core/group_by.h"

#include <string>

#include "src/core/kth_largest.h"

namespace gpudb {
namespace core {

Result<std::vector<uint32_t>> DistinctValues(gpu::Device* device,
                                             const AttributeBinding& attr,
                                             int bit_width,
                                             uint64_t max_values) {
  if (max_values == 0) {
    return Status::InvalidArgument("max_values must be positive");
  }
  std::vector<uint32_t> values;
  // Smallest key overall, then repeatedly the smallest key above the last.
  GPUDB_ASSIGN_OR_RETURN(uint32_t current, MinValue(device, attr, bit_width));
  values.push_back(current);
  for (;;) {
    GPUDB_ASSIGN_OR_RETURN(
        uint64_t remaining,
        CompareSelect(device, attr, gpu::CompareOp::kGreater,
                      static_cast<double>(current)));
    if (remaining == 0) break;
    if (values.size() >= max_values) {
      return Status::ResourceExhausted(
          "more than " + std::to_string(max_values) +
          " distinct values; this execution model costs passes per value");
    }
    KthOptions options;
    options.selection = StencilSelection{1, remaining};
    GPUDB_ASSIGN_OR_RETURN(current,
                           MinValue(device, attr, bit_width, options));
    values.push_back(current);
  }
  return values;
}

Result<std::vector<GroupByRow>> GroupByAggregate(
    gpu::Device* device, const AttributeBinding& key_attr, int key_bits,
    const AttributeBinding& value_attr, int value_bits, AggregateKind kind,
    uint64_t max_groups) {
  GPUDB_ASSIGN_OR_RETURN(
      std::vector<uint32_t> keys,
      DistinctValues(device, key_attr, key_bits, max_groups));
  std::vector<GroupByRow> rows;
  rows.reserve(keys.size());
  for (uint32_t key : keys) {
    // Mark this group's records in the stencil (Routine 4.1 selection).
    GPUDB_ASSIGN_OR_RETURN(
        uint64_t count,
        CompareSelect(device, key_attr, gpu::CompareOp::kEqual,
                      static_cast<double>(key)));
    GroupByRow row;
    row.key = key;
    row.count = count;
    if (count == 0) {
      // Cannot happen for a discovered distinct key; guard anyway.
      return Status::Internal("discovered key selects no records");
    }
    StencilSelection selection{1, count};
    GPUDB_ASSIGN_OR_RETURN(
        row.aggregate,
        AggregateAttribute(device, kind, value_attr, value_bits, selection));
    rows.push_back(row);
  }
  return rows;
}

}  // namespace core
}  // namespace gpudb
