#ifndef GPUDB_CORE_RANGE_H_
#define GPUDB_CORE_RANGE_H_

#include <cstdint>

#include "src/common/result.h"
#include "src/core/compare.h"
#include "src/gpu/device.h"

namespace gpudb {
namespace core {

/// \brief Routine 4.4: range query `low <= attribute <= high` using the
/// GL_EXT_depth_bounds_test feature.
///
/// The attribute is copied into the depth buffer; the depth bounds test then
/// passes exactly the fragments whose *stored* depth lies within the encoded
/// [low, high] interval, so a single additional quad evaluates both
/// comparisons at once -- "the computational time ... is comparable to the
/// time required in evaluating a single predicate" (Section 4.2).
///
/// Selected records get stencil = 1, others 0; returns the selected count.
[[nodiscard]] Result<uint64_t> RangeSelect(gpu::Device* device, const AttributeBinding& attr,
                             double low, double high);

/// \brief The same range query implemented as a two-predicate CNF
/// ((x >= low) AND (x <= high)) via two comparison passes. This is the
/// baseline the paper contrasts the depth-bounds path against; kept for the
/// ablation benchmark.
[[nodiscard]] Result<uint64_t> RangeSelectTwoPass(gpu::Device* device,
                                    const AttributeBinding& attr, double low,
                                    double high);

}  // namespace core
}  // namespace gpudb

#endif  // GPUDB_CORE_RANGE_H_
