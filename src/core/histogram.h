#ifndef GPUDB_CORE_HISTOGRAM_H_
#define GPUDB_CORE_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/core/compare.h"
#include "src/gpu/device.h"

namespace gpudb {
namespace core {

/// \brief Equi-width histogram over a value interval.
///
/// Bucket i covers [edge(i), edge(i+1)) with edge(i) = low + i*(high-low)/B,
/// except the last bucket, which also includes `high`.
struct Histogram {
  double low = 0;
  double high = 0;
  std::vector<uint64_t> counts;

  int buckets() const { return static_cast<int>(counts.size()); }
  double BucketWidth() const {
    return (high - low) / static_cast<double>(counts.size());
  }
  double Edge(int i) const {
    return low + BucketWidth() * static_cast<double>(i);
  }
  uint64_t total() const {
    uint64_t t = 0;
    for (uint64_t c : counts) t += c;
    return t;
  }
};

/// \brief Builds an equi-width histogram on the GPU using cumulative
/// occlusion counts: after one CopyToDepth, bucket i's population is
/// #{x >= edge(i)} - #{x >= edge(i+1)}, each term one comparison quad with
/// an occlusion query (Routine 4.1 machinery; B+1 passes total).
///
/// This is the building block for the selectivity-estimation uses the paper
/// points at in Section 5.11 (join algorithms driven by selectivity
/// estimates [7, 10]).
///
/// Precision note: bucket edges pass through the depth encoding, so for
/// integer columns the counts are exact when every edge lands on an integer
/// (choose `high - low` divisible by `buckets`); fractional edges round to
/// the nearest depth code, the Section 6.1 precision caveat.
[[nodiscard]] Result<Histogram> GpuHistogram(gpu::Device* device,
                               const AttributeBinding& attr, double low,
                               double high, int buckets);

/// CPU reference with identical bucket semantics.
[[nodiscard]] Result<Histogram> CpuHistogram(const std::vector<float>& values, double low,
                               double high, int buckets);

/// \brief q-quantiles of an integer attribute: result[i] is the
/// ceil((i+1) * n / q)-th smallest value (so result.back() is the maximum
/// and result[q/2 - 1] the median for even q).
///
/// Computed with KthLargestBatch -- one CopyToDepth plus q bit-searches --
/// and the basis of equi-depth histograms for selectivity estimation.
[[nodiscard]] Result<std::vector<uint32_t>> GpuQuantiles(gpu::Device* device,
                                           const AttributeBinding& attr,
                                           int bit_width, int q);

/// \brief Estimated result cardinality of the equi-join A.x = B.y from two
/// histograms with identical bucketing, assuming values are uniformly spread
/// within each bucket over an integer domain:
///   sum_i  a_i * b_i / max(1, bucket_width).
[[nodiscard]] Result<double> EstimateEquiJoinSize(const Histogram& a, const Histogram& b);

/// Estimated join selectivity: EstimateEquiJoinSize / (|A| * |B|).
[[nodiscard]] Result<double> EstimateEquiJoinSelectivity(const Histogram& a,
                                           const Histogram& b);

}  // namespace core
}  // namespace gpudb

#endif  // GPUDB_CORE_HISTOGRAM_H_
