#include "src/core/aggregates.h"

#include "src/core/accumulator.h"
#include "src/core/count.h"
#include "src/core/kth_largest.h"

namespace gpudb {
namespace core {

std::string_view ToString(AggregateKind kind) {
  switch (kind) {
    case AggregateKind::kCount:
      return "COUNT";
    case AggregateKind::kSum:
      return "SUM";
    case AggregateKind::kAvg:
      return "AVG";
    case AggregateKind::kMin:
      return "MIN";
    case AggregateKind::kMax:
      return "MAX";
    case AggregateKind::kMedian:
      return "MEDIAN";
  }
  return "UNKNOWN";
}

Result<double> AggregateAttribute(
    gpu::Device* device, AggregateKind kind, const AttributeBinding& attr,
    int bit_width, const std::optional<StencilSelection>& selection) {
  KthOptions kth_options;
  kth_options.selection = selection;
  AccumulatorOptions acc_options;
  acc_options.selection = selection;

  switch (kind) {
    case AggregateKind::kCount: {
      if (selection.has_value()) {
        return static_cast<double>(selection->count);
      }
      GPUDB_ASSIGN_OR_RETURN(uint64_t n, CountAll(device));
      return static_cast<double>(n);
    }
    case AggregateKind::kSum: {
      GPUDB_ASSIGN_OR_RETURN(
          uint64_t sum, Accumulate(device, attr.texture, attr.channel,
                                   bit_width, acc_options));
      return static_cast<double>(sum);
    }
    case AggregateKind::kAvg:
      return Average(device, attr.texture, attr.channel, bit_width,
                     acc_options);
    case AggregateKind::kMin: {
      GPUDB_ASSIGN_OR_RETURN(uint32_t v,
                             MinValue(device, attr, bit_width, kth_options));
      return static_cast<double>(v);
    }
    case AggregateKind::kMax: {
      GPUDB_ASSIGN_OR_RETURN(uint32_t v,
                             MaxValue(device, attr, bit_width, kth_options));
      return static_cast<double>(v);
    }
    case AggregateKind::kMedian: {
      GPUDB_ASSIGN_OR_RETURN(
          uint32_t v, MedianValue(device, attr, bit_width, kth_options));
      return static_cast<double>(v);
    }
  }
  return Status::InvalidArgument("unknown aggregate kind");
}

}  // namespace core
}  // namespace gpudb
