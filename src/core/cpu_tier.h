#ifndef GPUDB_CORE_CPU_TIER_H_
#define GPUDB_CORE_CPU_TIER_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/common/result.h"
#include "src/core/aggregates.h"
#include "src/db/table.h"
#include "src/predicate/expr.h"

namespace gpudb {
namespace core {
namespace cpu_tier {

/// \brief The CPU fallback tier (DESIGN.md §11), as free functions.
///
/// Exact scalar equivalents of the GPU operators over a db::Table, shared by
/// Executor::RunResilient (single-device degradation) and PoolExecutor
/// (per-shard failover, DESIGN.md §15). Each helper mirrors the GPU method's
/// validation order and error messages, so a query answered by either tier
/// -- or recombined from per-shard CPU answers -- is indistinguishable to
/// the caller, including which error it gets for bad arguments.

/// WHERE mask over every row; a null expression selects everything.
[[nodiscard]] Result<std::vector<uint8_t>> SelectionMask(
    const db::Table& table, const predicate::ExprPtr& where);

/// SELECT COUNT(*) WHERE `where`.
[[nodiscard]] Result<uint64_t> Count(const db::Table& table,
                                     const predicate::ExprPtr& where);

/// Selected rows as sorted row ids.
[[nodiscard]] Result<std::vector<uint32_t>> RowIds(
    const db::Table& table, const predicate::ExprPtr& where);

/// SELECT <agg>(column) WHERE `where`.
[[nodiscard]] Result<double> Aggregate(const db::Table& table,
                                       AggregateKind kind,
                                       std::string_view column,
                                       const predicate::ExprPtr& where);

/// The k-th largest value of `column` among rows matching `where`.
[[nodiscard]] Result<uint32_t> KthLargest(const db::Table& table,
                                          std::string_view column, uint64_t k,
                                          const predicate::ExprPtr& where);

/// Range count with the depth-bounds quantization mirrored exactly.
[[nodiscard]] Result<uint64_t> RangeCount(const db::Table& table,
                                          std::string_view column, double low,
                                          double high);

}  // namespace cpu_tier
}  // namespace core
}  // namespace gpudb

#endif  // GPUDB_CORE_CPU_TIER_H_
