#ifndef GPUDB_CORE_RESILIENCE_H_
#define GPUDB_CORE_RESILIENCE_H_

#include "src/common/status.h"

namespace gpudb {
namespace core {

/// \brief Bounded-retry policy for transient device faults.
///
/// Retries apply only to the kDeviceLost category (see IsTransientFault):
/// a lost context or injected watchdog kill may succeed on the next
/// attempt, while deterministic failures (bad arguments, a texture that
/// cannot fit VRAM) never will. Backoff is exponential with a cap; tests
/// keep `sleep` off so retry schedules stay deterministic and instant.
struct RetryPolicy {
  int max_attempts = 3;          ///< Total attempts, including the first.
  double backoff_base_ms = 1.0;  ///< Delay before the first retry.
  double backoff_multiplier = 2.0;
  double backoff_max_ms = 64.0;
  bool sleep = false;  ///< Actually sleep between attempts.

  /// Backoff before retry `retry_index` (0-based): base * multiplier^i,
  /// clamped to backoff_max_ms.
  double DelayMs(int retry_index) const;
};

/// True for faults worth retrying in place: the transient kDeviceLost
/// category (driver context loss, injected watchdog/readback faults).
bool IsTransientFault(const Status& status);

/// True for faults that indict the device path as a whole and count
/// toward the circuit breaker: kDeviceLost, kResourceExhausted (VRAM),
/// and kInternal (simulator invariant violations). Deadline and
/// cancellation are the *user's* budget running out, not a device fault,
/// and user errors (InvalidArgument & co.) are neither.
bool IsDeviceFault(const Status& status);

/// \brief Consecutive-failure circuit breaker guarding the GPU path.
///
/// After `threshold` consecutive device faults the breaker opens and the
/// Executor routes eligible queries straight to the CPU baseline without
/// touching the device. While open, every `probe_interval`-th eligible
/// call is let through as a probe (counted in calls, not wall time, so
/// behaviour stays deterministic under test); one success closes the
/// breaker again.
class CircuitBreaker {
 public:
  explicit CircuitBreaker(int threshold = 3, int probe_interval = 8)
      : threshold_(threshold), probe_interval_(probe_interval) {}

  void RecordFailure();
  void RecordSuccess();

  bool open() const { return consecutive_failures_ >= threshold_; }
  int consecutive_failures() const { return consecutive_failures_; }
  int threshold() const { return threshold_; }

  /// While open: true when this call should probe the GPU path anyway.
  /// Advances the skipped-call counter.
  bool AllowProbe();

  void set_threshold(int threshold) { threshold_ = threshold; }
  void Reset();

 private:
  int threshold_;
  int probe_interval_;
  int consecutive_failures_ = 0;
  int skipped_calls_ = 0;
};

/// \brief Per-executor resilience configuration (DESIGN.md section 11).
struct ResilienceOptions {
  bool enabled = true;
  RetryPolicy retry;
  int breaker_threshold = 3;
  /// Degrade device faults to the cpu/ baseline where an equivalent
  /// implementation exists (count/select/aggregate/kth/range).
  bool allow_cpu_fallback = true;
  /// Per-query wall-clock deadline armed on the device around each
  /// top-level operator; 0 disables.
  double deadline_ms = 0.0;
};

/// \brief Shard failover policy for the scatter/gather path (DESIGN.md §15).
///
/// A shard's dispatch ladder is primary device -> replica device -> CPU
/// tier. A hop happens when the device pool refuses the device (quarantined
/// or force-lost) or the per-device attempt exhausts its in-place retries
/// with a device fault (IsDeviceFault). User errors never fail over: the
/// replica holds an identical copy and would return the identical error, so
/// hopping could only waste the query's deadline.
struct FailoverPolicy {
  bool try_replica = true;        ///< Hop to the shard's replica device.
  bool allow_cpu_fallback = true; ///< Final rung: per-shard CPU tier.
};

/// Sleeps for `ms` when `real` is set; no-op otherwise (deterministic
/// test schedules).
void BackoffSleep(double ms, bool real);

}  // namespace core
}  // namespace gpudb

#endif  // GPUDB_CORE_RESILIENCE_H_
