#include "src/core/semilinear.h"

#include "src/core/state_guard.h"
#include "src/gpu/fragment_program.h"

namespace gpudb {
namespace core {

SemilinearQuery SemilinearQuery::AttrCompare(int lhs_channel,
                                             gpu::CompareOp op,
                                             int rhs_channel) {
  SemilinearQuery q;
  q.weights[lhs_channel] = 1.0f;
  q.weights[rhs_channel] = -1.0f;
  q.op = op;
  q.b = 0.0f;
  return q;
}

Status SemilinearQuad(gpu::Device* device, gpu::TextureId texture,
                      const SemilinearQuery& query) {
  GPUDB_RETURN_NOT_OK(device->BindTexture(texture));
  const gpu::SemilinearProgram program(query.weights, query.op, query.b);
  device->UseProgram(&program);
  const Status st = device->RenderTexturedQuad();
  device->UseProgram(nullptr);
  return st;
}

Result<uint64_t> SemilinearSelect(gpu::Device* device, gpu::TextureId texture,
                                  const SemilinearQuery& query) {
  StateGuard guard(device);
  device->ClearStencil(0);
  device->SetAlphaTest(false, gpu::CompareOp::kAlways, 0.0f);
  device->SetDepthTest(false, gpu::CompareOp::kAlways);
  device->SetDepthBoundsTest(false);
  device->SetColorWriteMask(false);
  // Fragments surviving the KILL pass every test and stamp stencil = 1.
  device->SetStencilTest(true, gpu::CompareOp::kAlways, /*ref=*/1);
  device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                       gpu::StencilOp::kReplace);
  GPUDB_RETURN_NOT_OK(device->BeginOcclusionQuery());
  GPUDB_RETURN_NOT_OK(SemilinearQuad(device, texture, query));
  return device->EndOcclusionQuery();
}

Result<uint64_t> SemilinearSelectWide(gpu::Device* device,
                                      gpu::TextureId texture_a,
                                      gpu::TextureId texture_b,
                                      const std::array<float, 8>& weights,
                                      gpu::CompareOp op, float b) {
  StateGuard guard(device);
  GPUDB_RETURN_NOT_OK(device->BindTextureUnit(0, texture_a));
  GPUDB_RETURN_NOT_OK(device->BindTextureUnit(1, texture_b));
  const gpu::WideSemilinearProgram program(weights, op, b);
  device->UseProgram(&program);
  device->ClearStencil(0);
  device->SetAlphaTest(false, gpu::CompareOp::kAlways, 0.0f);
  device->SetDepthTest(false, gpu::CompareOp::kAlways);
  device->SetDepthBoundsTest(false);
  device->SetColorWriteMask(false);
  device->SetStencilTest(true, gpu::CompareOp::kAlways, /*ref=*/1);
  device->SetStencilOp(gpu::StencilOp::kKeep, gpu::StencilOp::kKeep,
                       gpu::StencilOp::kReplace);
  GPUDB_RETURN_NOT_OK(device->BeginOcclusionQuery());
  const Status render = device->RenderTexturedQuad();
  device->UseProgram(nullptr);
  const Status unbind = device->UnbindTextureUnit(1);
  // End the query even on failure so the device stays usable.
  Result<uint64_t> count = device->EndOcclusionQuery();
  GPUDB_RETURN_NOT_OK(render);
  GPUDB_RETURN_NOT_OK(unbind);
  return count;
}

}  // namespace core
}  // namespace gpudb
