#include "src/core/analyze.h"

#include <algorithm>
#include <unordered_set>
#include <vector>

#include "src/common/metrics.h"
#include "src/core/op_span.h"

namespace gpudb {
namespace core {

namespace {

/// Exact distinct count; one hash-set pass (float bit patterns are stable
/// keys because column values never hold NaN).
uint64_t CountDistinct(const std::vector<float>& values) {
  std::unordered_set<float> seen(values.begin(), values.end());
  return seen.size();
}

/// CPU equi-depth fences for float columns: fences[i] (i >= 1) is the value
/// at rank ceil(i * n / buckets), matching GpuQuantiles' rank convention.
std::vector<double> CpuFences(const std::vector<float>& values, int buckets) {
  std::vector<float> sorted(values);
  std::sort(sorted.begin(), sorted.end());
  const uint64_t n = sorted.size();
  std::vector<double> fences;
  fences.reserve(static_cast<size_t>(buckets) + 1);
  fences.push_back(sorted.front());
  for (int i = 1; i <= buckets; ++i) {
    const uint64_t rank =
        (static_cast<uint64_t>(i) * n + buckets - 1) / buckets;  // ceil
    fences.push_back(sorted[std::max<uint64_t>(rank, 1) - 1]);
  }
  return fences;
}

double Estimate(const db::TableStats& stats, const predicate::Expr& expr);

/// Leaf estimate for `a_i op rhs`. TableStats::columns is parallel to the
/// table's column order, so the predicate's column index selects its stats
/// directly; columns missing from the stats estimate 1 (no information).
double EstimateLeaf(const db::TableStats& stats,
                    const predicate::SimplePredicate& pred) {
  if (pred.rhs_is_attr) {
    // Attribute-attribute comparison: the classic "three outcomes, all
    // equally likely" heuristic.
    return 1.0 / 3.0;
  }
  if (pred.attr >= stats.columns.size()) return 1.0;
  return stats.columns[pred.attr].SelectivityCompare(
      pred.op, static_cast<double>(pred.constant));
}

double Estimate(const db::TableStats& stats, const predicate::Expr& expr) {
  switch (expr.kind()) {
    case predicate::Expr::Kind::kPredicate:
      return EstimateLeaf(stats, expr.pred());
    case predicate::Expr::Kind::kAnd: {
      double s = 1.0;
      for (const auto& child : expr.children()) {
        s *= Estimate(stats, *child);
      }
      return s;
    }
    case predicate::Expr::Kind::kOr: {
      // Inclusion-exclusion under independence: 1 - prod(1 - s_i).
      double miss = 1.0;
      for (const auto& child : expr.children()) {
        miss *= 1.0 - Estimate(stats, *child);
      }
      return 1.0 - miss;
    }
    case predicate::Expr::Kind::kNot:
      return 1.0 - Estimate(stats, *expr.children().front());
  }
  return 1.0;
}

}  // namespace

Result<db::TableStats> CollectTableStats(Executor* executor, int buckets) {
  if (executor == nullptr) {
    return Status::InvalidArgument("CollectTableStats requires an executor");
  }
  if (buckets < 1 || buckets > 256) {
    return Status::InvalidArgument("histogram buckets must be in [1, 256]");
  }
  const db::Table& table = executor->table();
  GpuOpSpan op("Analyze", &executor->device());
  op.AddTag("rows", table.num_rows());
  op.AddTag("columns", table.num_columns());
  op.AddTag("buckets", buckets);

  db::TableStats stats;
  stats.row_count = table.num_rows();
  stats.histogram_buckets = buckets;
  stats.columns.reserve(table.num_columns());
  for (size_t i = 0; i < table.num_columns(); ++i) {
    const db::Column& column = table.column(i);
    db::ColumnStats cs;
    cs.name = column.name();
    cs.row_count = column.size();
    cs.min = column.min();
    cs.max = column.max();
    cs.distinct = CountDistinct(column.values());
    if (column.type() == db::ColumnType::kInt24) {
      // GPU path: one CopyToDepth + `buckets` bit-searches (Routine 4.5).
      GPUDB_ASSIGN_OR_RETURN(std::vector<uint32_t> fences,
                             executor->Quantiles(column.name(), buckets));
      cs.fences.reserve(fences.size() + 1);
      cs.fences.push_back(column.min());
      for (uint32_t f : fences) cs.fences.push_back(f);
    } else {
      cs.fences = CpuFences(column.values(), buckets);
    }
    stats.columns.push_back(std::move(cs));
  }
  MetricsRegistry::Global().counter("analyze.tables").Increment();
  return stats;
}

double EstimateSelectivity(const db::TableStats& stats,
                           const predicate::ExprPtr& expr) {
  if (expr == nullptr) return 1.0;
  return std::clamp(Estimate(stats, *expr), 0.0, 1.0);
}

}  // namespace core
}  // namespace gpudb
