#include "src/core/executor.h"

#include <algorithm>
#include <string>

#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/core/analyze.h"
#include "src/core/bitonic_sort.h"
#include "src/core/cpu_tier.h"
#include "src/core/depth_encoding.h"
#include "src/core/histogram.h"
#include "src/core/kth_largest.h"
#include "src/core/op_span.h"
#include "src/core/range.h"
#include "src/core/selection.h"

namespace gpudb {
namespace core {

namespace {

/// Query-facade metrics: how often each executor entry point runs.
MetricCounter& OpCounter(std::string_view op) {
  return MetricsRegistry::Global().counter("executor." + std::string(op));
}

/// Resilience outcome counters (cached references; see DeviceMetrics).
struct ResilienceMetrics {
  MetricCounter& retried =
      MetricsRegistry::Global().counter("queries.retried");
  MetricCounter& retry_attempts =
      MetricsRegistry::Global().counter("queries.retry_attempts");
  MetricCounter& fell_back =
      MetricsRegistry::Global().counter("queries.fell_back");
  MetricCounter& deadline_exceeded =
      MetricsRegistry::Global().counter("queries.deadline_exceeded");

  static ResilienceMetrics& Get() {
    static ResilienceMetrics metrics;
    return metrics;
  }
};

/// Stamps a resilience event into the active trace (zero-duration span
/// nested under the operator that hit it), so EXPLAIN ANALYZE and the
/// Chrome trace show *where* a query degraded, not just that it did.
void TraceResilienceEvent(const char* event, const char* op_name,
                          int attempt = -1) {
  if (!Tracer::Global().enabled()) return;
  TraceSpan span(event);
  span.AddTag("op", op_name);
  if (attempt >= 0) span.AddTag("attempt", attempt);
}

/// Arms the device deadline for one top-level operator when the policy sets
/// one and no outer scope armed it already (SelectTable nests SelectRowIds).
/// Disarms on destruction so an expired deadline never leaks into the next
/// query.
class DeadlineScope {
 public:
  DeadlineScope(gpu::Device* device, double deadline_ms)
      : device_(device),
        armed_(deadline_ms > 0.0 && !device->deadline_armed()) {
    if (armed_) device_->ArmDeadline(deadline_ms);
  }
  ~DeadlineScope() {
    if (armed_) device_->DisarmDeadline();
  }
  DeadlineScope(const DeadlineScope&) = delete;
  DeadlineScope& operator=(const DeadlineScope&) = delete;

 private:
  gpu::Device* device_;
  bool armed_;
};

}  // namespace

template <typename T>
Result<T> Executor::RunResilient(const char* op_name,
                                 const std::function<Result<T>()>& gpu,
                                 const std::function<Result<T>()>& cpu) {
  if (!resilience_.enabled) return gpu();
  ResilienceMetrics& metrics = ResilienceMetrics::Get();
  DeadlineScope deadline(device_, resilience_.deadline_ms);
  const bool can_fall_back = resilience_.allow_cpu_fallback && cpu != nullptr;

  // Open breaker: answer from the CPU tier without touching the device,
  // except for the periodic probe call that tests whether it recovered.
  if (breaker_.open() && can_fall_back) {
    if (!breaker_.AllowProbe()) {
      metrics.fell_back.Increment();
      MetricsRegistry::Global()
          .counter("queries.fell_back." + std::string(op_name))
          .Increment();
      TraceResilienceEvent("resilience.breaker_open", op_name);
      return cpu();
    }
    TraceResilienceEvent("resilience.breaker_probe", op_name);
  }

  Result<T> result = gpu();
  // Bounded in-place retry of transient faults (kDeviceLost category).
  for (int retry = 0;
       !result.ok() && IsTransientFault(result.status()) &&
       retry < resilience_.retry.max_attempts - 1;
       ++retry) {
    if (retry == 0) metrics.retried.Increment();
    metrics.retry_attempts.Increment();
    TraceResilienceEvent("resilience.retry", op_name, retry + 1);
    BackoffSleep(resilience_.retry.DelayMs(retry), resilience_.retry.sleep);
    device_->ResetQueryState();
    const Status interrupt = device_->CheckInterrupt();
    if (!interrupt.ok()) {
      result = interrupt;
      break;
    }
    result = gpu();
  }
  if (result.ok()) {
    breaker_.RecordSuccess();
    return result;
  }
  const Status& status = result.status();
  if (status.IsDeadlineExceeded()) {
    metrics.deadline_exceeded.Increment();
    return result;
  }
  // Cancellation and user errors (bad column, k out of range, ...) are not
  // the device's fault: propagate untouched, no breaker, no fallback.
  if (!IsDeviceFault(status)) return result;

  breaker_.RecordFailure();
  device_->ResetQueryState();
  if (!can_fall_back) return result;
  // The deadline may have fired while the device was faulting; the CPU
  // tier honours it too.
  GPUDB_RETURN_NOT_OK(device_->CheckInterrupt());
  metrics.fell_back.Increment();
  MetricsRegistry::Global()
      .counter("queries.fell_back." + std::string(op_name))
      .Increment();
  TraceResilienceEvent("resilience.fallback", op_name);
  return cpu();
}

Executor::Executor(gpu::Device* device, const db::Table* table)
    : device_(device),
      table_(table),
      column_textures_(table->num_columns(), -1) {}

Result<std::unique_ptr<Executor>> Executor::Make(gpu::Device* device,
                                                 const db::Table* table) {
  if (device == nullptr || table == nullptr) {
    return Status::InvalidArgument("Executor requires a device and a table");
  }
  if (table->num_rows() == 0 || table->num_columns() == 0) {
    return Status::InvalidArgument("Executor requires a non-empty table");
  }
  if (table->num_rows() > device->framebuffer().pixel_count()) {
    return Status::ResourceExhausted(
        "table has " + std::to_string(table->num_rows()) +
        " rows but the device framebuffer holds only " +
        std::to_string(device->framebuffer().pixel_count()) +
        " pixels; use a larger framebuffer or partition the table");
  }
  GPUDB_RETURN_NOT_OK(device->SetViewport(table->num_rows()));
  return std::unique_ptr<Executor>(new Executor(device, table));
}

Result<AttributeBinding> Executor::BindingFor(size_t column_index) {
  if (column_index >= table_->num_columns()) {
    return Status::OutOfRange("column index " + std::to_string(column_index) +
                              " out of range");
  }
  if (column_textures_[column_index] < 0) {
    const uint32_t width = static_cast<uint32_t>(
        std::min<uint64_t>(table_->num_rows(), db::kDefaultTextureWidth));
    GPUDB_ASSIGN_OR_RETURN(gpu::Texture tex,
                           table_->ColumnTexture(column_index, width));
    GPUDB_ASSIGN_OR_RETURN(gpu::TextureId id,
                           device_->UploadTexture(std::move(tex)));
    column_textures_[column_index] = id;
  }
  AttributeBinding binding;
  binding.texture = column_textures_[column_index];
  binding.channel = 0;
  binding.encoding = DepthEncoding::ForColumn(table_->column(column_index));
  binding.column = static_cast<int>(column_index);
  return binding;
}

Result<gpu::TextureId> Executor::PairTexture(size_t a, size_t b) {
  const auto key = std::make_pair(a, b);
  auto it = pair_textures_.find(key);
  if (it != pair_textures_.end()) return it->second;
  const uint32_t width = static_cast<uint32_t>(
      std::min<uint64_t>(table_->num_rows(), db::kDefaultTextureWidth));
  GPUDB_ASSIGN_OR_RETURN(gpu::Texture tex, table_->ToTexture({a, b}, width));
  GPUDB_ASSIGN_OR_RETURN(gpu::TextureId id,
                         device_->UploadTexture(std::move(tex)));
  pair_textures_.emplace(key, id);
  return id;
}

Result<std::vector<GpuClause>> Executor::Lower(
    const std::vector<std::vector<predicate::SimplePredicate>>& groups) {
  std::vector<GpuClause> clauses;
  clauses.reserve(groups.size());
  for (const auto& clause : groups) {
    GpuClause lowered;
    lowered.reserve(clause.size());
    for (const predicate::SimplePredicate& p : clause) {
      if (p.rhs_is_attr) {
        // a_i op a_j  ->  a_i - a_j op 0 as a semi-linear query (Section
        // 4.1.2) over a two-channel texture.
        GPUDB_ASSIGN_OR_RETURN(gpu::TextureId tex,
                               PairTexture(p.attr, p.rhs_attr));
        lowered.push_back(GpuPredicate::Semilinear(
            tex, SemilinearQuery::AttrCompare(0, p.op, 1)));
      } else {
        GPUDB_ASSIGN_OR_RETURN(AttributeBinding binding, BindingFor(p.attr));
        lowered.push_back(
            GpuPredicate::DepthCompare(binding, p.op, p.constant));
      }
    }
    clauses.push_back(std::move(lowered));
  }
  return clauses;
}

Result<StencilSelection> Executor::Where(const predicate::ExprPtr& expr) {
  OpCounter("where").Increment();
  last_exec_ = SelectionExecOptions{};  // no stale outcome on early paths
  GpuOpSpan op("Where", device_);
  op.AddTag("rows", table_->num_rows());
  // With ANALYZE statistics attached, estimate the result cardinality up
  // front and compare against the actual occlusion-query count afterwards;
  // EXPLAIN ANALYZE renders the pair as `rows est=X actual=Y`.
  const bool have_stats = stats_ != nullptr && stats_->analyzed();
  uint64_t est_rows = table_->num_rows();
  if (expr == nullptr) {
    op.AddTag("normal_form", "all");
    if (have_stats) op.AddTag("est_rows", est_rows);
    GPUDB_ASSIGN_OR_RETURN(StencilSelection sel, SelectAll(device_));
    op.AddTag("selected", sel.count);
    op.AddTag("selectivity", Selectivity(sel.count));
    return sel;
  }
  GPUDB_RETURN_NOT_OK(expr->Validate(*table_));
  if (have_stats) {
    const double est_sel = EstimateSelectivity(*stats_, expr);
    est_rows = static_cast<uint64_t>(
        est_sel * static_cast<double>(table_->num_rows()) + 0.5);
    op.AddTag("est_rows", est_rows);
  }
  // Normal-form choice: convert to both CNF and DNF and evaluate whichever
  // needs fewer simple predicates (each predicate is roughly one copy + one
  // comparison pass). A naturally-conjunctive query stays CNF, a
  // naturally-disjunctive one stays DNF, and an expression whose conversion
  // blows up in one form falls back to the other.
  auto cnf = predicate::ToCnf(expr);
  auto dnf = predicate::ToDnf(expr);
  if (!cnf.ok() && !dnf.ok()) {
    return cnf.status();
  }
  const bool use_cnf =
      cnf.ok() && (!dnf.ok() || cnf.ValueOrDie().predicate_count() <=
                                    dnf.ValueOrDie().predicate_count());
  // Planner pass rewrite (DESIGN.md §14): the cache needs a catalog table
  // identity for its keys; without one it stays inert.
  const bool use_cache = plan_options_.plane_cache && !table_name_.empty();
  SelectionExecOptions exec;
  exec.use_cache = use_cache;
  exec.table = table_name_;
  exec.table_version = table_version_;
  StencilSelection sel;
  if (use_cnf) {
    GPUDB_ASSIGN_OR_RETURN(std::vector<GpuClause> clauses,
                           Lower(cnf.ValueOrDie().clauses));
    op.AddTag("normal_form", "cnf");
    op.AddTag("clauses", clauses.size());
    exec.plan =
        PlanSelectionPasses(clauses, plan_options_.fusion, use_cache);
    GPUDB_ASSIGN_OR_RETURN(sel, EvalCnfPlanned(device_, clauses, &exec));
  } else {
    GPUDB_ASSIGN_OR_RETURN(std::vector<GpuTerm> terms,
                           Lower(dnf.ValueOrDie().terms));
    op.AddTag("normal_form", "dnf");
    op.AddTag("terms", terms.size());
    // The DNF skeleton (term chains, stamps, walk-downs) admits no chain
    // rewrite; only the per-predicate copy+compare fusion / caching apply.
    exec.plan = PlanSelectionPasses(terms, plan_options_.fusion, use_cache);
    exec.plan.chain = false;
    exec.plan.fused_count = false;
    GPUDB_ASSIGN_OR_RETURN(sel, EvalDnfPlanned(device_, terms, &exec));
  }
  if (exec.plan.Rewritten()) {
    MetricsRegistry::Global().counter("planner.fused_plans").Increment();
  }
  // EXPLAIN annotations (DESIGN.md §14): how many passes ran fused, and
  // whether the plane cache answered the attribute copies.
  op.AddTag("fused", exec.fused_passes);
  if (exec.cache_hits + exec.cache_misses > 0) {
    op.AddTag("cache", exec.cache_misses == 0
                           ? "hit"
                           : (exec.cache_hits == 0 ? "miss" : "mixed"));
  }
  last_exec_ = exec;
  op.AddTag("selected", sel.count);
  op.AddTag("selectivity", Selectivity(sel.count));
  if (have_stats) {
    // Factor-of-2 misestimate test with one-row smoothing so empty
    // selections do not divide by zero.
    const double actual = static_cast<double>(std::max<uint64_t>(sel.count, 1));
    const double est = static_cast<double>(std::max<uint64_t>(est_rows, 1));
    if (actual / est > 2.0 || est / actual > 2.0) {
      MetricsRegistry::Global().counter("planner.misestimates").Increment();
    }
  }
  return sel;
}

Result<uint64_t> Executor::Count(const predicate::ExprPtr& where) {
  return RunResilient<uint64_t>(
      "count", [&] { return CountGpu(where); },
      [&] { return CpuCount(where); });
}

Result<std::vector<uint8_t>> Executor::SelectBitmap(
    const predicate::ExprPtr& where) {
  return RunResilient<std::vector<uint8_t>>(
      "select_bitmap", [&] { return SelectBitmapGpu(where); },
      [&] { return CpuSelectionMask(where); });
}

Result<std::vector<uint32_t>> Executor::SelectRowIds(
    const predicate::ExprPtr& where) {
  return RunResilient<std::vector<uint32_t>>(
      "select_row_ids", [&] { return SelectRowIdsGpu(where); },
      [&] { return CpuRowIds(where); });
}

Result<std::vector<std::pair<uint32_t, uint32_t>>> Executor::TopK(
    std::string_view column, uint64_t k) {
  // Retry-only: no CPU equivalent wired up (the candidate sort already
  // runs on the CPU; a full fallback would duplicate KthLargest + gather).
  return RunResilient<std::vector<std::pair<uint32_t, uint32_t>>>(
      "top_k", [&] { return TopKGpu(column, k); }, nullptr);
}

Result<double> Executor::Aggregate(AggregateKind kind, std::string_view column,
                                   const predicate::ExprPtr& where) {
  return RunResilient<double>(
      "aggregate", [&] { return AggregateGpu(kind, column, where); },
      [&] { return CpuAggregate(kind, column, where); });
}

Result<uint32_t> Executor::KthLargest(std::string_view column, uint64_t k,
                                      const predicate::ExprPtr& where) {
  return RunResilient<uint32_t>(
      "kth_largest", [&] { return KthLargestGpu(column, k, where); },
      [&] { return CpuKthLargest(column, k, where); });
}

Result<std::vector<uint32_t>> Executor::OrderByRowIds(std::string_view column,
                                                      bool ascending) {
  return RunResilient<std::vector<uint32_t>>(
      "order_by", [&] { return OrderByRowIdsGpu(column, ascending); }, nullptr);
}

Result<uint64_t> Executor::RangeCount(std::string_view column, double low,
                                      double high) {
  return RunResilient<uint64_t>(
      "range_count", [&] { return RangeCountGpu(column, low, high); },
      [&] { return CpuRangeCount(column, low, high); });
}

Result<uint64_t> Executor::SemilinearCount(
    const std::vector<std::pair<std::string, float>>& weighted_columns,
    gpu::CompareOp op, float b) {
  return RunResilient<uint64_t>(
      "semilinear_count",
      [&] { return SemilinearCountGpu(weighted_columns, op, b); }, nullptr);
}

Result<std::vector<GroupByRow>> Executor::GroupBy(std::string_view key_column,
                                                  std::string_view value_column,
                                                  AggregateKind kind,
                                                  uint64_t max_groups) {
  return RunResilient<std::vector<GroupByRow>>(
      "group_by",
      [&] { return GroupByGpu(key_column, value_column, kind, max_groups); },
      nullptr);
}

Result<std::vector<uint32_t>> Executor::Quantiles(std::string_view column,
                                                  int q) {
  return RunResilient<std::vector<uint32_t>>(
      "quantiles", [&] { return QuantilesGpu(column, q); }, nullptr);
}

Result<uint64_t> Executor::CountGpu(const predicate::ExprPtr& where) {
  OpCounter("count").Increment();
  GpuOpSpan op("Count", device_);
  op.AddTag("rows", table_->num_rows());
  GPUDB_ASSIGN_OR_RETURN(StencilSelection sel, Where(where));
  op.AddTag("selected", sel.count);
  op.AddTag("selectivity", Selectivity(sel.count));
  return sel.count;
}

Result<std::vector<uint8_t>> Executor::SelectBitmapGpu(
    const predicate::ExprPtr& where) {
  OpCounter("select_bitmap").Increment();
  GpuOpSpan op("SelectBitmap", device_);
  GPUDB_ASSIGN_OR_RETURN(StencilSelection sel, Where(where));
  return SelectionToBitmap(device_, sel, table_->num_rows());
}

Result<std::vector<uint32_t>> Executor::SelectRowIdsGpu(
    const predicate::ExprPtr& where) {
  OpCounter("select_row_ids").Increment();
  GpuOpSpan op("SelectRowIds", device_);
  GPUDB_ASSIGN_OR_RETURN(StencilSelection sel, Where(where));
  return SelectionToRowIds(device_, sel, table_->num_rows());
}

Result<db::Table> Executor::SelectTable(const predicate::ExprPtr& where) {
  OpCounter("select_table").Increment();
  GPUDB_ASSIGN_OR_RETURN(std::vector<uint32_t> rows, SelectRowIds(where));
  return table_->GatherRows(rows);
}

Result<std::vector<std::pair<uint32_t, uint32_t>>> Executor::TopKGpu(
    std::string_view column, uint64_t k) {
  OpCounter("top_k").Increment();
  GpuOpSpan op("TopK", device_);
  op.AddTag("column", column);
  op.AddTag("k", k);
  GPUDB_ASSIGN_OR_RETURN(size_t col, table_->ColumnIndex(column));
  const db::Column& c = table_->column(col);
  if (c.type() != db::ColumnType::kInt24) {
    return Status::NotImplemented("TopK requires an integer column");
  }
  if (k == 0 || k > table_->num_rows()) {
    return Status::OutOfRange("k out of range");
  }
  GPUDB_ASSIGN_OR_RETURN(AttributeBinding binding, BindingFor(col));
  // Threshold via Routine 4.5, then one selection pass for the candidates
  // (>= threshold selects at most k plus ties of the threshold value).
  GPUDB_ASSIGN_OR_RETURN(uint32_t threshold,
                         core::KthLargest(device_, binding, c.bit_width(), k));
  GPUDB_ASSIGN_OR_RETURN(
      uint64_t selected,
      CompareSelect(device_, binding, gpu::CompareOp::kGreaterEqual,
                    static_cast<double>(threshold)));
  GPUDB_ASSIGN_OR_RETURN(
      std::vector<uint32_t> rows,
      SelectionToRowIds(device_, StencilSelection{1, selected},
                        table_->num_rows()));
  std::vector<std::pair<uint32_t, uint32_t>> result;
  result.reserve(rows.size());
  for (uint32_t row : rows) {
    result.emplace_back(row, c.int_value(row));
  }
  // Sort the candidate handful on the CPU: value descending, row ascending.
  std::sort(result.begin(), result.end(),
            [](const auto& a, const auto& b) {
              return a.second != b.second ? a.second > b.second
                                          : a.first < b.first;
            });
  result.resize(k);  // trim threshold ties beyond k
  return result;
}

Result<double> Executor::AggregateGpu(AggregateKind kind,
                                      std::string_view column,
                                      const predicate::ExprPtr& where) {
  OpCounter("aggregate").Increment();
  GpuOpSpan op("Aggregate", device_);
  op.AddTag("kind", ToString(kind));
  op.AddTag("column", column);
  GPUDB_ASSIGN_OR_RETURN(size_t col, table_->ColumnIndex(column));
  const db::Column& c = table_->column(col);
  if (kind != AggregateKind::kCount &&
      c.type() != db::ColumnType::kInt24) {
    return Status::NotImplemented(
        "GPU aggregation of '" + std::string(column) +
        "' requires an integer column (Accumulator and KthLargest operate on "
        "binary representations; paper Sections 4.3.2-4.3.3)");
  }
  std::optional<StencilSelection> selection;
  if (where != nullptr) {
    GPUDB_ASSIGN_OR_RETURN(StencilSelection sel, Where(where));
    selection = sel;
  }
  GPUDB_ASSIGN_OR_RETURN(AttributeBinding binding, BindingFor(col));
  return AggregateAttribute(device_, kind, binding, c.bit_width(), selection);
}

Result<uint32_t> Executor::KthLargestGpu(std::string_view column, uint64_t k,
                                         const predicate::ExprPtr& where) {
  OpCounter("kth_largest").Increment();
  GPUDB_ASSIGN_OR_RETURN(size_t col, table_->ColumnIndex(column));
  const db::Column& c = table_->column(col);
  if (c.type() != db::ColumnType::kInt24) {
    return Status::NotImplemented(
        "KthLargest requires an integer column (Routine 4.5 builds the "
        "result bit by bit)");
  }
  KthOptions options;
  if (where != nullptr) {
    GPUDB_ASSIGN_OR_RETURN(StencilSelection sel, Where(where));
    options.selection = sel;
  }
  GPUDB_ASSIGN_OR_RETURN(AttributeBinding binding, BindingFor(col));
  return core::KthLargest(device_, binding, c.bit_width(), k, options);
}

Result<std::vector<uint32_t>> Executor::OrderByRowIdsGpu(
    std::string_view column, bool ascending) {
  OpCounter("order_by").Increment();
  GpuOpSpan op("OrderByRowIds", device_);
  op.AddTag("column", column);
  op.AddTag("ascending", ascending ? "true" : "false");
  op.AddTag("rows", table_->num_rows());
  GPUDB_ASSIGN_OR_RETURN(size_t col, table_->ColumnIndex(column));
  const db::Column& c = table_->column(col);
  std::vector<uint32_t> row_ids(table_->num_rows());
  for (uint32_t i = 0; i < row_ids.size(); ++i) row_ids[i] = i;
  GPUDB_ASSIGN_OR_RETURN(SortedPairs sorted,
                         BitonicSortPairs(device_, c.values(), row_ids));
  if (!ascending) {
    std::reverse(sorted.payloads.begin(), sorted.payloads.end());
  }
  return sorted.payloads;
}

Result<uint64_t> Executor::RangeCountGpu(std::string_view column, double low,
                                         double high) {
  OpCounter("range_count").Increment();
  GpuOpSpan op("RangeCount", device_);
  op.AddTag("column", column);
  GPUDB_ASSIGN_OR_RETURN(size_t col, table_->ColumnIndex(column));
  GPUDB_ASSIGN_OR_RETURN(AttributeBinding binding, BindingFor(col));
  return RangeSelect(device_, binding, low, high);
}

Result<uint64_t> Executor::SemilinearCountGpu(
    const std::vector<std::pair<std::string, float>>& weighted_columns,
    gpu::CompareOp op, float b) {
  OpCounter("semilinear_count").Increment();
  GpuOpSpan span("SemilinearCount", device_);
  span.AddTag("columns", weighted_columns.size());
  if (weighted_columns.empty() || weighted_columns.size() > 8) {
    return Status::InvalidArgument(
        "semi-linear queries take 1-8 weighted columns (vectors longer than "
        "one texture's four channels are split across two texture units, "
        "paper Section 4.1.2)");
  }
  std::vector<size_t> cols;
  cols.reserve(weighted_columns.size());
  for (const auto& [name, weight] : weighted_columns) {
    GPUDB_ASSIGN_OR_RETURN(size_t col, table_->ColumnIndex(name));
    cols.push_back(col);
  }
  const uint32_t width = static_cast<uint32_t>(
      std::min<uint64_t>(table_->num_rows(), db::kDefaultTextureWidth));

  if (weighted_columns.size() <= static_cast<size_t>(gpu::kMaxChannels)) {
    SemilinearQuery query;
    query.op = op;
    query.b = b;
    for (size_t i = 0; i < weighted_columns.size(); ++i) {
      query.weights[i] = weighted_columns[i].second;
    }
    GPUDB_ASSIGN_OR_RETURN(gpu::Texture tex, table_->ToTexture(cols, width));
    GPUDB_ASSIGN_OR_RETURN(gpu::TextureId id,
                           device_->UploadTexture(std::move(tex)));
    return SemilinearSelect(device_, id, query);
  }

  // 5-8 columns: split across two textures and run the wide program.
  const std::vector<size_t> first(cols.begin(), cols.begin() + 4);
  const std::vector<size_t> second(cols.begin() + 4, cols.end());
  std::array<float, 8> weights = {0, 0, 0, 0, 0, 0, 0, 0};
  for (size_t i = 0; i < weighted_columns.size(); ++i) {
    weights[i] = weighted_columns[i].second;
  }
  GPUDB_ASSIGN_OR_RETURN(gpu::Texture tex_a, table_->ToTexture(first, width));
  GPUDB_ASSIGN_OR_RETURN(gpu::Texture tex_b, table_->ToTexture(second, width));
  GPUDB_ASSIGN_OR_RETURN(gpu::TextureId id_a,
                         device_->UploadTexture(std::move(tex_a)));
  GPUDB_ASSIGN_OR_RETURN(gpu::TextureId id_b,
                         device_->UploadTexture(std::move(tex_b)));
  return SemilinearSelectWide(device_, id_a, id_b, weights, op, b);
}

Result<std::vector<GroupByRow>> Executor::GroupByGpu(
    std::string_view key_column, std::string_view value_column,
    AggregateKind kind, uint64_t max_groups) {
  OpCounter("group_by").Increment();
  GpuOpSpan op("GroupBy", device_);
  op.AddTag("key", key_column);
  op.AddTag("value", value_column);
  op.AddTag("kind", ToString(kind));
  GPUDB_ASSIGN_OR_RETURN(size_t key_col, table_->ColumnIndex(key_column));
  GPUDB_ASSIGN_OR_RETURN(size_t value_col, table_->ColumnIndex(value_column));
  const db::Column& key = table_->column(key_col);
  const db::Column& value = table_->column(value_col);
  if (key.type() != db::ColumnType::kInt24 ||
      value.type() != db::ColumnType::kInt24) {
    return Status::NotImplemented(
        "GROUP BY requires integer key and value columns");
  }
  GPUDB_ASSIGN_OR_RETURN(AttributeBinding key_attr, BindingFor(key_col));
  GPUDB_ASSIGN_OR_RETURN(AttributeBinding value_attr, BindingFor(value_col));
  return GroupByAggregate(device_, key_attr, key.bit_width(), value_attr,
                          value.bit_width(), kind, max_groups);
}

Result<std::vector<uint32_t>> Executor::QuantilesGpu(std::string_view column,
                                                     int q) {
  OpCounter("quantiles").Increment();
  GpuOpSpan op("Quantiles", device_);
  op.AddTag("column", column);
  op.AddTag("q", q);
  GPUDB_ASSIGN_OR_RETURN(size_t col, table_->ColumnIndex(column));
  const db::Column& c = table_->column(col);
  if (c.type() != db::ColumnType::kInt24) {
    return Status::NotImplemented("quantiles require an integer column");
  }
  GPUDB_ASSIGN_OR_RETURN(AttributeBinding attr, BindingFor(col));
  return GpuQuantiles(device_, attr, c.bit_width(), q);
}

// --- CPU fallback tier ----------------------------------------------------
//
// Thin delegators to core/cpu_tier.h: the exact scalar equivalents of the
// GPU operators are shared with the shard-pool failover path (DESIGN.md
// sections 11 and 15), so both the single-device ladder and per-shard
// recombination answer from one implementation.

Result<std::vector<uint8_t>> Executor::CpuSelectionMask(
    const predicate::ExprPtr& where) {
  return cpu_tier::SelectionMask(*table_, where);
}

Result<uint64_t> Executor::CpuCount(const predicate::ExprPtr& where) {
  return cpu_tier::Count(*table_, where);
}

Result<std::vector<uint32_t>> Executor::CpuRowIds(
    const predicate::ExprPtr& where) {
  return cpu_tier::RowIds(*table_, where);
}

Result<double> Executor::CpuAggregate(AggregateKind kind,
                                      std::string_view column,
                                      const predicate::ExprPtr& where) {
  return cpu_tier::Aggregate(*table_, kind, column, where);
}

Result<uint32_t> Executor::CpuKthLargest(std::string_view column, uint64_t k,
                                         const predicate::ExprPtr& where) {
  return cpu_tier::KthLargest(*table_, column, k, where);
}

Result<uint64_t> Executor::CpuRangeCount(std::string_view column, double low,
                                         double high) {
  return cpu_tier::RangeCount(*table_, column, low, high);
}

}  // namespace core
}  // namespace gpudb
