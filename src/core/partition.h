#ifndef GPUDB_CORE_PARTITION_H_
#define GPUDB_CORE_PARTITION_H_

#include <cstdint>
#include <vector>

#include "src/common/result.h"
#include "src/core/compare.h"
#include "src/db/column.h"
#include "src/gpu/device.h"

namespace gpudb {
namespace core {

/// \brief Out-of-core execution for tables larger than the framebuffer --
/// the technique the paper prescribes in Section 6.1 ("Memory Management"):
/// "due to the limited video memory, we may not be able to copy very large
/// databases into GPU memory. In such situations, we would use out-of-core
/// techniques and swap textures in and out of video memory."
///
/// A column is split into tiles that each fit the device; every operation
/// processes the tiles in sequence and combines the per-tile occlusion
/// counts, which are additive:
///  * COUNT: sum of tile counts;
///  * SUM: the Accumulator's per-bit counts sum across tiles;
///  * k-th largest: each step of Routine 4.5 needs only the total
///    #{v >= m}, which is the sum of per-tile comparison counts, so the
///    bitwise search works unchanged at tiles x bit_width passes.
/// Options for partitioned execution.
struct PartitionOptions {
  /// Keep per-tile min/max "zone maps" (computed while slicing) and use them
  /// to skip tiles a comparison cannot partially intersect: an all-matching
  /// tile contributes its record count with no rendering at all, a
  /// non-matching tile is skipped outright. Order statistics benefit most --
  /// each bit-search step prunes every tile whose range lies entirely on one
  /// side of the threshold. Disable for the ablation benchmark.
  bool use_zone_maps = true;
};

class PartitionedColumn {
 public:
  /// Splits `column` (which must be an Int24 column) into device-sized tiles
  /// and uploads each as its own texture (modeling the texture working set;
  /// each tile upload is charged to the bus counters once).
  [[nodiscard]] static Result<PartitionedColumn> Make(gpu::Device* device,
                                        const db::Column& column,
                                        const PartitionOptions& options = {});

  size_t tile_count() const { return tiles_.size(); }
  uint64_t total_records() const { return total_records_; }
  int bit_width() const { return bit_width_; }

  /// COUNT(*) WHERE value op constant, across all tiles.
  [[nodiscard]] Result<uint64_t> Count(gpu::CompareOp op, double constant) const;

  /// Exact SUM across all tiles (Routine 4.6 per tile).
  [[nodiscard]] Result<uint64_t> Sum() const;

  /// k-th largest across all tiles (Routine 4.5 with cross-tile counts).
  [[nodiscard]] Result<uint32_t> KthLargest(uint64_t k) const;

  /// Median across all tiles.
  [[nodiscard]] Result<uint32_t> Median() const;

  /// Selection bitmap across all tiles (stencil read back per tile).
  [[nodiscard]] Result<std::vector<uint8_t>> SelectBitmap(gpu::CompareOp op,
                                            double constant) const;

  /// Tiles skipped by zone-map pruning since construction.
  uint64_t tiles_pruned() const { return tiles_pruned_; }

 private:
  struct Tile {
    AttributeBinding binding;
    uint64_t records = 0;
    float min = 0;  ///< zone map
    float max = 0;
  };

  /// Zone-map verdict for `value op constant` over a tile's range.
  enum class TileMatch { kAll, kNone, kPartial };
  static TileMatch Classify(const Tile& tile, gpu::CompareOp op,
                            double constant);

  PartitionedColumn(gpu::Device* device, int bit_width,
                    const PartitionOptions& options)
      : device_(device), bit_width_(bit_width), options_(options) {}

  /// Total #{v op constant} summed over tiles; shared by Count and the
  /// KthLargest inner loop.
  [[nodiscard]] Result<uint64_t> CrossTileCount(gpu::CompareOp op, double constant) const;

  gpu::Device* device_;
  int bit_width_;
  PartitionOptions options_;
  uint64_t total_records_ = 0;
  std::vector<Tile> tiles_;
  mutable uint64_t tiles_pruned_ = 0;
};

}  // namespace core
}  // namespace gpudb

#endif  // GPUDB_CORE_PARTITION_H_
