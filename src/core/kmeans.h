#ifndef GPUDB_CORE_KMEANS_H_
#define GPUDB_CORE_KMEANS_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/gpu/device.h"

namespace gpudb {
namespace core {

/// Result of a k-means run.
struct KMeansResult {
  std::vector<std::pair<float, float>> centroids;
  std::vector<uint64_t> cluster_sizes;
  int iterations_run = 0;
  bool converged = false;
};

/// \brief 2D k-means clustering on the GPU -- the "clustering" entry of the
/// paper's future-work list (Section 7: "OLAP and data mining tasks such as
/// data cube roll up and drill-down, classification, and clustering"),
/// built entirely from the paper's own primitives:
///
///  * Assignment: centroid j's region is its Voronoi cell, and
///    |p - c_j|^2 <= |p - c_l|^2 rearranges to the HALF-PLANE
///    2(c_l - c_j) . p <= |c_l|^2 - |c_j|^2 -- so each cell is a conjunction
///    of k-1 semi-linear predicates, evaluated with EvalCNF over the point
///    texture. Boundary ties break toward the lower centroid index (the
///    comparison is <= against higher indices, < against lower), making the
///    assignment a true partition.
///  * Update: each cell's centroid is (SUM x, SUM y) / COUNT -- one masked
///    Accumulator run per coordinate plus the selection's occlusion count.
///
/// `xy_texture` holds integer point coordinates in channels 0 (x) and 1 (y),
/// each within `coord_bits` bits (exact in the Accumulator); the device
/// viewport must cover the point count. Empty clusters keep their previous
/// centroid. Converges when no centroid moves by more than `epsilon`.
[[nodiscard]] Result<KMeansResult> KMeans2D(
    gpu::Device* device, gpu::TextureId xy_texture, int coord_bits,
    const std::vector<std::pair<float, float>>& initial_centroids,
    int max_iterations, float epsilon = 0.01f);

/// CPU reference with the same tie-break (nearest centroid, lowest index on
/// ties), for cross-checking.
KMeansResult CpuKMeans2D(
    const std::vector<uint32_t>& xs, const std::vector<uint32_t>& ys,
    const std::vector<std::pair<float, float>>& initial_centroids,
    int max_iterations, float epsilon = 0.01f);

}  // namespace core
}  // namespace gpudb

#endif  // GPUDB_CORE_KMEANS_H_
