#ifndef GPUDB_CORE_SPATIAL_JOIN_H_
#define GPUDB_CORE_SPATIAL_JOIN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "src/common/result.h"
#include "src/gpu/device.h"

namespace gpudb {
namespace core {

/// \brief A convex polygon in window coordinates (counter-clockwise
/// vertices), the spatial object of the screen-space join.
struct Polygon2D {
  std::vector<std::pair<float, float>> vertices;
};

/// \brief Screen-space polygon intersection test in the style of Sun et al.
/// [35], the prior work the paper positions itself against (Section 2.1:
/// "They use color blending capabilities available on graphics processors
/// to test if two polygons intersect in screen-space ... The technique ...
/// is quite conservative").
///
/// Our variant uses the stencil buffer instead of blending: polygon A is
/// rasterized into the stencil (scissored to the pair's bounding-box
/// intersection), then polygon B is rendered under an occlusion query with
/// the stencil test passing only over A's footprint. A non-zero pixel pass
/// count means the rasterized footprints overlap.
///
/// The test is exact at pixel resolution and conservative in the same sense
/// as the original: geometry is discretized to the pixel grid, so overlaps
/// thinner than a pixel can be missed and near-misses within a pixel can be
/// reported. Polygons must be strictly convex, counter-clockwise, and lie
/// inside the framebuffer.
[[nodiscard]] Result<bool> PolygonsOverlapScreenSpace(gpu::Device* device,
                                        const Polygon2D& a,
                                        const Polygon2D& b);

/// \brief Spatial overlap join: all (i, j) pairs whose polygons' rasterized
/// footprints intersect. Bounding boxes prune pairs on the CPU (free);
/// surviving pairs run the two-pass screen-space test.
[[nodiscard]] Result<std::vector<std::pair<uint32_t, uint32_t>>> SpatialOverlapJoin(
    gpu::Device* device, const std::vector<Polygon2D>& layer_a,
    const std::vector<Polygon2D>& layer_b);

/// CPU reference: exact convex-polygon intersection via the separating-axis
/// theorem (boundaries touching counts as overlap).
bool ConvexPolygonsIntersect(const Polygon2D& a, const Polygon2D& b);

}  // namespace core
}  // namespace gpudb

#endif  // GPUDB_CORE_SPATIAL_JOIN_H_
